package rdnsprivacy_test

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/privleak"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/simclock"
)

// This file holds the ablation benchmarks DESIGN.md calls out: they vary
// one design choice at a time and report what each variant leaks or
// detects, quantifying the paper's Section 8 mitigation discussion.

// BenchmarkAblationIPAMPolicies drives identical client churn through each
// IPAM policy and reports how many given names an outside scanner can
// harvest under each.
func BenchmarkAblationIPAMPolicies(b *testing.B) {
	for _, policy := range []ipam.Policy{
		ipam.PolicyCarryOver, ipam.PolicyHashed, ipam.PolicyStaticForm, ipam.PolicyNone,
	} {
		b.Run(policy.String(), func(b *testing.B) {
			leaked := 0
			for i := 0; i < b.N; i++ {
				leaked = namesLeakedUnder(b, policy)
			}
			b.ReportMetric(float64(leaked), "names-leaked")
		})
	}
}

// namesLeakedUnder runs 40 named clients through one policy and counts
// distinct given names visible in the zone.
func namesLeakedUnder(b *testing.B, policy ipam.Policy) int {
	b.Helper()
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC))
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	origin, err := dnswire.ReverseZoneFor24(prefix)
	if err != nil {
		b.Fatal(err)
	}
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.example.com"),
		Mbox:      dnswire.MustName("hostmaster.example.com"),
	})
	updater := ipam.NewUpdater(ipam.Config{
		Policy:      policy,
		Suffix:      dnswire.MustName("dyn.example.com"),
		StaticPools: []dnswire.Prefix{prefix},
	})
	if err := updater.AttachZone(zone); err != nil {
		b.Fatal(err)
	}
	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})
	for i := 0; i < 40; i++ {
		owner := names.Top50[i%len(names.Top50)]
		cl := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
			CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 1, byte(i)},
			HostName: owner + "s-iPhone",
		})
		if _, err := cl.Join(); err != nil {
			b.Fatal(err)
		}
	}
	matcher := names.NewMatcher(names.Top50)
	distinct := map[string]bool{}
	for _, n := range zone.Names() {
		target, ok := zone.LookupPTR(n)
		if !ok {
			continue
		}
		for _, name := range matcher.Match(string(target)) {
			distinct[name] = true
		}
	}
	return len(distinct)
}

// BenchmarkAblationReleaseBehavior compares how long PTR records linger
// after departure for clients that send DHCPRELEASE versus clients that
// vanish silently — the paper's future-work question about release
// behaviour as a defence ("is, instead, not doing so a possible defense
// mechanism?" — it is the opposite: silence makes records linger LONGER).
func BenchmarkAblationReleaseBehavior(b *testing.B) {
	for _, mode := range []struct {
		name    string
		release bool
	}{{"release", true}, {"silent", false}} {
		b.Run(mode.name, func(b *testing.B) {
			var linger time.Duration
			for i := 0; i < b.N; i++ {
				linger = lingerAfterLeave(b, mode.release)
			}
			b.ReportMetric(linger.Minutes(), "linger-minutes")
		})
	}
}

// lingerAfterLeave measures the record lifetime beyond departure for one
// client under a 1h lease.
func lingerAfterLeave(b *testing.B, release bool) time.Duration {
	b.Helper()
	start := time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSimulated(start)
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	origin, _ := dnswire.ReverseZoneFor24(prefix)
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.example.com"),
		Mbox:      dnswire.MustName("hostmaster.example.com"),
	})
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.com"),
	})
	updater.AttachZone(zone)
	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})
	cl := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
		CHAddr: dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 1}, HostName: "Brians-iPhone",
		SendRelease: release,
	})
	ip, err := cl.Join()
	if err != nil {
		b.Fatal(err)
	}
	// Stay 45 minutes (one renewal at 30m), then leave.
	clock.Advance(45 * time.Minute)
	cl.Leave()
	left := clock.Now()
	rname := dnswire.ReverseName(ip)
	for step := 0; step < 200; step++ {
		if _, ok := zone.LookupPTR(rname); !ok {
			return clock.Now().Sub(left)
		}
		clock.Advance(time.Minute)
	}
	b.Fatal("record never removed")
	return 0
}

// BenchmarkAblationLeaseTime quantifies the paper's explanation for the
// per-network differences in Figure 7b ("can be explained by a longer DHCP
// lease time"): for silent leavers, the PTR lingers in proportion to the
// lease.
func BenchmarkAblationLeaseTime(b *testing.B) {
	for _, lease := range []time.Duration{30 * time.Minute, time.Hour, 2 * time.Hour} {
		b.Run(lease.String(), func(b *testing.B) {
			var linger time.Duration
			for i := 0; i < b.N; i++ {
				linger = lingerAfterLeaveWithLease(b, lease)
			}
			b.ReportMetric(linger.Minutes(), "linger-minutes")
		})
	}
}

// lingerAfterLeaveWithLease measures post-departure record lifetime for a
// silent leaver under the given lease.
func lingerAfterLeaveWithLease(b *testing.B, lease time.Duration) time.Duration {
	b.Helper()
	start := time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC)
	clock := simclock.NewSimulated(start)
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	origin, _ := dnswire.ReverseZoneFor24(prefix)
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.example.com"),
		Mbox:      dnswire.MustName("hostmaster.example.com"),
	})
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.com"),
	})
	updater.AttachZone(zone)
	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: lease,
		Sink:      updater,
	})
	cl := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
		CHAddr: dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 1}, HostName: "Brians-iPhone",
		SendRelease: false,
	})
	ip, err := cl.Join()
	if err != nil {
		b.Fatal(err)
	}
	// Stay two full lease periods (several renewals), then vanish.
	clock.Advance(2 * lease)
	cl.Leave()
	left := clock.Now()
	rname := dnswire.ReverseName(ip)
	for step := 0; step < 1000; step++ {
		if _, ok := zone.LookupPTR(rname); !ok {
			return clock.Now().Sub(left)
		}
		clock.Advance(time.Minute)
	}
	b.Fatal("record never removed")
	return 0
}

// BenchmarkAblationScanCadence measures how the scanner's cadence changes
// what the dynamicity heuristic can see: weekly (Rapid7-like) snapshots
// find fewer dynamic prefixes than daily (OpenINTEL-like) ones over the
// same window — the reason the paper prefers OpenINTEL data (Section 3).
func BenchmarkAblationScanCadence(b *testing.B) {
	campus, truth, err := netsim.BuildValidationCampus(9, time.UTC)
	if err != nil {
		b.Fatal(err)
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	for _, cad := range []scan.Cadence{scan.Daily, scan.Weekly} {
		b.Run(cad.String(), func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				res := scan.Run(scan.Campaign{
					Universe: u,
					Start:    date(2021, time.January, 1),
					End:      date(2021, time.March, 31),
					Cadence:  cad,
				})
				verdict := dynamicity.Analyze(res.Series, dynamicity.PaperConfig())
				found = len(verdict.DynamicPrefixes)
			}
			b.ReportMetric(float64(found), "dynamic-found")
			b.ReportMetric(float64(len(truth["dynamic"])), "dynamic-truth")
		})
	}
}

// BenchmarkAblationThresholds sweeps the Section 4 thresholds (X, Y) and
// reports the detected dynamic-prefix count at each setting, exposing the
// sensitivity the paper discusses under "Threshold and dynamicity".
func BenchmarkAblationThresholds(b *testing.B) {
	campus, _, err := netsim.BuildValidationCampus(9, time.UTC)
	if err != nil {
		b.Fatal(err)
	}
	u := &netsim.Universe{Networks: []*netsim.Network{campus}}
	res := scan.Run(scan.Campaign{
		Universe: u,
		Start:    date(2021, time.January, 1),
		End:      date(2021, time.March, 31),
		Cadence:  scan.Daily,
	})
	for _, cfg := range []struct {
		name string
		x    float64
		y    int
	}{
		{"X5-Y3", 5, 3},
		{"X10-Y7-paper", 10, 7},
		{"X20-Y14", 20, 14},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				verdict := dynamicity.Analyze(res.Series, dynamicity.Config{
					MinAddresses:  10,
					ChangePercent: cfg.x,
					MinChangeDays: cfg.y,
				})
				found = len(verdict.DynamicPrefixes)
			}
			b.ReportMetric(float64(found), "dynamic-found")
		})
	}
}

// BenchmarkAblationLeakWindow varies how many daily snapshots the Section 5
// analysis unions: longer windows see more distinct names per suffix.
func BenchmarkAblationLeakWindow(b *testing.B) {
	s := benchStudy(b)
	dyn := s.Dynamicity()
	dynSet := make(map[string]bool)
	for _, p := range dyn.DynamicPrefixes {
		dynSet[p.String()] = true
	}
	for _, window := range []int{1, 7} {
		b.Run(map[int]string{1: "1day", 7: "7days"}[window], func(b *testing.B) {
			identified := 0
			for i := 0; i < b.N; i++ {
				a := privleak.NewAnalyzer(s.Cfg.LeakThresholds)
				seen := map[string]bool{}
				for d := 0; d < window; d++ {
					at := s.Cfg.DynamicityEnd.AddDate(0, 0, d-6).Add(13 * time.Hour)
					scan.SnapshotRecords(scan.Campaign{Universe: s.Universe}, at,
						func(r netsim.Record) {
							key := r.IP.String() + "|" + string(r.HostName)
							if seen[key] {
								return
							}
							seen[key] = true
							a.Observe(privleak.RecordObservation{
								IP: r.IP, HostName: r.HostName,
								Dynamic: dynSet[r.IP.Slash24().String()],
							})
						})
				}
				identified = len(a.Finish().Identified)
			}
			b.ReportMetric(float64(identified), "identified")
		})
	}
}
