package faultsim

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// echoHandler answers every parsable query NOERROR with no records — just
// enough server to observe which queries reach it.
type echoHandler struct {
	seen int
}

func (h *echoHandler) HandleQuery(query []byte) []byte {
	h.seen++
	msg, err := dnswire.Unmarshal(query)
	if err != nil {
		return nil
	}
	wire, err := dnswire.NewResponse(msg, dnswire.RCodeNoError).Marshal()
	if err != nil {
		return nil
	}
	return wire
}

func ptrQuery(t *testing.T, ip dnswire.IPv4, id uint16) []byte {
	t.Helper()
	wire, err := dnswire.NewQuery(id, dnswire.ReverseName(ip), dnswire.TypePTR).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return wire
}

func rcodeOf(t *testing.T, reply []byte) (dnswire.RCode, bool) {
	t.Helper()
	if reply == nil {
		return 0, false
	}
	msg, err := dnswire.Unmarshal(reply)
	if err != nil {
		t.Fatal(err)
	}
	return msg.Header.RCode, true
}

func TestWindowMatch(t *testing.T) {
	cases := []struct {
		w    *Window
		n    uint64
		want bool
	}{
		{nil, 0, false},
		{&Window{After: 2, For: 3}, 1, false},
		{&Window{After: 2, For: 3}, 2, true},
		{&Window{After: 2, For: 3}, 4, true},
		{&Window{After: 2, For: 3}, 5, false},
		{&Window{After: 0, For: 2, Every: 4}, 0, true},
		{&Window{After: 0, For: 2, Every: 4}, 1, true},
		{&Window{After: 0, For: 2, Every: 4}, 2, false},
		{&Window{After: 0, For: 2, Every: 4}, 4, true},
		{&Window{After: 0, For: 2, Every: 4}, 7, false},
		{&Window{After: 10, For: 1, Every: 5}, 9, false},
		{&Window{After: 10, For: 1, Every: 5}, 10, true},
		{&Window{After: 10, For: 1, Every: 5}, 15, true},
		{&Window{After: 10, For: 1, Every: 5}, 16, false},
	}
	for _, tc := range cases {
		if got := tc.w.match(tc.n); got != tc.want {
			t.Errorf("(%+v).match(%d) = %v, want %v", tc.w, tc.n, got, tc.want)
		}
	}
}

// TestInjectorDeterministic replays the same query sequence through two
// identically seeded injectors and requires identical verdicts.
func TestInjectorDeterministic(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.0.0/24")
	run := func() []string {
		inj := New(simclock.Real{}, 1234, Profile{
			Prefix:       prefix,
			Loss:         0.3,
			ServFailRate: 0.2,
			RefusedRate:  0.1,
		})
		h := inj.Wrap(&echoHandler{})
		var out []string
		for attempt := 0; attempt < 3; attempt++ {
			for i := 1; i <= 40; i++ {
				rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(i), uint16(i))))
				if !answered {
					out = append(out, "drop")
				} else {
					out = append(out, rc.String())
				}
			}
		}
		return out
	}
	a, b := run(), run()
	drops, servfails, refused := 0, 0, 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d differs across identically seeded runs: %q vs %q", i, a[i], b[i])
		}
		switch a[i] {
		case "drop":
			drops++
		case dnswire.RCodeServFail.String():
			servfails++
		case dnswire.RCodeRefused.String():
			refused++
		}
	}
	// With 120 queries at the configured rates every class must occur.
	if drops == 0 || servfails == 0 || refused == 0 {
		t.Fatalf("fault mix unexercised: drops=%d servfails=%d refused=%d", drops, servfails, refused)
	}
}

// TestInjectorPerNameRetryRecovery: a name dropped on its first attempt
// draws a fresh decision on retransmission, so client retries can get
// through partial loss.
func TestInjectorPerNameRetryRecovery(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.1.0/24")
	inj := New(simclock.Real{}, 7, Profile{Prefix: prefix, Loss: 0.5})
	h := inj.Wrap(&echoHandler{})
	recovered := false
	for i := 1; i <= 64 && !recovered; i++ {
		ip := prefix.Nth(i)
		if _, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, ip, 1))); answered {
			continue
		}
		for attempt := 0; attempt < 4; attempt++ {
			if _, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, ip, 2))); answered {
				recovered = true
				break
			}
		}
	}
	if !recovered {
		t.Fatal("no dropped query ever recovered on retransmission")
	}
}

// TestInjectorProfileSelection: the most specific matching prefix governs,
// and queries outside every profile pass through untouched.
func TestInjectorProfileSelection(t *testing.T) {
	wide := dnswire.MustPrefix("10.9.0.0/16")
	narrow := dnswire.MustPrefix("10.9.2.0/24")
	inj := New(simclock.Real{}, 1,
		Profile{Prefix: wide, Drop: &Window{For: 1 << 30}},       // drop everything
		Profile{Prefix: narrow, ServFail: &Window{For: 1 << 30}}, // servfail everything
	)
	inner := &echoHandler{}
	h := inj.Wrap(inner)

	if _, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, dnswire.MustIPv4("10.9.3.1"), 1))); answered {
		t.Fatal("query under the wide profile was not dropped")
	}
	rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, dnswire.MustIPv4("10.9.2.1"), 2)))
	if !answered || rc != dnswire.RCodeServFail {
		t.Fatalf("narrow profile did not take precedence: answered=%v rc=%v", answered, rc)
	}
	before := inner.seen
	rc, answered = rcodeOf(t, h.HandleQuery(ptrQuery(t, dnswire.MustIPv4("192.0.2.1"), 3)))
	if !answered || rc != dnswire.RCodeNoError || inner.seen != before+1 {
		t.Fatalf("unprofiled query did not pass through: answered=%v rc=%v seen=%d", answered, rc, inner.seen)
	}
}

// TestInjectorFlapWindow: a repeating drop window alternates dead and
// alive phases by query count.
func TestInjectorFlapWindow(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.4.0/24")
	inj := New(simclock.Real{}, 1, Profile{
		Prefix: prefix,
		Drop:   &Window{After: 4, For: 4, Every: 8},
	})
	h := inj.Wrap(&echoHandler{})
	var got []bool
	for i := 0; i < 16; i++ {
		_, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(1+i%8), uint16(i))))
		got = append(got, answered)
	}
	want := []bool{
		true, true, true, true, false, false, false, false,
		true, true, true, true, false, false, false, false,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: answered=%v, want %v (flap phase wrong)", i, got[i], want[i])
		}
	}
}

// TestInjectorRateLimit: a refusing token bucket REFUSEs once the burst is
// spent and recovers after idling.
func TestInjectorRateLimit(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.5.0/24")
	inj := New(simclock.Real{}, 1, Profile{
		Prefix: prefix,
		Limit:  &RateLimit{QPS: 50, Burst: 5, Refuse: true},
	})
	h := inj.Wrap(&echoHandler{})
	refused := 0
	for i := 0; i < 30; i++ {
		rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(1+i%16), uint16(i))))
		if answered && rc == dnswire.RCodeRefused {
			refused++
		}
	}
	if refused == 0 {
		t.Fatal("burst of 30 queries against burst-5 bucket never refused")
	}
	time.Sleep(120 * time.Millisecond) // refill ~6 tokens
	rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(1), 99)))
	if !answered || rc != dnswire.RCodeNoError {
		t.Fatalf("bucket never refilled: answered=%v rc=%v", answered, rc)
	}
	if st := inj.Stats(prefix); st.Throttled == 0 || st.Refused == 0 {
		t.Fatalf("stats did not count throttling: %+v", st)
	}
}

// TestInjectorCompose: two stacked injectors both apply.
func TestInjectorCompose(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.6.0/24")
	outer := New(simclock.Real{}, 1, Profile{Prefix: prefix, ServFail: &Window{After: 1, For: 1 << 30}})
	inner := New(simclock.Real{}, 2, Profile{Prefix: prefix, Drop: &Window{For: 1}})
	h := outer.Wrap(inner.Wrap(&echoHandler{}))
	// Query 0: outer passes (window starts at 1), inner drops.
	if _, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(1), 1))); answered {
		t.Fatal("inner injector's drop did not apply")
	}
	// Query 1: outer SERVFAILs before inner sees it.
	rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, prefix.Nth(2), 2)))
	if !answered || rc != dnswire.RCodeServFail {
		t.Fatalf("outer injector's servfail did not apply: answered=%v rc=%v", answered, rc)
	}
}
