package faultsim

import (
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// TestSampleMatchesInjector pins the exported pure decision against the
// wire injector: for a rate-only profile (no windows, no throttle) the
// injector's verdict on (name, attempt) is exactly Profile.Sample's —
// the contract internal/vantage's enumeration-path fault lens builds on.
func TestSampleMatchesInjector(t *testing.T) {
	prefix := dnswire.MustPrefix("10.9.0.0/24")
	p := Profile{Prefix: prefix, Loss: 0.2, ServFailRate: 0.1, RefusedRate: 0.05}
	const seed = 1234
	h := New(simclock.Real{}, seed, p).Wrap(&echoHandler{})

	const attempts = 4
	var drops, servfails, refused int
	for i := 0; i < 256; i++ {
		ip := prefix.Nth(i)
		name := dnswire.ReverseName(ip)
		for a := uint64(0); a < attempts; a++ {
			want := p.Sample(seed, name, a)
			rc, answered := rcodeOf(t, h.HandleQuery(ptrQuery(t, ip, uint16(i))))
			var got Outcome
			switch {
			case !answered:
				got = OutcomeDrop
			case rc == dnswire.RCodeServFail:
				got = OutcomeServFail
			case rc == dnswire.RCodeRefused:
				got = OutcomeRefused
			default:
				got = OutcomePass
			}
			if got != want {
				t.Fatalf("ip %s attempt %d: injector %v, Sample %v", ip, a, got, want)
			}
			switch got {
			case OutcomeDrop:
				drops++
			case OutcomeServFail:
				servfails++
			case OutcomeRefused:
				refused++
			}
		}
	}
	if drops == 0 || servfails == 0 || refused == 0 {
		t.Fatalf("degenerate sample: drops=%d servfails=%d refused=%d", drops, servfails, refused)
	}
}

// TestSampleZeroProfilePasses pins the zero profile to all-pass, and the
// outcome names used in reports.
func TestSampleZeroProfilePasses(t *testing.T) {
	var p Profile
	name := dnswire.ReverseName(dnswire.MustIPv4("10.0.0.1"))
	for a := uint64(0); a < 100; a++ {
		if out := p.Sample(7, name, a); out != OutcomePass {
			t.Fatalf("zero profile attempt %d: %v", a, out)
		}
	}
	for out, want := range map[Outcome]string{
		OutcomePass: "pass", OutcomeDrop: "drop",
		OutcomeServFail: "servfail", OutcomeRefused: "refused",
	} {
		if out.String() != want {
			t.Fatalf("Outcome(%d).String() = %q, want %q", out, out.String(), want)
		}
	}
}

// TestProfileFor pins most-specific-prefix routing.
func TestProfileFor(t *testing.T) {
	profiles := []Profile{
		{Prefix: dnswire.MustPrefix("10.0.0.0/8"), Loss: 0.1},
		{Prefix: dnswire.MustPrefix("10.1.0.0/16"), Loss: 0.2},
		{Prefix: dnswire.MustPrefix("10.1.2.0/24"), Loss: 0.3},
	}
	cases := []struct {
		ip   string
		loss float64
	}{
		{"10.1.2.3", 0.3},
		{"10.1.9.1", 0.2},
		{"10.9.9.9", 0.1},
	}
	for _, c := range cases {
		got := ProfileFor(profiles, dnswire.MustIPv4(c.ip))
		if got == nil || got.Loss != c.loss {
			t.Fatalf("ProfileFor(%s) = %+v, want loss %v", c.ip, got, c.loss)
		}
	}
	if got := ProfileFor(profiles, dnswire.MustIPv4("192.0.2.1")); got != nil {
		t.Fatalf("ProfileFor outside all prefixes = %+v, want nil", got)
	}
}

// TestRoll: the auxiliary per-query roll is deterministic, in [0,1),
// roughly uniform, and independent across salt words.
func TestRoll(t *testing.T) {
	name := dnswire.MustName("7.1.0.10.in-addr.arpa")
	if Roll(42, name, 0x1A66, 3) != Roll(42, name, 0x1A66, 3) {
		t.Fatal("same tuple must roll the same value")
	}
	if Roll(42, name, 0x1A66, 3) == Roll(42, name, 0x1A66, 4) ||
		Roll(42, name, 0x1A66) == Roll(43, name, 0x1A66) {
		t.Fatal("distinct tuples collided")
	}
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		v := Roll(7, name, uint64(i))
		if v < 0 || v >= 1 {
			t.Fatalf("roll %d out of range: %v", i, v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.45 || mean > 0.55 {
		t.Fatalf("mean roll %v, want ~0.5", mean)
	}
}
