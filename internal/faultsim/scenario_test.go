package faultsim_test

// The scenario harness: full DHCP -> IPAM -> rDNS -> scan pipelines driven
// through named fault scenarios. Every scenario runs its pipeline twice
// from the same seed and requires bit-identical record sets (and, where
// fault decisions are count- or hash-based, bit-identical health
// fingerprints), leaks no goroutines, and upholds the health-report
// accounting invariants. Together they pin the end-to-end contract of the
// resilience stack: deterministic faults in, deterministic snapshots out.

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/testutil"
)

// campus is a simulated deployment: one authoritative server carrying one
// reverse zone per /24, populated by DHCP clients through an IPAM
// updater.
type campus struct {
	srv      *dnsserver.Server
	prefixes []dnswire.Prefix
	want     scanengine.RecordSet
	clients  []*dhcp.Client
	ips      []dnswire.IPv4
}

// buildCampus stands up the pipeline for the given /24s with hostsPer
// clients joined on each.
func buildCampus(t testing.TB, hostsPer int, prefixStrs ...string) *campus {
	t.Helper()
	c := &campus{srv: dnsserver.NewServer(), want: make(scanengine.RecordSet)}
	for pi, ps := range prefixStrs {
		prefix := dnswire.MustPrefix(ps)
		c.prefixes = append(c.prefixes, prefix)
		origin, err := dnswire.ReverseZoneFor24(prefix)
		if err != nil {
			t.Fatal(err)
		}
		zone := dnsserver.NewZone(dnsserver.ZoneConfig{
			Origin:    origin,
			PrimaryNS: dnswire.MustName(fmt.Sprintf("ns1.campus%d.test", pi)),
			Mbox:      dnswire.MustName(fmt.Sprintf("hostmaster.campus%d.test", pi)),
		})
		c.srv.AddZone(zone)
		updater := ipam.NewUpdater(ipam.Config{
			Policy: ipam.PolicyCarryOver,
			Suffix: dnswire.MustName(fmt.Sprintf("dyn.campus%d.test", pi)),
		})
		if err := updater.AttachZone(zone); err != nil {
			t.Fatal(err)
		}
		dhcpSrv := dhcp.NewServer(simclock.Real{}, dhcp.ServerConfig{
			ServerIP:  prefix.Nth(1),
			Pools:     []dnswire.Prefix{prefix},
			LeaseTime: time.Hour,
			Sink:      updater,
		})
		for i := 0; i < hostsPer; i++ {
			cl := dhcp.NewClient(simclock.Real{}, dhcpSrv, dhcp.ClientConfig{
				CHAddr:      dhcpwire.HardwareAddr{2, byte(pi), 0, 0, 1, byte(i + 1)},
				HostName:    fmt.Sprintf("host-%d-%d", pi, i),
				SendRelease: true,
			})
			ip, err := cl.Join()
			if err != nil {
				t.Fatal(err)
			}
			name, ok := zone.LookupPTR(dnswire.ReverseName(ip))
			if !ok {
				t.Fatalf("join of %s published no PTR", ip)
			}
			c.clients = append(c.clients, cl)
			c.ips = append(c.ips, ip)
			c.want[ip] = name
		}
	}
	return c
}

// digestRecords hashes a record set order-independently (sorted by
// address) for cross-run comparison.
func digestRecords(rs scanengine.RecordSet) uint64 {
	ips := make([]dnswire.IPv4, 0, len(rs))
	for ip := range rs {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Uint32() < ips[j].Uint32() })
	f := fnv.New64a()
	for _, ip := range ips {
		f.Write([]byte(ip.String()))
		f.Write([]byte{'='})
		f.Write([]byte(rs[ip]))
		f.Write([]byte{'\n'})
	}
	return f.Sum64()
}

// resilientSweep runs one sweep with the resilience layer on.
func resilientSweep(t testing.TB, sc *scanengine.Scanner, targets []dnswire.Prefix) *scanengine.Snapshot {
	t.Helper()
	snap, err := sc.Scan(context.Background(), scanengine.Request{Targets: targets})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return snap
}

func newResilientScanner(src scanengine.Source, rcfg scanengine.ResilienceConfig, opts ...scanengine.Option) *scanengine.Scanner {
	opts = append([]scanengine.Option{
		scanengine.WithResilience(rcfg),
		scanengine.WithWorkers(4),
	}, opts...)
	return scanengine.New(src, opts...)
}

// checkHealthInvariants verifies the health report's internal accounting:
// every shard covered, probes + skipped spanning the shard when the sweep
// completed, totals equal to per-shard sums, and the degraded list equal
// to the set of degraded shards.
func checkHealthInvariants(t testing.TB, snap *scanengine.Snapshot) {
	t.Helper()
	h := snap.Health
	if h == nil {
		t.Fatal("resilient sweep returned no health report")
	}
	if len(h.Shards) != len(snap.Shards) {
		t.Fatalf("health covers %d shards, sweep has %d", len(h.Shards), len(snap.Shards))
	}
	var tot scanengine.ResilienceTotals
	degraded := map[string]bool{}
	for i, sh := range h.Shards {
		if sh.Shard != snap.Shards[i].Shard {
			t.Fatalf("health shard %d is %v, sweep shard is %v", i, sh.Shard, snap.Shards[i].Shard)
		}
		if !snap.Partial && sh.Probes+sh.Skipped != sh.Shard.NumAddresses() {
			t.Fatalf("shard %v: probes %d + skipped %d != %d addresses",
				sh.Shard, sh.Probes, sh.Skipped, sh.Shard.NumAddresses())
		}
		if sh.Skipped > 0 && !sh.Degraded {
			t.Fatalf("shard %v skipped %d addresses without degrading", sh.Shard, sh.Skipped)
		}
		tot.Attempts += sh.Attempts
		tot.Retries += sh.Retries
		tot.Throttled += sh.Throttled
		tot.Hedges += sh.Hedges
		tot.HedgeWins += sh.HedgeWins
		tot.Skipped += sh.Skipped
		for _, ev := range sh.Breaker {
			if ev.State == scanengine.BreakerOpen {
				tot.BreakerOpens++
			}
		}
		if sh.Degraded {
			degraded[sh.Shard.String()] = true
		}
	}
	if tot != h.Totals {
		t.Fatalf("health totals %+v != per-shard sums %+v", h.Totals, tot)
	}
	if len(h.Degraded) != len(degraded) {
		t.Fatalf("degraded list %v != degraded shards %v", h.Degraded, degraded)
	}
	for _, p := range h.Degraded {
		if !degraded[p.String()] {
			t.Fatalf("degraded list names %v, which no shard flagged", p)
		}
	}
	if snap.Degraded != (len(h.Degraded) > 0) {
		t.Fatalf("Snapshot.Degraded = %v with %d degraded ranges", snap.Degraded, len(h.Degraded))
	}
	if snap.Stats.Skipped != uint64(tot.Skipped) {
		t.Fatalf("Stats.Skipped = %d, health says %d", snap.Stats.Skipped, tot.Skipped)
	}
}

// gaugeSource wraps a Source, sampling the goroutine high-water mark at
// every lookup.
type gaugeSource struct {
	inner scanengine.Source
	mu    sync.Mutex
	max   int
}

func (g *gaugeSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	n := runtime.NumGoroutine()
	g.mu.Lock()
	if n > g.max {
		g.max = n
	}
	g.mu.Unlock()
	return g.inner.LookupPTR(ctx, ip)
}

// Scenario: lossy /24. 20% of queries vanish; scan-level retries with
// deterministic backoff recover every record, twice, identically.
func TestScenarioLossyRange(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	baseline := runtime.NumGoroutine()
	var maxG int
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 40, "10.50.0.0/24")
		inj := faultsim.New(simclock.Real{}, 42, faultsim.Profile{Prefix: c.prefixes[0], Loss: 0.2})
		gauge := &gaugeSource{inner: &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}}
		sc := newResilientScanner(gauge, scanengine.ResilienceConfig{
			Retry: scanengine.RetryPolicy{MaxAttempts: 8, BaseDelay: 50 * time.Microsecond},
			Seed:  42,
		})
		snap := resilientSweep(t, sc, c.prefixes)
		if gauge.max > maxG {
			maxG = gauge.max
		}
		return c, snap
	}
	c1, s1 := run()
	_, s2 := run()
	if d1, d2 := digestRecords(s1.Records), digestRecords(s2.Records); d1 != d2 {
		t.Fatalf("same seed, different record sets: %x vs %x", d1, d2)
	}
	if f1, f2 := s1.Health.Fingerprint(), s2.Health.Fingerprint(); f1 != f2 {
		t.Fatalf("same seed, different health fingerprints: %x vs %x", f1, f2)
	}
	if digestRecords(s1.Records) != digestRecords(c1.want) {
		t.Fatalf("lossy sweep incomplete: %d/%d records, %d errors",
			len(s1.Records), len(c1.want), s1.Stats.Errors)
	}
	if s1.Stats.Retries == 0 {
		t.Fatal("20% loss produced zero retries")
	}
	if s1.Degraded {
		t.Fatal("lossy-but-recoverable sweep degraded")
	}
	checkHealthInvariants(t, s1)
	checkHealthInvariants(t, s2)
	// Bounded concurrency: the sweep may add its 4 workers plus a merge
	// goroutine and a little scheduler slack, not a goroutine per address.
	if limit := baseline + 4 + 16; maxG > limit {
		t.Fatalf("goroutine high-water mark %d exceeds bound %d", maxG, limit)
	}
}

// Scenario: flapping authoritative server. The server dies for 20 queries
// out of every 60; a retry budget longer than the dead phase rides out
// every flap and the snapshot is still complete.
func TestScenarioFlappingAuth(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 40, "10.51.0.0/24")
		inj := faultsim.New(simclock.Real{}, 7, faultsim.Profile{
			Prefix: c.prefixes[0],
			Drop:   &faultsim.Window{After: 30, For: 20, Every: 60},
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry: scanengine.RetryPolicy{MaxAttempts: 25, BaseDelay: 50 * time.Microsecond, MaxDelay: 400 * time.Microsecond},
			Seed:  7,
		})
		return c, resilientSweep(t, sc, c.prefixes)
	}
	c1, s1 := run()
	_, s2 := run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) ||
		s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("same seed, different outcomes across runs")
	}
	if digestRecords(s1.Records) != digestRecords(c1.want) {
		t.Fatalf("flapping sweep incomplete: %d/%d records, %d errors",
			len(s1.Records), len(c1.want), s1.Stats.Errors)
	}
	if s1.Stats.Retries < 20 {
		t.Fatalf("retries = %d; riding out flaps should have cost at least one dead phase", s1.Stats.Retries)
	}
	checkHealthInvariants(t, s1)
}

// Scenario: SERVFAIL storm. A 40-query burst of server failures trips the
// per-shard breaker, which cycles open/half-open until the storm passes,
// then closes; the shard finishes without degrading and the damage is a
// bounded, deterministic error count.
func TestScenarioServFailStorm(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() *scanengine.Snapshot {
		c := buildCampus(t, 40, "10.52.0.0/24")
		inj := faultsim.New(simclock.Real{}, 11, faultsim.Profile{
			Prefix:   c.prefixes[0],
			ServFail: &faultsim.Window{After: 20, For: 40},
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry:   scanengine.RetryPolicy{MaxAttempts: 2},
			Breaker: scanengine.BreakerConfig{Threshold: 4, OpenFor: time.Millisecond, MaxOpens: 60},
			Seed:    11,
		})
		return resilientSweep(t, sc, c.prefixes)
	}
	s1, s2 := run(), run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) ||
		s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("same seed, different outcomes across runs")
	}
	h := s1.Health.Shards[0]
	if s1.Health.Totals.BreakerOpens == 0 {
		t.Fatal("a 40-query SERVFAIL storm never opened the breaker")
	}
	if len(h.Breaker) == 0 || h.Breaker[len(h.Breaker)-1].State != scanengine.BreakerClosed {
		t.Fatalf("breaker did not close after the storm: %v", h.Breaker)
	}
	if s1.Degraded {
		t.Fatal("recoverable storm degraded the shard")
	}
	if s1.Stats.Errors == 0 || s1.Stats.Errors > 40 {
		t.Fatalf("storm errors = %d, want bounded by the 40-query window", s1.Stats.Errors)
	}
	checkHealthInvariants(t, s1)
}

// Scenario: slow-start against a rate limiter. The server REFUSEs
// above-budget traffic; adaptive pacing backs off until probes fit the
// budget and the sweep still recovers every record. The limiter is
// wall-clock, so only the record set (not the fault tally) is compared
// across runs.
func TestScenarioSlowStartRateLimiter(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 40, "10.53.0.0/24")
		inj := faultsim.New(simclock.Real{}, 5, faultsim.Profile{
			Prefix: c.prefixes[0],
			Limit:  &faultsim.RateLimit{QPS: 2000, Burst: 30, Refuse: true},
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry:    scanengine.RetryPolicy{MaxAttempts: 8},
			Throttle: scanengine.ThrottleConfig{InitialDelay: time.Millisecond, MaxDelay: 16 * time.Millisecond},
			Seed:     5,
		})
		return c, resilientSweep(t, sc, c.prefixes)
	}
	c1, s1 := run()
	_, s2 := run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) {
		t.Fatal("rate-limited sweeps disagree on the record set")
	}
	if digestRecords(s1.Records) != digestRecords(c1.want) {
		t.Fatalf("rate-limited sweep incomplete: %d/%d records, %d errors",
			len(s1.Records), len(c1.want), s1.Stats.Errors)
	}
	if s1.Health.Totals.Retries == 0 {
		t.Fatal("burst against a burst-30 limiter caused no retries")
	}
	checkHealthInvariants(t, s1)
	checkHealthInvariants(t, s2)
}

// Scenario: mid-sweep server restart. The server drops everything for a
// 50-query outage; damage is bounded to the probes whose whole retry
// budget fell inside the window, and is identical across runs.
func TestScenarioMidSweepRestart(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 40, "10.54.0.0/24")
		inj := faultsim.New(simclock.Real{}, 13, faultsim.Profile{
			Prefix: c.prefixes[0],
			Drop:   &faultsim.Window{After: 100, For: 50},
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry: scanengine.RetryPolicy{MaxAttempts: 8, BaseDelay: 50 * time.Microsecond},
			Seed:  13,
		})
		return c, resilientSweep(t, sc, c.prefixes)
	}
	c1, s1 := run()
	_, s2 := run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) ||
		s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("same seed, different outcomes across runs")
	}
	if s1.Stats.Errors == 0 || s1.Stats.Errors > 10 {
		t.Fatalf("restart errors = %d, want 1..10 (a 50-query outage over 8-attempt probes)", s1.Stats.Errors)
	}
	if got, want := len(s1.Records)+missingFrom(c1.want, s1.Records), len(c1.want); got != want {
		t.Fatalf("record accounting broken: %d found + missing != %d joined", got, want)
	}
	if s1.Degraded {
		t.Fatal("bounded restart outage degraded the shard")
	}
	checkHealthInvariants(t, s1)
}

func missingFrom(want, got scanengine.RecordSet) int {
	n := 0
	for ip := range want {
		if _, ok := got[ip]; !ok {
			n++
		}
	}
	return n
}

// switchableHandler swaps the handler chain between sweeps.
type switchableHandler struct {
	mu sync.Mutex
	h  faultsim.Handler
}

func (s *switchableHandler) set(h faultsim.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *switchableHandler) HandleQuery(query []byte) []byte {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	return h.HandleQuery(query)
}

// Scenario: correlated shard outage with graceful degradation. Two of
// four /24s go completely dark between sweeps; their breakers exhaust the
// open budget, the shards degrade and are skipped, the healthy shards
// complete, and removal inference ignores the dark ranges — a genuinely
// released host in a healthy range is still reported removed, while the
// dark ranges produce no phantom removals.
func TestScenarioCorrelatedShardOutage(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	prefixes := []string{"10.55.0.0/24", "10.55.1.0/24", "10.55.2.0/24", "10.55.3.0/24"}
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 20, prefixes...)
		sw := &switchableHandler{h: c.srv}
		src := &dnsclient.ServerSource{Server: sw}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry:   scanengine.RetryPolicy{MaxAttempts: 2},
			Breaker: scanengine.BreakerConfig{Threshold: 3, OpenFor: time.Millisecond, MaxOpens: 2},
			Seed:    17,
		})
		// Sweep 1: clean baseline.
		base := resilientSweep(t, sc, c.prefixes)
		if digestRecords(base.Records) != digestRecords(c.want) {
			t.Fatalf("clean baseline incomplete: %d/%d", len(base.Records), len(c.want))
		}
		// Outage on prefixes 1 and 2; one genuine release in prefix 0.
		inj := faultsim.New(simclock.Real{}, 17,
			faultsim.Profile{Prefix: c.prefixes[1], Drop: &faultsim.Window{For: 1 << 30}},
			faultsim.Profile{Prefix: c.prefixes[2], Drop: &faultsim.Window{For: 1 << 30}},
		)
		sw.set(inj.Wrap(c.srv))
		if err := c.clients[0].Leave(); err != nil {
			t.Fatal(err)
		}
		return c, resilientSweep(t, sc, c.prefixes)
	}
	c1, s1 := run()
	_, s2 := run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) ||
		s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("same seed, different outcomes across runs")
	}
	if !s1.Degraded {
		t.Fatal("total outage on two shards did not degrade the sweep")
	}
	dark := map[string]bool{}
	for _, p := range s1.Health.Degraded {
		dark[p.String()] = true
	}
	if len(dark) != 2 || !dark[prefixes[1]] || !dark[prefixes[2]] {
		t.Fatalf("degraded ranges %v, want exactly the dark shards %v", s1.Health.Degraded, prefixes[1:3])
	}
	var removed []dnswire.IPv4
	for _, ch := range s1.Changes {
		if ch.Kind != scanengine.RecordRemoved {
			continue
		}
		removed = append(removed, ch.IP)
		if dnswire.MustPrefix(prefixes[1]).Contains(ch.IP) || dnswire.MustPrefix(prefixes[2]).Contains(ch.IP) {
			t.Fatalf("phantom removal %s inside a degraded range", ch.IP)
		}
	}
	if len(removed) != 1 || removed[0] != c1.ips[0] {
		t.Fatalf("removals = %v, want exactly the released host %s", removed, c1.ips[0])
	}
	if s1.Stats.Skipped == 0 {
		t.Fatal("degraded shards skipped nothing")
	}
	checkHealthInvariants(t, s1)
}

// Scenario: hedging wins the tail. 8% of queries hit a 60ms latency
// spike; hedged lookups fire after 2ms and beat the stragglers. Hedge
// outcomes are timing-dependent, but with latency-only faults the record
// set and the health fingerprint stay deterministic.
func TestScenarioHedgingWinsTail(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() (*campus, *scanengine.Snapshot) {
		c := buildCampus(t, 30, "10.56.0.0/24")
		inj := faultsim.New(simclock.Real{}, 23, faultsim.Profile{
			Prefix:       c.prefixes[0],
			SpikeRate:    0.08,
			SpikeLatency: 60 * time.Millisecond,
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Hedge: scanengine.HedgeConfig{Delay: 2 * time.Millisecond},
			Seed:  23,
		})
		return c, resilientSweep(t, sc, c.prefixes)
	}
	c1, s1 := run()
	_, s2 := run()
	if digestRecords(s1.Records) != digestRecords(s2.Records) ||
		s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("latency-only faults must not perturb the deterministic outcome")
	}
	if digestRecords(s1.Records) != digestRecords(c1.want) {
		t.Fatalf("hedged sweep incomplete: %d/%d", len(s1.Records), len(c1.want))
	}
	if s1.Health.Totals.HedgeWins == 0 {
		t.Fatalf("no hedge ever won against 60ms spikes (hedges launched: %d)", s1.Health.Totals.Hedges)
	}
	checkHealthInvariants(t, s1)
}

// Scenario: breaker recovery arc. A single 12-query SERVFAIL burst walks
// the breaker through closed -> open -> half-open probes -> closed, with
// the transition history recorded by probe index and identical across
// runs.
func TestScenarioBreakerRecovery(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	run := func() *scanengine.Snapshot {
		c := buildCampus(t, 40, "10.57.0.0/24")
		inj := faultsim.New(simclock.Real{}, 29, faultsim.Profile{
			Prefix:   c.prefixes[0],
			ServFail: &faultsim.Window{After: 10, For: 12},
		})
		src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
		sc := newResilientScanner(src, scanengine.ResilienceConfig{
			Retry:   scanengine.RetryPolicy{MaxAttempts: 1},
			Breaker: scanengine.BreakerConfig{Threshold: 3, OpenFor: time.Millisecond, MaxOpens: 30},
			Seed:    29,
		})
		return resilientSweep(t, sc, c.prefixes)
	}
	s1, s2 := run(), run()
	if s1.Health.Fingerprint() != s2.Health.Fingerprint() {
		t.Fatal("same seed, different breaker histories")
	}
	h := s1.Health.Shards[0]
	if len(h.Breaker) < 3 {
		t.Fatalf("breaker history too short: %v", h.Breaker)
	}
	if h.Breaker[0].State != scanengine.BreakerOpen {
		t.Fatalf("first transition %v, want open", h.Breaker[0])
	}
	sawHalfOpen := false
	for _, ev := range h.Breaker {
		if ev.State == scanengine.BreakerHalfOpen {
			sawHalfOpen = true
		}
	}
	if !sawHalfOpen {
		t.Fatalf("no half-open probe in history: %v", h.Breaker)
	}
	if last := h.Breaker[len(h.Breaker)-1]; last.State != scanengine.BreakerClosed {
		t.Fatalf("breaker ended %v, want closed", last)
	}
	if h.Degraded {
		t.Fatal("recoverable burst degraded the shard")
	}
	for i := 1; i < len(h.Breaker); i++ {
		if h.Breaker[i].AtProbe < h.Breaker[i-1].AtProbe {
			t.Fatalf("breaker history out of probe order: %v", h.Breaker)
		}
	}
	checkHealthInvariants(t, s1)
}
