package faultsim

import "rdnsprivacy/internal/dnswire"

// Outcome is a profile's steady-state verdict on one query: the
// hash-rate portion of the injector's decision (Loss, ServFailRate,
// RefusedRate), without the stateful parts (outage windows, token
// buckets, latency). It is what a bulk scan path that never touches the
// wire needs to agree with the wire injector on.
type Outcome int

// Outcomes, in the order the injector evaluates them.
const (
	// OutcomePass answers normally.
	OutcomePass Outcome = iota
	// OutcomeDrop silently drops the query (a timeout to the client).
	OutcomeDrop
	// OutcomeServFail answers SERVFAIL.
	OutcomeServFail
	// OutcomeRefused answers REFUSED.
	OutcomeRefused
)

// String names the outcome for reports.
func (o Outcome) String() string {
	switch o {
	case OutcomeDrop:
		return "drop"
	case OutcomeServFail:
		return "servfail"
	case OutcomeRefused:
		return "refused"
	}
	return "pass"
}

// Sample classifies one (name, attempt) query under the profile's
// hash-based rates — the exact construction Injector uses for its
// steady-state decisions, exported so enumeration-path consumers
// (internal/vantage's fault lens) stay bit-compatible with the wire
// injector: away from windows and throttles, an Injector seeing name at
// attempt n returns the same verdict Sample does. Pure and
// goroutine-safe; the profile's Prefix is not consulted (callers route
// queries to profiles themselves).
func (p Profile) Sample(seed int64, name dnswire.Name, attempt uint64) Outcome {
	out, _ := p.sampleHash(faultHash(uint64(seed), nameHash(name), attempt))
	return out
}

// sampleHash evaluates the rate chain from the first mixed hash, and
// returns the verdict plus the hash state after the chain — decide
// continues from it for the spike roll.
func (p Profile) sampleHash(h uint64) (Outcome, uint64) {
	if p.Loss > 0 && unitFloat(h) < p.Loss {
		return OutcomeDrop, h
	}
	h = faultHash(h, 0x5EC0)
	if p.ServFailRate > 0 && unitFloat(h) < p.ServFailRate {
		return OutcomeServFail, h
	}
	h = faultHash(h, 0xEF01)
	if p.RefusedRate > 0 && unitFloat(h) < p.RefusedRate {
		return OutcomeRefused, h
	}
	return OutcomePass, h
}

// Roll returns a deterministic uniform value in [0,1) for one
// (seed, name, extra words) tuple — the injector's splitmix/FNV
// construction, exported for consumers that need auxiliary per-query
// randomness (internal/vantage's stale-view decisions) without inventing
// a second hash scheme. Distinct salt words give independent rolls.
func Roll(seed int64, name dnswire.Name, words ...uint64) float64 {
	h := faultHash(uint64(seed), nameHash(name))
	for _, w := range words {
		h = faultHash(h, w)
	}
	return unitFloat(h)
}

// ProfileFor returns the most specific profile whose prefix contains ip,
// or nil — the same overlap rule the injector applies to question names,
// for callers that route by address instead of wire messages.
func ProfileFor(profiles []Profile, ip dnswire.IPv4) *Profile {
	var best *Profile
	for i := range profiles {
		p := &profiles[i]
		if !p.Prefix.Contains(ip) {
			continue
		}
		if best == nil || p.Prefix.Bits > best.Prefix.Bits {
			best = p
		}
	}
	return best
}
