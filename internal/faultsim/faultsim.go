// Package faultsim is a seeded, deterministic fault-injection layer for
// the simulated rDNS universe. It wraps any message-level DNS handler
// (dnsserver.Server, or another injector) and perturbs the traffic
// according to per-network fault profiles: packet loss, latency and
// latency spikes, SERVFAIL/REFUSED bursts, truncation-style outage
// windows (server flaps and restarts), and rate-limit throttling.
//
// Determinism is the point. Every probabilistic decision is a pure
// function of (seed, question name, per-name attempt number), computed
// with the same splitmix64/FNV-1a construction dnsserver.FailureMode
// uses; outage windows are matched against per-profile query counters,
// not wall-clock time. Replaying the same query sequence against the same
// seed therefore reproduces the same faults bit-identically, regardless
// of goroutine scheduling — the property the scenario harness asserts by
// running every pipeline twice and comparing digests.
//
// Two caveats follow from the design:
//
//   - Count-based windows are deterministic only when each profile's
//     counter sees a deterministic query sequence: align profile prefixes
//     with the scan engine's shards (shards probe sequentially), or run a
//     single worker.
//   - Injected latency blocks the calling goroutine on the injector's
//     clock; with a simclock.Simulated nobody advances mid-call, so
//     latency profiles are for real-clock pipelines (scan-side tests use
//     small real delays).
//
// Rate limits are wall-clock token buckets and intentionally
// nondeterministic in fault counts (they model a server's view of probe
// timing); scenarios exercising them compare record sets, not fault
// tallies.
package faultsim

import (
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// Handler is the message-level server interface the injector wraps and
// presents: one wire-format query in, one wire-format response out, nil
// meaning the query was dropped. It matches dnsclient.QueryHandler and
// dnsserver.Server structurally; the type is redeclared here so faultsim
// depends on neither.
type Handler interface {
	HandleQuery(query []byte) []byte
}

// Window is a count-based outage window matched against a profile's
// query counter (0-based): queries [After, After+For) are affected; with
// Every > 0 the window repeats with that period, modelling a flapping
// server rather than a single outage.
type Window struct {
	// After is how many queries pass before the window opens.
	After int
	// For is the window length in queries.
	For int
	// Every, when positive, repeats the window with this period
	// (measured from After). Must be >= For to leave any gap.
	Every int
}

// match reports whether query number n (0-based) falls in the window.
func (w *Window) match(n uint64) bool {
	if w == nil || w.For <= 0 {
		return false
	}
	after := uint64(w.After)
	if n < after {
		return false
	}
	if w.Every > 0 {
		return (n-after)%uint64(w.Every) < uint64(w.For)
	}
	return n < after+uint64(w.For)
}

// RateLimit is a wall-clock token bucket modelling a rate-limiting name
// server.
type RateLimit struct {
	// QPS is the sustained refill rate. Zero disables the limit.
	QPS int
	// Burst is the bucket depth. Values below 1 mean 1.
	Burst int
	// Refuse answers throttled queries with REFUSED (the in-band
	// slow-down signal); false drops them silently.
	Refuse bool
}

// Profile is the fault behaviour of one address range. The zero value
// injects nothing.
type Profile struct {
	// Prefix selects the queries this profile governs (by the IP encoded
	// in the PTR question name). Overlapping profiles resolve to the most
	// specific prefix.
	Prefix dnswire.Prefix
	// Loss is the fraction of queries silently dropped.
	Loss float64
	// ServFailRate is the fraction of queries answered SERVFAIL.
	ServFailRate float64
	// RefusedRate is the fraction of queries answered REFUSED.
	RefusedRate float64
	// Latency delays every answered query.
	Latency time.Duration
	// SpikeRate is the fraction of queries additionally delayed by
	// SpikeLatency — the long tail hedged lookups exist to cut.
	SpikeRate    float64
	SpikeLatency time.Duration
	// Drop is a count-based outage window of silent drops (server down,
	// or flapping with Window.Every).
	Drop *Window
	// ServFail is a count-based window of SERVFAIL answers (server up
	// but broken — a restart's warm-up, a backend failure).
	ServFail *Window
	// Limit throttles the profile's query rate.
	Limit *RateLimit
}

// Stats counts one profile's injections.
type Stats struct {
	Queries   uint64
	Dropped   uint64
	ServFails uint64
	Refused   uint64
	Spiked    uint64
	Throttled uint64
}

// profileState is a Profile plus its live counters.
type profileState struct {
	p Profile

	mu    sync.Mutex
	count uint64 // total queries seen (windows match against this)
	seq   map[dnswire.Name]uint64
	stats Stats
	// token bucket
	tokens    float64
	lastPoll  time.Time
	primedLim bool
}

// action is the injector's verdict on one query.
type action int

const (
	actPass action = iota
	actDrop
	actServFail
	actRefused
)

// Injector wraps a Handler with fault profiles. Create one with New; it
// is safe for concurrent use.
type Injector struct {
	clock    simclock.Clock
	seed     int64
	profiles []*profileState
}

// New creates an injector over clock with the given seed and profiles.
func New(clock simclock.Clock, seed int64, profiles ...Profile) *Injector {
	if clock == nil {
		clock = simclock.Real{}
	}
	inj := &Injector{clock: clock, seed: seed}
	for _, p := range profiles {
		inj.profiles = append(inj.profiles, &profileState{
			p:   p,
			seq: make(map[dnswire.Name]uint64),
		})
	}
	return inj
}

// Stats returns the injection counters for the profile with the given
// prefix (zero Stats when no profile matches).
func (inj *Injector) Stats(prefix dnswire.Prefix) Stats {
	for _, ps := range inj.profiles {
		if ps.p.Prefix == prefix {
			ps.mu.Lock()
			st := ps.stats
			ps.mu.Unlock()
			return st
		}
	}
	return Stats{}
}

// TotalStats sums the counters across all profiles.
func (inj *Injector) TotalStats() Stats {
	var out Stats
	for _, ps := range inj.profiles {
		ps.mu.Lock()
		st := ps.stats
		ps.mu.Unlock()
		out.Queries += st.Queries
		out.Dropped += st.Dropped
		out.ServFails += st.ServFails
		out.Refused += st.Refused
		out.Spiked += st.Spiked
		out.Throttled += st.Throttled
	}
	return out
}

// Wrap returns a Handler that injects faults in front of inner.
// Injectors compose: Wrap the result of another injector's Wrap to stack
// independent fault layers.
func (inj *Injector) Wrap(inner Handler) Handler {
	return &wrapped{inj: inj, inner: inner}
}

type wrapped struct {
	inj   *Injector
	inner Handler
}

// HandleQuery implements Handler.
func (w *wrapped) HandleQuery(query []byte) []byte {
	msg, err := dnswire.Unmarshal(query)
	if err != nil || msg.Header.Response || len(msg.Questions) != 1 {
		// Not a query the injector understands: pass through untouched.
		return w.inner.HandleQuery(query)
	}
	name := msg.Questions[0].Name
	ps := w.inj.profileFor(name)
	if ps == nil {
		return w.inner.HandleQuery(query)
	}
	act, delay := ps.decide(w.inj, name)
	w.inj.sleep(delay)
	switch act {
	case actDrop:
		return nil
	case actServFail:
		return marshalRCode(msg, dnswire.RCodeServFail)
	case actRefused:
		return marshalRCode(msg, dnswire.RCodeRefused)
	}
	return w.inner.HandleQuery(query)
}

// profileFor returns the most specific profile whose prefix contains the
// IP encoded in the (reverse) question name, or nil.
func (inj *Injector) profileFor(name dnswire.Name) *profileState {
	ip, err := dnswire.ParseReverseName(name)
	if err != nil {
		return nil
	}
	var best *profileState
	for _, ps := range inj.profiles {
		if !ps.p.Prefix.Contains(ip) {
			continue
		}
		if best == nil || ps.p.Prefix.Bits > best.p.Prefix.Bits {
			best = ps
		}
	}
	return best
}

// decide classifies one query under the profile. Window checks run before
// hash-based rates, and drops before answer rewrites, so a flap window
// masks the steady-state loss rate rather than compounding with it.
func (ps *profileState) decide(inj *Injector, name dnswire.Name) (action, time.Duration) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	n := ps.count
	ps.count++
	attempt := ps.seq[name]
	ps.seq[name] = attempt + 1
	ps.stats.Queries++

	if ps.p.Drop.match(n) {
		ps.stats.Dropped++
		return actDrop, 0
	}
	if ps.p.ServFail.match(n) {
		ps.stats.ServFails++
		return actServFail, 0
	}
	if ps.throttledLocked(inj.clock.Now()) {
		ps.stats.Throttled++
		if ps.p.Limit.Refuse {
			ps.stats.Refused++
			return actRefused, 0
		}
		ps.stats.Dropped++
		return actDrop, 0
	}

	out, h := ps.p.sampleHash(faultHash(uint64(inj.seed), nameHash(name), attempt))
	switch out {
	case OutcomeDrop:
		ps.stats.Dropped++
		return actDrop, 0
	case OutcomeServFail:
		ps.stats.ServFails++
		return actServFail, ps.p.Latency
	case OutcomeRefused:
		ps.stats.Refused++
		return actRefused, ps.p.Latency
	}
	delay := ps.p.Latency
	h = faultHash(h, 0x51CE)
	if ps.p.SpikeRate > 0 && unitFloat(h) < ps.p.SpikeRate {
		ps.stats.Spiked++
		delay += ps.p.SpikeLatency
	}
	return actPass, delay
}

// throttledLocked consults the token bucket; caller holds ps.mu.
func (ps *profileState) throttledLocked(now time.Time) bool {
	l := ps.p.Limit
	if l == nil || l.QPS <= 0 {
		return false
	}
	burst := float64(l.Burst)
	if burst < 1 {
		burst = 1
	}
	if !ps.primedLim {
		ps.primedLim = true
		ps.lastPoll = now
		ps.tokens = burst
	}
	ps.tokens += now.Sub(ps.lastPoll).Seconds() * float64(l.QPS)
	ps.lastPoll = now
	if ps.tokens > burst {
		ps.tokens = burst
	}
	if ps.tokens < 1 {
		return true
	}
	ps.tokens--
	return false
}

// sleep blocks for d on the injector's clock.
func (inj *Injector) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	done := make(chan struct{})
	t := inj.clock.AfterFunc(d, func() { close(done) })
	defer t.Stop()
	<-done
}

// marshalRCode synthesizes a minimal response to query with the given
// rcode.
func marshalRCode(query *dnswire.Message, rcode dnswire.RCode) []byte {
	wire, err := dnswire.NewResponse(query, rcode).Marshal()
	if err != nil {
		return nil
	}
	return wire
}

// faultHash mixes words with the splitmix64 finalizer — the same
// construction as dnsserver's per-query failure hash, so both layers
// share one reproducibility story.
func faultHash(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// nameHash is FNV-1a over the name bytes.
func nameHash(n dnswire.Name) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(n); i++ {
		h ^= uint64(n[i])
		h *= 1099511628211
	}
	return h
}

// unitFloat maps a hash to [0,1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}
