package faultsim_test

// The deterministic-telemetry scenario: the observability layer must not
// perturb — or be perturbed by — the resilience stack. Running the same
// seeded fault scenario twice has to yield bit-identical metric digests
// and span digests, and the exported counters must agree with the
// HealthReport the sweep returns. This is what makes metric snapshots
// from faultsim replays directly diffable.

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/faultsim"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// telemetryRun is one instrumented execution of the BreakerRecovery
// scenario (a 12-query SERVFAIL burst that opens the breaker, recovers
// through half-open, and completes the shard undegraded).
type telemetryRun struct {
	snap   *scanengine.Snapshot
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

func runBreakerRecoveryWithTelemetry(t *testing.T) telemetryRun {
	t.Helper()
	c := buildCampus(t, 40, "10.57.0.0/24")
	inj := faultsim.New(simclock.Real{}, 29, faultsim.Profile{
		Prefix:   c.prefixes[0],
		ServFail: &faultsim.Window{After: 10, For: 12},
	})
	src := &dnsclient.ServerSource{Server: inj.Wrap(c.srv)}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(29, 0)
	sc := newResilientScanner(src, scanengine.ResilienceConfig{
		Retry:   scanengine.RetryPolicy{MaxAttempts: 1},
		Breaker: scanengine.BreakerConfig{Threshold: 3, OpenFor: time.Millisecond, MaxOpens: 30},
		Seed:    29,
	}, scanengine.WithTelemetry(reg), scanengine.WithTracer(tracer))
	return telemetryRun{
		snap:   resilientSweep(t, sc, c.prefixes),
		reg:    reg,
		tracer: tracer,
	}
}

// TestScenarioTelemetryDeterminism replays BreakerRecovery from the same
// seed and requires the two runs' metric and trace digests to be
// bit-identical, and each run's counters to match its HealthReport.
func TestScenarioTelemetryDeterminism(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	r1 := runBreakerRecoveryWithTelemetry(t)
	r2 := runBreakerRecoveryWithTelemetry(t)

	// Merge backpressure stalls depend on goroutine scheduling, not on the
	// seed; everything else in the registry must replay exactly.
	d1 := r1.reg.DeterministicDigest(scanengine.MetricMergeStalls)
	d2 := r2.reg.DeterministicDigest(scanengine.MetricMergeStalls)
	if d1 != d2 {
		t.Fatalf("same seed, different metric digests: %016x vs %016x\nrun1: %+v\nrun2: %+v",
			d1, d2, r1.reg.Snapshot().Counters, r2.reg.Snapshot().Counters)
	}
	if t1, t2 := r1.tracer.Digest(), r2.tracer.Digest(); t1 != t2 {
		t.Fatalf("same seed, different span digests: %016x vs %016x", t1, t2)
	}
	if r1.snap.Health.Fingerprint() != r2.snap.Health.Fingerprint() {
		t.Fatal("same seed, different health fingerprints")
	}

	// Per-run cross-checks: exported counters vs the sweep's own ledger.
	for _, r := range []telemetryRun{r1, r2} {
		counts := r.reg.Snapshot().Counters
		tot := r.snap.Health.Totals
		checks := []struct {
			metric string
			want   uint64
		}{
			{scanengine.MetricProbes, r.snap.Stats.Probes},
			{scanengine.MetricFound, r.snap.Stats.Found},
			{scanengine.MetricErrors, r.snap.Stats.Errors},
			{scanengine.MetricAttempts, uint64(tot.Attempts)},
			{scanengine.MetricRetries, uint64(tot.Retries)},
			{scanengine.MetricHedges, uint64(tot.Hedges)},
			{scanengine.MetricHedgeWins, uint64(tot.HedgeWins)},
			{scanengine.MetricThrottled, uint64(tot.Throttled)},
			{scanengine.MetricBreakerOpens, uint64(tot.BreakerOpens)},
			{scanengine.MetricSkipped, uint64(tot.Skipped)},
			{scanengine.MetricRemovalsExcluded, uint64(r.snap.Health.RemovalsExcluded)},
		}
		for _, c := range checks {
			if counts[c.metric] != c.want {
				t.Errorf("%s = %d, health/stats ledger says %d", c.metric, counts[c.metric], c.want)
			}
		}
	}

	// The scenario's signature activity must actually be present — a
	// digest match between two empty registries proves nothing.
	counts := r1.reg.Snapshot().Counters
	if counts[scanengine.MetricBreakerOpens] == 0 {
		t.Fatal("scenario produced no breaker opens; burst not exercised")
	}
	if counts[scanengine.MetricErrors] == 0 {
		t.Fatal("scenario produced no probe errors; SERVFAIL burst not exercised")
	}
	if r1.tracer.Len() == 0 {
		t.Fatal("no spans recorded")
	}
	checkHealthInvariants(t, r1.snap)
}
