package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{5, 15, 15, 95, -1, 100, 150} {
		h.Observe(v)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[9] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Underflow != 1 || h.Overflow != 2 {
		t.Fatalf("under=%d over=%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 4 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.BinCenter(0) != 5 {
		t.Fatalf("center = %v", h.BinCenter(0))
	}
}

func TestHistogramPeaks(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	// Peaks at bins 2 and 7.
	data := map[float64]int{2.5: 10, 1.5: 3, 3.5: 4, 7.5: 8, 6.5: 2, 8.5: 1}
	for v, n := range data {
		for i := 0; i < n; i++ {
			h.Observe(v)
		}
	}
	peaks := h.PeakBins(5)
	if len(peaks) != 2 || peaks[0] != 2 || peaks[1] != 7 {
		t.Fatalf("peaks = %v", peaks)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.At(5); got != 0.5 {
		t.Fatalf("At(5) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if got := c.Quantile(0.9); got != 10 {
		t.Fatalf("Quantile(0.9) = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v", got)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		c := NewCDF(vals)
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		return c.At(lo) <= c.At(hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyCDF(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 {
		t.Fatal("empty CDF At != 0")
	}
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty CDF Quantile not NaN")
	}
}

func seriesOf(vals ...float64) Series {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	s := Series{Values: vals}
	for i := range vals {
		s.Dates = append(s.Dates, start.AddDate(0, 0, i))
	}
	return s
}

func TestPercentOfMax(t *testing.T) {
	s := seriesOf(50, 100, 25).PercentOfMax()
	if s.Values[0] != 50 || s.Values[1] != 100 || s.Values[2] != 25 {
		t.Fatalf("values = %v", s.Values)
	}
	z := seriesOf(0, 0).PercentOfMax()
	if z.Values[0] != 0 {
		t.Fatal("zero series mishandled")
	}
}

func TestSeriesMinMaxMean(t *testing.T) {
	s := seriesOf(5, 1, 9, 3)
	dMin, vMin := s.Min()
	if vMin != 1 || dMin != s.Dates[1] {
		t.Fatalf("min = %v at %v", vMin, dMin)
	}
	dMax, vMax := s.Max()
	if vMax != 9 || dMax != s.Dates[2] {
		t.Fatalf("max = %v at %v", vMax, dMax)
	}
	mean := s.MeanBetween(s.Dates[0], s.Dates[2])
	if mean != 3 {
		t.Fatalf("mean = %v", mean)
	}
	if !math.IsNaN(s.MeanBetween(s.Dates[0], s.Dates[0])) {
		t.Fatal("empty window mean not NaN")
	}
}

func TestCrossoverAfter(t *testing.T) {
	a := seriesOf(10, 9, 5, 2)
	b := seriesOf(3, 4, 5, 8)
	got := CrossoverAfter(a, b, a.Dates[0], 1)
	if !got.Equal(a.Dates[2]) {
		t.Fatalf("crossover = %v, want %v", got, a.Dates[2])
	}
	if got := CrossoverAfter(b, seriesOf(0, 0, 0, 0), b.Dates[0], 1); !got.IsZero() {
		t.Fatalf("phantom crossover %v", got)
	}
}

func TestTruncateTo5Min(t *testing.T) {
	at := time.Date(2021, 11, 1, 9, 13, 45, 0, time.UTC)
	want := time.Date(2021, 11, 1, 9, 10, 0, 0, time.UTC)
	if got := TruncateTo5Min(at); !got.Equal(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestFormatDuration(t *testing.T) {
	if got := FormatDuration(65 * time.Minute); got != "65m" {
		t.Fatalf("got %q", got)
	}
	if got := FormatDuration(90 * time.Second); got != "1.5m" {
		t.Fatalf("got %q", got)
	}
}
