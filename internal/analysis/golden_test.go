package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestGoldenStatisticalHelpers pins the numeric behaviour of every helper
// in this package on a seeded synthetic dataset: a bimodal sample drawn
// from a splitmix64 stream feeds the histogram (bins, under/overflow,
// peaks) and the CDF (quantile ladder), and a pair of seeded day series
// exercises PercentOfMax, Min/Max, MeanBetween, and CrossoverAfter. The
// full rendering is checked in as testdata/helpers_seed3.golden so any
// drift in binning, quantile indexing, or crossover run-length logic shows
// up as a one-line diff. Regenerate with `go test ./internal/analysis/
// -run Golden -update`.
func TestGoldenStatisticalHelpers(t *testing.T) {
	var b strings.Builder
	rng := splitmix(3)

	// Bimodal sample: two uniform lobes around 20 and 70, plus a few
	// out-of-range values to land in under/overflow.
	var samples []float64
	for i := 0; i < 600; i++ {
		samples = append(samples, 15+10*unit(rng()))
	}
	for i := 0; i < 400; i++ {
		samples = append(samples, 65+10*unit(rng()))
	}
	samples = append(samples, -5, -1, 105, 110, 200)

	h := NewHistogram(0, 100, 20)
	for _, v := range samples {
		h.Observe(v)
	}
	fmt.Fprintf(&b, "histogram: total=%d underflow=%d overflow=%d\n",
		h.Total(), h.Underflow, h.Overflow)
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "bin[%02d] center=%5.1f count=%d\n", i, h.BinCenter(i), c)
	}
	fmt.Fprintf(&b, "peaks(min=50): %v\n", h.PeakBins(50))

	c := NewCDF(samples)
	fmt.Fprintf(&b, "cdf: n=%d\n", c.Len())
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		fmt.Fprintf(&b, "quantile(%.2f)=%.4f\n", q, c.Quantile(q))
	}
	for _, v := range []float64{0, 25, 50, 75, 100} {
		fmt.Fprintf(&b, "at(%.0f)=%.4f\n", v, c.At(v))
	}

	// Two 30-day series: a declining and a flat one, crossing mid-month.
	day0 := time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)
	a := Series{}
	flat := Series{}
	for i := 0; i < 30; i++ {
		d := day0.AddDate(0, 0, i)
		a.Dates = append(a.Dates, d)
		a.Values = append(a.Values, 100-3*float64(i)+2*unit(rng()))
		flat.Dates = append(flat.Dates, d)
		flat.Values = append(flat.Values, 55+unit(rng()))
	}
	pom := a.PercentOfMax()
	fmt.Fprintf(&b, "series: n=%d\n", len(a.Values))
	for i := range pom.Values {
		fmt.Fprintf(&b, "pom[%02d]=%.4f\n", i, pom.Values[i])
	}
	minD, minV := a.Min()
	maxD, maxV := a.Max()
	fmt.Fprintf(&b, "min: %s %.4f\n", minD.Format("2006-01-02"), minV)
	fmt.Fprintf(&b, "max: %s %.4f\n", maxD.Format("2006-01-02"), maxV)
	fmt.Fprintf(&b, "mean[0,15): %.4f\n", a.MeanBetween(day0, day0.AddDate(0, 0, 15)))
	cross := CrossoverAfter(a, flat, day0, 3)
	fmt.Fprintf(&b, "crossover(minRun=3): %s\n", cross.Format("2006-01-02"))
	fmt.Fprintf(&b, "truncate5: %s\n",
		TruncateTo5Min(time.Date(2021, 6, 1, 13, 7, 42, 0, time.UTC)).Format("15:04:05"))
	fmt.Fprintf(&b, "fmtdur: %s %s\n",
		FormatDuration(90*time.Minute), FormatDuration(75*time.Second))

	compareGolden(t, "helpers_seed3.golden", b.String())
}

// splitmix returns a deterministic uint64 stream (splitmix64), avoiding
// math/rand so the golden file cannot drift with the standard library's
// generator.
func splitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9E3779B97F4A7C15
		z := state
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
}

// unit maps a hash to [0,1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// compareGolden diffs got against testdata/<name>, rewriting under -update.
func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got == string(want) {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(string(want), "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Fatalf("golden mismatch at %s:%d\n got: %q\nwant: %q", path, i+1, g, w)
		}
	}
	t.Fatalf("golden mismatch against %s (equal lines, differing whitespace?)", path)
}
