// Package analysis provides the shared statistical helpers the experiment
// pipeline uses: histograms, empirical CDFs, percent-of-maximum series and
// time bucketing.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram counts values into fixed-width bins over [Min, Max).
type Histogram struct {
	Min, Max  float64
	BinWidth  float64
	Counts    []int
	Underflow int
	Overflow  int
}

// NewHistogram creates a histogram with the given range and bin count.
func NewHistogram(min, max float64, bins int) *Histogram {
	if bins <= 0 {
		bins = 1
	}
	return &Histogram{
		Min: min, Max: max,
		BinWidth: (max - min) / float64(bins),
		Counts:   make([]int, bins),
	}
}

// Observe adds a value.
func (h *Histogram) Observe(v float64) {
	if v < h.Min {
		h.Underflow++
		return
	}
	if v >= h.Max {
		h.Overflow++
		return
	}
	idx := int((v - h.Min) / h.BinWidth)
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of in-range observations.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.BinWidth
}

// PeakBins returns the indices of local maxima whose count is at least
// minCount, sorted by index. A bin is a local maximum if it is at least as
// large as both neighbours and strictly larger than one of them.
func (h *Histogram) PeakBins(minCount int) []int {
	var peaks []int
	for i, c := range h.Counts {
		if c < minCount {
			continue
		}
		left, right := 0, 0
		if i > 0 {
			left = h.Counts[i-1]
		}
		if i+1 < len(h.Counts) {
			right = h.Counts[i+1]
		}
		if c >= left && c >= right && (c > left || c > right) {
			peaks = append(peaks, i)
		}
	}
	return peaks
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= v).
func (c *CDF) At(v float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(v, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q * float64(len(c.sorted)))
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// Series is a time series of values.
type Series struct {
	Dates  []time.Time
	Values []float64
}

// PercentOfMax normalizes the series to percent of its maximum, the
// presentation of the paper's Figures 9 and 10.
func (s Series) PercentOfMax() Series {
	max := 0.0
	for _, v := range s.Values {
		if v > max {
			max = v
		}
	}
	out := Series{Dates: s.Dates, Values: make([]float64, len(s.Values))}
	if max == 0 {
		return out
	}
	for i, v := range s.Values {
		out.Values[i] = 100 * v / max
	}
	return out
}

// Min returns the smallest value and its date.
func (s Series) Min() (time.Time, float64) {
	if len(s.Values) == 0 {
		return time.Time{}, math.NaN()
	}
	bi := 0
	for i, v := range s.Values {
		if v < s.Values[bi] {
			bi = i
		}
	}
	return s.Dates[bi], s.Values[bi]
}

// Max returns the largest value and its date.
func (s Series) Max() (time.Time, float64) {
	if len(s.Values) == 0 {
		return time.Time{}, math.NaN()
	}
	bi := 0
	for i, v := range s.Values {
		if v > s.Values[bi] {
			bi = i
		}
	}
	return s.Dates[bi], s.Values[bi]
}

// MeanBetween averages values with dates in [from, to).
func (s Series) MeanBetween(from, to time.Time) float64 {
	sum, n := 0.0, 0
	for i, d := range s.Dates {
		if !d.Before(from) && d.Before(to) {
			sum += s.Values[i]
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// CrossoverAfter finds the first date at or after `from` where series a
// drops to or below series b and stays there for at least minRun
// consecutive samples (so a one-holiday dip does not count as a regime
// change). It returns the zero time if no sustained crossover occurs.
func CrossoverAfter(a, b Series, from time.Time, minRun int) time.Time {
	if minRun < 1 {
		minRun = 1
	}
	n := len(a.Dates)
	if len(b.Dates) < n {
		n = len(b.Dates)
	}
	run := 0
	var start time.Time
	for i := 0; i < n; i++ {
		if a.Dates[i].Before(from) {
			continue
		}
		if a.Values[i] <= b.Values[i] {
			if run == 0 {
				start = a.Dates[i]
			}
			run++
			if run >= minRun {
				return start
			}
		} else {
			run = 0
		}
	}
	return time.Time{}
}

// TruncateTo5Min truncates a timestamp to its five-minute bucket, matching
// the paper's supplementary-data merging rule ("we add, next to the
// original timestamp, a truncated timestamp per five minutes", Section 6.1).
func TruncateTo5Min(t time.Time) time.Time {
	return t.Truncate(5 * time.Minute)
}

// FormatDuration renders a duration in compact minutes form for reports.
func FormatDuration(d time.Duration) string {
	m := d.Minutes()
	if m == math.Trunc(m) {
		return fmt.Sprintf("%dm", int(m))
	}
	return fmt.Sprintf("%.1fm", m)
}
