package dhcp

import (
	"math/rand"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// TestRandomOperationsInvariants drives the server with a random sequence
// of joins, leaves (clean and silent) and clock advances, checking the
// allocation invariants after every step:
//
//  1. no address is ever held by two active leases;
//  2. every bound client's address matches the server's lease table;
//  3. leases never outlive their expiry plus the renewal horizon.
func TestRandomOperationsInvariants(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := simclock.NewSimulated(time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC))
		srv := NewServer(clock, ServerConfig{
			ServerIP:  dnswire.MustIPv4("192.0.2.1"),
			Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/26")}, // small pool: contention
			LeaseTime: time.Hour,
		})
		const numClients = 80 // more clients than addresses
		clients := make([]*Client, numClients)
		for i := range clients {
			clients[i] = NewClient(clock, srv, ClientConfig{
				CHAddr:      mac(byte(i + 1)),
				HostName:    "host",
				SendRelease: i%2 == 0,
			})
		}
		for step := 0; step < 600; step++ {
			c := clients[rng.Intn(numClients)]
			switch rng.Intn(3) {
			case 0:
				if _, bound := c.Bound(); !bound {
					c.Join() // may fail on exhaustion; that is fine
				}
			case 1:
				if _, bound := c.Bound(); bound {
					c.Leave()
				}
			case 2:
				clock.Advance(time.Duration(rng.Intn(45)) * time.Minute)
			}
			checkInvariants(t, srv, clients)
		}
	}
}

func checkInvariants(t *testing.T, srv *Server, clients []*Client) {
	t.Helper()
	leases := srv.ActiveLeases()
	byIP := make(map[dnswire.IPv4]Lease, len(leases))
	for _, l := range leases {
		if _, dup := byIP[l.IP]; dup {
			t.Fatalf("address %v held by two leases", l.IP)
		}
		byIP[l.IP] = l
	}
	for _, c := range clients {
		ip, bound := c.Bound()
		if !bound {
			continue
		}
		lease, ok := byIP[ip]
		if !ok {
			t.Fatalf("client bound to %v but server has no lease", ip)
		}
		if lease.CHAddr != c.cfg.CHAddr {
			t.Fatalf("lease at %v belongs to %v, client claims it with %v",
				ip, lease.CHAddr, c.cfg.CHAddr)
		}
	}
}
