package dhcp

import (
	"errors"
	"testing"
	"time"

	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

var epoch = time.Date(2021, 11, 1, 8, 0, 0, 0, time.UTC)

type recorder struct{ events []Event }

func (r *recorder) LeaseEvent(ev Event) { r.events = append(r.events, ev) }

func newServerEnv(t *testing.T, leaseTime time.Duration) (*Server, *recorder, *simclock.Simulated) {
	t.Helper()
	clock := simclock.NewSimulated(epoch)
	rec := &recorder{}
	srv := NewServer(clock, ServerConfig{
		ServerIP:  dnswire.MustIPv4("192.0.2.1"),
		Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
		LeaseTime: leaseTime,
		Sink:      rec,
	})
	return srv, rec, clock
}

func mac(last byte) dhcpwire.HardwareAddr {
	return dhcpwire.HardwareAddr{0x02, 0, 0, 0, 0, last}
}

func TestJoinAllocatesAndEmitsGranted(t *testing.T) {
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{
		CHAddr: mac(1), HostName: "Brians-iPhone", SendRelease: true,
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	if !dnswire.MustPrefix("192.0.2.0/24").Contains(ip) {
		t.Fatalf("allocated %v outside pool", ip)
	}
	if ip == dnswire.MustIPv4("192.0.2.0") || ip == dnswire.MustIPv4("192.0.2.255") || ip == dnswire.MustIPv4("192.0.2.1") {
		t.Fatalf("allocated reserved address %v", ip)
	}
	if len(rec.events) != 1 {
		t.Fatalf("events = %d, want 1", len(rec.events))
	}
	ev := rec.events[0]
	if ev.Kind != LeaseGranted || ev.IP != ip || ev.HostName != "Brians-iPhone" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.LeaseDuration != time.Hour {
		t.Fatalf("lease duration = %v", ev.LeaseDuration)
	}
	if got, bound := cl.Bound(); !bound || got != ip {
		t.Fatalf("Bound() = %v, %v", got, bound)
	}
}

func TestDoubleJoinFails(t *testing.T) {
	srv, _, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(1)})
	if _, err := cl.Join(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Join(); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("err = %v, want ErrAlreadyBound", err)
	}
}

func TestReleaseEmitsReleased(t *testing.T) {
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{
		CHAddr: mac(1), HostName: "Brians-mbp", SendRelease: true,
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Leave(); err != nil {
		t.Fatal(err)
	}
	if len(rec.events) != 2 {
		t.Fatalf("events = %v", rec.events)
	}
	ev := rec.events[1]
	if ev.Kind != LeaseReleased || ev.IP != ip {
		t.Fatalf("event = %+v", ev)
	}
	if _, bound := cl.Bound(); bound {
		t.Fatal("client still bound after Leave")
	}
	if len(srv.ActiveLeases()) != 0 {
		t.Fatal("lease survived release")
	}
}

func TestSilentLeaveExpiresServerSide(t *testing.T) {
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{
		CHAddr: mac(1), HostName: "Brians-ipad", SendRelease: false,
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Leave(); err != nil {
		t.Fatal(err)
	}
	// No release: the lease should persist until expiry.
	if len(srv.ActiveLeases()) != 1 {
		t.Fatal("lease vanished without release or expiry")
	}
	clock.Advance(59 * time.Minute)
	if len(srv.ActiveLeases()) != 1 {
		t.Fatal("lease expired early")
	}
	clock.Advance(2 * time.Minute)
	if len(srv.ActiveLeases()) != 0 {
		t.Fatal("lease did not expire")
	}
	last := rec.events[len(rec.events)-1]
	if last.Kind != LeaseExpired || last.IP != ip {
		t.Fatalf("last event = %+v", last)
	}
}

func TestRenewalKeepsLeaseAlive(t *testing.T) {
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(1), HostName: "h"})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	// Client renews at T1 = 30 min; over 3 hours the lease must never
	// expire.
	clock.Advance(3 * time.Hour)
	leases := srv.ActiveLeases()
	if len(leases) != 1 || leases[0].IP != ip {
		t.Fatalf("leases = %+v", leases)
	}
	renewals := 0
	for _, ev := range rec.events {
		switch ev.Kind {
		case LeaseRenewed:
			renewals++
		case LeaseExpired:
			t.Fatalf("lease expired despite renewals: %+v", ev)
		}
	}
	if renewals < 5 {
		t.Fatalf("renewals = %d, want >= 5 over 3h at 30m cadence", renewals)
	}
}

func TestStickyReallocationSameIP(t *testing.T) {
	srv, _, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(1), SendRelease: true})
	ip1, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	cl.Leave()
	// Another client joins in between.
	other := NewClient(clock, srv, ClientConfig{CHAddr: mac(2)})
	if _, err := other.Join(); err != nil {
		t.Fatal(err)
	}
	ip2, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	if ip1 != ip2 {
		t.Fatalf("returning client got %v, previously had %v (stickiness lost)", ip2, ip1)
	}
}

func TestDistinctClientsDistinctAddresses(t *testing.T) {
	srv, _, clock := newServerEnv(t, time.Hour)
	seen := make(map[dnswire.IPv4]bool)
	for i := 0; i < 50; i++ {
		cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(byte(i + 1))})
		ip, err := cl.Join()
		if err != nil {
			t.Fatal(err)
		}
		if seen[ip] {
			t.Fatalf("address %v allocated twice", ip)
		}
		seen[ip] = true
	}
	if len(srv.ActiveLeases()) != 50 {
		t.Fatalf("leases = %d, want 50", len(srv.ActiveLeases()))
	}
}

func TestPoolExhaustion(t *testing.T) {
	clock := simclock.NewSimulated(epoch)
	srv := NewServer(clock, ServerConfig{
		ServerIP: dnswire.MustIPv4("192.0.2.1"),
		// /30: network, two hosts, broadcast; one host is the server
		// IP... 192.0.2.0/30 = .0 .1 .2 .3, usable = .1, .2, minus
		// server .1 -> only .2.
		Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/30")},
		LeaseTime: time.Hour,
	})
	cl1 := NewClient(clock, srv, ClientConfig{CHAddr: mac(1)})
	if _, err := cl1.Join(); err != nil {
		t.Fatal(err)
	}
	cl2 := NewClient(clock, srv, ClientConfig{CHAddr: mac(2)})
	if _, err := cl2.Join(); err == nil {
		t.Fatal("second Join succeeded on exhausted pool")
	}
	if srv.Stats().Exhausted == 0 {
		t.Fatal("exhaustion not counted")
	}
}

func TestLeaseCarriesFQDNOption(t *testing.T) {
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{
		CHAddr: mac(1),
		ClientFQDN: &dhcpwire.ClientFQDN{
			Flags: dhcpwire.FQDNServerUpdates,
			Name:  "brians-galaxy-note9.example.edu",
		},
	})
	if _, err := cl.Join(); err != nil {
		t.Fatal(err)
	}
	ev := rec.events[0]
	if ev.ClientFQDN == nil || ev.ClientFQDN.Name != "brians-galaxy-note9.example.edu" {
		t.Fatalf("event FQDN = %+v", ev.ClientFQDN)
	}
}

func TestRejoinAfterExpiry(t *testing.T) {
	srv, _, clock := newServerEnv(t, 30*time.Minute)
	cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(1)})
	ip1, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	cl.Leave() // silent
	clock.Advance(time.Hour)
	if len(srv.ActiveLeases()) != 0 {
		t.Fatal("lease did not expire")
	}
	ip2, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	if ip1 != ip2 {
		t.Fatalf("sticky address lost across expiry: %v then %v", ip1, ip2)
	}
}

func TestServerRejectsMalformed(t *testing.T) {
	srv, _, _ := newServerEnv(t, time.Hour)
	if _, err := srv.Receive([]byte{1, 2, 3}); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestRequestForForeignServerIgnored(t *testing.T) {
	srv, _, _ := newServerEnv(t, time.Hour)
	req := &dhcpwire.Message{
		XID: 1, CHAddr: mac(1), Type: dhcpwire.Request,
		RequestedIP: dnswire.MustIPv4("192.0.2.10"),
		ServerID:    dnswire.MustIPv4("203.0.113.1"),
	}
	wire, _ := req.Marshal()
	if _, err := srv.Receive(wire); !errors.Is(err, ErrNotForUs) {
		t.Fatalf("err = %v, want ErrNotForUs", err)
	}
}

func TestNAKForTakenAddress(t *testing.T) {
	srv, _, clock := newServerEnv(t, time.Hour)
	cl1 := NewClient(clock, srv, ClientConfig{CHAddr: mac(1)})
	ip, err := cl1.Join()
	if err != nil {
		t.Fatal(err)
	}
	req := &dhcpwire.Message{
		XID: 5, CHAddr: mac(2), Type: dhcpwire.Request,
		RequestedIP: ip, ServerID: dnswire.MustIPv4("192.0.2.1"),
	}
	wire, _ := req.Marshal()
	reply, err := srv.Receive(wire)
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := dhcpwire.Parse(reply)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Type != dhcpwire.NAK {
		t.Fatalf("reply = %v, want NAK", parsed.Type)
	}
}

func TestEventKindStrings(t *testing.T) {
	if LeaseGranted.String() != "granted" || LeaseExpired.String() != "expired" {
		t.Fatal("EventKind.String broken")
	}
	if EventKind(9).String() != "event9" {
		t.Fatal("unknown EventKind.String broken")
	}
}

func TestHourlyExpiryTiming(t *testing.T) {
	// The paper's Figure 7a shows PTR-removal peaks at multiples of an
	// hour, driven by lease expiry. Verify the expiry fires exactly at
	// lease end for a silent leaver.
	srv, rec, clock := newServerEnv(t, time.Hour)
	cl := NewClient(clock, srv, ClientConfig{CHAddr: mac(1)})
	if _, err := cl.Join(); err != nil {
		t.Fatal(err)
	}
	cl.Leave() // silent
	clock.Advance(2 * time.Hour)
	var expiredAt time.Time
	for _, ev := range rec.events {
		if ev.Kind == LeaseExpired {
			expiredAt = ev.At
		}
	}
	if expiredAt.IsZero() {
		t.Fatal("no expiry event")
	}
	if got := expiredAt.Sub(epoch); got != time.Hour {
		t.Fatalf("expired after %v, want exactly 1h", got)
	}
}
