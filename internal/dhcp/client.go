package dhcp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// ClientConfig configures a DHCP client.
type ClientConfig struct {
	// CHAddr is the client hardware address.
	CHAddr dhcpwire.HardwareAddr
	// HostName is sent as option 12 on every DISCOVER/REQUEST; "" sends
	// none. Phone and laptop DHCP clients commonly fill this with the
	// device name ("Brians-iPhone"), which is the root of the leak.
	HostName string
	// ClientFQDN, if non-nil, is sent as option 81.
	ClientFQDN *dhcpwire.ClientFQDN
	// SendRelease controls whether Leave sends a DHCPRELEASE. Clients
	// that go out of range or get unplugged never do; the paper ties
	// the ~5-minute PTR removal peak to clients that release and the
	// hourly peaks to lease expiry (Section 6.2).
	SendRelease bool
}

// Client is a DHCPv4 client state machine. Create one with NewClient. It
// exchanges wire-encoded messages with a Server over the local segment and
// renews its lease automatically at half the lease time.
type Client struct {
	clock  simclock.Clock
	server *Server
	cfg    ClientConfig

	mu      sync.Mutex
	bound   bool
	ip      dnswire.IPv4
	lease   time.Duration
	renewal simclock.Timer
	xid     uint32
}

// Client errors.
var (
	ErrAlreadyBound = errors.New("dhcp: client already bound")
	ErrNotBound     = errors.New("dhcp: client not bound")
	ErrNoOffer      = errors.New("dhcp: no usable offer")
	ErrNAK          = errors.New("dhcp: request NAKed")
)

// NewClient creates a client that talks to server.
func NewClient(clock simclock.Clock, server *Server, cfg ClientConfig) *Client {
	return &Client{clock: clock, server: server, cfg: cfg}
}

// Bound reports whether the client currently holds a lease, and on what.
func (c *Client) Bound() (dnswire.IPv4, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ip, c.bound
}

// Join runs the DISCOVER → OFFER → REQUEST → ACK exchange and starts the
// renewal cycle. It returns the allocated address.
func (c *Client) Join() (dnswire.IPv4, error) {
	c.mu.Lock()
	if c.bound {
		c.mu.Unlock()
		return c.ip, ErrAlreadyBound
	}
	c.xid++
	xid := c.xid
	c.mu.Unlock()

	discover := &dhcpwire.Message{
		XID:        xid,
		CHAddr:     c.cfg.CHAddr,
		Type:       dhcpwire.Discover,
		HostName:   c.cfg.HostName,
		ClientFQDN: c.cfg.ClientFQDN,
		Broadcast:  true,
	}
	offer, err := c.exchange(discover)
	if err != nil {
		return dnswire.IPv4{}, fmt.Errorf("%w: %v", ErrNoOffer, err)
	}
	if offer == nil || offer.Type != dhcpwire.Offer || offer.YIAddr == (dnswire.IPv4{}) {
		return dnswire.IPv4{}, ErrNoOffer
	}

	request := &dhcpwire.Message{
		XID:         xid,
		CHAddr:      c.cfg.CHAddr,
		Type:        dhcpwire.Request,
		HostName:    c.cfg.HostName,
		ClientFQDN:  c.cfg.ClientFQDN,
		RequestedIP: offer.YIAddr,
		ServerID:    offer.ServerID,
		Broadcast:   true,
	}
	ack, err := c.exchange(request)
	if err != nil {
		return dnswire.IPv4{}, err
	}
	if ack == nil || ack.Type != dhcpwire.ACK {
		return dnswire.IPv4{}, ErrNAK
	}

	c.mu.Lock()
	c.bound = true
	c.ip = ack.YIAddr
	c.lease = ack.LeaseTime
	c.scheduleRenewalLocked()
	ip := c.ip
	c.mu.Unlock()
	return ip, nil
}

// Leave takes the client off the network. If configured with SendRelease it
// sends a DHCPRELEASE (the "clean leave"); otherwise it simply goes silent
// and lets the lease expire server-side.
func (c *Client) Leave() error {
	c.mu.Lock()
	if !c.bound {
		c.mu.Unlock()
		return ErrNotBound
	}
	c.bound = false
	ip := c.ip
	c.ip = dnswire.IPv4{}
	if c.renewal != nil {
		c.renewal.Stop()
		c.renewal = nil
	}
	sendRelease := c.cfg.SendRelease
	c.mu.Unlock()

	if sendRelease {
		release := &dhcpwire.Message{
			XID:      c.xid,
			CIAddr:   ip,
			CHAddr:   c.cfg.CHAddr,
			Type:     dhcpwire.Release,
			ServerID: c.server.cfg.ServerIP,
		}
		wire, err := release.Marshal()
		if err != nil {
			return err
		}
		// RELEASE gets no reply.
		if _, err := c.server.Receive(wire); err != nil {
			return err
		}
	}
	return nil
}

// renew extends the lease in place (REQUEST with ciaddr set).
func (c *Client) renew() {
	c.mu.Lock()
	if !c.bound {
		c.mu.Unlock()
		return
	}
	c.xid++
	xid := c.xid
	ip := c.ip
	c.mu.Unlock()

	request := &dhcpwire.Message{
		XID:        xid,
		CIAddr:     ip,
		CHAddr:     c.cfg.CHAddr,
		Type:       dhcpwire.Request,
		HostName:   c.cfg.HostName,
		ClientFQDN: c.cfg.ClientFQDN,
		ServerID:   c.server.cfg.ServerIP,
	}
	ack, err := c.exchange(request)

	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.bound {
		return
	}
	if err != nil || ack == nil || ack.Type != dhcpwire.ACK {
		// Renewal failed; the lease will expire server-side and the
		// client is effectively off the network.
		c.bound = false
		c.ip = dnswire.IPv4{}
		return
	}
	c.lease = ack.LeaseTime
	c.scheduleRenewalLocked()
}

func (c *Client) scheduleRenewalLocked() {
	if c.renewal != nil {
		c.renewal.Stop()
	}
	// T1 = half the lease time (RFC 2131 §4.4.5).
	c.renewal = c.clock.AfterFunc(c.lease/2, c.renew)
}

// exchange marshals a request, hands it to the server, and parses the reply.
func (c *Client) exchange(msg *dhcpwire.Message) (*dhcpwire.Message, error) {
	wire, err := msg.Marshal()
	if err != nil {
		return nil, err
	}
	reply, err := c.server.Receive(wire)
	if err != nil {
		return nil, err
	}
	if reply == nil {
		return nil, nil
	}
	parsed, err := dhcpwire.Parse(reply)
	if err != nil {
		return nil, err
	}
	if parsed.XID != msg.XID || !parsed.BootReply {
		return nil, fmt.Errorf("dhcp: reply does not match request")
	}
	return parsed, nil
}
