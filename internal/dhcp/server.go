// Package dhcp implements a DHCPv4 server and client state machine.
//
// This is the network-operator substrate at the root of the leak the paper
// studies: clients announce a Host Name (or Client FQDN) when they request a
// lease, the server allocates an address, and lease lifecycle events —
// granted, renewed, released, expired — are emitted to an IPAM policy engine
// (internal/ipam) which may publish the client identifier in the global
// reverse DNS.
//
// DHCP runs on the local network segment; the paper's outside observer never
// sees it (that is precisely why the rDNS side channel matters). The
// exchange therefore runs over a synchronous in-network path rather than the
// Internet fabric, but every message is still a fully encoded RFC 2131
// packet passed through internal/dhcpwire.
package dhcp

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// EventKind classifies lease lifecycle events.
type EventKind int

// Lease lifecycle events.
const (
	// LeaseGranted is a new allocation (DISCOVER/REQUEST → ACK).
	LeaseGranted EventKind = iota
	// LeaseRenewed is a renewal of an existing allocation.
	LeaseRenewed
	// LeaseReleased is an explicit client release (the client "cleanly
	// leaves" the network, in the paper's phrasing).
	LeaseReleased
	// LeaseExpired is a server-side expiry: the client vanished without
	// releasing (out of range, unplugged).
	LeaseExpired
)

// String returns a mnemonic.
func (k EventKind) String() string {
	switch k {
	case LeaseGranted:
		return "granted"
	case LeaseRenewed:
		return "renewed"
	case LeaseReleased:
		return "released"
	case LeaseExpired:
		return "expired"
	default:
		return fmt.Sprintf("event%d", int(k))
	}
}

// Event is a lease lifecycle notification delivered to the IPAM layer.
type Event struct {
	Kind EventKind
	// IP is the leased address.
	IP dnswire.IPv4
	// HostName is the client's Host Name option, "" if none was sent.
	HostName string
	// ClientFQDN is the client's FQDN option, nil if none was sent.
	ClientFQDN *dhcpwire.ClientFQDN
	// CHAddr is the client hardware address.
	CHAddr dhcpwire.HardwareAddr
	// At is when the event occurred.
	At time.Time
	// LeaseDuration is the granted lease time (Granted/Renewed).
	LeaseDuration time.Duration
}

// EventSink receives lease lifecycle events. internal/ipam implements it.
type EventSink interface {
	LeaseEvent(Event)
}

// EventSinkFunc adapts a function to EventSink.
type EventSinkFunc func(Event)

// LeaseEvent implements EventSink.
func (f EventSinkFunc) LeaseEvent(ev Event) { f(ev) }

// ServerConfig configures a Server.
type ServerConfig struct {
	// ServerIP identifies the server (option 54).
	ServerIP dnswire.IPv4
	// Pools are the address ranges available for dynamic allocation.
	Pools []dnswire.Prefix
	// LeaseTime is the granted lease duration. The paper observes that
	// operators often set "an hour for a fast turn-over rate"
	// (Section 6.2); that is the default.
	LeaseTime time.Duration
	// Sink receives lease events; may be nil.
	Sink EventSink
}

// Lease is a current address allocation.
type Lease struct {
	IP         dnswire.IPv4
	CHAddr     dhcpwire.HardwareAddr
	HostName   string
	ClientFQDN *dhcpwire.ClientFQDN
	Expires    time.Time
}

// Server is a DHCPv4 server. Create one with NewServer.
type Server struct {
	clock simclock.Clock
	cfg   ServerConfig

	mu       sync.Mutex
	byIP     map[dnswire.IPv4]*leaseState
	byCH     map[dhcpwire.HardwareAddr]*leaseState
	sticky   map[dhcpwire.HardwareAddr]dnswire.IPv4
	poolIPs  []dnswire.IPv4
	nextScan int
	stats    ServerStats
}

type leaseState struct {
	lease Lease
	timer simclock.Timer
}

// ServerStats counts server activity.
type ServerStats struct {
	Discovers uint64
	Requests  uint64
	ACKs      uint64
	NAKs      uint64
	Releases  uint64
	Expiries  uint64
	Exhausted uint64
}

// Errors returned by the server.
var (
	ErrPoolExhausted = errors.New("dhcp: address pool exhausted")
	ErrMalformed     = errors.New("dhcp: malformed message")
	ErrNotForUs      = errors.New("dhcp: message addressed to another server")
)

// NewServer creates a server allocating from cfg.Pools on clock time.
func NewServer(clock simclock.Clock, cfg ServerConfig) *Server {
	if cfg.LeaseTime <= 0 {
		cfg.LeaseTime = time.Hour
	}
	s := &Server{
		clock:  clock,
		cfg:    cfg,
		byIP:   make(map[dnswire.IPv4]*leaseState),
		byCH:   make(map[dhcpwire.HardwareAddr]*leaseState),
		sticky: make(map[dhcpwire.HardwareAddr]dnswire.IPv4),
	}
	for _, p := range cfg.Pools {
		n := p.NumAddresses()
		for i := 0; i < n; i++ {
			ip := p.Nth(i)
			// Skip network/broadcast addresses of /24-or-shorter
			// pools and the server's own address.
			if ip == p.First() || ip == p.Last() || ip == cfg.ServerIP {
				continue
			}
			s.poolIPs = append(s.poolIPs, ip)
		}
	}
	return s
}

// Prebind seeds the server's sticky map so that a client is offered a
// specific address on its first DISCOVER. Network simulations use it to
// keep event-driven address allocation consistent with the deterministic
// device-to-address plan used for snapshot evaluation.
func (s *Server) Prebind(ch dhcpwire.HardwareAddr, ip dnswire.IPv4) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sticky[ch] = ip
}

// Stats returns a snapshot of server counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// ActiveLeases returns a snapshot of current leases.
func (s *Server) ActiveLeases() []Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Lease, 0, len(s.byIP))
	for _, ls := range s.byIP {
		out = append(out, ls.lease)
	}
	return out
}

// LeaseFor returns the active lease for a hardware address, if any.
func (s *Server) LeaseFor(ch dhcpwire.HardwareAddr) (Lease, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ls, ok := s.byCH[ch]; ok {
		return ls.lease, true
	}
	return Lease{}, false
}

// Receive processes one wire-format client message and returns the
// wire-format reply, or nil when the protocol calls for no reply (RELEASE).
func (s *Server) Receive(buf []byte) ([]byte, error) {
	msg, err := dhcpwire.Parse(buf)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	if msg.BootReply {
		return nil, fmt.Errorf("%w: reply received by server", ErrMalformed)
	}
	switch msg.Type {
	case dhcpwire.Discover:
		return s.handleDiscover(msg)
	case dhcpwire.Request:
		return s.handleRequest(msg)
	case dhcpwire.Release:
		s.handleRelease(msg)
		return nil, nil
	default:
		return nil, fmt.Errorf("%w: unsupported type %v", ErrMalformed, msg.Type)
	}
}

func (s *Server) handleDiscover(msg *dhcpwire.Message) ([]byte, error) {
	s.mu.Lock()
	s.stats.Discovers++
	ip, ok := s.pickAddressLocked(msg.CHAddr, msg.RequestedIP)
	if !ok {
		s.stats.Exhausted++
		s.mu.Unlock()
		return nil, ErrPoolExhausted
	}
	s.mu.Unlock()
	offer := &dhcpwire.Message{
		BootReply: true,
		XID:       msg.XID,
		YIAddr:    ip,
		SIAddr:    s.cfg.ServerIP,
		CHAddr:    msg.CHAddr,
		Type:      dhcpwire.Offer,
		LeaseTime: s.cfg.LeaseTime,
		ServerID:  s.cfg.ServerIP,
	}
	return offer.Marshal()
}

func (s *Server) handleRequest(msg *dhcpwire.Message) ([]byte, error) {
	if msg.ServerID != (dnswire.IPv4{}) && msg.ServerID != s.cfg.ServerIP {
		return nil, ErrNotForUs
	}
	want := msg.RequestedIP
	if want == (dnswire.IPv4{}) {
		// Renewal: the client puts its address in ciaddr.
		want = msg.CIAddr
	}
	now := s.clock.Now()

	s.mu.Lock()
	s.stats.Requests++
	existing, hasExisting := s.byCH[msg.CHAddr]
	renewal := hasExisting && existing.lease.IP == want
	if !renewal {
		// Fresh allocation; the address must be ours and free (or
		// held by the same client).
		if !s.inPoolLocked(want) || (s.byIP[want] != nil && s.byIP[want].lease.CHAddr != msg.CHAddr) {
			s.stats.NAKs++
			s.mu.Unlock()
			nak := &dhcpwire.Message{
				BootReply: true, XID: msg.XID, CHAddr: msg.CHAddr,
				Type: dhcpwire.NAK, ServerID: s.cfg.ServerIP,
			}
			return nak.Marshal()
		}
	}

	lease := Lease{
		IP:         want,
		CHAddr:     msg.CHAddr,
		HostName:   msg.HostName,
		ClientFQDN: msg.ClientFQDN,
		Expires:    now.Add(s.cfg.LeaseTime),
	}
	var old *leaseState
	if hasExisting && existing.lease.IP != want {
		// Client moved to a new address; drop the old lease silently.
		old = existing
		delete(s.byIP, existing.lease.IP)
	}
	ls := s.byIP[want]
	if ls == nil {
		ls = &leaseState{}
		s.byIP[want] = ls
	}
	if ls.timer != nil {
		ls.timer.Stop()
	}
	ls.lease = lease
	s.byCH[msg.CHAddr] = ls
	s.sticky[msg.CHAddr] = want
	ls.timer = s.scheduleExpiryLocked(want, lease.Expires)
	s.stats.ACKs++
	s.mu.Unlock()

	if old != nil && old.timer != nil {
		old.timer.Stop()
	}
	kind := LeaseGranted
	if renewal {
		kind = LeaseRenewed
	}
	s.emit(Event{
		Kind: kind, IP: want, HostName: msg.HostName,
		ClientFQDN: msg.ClientFQDN, CHAddr: msg.CHAddr,
		At: now, LeaseDuration: s.cfg.LeaseTime,
	})

	ack := &dhcpwire.Message{
		BootReply: true,
		XID:       msg.XID,
		YIAddr:    want,
		SIAddr:    s.cfg.ServerIP,
		CHAddr:    msg.CHAddr,
		Type:      dhcpwire.ACK,
		LeaseTime: s.cfg.LeaseTime,
		ServerID:  s.cfg.ServerIP,
	}
	return ack.Marshal()
}

func (s *Server) handleRelease(msg *dhcpwire.Message) {
	now := s.clock.Now()
	s.mu.Lock()
	ls, ok := s.byIP[msg.CIAddr]
	if !ok || ls.lease.CHAddr != msg.CHAddr {
		s.mu.Unlock()
		return
	}
	s.stats.Releases++
	lease := ls.lease
	s.removeLocked(ls)
	s.mu.Unlock()
	s.emit(Event{
		Kind: LeaseReleased, IP: lease.IP, HostName: lease.HostName,
		ClientFQDN: lease.ClientFQDN, CHAddr: lease.CHAddr, At: now,
	})
}

// removeLocked drops a lease from both indexes and stops its timer.
func (s *Server) removeLocked(ls *leaseState) {
	delete(s.byIP, ls.lease.IP)
	if cur, ok := s.byCH[ls.lease.CHAddr]; ok && cur == ls {
		delete(s.byCH, ls.lease.CHAddr)
	}
	if ls.timer != nil {
		ls.timer.Stop()
	}
}

func (s *Server) scheduleExpiryLocked(ip dnswire.IPv4, expires time.Time) simclock.Timer {
	return s.clock.AfterFunc(expires.Sub(s.clock.Now()), func() {
		s.mu.Lock()
		ls, ok := s.byIP[ip]
		if !ok || s.clock.Now().Before(ls.lease.Expires) {
			s.mu.Unlock()
			return
		}
		s.stats.Expiries++
		lease := ls.lease
		s.removeLocked(ls)
		s.mu.Unlock()
		s.emit(Event{
			Kind: LeaseExpired, IP: lease.IP, HostName: lease.HostName,
			ClientFQDN: lease.ClientFQDN, CHAddr: lease.CHAddr,
			At: s.clock.Now(),
		})
	})
}

// pickAddressLocked chooses an address for a client: its current lease,
// then its last (sticky) address, then its requested address, then the next
// free pool address.
func (s *Server) pickAddressLocked(ch dhcpwire.HardwareAddr, requested dnswire.IPv4) (dnswire.IPv4, bool) {
	if ls, ok := s.byCH[ch]; ok {
		return ls.lease.IP, true
	}
	if ip, ok := s.sticky[ch]; ok {
		if _, taken := s.byIP[ip]; !taken {
			return ip, true
		}
	}
	if requested != (dnswire.IPv4{}) && s.inPoolLocked(requested) {
		if _, taken := s.byIP[requested]; !taken {
			return requested, true
		}
	}
	// Round-robin scan for a free address.
	n := len(s.poolIPs)
	for i := 0; i < n; i++ {
		ip := s.poolIPs[(s.nextScan+i)%n]
		if _, taken := s.byIP[ip]; !taken {
			s.nextScan = (s.nextScan + i + 1) % n
			return ip, true
		}
	}
	return dnswire.IPv4{}, false
}

func (s *Server) inPoolLocked(ip dnswire.IPv4) bool {
	for _, p := range s.cfg.Pools {
		if p.Contains(ip) && ip != p.First() && ip != p.Last() && ip != s.cfg.ServerIP {
			return true
		}
	}
	return false
}

func (s *Server) emit(ev Event) {
	if s.cfg.Sink != nil {
		s.cfg.Sink.LeaseEvent(ev)
	}
}
