package icmp

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

var (
	epoch   = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	vantage = dnswire.MustIPv4("198.51.100.1")
)

func newProbeEnv(t *testing.T, cfg ProberConfig) (*Prober, *fabric.Fabric, *simclock.Simulated) {
	t.Helper()
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{Latency: 10 * time.Millisecond})
	cfg.Vantage = vantage
	p, err := NewProber(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p, fab, clock
}

func TestProbeAliveHost(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{ID: 99})
	target := dnswire.MustIPv4("192.0.2.55")
	NewResponder(fab, dnswire.MustPrefix("192.0.2.0/24"), func(ip dnswire.IPv4) bool {
		return ip == target
	}, false)

	var got *ProbeResult
	p.Probe(target, func(r ProbeResult) { got = &r })
	clock.Advance(time.Second)
	if got == nil {
		t.Fatal("probe never completed")
	}
	if !got.Alive {
		t.Fatal("alive host reported dead")
	}
	if got.RTT != 20*time.Millisecond {
		t.Fatalf("RTT = %v, want 20ms (two fabric hops)", got.RTT)
	}
	st := p.Stats()
	if st.Sent != 1 || st.Received != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProbeDeadHostTimesOut(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{Timeout: 2 * time.Second})
	NewResponder(fab, dnswire.MustPrefix("192.0.2.0/24"), func(dnswire.IPv4) bool { return false }, false)

	var got *ProbeResult
	p.Probe(dnswire.MustIPv4("192.0.2.55"), func(r ProbeResult) { got = &r })
	clock.Advance(time.Second)
	if got != nil {
		t.Fatal("probe completed before timeout")
	}
	clock.Advance(2 * time.Second)
	if got == nil {
		t.Fatal("probe never timed out")
	}
	if got.Alive {
		t.Fatal("dead host reported alive")
	}
}

func TestProbeBlockedIngress(t *testing.T) {
	// Enterprise-B/C in the paper: hosts online but operator drops ICMP.
	p, fab, clock := newProbeEnv(t, ProberConfig{Timeout: time.Second})
	NewResponder(fab, dnswire.MustPrefix("192.0.2.0/24"), func(dnswire.IPv4) bool { return true }, true)

	var got *ProbeResult
	p.Probe(dnswire.MustIPv4("192.0.2.55"), func(r ProbeResult) { got = &r })
	clock.Advance(5 * time.Second)
	if got == nil || got.Alive {
		t.Fatalf("got %+v, want timeout with Alive=false", got)
	}
}

func TestProbeBlocklistOptOut(t *testing.T) {
	p, _, clock := newProbeEnv(t, ProberConfig{
		Blocklist: []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
	})
	var got *ProbeResult
	p.Probe(dnswire.MustIPv4("192.0.2.55"), func(r ProbeResult) { got = &r })
	if got == nil {
		t.Fatal("blocklisted probe did not complete immediately")
	}
	if got.Alive {
		t.Fatal("blocklisted target reported alive")
	}
	clock.Advance(time.Minute)
	st := p.Stats()
	if st.Sent != 0 || st.Blocked != 1 {
		t.Fatalf("stats = %+v; traffic sent to opted-out space", st)
	}
}

func TestSweepCompletes(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{Timeout: time.Second})
	// Odd addresses are alive.
	NewResponder(fab, dnswire.MustPrefix("192.0.2.0/24"), func(ip dnswire.IPv4) bool {
		return ip[3]%2 == 1
	}, false)

	var results []ProbeResult
	p.Sweep(dnswire.MustPrefix("192.0.2.0/24"), func(rs []ProbeResult) { results = rs })
	clock.Advance(5 * time.Second)
	if results == nil {
		t.Fatal("sweep never completed")
	}
	if len(results) != 256 {
		t.Fatalf("got %d results, want 256", len(results))
	}
	alive := 0
	for i, r := range results {
		if r.Target != dnswire.MustPrefix("192.0.2.0/24").Nth(i) {
			t.Fatalf("result %d targets %v", i, r.Target)
		}
		if r.Alive {
			alive++
			if r.Target[3]%2 != 1 {
				t.Fatalf("even host %v alive", r.Target)
			}
		}
	}
	if alive != 128 {
		t.Fatalf("alive = %d, want 128", alive)
	}
}

func TestRateLimitSpreadsProbes(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{RatePerSecond: 10, Timeout: 100 * time.Millisecond})
	NewResponder(fab, dnswire.MustPrefix("192.0.2.0/24"), func(dnswire.IPv4) bool { return true }, false)

	done := 0
	for i := 0; i < 20; i++ {
		p.Probe(dnswire.MustPrefix("192.0.2.0/24").Nth(i), func(ProbeResult) { done++ })
	}
	// At 10 pps, 20 probes take 1.9s to transmit. After 1s only ~11
	// transmissions have happened (slots 0..1s).
	clock.Advance(time.Second)
	if done >= 20 {
		t.Fatalf("all %d probes done after 1s at 10 pps", done)
	}
	clock.Advance(2 * time.Second)
	if done != 20 {
		t.Fatalf("done = %d, want 20", done)
	}
}

func TestProbeIgnoresForeignReplies(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{ID: 5, Timeout: time.Second})
	// A host that answers with the wrong ICMP identifier.
	fab.RegisterICMPPrefix(dnswire.MustPrefix("192.0.2.0/24"), func(src, dst dnswire.IPv4, payload []byte) {
		req, err := Parse(payload)
		if err != nil {
			return
		}
		fake := &Echo{Reply: true, ID: req.ID + 1, Seq: req.Seq}
		fab.SendICMP(dst, src, fake.Marshal())
	})
	var got *ProbeResult
	p.Probe(dnswire.MustIPv4("192.0.2.55"), func(r ProbeResult) { got = &r })
	clock.Advance(5 * time.Second)
	if got == nil {
		t.Fatal("probe never completed")
	}
	if got.Alive {
		t.Fatal("foreign reply accepted")
	}
	if p.Stats().Malformed == 0 {
		t.Fatal("foreign reply not counted as malformed")
	}
}

func TestProbeIgnoresSpoofedSource(t *testing.T) {
	p, fab, clock := newProbeEnv(t, ProberConfig{ID: 5, Timeout: time.Second})
	// A responder that spoofs a different source address in its reply.
	spoof := dnswire.MustIPv4("203.0.113.7")
	fab.RegisterICMPPrefix(dnswire.MustPrefix("192.0.2.0/24"), func(src, dst dnswire.IPv4, payload []byte) {
		req, err := Parse(payload)
		if err != nil {
			return
		}
		fab.SendICMP(spoof, src, ReplyTo(req).Marshal())
	})
	var got *ProbeResult
	p.Probe(dnswire.MustIPv4("192.0.2.55"), func(r ProbeResult) { got = &r })
	clock.Advance(5 * time.Second)
	if got == nil || got.Alive {
		t.Fatalf("got %+v; spoofed-source reply must not mark target alive", got)
	}
}

func TestVantageCollision(t *testing.T) {
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{})
	if _, err := NewProber(fab, ProberConfig{Vantage: vantage}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewProber(fab, ProberConfig{Vantage: vantage}); err == nil {
		t.Fatal("second prober on same vantage accepted")
	}
}
