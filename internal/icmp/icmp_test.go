package icmp

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestEchoRoundTrip(t *testing.T) {
	req := &Echo{ID: 0xBEEF, Seq: 42, Payload: []byte("probe-data")}
	wire := req.Marshal()
	got, err := Parse(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Reply {
		t.Fatal("request parsed as reply")
	}
	if got.ID != 0xBEEF || got.Seq != 42 || string(got.Payload) != "probe-data" {
		t.Fatalf("got %+v", got)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	req := &Echo{ID: 7, Seq: 9, Payload: []byte{1, 2, 3}}
	reply := ReplyTo(req)
	if !reply.Reply {
		t.Fatal("ReplyTo did not set Reply")
	}
	got, err := Parse(reply.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Reply || got.ID != 7 || got.Seq != 9 || len(got.Payload) != 3 {
		t.Fatalf("got %+v", got)
	}
}

func TestParseRejectsCorruptChecksum(t *testing.T) {
	wire := (&Echo{ID: 1, Seq: 2}).Marshal()
	wire[4] ^= 0xFF // corrupt the ID without fixing the checksum
	if _, err := Parse(wire); !errors.Is(err, ErrBadChecksum) {
		t.Fatalf("err = %v, want ErrBadChecksum", err)
	}
}

func TestParseRejectsShort(t *testing.T) {
	if _, err := Parse([]byte{8, 0, 0}); !errors.Is(err, ErrShortPacket) {
		t.Fatalf("err = %v, want ErrShortPacket", err)
	}
}

func TestParseRejectsNonEcho(t *testing.T) {
	// Type 3 (destination unreachable) with a fixed-up checksum.
	buf := []byte{3, 0, 0, 0, 0, 0, 0, 0}
	cs := Checksum(buf)
	buf[2] = byte(cs >> 8)
	buf[3] = byte(cs)
	if _, err := Parse(buf); !errors.Is(err, ErrNotEcho) {
		t.Fatalf("err = %v, want ErrNotEcho", err)
	}
}

func TestParseRejectsNonZeroCode(t *testing.T) {
	buf := []byte{8, 1, 0, 0, 0, 0, 0, 0}
	cs := Checksum(buf)
	buf[2] = byte(cs >> 8)
	buf[3] = byte(cs)
	if _, err := Parse(buf); !errors.Is(err, ErrNonZeroCode) {
		t.Fatalf("err = %v, want ErrNonZeroCode", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// RFC 1071 example: the checksum of 00 01 f2 03 f4 f5 f6 f7 is the
	// complement of ddf2 + 2 carries -> 0x220d... compute directly: the
	// property we rely on is that verifying a packet containing its own
	// checksum yields zero, covered below. Here, pin one vector to catch
	// byte-order regressions.
	buf := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(buf); got != 0x220d {
		t.Fatalf("Checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	buf := []byte{0x01, 0x02, 0x03}
	// Odd final byte is padded with zero: words 0102, 0300.
	want := ^uint16(0x0102 + 0x0300)
	if got := Checksum(buf); got != want {
		t.Fatalf("Checksum = %#04x, want %#04x", got, want)
	}
}

func TestMarshalParseProperty(t *testing.T) {
	f := func(id, seq uint16, payload []byte, reply bool) bool {
		e := &Echo{Reply: reply, ID: id, Seq: seq, Payload: payload}
		got, err := Parse(e.Marshal())
		if err != nil {
			return false
		}
		if got.Reply != reply || got.ID != id || got.Seq != seq {
			return false
		}
		if len(got.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if got.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumSelfVerifyProperty(t *testing.T) {
	// The checksum of any marshaled packet (which embeds its own
	// checksum) must be zero.
	f := func(id, seq uint16, payload []byte) bool {
		wire := (&Echo{ID: id, Seq: seq, Payload: payload}).Marshal()
		return Checksum(wire) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
