package icmp

import (
	"fmt"
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

// ProbeResult is the outcome of a single echo probe.
type ProbeResult struct {
	// Target is the probed address.
	Target dnswire.IPv4
	// Alive reports whether an echo reply arrived before the timeout.
	Alive bool
	// RTT is the round-trip time for replies; zero otherwise.
	RTT time.Duration
	// Sent is when the request was transmitted.
	Sent time.Time
}

// ProberConfig tunes a Prober.
type ProberConfig struct {
	// Vantage is the source address probes are sent from.
	Vantage dnswire.IPv4
	// Timeout is how long to wait for a reply. Default 2s.
	Timeout time.Duration
	// RatePerSecond caps transmitted probes per second (token bucket).
	// Zero means unlimited.
	RatePerSecond int
	// ID is the ICMP identifier stamped on every probe.
	ID uint16
	// Blocklist suppresses probes to opted-out address space; targets in
	// it resolve immediately as not alive, without traffic.
	Blocklist []dnswire.Prefix
}

// Prober sends ICMP echo probes over a fabric and matches replies to
// requests, zmap-style. Create one with NewProber; it binds the vantage
// address for ICMP delivery.
type Prober struct {
	fab   *fabric.Fabric
	clock simclock.Clock
	cfg   ProberConfig

	mu        sync.Mutex
	seq       uint16
	inflight  map[uint16]*pendingProbe
	nextSlot  time.Time
	sent      uint64
	received  uint64
	blocked   uint64
	malformed uint64
}

type pendingProbe struct {
	target dnswire.IPv4
	sent   time.Time
	timer  simclock.Timer
	done   func(ProbeResult)
}

// ProberStats counts prober activity.
type ProberStats struct {
	Sent      uint64
	Received  uint64
	Blocked   uint64
	Malformed uint64
}

// NewProber creates a prober and binds its vantage address on the fabric.
func NewProber(fab *fabric.Fabric, cfg ProberConfig) (*Prober, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	p := &Prober{
		fab:      fab,
		clock:    fab.Clock(),
		cfg:      cfg,
		inflight: make(map[uint16]*pendingProbe),
	}
	if err := fab.BindICMP(cfg.Vantage, p.handleICMP); err != nil {
		return nil, fmt.Errorf("icmp: binding vantage: %w", err)
	}
	return p, nil
}

// Close unbinds the vantage address.
func (p *Prober) Close() { p.fab.UnbindICMP(p.cfg.Vantage) }

// Stats returns a snapshot of prober counters.
func (p *Prober) Stats() ProberStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ProberStats{Sent: p.sent, Received: p.received, Blocked: p.blocked, Malformed: p.malformed}
}

// Probe sends one echo request to target and calls done exactly once, either
// with the reply or with Alive=false after the timeout. Rate limiting delays
// transmission as needed; blocklisted targets complete immediately.
func (p *Prober) Probe(target dnswire.IPv4, done func(ProbeResult)) {
	for _, pfx := range p.cfg.Blocklist {
		if pfx.Contains(target) {
			p.mu.Lock()
			p.blocked++
			p.mu.Unlock()
			done(ProbeResult{Target: target, Alive: false, Sent: p.clock.Now()})
			return
		}
	}
	delay := p.reserveSlot()
	if delay <= 0 {
		p.transmit(target, done)
		return
	}
	p.clock.AfterFunc(delay, func() { p.transmit(target, done) })
}

// Sweep probes every address in prefix and calls done once with all results
// (order matches address order). It is the building block for the hourly
// scans of Section 6.1.
func (p *Prober) Sweep(prefix dnswire.Prefix, done func([]ProbeResult)) {
	n := prefix.NumAddresses()
	results := make([]ProbeResult, n)
	remaining := n
	var mu sync.Mutex
	for i := 0; i < n; i++ {
		i := i
		p.Probe(prefix.Nth(i), func(r ProbeResult) {
			mu.Lock()
			results[i] = r
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last {
				done(results)
			}
		})
	}
}

// reserveSlot implements the token bucket: it returns how long the caller
// must wait before transmitting.
func (p *Prober) reserveSlot() time.Duration {
	if p.cfg.RatePerSecond <= 0 {
		return 0
	}
	interval := time.Second / time.Duration(p.cfg.RatePerSecond)
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clock.Now()
	if p.nextSlot.Before(now) {
		p.nextSlot = now
	}
	wait := p.nextSlot.Sub(now)
	p.nextSlot = p.nextSlot.Add(interval)
	return wait
}

func (p *Prober) transmit(target dnswire.IPv4, done func(ProbeResult)) {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	now := p.clock.Now()
	pending := &pendingProbe{target: target, sent: now, done: done}
	// The wire sequence space is 16 bits; with more than 65535 probes in
	// flight the space wraps. Fail the displaced probe as lost rather
	// than leaking its completion callback.
	displaced := p.inflight[seq]
	p.inflight[seq] = pending
	p.sent++
	p.mu.Unlock()
	if displaced != nil {
		if displaced.timer != nil {
			displaced.timer.Stop()
		}
		displaced.done(ProbeResult{Target: displaced.target, Alive: false, Sent: displaced.sent})
	}

	req := Echo{ID: p.cfg.ID, Seq: seq}
	p.fab.SendICMP(p.cfg.Vantage, target, req.Marshal())

	pending.timer = p.clock.AfterFunc(p.cfg.Timeout, func() {
		p.mu.Lock()
		cur, ok := p.inflight[seq]
		if ok && cur == pending {
			delete(p.inflight, seq)
		} else {
			ok = false
		}
		p.mu.Unlock()
		if ok {
			done(ProbeResult{Target: target, Alive: false, Sent: pending.sent})
		}
	})
}

func (p *Prober) handleICMP(src, _ dnswire.IPv4, payload []byte) {
	echo, err := Parse(payload)
	if err != nil || !echo.Reply || echo.ID != p.cfg.ID {
		p.mu.Lock()
		p.malformed++
		p.mu.Unlock()
		return
	}
	p.mu.Lock()
	pending, ok := p.inflight[echo.Seq]
	if ok && pending.target == src {
		delete(p.inflight, echo.Seq)
		p.received++
	} else {
		ok = false
	}
	p.mu.Unlock()
	if !ok {
		return
	}
	if pending.timer != nil {
		pending.timer.Stop()
	}
	now := p.clock.Now()
	pending.done(ProbeResult{Target: src, Alive: true, RTT: now.Sub(pending.sent), Sent: pending.sent})
}

// Responder answers echo requests for hosts that an AliveFunc reports as
// online. Simulated networks register one per prefix on the fabric; this is
// where "does the operator block ICMP on ingress" and "is the device
// currently on the network" are decided.
type Responder struct {
	fab *fabric.Fabric
	// Alive reports whether the host at ip currently answers pings.
	Alive func(ip dnswire.IPv4) bool
	// BlockIngress simulates an operator dropping all inbound ICMP, as
	// two of the nine networks in the paper do (Section 6.2).
	BlockIngress bool
}

// NewResponder registers a Responder for prefix on fab.
func NewResponder(fab *fabric.Fabric, prefix dnswire.Prefix, alive func(dnswire.IPv4) bool, blockIngress bool) *Responder {
	r := &Responder{fab: fab, Alive: alive, BlockIngress: blockIngress}
	fab.RegisterICMPPrefix(prefix, r.handle)
	return r
}

func (r *Responder) handle(src, dst dnswire.IPv4, payload []byte) {
	if r.BlockIngress {
		return
	}
	echo, err := Parse(payload)
	if err != nil || echo.Reply {
		return
	}
	if r.Alive == nil || !r.Alive(dst) {
		return
	}
	r.fab.SendICMP(dst, src, ReplyTo(echo).Marshal())
}
