// Package icmp implements the ICMP echo wire format of RFC 792 and a
// zmap-style sweep prober.
//
// The paper uses Zmap ICMP scans to detect when client devices join and
// leave a network (Section 6.1). This package reproduces that capability
// against the simulated fabric: the prober emits real encoded echo requests,
// simulated networks answer (or not, when the operator blocks pings on
// ingress, as Enterprise-B and Enterprise-C do in the paper), and replies are
// parsed and checksum-verified on the way back. Rate limiting and an opt-out
// blocklist mirror the paper's ethical-measurement setup (Section 9).
package icmp

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Message types used by echo probing (RFC 792).
const (
	TypeEchoReply   = 0
	TypeEchoRequest = 8
)

// Echo is a parsed ICMP echo request or reply.
type Echo struct {
	// Reply distinguishes reply (true) from request (false).
	Reply bool
	// ID identifies the probing process, echoed by the responder.
	ID uint16
	// Seq sequences probes within a process, echoed by the responder.
	Seq uint16
	// Payload is the echo data, echoed verbatim by the responder.
	Payload []byte
}

// Errors returned by Parse.
var (
	ErrShortPacket = errors.New("icmp: packet shorter than echo header")
	ErrBadChecksum = errors.New("icmp: checksum mismatch")
	ErrNotEcho     = errors.New("icmp: not an echo request or reply")
	ErrNonZeroCode = errors.New("icmp: nonzero code in echo message")
)

// Marshal encodes e into wire format with a valid checksum.
func (e *Echo) Marshal() []byte {
	buf := make([]byte, 8+len(e.Payload))
	if e.Reply {
		buf[0] = TypeEchoReply
	} else {
		buf[0] = TypeEchoRequest
	}
	// buf[1] (code) and buf[2:4] (checksum) start zero.
	binary.BigEndian.PutUint16(buf[4:6], e.ID)
	binary.BigEndian.PutUint16(buf[6:8], e.Seq)
	copy(buf[8:], e.Payload)
	binary.BigEndian.PutUint16(buf[2:4], Checksum(buf))
	return buf
}

// Parse decodes and checksum-verifies an ICMP echo message.
func Parse(buf []byte) (*Echo, error) {
	if len(buf) < 8 {
		return nil, ErrShortPacket
	}
	if Checksum(buf) != 0 {
		// The internet checksum of a packet that includes its own
		// correct checksum is zero.
		return nil, ErrBadChecksum
	}
	switch buf[0] {
	case TypeEchoRequest, TypeEchoReply:
	default:
		return nil, fmt.Errorf("%w: type %d", ErrNotEcho, buf[0])
	}
	if buf[1] != 0 {
		return nil, ErrNonZeroCode
	}
	e := &Echo{
		Reply: buf[0] == TypeEchoReply,
		ID:    binary.BigEndian.Uint16(buf[4:6]),
		Seq:   binary.BigEndian.Uint16(buf[6:8]),
	}
	if len(buf) > 8 {
		e.Payload = append([]byte(nil), buf[8:]...)
	}
	return e, nil
}

// ReplyTo constructs the echo reply for a request, echoing ID, Seq and
// payload as RFC 792 requires.
func ReplyTo(req *Echo) *Echo {
	return &Echo{Reply: true, ID: req.ID, Seq: req.Seq, Payload: req.Payload}
}

// Checksum computes the RFC 1071 internet checksum over buf. Computing it
// over a packet whose checksum field holds the correct value yields zero.
func Checksum(buf []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(buf); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(buf[i : i+2]))
	}
	if len(buf)%2 == 1 {
		sum += uint32(buf[len(buf)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xFFFF + sum>>16
	}
	return ^uint16(sum)
}
