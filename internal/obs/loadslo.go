package obs

import (
	"fmt"
	"strings"
)

// Query-serving SLOs. The campaign rules in slo.go judge the *producer*
// side of the pipeline (a sweep's error rate, coverage, breaker budget);
// LoadRules judge the *consumer* side: rdnsd answering tens of thousands
// of concurrent queries off the same store. cmd/rdnsload aggregates a
// load-generation run into one LoadSample per endpoint (plus a "total"
// sample) and evaluates them here, so "is the daemon within SLO" is the
// same declarative-rules-and-verdicts machinery as "was the campaign
// within SLO".

// LoadSample summarizes one endpoint's serving behaviour over a load run:
// request and failure counts plus client-observed latency quantiles.
type LoadSample struct {
	// Label names the sample ("at", "range", ..., or "total").
	Label string `json:"label"`
	// Requests counts completed requests, including failed ones.
	Requests uint64 `json:"requests"`
	// Errors counts hard failures: transport errors and 5xx responses
	// other than load-shedding 503s.
	Errors uint64 `json:"errors"`
	// RateLimited counts 429 responses (after the client's retries were
	// exhausted); Shed counts load-shedding 503s.
	RateLimited uint64 `json:"rate_limited"`
	Shed        uint64 `json:"shed"`
	// P50/P95/P99 are client-observed latency quantiles in seconds.
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	// P99Corr is the correlation ID (hex) of the worst observation in the
	// histogram bucket holding the p99 — the exemplar that answers "which
	// query was the p99". Empty when the run did not trace.
	P99Corr string `json:"p99_corr,omitempty"`
	// BytesBehind is the replication lag a replica target reported after
	// the run (see LoadRules.MaxReplicaLagBytes). Zero for primaries and
	// for per-endpoint samples.
	BytesBehind int64 `json:"bytes_behind,omitempty"`
}

// ErrorRate is hard failures per request (0 with no requests).
func (s LoadSample) ErrorRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Errors) / float64(s.Requests)
}

// ShedRate is admission rejections (429s and shedding 503s) per request.
func (s LoadSample) ShedRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.RateLimited+s.Shed) / float64(s.Requests)
}

// LoadRules is a declarative serving SLO, evaluated per sample. Rate
// bounds follow the slo.go convention: negative disables, zero means
// "none allowed". Latency bounds are seconds; zero disables.
type LoadRules struct {
	// MaxErrorRate bounds LoadSample.ErrorRate.
	MaxErrorRate float64 `json:"max_error_rate"`
	// MaxShedRate bounds LoadSample.ShedRate — how much admission-control
	// pushback the run tolerates before the service counts as degraded.
	MaxShedRate float64 `json:"max_shed_rate"`
	// MaxP95Seconds / MaxP99Seconds cap the latency quantiles.
	MaxP95Seconds float64 `json:"max_p95_seconds"`
	MaxP99Seconds float64 `json:"max_p99_seconds"`
	// MaxReplicaLagBytes bounds LoadSample.BytesBehind — how stale a read
	// replica may be and still count as serving. Positive bounds the lag,
	// negative requires full catch-up (0 bytes behind), zero disables the
	// rule (the default: primaries have no lag to judge).
	MaxReplicaLagBytes int64 `json:"max_replica_lag_bytes,omitempty"`
}

// DefaultLoadRules is the shape cmd/rdnsload starts from: no hard
// failures, 1% admission pushback, p95 within 1s and p99 within 2.5s.
func DefaultLoadRules() LoadRules {
	return LoadRules{
		MaxErrorRate:  0,
		MaxShedRate:   0.01,
		MaxP95Seconds: 1.0,
		MaxP99Seconds: 2.5,
	}
}

// LoadVerdict is one sample's SLO evaluation.
type LoadVerdict struct {
	Label      string      `json:"label"`
	OK         bool        `json:"ok"`
	Violations []Violation `json:"violations,omitempty"`
}

// LoadReport is the run-level evaluation: one verdict per sample.
type LoadReport struct {
	Verdicts []LoadVerdict `json:"verdicts"`
	// ViolatingSamples counts samples with at least one violation; OK
	// reports none.
	ViolatingSamples int  `json:"violating_samples"`
	OK               bool `json:"ok"`
}

// EvaluateLoad applies the rules to each sample.
func (r LoadRules) EvaluateLoad(samples []LoadSample) LoadReport {
	rep := LoadReport{Verdicts: make([]LoadVerdict, 0, len(samples))}
	for _, s := range samples {
		v := r.evaluateSample(s)
		if !v.OK {
			rep.ViolatingSamples++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	rep.OK = rep.ViolatingSamples == 0
	return rep
}

func (r LoadRules) evaluateSample(s LoadSample) LoadVerdict {
	v := LoadVerdict{Label: s.Label, OK: true}
	fail := func(rule string, value, limit float64) {
		v.OK = false
		v.Violations = append(v.Violations, Violation{Rule: rule, Value: value, Limit: limit})
	}
	if r.MaxErrorRate >= 0 && s.ErrorRate() > r.MaxErrorRate {
		fail("error_rate", s.ErrorRate(), r.MaxErrorRate)
	}
	if r.MaxShedRate >= 0 && s.ShedRate() > r.MaxShedRate {
		fail("shed_rate", s.ShedRate(), r.MaxShedRate)
	}
	if r.MaxP95Seconds > 0 && s.P95 > r.MaxP95Seconds {
		fail("p95", s.P95, r.MaxP95Seconds)
	}
	if r.MaxP99Seconds > 0 && s.P99 > r.MaxP99Seconds {
		fail("p99", s.P99, r.MaxP99Seconds)
	}
	if r.MaxReplicaLagBytes != 0 {
		limit := r.MaxReplicaLagBytes
		if limit < 0 {
			limit = 0 // negative: caught up or violating
		}
		if s.BytesBehind > limit {
			fail("replica_lag_bytes", float64(s.BytesBehind), float64(limit))
		}
	}
	return v
}

// Summary renders the report one line per sample — the cmd/rdnsload
// output shape.
func (rep LoadReport) Summary() string {
	var b strings.Builder
	for _, v := range rep.Verdicts {
		if v.OK {
			fmt.Fprintf(&b, "%-8s ok\n", v.Label)
			continue
		}
		parts := make([]string, len(v.Violations))
		for i, viol := range v.Violations {
			parts[i] = viol.String()
		}
		fmt.Fprintf(&b, "%-8s VIOLATING: %s\n", v.Label, strings.Join(parts, "; "))
	}
	verdict := "within SLO"
	if !rep.OK {
		verdict = "OUT OF SLO"
	}
	fmt.Fprintf(&b, "%d/%d samples violating (%s)\n", rep.ViolatingSamples, len(rep.Verdicts), verdict)
	return b.String()
}
