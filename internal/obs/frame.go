// Package obs is the campaign-level observability layer: where
// internal/telemetry watches one sweep, obs watches how sweep health,
// coverage, and churn evolve across the days of a longitudinal campaign —
// the axis the paper's findings live on.
//
// It has three parts. A Recorder captures one Frame per campaign day
// (metric digests and counter deltas, snapshot coverage and churn, the
// resilience HealthReport summary) into a ring-bounded Store that dumps
// and reloads as JSONL. A declarative SLO engine (Rules) evaluates each
// frame against error-rate, coverage, breaker, and retry budgets with
// error-budget accounting across the campaign. A Detector flags days
// whose counter deltas diverge from the campaign's own history (robust
// z-score and EWMA, seeded thresholds) — exactly the days the
// dynamicity/leak verdicts are least trustworthy. Stitch joins the
// correlated spans the lower layers emit (see telemetry.CorrID) back
// into per-probe causal chains.
//
// Everything here is deterministic: capturing the same seeded campaign
// twice yields bit-identical frame JSONL, SLO verdicts, and anomaly
// flags. Scheduling-dependent counters (merge stalls, hedges) are
// excluded from digests and deltas, the same exclusion list the faultsim
// determinism tests use.
package obs

import (
	"time"

	"rdnsprivacy/internal/scanengine"
)

// Frame is one campaign day's observability record: what the sweep did,
// what it found, and how trustworthy it was. Frames are pure data —
// comparable, JSON-serializable, and free of pointers into live state.
type Frame struct {
	// Index is the 0-based snapshot index within the campaign.
	Index int `json:"index"`
	// Date is the campaign date the snapshot models.
	Date time.Time `json:"date"`

	// MetricsDigest is the registry's deterministic digest after this
	// day's sweep (hex; scheduling-dependent counters excluded). Equal
	// digests on equal days is the replay-determinism invariant.
	MetricsDigest string `json:"metrics_digest,omitempty"`
	// Deltas are the per-counter increments since the previous frame,
	// deterministic counters only, zero-delta names omitted.
	Deltas map[string]uint64 `json:"deltas,omitempty"`

	// Records is the size of the day's merged record set.
	Records int `json:"records"`
	// Probes..Skipped mirror the sweep's Stats tally.
	Probes    uint64 `json:"probes"`
	Found     uint64 `json:"found"`
	Absent    uint64 `json:"absent"`
	Errors    uint64 `json:"errors"`
	Retries   uint64 `json:"retries,omitempty"`
	Skipped   uint64 `json:"skipped,omitempty"`
	CacheHits uint64 `json:"cache_hits,omitempty"`

	// Added/Removed/Changed count the day's churn against the previous
	// sweep's baseline.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	Changed int `json:"changed"`

	// Partial / Degraded mirror the snapshot's trust flags.
	Partial  bool `json:"partial,omitempty"`
	Degraded bool `json:"degraded,omitempty"`
	// DegradedPrefixes lists the address ranges whose records are
	// incomplete this day (from the HealthReport).
	DegradedPrefixes []string `json:"degraded_prefixes,omitempty"`
	// BreakerOpens is the day's circuit-breaker open count.
	BreakerOpens uint64 `json:"breaker_opens,omitempty"`
	// HealthFingerprint is HealthReport.Fingerprint in hex, empty when
	// the sweep ran without the resilience layer.
	HealthFingerprint string `json:"health_fingerprint,omitempty"`

	// Store carries the history store's cumulative append/compaction
	// state after this day's append, when the campaign writes one (see
	// Recorder.SetStoreStats).
	Store *StoreStats `json:"store,omitempty"`

	// Replica carries a read replica's lag against its primary at capture
	// time, when the process serves a snapshot-shipped store (see
	// Recorder.SetReplicaStatus). Primaries leave it nil.
	Replica *ReplicaStatus `json:"replica,omitempty"`

	// Vantage carries the day's cross-vantage disagreement summary when
	// the campaign ran several vantage points over the same universe
	// (see Recorder.SetVantageStats and internal/vantage). Single-vantage
	// campaigns leave it nil.
	Vantage *VantageStats `json:"vantage,omitempty"`
}

// VantageStats mirrors one day of internal/vantage's disagreement
// analysis inside a frame — a local copy so obs stays import-free of the
// campaign layer; internal/vantage converts between the two. Counts are
// per-octet classifications across the day's per-writer views.
type VantageStats struct {
	// Vantages is the number of vantage points compared.
	Vantages int `json:"vantages"`
	// Agreements counts records every vantage saw with the same name.
	Agreements int `json:"agreements"`
	// Missed counts (vantage, record) pairs where an established record
	// was absent from one vantage's view.
	Missed int `json:"missed"`
	// OnlyAt counts records exactly one vantage saw.
	OnlyAt int `json:"only_at"`
	// Conflicts counts (vantage, record) pairs with a name differing
	// from the cross-vantage reference.
	Conflicts int `json:"conflicts"`
	// Lagged counts deviations excused by the lag window: the vantage
	// matched a recent reference state, it was just behind.
	Lagged int `json:"lagged"`
	// Changes counts reference-view PTR transitions this day;
	// FullyCorroborated how many every vantage's view confirmed.
	Changes           int `json:"changes"`
	FullyCorroborated int `json:"fully_corroborated"`
	// MeanCorroboration is the day's mean per-change corroboration
	// score in [0,1] (1 when the day had no changes).
	MeanCorroboration float64 `json:"mean_corroboration"`
}

// ReplicaStatus mirrors a replica daemon's lag report inside a frame —
// a local copy (not rdnsclient.ReplicaStats) so obs stays import-free of
// the serving layer; cmd/rdnsd converts between the two.
type ReplicaStatus struct {
	// Source is the primary's base URL.
	Source string `json:"source"`
	// BytesBehind is the feed bytes not yet synced locally; 0 means
	// caught up as of the last sync.
	BytesBehind int64 `json:"bytes_behind"`
	// SnapshotsBehind is the snapshot-count gap against the primary's
	// last advertised manifest.
	SnapshotsBehind int `json:"snapshots_behind"`
	// Syncs and SyncErrors count catch-up attempts.
	Syncs      uint64 `json:"syncs"`
	SyncErrors uint64 `json:"sync_errors,omitempty"`
}

// StoreStats mirrors the history store's summary inside a frame. It is a
// local copy of the fields (not histstore.Stats itself) so obs stays
// import-free of the storage layer; scan converts between the two.
type StoreStats struct {
	// Snapshots is the number of snapshots in the store so far.
	Snapshots int `json:"snapshots"`
	// Blocks is the number of /24 blocks the store indexes.
	Blocks int `json:"blocks"`
	// BaseFrames and DeltaFrames count block frames written so far; every
	// base past a block's first is a delta-chain compaction.
	BaseFrames  int `json:"base_frames"`
	DeltaFrames int `json:"delta_frames"`
	// Bytes is the store's total on-disk size (tails plus segments).
	Bytes int64 `json:"bytes"`

	// Segment-tiering and compaction progress; zero for a store that has
	// never compacted.
	Segments        int    `json:"segments,omitempty"`
	SealedBytes     int64  `json:"sealed_bytes,omitempty"`
	HotSegments     int    `json:"hot_segments,omitempty"`
	Writers         int    `json:"writers,omitempty"`
	Compactions     uint64 `json:"compactions,omitempty"`
	SealedSnapshots uint64 `json:"sealed_snapshots,omitempty"`
	ReclaimedBytes  int64  `json:"reclaimed_bytes,omitempty"`
}

// ErrorRate is the day's probe error fraction (0 when nothing was probed).
func (f Frame) ErrorRate() float64 {
	if f.Probes == 0 {
		return 0
	}
	return float64(f.Errors) / float64(f.Probes)
}

// Coverage is the fraction of planned addresses actually probed: probes
// over probes plus degradation-skipped. 1 when nothing was skipped.
func (f Frame) Coverage() float64 {
	total := f.Probes + f.Skipped
	if total == 0 {
		return 1
	}
	return float64(f.Probes) / float64(total)
}

// RetryRate is scan-level retries per probe (0 when nothing was probed).
func (f Frame) RetryRate() float64 {
	if f.Probes == 0 {
		return 0
	}
	return float64(f.Retries) / float64(f.Probes)
}

// Churn is the day's total record delta count.
func (f Frame) Churn() int { return f.Added + f.Removed + f.Changed }

// Corroboration is the day's mean cross-vantage corroboration score.
// Frames without vantage stats (single-vantage campaigns) report 1: an
// uncontested view is vacuously corroborated, so Rules.MinCorroboration
// only bites where disagreement is measurable.
func (f Frame) Corroboration() float64 {
	if f.Vantage == nil {
		return 1
	}
	return f.Vantage.MeanCorroboration
}

// frameFromSnapshot summarizes one sweep into frame fields (everything
// except the metric digest and deltas, which the Recorder owns).
func frameFromSnapshot(index int, date time.Time, snap *scanengine.Snapshot) Frame {
	f := Frame{Index: index, Date: date}
	if snap == nil {
		return f
	}
	f.Records = len(snap.Records)
	f.Probes = snap.Stats.Probes
	f.Found = snap.Stats.Found
	f.Absent = snap.Stats.Absent
	f.Errors = snap.Stats.Errors
	f.Retries = snap.Stats.Retries
	f.Skipped = snap.Stats.Skipped
	f.CacheHits = snap.Stats.CacheHits
	for _, ch := range snap.Changes {
		switch ch.Kind {
		case scanengine.RecordAdded:
			f.Added++
		case scanengine.RecordRemoved:
			f.Removed++
		case scanengine.RecordChanged:
			f.Changed++
		}
	}
	f.Partial = snap.Partial
	f.Degraded = snap.Degraded
	if h := snap.Health; h != nil {
		for _, p := range h.Degraded {
			f.DegradedPrefixes = append(f.DegradedPrefixes, p.String())
		}
		f.BreakerOpens = uint64(h.Totals.BreakerOpens)
		f.HealthFingerprint = Hex16(h.Fingerprint())
	}
	return f
}
