package obs

import (
	"sync"
	"time"

	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// DefaultExcludedMetrics are the counters scheduling can perturb; frames
// leave them out of digests and deltas so replays of the same seeded
// campaign stay bit-identical. The list matches what the faultsim
// determinism tests exclude.
func DefaultExcludedMetrics() []string {
	return []string{
		scanengine.MetricMergeStalls,
		scanengine.MetricHedges,
		scanengine.MetricHedgeWins,
	}
}

// Recorder captures one Frame per campaign day from a registry and a
// sweep snapshot. Methods are safe for concurrent use and safe on a nil
// receiver, so a campaign can carry an optional *Recorder and call it
// unconditionally.
type Recorder struct {
	reg     *telemetry.Registry
	store   *Store
	exclude []string
	skip    map[string]bool

	// mu guards prev and storeStats, so interleaved captures attribute
	// deltas without tearing.
	mu sync.Mutex
	// prev is the last captured counter snapshot, for delta computation.
	prev map[string]uint64
	// storeStats, when set, snapshots the campaign's history store for
	// each frame (see SetStoreStats).
	storeStats func() StoreStats
	// replicaStatus, when set, snapshots the process's replication lag
	// for each frame (see SetReplicaStatus).
	replicaStatus func() *ReplicaStatus
	// vantageStats, when set, supplies the cross-vantage disagreement
	// summary for each frame (see SetVantageStats).
	vantageStats func() *VantageStats
}

// RecorderOption tunes a Recorder.
type RecorderOption func(*Recorder)

// WithCapacity bounds the frame ring (default 4096).
func WithCapacity(n int) RecorderOption {
	return func(r *Recorder) { r.store = NewStore(n) }
}

// WithExcludedMetrics replaces the excluded-counter list (default
// DefaultExcludedMetrics).
func WithExcludedMetrics(names ...string) RecorderOption {
	return func(r *Recorder) { r.exclude = names }
}

// NewRecorder creates a recorder over reg (which may be nil: frames then
// carry snapshot fields only, no digests or deltas).
func NewRecorder(reg *telemetry.Registry, opts ...RecorderOption) *Recorder {
	r := &Recorder{
		reg:     reg,
		store:   NewStore(0),
		exclude: DefaultExcludedMetrics(),
		prev:    make(map[string]uint64),
	}
	for _, o := range opts {
		o(r)
	}
	r.skip = make(map[string]bool, len(r.exclude))
	for _, n := range r.exclude {
		r.skip[n] = true
	}
	return r
}

// SetStoreStats attaches a history-store snapshot source: every frame
// captured afterwards carries Frame.Store with fn's result at capture
// time. The campaign side (internal/scan) sets this after each append,
// converting histstore.Stats to the local StoreStats — obs deliberately
// does not import the storage layer. Safe on a nil recorder; fn nil
// detaches.
func (r *Recorder) SetStoreStats(fn func() StoreStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.storeStats = fn
	r.mu.Unlock()
}

// SetReplicaStatus attaches a replication-lag source: every frame
// captured afterwards carries Frame.Replica with fn's result at capture
// time (nil results leave the field unset, so primaries can attach a
// source unconditionally). Safe on a nil recorder; fn nil detaches.
func (r *Recorder) SetReplicaStatus(fn func() *ReplicaStatus) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.replicaStatus = fn
	r.mu.Unlock()
}

// SetVantageStats attaches a cross-vantage disagreement source: every
// frame captured afterwards carries Frame.Vantage with fn's result at
// capture time (nil results, and frames that already carry vantage
// stats, are left alone). internal/vantage sets this — or builds frames
// directly and records them through Capture. Safe on a nil recorder; fn
// nil detaches.
func (r *Recorder) SetVantageStats(fn func() *VantageStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.vantageStats = fn
	r.mu.Unlock()
}

// CaptureFrame records one campaign day: the snapshot summary plus the
// registry digest and counter deltas since the previous capture. It
// returns the captured frame. Safe on a nil recorder (returns the zero
// Frame). The store serializes captures, so concurrent callers are safe,
// but delta attribution assumes one capture per completed sweep.
func (r *Recorder) CaptureFrame(index int, date time.Time, snap *scanengine.Snapshot) Frame {
	return r.Capture(frameFromSnapshot(index, date, snap))
}

// Capture records a pre-built frame: the attached store/replica/vantage
// sources fill their fields (where still unset), then the registry
// digest and counter deltas are stamped and the frame enters the ring.
// It is the capture path for producers that assemble frame fields
// themselves — internal/vantage's post-run day frames — and the body of
// CaptureFrame. Safe on a nil recorder (returns the zero Frame).
func (r *Recorder) Capture(f Frame) Frame {
	if r == nil {
		return Frame{}
	}
	r.mu.Lock()
	if r.storeStats != nil && f.Store == nil {
		ss := r.storeStats()
		f.Store = &ss
	}
	if r.replicaStatus != nil && f.Replica == nil {
		f.Replica = r.replicaStatus()
	}
	if r.vantageStats != nil && f.Vantage == nil {
		f.Vantage = r.vantageStats()
	}
	r.mu.Unlock()
	if r.reg != nil {
		f.MetricsDigest = Hex16(r.reg.DeterministicDigest(r.exclude...))
		cur := r.reg.Snapshot().Counters
		r.mu.Lock()
		deltas := make(map[string]uint64)
		for name, v := range cur {
			if r.skip[name] {
				continue
			}
			if d := v - r.prev[name]; d != 0 {
				deltas[name] = d
			}
		}
		r.prev = cur
		r.mu.Unlock()
		if len(deltas) > 0 {
			f.Deltas = deltas
		}
	}
	r.store.Add(f)
	return f
}

// Frames returns the captured frames, oldest first. Safe on nil.
func (r *Recorder) Frames() []Frame {
	if r == nil {
		return nil
	}
	return r.store.Frames()
}

// Store exposes the underlying ring (for JSONL dumps). Safe on nil.
func (r *Recorder) Store() *Store {
	if r == nil {
		return nil
	}
	return r.store
}
