package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sync"
)

// Hex16 renders a 64-bit digest the way the telemetry JSONL does.
func Hex16(v uint64) string { return fmt.Sprintf("%016x", v) }

// Store is a ring-bounded frame series: one Frame per campaign day,
// oldest evicted (and counted) past capacity. Safe for concurrent use —
// a live sweep can capture frames while an exporter or test reads them.
type Store struct {
	mu      sync.Mutex
	cap     int
	frames  []Frame
	dropped uint64
}

// NewStore creates a store holding at most capacity frames (<= 0 means
// 4096 — over a decade of daily snapshots).
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Store{cap: capacity}
}

// Add appends a frame, evicting the oldest past capacity.
func (s *Store) Add(f Frame) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, f)
	if over := len(s.frames) - s.cap; over > 0 {
		s.frames = append(s.frames[:0], s.frames[over:]...)
		s.dropped += uint64(over)
	}
}

// Frames returns a copy of the retained frames, oldest first.
func (s *Store) Frames() []Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Frame(nil), s.frames...)
}

// Len returns the number of retained frames.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}

// Dropped returns how many frames the ring has evicted.
func (s *Store) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteJSONL dumps the retained frames as one JSON object per line — the
// -obs-out format; ReadFrames inverts it.
func (s *Store) WriteJSONL(w io.Writer) error {
	return WriteFrames(w, s.Frames())
}

// WriteFrames writes any frame slice as JSONL.
func WriteFrames(w io.Writer, frames []Frame) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range frames {
		if err := enc.Encode(&frames[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrames parses a JSONL frame dump produced by WriteJSONL.
func ReadFrames(r io.Reader) ([]Frame, error) {
	var out []Frame
	dec := json.NewDecoder(r)
	for {
		var f Frame
		if err := dec.Decode(&f); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("obs: frame %d: %w", len(out)+1, err)
		}
		out = append(out, f)
	}
}

// FramesDigest hashes a frame series via its canonical JSONL encoding
// (json sorts map keys, so equal frames always encode identically). Two
// replays of the same seeded campaign must produce equal digests.
func FramesDigest(frames []Frame) (uint64, error) {
	f := fnv.New64a()
	if err := WriteFrames(f, frames); err != nil {
		return 0, err
	}
	return f.Sum64(), nil
}
