package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/telemetry"
)

func day(i int) time.Time {
	return time.Date(2021, 1, 1, 13, 0, 0, 0, time.UTC).AddDate(0, 0, i)
}

func TestFrameRates(t *testing.T) {
	f := Frame{Probes: 200, Errors: 2, Retries: 10, Skipped: 50,
		Added: 1, Removed: 2, Changed: 3}
	if got := f.ErrorRate(); got != 0.01 {
		t.Errorf("ErrorRate = %v, want 0.01", got)
	}
	if got := f.Coverage(); got != 0.8 {
		t.Errorf("Coverage = %v, want 0.8", got)
	}
	if got := f.RetryRate(); got != 0.05 {
		t.Errorf("RetryRate = %v, want 0.05", got)
	}
	if got := f.Churn(); got != 6 {
		t.Errorf("Churn = %d, want 6", got)
	}
	var zero Frame
	if zero.ErrorRate() != 0 || zero.Coverage() != 1 || zero.RetryRate() != 0 {
		t.Errorf("zero frame rates = %v/%v/%v, want 0/1/0",
			zero.ErrorRate(), zero.Coverage(), zero.RetryRate())
	}
}

func TestStoreRing(t *testing.T) {
	s := NewStore(3)
	for i := 0; i < 5; i++ {
		s.Add(Frame{Index: i})
	}
	if s.Len() != 3 || s.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 3/2", s.Len(), s.Dropped())
	}
	frames := s.Frames()
	if frames[0].Index != 2 || frames[2].Index != 4 {
		t.Fatalf("retained indices %d..%d, want 2..4", frames[0].Index, frames[2].Index)
	}
}

func TestFrameJSONLRoundTrip(t *testing.T) {
	in := []Frame{
		{Index: 0, Date: day(0), MetricsDigest: "00deadbeef000000",
			Deltas:  map[string]uint64{"scan_probes_total": 512, "scan_errors_total": 3},
			Records: 100, Probes: 512, Found: 100, Absent: 409, Errors: 3,
			Added: 5, Removed: 1, Changed: 2},
		{Index: 1, Date: day(1), Partial: true, Degraded: true,
			DegradedPrefixes: []string{"192.0.2.0/24"}, BreakerOpens: 2,
			HealthFingerprint: "0123456789abcdef"},
	}
	var buf bytes.Buffer
	if err := WriteFrames(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrames(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := WriteFrames(&again, out); err != nil {
		t.Fatal(err)
	}
	d1, err1 := FramesDigest(in)
	d2, err2 := FramesDigest(out)
	if err1 != nil || err2 != nil || d1 != d2 {
		t.Fatalf("round-trip digest %016x -> %016x (%v, %v)", d1, d2, err1, err2)
	}
}

func TestRecorderDeltas(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := reg.Counter("scan_probes_total")
	noisy := reg.Counter("scan_hedges_total")
	r := NewRecorder(reg)

	c.Add(10)
	noisy.Add(99)
	f0 := r.CaptureFrame(0, day(0), nil)
	if f0.Deltas["scan_probes_total"] != 10 {
		t.Fatalf("day 0 deltas = %v, want probes 10", f0.Deltas)
	}
	if _, ok := f0.Deltas["scan_hedges_total"]; ok {
		t.Fatal("excluded counter leaked into deltas")
	}
	if f0.MetricsDigest == "" {
		t.Fatal("missing metrics digest")
	}

	c.Add(7)
	f1 := r.CaptureFrame(1, day(1), nil)
	if f1.Deltas["scan_probes_total"] != 7 {
		t.Fatalf("day 1 deltas = %v, want probes 7", f1.Deltas)
	}
	// No increments since: the third frame carries no deltas at all.
	f2 := r.CaptureFrame(2, day(2), nil)
	if f2.Deltas != nil {
		t.Fatalf("idle day deltas = %v, want none", f2.Deltas)
	}
	if got := len(r.Frames()); got != 3 {
		t.Fatalf("stored frames = %d, want 3", got)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	f := r.CaptureFrame(0, day(0), nil)
	if f.Index != 0 || !f.Date.IsZero() || f.Deltas != nil || f.MetricsDigest != "" {
		t.Fatalf("nil recorder frame = %+v", f)
	}
	if r.Frames() != nil || r.Store() != nil {
		t.Fatal("nil recorder leaked state")
	}
}

func TestSLOEvaluate(t *testing.T) {
	rules := DefaultRules()
	frames := []Frame{
		{Index: 0, Probes: 1000, Errors: 1},                    // healthy
		{Index: 1, Probes: 1000, Errors: 50},                   // error-rate breach
		{Index: 2, Probes: 900, Skipped: 100, BreakerOpens: 3}, // coverage + breaker
		{Index: 3, Probes: 1000, Retries: 100},                 // retry breach
		{Index: 4, Probes: 1000},                               // healthy
	}
	rep := rules.Evaluate(frames)
	if rep.ViolatingFrames != 3 {
		t.Fatalf("violating = %d, want 3:\n%s", rep.ViolatingFrames, rep.Summary())
	}
	if rep.BudgetOK {
		t.Fatalf("3/5 frames violating must exceed a 5%% budget:\n%s", rep.Summary())
	}
	if !rep.Verdicts[0].OK || rep.Verdicts[1].OK {
		t.Fatalf("verdicts = %+v", rep.Verdicts)
	}
	wantRules := map[int][]string{
		1: {"error_rate"},
		2: {"coverage", "breaker_opens"},
		3: {"retry_rate"},
	}
	for idx, want := range wantRules {
		var got []string
		for _, v := range rep.Verdicts[idx].Violations {
			got = append(got, v.Rule)
		}
		if strings.Join(got, ",") != strings.Join(want, ",") {
			t.Errorf("frame %d violations = %v, want %v", idx, got, want)
		}
	}
	if !strings.Contains(rep.Summary(), "EXCEEDS") {
		t.Errorf("summary lacks budget verdict:\n%s", rep.Summary())
	}
}

func TestSLOZeroRulesPass(t *testing.T) {
	rep := Rules{MaxErrorRate: -1, MaxBreakerOpens: -1, MaxRetryRate: -1}.
		Evaluate([]Frame{{Probes: 10, Errors: 10, BreakerOpens: 5, Retries: 30}})
	if rep.ViolatingFrames != 0 || !rep.BudgetOK {
		t.Fatalf("disabled rules still violated: %+v", rep)
	}
}

func TestDetectorFlagsSpike(t *testing.T) {
	var frames []Frame
	for i := 0; i < 20; i++ {
		d := uint64(100)
		if i == 13 {
			d = 5000 // the anomaly
		}
		frames = append(frames, Frame{Index: i,
			Deltas: map[string]uint64{"scan_errors_total": d}})
	}
	det := Detector{Seed: 42}
	got := det.Detect(frames)
	if len(got) == 0 {
		t.Fatal("spike not flagged")
	}
	for _, a := range got {
		if a.Index != 13 {
			t.Fatalf("flagged frame %d, want only 13: %+v", a.Index, got)
		}
		if a.Metric != "scan_errors_total" {
			t.Fatalf("flagged metric %q", a.Metric)
		}
	}
	// A flat series must be quiet.
	for i := range frames {
		frames[i].Deltas = map[string]uint64{"scan_errors_total": 100}
	}
	if got := det.Detect(frames); len(got) != 0 {
		t.Fatalf("flat series flagged: %+v", got)
	}
}

// TestDetectorSplitsCampaignsAtIndexReset: a dump concatenating two
// campaigns of very different scale (the experiments study records the
// dynamicity series and the longitudinal campaigns through one recorder)
// must judge each against its own baseline — and still catch a spike
// inside one of them.
func TestDetectorSplitsCampaignsAtIndexReset(t *testing.T) {
	var frames []Frame
	for i := 0; i < 15; i++ { // small campaign: ~100/day
		frames = append(frames, Frame{Index: i,
			Deltas: map[string]uint64{"scan_probes_total": 100 + uint64(i%3)}})
	}
	for i := 0; i < 15; i++ { // big campaign: ~14000/day, index restarts
		d := uint64(14000 + 50*(i%4))
		if i == 9 {
			d = 90000 // genuine spike within the big campaign
		}
		frames = append(frames, Frame{Index: i,
			Deltas: map[string]uint64{"scan_probes_total": d}})
	}
	got := Detector{Seed: 42}.Detect(frames)
	if len(got) == 0 {
		t.Fatal("in-campaign spike not flagged")
	}
	for _, a := range got {
		if a.Index != 9 || a.Delta != 90000 {
			t.Fatalf("flagged %+v; only the index-9 spike is anomalous "+
				"(cross-campaign scale shifts must not be)", a)
		}
	}
}

// TestDetectorToleratesStableJitter: sub-percent jitter on a large,
// near-constant counter must not be flagged even though the series MAD
// is tiny (the scale is floored at 1% of the median).
func TestDetectorToleratesStableJitter(t *testing.T) {
	var frames []Frame
	for i := 0; i < 20; i++ {
		frames = append(frames, Frame{Index: i,
			Deltas: map[string]uint64{"scan_probes_total": 14100 + uint64(i%2)*80}})
	}
	if got := (Detector{Seed: 42}).Detect(frames); len(got) != 0 {
		t.Fatalf("stable series with sub-percent jitter flagged: %+v", got)
	}
}

func TestDetectorDeterministicThresholds(t *testing.T) {
	a := Detector{Seed: 7}
	b := Detector{Seed: 7}
	c := Detector{Seed: 8}
	if a.zThreshold() != b.zThreshold() || a.ewmaDeviation() != b.ewmaDeviation() {
		t.Fatal("same seed gave different thresholds")
	}
	if a.zThreshold() < 3.5 || a.zThreshold() >= 4.0 {
		t.Fatalf("derived z threshold %v outside [3.5, 4)", a.zThreshold())
	}
	_ = c // distinct seeds may collide; only the range and determinism are contractual
}

// spanRecords dumps and reparses a tracer's spans — the same JSONL path
// the experiments -trace pipeline uses.
func spanRecords(t *testing.T, tr *telemetry.Tracer) []telemetry.SpanRecord {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestStitchGroupsChains(t *testing.T) {
	tr := telemetry.NewTracer(1, 64)
	corr := telemetry.CorrID(1, "10.2.0.192.in-addr.arpa.", 1)

	sp := tr.StartSpanCorr("attempt", "10.2.0.192.in-addr.arpa.", corr)
	sp.Event("tx", 1)
	hop := tr.StartSpanCorr("hop", "a>b", corr)
	hop.Event("hop", 1)
	hop.Event("hop", 2)
	hop.End()
	srv := tr.StartSpanCorr("server", "10.2.0.192.in-addr.arpa.", corr)
	srv.Event("server", 0)
	srv.End()
	back := tr.StartSpanCorr("hop", "b>a", corr)
	back.Event("hop", 1)
	back.Event("hop", 2)
	back.End()
	sp.Event("client", 0)
	sp.End()
	// Uncorrelated noise must be ignored.
	noise := tr.StartSpan("shard", "s0")
	noise.End()

	chains := Stitch(spanRecords(t, tr))
	if len(chains) != 1 {
		t.Fatalf("chains = %d, want 1", len(chains))
	}
	c := chains[0]
	if !c.Complete() || c.Corr != corr || len(c.Hops) != 2 {
		t.Fatalf("chain = %+v, want complete with 2 hops", c)
	}
	if c.Name != "10.2.0.192.in-addr.arpa." {
		t.Fatalf("chain name = %q", c.Name)
	}
	line := c.Render()
	for _, want := range []string{"attempt#1", "hop a>b deliver", "hop b>a deliver",
		"server NOERROR", "client NOERROR"} {
		if !strings.Contains(line, want) {
			t.Fatalf("render %q missing %q", line, want)
		}
	}
}

func TestStitchIncompleteChain(t *testing.T) {
	tr := telemetry.NewTracer(2, 64)
	corr := telemetry.CorrID(2, "x.in-addr.arpa.", 1)
	hop := tr.StartSpanCorr("hop", "a>b", corr)
	hop.Event("hop", 1)
	hop.Event("hop", 3) // dropped in flight
	hop.End()
	chains := Stitch(spanRecords(t, tr))
	if len(chains) != 1 || chains[0].Complete() {
		t.Fatalf("chains = %+v, want one incomplete", chains)
	}
	if !strings.Contains(chains[0].Render(), "hop a>b drop") {
		t.Fatalf("render = %q", chains[0].Render())
	}
}

func TestRecorderStoreStats(t *testing.T) {
	r := NewRecorder(nil)
	// No source attached: frames omit the store block.
	if f := r.CaptureFrame(0, day(0), nil); f.Store != nil {
		t.Fatalf("store stats without a source: %+v", f.Store)
	}
	calls := 0
	r.SetStoreStats(func() StoreStats {
		calls++
		return StoreStats{Snapshots: calls, Blocks: 2, BaseFrames: 3, DeltaFrames: 4, Bytes: 512}
	})
	f1 := r.CaptureFrame(1, day(1), nil)
	f2 := r.CaptureFrame(2, day(2), nil)
	if f1.Store == nil || f2.Store == nil {
		t.Fatal("frames missing store stats")
	}
	// Each capture re-snapshots the source; the copies are independent.
	if f1.Store.Snapshots != 1 || f2.Store.Snapshots != 2 || f1.Store == f2.Store {
		t.Fatalf("store snapshots: %+v then %+v", f1.Store, f2.Store)
	}
	if f1.Store.Bytes != 512 || f1.Store.Blocks != 2 {
		t.Fatalf("store fields: %+v", f1.Store)
	}
	// Detaching stops the captures; a nil recorder accepts the call.
	r.SetStoreStats(nil)
	if f := r.CaptureFrame(3, day(3), nil); f.Store != nil {
		t.Fatalf("store stats after detach: %+v", f.Store)
	}
	var nilRec *Recorder
	nilRec.SetStoreStats(func() StoreStats { return StoreStats{} })
}

func TestWithExcludedMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	quiet := reg.Counter("scan_probes_total")
	r := NewRecorder(reg, WithExcludedMetrics("scan_probes_total"))
	quiet.Add(5)
	if f := r.CaptureFrame(0, day(0), nil); f.Deltas != nil {
		t.Fatalf("excluded counter leaked: %v", f.Deltas)
	}
}

func TestRecorderVantageStats(t *testing.T) {
	r := NewRecorder(nil)
	// No source attached: frames omit the vantage block and report the
	// vacuous corroboration score.
	f0 := r.CaptureFrame(0, day(0), nil)
	if f0.Vantage != nil || f0.Corroboration() != 1 {
		t.Fatalf("vantage stats without a source: %+v", f0)
	}
	r.SetVantageStats(func() *VantageStats {
		return &VantageStats{Vantages: 3, Changes: 4, FullyCorroborated: 2, MeanCorroboration: 0.5}
	})
	f1 := r.CaptureFrame(1, day(1), nil)
	if f1.Vantage == nil || f1.Vantage.Vantages != 3 {
		t.Fatalf("frame missing vantage stats: %+v", f1)
	}
	if f1.Corroboration() != 0.5 {
		t.Fatalf("corroboration = %v, want 0.5", f1.Corroboration())
	}
	// A pre-built frame that already carries vantage stats keeps them.
	own := &VantageStats{Vantages: 2, MeanCorroboration: 0.25}
	f2 := r.Capture(Frame{Index: 2, Date: day(2), Vantage: own})
	if f2.Vantage != own || f2.Corroboration() != 0.25 {
		t.Fatalf("capture overwrote explicit vantage stats: %+v", f2.Vantage)
	}
	// Detaching stops the captures; a nil recorder accepts the call.
	r.SetVantageStats(nil)
	if f := r.CaptureFrame(3, day(3), nil); f.Vantage != nil {
		t.Fatalf("vantage stats after detach: %+v", f.Vantage)
	}
	var nilRec *Recorder
	nilRec.SetVantageStats(func() *VantageStats { return nil })
}

func TestSLOMinCorroboration(t *testing.T) {
	rules := Rules{MaxErrorRate: -1, MaxBreakerOpens: -1, MaxRetryRate: -1, MinCorroboration: 0.9}
	frames := []Frame{
		{Index: 0, Vantage: &VantageStats{Vantages: 3, MeanCorroboration: 0.95}}, // healthy
		{Index: 1, Vantage: &VantageStats{Vantages: 3, MeanCorroboration: 0.5}},  // breach
		{Index: 2}, // no vantage stats: vacuously corroborated
	}
	rep := rules.Evaluate(frames)
	if rep.ViolatingFrames != 1 || rep.Verdicts[0].OK == false || rep.Verdicts[2].OK == false {
		t.Fatalf("verdicts = %+v", rep.Verdicts)
	}
	if len(rep.Verdicts[1].Violations) != 1 || rep.Verdicts[1].Violations[0].Rule != "corroboration" {
		t.Fatalf("frame 1 violations = %+v", rep.Verdicts[1].Violations)
	}
	// Zero disables the rule entirely.
	rules.MinCorroboration = 0
	if rep := rules.Evaluate(frames); rep.ViolatingFrames != 0 {
		t.Fatalf("disabled rule still violated: %+v", rep)
	}
}
