package obs

import (
	"fmt"
	"strings"
)

// Rules is a declarative per-frame SLO: every enabled rule is evaluated
// against each frame, and the campaign-level error budget bounds how many
// frames may violate before the campaign itself is out of SLO.
//
// The zero value disables everything (every frame passes). Rates are
// fractions in [0,1].
type Rules struct {
	// MaxErrorRate bounds Frame.ErrorRate (probe errors per probe).
	// Negative disables; zero means "no errors allowed".
	MaxErrorRate float64 `json:"max_error_rate"`
	// MinCoverage floors Frame.Coverage (probed fraction of the plan).
	// Zero disables.
	MinCoverage float64 `json:"min_coverage"`
	// MaxBreakerOpens budgets circuit-breaker opens per frame. Negative
	// disables; zero means "no opens allowed".
	MaxBreakerOpens int `json:"max_breaker_opens"`
	// MaxRetryRate bounds Frame.RetryRate (scan-level retries per probe).
	// Negative disables; zero means "no retries allowed".
	MaxRetryRate float64 `json:"max_retry_rate"`
	// MinCorroboration floors Frame.Corroboration, the day's mean
	// cross-vantage corroboration score: below it, too many of the day's
	// PTR changes were seen by too few vantage points to trust as churn
	// rather than measurement artifact. Zero disables. Frames without
	// vantage stats score 1 and always pass.
	MinCorroboration float64 `json:"min_corroboration,omitempty"`
	// ErrorBudget is the fraction of campaign frames allowed to violate
	// (SRE-style): with 30 frames and a 0.1 budget, 3 bad days are within
	// budget, 4 burn it. Zero means no violations are budgeted.
	ErrorBudget float64 `json:"error_budget"`
}

// DefaultRules is a production-shaped starting point: 1% probe errors,
// 99% coverage, no breaker opens, 5% retries, with 5% of days budgeted.
func DefaultRules() Rules {
	return Rules{
		MaxErrorRate:    0.01,
		MinCoverage:     0.99,
		MaxBreakerOpens: 0,
		MaxRetryRate:    0.05,
		ErrorBudget:     0.05,
	}
}

// Violation is one rule breach on one frame.
type Violation struct {
	// Rule names the breached rule ("error_rate", "coverage",
	// "breaker_opens", "retry_rate", "corroboration").
	Rule string `json:"rule"`
	// Value is the observed value, Limit the configured bound.
	Value float64 `json:"value"`
	Limit float64 `json:"limit"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s %.4g (limit %.4g)", v.Rule, v.Value, v.Limit)
}

// FrameVerdict is one frame's SLO evaluation.
type FrameVerdict struct {
	Index      int         `json:"index"`
	OK         bool        `json:"ok"`
	Violations []Violation `json:"violations,omitempty"`
}

// Report is a campaign-level SLO evaluation: per-frame verdicts plus
// error-budget accounting.
type Report struct {
	// Verdicts holds one entry per evaluated frame, in input order.
	Verdicts []FrameVerdict `json:"verdicts"`
	// ViolatingFrames counts frames with at least one violation.
	ViolatingFrames int `json:"violating_frames"`
	// BudgetSpent is ViolatingFrames over total frames (0 with no
	// frames); BudgetOK reports it within Rules.ErrorBudget.
	BudgetSpent float64 `json:"budget_spent"`
	BudgetOK    bool    `json:"budget_ok"`
}

// Evaluate applies the rules to a frame series.
func (r Rules) Evaluate(frames []Frame) Report {
	rep := Report{Verdicts: make([]FrameVerdict, 0, len(frames))}
	for _, f := range frames {
		v := r.evaluateFrame(f)
		if !v.OK {
			rep.ViolatingFrames++
		}
		rep.Verdicts = append(rep.Verdicts, v)
	}
	if len(frames) > 0 {
		rep.BudgetSpent = float64(rep.ViolatingFrames) / float64(len(frames))
	}
	rep.BudgetOK = rep.BudgetSpent <= r.ErrorBudget
	return rep
}

func (r Rules) evaluateFrame(f Frame) FrameVerdict {
	v := FrameVerdict{Index: f.Index, OK: true}
	fail := func(rule string, value, limit float64) {
		v.OK = false
		v.Violations = append(v.Violations, Violation{Rule: rule, Value: value, Limit: limit})
	}
	if r.MaxErrorRate >= 0 && f.ErrorRate() > r.MaxErrorRate {
		fail("error_rate", f.ErrorRate(), r.MaxErrorRate)
	}
	if r.MinCoverage > 0 && f.Coverage() < r.MinCoverage {
		fail("coverage", f.Coverage(), r.MinCoverage)
	}
	if r.MaxBreakerOpens >= 0 && f.BreakerOpens > uint64(r.MaxBreakerOpens) {
		fail("breaker_opens", float64(f.BreakerOpens), float64(r.MaxBreakerOpens))
	}
	if r.MaxRetryRate >= 0 && f.RetryRate() > r.MaxRetryRate {
		fail("retry_rate", f.RetryRate(), r.MaxRetryRate)
	}
	if r.MinCorroboration > 0 && f.Corroboration() < r.MinCorroboration {
		fail("corroboration", f.Corroboration(), r.MinCorroboration)
	}
	return v
}

// Summary renders the report as a short human-readable table, one line
// per violating frame plus the budget verdict — the experiments -obs
// output shape.
func (rep Report) Summary() string {
	var b strings.Builder
	for _, v := range rep.Verdicts {
		if v.OK {
			continue
		}
		parts := make([]string, len(v.Violations))
		for i, viol := range v.Violations {
			parts[i] = viol.String()
		}
		fmt.Fprintf(&b, "frame %d: %s\n", v.Index, strings.Join(parts, "; "))
	}
	verdict := "within"
	if !rep.BudgetOK {
		verdict = "EXCEEDS"
	}
	fmt.Fprintf(&b, "%d/%d frames violating; budget spent %.1f%% (%s budget)\n",
		rep.ViolatingFrames, len(rep.Verdicts), rep.BudgetSpent*100, verdict)
	return b.String()
}
