package obs

import (
	"fmt"
	"sort"
	"strings"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/telemetry"
)

// Chain is one probe attempt's stitched causal path: the client span that
// originated the correlation ID, the fabric hops the query (and any
// reply) took, and the server span that answered. Layers that did not
// trace (e.g. a sink-only run) simply leave their slot empty.
type Chain struct {
	// Corr is the shared correlation ID (telemetry.CorrID keying).
	Corr uint64
	// Name is the query name, taken from the client span's attr (or the
	// server span's when no client traced).
	Name string
	// Client is the dnsclient "attempt" span, nil if the client layer
	// did not trace this correlation.
	Client *telemetry.SpanRecord
	// Hops are the fabric "hop" spans in completion order — the query
	// leg first, then the reply leg when one was sent.
	Hops []telemetry.SpanRecord
	// Server is the dnsserver "server" span, nil if the query never
	// reached a traced server.
	Server *telemetry.SpanRecord

	// The fleet-level layers (PR 9): an rdnsd query carries its
	// X-Rdns-Corr correlation ID from the rdnsclient span through the
	// daemon's server-side spans, and — when a replica served it — joins
	// the replication sync that delivered its data via matching "gen"
	// events.

	// Query is the rdnsclient "rdnsq.client" span, nil when no traced
	// API client originated this correlation.
	Query *telemetry.SpanRecord
	// Daemon is the rdnsserve "rdnsd.query" root span.
	Daemon *telemetry.SpanRecord
	// Phases are the daemon's "rdnsd.parse"/"rdnsd.store" child spans in
	// completion order.
	Phases []telemetry.SpanRecord
	// Sync is the "repl.sync" span of the catch-up that delivered the
	// store generation this query read — a *different* correlation ID,
	// joined through the generation stamped on both sides. Nil for
	// primary-served queries (or when the replica did not trace).
	Sync *telemetry.SpanRecord
	// Fetches are the "repl.fetch" spans recorded under Sync.
	Fetches []telemetry.SpanRecord

	// Other holds correlated spans from layers outside the taxonomy
	// (future-proofing; empty today).
	Other []telemetry.SpanRecord
}

// Complete reports whether the chain crosses all three layers: a client
// attempt, at least one fabric hop, and a server verdict.
func (c Chain) Complete() bool {
	return c.Client != nil && len(c.Hops) > 0 && c.Server != nil
}

// QueryComplete reports a stitched client→daemon API chain: the
// originating rdnsclient span and the daemon span that answered it.
func (c Chain) QueryComplete() bool {
	return c.Query != nil && c.Daemon != nil
}

// ReplicaServed reports whether the chain continues through the
// replication sync that delivered the data the query read.
func (c Chain) ReplicaServed() bool {
	return c.QueryComplete() && c.Sync != nil
}

// Generation returns the store generation stamped on the chain's daemon
// spans ("gen" events; ok false when none — a rejected request, or an
// untraced store phase).
func (c Chain) Generation() (uint64, bool) {
	for i := range c.Phases {
		if g, ok := genEvent(c.Phases[i]); ok {
			return g, true
		}
	}
	if c.Daemon != nil {
		return genEvent(*c.Daemon)
	}
	return 0, false
}

// genEvent finds a span's "gen" event code.
func genEvent(rec telemetry.SpanRecord) (uint64, bool) {
	for _, ev := range rec.Events {
		if ev.Kind == "gen" {
			return ev.Code, true
		}
	}
	return 0, false
}

// Stitch groups correlated span records into causal chains, ordered by
// correlation ID. Uncorrelated spans (corr 0 — shard spans, sweep spans)
// are ignored. Records may come from any number of per-process dumps
// concatenated together: the correlation IDs key the grouping, not the
// dump of origin.
//
// Chains whose daemon spans carry a "gen" event are additionally joined
// to the "repl.sync" chain whose own "gen" event names the same serving
// generation — the cross-correlation link from a replica-served query
// back through the feed pull that delivered its segment. The sync chain
// also remains in the output under its own correlation ID. Generation
// numbers are scoped to one daemon: when joining sync chains, stitch
// the replica's dump (its serving spans and its syncer's spans share a
// process) together with the clients' — folding a *different* daemon's
// spans into the same call can alias generation numbers across daemons.
func Stitch(records []telemetry.SpanRecord) []Chain {
	byCorr := make(map[uint64]*Chain)
	var order []uint64
	for i := range records {
		rec := records[i]
		corr := rec.CorrID()
		if corr == 0 {
			continue
		}
		c := byCorr[corr]
		if c == nil {
			c = &Chain{Corr: corr}
			byCorr[corr] = c
			order = append(order, corr)
		}
		switch rec.Name {
		case "attempt":
			if c.Client == nil {
				c.Client = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "hop":
			c.Hops = append(c.Hops, rec)
		case "server":
			if c.Server == nil {
				c.Server = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "rdnsq.client":
			if c.Query == nil {
				c.Query = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "rdnsd.query":
			if c.Daemon == nil {
				c.Daemon = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "rdnsd.parse", "rdnsd.store":
			c.Phases = append(c.Phases, rec)
		case "repl.sync":
			if c.Sync == nil {
				c.Sync = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "repl.fetch":
			c.Fetches = append(c.Fetches, rec)
		default:
			c.Other = append(c.Other, rec)
		}
	}
	// Generation join: map each serving generation to the sync chain
	// that produced it, then attach that sync (and its fetches) to every
	// query chain stamped with the same generation.
	genToSync := make(map[uint64]*Chain)
	for _, corr := range order {
		c := byCorr[corr]
		if c.Sync == nil {
			continue
		}
		if g, ok := genEvent(*c.Sync); ok {
			genToSync[g] = c
		}
	}
	for _, corr := range order {
		c := byCorr[corr]
		if c.Daemon == nil || c.Sync != nil {
			continue
		}
		if g, ok := c.Generation(); ok {
			if sc := genToSync[g]; sc != nil {
				c.Sync = sc.Sync
				c.Fetches = sc.Fetches
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	chains := make([]Chain, 0, len(order))
	for _, corr := range order {
		c := byCorr[corr]
		switch {
		case c.Client != nil:
			c.Name = c.Client.Attr
		case c.Server != nil:
			c.Name = c.Server.Attr
		case c.Query != nil:
			c.Name = c.Query.Attr
		case c.Daemon != nil:
			c.Name = c.Daemon.Attr
		case c.Sync != nil:
			c.Name = c.Sync.Attr
		}
		chains = append(chains, *c)
	}
	return chains
}

// hopVerdict names a hop span's terminal event code.
func hopVerdict(code uint64) string {
	switch code {
	case fabric.HopSend:
		return "in-flight"
	case fabric.HopDeliver:
		return "deliver"
	case fabric.HopDrop:
		return "drop"
	case fabric.HopVanish:
		return "vanish"
	}
	return fmt.Sprintf("hop?%d", code)
}

// serverVerdict names a server span's terminal event code (an RCode, or
// the dropped sentinel).
func serverVerdict(code uint64) string {
	if code == dnsserver.ServerDropped {
		return "DROPPED"
	}
	return dnswire.RCode(code).String()
}

// Render formats the chain as one line:
//
//	corr 6e3a…: 10.2.0.192.in-addr.arpa. attempt#1 → hop a>b deliver → hop b>a deliver → server NOERROR → client SUCCESS
//
// Fleet-level API chains render their own vocabulary:
//
//	corr 9b2c…: /v1/at client try#1 status 200 → rdnsd at [gen 2] → sync via 41d0… (2 fetches)
func (c Chain) Render() string {
	if c.Query != nil || c.Daemon != nil || c.Sync != nil {
		return c.renderFleet()
	}
	var parts []string
	attempt := "?"
	if c.Client != nil {
		for _, ev := range c.Client.Events {
			if ev.Kind == "tx" {
				attempt = fmt.Sprintf("%d", ev.Code)
			}
		}
	}
	parts = append(parts, "attempt#"+attempt)
	for _, hop := range c.Hops {
		verdict := "?"
		if n := len(hop.Events); n > 0 {
			verdict = hopVerdict(hop.Events[n-1].Code)
		}
		parts = append(parts, "hop "+hop.Attr+" "+verdict)
	}
	if c.Server != nil {
		verdict := "?"
		if n := len(c.Server.Events); n > 0 {
			verdict = serverVerdict(c.Server.Events[n-1].Code)
		}
		parts = append(parts, "server "+verdict)
	}
	if c.Client != nil {
		for _, ev := range c.Client.Events {
			if ev.Kind == "client" {
				parts = append(parts, "client "+dnsclient.Outcome(ev.Code).String())
			}
		}
	}
	return fmt.Sprintf("corr %016x: %s %s", c.Corr, c.Name, strings.Join(parts, " → "))
}

// renderFleet formats a client→daemon→replica-sync API chain.
func (c Chain) renderFleet() string {
	var parts []string
	if c.Query != nil {
		try, status := "?", "?"
		for _, ev := range c.Query.Events {
			switch ev.Kind {
			case "tx":
				try = fmt.Sprintf("%d", ev.Code)
			case "status":
				status = fmt.Sprintf("%d", ev.Code)
			}
		}
		parts = append(parts, "client try#"+try+" status "+status)
	}
	if c.Daemon != nil {
		d := "rdnsd " + c.Daemon.Attr
		for _, ev := range c.Daemon.Events {
			if ev.Kind == "error" {
				d += fmt.Sprintf(" error %d", ev.Code)
			}
		}
		if g, ok := c.Generation(); ok {
			d += fmt.Sprintf(" [gen %d]", g)
		}
		parts = append(parts, d)
	}
	if c.Sync != nil {
		syncCorr := c.Sync.Corr
		if len(syncCorr) > 4 {
			syncCorr = syncCorr[:4] + "…"
		}
		s := "sync via " + syncCorr
		if n := len(c.Fetches); n > 0 {
			s += fmt.Sprintf(" (%d fetches)", n)
		}
		parts = append(parts, s)
	}
	return fmt.Sprintf("corr %016x: %s %s", c.Corr, c.Name, strings.Join(parts, " → "))
}
