package obs

import (
	"fmt"
	"sort"
	"strings"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/telemetry"
)

// Chain is one probe attempt's stitched causal path: the client span that
// originated the correlation ID, the fabric hops the query (and any
// reply) took, and the server span that answered. Layers that did not
// trace (e.g. a sink-only run) simply leave their slot empty.
type Chain struct {
	// Corr is the shared correlation ID (telemetry.CorrID keying).
	Corr uint64
	// Name is the query name, taken from the client span's attr (or the
	// server span's when no client traced).
	Name string
	// Client is the dnsclient "attempt" span, nil if the client layer
	// did not trace this correlation.
	Client *telemetry.SpanRecord
	// Hops are the fabric "hop" spans in completion order — the query
	// leg first, then the reply leg when one was sent.
	Hops []telemetry.SpanRecord
	// Server is the dnsserver "server" span, nil if the query never
	// reached a traced server.
	Server *telemetry.SpanRecord
	// Other holds correlated spans from layers outside the taxonomy
	// (future-proofing; empty today).
	Other []telemetry.SpanRecord
}

// Complete reports whether the chain crosses all three layers: a client
// attempt, at least one fabric hop, and a server verdict.
func (c Chain) Complete() bool {
	return c.Client != nil && len(c.Hops) > 0 && c.Server != nil
}

// Stitch groups correlated span records into causal chains, ordered by
// correlation ID. Uncorrelated spans (corr 0 — shard spans, sweep spans)
// are ignored.
func Stitch(records []telemetry.SpanRecord) []Chain {
	byCorr := make(map[uint64]*Chain)
	var order []uint64
	for i := range records {
		rec := records[i]
		corr := rec.CorrID()
		if corr == 0 {
			continue
		}
		c := byCorr[corr]
		if c == nil {
			c = &Chain{Corr: corr}
			byCorr[corr] = c
			order = append(order, corr)
		}
		switch rec.Name {
		case "attempt":
			if c.Client == nil {
				c.Client = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		case "hop":
			c.Hops = append(c.Hops, rec)
		case "server":
			if c.Server == nil {
				c.Server = &records[i]
			} else {
				c.Other = append(c.Other, rec)
			}
		default:
			c.Other = append(c.Other, rec)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	chains := make([]Chain, 0, len(order))
	for _, corr := range order {
		c := byCorr[corr]
		if c.Client != nil {
			c.Name = c.Client.Attr
		} else if c.Server != nil {
			c.Name = c.Server.Attr
		}
		chains = append(chains, *c)
	}
	return chains
}

// hopVerdict names a hop span's terminal event code.
func hopVerdict(code uint64) string {
	switch code {
	case fabric.HopSend:
		return "in-flight"
	case fabric.HopDeliver:
		return "deliver"
	case fabric.HopDrop:
		return "drop"
	case fabric.HopVanish:
		return "vanish"
	}
	return fmt.Sprintf("hop?%d", code)
}

// serverVerdict names a server span's terminal event code (an RCode, or
// the dropped sentinel).
func serverVerdict(code uint64) string {
	if code == dnsserver.ServerDropped {
		return "DROPPED"
	}
	return dnswire.RCode(code).String()
}

// Render formats the chain as one line:
//
//	corr 6e3a…: 10.2.0.192.in-addr.arpa. attempt#1 → hop a>b deliver → hop b>a deliver → server NOERROR → client SUCCESS
func (c Chain) Render() string {
	var parts []string
	attempt := "?"
	if c.Client != nil {
		for _, ev := range c.Client.Events {
			if ev.Kind == "tx" {
				attempt = fmt.Sprintf("%d", ev.Code)
			}
		}
	}
	parts = append(parts, "attempt#"+attempt)
	for _, hop := range c.Hops {
		verdict := "?"
		if n := len(hop.Events); n > 0 {
			verdict = hopVerdict(hop.Events[n-1].Code)
		}
		parts = append(parts, "hop "+hop.Attr+" "+verdict)
	}
	if c.Server != nil {
		verdict := "?"
		if n := len(c.Server.Events); n > 0 {
			verdict = serverVerdict(c.Server.Events[n-1].Code)
		}
		parts = append(parts, "server "+verdict)
	}
	if c.Client != nil {
		for _, ev := range c.Client.Events {
			if ev.Kind == "client" {
				parts = append(parts, "client "+dnsclient.Outcome(ev.Code).String())
			}
		}
	}
	return fmt.Sprintf("corr %016x: %s %s", c.Corr, c.Name, strings.Join(parts, " → "))
}
