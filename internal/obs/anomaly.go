package obs

import (
	"math"
	"sort"
)

// Detector flags campaign days whose counter deltas diverge from the
// campaign's own history. Two deterministic detectors run side by side: a
// robust z-score (median + 1.4826·MAD over the whole series, so a single
// bad day cannot hide itself by inflating the baseline) and an EWMA
// deviation test (catches slow drifts the z-score's symmetric baseline
// absorbs). Unset thresholds are derived deterministically from Seed, so
// replaying a seeded campaign replays its anomaly flags bit-identically.
type Detector struct {
	// Seed parameterizes the derived default thresholds (same value the
	// campaign was scanned with, by convention).
	Seed int64
	// ZThreshold flags |robust z| above it. <= 0 derives from Seed:
	// 3.5 + seed-jitter in [0, 0.5).
	ZThreshold float64
	// EWMAAlpha is the smoothing factor. <= 0 means 0.3.
	EWMAAlpha float64
	// EWMADeviation flags |delta − ewma| / max(ewma, 1) above it. <= 0
	// derives from Seed: 2 + seed-jitter in [0, 0.5).
	EWMADeviation float64
	// MinFrames is the warm-up: earlier frames are never flagged (the
	// baseline is meaningless on day one). <= 0 means 3.
	MinFrames int
}

// Anomaly is one flagged (frame, counter) pair.
type Anomaly struct {
	// Index is the flagged frame's campaign index.
	Index int `json:"index"`
	// Metric is the counter whose delta diverged.
	Metric string `json:"metric"`
	// Delta is the observed per-day increment.
	Delta uint64 `json:"delta"`
	// Score is the detector statistic that crossed its threshold: the
	// robust z for Kind "zscore", the relative EWMA deviation for "ewma".
	Score float64 `json:"score"`
	// Kind names the detector that fired ("zscore" or "ewma").
	Kind string `json:"kind"`
}

func (d Detector) zThreshold() float64 {
	if d.ZThreshold > 0 {
		return d.ZThreshold
	}
	return 3.5 + float64(mix64(uint64(d.Seed), 0x7a)%512)/1024
}

func (d Detector) ewmaDeviation() float64 {
	if d.EWMADeviation > 0 {
		return d.EWMADeviation
	}
	return 2 + float64(mix64(uint64(d.Seed), 0xe3)%512)/1024
}

func (d Detector) alpha() float64 {
	if d.EWMAAlpha > 0 && d.EWMAAlpha <= 1 {
		return d.EWMAAlpha
	}
	return 0.3
}

func (d Detector) minFrames() int {
	if d.MinFrames > 0 {
		return d.MinFrames
	}
	return 3
}

// Detect scans the frame series and returns flagged (frame, counter)
// pairs, ordered by frame index then counter name. Output is a pure
// function of the frames and the detector parameters.
//
// A dump may concatenate several campaigns' frames (the experiments
// study records the dynamicity series and both longitudinal campaigns
// through one recorder); Index restarts at 0 for each, and Detect cuts
// the series there so no campaign's days are judged against another
// campaign's baseline.
func (d Detector) Detect(frames []Frame) []Anomaly {
	var out []Anomaly
	for _, seg := range splitCampaigns(frames) {
		out = append(out, d.detectSeries(seg)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		if out[i].Metric != out[j].Metric {
			return out[i].Metric < out[j].Metric
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}

// splitCampaigns cuts the frame list into contiguous strictly
// index-increasing runs, one per captured campaign.
func splitCampaigns(frames []Frame) [][]Frame {
	var segs [][]Frame
	start := 0
	for i := 1; i < len(frames); i++ {
		if frames[i].Index <= frames[i-1].Index {
			segs = append(segs, frames[start:i])
			start = i
		}
	}
	if start < len(frames) {
		segs = append(segs, frames[start:])
	}
	return segs
}

// detectSeries runs both detectors over one campaign's frames.
func (d Detector) detectSeries(frames []Frame) []Anomaly {
	metrics := metricNames(frames)
	zmax, emax := d.zThreshold(), d.ewmaDeviation()
	alpha, warm := d.alpha(), d.minFrames()

	var out []Anomaly
	for _, name := range metrics {
		series := make([]float64, len(frames))
		for i, f := range frames {
			series[i] = float64(f.Deltas[name])
		}
		med, mad := medianMAD(series)
		// Floor the scale: on a near-constant series (a healthy campaign's
		// daily probe count) the MAD collapses and sub-percent jitter would
		// score as a huge z. Divergence below 1% of the median (or below
		// one count) is never an anomaly.
		scale := math.Max(1.4826*mad, math.Max(0.01*math.Abs(med), 1))
		ewma := series[0]
		for i, x := range series {
			if i >= warm {
				if z := (x - med) / scale; math.Abs(z) > zmax {
					out = append(out, Anomaly{
						Index: frames[i].Index, Metric: name,
						Delta: frames[i].Deltas[name], Score: z, Kind: "zscore",
					})
				}
				if dev := math.Abs(x-ewma) / math.Max(ewma, 1); dev > emax {
					out = append(out, Anomaly{
						Index: frames[i].Index, Metric: name,
						Delta: frames[i].Deltas[name], Score: dev, Kind: "ewma",
					})
				}
			}
			ewma = alpha*x + (1-alpha)*ewma
		}
	}
	return out
}

// metricNames collects every counter named by any frame's deltas, sorted.
func metricNames(frames []Frame) []string {
	seen := make(map[string]bool)
	for _, f := range frames {
		for name := range f.Deltas {
			seen[name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// medianMAD returns the median and the median absolute deviation.
func medianMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	med = median(append([]float64(nil), xs...))
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - med)
	}
	return med, median(dev)
}

// median sorts in place.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// mix64 is the splitmix64 finalizer over each word — the same derivation
// chain telemetry and faultsim use.
func mix64(words ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, w := range words {
		h ^= w
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
