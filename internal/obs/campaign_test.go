package obs_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scan"
	"rdnsprivacy/internal/telemetry"
)

var update = flag.Bool("update", false, "rewrite golden files")

// campaignFrames runs a seeded multi-day campaign with an observer
// attached and returns its frame series.
func campaignFrames(tb testing.TB, seed uint64, days int) []obs.Frame {
	tb.Helper()
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  seed,
		FillerSlash24s:        30,
		LeakyNetworks:         4,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 6,
	})
	if err != nil {
		tb.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rec := obs.NewRecorder(reg)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	scan.Run(scan.Campaign{
		Universe:  u,
		Start:     start,
		End:       start.AddDate(0, 0, days-1),
		Cadence:   scan.Daily,
		Telemetry: reg,
		Observer:  rec,
	})
	return rec.Frames()
}

// TestSLOVerdictsGolden pins the full observability verdict of a seeded
// ten-day campaign — frames, SLO report, anomaly flags — against a golden
// file. Regenerate with: go test ./internal/obs -run Golden -update
func TestSLOVerdictsGolden(t *testing.T) {
	frames := campaignFrames(t, 42, 10)
	if len(frames) != 10 {
		t.Fatalf("frames = %d, want 10", len(frames))
	}
	digest, err := obs.FramesDigest(frames)
	if err != nil {
		t.Fatal(err)
	}
	report := obs.DefaultRules().Evaluate(frames)
	anomalies := obs.Detector{Seed: 42}.Detect(frames)

	var got bytes.Buffer
	enc := json.NewEncoder(&got)
	enc.SetIndent("", "  ")
	for _, v := range []any{
		map[string]string{"frames_digest": obs.Hex16(digest)},
		frames, report, anomalies,
	} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}

	golden := filepath.Join("testdata", "slo_verdicts.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("golden mismatch (regenerate with -update if intended)\ngot:\n%s", got.String())
	}
}

// TestFrameReplayProperty replays seeded campaigns across many seeds and
// checks the two obs determinism contracts: the frame JSONL round-trips
// losslessly, and re-running the same seed reproduces it bit-identically
// (including SLO verdicts and anomaly flags).
func TestFrameReplayProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("50-seed property sweep")
	}
	for seed := uint64(0); seed < 50; seed++ {
		frames := campaignFrames(t, seed, 3)
		if len(frames) != 3 {
			t.Fatalf("seed %d: frames = %d, want 3", seed, len(frames))
		}

		// Lossless JSONL round-trip.
		var buf bytes.Buffer
		if err := obs.WriteFrames(&buf, frames); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		encoded := append([]byte(nil), buf.Bytes()...)
		parsed, err := obs.ReadFrames(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var again bytes.Buffer
		if err := obs.WriteFrames(&again, parsed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(encoded, again.Bytes()) {
			t.Fatalf("seed %d: JSONL round-trip not lossless", seed)
		}

		// Replay determinism: same seed, bit-identical series and verdicts.
		replay := campaignFrames(t, seed, 3)
		d1, _ := obs.FramesDigest(frames)
		d2, _ := obs.FramesDigest(replay)
		if d1 != d2 {
			t.Fatalf("seed %d: replay digest %016x != %016x", seed, d2, d1)
		}
		r1, _ := json.Marshal(obs.DefaultRules().Evaluate(frames))
		r2, _ := json.Marshal(obs.DefaultRules().Evaluate(replay))
		if !bytes.Equal(r1, r2) {
			t.Fatalf("seed %d: SLO reports diverged", seed)
		}
		a1, _ := json.Marshal(obs.Detector{Seed: int64(seed)}.Detect(frames))
		a2, _ := json.Marshal(obs.Detector{Seed: int64(seed)}.Detect(replay))
		if !bytes.Equal(a1, a2) {
			t.Fatalf("seed %d: anomaly flags diverged", seed)
		}
	}
}

// TestConcurrentCaptureDuringSweep hammers the recorder from a capturing
// campaign and concurrent readers at once — run under -race, it proves a
// live sweep can be observed while frames are being written.
func TestConcurrentCaptureDuringSweep(t *testing.T) {
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  7,
		FillerSlash24s:        30,
		LeakyNetworks:         4,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rec := obs.NewRecorder(reg, obs.WithCapacity(8))
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				_ = rec.Frames()
				_ = rec.Store().WriteJSONL(io.Discard)
				_ = rec.Store().Dropped()
			}
		}()
	}
	scan.Run(scan.Campaign{
		Universe:  u,
		Start:     start,
		End:       start.AddDate(0, 0, 11),
		Cadence:   scan.Daily,
		Telemetry: reg,
		Observer:  rec,
	})
	close(done)
	wg.Wait()

	if got := rec.Store().Len(); got != 8 {
		t.Fatalf("retained frames = %d, want ring cap 8", got)
	}
	if got := rec.Store().Dropped(); got != 4 {
		t.Fatalf("dropped frames = %d, want 4 of 12", got)
	}
}
