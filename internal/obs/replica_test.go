package obs

import (
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

func TestReplicaStatusCapture(t *testing.T) {
	r := NewRecorder(nil)
	// No source attached: frames omit the replica block.
	if f := r.CaptureFrame(0, day(0), nil); f.Replica != nil {
		t.Fatalf("replica status without a source: %+v", f.Replica)
	}
	// A source returning nil (a primary with nothing to report) leaves
	// the field unset, so daemons can attach one unconditionally.
	r.SetReplicaStatus(func() *ReplicaStatus { return nil })
	if f := r.CaptureFrame(1, day(1), nil); f.Replica != nil {
		t.Fatalf("nil status captured: %+v", f.Replica)
	}
	calls := 0
	r.SetReplicaStatus(func() *ReplicaStatus {
		calls++
		return &ReplicaStatus{Source: "http://primary:8077", BytesBehind: int64(calls), Syncs: 3}
	})
	f1 := r.CaptureFrame(2, day(2), nil)
	f2 := r.CaptureFrame(3, day(3), nil)
	if f1.Replica == nil || f2.Replica == nil {
		t.Fatal("frames missing replica status")
	}
	// Each capture re-queries the source; the reports are independent.
	if f1.Replica.BytesBehind != 1 || f2.Replica.BytesBehind != 2 || f1.Replica == f2.Replica {
		t.Fatalf("replica reports: %+v then %+v", f1.Replica, f2.Replica)
	}
	if f1.Replica.Source != "http://primary:8077" || f1.Replica.Syncs != 3 {
		t.Fatalf("replica fields: %+v", f1.Replica)
	}
	// Detaching stops the captures; a nil recorder accepts the call.
	r.SetReplicaStatus(nil)
	if f := r.CaptureFrame(4, day(4), nil); f.Replica != nil {
		t.Fatalf("replica status after detach: %+v", f.Replica)
	}
	var nilRec *Recorder
	nilRec.SetReplicaStatus(func() *ReplicaStatus { return &ReplicaStatus{} })
}

func TestFrameFromSnapshotHealth(t *testing.T) {
	degraded := dnswire.MustPrefix("10.9.0.0/24")
	snap := &scanengine.Snapshot{
		Records: scanengine.RecordSet{
			dnswire.MustIPv4("10.0.0.1"): dnswire.MustName("a.example.org"),
		},
		Changes: []scanengine.Change{
			{Kind: scanengine.RecordAdded, IP: dnswire.MustIPv4("10.0.0.1")},
			{Kind: scanengine.RecordRemoved, IP: dnswire.MustIPv4("10.0.0.2")},
			{Kind: scanengine.RecordChanged, IP: dnswire.MustIPv4("10.0.0.3")},
		},
		Degraded: true,
		Health: &scanengine.HealthReport{
			Degraded: []dnswire.Prefix{degraded},
			Totals:   scanengine.ResilienceTotals{BreakerOpens: 5},
		},
	}
	f := frameFromSnapshot(7, day(7), snap)
	if f.Added != 1 || f.Removed != 1 || f.Changed != 1 {
		t.Fatalf("change tallies: %+v", f)
	}
	if !f.Degraded || len(f.DegradedPrefixes) != 1 || f.DegradedPrefixes[0] != degraded.String() {
		t.Fatalf("degraded prefixes: %+v", f)
	}
	if f.BreakerOpens != 5 || f.HealthFingerprint == "" {
		t.Fatalf("health summary: %+v", f)
	}
}

func TestLoadRulesReplicaLag(t *testing.T) {
	// Positive limit bounds the byte lag.
	bounded := LoadRules{MaxErrorRate: -1, MaxShedRate: -1, MaxReplicaLagBytes: 100}
	rep := bounded.EvaluateLoad([]LoadSample{
		{Label: "replica-ok", Requests: 10, BytesBehind: 100},
		{Label: "replica-lagging", Requests: 10, BytesBehind: 101},
	})
	if rep.OK || rep.ViolatingSamples != 1 {
		t.Fatalf("bounded lag report: %+v", rep)
	}
	if v := rep.Verdicts[1]; v.OK || v.Violations[0].Rule != "replica_lag_bytes" {
		t.Fatalf("lagging verdict: %+v", v)
	}
	// Negative limit demands full catch-up: any lag violates.
	strict := LoadRules{MaxErrorRate: -1, MaxShedRate: -1, MaxReplicaLagBytes: -1}
	rep = strict.EvaluateLoad([]LoadSample{
		{Label: "caught-up", Requests: 10, BytesBehind: 0},
		{Label: "one-byte", Requests: 10, BytesBehind: 1},
	})
	if rep.Verdicts[0].OK != true || rep.Verdicts[1].OK != false {
		t.Fatalf("strict lag report: %+v", rep)
	}
	// Zero disables the rule — primaries have no lag to judge.
	off := LoadRules{MaxErrorRate: -1, MaxShedRate: -1}
	if rep := off.EvaluateLoad([]LoadSample{{Label: "x", Requests: 10, BytesBehind: 1 << 30}}); !rep.OK {
		t.Fatalf("disabled lag rule violated: %+v", rep.Verdicts)
	}
}
