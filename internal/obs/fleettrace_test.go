package obs

import (
	"bytes"
	"strings"
	"testing"

	"rdnsprivacy/internal/telemetry"
)

// fleetRecords builds a span dump shaped like one daemon process plus
// its clients: two query chains (one served at a generation a traced
// sync delivered, one at an earlier generation with no sync), the sync
// chain itself, and an error chain that never pinned a store handle.
func fleetRecords(t *testing.T) (recs []telemetry.SpanRecord, corrs map[string]uint64) {
	t.Helper()
	tr := telemetry.NewTracer(11, 64)
	corrs = map[string]uint64{
		"replica-served": telemetry.CorrID(11, "client /v1/at", 1),
		"primary-served": telemetry.CorrID(11, "client /v1/at", 2),
		"sync":           telemetry.CorrID(11, "repl.sync", 1),
		"error":          telemetry.CorrID(11, "client /v1/at", 3),
	}

	// The catch-up sync that produced serving generation 2.
	sync := tr.StartSpanCorr("repl.sync", "http://primary", corrs["sync"])
	sync.Event("gen", 2)
	for i := 0; i < 2; i++ {
		f := tr.StartSpanCorr("repl.fetch", "seg-a-0.seg", corrs["sync"])
		f.Event("bytes", 4096)
		f.End()
	}
	sync.End()

	// A query served from generation 2: client span, daemon root, phases.
	q := tr.StartSpanCorr("rdnsq.client", "/v1/at", corrs["replica-served"])
	q.Event("tx", 1)
	q.Event("status", 200)
	q.End()
	d := tr.StartSpanCorr("rdnsd.query", "at", corrs["replica-served"])
	p := tr.StartSpanCorr("rdnsd.parse", "/v1/at", corrs["replica-served"])
	p.End()
	st := tr.StartSpanCorr("rdnsd.store", "/v1/at", corrs["replica-served"])
	st.Event("gen", 2)
	st.End()
	d.End()

	// A query served from generation 1 — no sync chain claims that gen.
	q = tr.StartSpanCorr("rdnsq.client", "/v1/at", corrs["primary-served"])
	q.Event("tx", 1)
	q.Event("status", 200)
	q.End()
	d = tr.StartSpanCorr("rdnsd.query", "at", corrs["primary-served"])
	st = tr.StartSpanCorr("rdnsd.store", "/v1/at", corrs["primary-served"])
	st.Event("gen", 1)
	st.End()
	d.End()

	// A 400: the daemon span records the error, no store phase ran.
	q = tr.StartSpanCorr("rdnsq.client", "/v1/at", corrs["error"])
	q.Event("tx", 1)
	q.Event("status", 400)
	q.End()
	d = tr.StartSpanCorr("rdnsd.query", "at", corrs["error"])
	d.Event("error", 400)
	d.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return recs, corrs
}

func chainFor(t *testing.T, chains []Chain, corr uint64) Chain {
	t.Helper()
	for _, c := range chains {
		if c.Corr == corr {
			return c
		}
	}
	t.Fatalf("no chain for corr %016x", corr)
	return Chain{}
}

func TestStitchFleetChains(t *testing.T) {
	recs, corrs := fleetRecords(t)
	chains := Stitch(recs)
	if len(chains) != 4 {
		t.Fatalf("stitched %d chains, want 4", len(chains))
	}

	// The replica-served query joins the sync chain via the shared gen.
	rc := chainFor(t, chains, corrs["replica-served"])
	if !rc.QueryComplete() || !rc.ReplicaServed() {
		t.Fatalf("replica-served chain incomplete: %+v", rc)
	}
	if g, ok := rc.Generation(); !ok || g != 2 {
		t.Fatalf("replica-served generation = %d,%v, want 2", g, ok)
	}
	if len(rc.Phases) != 2 || len(rc.Fetches) != 2 {
		t.Fatalf("phases %d fetches %d, want 2 and 2", len(rc.Phases), len(rc.Fetches))
	}
	line := rc.Render()
	for _, want := range []string{"client try#1 status 200", "rdnsd at [gen 2]", "sync via", "(2 fetches)"} {
		if !strings.Contains(line, want) {
			t.Errorf("render %q missing %q", line, want)
		}
	}

	// The generation-1 query has no matching sync — still complete.
	pc := chainFor(t, chains, corrs["primary-served"])
	if !pc.QueryComplete() || pc.ReplicaServed() {
		t.Fatalf("primary-served chain wrong: complete=%v replica=%v", pc.QueryComplete(), pc.ReplicaServed())
	}
	if g, ok := pc.Generation(); !ok || g != 1 {
		t.Fatalf("primary-served generation = %d,%v, want 1", g, ok)
	}
	if line := pc.Render(); strings.Contains(line, "sync via") || !strings.Contains(line, "[gen 1]") {
		t.Errorf("primary-served render wrong: %q", line)
	}

	// The 400 chain has no generation and renders the error event.
	ec := chainFor(t, chains, corrs["error"])
	if _, ok := ec.Generation(); ok {
		t.Fatal("error chain should have no generation")
	}
	if line := ec.Render(); !strings.Contains(line, "error 400") || !strings.Contains(line, "status 400") {
		t.Errorf("error render wrong: %q", line)
	}

	// The sync chain itself stays in the output under its own corr.
	sc := chainFor(t, chains, corrs["sync"])
	if sc.Sync == nil || len(sc.Fetches) != 2 || sc.QueryComplete() {
		t.Fatalf("sync chain wrong: %+v", sc)
	}
	if line := sc.Render(); !strings.Contains(line, "sync via") {
		t.Errorf("sync render wrong: %q", line)
	}
}
