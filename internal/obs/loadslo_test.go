package obs

import (
	"strings"
	"testing"
)

func TestLoadRulesEvaluate(t *testing.T) {
	rules := LoadRules{
		MaxErrorRate:  0.01,
		MaxShedRate:   0.05,
		MaxP95Seconds: 0.5,
		MaxP99Seconds: 2.0,
	}
	samples := []LoadSample{
		{Label: "at", Requests: 1000, Errors: 0, P50: 0.001, P95: 0.01, P99: 0.05},
		{Label: "range", Requests: 1000, Errors: 50, P95: 0.1, P99: 0.2},           // error_rate 5%
		{Label: "churn", Requests: 200, RateLimited: 20, Shed: 5, P99: 0.1},        // shed_rate 12.5%
		{Label: "name", Requests: 100, P95: 0.9, P99: 3.0},                         // p95 + p99
		{Label: "total", Requests: 2300, Errors: 50, RateLimited: 20, P99: 1.9},    // error_rate only
	}
	rep := rules.EvaluateLoad(samples)
	if rep.OK || rep.ViolatingSamples != 4 {
		t.Fatalf("report: OK=%v violating=%d, want 4 violating", rep.OK, rep.ViolatingSamples)
	}
	if !rep.Verdicts[0].OK {
		t.Fatalf("clean sample violated: %+v", rep.Verdicts[0])
	}
	wantRules := map[string][]string{
		"range": {"error_rate"},
		"churn": {"shed_rate"},
		"name":  {"p95", "p99"},
		"total": {"error_rate"},
	}
	for _, v := range rep.Verdicts[1:] {
		want := wantRules[v.Label]
		if len(v.Violations) != len(want) {
			t.Fatalf("%s: violations %+v, want rules %v", v.Label, v.Violations, want)
		}
		for i, viol := range v.Violations {
			if viol.Rule != want[i] {
				t.Errorf("%s: violation %d is %q, want %q", v.Label, i, viol.Rule, want[i])
			}
		}
	}
	sum := rep.Summary()
	if !strings.Contains(sum, "OUT OF SLO") || !strings.Contains(sum, "4/5 samples violating") {
		t.Fatalf("summary:\n%s", sum)
	}
}

func TestLoadRulesDisabledAndZero(t *testing.T) {
	// Zero latency bounds disable; negative rates disable; a zero rate
	// means "none allowed" (the slo.go convention).
	s := LoadSample{Label: "x", Requests: 10, Errors: 1, Shed: 10, P95: 99, P99: 99}
	off := LoadRules{MaxErrorRate: -1, MaxShedRate: -1}
	if rep := off.EvaluateLoad([]LoadSample{s}); !rep.OK {
		t.Fatalf("disabled rules still violated: %+v", rep.Verdicts)
	}
	strict := LoadRules{MaxErrorRate: 0, MaxShedRate: -1}
	rep := strict.EvaluateLoad([]LoadSample{s})
	if rep.OK || rep.Verdicts[0].Violations[0].Rule != "error_rate" {
		t.Fatalf("zero MaxErrorRate did not gate: %+v", rep.Verdicts)
	}
	// No requests: rates are zero, nothing to violate.
	empty := DefaultLoadRules()
	if rep := empty.EvaluateLoad([]LoadSample{{Label: "idle"}}); !rep.OK {
		t.Fatalf("idle sample violated: %+v", rep.Verdicts)
	}
}

func TestDefaultLoadRulesShape(t *testing.T) {
	r := DefaultLoadRules()
	if r.MaxErrorRate != 0 || r.MaxShedRate <= 0 || r.MaxP99Seconds <= r.MaxP95Seconds {
		t.Fatalf("surprising defaults: %+v", r)
	}
	ok := LoadSample{Label: "total", Requests: 100, P95: 0.2, P99: 0.9}
	if rep := r.EvaluateLoad([]LoadSample{ok}); !rep.OK {
		t.Fatalf("healthy sample out of default SLO: %+v", rep.Verdicts)
	}
	if !strings.Contains(r.EvaluateLoad([]LoadSample{ok}).Summary(), "within SLO") {
		t.Fatal("summary verdict missing")
	}
}
