package netsim

import (
	"fmt"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/icmp"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/telemetry"
)

// defaultNamePool is the owner-name pool for random population: the
// matching top-50 plus common names outside it (Brian lives there).
func defaultNamePool() []string {
	pool := make([]string, 0, len(names.Top50)+len(names.Extra))
	pool = append(pool, names.Top50...)
	pool = append(pool, names.Extra...)
	return pool
}

// SetDNSFailure configures live-mode name-server failure injection. It
// must be called before Start.
func (n *Network) SetDNSFailure(fm dnsserver.FailureMode) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DNSFailure = fm
}

// SetDNSTracer attaches tr to the live-mode authoritative server so
// correlated queries emit "server" spans (see dnsserver.SetTracer). Takes
// effect immediately when the network is already live, otherwise at Start.
func (n *Network) SetDNSTracer(tr *telemetry.Tracer) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.DNSTracer = tr
	if n.live != nil {
		n.live.dns.SetTracer(tr)
	}
}

// Start switches the network to live, event-driven mode on a fabric: it
// builds per-/24 reverse zones on an authoritative server reachable at
// DNSAddr(), a DHCP server and IPAM updater per dynamic block, an ICMP
// responder for the announced prefix, and schedules every device's joins
// and leaves on the clock, day by day, until Stop is called.
//
// In this mode the network is observable exactly as the paper's targets
// were: PTR queries against the authoritative server and ICMP probes are
// the only windows in.
func (n *Network) Start(fab *fabric.Fabric) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live != nil {
		return fmt.Errorf("netsim: %s already started", n.cfg.Name)
	}
	clock := fab.Clock()
	live := &liveState{
		clock:   clock,
		fab:     fab,
		dns:     dnsserver.NewServer(),
		zones:   make(map[dnswire.Name]*dnsserver.Zone),
		clients: make(map[uint64]*dhcp.Client),
	}

	// Reverse zones for every /24 the network announces records in.
	zoneFor := func(p dnswire.Prefix) (*dnsserver.Zone, error) {
		origin, err := dnswire.ReverseZoneFor24(p)
		if err != nil {
			return nil, err
		}
		if z, ok := live.zones[origin]; ok {
			return z, nil
		}
		ns, err := n.cfg.Suffix.Prepend("ns1")
		if err != nil {
			return nil, err
		}
		mbox, err := n.cfg.Suffix.Prepend("hostmaster")
		if err != nil {
			return nil, err
		}
		z := dnsserver.NewZone(dnsserver.ZoneConfig{
			Origin:    origin,
			PrimaryNS: ns,
			Mbox:      mbox,
		})
		live.zones[origin] = z
		live.dns.AddZone(z)
		return z, nil
	}

	// Static records (including static-form dynamic blocks) go straight
	// into the zones.
	for ip, name := range n.staticRec {
		z, err := zoneFor(ip.Slash24())
		if err != nil {
			return err
		}
		if err := z.SetPTR(dnswire.ReverseName(ip), name); err != nil {
			return err
		}
	}

	// Dynamic blocks: a DHCP server + IPAM updater each.
	for bi, b := range n.cfg.Blocks {
		if b.Kind != BlockDynamic || b.Policy == ipam.PolicyStaticForm {
			continue
		}
		updater := ipam.NewUpdater(ipam.Config{
			Policy: b.Policy,
			Suffix: n.blockSuffix(b),
		})
		for _, p := range b.Prefix.Slash24s() {
			z, err := zoneFor(p)
			if err != nil {
				return err
			}
			if err := updater.AttachZone(z); err != nil {
				return err
			}
		}
		srv := dhcp.NewServer(clock, dhcp.ServerConfig{
			ServerIP:  b.Prefix.Nth(1),
			Pools:     []dnswire.Prefix{b.Prefix},
			LeaseTime: n.cfg.LeaseTime,
			Sink:      n.wrapSink(updater),
		})
		live.servers = append(live.servers, srv)
		for _, d := range n.sortedBlockDevices(bi) {
			srv.Prebind(d.MAC, n.deviceIP[d.ID])
			live.clients[d.ID] = dhcp.NewClient(clock, srv, dhcp.ClientConfig{
				CHAddr:      d.MAC,
				HostName:    d.HostName,
				SendRelease: d.SendRelease,
			})
		}
	}

	if n.cfg.DNSFailure != (dnsserver.FailureMode{}) {
		live.dns.SetFailureMode(n.cfg.DNSFailure)
	}
	if n.cfg.DNSTracer != nil {
		live.dns.SetTracer(n.cfg.DNSTracer)
	}

	// Authoritative DNS on the fabric.
	ep, err := live.dns.AttachFabric(fab, n.DNSAddr())
	if err != nil {
		return err
	}
	live.dnsEP = ep

	// ICMP: hosts answer pings when online, unless the edge blocks them.
	icmp.NewResponder(fab, n.cfg.Announced, func(ip dnswire.IPv4) bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.onlineIP[ip] {
			return true
		}
		_, static := n.staticRec[ip]
		return static
	}, n.cfg.BlockICMP)

	n.live = live

	// Drive devices: schedule today's remaining sessions now, then every
	// midnight schedule the next day.
	start := clock.Now().In(n.cfg.Location)
	n.scheduleDayLocked(midnight(start), start)
	untilMidnight := midnight(start).AddDate(0, 0, 1).Sub(start)
	live.timers = append(live.timers, clock.AfterFunc(untilMidnight, n.midnightTick))
	return nil
}

// midnightTick schedules each new day's sessions and re-arms itself.
func (n *Network) midnightTick() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live == nil {
		return
	}
	now := n.live.clock.Now().In(n.cfg.Location)
	day := midnight(now)
	n.scheduleDayLocked(day, now)
	next := day.AddDate(0, 0, 1).Sub(now)
	if next <= 0 {
		next = 24 * time.Hour
	}
	n.live.timers = append(n.live.timers, n.live.clock.AfterFunc(next, n.midnightTick))
}

// scheduleDayLocked schedules joins and leaves for every device for the day
// starting at local midnight `day`. Sessions already in progress at `from`
// are joined immediately; fully elapsed ones are skipped.
func (n *Network) scheduleDayLocked(day, from time.Time) {
	live := n.live
	for bi, b := range n.cfg.Blocks {
		if b.Kind != BlockDynamic || b.Policy == ipam.PolicyStaticForm {
			continue
		}
		for _, d := range n.blockDev[bi] {
			occ := n.occupancyFor(day, n.arch[d.ID])
			for _, s := range d.SessionsOn(day, occ) {
				startAt := day.Add(s.Start)
				endAt := day.Add(s.End)
				if endAt.Before(from) || endAt.Equal(from) {
					continue
				}
				dev := d
				if startAt.After(from) {
					delay := startAt.Sub(from)
					live.timers = append(live.timers, live.clock.AfterFunc(delay, func() {
						n.deviceJoin(dev)
					}))
				} else {
					// Session already underway: join on the next
					// clock step.
					live.timers = append(live.timers, live.clock.AfterFunc(0, func() {
						n.deviceJoin(dev)
					}))
				}
				live.timers = append(live.timers, live.clock.AfterFunc(endAt.Sub(from), func() {
					n.deviceLeave(dev)
				}))
			}
		}
	}
}

func (n *Network) deviceJoin(d *Device) {
	n.mu.Lock()
	live := n.live
	n.mu.Unlock()
	if live == nil {
		return
	}
	client := live.clients[d.ID]
	if client == nil {
		return
	}
	if _, bound := client.Bound(); bound {
		return
	}
	ip, err := client.Join()
	n.mu.Lock()
	defer n.mu.Unlock()
	if err != nil {
		live.joinFail++
		return
	}
	n.onlineIP[ip] = true
}

func (n *Network) deviceLeave(d *Device) {
	n.mu.Lock()
	live := n.live
	n.mu.Unlock()
	if live == nil {
		return
	}
	client := live.clients[d.ID]
	if client == nil {
		return
	}
	ip, bound := client.Bound()
	if !bound {
		return
	}
	client.Leave()
	n.mu.Lock()
	delete(n.onlineIP, ip)
	n.mu.Unlock()
}

// wrapSink passes DHCP lease events through to the IPAM updater.
func (n *Network) wrapSink(u *ipam.Updater) dhcp.EventSink {
	return dhcp.EventSinkFunc(func(ev dhcp.Event) {
		u.LeaseEvent(ev)
		if ev.Kind == dhcp.LeaseExpired {
			// A lease expiring server-side means the host has been
			// gone; ensure the online set agrees.
			n.mu.Lock()
			delete(n.onlineIP, ev.IP)
			n.mu.Unlock()
		}
	})
}

// Stop leaves live mode: timers are cancelled and the DNS endpoint closes.
func (n *Network) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live == nil {
		return
	}
	for _, t := range n.live.timers {
		t.Stop()
	}
	for _, tk := range n.live.tickers {
		tk.Stop()
	}
	if n.live.dnsEP != nil {
		n.live.dnsEP.Close()
	}
	n.live = nil
	n.onlineIP = make(map[dnswire.IPv4]bool)
}

// Zones returns the live reverse zones (live mode only), for test
// inspection.
func (n *Network) Zones() []*dnsserver.Zone {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live == nil {
		return nil
	}
	out := make([]*dnsserver.Zone, 0, len(n.live.zones))
	for _, z := range n.live.zones {
		out = append(out, z)
	}
	return out
}

// LiveRecordCount sums the names across live zones.
func (n *Network) LiveRecordCount() int {
	total := 0
	for _, z := range n.Zones() {
		total += z.Len()
	}
	return total
}

// JoinFailures reports how many device joins failed (pool exhaustion).
func (n *Network) JoinFailures() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.live == nil {
		return 0
	}
	return n.live.joinFail
}
