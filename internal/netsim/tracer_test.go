package netsim

import (
	"context"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// TestSetDNSTracerLiveAndConfigured covers both tracer plumbing paths: a
// tracer configured before Start is applied when the live DNS server
// comes up, and SetDNSTracer on a live network takes effect immediately.
func TestSetDNSTracerLiveAndConfigured(t *testing.T) {
	const seed = int64(21)
	n, err := NewNetwork(testNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev := &Device{
		ID: 1, Owner: "brian", Kind: KindIPhone, HostName: "Brian's iPhone",
		MAC: macForID(1),
		Schedule: &ScriptedScheduler{Weekly: map[time.Weekday][]Session{
			time.Monday: {{9 * time.Hour, 17 * time.Hour}},
		}},
	}
	if err := n.AddDevice(dev, 0, Student); err != nil {
		t.Fatal(err)
	}
	devIP, _ := n.DeviceIP(dev)

	tr := telemetry.NewTracer(seed, 256)
	n.SetDNSTracer(tr) // before Start: carried into the live server

	clock := simclock.NewSimulated(epoch.Add(9*time.Hour + 30*time.Minute))
	fab := fabric.New(clock, fabric.Config{Latency: 5 * time.Millisecond})
	fab.SetTracer(tr)
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	res, err := dnsclient.New(fab, dnsclient.Config{
		Bind:   fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000},
		Server: n.DNSAddr(),
		Seed:   seed,
		Tracer: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	lookup := func() {
		res.LookupPTR(context.Background(), devIP, func(dnsclient.Response) {})
		clock.Advance(5 * time.Second)
	}
	lookup()

	corr := telemetry.CorrID(seed, string(dnswire.ReverseName(devIP)), 1)
	counts := func() map[string]int {
		m := make(map[string]int)
		for _, sp := range tr.Snapshot() {
			if sp.Corr == corr {
				m[sp.Name]++
			}
		}
		return m
	}
	if got := counts(); got["server"] != 1 || got["attempt"] != 1 || got["hop"] != 2 {
		t.Fatalf("chain via configured tracer = %v, want attempt:1 hop:2 server:1", got)
	}

	// Detach on the live server: subsequent queries emit no server spans.
	n.SetDNSTracer(nil)
	lookup()
	if got := counts(); got["server"] != 1 {
		t.Fatalf("server spans after detach = %d, want still 1", got["server"])
	}

	// Re-attach live: tracing resumes. Each lookup is a fresh query whose
	// first attempt derives the same corr for the same name, so the
	// chain gains a second server span.
	n.SetDNSTracer(tr)
	lookup()
	if got := counts(); got["server"] != 2 {
		t.Fatalf("server spans after live re-attach = %d, want 2", got["server"])
	}
}
