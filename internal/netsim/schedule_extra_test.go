package netsim

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
)

func TestResidentCrossMidnightPresence(t *testing.T) {
	// Across many residents on a weekend night, some must still be
	// online shortly after midnight (night owls), and presence must be
	// attributed through the previous day's session.
	saturday := time.Date(2021, 11, 6, 0, 0, 0, 0, time.UTC)
	sundayNight := saturday.AddDate(0, 0, 1).Add(1 * time.Hour) // Sun 01:00
	online := 0
	for id := uint64(0); id < 300; id++ {
		d := &Device{
			ID:       id,
			Schedule: NewArchetypeScheduler(Resident, id, 5),
		}
		if d.PresentAt(sundayNight, 1) {
			online++
		}
	}
	if online == 0 {
		t.Fatal("no resident device online at 01:00; night tail missing")
	}
	if online > 250 {
		t.Fatalf("%d/300 residents online at 01:00; too many", online)
	}
}

func TestHomebodyDevicesOnlineAtMidday(t *testing.T) {
	// A stable fraction of resident devices stay connected at 13:00 on
	// a normal weekday (desktops, TVs) — the midday housing baseline.
	monday := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	midday := monday.Add(13 * time.Hour)
	online := 0
	for id := uint64(0); id < 300; id++ {
		d := &Device{ID: id, Schedule: NewArchetypeScheduler(Resident, id, 5)}
		if d.PresentAt(midday, 1) {
			online++
		}
	}
	if online < 60 || online > 200 {
		t.Fatalf("%d/300 residents online at 13:00, want a solid minority", online)
	}
}

func TestHomebodyTraitIsStable(t *testing.T) {
	// The same device must be a homebody (or not) on every day — it is
	// a device trait, not a daily coin flip.
	d := &Device{ID: 77, Schedule: NewArchetypeScheduler(Resident, 77, 5)}
	monday := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	midday := 13 * time.Hour
	first := d.PresentAt(monday.Add(midday), 1)
	flips := 0
	for w := 1; w <= 8; w++ {
		// Same weekday across weeks: show-up randomness varies, but a
		// non-homebody must never be present at 13:00 on a weekday.
		got := d.PresentAt(monday.AddDate(0, 0, 7*w).Add(midday), 1)
		if got != first {
			flips++
		}
	}
	if !first && flips > 0 {
		t.Fatalf("non-homebody device present at midday in %d weeks", flips)
	}
}

func TestBuildingForLookup(t *testing.T) {
	cfg := testNetworkConfig()
	cfg.Blocks[0].Building = "library"
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := n.BuildingFor(dnswire.MustIPv4("10.50.1.77"))
	if !ok || b != "library" {
		t.Fatalf("BuildingFor = %q, %v", b, ok)
	}
	if _, ok := n.BuildingFor(dnswire.MustIPv4("10.50.2.1")); ok {
		t.Fatal("building reported for unlabelled block")
	}
}

func TestRoamingBrianPlacement(t *testing.T) {
	u, err := BuildStudyUniverse(UniverseConfig{
		Seed: 42, FillerSlash24s: 400, LeakyNetworks: 12,
		NonLeakyDynamic: 2, PeoplePerDynamicBlock: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := u.NetworkByName("Academic-A")
	// The roaming phone exists in several blocks, with one MAC.
	var ips []dnswire.IPv4
	macs := map[string]bool{}
	buildings := map[string]bool{}
	for _, d := range n.Devices() {
		if d.HostName != "Brians-Galaxy-S10" {
			continue
		}
		ip, _ := n.DeviceIP(d)
		ips = append(ips, ip)
		macs[d.MAC.String()] = true
		if b, ok := n.BuildingFor(ip); ok {
			buildings[b] = true
		}
	}
	if len(ips) < 4 {
		t.Fatalf("roaming phone in %d blocks, want 4", len(ips))
	}
	if len(macs) != 1 {
		t.Fatalf("roaming phone has %d MACs, want 1 (one physical device)", len(macs))
	}
	if !buildings["library"] || !buildings["dorm-west"] {
		t.Fatalf("buildings = %v", buildings)
	}
}

func TestHomeMBPOnISPA(t *testing.T) {
	u, err := BuildStudyUniverse(UniverseConfig{
		Seed: 42, FillerSlash24s: 400, LeakyNetworks: 12,
		NonLeakyDynamic: 2, PeoplePerDynamicBlock: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	isp, _ := u.NetworkByName("ISP-A")
	found := false
	for _, d := range isp.Devices() {
		if d.HostName == "Brians-MBP" {
			found = true
			// Present in the evening, absent at noon.
			mon := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
			if !d.PresentAt(mon.Add(20*time.Hour), 1) {
				t.Fatal("home MBP offline at 20:00")
			}
			if d.PresentAt(mon.Add(12*time.Hour), 1) {
				t.Fatal("home MBP online at noon (should be on campus)")
			}
		}
	}
	if !found {
		t.Fatal("Brians-MBP not planted on ISP-A")
	}
	// And no OTHER random Brian devices shadow it on ISP-A.
	for _, d := range isp.Devices() {
		if d.Owner == "brian" && d.HostName != "Brians-MBP" {
			t.Fatalf("random brian device %q on ISP-A", d.HostName)
		}
	}
}

func TestCampusBlocksCarryBuildings(t *testing.T) {
	u, err := BuildStudyUniverse(UniverseConfig{
		Seed: 42, FillerSlash24s: 400, LeakyNetworks: 12,
		NonLeakyDynamic: 2, PeoplePerDynamicBlock: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Academic-A", "Academic-B", "Academic-C"} {
		n, _ := u.NetworkByName(name)
		labelled := 0
		for _, b := range n.Config().Blocks {
			if b.Kind == BlockDynamic && b.Policy == ipam.PolicyCarryOver && b.Building != "" {
				labelled++
			}
		}
		if labelled == 0 {
			t.Errorf("%s: no buildings in the numbering plan", name)
		}
	}
}
