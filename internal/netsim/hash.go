// Package netsim models the populations of networks the paper measures:
// people and their devices, the networks they join (academic, ISP,
// enterprise, government), the schedules that govern when devices are
// present (workdays, campus life, holidays, COVID-19 lockdowns), and the
// operator-side infrastructure (DHCP + IPAM + authoritative rDNS) that
// turns presence into globally visible PTR records.
//
// This package substitutes for the real Internet population the paper
// observed through OpenINTEL, Rapid7 and its own supplemental measurement.
// Everything is deterministic under a seed: presence decisions derive from
// hashes of (seed, device, date), never from a shared mutable RNG, so any
// moment of any simulated day can be evaluated independently — the property
// that lets two years of daily snapshots coexist with packet-level
// event-driven measurement windows.
package netsim

import (
	"time"
)

// FNV-1a constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hash64 hashes a sequence of values into a uint64 with FNV-1a. It is
// allocation-free: presence evaluation calls it hundreds of millions of
// times across a longitudinal campaign.
func hash64(parts ...uint64) uint64 {
	h := uint64(fnvOffset)
	for _, p := range parts {
		for shift := 56; shift >= 0; shift -= 8 {
			h ^= p >> shift & 0xFF
			h *= fnvPrime
		}
	}
	return h
}

// hashString folds a string into a uint64 for use as a hash part.
func hashString(s string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// unitFloat maps a hash to [0, 1).
func unitFloat(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// dayNumber numbers days since the simulation epoch so that hash inputs
// are stable integers. Times are interpreted in the study's local timezone
// (see Universe.Location).
func dayNumber(t time.Time) uint64 {
	return uint64(t.Unix()/86400) + 1<<20
}

// chance draws a deterministic Bernoulli decision from hash parts.
func chance(p float64, parts ...uint64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return unitFloat(hash64(parts...)) < p
}

// spread maps a hash to a duration in [0, span).
func spread(span time.Duration, parts ...uint64) time.Duration {
	if span <= 0 {
		return 0
	}
	return time.Duration(unitFloat(hash64(parts...)) * float64(span))
}
