package netsim

import (
	"context"
	"math/rand"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/icmp"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/simclock"
)

// Monday 2021-11-01.
var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func TestArchetypeSchedulerDeterminism(t *testing.T) {
	s := NewArchetypeScheduler(Staff, 42, 7)
	a := s.SessionsOn(epoch, 1)
	b := s.SessionsOn(epoch, 1)
	if len(a) != len(b) {
		t.Fatal("same inputs, different session counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("session %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStaffWeekdayPattern(t *testing.T) {
	// Over many staff devices, a weekday must have far more presence at
	// 11:00 than at 3:00.
	midday, night := 0, 0
	for id := uint64(0); id < 200; id++ {
		s := NewArchetypeScheduler(Staff, id, 1)
		for _, sess := range s.SessionsOn(epoch, 1) {
			if sess.Start <= 11*time.Hour && sess.End > 11*time.Hour {
				midday++
			}
			if sess.Start <= 3*time.Hour && sess.End > 3*time.Hour {
				night++
			}
		}
	}
	if midday < 100 {
		t.Fatalf("only %d/200 staff present at 11:00 on a weekday", midday)
	}
	if night > 5 {
		t.Fatalf("%d/200 staff present at 03:00", night)
	}
}

func TestStaffWeekendMostlyAbsent(t *testing.T) {
	saturday := epoch.AddDate(0, 0, 5)
	present := 0
	for id := uint64(0); id < 200; id++ {
		s := NewArchetypeScheduler(Staff, id, 1)
		if len(s.SessionsOn(saturday, 1)) > 0 {
			present++
		}
	}
	if present > 30 {
		t.Fatalf("%d/200 staff present on Saturday", present)
	}
}

func TestOccupancyScalesPresence(t *testing.T) {
	full, locked := 0, 0
	for id := uint64(0); id < 300; id++ {
		s := NewArchetypeScheduler(Employee, id, 3)
		if len(s.SessionsOn(epoch, 1)) > 0 {
			full++
		}
		if len(s.SessionsOn(epoch, 0.2)) > 0 {
			locked++
		}
	}
	if locked >= full/2 {
		t.Fatalf("lockdown occupancy did not bite: %d vs %d", locked, full)
	}
}

func TestInfraIgnoresOccupancy(t *testing.T) {
	s := NewArchetypeScheduler(Infra, 1, 1)
	sessions := s.SessionsOn(epoch, 0)
	if len(sessions) != 1 || sessions[0].Start != 0 || sessions[0].End != 24*time.Hour {
		t.Fatalf("infra sessions = %v", sessions)
	}
}

func TestScriptedScheduler(t *testing.T) {
	activate := epoch.AddDate(0, 0, 7)
	s := &ScriptedScheduler{
		Weekly: map[time.Weekday][]Session{
			time.Monday: {{9 * time.Hour, 17 * time.Hour}},
		},
		Activate:    activate,
		AbsentDates: map[time.Time]bool{activate.AddDate(0, 0, 7): true},
	}
	if got := s.SessionsOn(epoch, 1); got != nil {
		t.Fatalf("sessions before activation: %v", got)
	}
	if got := s.SessionsOn(activate, 1); len(got) != 1 {
		t.Fatalf("sessions on activation Monday = %v", got)
	}
	if got := s.SessionsOn(activate.AddDate(0, 0, 1), 1); got != nil {
		t.Fatalf("sessions on Tuesday = %v (no script)", got)
	}
	if got := s.SessionsOn(activate.AddDate(0, 0, 7), 1); got != nil {
		t.Fatalf("sessions on absent date = %v", got)
	}
}

func TestTimelinePhases(t *testing.T) {
	loc := time.UTC
	tl := USCampusCOVIDTimeline(loc)
	before := tl.At(date(loc, 2020, time.February, 1))
	if before.Factor(Staff) != 1 {
		t.Fatalf("pre-COVID staff factor = %v", before.Factor(Staff))
	}
	locked := tl.At(date(loc, 2020, time.April, 1))
	if locked.Factor(Staff) >= 0.5 {
		t.Fatalf("lockdown staff factor = %v", locked.Factor(Staff))
	}
	if locked.Factor(Resident) <= 1 {
		t.Fatalf("lockdown resident factor = %v, want > 1", locked.Factor(Resident))
	}
	if tl.PhaseLabel(date(loc, 2020, time.April, 1)) != "campus-closure" {
		t.Fatalf("label = %q", tl.PhaseLabel(date(loc, 2020, time.April, 1)))
	}
}

func TestCalendarThanksgiving(t *testing.T) {
	loc := time.UTC
	c := USAcademicCalendar(loc)
	// Thanksgiving 2021 fell on November 25.
	th := date(loc, 2021, time.November, 25)
	if f := c.FactorOn(th, Student); f >= 0.5 {
		t.Fatalf("Thanksgiving student factor = %v", f)
	}
	if f := c.FactorOn(th.AddDate(0, 0, 3), Student); f >= 0.5 {
		t.Fatalf("Thanksgiving Sunday student factor = %v", f)
	}
	// Cyber Monday (Nov 29) is back to normal.
	if f := c.FactorOn(date(loc, 2021, time.November, 29), Student); f != 1 {
		t.Fatalf("Cyber Monday factor = %v", f)
	}
}

func TestHostNameShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := HostNameFor(KindIPhone, "brian", rng); got != "Brian's iPhone" {
		t.Fatalf("iPhone name = %q", got)
	}
	mbp := HostNameFor(KindMacBookPro, "brian", rng)
	if !strings.HasPrefix(mbp, "Brians-M") {
		t.Fatalf("MBP name = %q", mbp)
	}
	anon := HostNameFor(KindWindowsDesktop, "", rng)
	if !strings.HasPrefix(anon, "DESKTOP-") {
		t.Fatalf("desktop name = %q", anon)
	}
}

func testNetworkConfig() Config {
	return Config{
		Name:      "Academic-T",
		Type:      Academic,
		Suffix:    dnswire.MustName("campus-t.example.edu"),
		Announced: dnswire.MustPrefix("10.50.0.0/16"),
		Blocks: []Block{
			{Kind: BlockDynamic, Prefix: dnswire.MustPrefix("10.50.1.0/24"), Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
			{Kind: BlockStaticInfra, Prefix: dnswire.MustPrefix("10.50.0.0/24"), SubLabel: "net"},
			{Kind: BlockServers, Prefix: dnswire.MustPrefix("10.50.2.0/24"), SubLabel: "srv"},
			{Kind: BlockDynamic, Prefix: dnswire.MustPrefix("10.50.3.0/24"), Policy: ipam.PolicyStaticForm, SubLabel: "res"},
		},
		LeaseTime: time.Hour,
		Seed:      11,
	}
}

func TestNetworkPopulateAndRecords(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Populate(PopulateSpec{
		Block: 0, People: 20, Archetype: Staff,
		NamedFraction: 1.0, DevicesPerPerson: 2, ReleaseFraction: 0.5,
	}); err != nil {
		t.Fatal(err)
	}
	if len(n.Devices()) < 20 {
		t.Fatalf("devices = %d", len(n.Devices()))
	}

	// At 11:00 on a weekday, many staff devices should be visible, all
	// under the dyn sublabel, all carrying their owner's name.
	at := epoch.Add(11 * time.Hour)
	var dynRecords []Record
	n.RecordsAt(at, func(r Record) {
		if strings.HasSuffix(string(r.HostName), ".dyn.campus-t.example.edu.") {
			dynRecords = append(dynRecords, r)
		}
	})
	if len(dynRecords) < 10 {
		t.Fatalf("only %d dynamic records at 11:00", len(dynRecords))
	}
	for _, r := range dynRecords {
		if !dnswire.MustPrefix("10.50.1.0/24").Contains(r.IP) {
			t.Fatalf("dynamic record outside its block: %v", r.IP)
		}
	}

	// At 03:00 almost no staff devices remain.
	var nightRecords int
	n.RecordsAt(epoch.Add(3*time.Hour), func(r Record) {
		if strings.HasSuffix(string(r.HostName), ".dyn.campus-t.example.edu.") {
			nightRecords++
		}
	})
	if nightRecords >= len(dynRecords)/2 {
		t.Fatalf("night records %d vs midday %d", nightRecords, len(dynRecords))
	}
}

func TestStaticRecordsConstant(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	count := func(at time.Time) int {
		c := 0
		n.RecordsAt(at, func(r Record) {
			if !strings.Contains(string(r.HostName), ".dyn.") {
				c++
			}
		})
		return c
	}
	a := count(epoch.Add(4 * time.Hour))
	b := count(epoch.Add(14 * time.Hour))
	if a != b || a == 0 {
		t.Fatalf("static records vary: %d vs %d", a, b)
	}
	// The static-form block contributes its full pool.
	if n.StaticRecordCount() < 254 {
		t.Fatalf("StaticRecordCount = %d, want >= 254 (res block)", n.StaticRecordCount())
	}
}

func TestInfraRecordsHaveGenericOrCityTerms(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	n.RecordsAt(epoch, func(r Record) {
		if strings.HasSuffix(string(r.HostName), ".net.campus-t.example.edu.") {
			seen++
		}
	})
	if seen == 0 {
		t.Fatal("no infrastructure records generated")
	}
}

func TestRecordLingeringAfterSilentLeave(t *testing.T) {
	cfg := testNetworkConfig()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One scripted device: present 09:00-10:00, silent leaver.
	dev := &Device{
		ID: 1, Owner: "brian", Kind: KindIPhone, HostName: "Brian's iPhone",
		MAC: macForID(1), SendRelease: false,
		Schedule: &ScriptedScheduler{Weekly: map[time.Weekday][]Session{
			time.Monday: {{9 * time.Hour, 10 * time.Hour}},
		}},
	}
	if err := n.AddDevice(dev, 0, Student); err != nil {
		t.Fatal(err)
	}
	visible := func(at time.Time) bool {
		found := false
		n.RecordsAt(at, func(r Record) {
			if strings.HasPrefix(string(r.HostName), "brians-iphone.") {
				found = true
			}
		})
		return found
	}
	if visible(epoch.Add(8 * time.Hour)) {
		t.Fatal("record before session")
	}
	if !visible(epoch.Add(9*time.Hour + 30*time.Minute)) {
		t.Fatal("record missing during session")
	}
	// Silent leave at 10:00 with a 1h lease: lingering until 11:00.
	if !visible(epoch.Add(10*time.Hour + 30*time.Minute)) {
		t.Fatal("record did not linger after silent leave")
	}
	if visible(epoch.Add(11*time.Hour + 5*time.Minute)) {
		t.Fatal("record still present after lease expiry window")
	}

	// A releasing device disappears immediately.
	dev.SendRelease = true
	if visible(epoch.Add(10*time.Hour + 30*time.Minute)) {
		t.Fatal("record lingered for a releasing client")
	}
}

func TestLiveModeEndToEnd(t *testing.T) {
	cfg := testNetworkConfig()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := &Device{
		ID: 1, Owner: "brian", Kind: KindIPhone, HostName: "Brian's iPhone",
		MAC: macForID(1), SendRelease: false,
		Schedule: &ScriptedScheduler{Weekly: map[time.Weekday][]Session{
			time.Monday: {{9 * time.Hour, 10 * time.Hour}},
		}},
	}
	if err := n.AddDevice(dev, 0, Student); err != nil {
		t.Fatal(err)
	}
	devIP, _ := n.DeviceIP(dev)

	clock := simclock.NewSimulated(epoch.Add(8 * time.Hour))
	fab := fabric.New(clock, fabric.Config{Latency: 10 * time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	res, err := dnsclient.New(fab, dnsclient.Config{
		Bind:   fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000},
		Server: n.DNSAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	prober, err := icmp.NewProber(fab, icmp.ProberConfig{
		Vantage: dnswire.MustIPv4("198.51.100.2"),
	})
	if err != nil {
		t.Fatal(err)
	}

	lookup := func() dnsclient.Response {
		var got dnsclient.Response
		res.LookupPTR(context.Background(), devIP, func(r dnsclient.Response) { got = r })
		clock.Advance(5 * time.Second)
		return got
	}
	ping := func() bool {
		alive := false
		prober.Probe(devIP, func(r icmp.ProbeResult) { alive = r.Alive })
		clock.Advance(5 * time.Second)
		return alive
	}

	// 08:00: before the session.
	if r := lookup(); r.Outcome != dnsclient.OutcomeNXDomain {
		t.Fatalf("08:00 outcome = %v, want NXDOMAIN", r.Outcome)
	}
	if ping() {
		t.Fatal("08:00: device answered ping before joining")
	}

	// Advance into the session (09:05).
	clock.AdvanceTo(epoch.Add(9*time.Hour + 5*time.Minute))
	if !ping() {
		t.Fatal("09:05: device not pingable")
	}
	r := lookup()
	if r.Outcome != dnsclient.OutcomeSuccess {
		t.Fatalf("09:05 outcome = %v, want NOERROR", r.Outcome)
	}
	if r.PTR != dnswire.MustName("brians-iphone.dyn.campus-t.example.edu") {
		t.Fatalf("09:05 PTR = %q", r.PTR)
	}

	// 10:10: silent leave happened at 10:00; no ping, record lingers.
	clock.AdvanceTo(epoch.Add(10*time.Hour + 10*time.Minute))
	if ping() {
		t.Fatal("10:10: device still pingable after leave")
	}
	if r := lookup(); r.Outcome != dnsclient.OutcomeSuccess {
		t.Fatalf("10:10 outcome = %v, want lingering NOERROR", r.Outcome)
	}

	// 11:40: lease has expired (renewed at 09:35, expiry 10:35 at the
	// latest); the record must be gone.
	clock.AdvanceTo(epoch.Add(11*time.Hour + 40*time.Minute))
	if r := lookup(); r.Outcome != dnsclient.OutcomeNXDomain {
		t.Fatalf("11:40 outcome = %v, want NXDOMAIN after expiry", r.Outcome)
	}
}

func TestLiveModeBlockedICMP(t *testing.T) {
	cfg := testNetworkConfig()
	cfg.BlockICMP = true
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := &Device{
		ID: 1, Owner: "emma", Kind: KindIPad, HostName: "Emma's iPad",
		MAC: macForID(1),
		Schedule: &ScriptedScheduler{Weekly: map[time.Weekday][]Session{
			time.Monday: {{9 * time.Hour, 17 * time.Hour}},
		}},
	}
	n.AddDevice(dev, 0, Student)
	devIP, _ := n.DeviceIP(dev)

	clock := simclock.NewSimulated(epoch.Add(10 * time.Hour))
	fab := fabric.New(clock, fabric.Config{Latency: time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	clock.Advance(time.Minute)

	prober, err := icmp.NewProber(fab, icmp.ProberConfig{
		Vantage: dnswire.MustIPv4("198.51.100.2"), Timeout: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	alive := false
	done := false
	prober.Probe(devIP, func(r icmp.ProbeResult) { alive = r.Alive; done = true })
	clock.Advance(10 * time.Second)
	if !done {
		t.Fatal("probe never completed")
	}
	if alive {
		t.Fatal("ICMP-blocking network answered a ping")
	}

	// But the PTR record is still there for anyone to query — the
	// paper's key point about ICMP blocking being insufficient.
	res, err := dnsclient.New(fab, dnsclient.Config{
		Bind:   fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000},
		Server: n.DNSAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var got dnsclient.Response
	res.LookupPTR(context.Background(), devIP, func(r dnsclient.Response) { got = r })
	clock.Advance(5 * time.Second)
	if got.Outcome != dnsclient.OutcomeSuccess {
		t.Fatalf("PTR outcome = %v; rDNS must remain visible when ICMP is blocked", got.Outcome)
	}
}

func TestLiveSnapshotAgreementWhileOnline(t *testing.T) {
	// While devices are online (no lingering in play), live zone content
	// and snapshot evaluation must agree exactly.
	cfg := testNetworkConfig()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Populate(PopulateSpec{
		Block: 0, People: 15, Archetype: Infra, // always online: no timing edges
		NamedFraction: 1, DevicesPerPerson: 1, ReleaseFraction: 1,
	}); err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSimulated(epoch.Add(8 * time.Hour))
	fab := fabric.New(clock, fabric.Config{})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	clock.Advance(time.Hour)

	snapshot := make(map[dnswire.IPv4]dnswire.Name)
	n.RecordsAt(clock.Now(), func(r Record) { snapshot[r.IP] = r.HostName })

	live := make(map[dnswire.IPv4]dnswire.Name)
	for _, z := range n.Zones() {
		for _, name := range z.Names() {
			ip, err := dnswire.ParseReverseName(name)
			if err != nil {
				t.Fatal(err)
			}
			target, ok := z.LookupPTR(name)
			if !ok {
				t.Fatalf("no PTR at %v", name)
			}
			live[ip] = target
		}
	}
	if len(snapshot) != len(live) {
		t.Fatalf("snapshot %d records, live %d", len(snapshot), len(live))
	}
	for ip, name := range snapshot {
		if live[ip] != name {
			t.Fatalf("disagreement at %v: snapshot %q, live %q", ip, name, live[ip])
		}
	}
}

func TestNetworkRejectsBlockOutsideAnnounced(t *testing.T) {
	cfg := testNetworkConfig()
	cfg.Blocks = append(cfg.Blocks, Block{
		Kind: BlockDynamic, Prefix: dnswire.MustPrefix("10.99.0.0/24"),
	})
	if _, err := NewNetwork(cfg); err == nil {
		t.Fatal("block outside announced prefix accepted")
	}
}

func TestNetworkTypeStrings(t *testing.T) {
	for ty, want := range map[NetworkType]string{
		Academic: "academic", ISP: "isp", Enterprise: "enterprise",
		Government: "government", Other: "other",
	} {
		if ty.String() != want {
			t.Fatalf("%d.String() = %q", int(ty), ty.String())
		}
	}
}
