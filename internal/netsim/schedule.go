package netsim

import (
	"sort"
	"time"
)

// Archetype classifies the presence behaviour of a device's owner.
type Archetype int

// Archetypes.
const (
	// Staff works on-site on weekdays, roughly 8-18h.
	Staff Archetype = iota
	// Student attends on weekdays in shorter, patchier sessions.
	Student
	// Resident lives on site (campus housing): mornings, evenings,
	// weekends, and all day when studying from their room.
	Resident
	// Employee is Staff in an enterprise network.
	Employee
	// HomeUser is an ISP subscriber: evenings and weekends dominate.
	HomeUser
	// Infra devices are always on (printers, servers, APs).
	Infra
)

// String returns a mnemonic.
func (a Archetype) String() string {
	switch a {
	case Staff:
		return "staff"
	case Student:
		return "student"
	case Resident:
		return "resident"
	case Employee:
		return "employee"
	case HomeUser:
		return "home-user"
	case Infra:
		return "infra"
	default:
		return "unknown"
	}
}

// Session is one contiguous presence interval within a day, as offsets from
// local midnight. End may exceed 24h for sessions running past midnight;
// such overflow is truncated at the day boundary by callers that need
// day-contained intervals.
type Session struct {
	Start time.Duration
	End   time.Duration
}

// Scheduler produces the presence sessions of a device for a given date.
// Implementations must be deterministic: the same date yields the same
// sessions.
type Scheduler interface {
	// SessionsOn returns the device's presence intervals for the day
	// containing date (which is local midnight of that day). occupancy
	// in [0,1] scales the probability that the device shows up at all,
	// and comes from the network's COVID timeline and calendar.
	SessionsOn(date time.Time, occupancy float64) []Session
}

// archetypeScheduler derives presence from an archetype plus per-device
// jitter.
type archetypeScheduler struct {
	arch Archetype
	id   uint64 // device identity hash
	seed uint64
}

// NewArchetypeScheduler builds the standard scheduler for an archetype.
// id must be unique per device; seed is the universe seed.
func NewArchetypeScheduler(arch Archetype, id, seed uint64) Scheduler {
	return &archetypeScheduler{arch: arch, id: id, seed: seed}
}

const (
	saltShowUp = iota + 1
	saltArrive
	saltDepart
	saltLunch
	saltEvening
	saltSession2
	saltWake
	saltNight
	saltWeekend
	saltHomebody
)

func (s *archetypeScheduler) SessionsOn(date time.Time, occupancy float64) []Session {
	day := dayNumber(date)
	weekend := isWeekend(date)

	// Probability the device appears at all today.
	base := s.showUpProbability(weekend)
	p := base * occupancy
	if s.arch == Infra {
		p = 1 // infrastructure ignores occupancy
	}
	if !chance(p, s.seed, s.id, day, saltShowUp) {
		return nil
	}

	switch s.arch {
	case Infra:
		return []Session{{0, 24 * time.Hour}}
	case Staff, Employee:
		return s.workday(day, weekend)
	case Student:
		return s.studentDay(day, weekend)
	case Resident:
		return s.residentDay(day, weekend, occupancy)
	case HomeUser:
		return s.homeDay(day, weekend)
	}
	return nil
}

func (s *archetypeScheduler) showUpProbability(weekend bool) float64 {
	switch s.arch {
	case Staff, Employee:
		if weekend {
			return 0.06
		}
		return 0.92
	case Student:
		if weekend {
			return 0.12
		}
		return 0.85
	case Resident:
		if weekend {
			return 0.75
		}
		return 0.92
	case HomeUser:
		if weekend {
			return 0.9
		}
		return 0.82
	case Infra:
		return 1
	}
	return 0
}

// workday: arrive 7:30-9:30, depart 16:00-19:00, occasionally a lunch gap.
func (s *archetypeScheduler) workday(day uint64, weekend bool) []Session {
	arrive := 7*time.Hour + 30*time.Minute + spread(2*time.Hour, s.seed, s.id, day, saltArrive)
	depart := 16*time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltDepart)
	if weekend {
		// A short weekend visit.
		arrive = 10*time.Hour + spread(4*time.Hour, s.seed, s.id, day, saltArrive)
		depart = arrive + time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltDepart)
		return clipDay([]Session{{arrive, depart}})
	}
	if chance(0.3, s.seed, s.id, day, saltLunch) {
		lunchAt := 12*time.Hour + spread(time.Hour, s.seed, s.id, day, saltLunch+100)
		return clipDay([]Session{
			{arrive, lunchAt},
			{lunchAt + 30*time.Minute, depart},
		})
	}
	return clipDay([]Session{{arrive, depart}})
}

// studentDay: one or two lecture-block sessions between 8 and 18.
func (s *archetypeScheduler) studentDay(day uint64, weekend bool) []Session {
	if weekend {
		start := 11*time.Hour + spread(6*time.Hour, s.seed, s.id, day, saltArrive)
		return clipDay([]Session{{start, start + 30*time.Minute + spread(2*time.Hour, s.seed, s.id, day, saltDepart)}})
	}
	first := 8*time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltArrive)
	length := time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltDepart)
	sessions := []Session{{first, first + length}}
	if chance(0.55, s.seed, s.id, day, saltSession2) {
		second := first + length + 30*time.Minute + spread(2*time.Hour, s.seed, s.id, day, saltSession2+100)
		sessions = append(sessions, Session{second, second + time.Hour + spread(2*time.Hour, s.seed, s.id, day, saltSession2+200)})
	}
	return clipDay(sessions)
}

// residentDay: morning before leaving, evening after return; during heavy
// occupancy restrictions (lockdown studying-from-room), most of the day.
// A stable per-device fraction are "homebody" devices — desktops, consoles,
// smart TVs — that stay connected all day whenever their owner is around,
// which is what keeps campus-housing subnets populated at midday even
// outside lockdowns.
func (s *archetypeScheduler) residentDay(day uint64, weekend bool, occupancy float64) []Session {
	wake := 6*time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltWake)
	// Students keep long and varied hours: the long tail past midnight
	// is what makes ~6 AM the campus's quietest moment (Figure 11).
	night := 21*time.Hour + spread(8*time.Hour, s.seed, s.id, day, saltNight)
	homebody := chance(0.45, s.seed, s.id, saltHomebody)
	if weekend || homebody || occupancy > 1.05 {
		// Home most of the day (weekends, homebody devices, or
		// lockdown regimes where the timeline pushes housing
		// occupancy above its normal level).
		return clipDay([]Session{{wake, night}})
	}
	leave := 8*time.Hour + 30*time.Minute + spread(90*time.Minute, s.seed, s.id, day, saltArrive)
	back := 16*time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltDepart)
	if leave <= wake {
		leave = wake + 15*time.Minute
	}
	return clipDay([]Session{{wake, leave}, {back, night}})
}

// homeDay: an evening block, plus a daytime block on weekends or for the
// fraction who are home during the day.
func (s *archetypeScheduler) homeDay(day uint64, weekend bool) []Session {
	evening := 17*time.Hour + spread(3*time.Hour, s.seed, s.id, day, saltEvening)
	night := 21*time.Hour + spread(6*time.Hour, s.seed, s.id, day, saltNight)
	sessions := []Session{{evening, night}}
	daytime := weekend || chance(0.25, s.seed, s.id, day, saltWeekend)
	if daytime {
		start := 9*time.Hour + spread(2*time.Hour, s.seed, s.id, day, saltWake)
		sessions = append(sessions, Session{start, start + 3*time.Hour + spread(5*time.Hour, s.seed, s.id, day, saltWeekend+100)})
	}
	return clipDay(mergeSessions(sessions))
}

// maxSessionEnd bounds how far past midnight a session may run. Sessions
// belong to the day they start on; presence evaluation checks the previous
// day's sessions for spill-over.
const maxSessionEnd = 28 * time.Hour

// clipDay clamps sessions to [0, maxSessionEnd) and drops empty ones.
// Sessions may cross midnight (End > 24h): late-night device use is real
// and shapes the diurnal activity minimum.
func clipDay(in []Session) []Session {
	out := in[:0]
	for _, s := range in {
		if s.Start < 0 {
			s.Start = 0
		}
		if s.Start >= 24*time.Hour {
			continue
		}
		if s.End > maxSessionEnd {
			s.End = maxSessionEnd
		}
		if s.End > s.Start {
			out = append(out, s)
		}
	}
	return out
}

// mergeSessions sorts and merges overlapping sessions.
func mergeSessions(in []Session) []Session {
	if len(in) <= 1 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i].Start < in[j].Start })
	out := in[:1]
	for _, s := range in[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
			continue
		}
		out = append(out, s)
	}
	return out
}

// isWeekend reports whether date falls on Saturday or Sunday.
func isWeekend(date time.Time) bool {
	wd := date.Weekday()
	return wd == time.Saturday || wd == time.Sunday
}

// ScriptedScheduler plays back an explicit script: a map from weekday to
// sessions, active only between Activate and Deactivate (zero values mean
// unbounded). The case studies use it to plant specific devices — for
// example a brians-galaxy-note9 that first appears on Cyber Monday
// afternoon (Section 7.1).
type ScriptedScheduler struct {
	// Weekly holds the base sessions per weekday.
	Weekly map[time.Weekday][]Session
	// Overrides replaces the sessions entirely for specific dates
	// (keyed by local midnight).
	Overrides map[time.Time][]Session
	// Activate is the first day the device exists; zero means always.
	Activate time.Time
	// Deactivate is the first day the device is gone; zero means never.
	Deactivate time.Time
	// AbsentDates lists days the device is away (holiday trips).
	AbsentDates map[time.Time]bool
}

// SessionsOn implements Scheduler. Scripted devices ignore occupancy: their
// script is their truth.
func (s *ScriptedScheduler) SessionsOn(date time.Time, _ float64) []Session {
	if !s.Activate.IsZero() && date.Before(s.Activate) {
		return nil
	}
	if !s.Deactivate.IsZero() && !date.Before(s.Deactivate) {
		return nil
	}
	if s.AbsentDates[date] {
		return nil
	}
	if sessions, ok := s.Overrides[date]; ok {
		return sessions
	}
	return s.Weekly[date.Weekday()]
}
