package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// NetworkType classifies networks the way Section 5.2 does.
type NetworkType int

// Network types (Figure 4).
const (
	Academic NetworkType = iota
	ISP
	Enterprise
	Government
	Other
)

// String returns the label used in Figure 4.
func (t NetworkType) String() string {
	switch t {
	case Academic:
		return "academic"
	case ISP:
		return "isp"
	case Enterprise:
		return "enterprise"
	case Government:
		return "government"
	case Other:
		return "other"
	default:
		return "unknown"
	}
}

// BlockKind classifies address blocks within a network's numbering plan.
type BlockKind int

// Block kinds.
const (
	// BlockDynamic serves DHCP clients; its rDNS policy decides whether
	// it leaks.
	BlockDynamic BlockKind = iota
	// BlockStaticInfra holds router/switch infrastructure records.
	BlockStaticInfra
	// BlockStaticPool holds fixed-form subscriber records (ISP style).
	BlockStaticPool
	// BlockServers holds a handful of service hosts.
	BlockServers
	// BlockEmpty has no records at all.
	BlockEmpty
)

// Block is one entry of a network's numbering plan.
type Block struct {
	// Kind selects the block behaviour.
	Kind BlockKind
	// Prefix is the address space of the block.
	Prefix dnswire.Prefix
	// Policy is the IPAM policy for BlockDynamic blocks.
	Policy ipam.Policy
	// SubLabel names the block inside the hostname suffix, e.g.
	// "housing" or "dyn". Records publish under SubLabel.<suffix>.
	SubLabel string
	// Density is the fraction of addresses with records for static
	// blocks (0 defaults to 0.35 for infra, 0.9 for pools).
	Density float64
	// Building optionally names the physical building the block serves.
	// The paper's discussion (Section 8) notes that subnet-to-building
	// knowledge turns presence tracking into geotemporal tracking; this
	// field is the simulation's ground truth for that knowledge.
	Building string
}

// Config describes a network.
type Config struct {
	// Name identifies the network in reports, e.g. "Academic-A".
	Name string
	// Type classifies it.
	Type NetworkType
	// Suffix is the base hostname suffix (TLD+1 and below), e.g.
	// campus-a.example.edu.
	Suffix dnswire.Name
	// Announced is the covering announced prefix.
	Announced dnswire.Prefix
	// Blocks is the numbering plan. Block prefixes must fall inside
	// Announced.
	Blocks []Block
	// LeaseTime is the DHCP lease duration (default 1h).
	LeaseTime time.Duration
	// BlockICMP drops inbound pings at the network edge.
	BlockICMP bool
	// Timeline provides COVID-phase occupancy; nil means always normal.
	Timeline *Timeline
	// Calendar provides holiday occupancy; nil means none.
	Calendar *Calendar
	// Location is the local timezone (default UTC).
	Location *time.Location
	// Seed drives all randomness for this network.
	Seed uint64
	// DNSFailure injects name-server failures in live mode, modelling
	// the errors the paper observes during supplemental measurement
	// (Figure 6).
	DNSFailure dnsserver.FailureMode
	// DNSTracer, when set, makes the live-mode authoritative server emit
	// one "server" span per correlated query, joining the network's side
	// of each probe to the scanner's causal chain (telemetry.CorrID).
	DNSTracer *telemetry.Tracer
}

// Network is a simulated network: a population of devices plus the operator
// infrastructure that exposes (or hides) them in reverse DNS. Create one
// with NewNetwork, add devices with Populate or AddDevice, then either
// evaluate snapshots with RecordsAt / OnlineAt, or run it live on a fabric
// with Start.
type Network struct {
	cfg Config

	devices   []*Device
	arch      map[uint64]Archetype
	deviceIP  map[uint64]dnswire.IPv4
	ipDevice  map[dnswire.IPv4]*Device
	blockDev  map[int][]*Device // block index -> devices
	devBlock  map[uint64]int
	rng       *rand.Rand
	staticRec map[dnswire.IPv4]dnswire.Name // cached static records

	// Live state (event-driven mode).
	mu       sync.Mutex
	live     *liveState
	onlineIP map[dnswire.IPv4]bool
}

type liveState struct {
	clock    simclock.Clock
	fab      *fabric.Fabric
	dns      *dnsserver.Server
	dnsEP    *fabric.Endpoint
	zones    map[dnswire.Name]*dnsserver.Zone
	servers  []*dhcp.Server
	clients  map[uint64]*dhcp.Client
	tickers  []*simclock.Ticker
	timers   []simclock.Timer
	joinFail uint64
}

// NewNetwork builds a network from a config.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.LeaseTime <= 0 {
		cfg.LeaseTime = time.Hour
	}
	if cfg.Location == nil {
		cfg.Location = time.UTC
	}
	for i, b := range cfg.Blocks {
		if !cfg.Announced.Contains(b.Prefix.Addr) {
			return nil, fmt.Errorf("netsim: block %d (%s) outside announced %s", i, b.Prefix, cfg.Announced)
		}
	}
	n := &Network{
		cfg:       cfg,
		arch:      make(map[uint64]Archetype),
		deviceIP:  make(map[uint64]dnswire.IPv4),
		ipDevice:  make(map[dnswire.IPv4]*Device),
		blockDev:  make(map[int][]*Device),
		devBlock:  make(map[uint64]int),
		rng:       rand.New(rand.NewSource(int64(cfg.Seed))),
		staticRec: make(map[dnswire.IPv4]dnswire.Name),
		onlineIP:  make(map[dnswire.IPv4]bool),
	}
	if err := n.buildStaticRecords(); err != nil {
		return nil, err
	}
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() Config { return n.cfg }

// Name returns the network's report name.
func (n *Network) Name() string { return n.cfg.Name }

// Devices returns the network's devices.
func (n *Network) Devices() []*Device { return n.devices }

// DeviceIP returns the planned address of a device.
func (n *Network) DeviceIP(d *Device) (dnswire.IPv4, bool) {
	ip, ok := n.deviceIP[d.ID]
	return ip, ok
}

// BuildingFor returns the building name serving ip, if the numbering plan
// records one.
func (n *Network) BuildingFor(ip dnswire.IPv4) (string, bool) {
	for _, b := range n.cfg.Blocks {
		if b.Building != "" && b.Prefix.Contains(ip) {
			return b.Building, true
		}
	}
	return "", false
}

// DNSAddr returns the fabric address of the network's authoritative name
// server: the .3 address of the first /24, port 53, by convention.
func (n *Network) DNSAddr() fabric.Addr {
	return fabric.Addr{IP: n.cfg.Announced.Nth(3), Port: 53}
}

// blockSuffix computes the hostname suffix for a block.
func (n *Network) blockSuffix(b Block) dnswire.Name {
	if b.SubLabel == "" {
		return n.cfg.Suffix
	}
	s, err := n.cfg.Suffix.Prepend(b.SubLabel)
	if err != nil {
		return n.cfg.Suffix
	}
	return s
}

// AddDevice places a device in the numbering plan's blockIdx-th block with
// the given archetype. The address is assigned deterministically.
func (n *Network) AddDevice(d *Device, blockIdx int, arch Archetype) error {
	if blockIdx < 0 || blockIdx >= len(n.cfg.Blocks) {
		return fmt.Errorf("netsim: block index %d out of range", blockIdx)
	}
	b := n.cfg.Blocks[blockIdx]
	if b.Kind != BlockDynamic {
		return fmt.Errorf("netsim: block %d is not dynamic", blockIdx)
	}
	usable := n.usableIPs(blockIdx)
	idx := len(n.blockDev[blockIdx])
	if idx >= len(usable) {
		return fmt.Errorf("netsim: block %d full (%d devices)", blockIdx, idx)
	}
	ip := usable[idx]
	n.devices = append(n.devices, d)
	n.arch[d.ID] = arch
	n.deviceIP[d.ID] = ip
	n.ipDevice[ip] = d
	n.blockDev[blockIdx] = append(n.blockDev[blockIdx], d)
	n.devBlock[d.ID] = blockIdx
	return nil
}

// usableIPs enumerates the assignable addresses of a dynamic block in a
// deterministic shuffled order: network/broadcast addresses and the two
// lowest host addresses (reserved for the DHCP server and the name server)
// are excluded.
func (n *Network) usableIPs(blockIdx int) []dnswire.IPv4 {
	b := n.cfg.Blocks[blockIdx]
	count := b.Prefix.NumAddresses()
	ips := make([]dnswire.IPv4, 0, count-4)
	for i := 3; i < count-1; i++ {
		ips = append(ips, b.Prefix.Nth(i))
	}
	// Deterministic shuffle so address usage does not cluster at the
	// bottom of the prefix.
	r := rand.New(rand.NewSource(int64(hash64(n.cfg.Seed, uint64(blockIdx), 0x51))))
	r.Shuffle(len(ips), func(i, j int) { ips[i], ips[j] = ips[j], ips[i] })
	return ips
}

// PopulateSpec controls random population of a dynamic block.
type PopulateSpec struct {
	// Block is the index of the dynamic block to fill.
	Block int
	// People is how many persons to create.
	People int
	// Archetype applies to every person in this spec.
	Archetype Archetype
	// NamedFraction is the fraction of devices that carry their owner's
	// given name (the rest use serial-style names).
	NamedFraction float64
	// DevicesPerPerson bounds the 1..N devices each person owns.
	DevicesPerPerson int
	// ReleaseFraction is the fraction of devices that send DHCPRELEASE
	// on leave.
	ReleaseFraction float64
	// NamePool supplies owner given names; defaults to the union of the
	// matching top-50 and the extra common names.
	NamePool []string
}

// Populate fills a block with randomly generated people and devices,
// deterministically under the network seed.
func (n *Network) Populate(spec PopulateSpec) error {
	pool := spec.NamePool
	if len(pool) == 0 {
		pool = defaultNamePool()
	}
	per := spec.DevicesPerPerson
	if per <= 0 {
		per = 3
	}
	kinds := []DeviceKind{
		KindIPhone, KindIPad, KindMacBookAir, KindMacBookPro,
		KindAndroidPhone, KindGalaxyPhone, KindGalaxyNote, KindDellLaptop,
		KindLenovoLaptop, KindWindowsDesktop, KindChromebook, KindGenericPhone,
	}
	for p := 0; p < spec.People; p++ {
		owner := pool[n.rng.Intn(len(pool))]
		numDev := 1 + n.rng.Intn(per)
		for d := 0; d < numDev; d++ {
			kind := kinds[n.rng.Intn(len(kinds))]
			nameOwner := owner
			if n.rng.Float64() >= spec.NamedFraction {
				nameOwner = ""
			}
			id := hash64(n.cfg.Seed, hashString(n.cfg.Name), uint64(spec.Block), uint64(p), uint64(d))
			dev := &Device{
				ID:          id,
				Owner:       owner,
				Kind:        kind,
				HostName:    HostNameFor(kind, nameOwner, n.rng),
				MAC:         macForID(id),
				SendRelease: n.rng.Float64() < spec.ReleaseFraction,
				Schedule:    NewArchetypeScheduler(spec.Archetype, id, n.cfg.Seed),
			}
			if err := n.AddDevice(dev, spec.Block, spec.Archetype); err != nil {
				return err
			}
		}
	}
	return nil
}

// occupancyFor combines timeline and calendar factors for an archetype on a
// date.
func (n *Network) occupancyFor(d time.Time, a Archetype) float64 {
	f := n.cfg.Timeline.At(d).Factor(a)
	return f * n.cfg.Calendar.FactorOn(d, a)
}

// OccupancyFor exposes the combined occupancy factor (used by experiments
// to annotate plots).
func (n *Network) OccupancyFor(d time.Time, a Archetype) float64 {
	return n.occupancyFor(d, a)
}

// Record is one (address, hostname) pair visible in reverse DNS.
type Record struct {
	IP       dnswire.IPv4
	HostName dnswire.Name
}

// RecordsAt evaluates the network's complete reverse-DNS content at t
// without running the event simulation: static records plus, for each
// dynamic block, the records of devices present at t — including records
// that linger after a silent leave until the DHCP lease expires, the
// behaviour the paper measures in Section 6.
func (n *Network) RecordsAt(t time.Time, emit func(Record)) {
	for ip, name := range n.staticRec {
		emit(Record{IP: ip, HostName: name})
	}
	local := t.In(n.cfg.Location)
	for bi, b := range n.cfg.Blocks {
		if b.Kind != BlockDynamic || b.Policy == ipam.PolicyStaticForm || b.Policy == ipam.PolicyNone {
			continue
		}
		suffix := n.blockSuffix(b)
		for _, d := range n.blockDev[bi] {
			if !n.recordVisible(d, local) {
				continue
			}
			target, err := ipam.Target(b.Policy, suffix, leaseEventFor(d, n.deviceIP[d.ID]))
			if err != nil {
				continue
			}
			emit(Record{IP: n.deviceIP[d.ID], HostName: target})
		}
	}
}

// CountRecordsAt returns the number of records visible at t, grouped by
// /24 prefix.
func (n *Network) CountRecordsAt(t time.Time) map[dnswire.Prefix]int {
	counts := make(map[dnswire.Prefix]int)
	n.RecordsAt(t, func(r Record) { counts[r.IP.Slash24()]++ })
	return counts
}

// recordVisible decides whether a device's PTR exists at local time t:
// the device is online now, or it left silently within one lease time.
func (n *Network) recordVisible(d *Device, t time.Time) bool {
	occ := n.occupancyFor(midnight(t), n.arch[d.ID])
	if d.PresentAt(t, occ) {
		return true
	}
	if d.SendRelease {
		return false
	}
	// Look for a session end within the lease window before t, on
	// today's or yesterday's schedule.
	lease := n.cfg.LeaseTime
	for _, dayDelta := range []int{0, -1} {
		day := midnight(t).AddDate(0, 0, dayDelta)
		dayOcc := n.occupancyFor(day, n.arch[d.ID])
		for _, s := range d.SessionsOn(day, dayOcc) {
			end := day.Add(s.End)
			if end.Before(t) && t.Sub(end) < lease {
				return true
			}
		}
	}
	return false
}

// OnlineAt reports whether the host at ip answers pings at t: in live mode
// this tracks actual DHCP state; in snapshot mode it evaluates the schedule.
// Static-block addresses with records count as always online.
func (n *Network) OnlineAt(ip dnswire.IPv4, t time.Time) bool {
	n.mu.Lock()
	live := n.live != nil
	online := n.onlineIP[ip]
	n.mu.Unlock()
	if live {
		return online
	}
	if _, ok := n.staticRec[ip]; ok {
		return true
	}
	d, ok := n.ipDevice[ip]
	if !ok {
		return false
	}
	local := t.In(n.cfg.Location)
	return d.PresentAt(local, n.occupancyFor(midnight(local), n.arch[d.ID]))
}

// leaseEventFor fabricates the lease event a device's join produces, for
// name computation in snapshot mode.
func leaseEventFor(d *Device, ip dnswire.IPv4) dhcp.Event {
	return dhcp.Event{
		Kind:     dhcp.LeaseGranted,
		IP:       ip,
		HostName: d.HostName,
		CHAddr:   d.MAC,
	}
}

// buildStaticRecords materializes the records of static blocks once.
func (n *Network) buildStaticRecords() error {
	for bi, b := range n.cfg.Blocks {
		switch b.Kind {
		case BlockStaticInfra:
			n.buildInfraRecords(bi, b)
		case BlockStaticPool:
			n.buildPoolRecords(bi, b)
		case BlockServers:
			n.buildServerRecords(bi, b)
		case BlockDynamic:
			if b.Policy == ipam.PolicyStaticForm {
				if err := n.buildStaticFormRecords(b); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// buildInfraRecords creates router-style records with location and
// interface terms — the records Section 5.1 excludes via generic terms,
// including city names that collide with given names.
func (n *Network) buildInfraRecords(bi int, b Block) {
	density := b.Density
	if density == 0 {
		density = 0.35
	}
	suffix := n.blockSuffix(b)
	cities := []string{"jackson", "madison", "logan", "jordan", "salem", "aurora", "dayton", "lincoln"}
	roles := []string{"core", "edge", "border", "gw", "rtr"}
	ifaces := []string{"ge-0-0", "ge-0-1", "xe-1-0", "eth0", "vlan10", "vlan120", "po1"}
	count := b.Prefix.NumAddresses()
	for i := 1; i < count-1; i++ {
		ip := b.Prefix.Nth(i)
		h := hash64(n.cfg.Seed, hashString(n.cfg.Name), uint64(bi), uint64(i), 0x1F)
		if unitFloat(h) >= density {
			continue
		}
		role := roles[h>>8%uint64(len(roles))]
		city := cities[h>>16%uint64(len(cities))]
		iface := ifaces[h>>24%uint64(len(ifaces))]
		label := fmt.Sprintf("%s.%s%d.%s", iface, role, h>>32%4+1, city)
		name, err := dnswire.ParseName(label + "." + string(suffix))
		if err != nil {
			continue
		}
		n.staticRec[ip] = name
	}
}

// buildPoolRecords creates ISP-style fixed subscriber records
// (static-198-51-100-7.<suffix>).
func (n *Network) buildPoolRecords(bi int, b Block) {
	density := b.Density
	if density == 0 {
		density = 0.9
	}
	suffix := n.blockSuffix(b)
	count := b.Prefix.NumAddresses()
	for i := 1; i < count-1; i++ {
		ip := b.Prefix.Nth(i)
		h := hash64(n.cfg.Seed, hashString(n.cfg.Name), uint64(bi), uint64(i), 0x2F)
		if unitFloat(h) >= density {
			continue
		}
		label := fmt.Sprintf("static-%d-%d-%d-%d", ip[0], ip[1], ip[2], ip[3])
		name, err := suffix.Prepend(label)
		if err != nil {
			continue
		}
		n.staticRec[ip] = name
	}
}

// buildServerRecords creates a handful of service-host records.
func (n *Network) buildServerRecords(bi int, b Block) {
	suffix := n.blockSuffix(b)
	services := []string{"www", "mail", "ns1", "ns2", "vpn", "smtp", "imap", "ldap", "print", "files"}
	for i, svc := range services {
		if i+10 >= b.Prefix.NumAddresses()-1 {
			break
		}
		ip := b.Prefix.Nth(i + 10)
		name, err := suffix.Prepend(svc)
		if err != nil {
			continue
		}
		n.staticRec[ip] = name
	}
}

// buildStaticFormRecords pre-populates fixed-form names for a whole dynamic
// block (the DHCP-but-static-rDNS configuration).
func (n *Network) buildStaticFormRecords(b Block) error {
	suffix := n.blockSuffix(b)
	count := b.Prefix.NumAddresses()
	for i := 1; i < count-1; i++ {
		ip := b.Prefix.Nth(i)
		name, err := ipam.StaticTarget(suffix, ip)
		if err != nil {
			return err
		}
		n.staticRec[ip] = name
	}
	return nil
}

// StaticRecordCount returns the number of static records (constant over
// time).
func (n *Network) StaticRecordCount() int { return len(n.staticRec) }

// sortedBlockDevices returns the devices of a block in a stable order.
func (n *Network) sortedBlockDevices(bi int) []*Device {
	devs := append([]*Device(nil), n.blockDev[bi]...)
	sort.Slice(devs, func(i, j int) bool { return devs[i].ID < devs[j].ID })
	return devs
}
