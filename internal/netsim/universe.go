package netsim

import (
	"fmt"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/names"
)

// FillerKind selects the record style of a filler /24.
type FillerKind int

// Filler kinds.
const (
	// FillerISPStatic is a fixed-form subscriber pool.
	FillerISPStatic FillerKind = iota
	// FillerInfra is router infrastructure with location terms.
	FillerInfra
	// FillerVanity is a hosting/home-server block where some hostnames
	// carry personal names — static records that give Figure 2 its
	// unfiltered (blue) matches outside dynamic networks.
	FillerVanity
)

// FillerBlock is a /24 whose reverse-DNS content never changes. The scaled
// universe contains tens of thousands of them; they are generated on the
// fly rather than stored.
type FillerBlock struct {
	Prefix  dnswire.Prefix
	Suffix  dnswire.Name
	Kind    FillerKind
	Density float64
	Seed    uint64

	count int // cached record count, -1 until computed
}

// Records emits the block's records, deterministically.
func (f *FillerBlock) Records(emit func(Record)) {
	n := f.Prefix.NumAddresses()
	vanityNames := append(append([]string(nil), names.Top50...), names.Extra...)
	for i := 1; i < n-1; i++ {
		ip := f.Prefix.Nth(i)
		h := hash64(f.Seed, uint64(ip.Uint32()), 0xF1)
		if unitFloat(h) >= f.Density {
			continue
		}
		var label string
		switch f.Kind {
		case FillerISPStatic:
			label = fmt.Sprintf("static-%d-%d-%d-%d", ip[0], ip[1], ip[2], ip[3])
		case FillerInfra:
			cities := names.CityNames
			label = fmt.Sprintf("ge-%d-%d.core%d.%s", h>>8%4, h>>12%8, h>>16%4+1,
				cities[h>>20%uint64(len(cities))])
		case FillerVanity:
			if unitFloat(hash64(h, 1)) < 0.3 {
				owner := vanityNames[h>>24%uint64(len(vanityNames))]
				label = fmt.Sprintf("%s.home", owner)
			} else {
				label = fmt.Sprintf("host-%d-%d", ip[2], ip[3])
			}
		}
		name, err := dnswire.ParseName(label + "." + string(f.Suffix))
		if err != nil {
			continue
		}
		emit(Record{IP: ip, HostName: name})
	}
}

// Count returns the number of records in the block (cached after first
// call).
func (f *FillerBlock) Count() int {
	if f.count > 0 {
		return f.count
	}
	c := 0
	f.Records(func(Record) { c++ })
	f.count = c
	return c
}

// UniverseConfig scales the study universe. The defaults produce the
// 1/100-scale universe documented in DESIGN.md.
type UniverseConfig struct {
	// Seed drives all generation.
	Seed uint64
	// Location is the study timezone (default UTC).
	Location *time.Location
	// FillerSlash24s is the number of static filler /24s (default
	// 60000, approximating the paper's 6.15M at 1/100 scale).
	FillerSlash24s int
	// LeakyNetworks is the number of networks that carry client names
	// into rDNS (default 197, matching the paper's identified set).
	LeakyNetworks int
	// NonLeakyDynamic is the number of dynamic-but-not-leaking networks
	// (hashed or sparsely named), default 55.
	NonLeakyDynamic int
	// PeoplePerDynamicBlock scales population (default 55 people, each
	// with 1-3 devices, so ~110 devices per /24).
	PeoplePerDynamicBlock int
}

func (c *UniverseConfig) fillDefaults() {
	if c.Location == nil {
		c.Location = time.UTC
	}
	if c.FillerSlash24s == 0 {
		c.FillerSlash24s = 60000
	}
	if c.LeakyNetworks == 0 {
		c.LeakyNetworks = 197
	}
	if c.NonLeakyDynamic == 0 {
		c.NonLeakyDynamic = 55
	}
	if c.PeoplePerDynamicBlock == 0 {
		c.PeoplePerDynamicBlock = 55
	}
}

// Universe is the complete simulated address space under study.
type Universe struct {
	Cfg      UniverseConfig
	Networks []*Network
	Filler   []*FillerBlock

	byName map[string]*Network
}

// NetworkByName returns a network by its report name.
func (u *Universe) NetworkByName(name string) (*Network, bool) {
	n, ok := u.byName[name]
	return n, ok
}

// SupplementalNames lists the nine networks selected for supplemental
// measurement, in Table 4 order.
func SupplementalNames() []string {
	return []string{
		"Academic-A", "Academic-B", "Academic-C",
		"Enterprise-A", "Enterprise-B", "Enterprise-C",
		"ISP-A", "ISP-B", "ISP-C",
	}
}

// BuildStudyUniverse constructs the scaled universe: the nine supplemental
// networks with their Table 4 properties, the remaining leaky networks with
// the Figure 4 type mix, non-leaking dynamic networks, and static filler.
func BuildStudyUniverse(cfg UniverseConfig) (*Universe, error) {
	cfg.fillDefaults()
	u := &Universe{Cfg: cfg, byName: make(map[string]*Network)}
	alloc := newAddressAllocator()

	// The nine supplemental networks come first so their addresses are
	// stable regardless of scale knobs.
	nine, err := buildSupplementalNetworks(cfg, alloc)
	if err != nil {
		return nil, err
	}
	u.Networks = append(u.Networks, nine...)

	// Remaining leaky networks in the Figure 4 type mix: 62% academic,
	// 15% ISP, 11% other, 9% enterprise, 3% government. The nine above
	// already contribute 3 academic, 3 enterprise, 3 ISP.
	mix := []struct {
		ty    NetworkType
		share float64
	}{
		{Academic, 0.62}, {ISP, 0.15}, {Other, 0.11},
		{Enterprise, 0.09}, {Government, 0.03},
	}
	have := map[NetworkType]int{Academic: 3, Enterprise: 3, ISP: 3}
	idx := 0
	for _, m := range mix {
		want := int(float64(cfg.LeakyNetworks)*m.share + 0.5)
		for have[m.ty] < want {
			n, err := buildLeakyNetwork(cfg, alloc, m.ty, idx)
			if err != nil {
				return nil, err
			}
			u.Networks = append(u.Networks, n)
			have[m.ty]++
			idx++
		}
	}

	// Dynamic but not leaking: hashed policies.
	for i := 0; i < cfg.NonLeakyDynamic; i++ {
		n, err := buildHashedNetwork(cfg, alloc, i)
		if err != nil {
			return nil, err
		}
		u.Networks = append(u.Networks, n)
	}

	for _, n := range u.Networks {
		u.byName[n.Name()] = n
	}

	// Filler: everything else, up to the target /24 count.
	used := 0
	for _, n := range u.Networks {
		used += len(n.cfg.Announced.Slash24s())
	}
	kinds := []FillerKind{FillerISPStatic, FillerISPStatic, FillerISPStatic, FillerInfra, FillerVanity}
	for i := 0; used+i < cfg.FillerSlash24s; i++ {
		p := alloc.nextSlash24()
		kind := kinds[hash64(cfg.Seed, uint64(i), 0xFB)%uint64(len(kinds))]
		density := 0.12 + unitFloat(hash64(cfg.Seed, uint64(i), 0xFC))*0.5
		suffix := fillerSuffix(kind, i)
		u.Filler = append(u.Filler, &FillerBlock{
			Prefix:  p,
			Suffix:  suffix,
			Kind:    kind,
			Density: density,
			Seed:    hash64(cfg.Seed, uint64(i), 0xFD),
		})
	}
	return u, nil
}

func fillerSuffix(kind FillerKind, i int) dnswire.Name {
	switch kind {
	case FillerInfra:
		return dnswire.Name(fmt.Sprintf("transit-%d.net.", i%97))
	case FillerVanity:
		return dnswire.Name(fmt.Sprintf("hosting-%d.com.", i%53))
	default:
		return dnswire.Name(fmt.Sprintf("pool.isp-fill-%d.net.", i%211))
	}
}

// addressAllocator hands out address space from 10.0.0.0/8 and then
// 100.64.0.0/10 and 172.16.0.0/12, /24 by /24 or in aligned larger chunks.
type addressAllocator struct {
	next uint32
}

func newAddressAllocator() *addressAllocator {
	return &addressAllocator{next: dnswire.MustIPv4("10.0.0.0").Uint32()}
}

// alloc returns an aligned prefix of the given size.
func (a *addressAllocator) alloc(bits int) dnswire.Prefix {
	size := uint32(1) << (32 - bits)
	// Align.
	if rem := a.next % size; rem != 0 {
		a.next += size - rem
	}
	p := dnswire.Prefix{Addr: dnswire.IPv4FromUint32(a.next), Bits: bits}
	a.next += size
	return p
}

func (a *addressAllocator) nextSlash24() dnswire.Prefix { return a.alloc(24) }

// buildSupplementalNetworks constructs the nine networks of Table 4 with
// their observed properties: sizes, ICMP blocking, lease times, and (for
// Academic-A) planted Brian devices for the Figure 8 case study.
func buildSupplementalNetworks(cfg UniverseConfig, alloc *addressAllocator) ([]*Network, error) {
	loc := cfg.Location
	var out []*Network

	// Academic-A: US campus with housing, ICMP open, 1h leases. The
	// Life-of-Brian(s) case study runs here.
	academicA, err := buildCampus(campusSpec{
		cfg: cfg, alloc: alloc, name: "Academic-A",
		suffix:   "campus-a.edu",
		timeline: USCampusCOVIDTimeline(loc), calendar: USAcademicCalendar(loc),
		eduBlocks: 4, housingBlocks: 2, lease: time.Hour,
		excludeName: "brian",
	})
	if err != nil {
		return nil, err
	}
	if err := plantBrians(academicA, loc); err != nil {
		return nil, err
	}
	if err := plantRoamingBrian(academicA, loc); err != nil {
		return nil, err
	}
	out = append(out, academicA)

	// Academic-B: ICMP blocked except for two PTR-less static hosts;
	// longer leases, marked recovery after first lockdown (Figure 9).
	academicB, err := buildCampus(campusSpec{
		cfg: cfg, alloc: alloc, name: "Academic-B",
		suffix:   "campus-b.edu",
		timeline: USCampusCOVIDTimeline(loc), calendar: USAcademicCalendar(loc),
		eduBlocks: 4, housingBlocks: 1, lease: 2 * time.Hour,
		blockICMP: true,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, academicB)

	// Academic-C: the authors' home (EU) institution; education vs
	// housing crossover of Figure 10.
	academicC, err := buildCampus(campusSpec{
		cfg: cfg, alloc: alloc, name: "Academic-C",
		suffix:   "campus-c.ac.nl",
		timeline: EUCampusCOVIDTimeline(loc), calendar: EUAcademicCalendar(loc),
		eduBlocks: 4, housingBlocks: 2, lease: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	out = append(out, academicC)

	// Enterprises: A answers pings, B and C block them. B and C show the
	// March/April 2021 WFH drop (Figure 9); B partially recovers.
	for i, sp := range []struct {
		name      string
		blockICMP bool
		partial   bool
	}{
		{"Enterprise-A", false, false},
		{"Enterprise-B", true, true},
		{"Enterprise-C", true, false},
	} {
		n, err := buildEnterprise(cfg, alloc, sp.name, i, sp.blockICMP, sp.partial)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}

	// ISPs: responsiveness varies with how many subscribers are online.
	for i, sp := range []struct {
		name    string
		density float64 // fraction of pool with active subscribers
	}{
		{"ISP-A", 0.5},
		{"ISP-B", 0.03},
		{"ISP-C", 0.06},
	} {
		exclude := ""
		if sp.name == "ISP-A" {
			exclude = "brian"
		}
		n, err := buildISP(cfg, alloc, sp.name, i, sp.density, exclude)
		if err != nil {
			return nil, err
		}
		if sp.name == "ISP-A" {
			// Cross-network tracking subject (Section 1: "might even
			// be able to track clients across multiple networks"):
			// the laptop that shows up on campus around noon
			// (plantBrians' Brians-MBP on Academic-A) spends its
			// evenings on a residential ISP-A line.
			if err := plantHomeMBP(n, loc); err != nil {
				return nil, err
			}
		}
		out = append(out, n)
	}
	return out, nil
}

// plantHomeMBP places a Brians-MBP on an ISP's first dynamic block with an
// evening/weekend home schedule, mirroring the campus device of the same
// name.
func plantHomeMBP(n *Network, loc *time.Location) error {
	_ = loc
	weekly := map[time.Weekday][]Session{}
	for _, wd := range []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday} {
		weekly[wd] = []Session{{18 * time.Hour, 23*time.Hour + 30*time.Minute}}
	}
	weekly[time.Saturday] = []Session{{10 * time.Hour, 23 * time.Hour}}
	weekly[time.Sunday] = []Session{{10 * time.Hour, 22 * time.Hour}}
	blockIdx := -1
	for bi, b := range n.cfg.Blocks {
		if b.Kind == BlockDynamic && b.Policy == ipam.PolicyCarryOver {
			blockIdx = bi
			break
		}
	}
	if blockIdx < 0 {
		return fmt.Errorf("netsim: %s has no dynamic block", n.Name())
	}
	id := hash64(hashString(n.Name()), hashString("Brians-MBP"), 0xCB)
	dev := &Device{
		ID: id, Owner: "brian", Kind: KindMacBookPro, HostName: "Brians-MBP",
		MAC: macForID(id), SendRelease: true,
		Schedule: &ScriptedScheduler{Weekly: weekly},
	}
	return n.AddDevice(dev, blockIdx, HomeUser)
}

type campusSpec struct {
	cfg           UniverseConfig
	alloc         *addressAllocator
	name          string
	suffix        string
	timeline      *Timeline
	calendar      *Calendar
	eduBlocks     int
	housingBlocks int
	lease         time.Duration
	blockICMP     bool
	// excludeName keeps a given name out of the random population, so a
	// scripted device (the planted Brians of Figure 8) is not shadowed
	// by a random namesake.
	excludeName string
}

// buildCampus constructs an academic network: education dynamic blocks
// (staff+students), housing dynamic blocks (residents), a static-form
// block, infrastructure, and servers.
func buildCampus(sp campusSpec) (*Network, error) {
	announced := sp.alloc.alloc(18) // 64 /24s
	var blocks []Block
	sub := announced.Slash24s()
	bi := 0
	take := func() dnswire.Prefix { p := sub[bi]; bi++; return p }

	eduBuildings := []string{"library", "engineering-hall", "science-center", "admin-building", "lecture-hall"}
	housingBuildings := []string{"dorm-west", "dorm-east", "dorm-north"}
	blocks = append(blocks, Block{Kind: BlockStaticInfra, Prefix: take(), SubLabel: "net"})
	blocks = append(blocks, Block{Kind: BlockServers, Prefix: take(), SubLabel: "srv"})
	eduStart := len(blocks)
	for i := 0; i < sp.eduBlocks; i++ {
		blocks = append(blocks, Block{
			Kind: BlockDynamic, Prefix: take(),
			Policy: ipam.PolicyCarryOver, SubLabel: "edu",
			Building: eduBuildings[i%len(eduBuildings)],
		})
	}
	housingStart := len(blocks)
	for i := 0; i < sp.housingBlocks; i++ {
		blocks = append(blocks, Block{
			Kind: BlockDynamic, Prefix: take(),
			Policy: ipam.PolicyCarryOver, SubLabel: "housing",
			Building: housingBuildings[i%len(housingBuildings)],
		})
	}
	blocks = append(blocks, Block{
		Kind: BlockStaticInfra, Prefix: take(), SubLabel: "labs", Density: 0.3,
	})

	n, err := NewNetwork(Config{
		Name: sp.name, Type: Academic,
		Suffix:    dnswire.MustName(sp.suffix),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: sp.lease,
		BlockICMP: sp.blockICMP,
		Timeline:  sp.timeline,
		Calendar:  sp.calendar,
		Location:  sp.cfg.Location,
		Seed:      hash64(sp.cfg.Seed, hashString(sp.name)),
	})
	if err != nil {
		return nil, err
	}
	people := sp.cfg.PeoplePerDynamicBlock
	pool := defaultNamePool()
	if sp.excludeName != "" {
		kept := pool[:0]
		for _, n := range pool {
			if n != sp.excludeName {
				kept = append(kept, n)
			}
		}
		pool = kept
	}
	for i := 0; i < sp.eduBlocks; i++ {
		arch := Staff
		if i%2 == 1 {
			arch = Student
		}
		if err := n.Populate(PopulateSpec{
			Block: eduStart + i, People: people, Archetype: arch,
			NamedFraction: 0.6, DevicesPerPerson: 2, ReleaseFraction: 0.75,
			NamePool: pool,
		}); err != nil {
			return nil, err
		}
	}
	housingPeople := people * 2 / 3
	if housingPeople < 3 {
		housingPeople = 3
	}
	for i := 0; i < sp.housingBlocks; i++ {
		if err := n.Populate(PopulateSpec{
			Block: housingStart + i, People: housingPeople, Archetype: Resident,
			NamedFraction: 0.65, DevicesPerPerson: 3, ReleaseFraction: 0.7,
			NamePool: pool,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// EducationHousingSplit returns the /24 sets of a campus's education and
// housing blocks, for the Figure 10 subnet-level analysis.
func EducationHousingSplit(n *Network) (edu, housing []dnswire.Prefix) {
	for _, b := range n.cfg.Blocks {
		switch b.SubLabel {
		case "edu":
			edu = append(edu, b.Prefix.Slash24s()...)
		case "housing":
			housing = append(housing, b.Prefix.Slash24s()...)
		}
	}
	return edu, housing
}

// buildEnterprise constructs an enterprise network: employee dynamic
// blocks, servers, infrastructure.
func buildEnterprise(cfg UniverseConfig, alloc *addressAllocator, name string, idx int, blockICMP, partialRecovery bool) (*Network, error) {
	announced := alloc.alloc(20) // 16 /24s
	sub := announced.Slash24s()
	blocks := []Block{
		{Kind: BlockStaticInfra, Prefix: sub[0], SubLabel: "net"},
		{Kind: BlockServers, Prefix: sub[1], SubLabel: "dc"},
		{Kind: BlockDynamic, Prefix: sub[2], Policy: ipam.PolicyCarryOver, SubLabel: "corp"},
		{Kind: BlockDynamic, Prefix: sub[3], Policy: ipam.PolicyCarryOver, SubLabel: "corp"},
		{Kind: BlockDynamic, Prefix: sub[4], Policy: ipam.PolicyCarryOver, SubLabel: "corp"},
	}
	n, err := NewNetwork(Config{
		Name: name, Type: Enterprise,
		Suffix:    dnswire.MustName(fmt.Sprintf("corp-%c.com", 'a'+idx)),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: time.Hour,
		BlockICMP: blockICMP,
		Timeline:  EnterpriseCOVIDTimeline(cfg.Location, partialRecovery),
		Location:  cfg.Location,
		Seed:      hash64(cfg.Seed, hashString(name)),
	})
	if err != nil {
		return nil, err
	}
	for b := 2; b <= 4; b++ {
		if err := n.Populate(PopulateSpec{
			Block: b, People: cfg.PeoplePerDynamicBlock, Archetype: Employee,
			NamedFraction: 0.55, DevicesPerPerson: 2, ReleaseFraction: 0.75,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// buildISP constructs an ISP access network: home-user dynamic pools plus a
// large static pool. density scales how many subscribers are active, which
// drives the observed-address percentages of Table 4.
func buildISP(cfg UniverseConfig, alloc *addressAllocator, name string, idx int, density float64, excludeName string) (*Network, error) {
	announced := alloc.alloc(19) // 32 /24s
	sub := announced.Slash24s()
	blocks := []Block{
		{Kind: BlockStaticInfra, Prefix: sub[0], SubLabel: "net"},
		{Kind: BlockStaticPool, Prefix: sub[1], SubLabel: "static"},
		{Kind: BlockStaticPool, Prefix: sub[2], SubLabel: "static"},
		{Kind: BlockDynamic, Prefix: sub[3], Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
		{Kind: BlockDynamic, Prefix: sub[4], Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
		{Kind: BlockDynamic, Prefix: sub[5], Policy: ipam.PolicyCarryOver, SubLabel: "dyn"},
	}
	n, err := NewNetwork(Config{
		Name: name, Type: ISP,
		Suffix:    dnswire.MustName(fmt.Sprintf("isp-%c.net", 'a'+idx)),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: time.Hour,
		Timeline:  nil,
		Location:  cfg.Location,
		Seed:      hash64(cfg.Seed, hashString(name)),
	})
	if err != nil {
		return nil, err
	}
	people := int(float64(cfg.PeoplePerDynamicBlock) * 2 * density)
	if people < 3 {
		people = 3
	}
	pool := defaultNamePool()
	if excludeName != "" {
		kept := pool[:0]
		for _, nm := range pool {
			if nm != excludeName {
				kept = append(kept, nm)
			}
		}
		pool = kept
	}
	for b := 3; b <= 5; b++ {
		if err := n.Populate(PopulateSpec{
			Block: b, People: people, Archetype: HomeUser,
			NamedFraction: 0.5, DevicesPerPerson: 3, ReleaseFraction: 0.6,
			NamePool: pool,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// buildLeakyNetwork constructs one of the remaining identified networks
// with the given type.
func buildLeakyNetwork(cfg UniverseConfig, alloc *addressAllocator, ty NetworkType, idx int) (*Network, error) {
	var suffix string
	var arch Archetype
	switch ty {
	case Academic:
		suffix = fmt.Sprintf("uni-%d.edu", idx)
		arch = Student
	case ISP:
		suffix = fmt.Sprintf("telecom-%d.net", idx)
		arch = HomeUser
	case Enterprise:
		suffix = fmt.Sprintf("co-%d.com", idx)
		arch = Employee
	case Government:
		suffix = fmt.Sprintf("agency-%d.gov", idx)
		arch = Employee
	default:
		suffix = fmt.Sprintf("org-%d.org", idx)
		arch = Staff
	}
	announced := alloc.alloc(21) // 8 /24s
	sub := announced.Slash24s()
	nDyn := 2 + int(hash64(cfg.Seed, uint64(idx), 0xD1)%4) // 2-5 dynamic /24s
	blocks := []Block{
		{Kind: BlockStaticInfra, Prefix: sub[0], SubLabel: "net"},
		{Kind: BlockServers, Prefix: sub[1], SubLabel: "srv"},
	}
	for i := 0; i < nDyn; i++ {
		blocks = append(blocks, Block{
			Kind: BlockDynamic, Prefix: sub[2+i],
			Policy: ipam.PolicyCarryOver, SubLabel: "dyn",
		})
	}
	var tl *Timeline
	var cal *Calendar
	switch ty {
	case Academic:
		tl, cal = USCampusCOVIDTimeline(cfg.Location), USAcademicCalendar(cfg.Location)
	case Enterprise, Government:
		tl = EnterpriseCOVIDTimeline(cfg.Location, idx%2 == 0)
	}
	name := fmt.Sprintf("%s-%d", ty, idx)
	n, err := NewNetwork(Config{
		Name: name, Type: ty,
		Suffix:    dnswire.MustName(suffix),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: time.Hour,
		Timeline:  tl,
		Calendar:  cal,
		Location:  cfg.Location,
		Seed:      hash64(cfg.Seed, hashString(name)),
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < nDyn; i++ {
		if err := n.Populate(PopulateSpec{
			Block: 2 + i, People: cfg.PeoplePerDynamicBlock, Archetype: arch,
			NamedFraction: 0.6, DevicesPerPerson: 2, ReleaseFraction: 0.75,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// buildHashedNetwork constructs a dynamic network that publishes hashed
// identifiers: dynamic in rDNS, but leaking no names.
func buildHashedNetwork(cfg UniverseConfig, alloc *addressAllocator, idx int) (*Network, error) {
	announced := alloc.alloc(22) // 4 /24s
	sub := announced.Slash24s()
	blocks := []Block{
		{Kind: BlockStaticInfra, Prefix: sub[0], SubLabel: "net"},
		{Kind: BlockDynamic, Prefix: sub[1], Policy: ipam.PolicyHashed, SubLabel: "dyn"},
		{Kind: BlockDynamic, Prefix: sub[2], Policy: ipam.PolicyHashed, SubLabel: "dyn"},
	}
	name := fmt.Sprintf("hashed-%d", idx)
	n, err := NewNetwork(Config{
		Name: name, Type: Other,
		Suffix:    dnswire.MustName(fmt.Sprintf("cdn-%d.net", idx)),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: time.Hour,
		Location:  cfg.Location,
		Seed:      hash64(cfg.Seed, hashString(name)),
	})
	if err != nil {
		return nil, err
	}
	for b := 1; b <= 2; b++ {
		if err := n.Populate(PopulateSpec{
			Block: b, People: cfg.PeoplePerDynamicBlock, Archetype: HomeUser,
			NamedFraction: 0.6, DevicesPerPerson: 2, ReleaseFraction: 0.75,
		}); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// plantBrians installs the scripted devices of the Figure 8 case study on
// a campus's first housing block: five Brian-owned devices with regular
// weekly patterns, a Thanksgiving-weekend absence, and a Galaxy Note 9
// that first appears on Cyber Monday afternoon.
func plantBrians(n *Network, loc *time.Location) error {
	housing := -1
	for i, b := range n.cfg.Blocks {
		if b.SubLabel == "housing" {
			housing = i
			break
		}
	}
	if housing < 0 {
		return fmt.Errorf("netsim: %s has no housing block", n.Name())
	}
	// Thanksgiving 2021: Thursday November 25; Cyber Monday November 29.
	thanksgiving := date(loc, 2021, time.November, 25)
	cyberMonday := date(loc, 2021, time.November, 29)
	awayDays := map[time.Time]bool{}
	for d := 0; d < 4; d++ {
		awayDays[thanksgiving.AddDate(0, 0, d)] = true
	}

	weekdays := func(sessions ...Session) map[time.Weekday][]Session {
		m := make(map[time.Weekday][]Session)
		for _, wd := range []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday} {
			m[wd] = sessions
		}
		return m
	}
	full := weekdays(Session{8 * time.Hour, 22 * time.Hour})
	full[time.Saturday] = []Session{{10 * time.Hour, 23 * time.Hour}}
	full[time.Sunday] = []Session{{10 * time.Hour, 22 * time.Hour}}

	noonOnly := weekdays(Session{11*time.Hour + 30*time.Minute, 14 * time.Hour})

	evenings := weekdays(Session{17 * time.Hour, 23 * time.Hour})
	evenings[time.Saturday] = []Session{{9 * time.Hour, 23 * time.Hour}}
	evenings[time.Sunday] = []Session{{9 * time.Hour, 22 * time.Hour}}

	devices := []struct {
		host   string
		kind   DeviceKind
		weekly map[time.Weekday][]Session
		away   map[time.Time]bool
		start  time.Time
	}{
		{"Brians-Air", KindMacBookAir, full, awayDays, time.Time{}},
		{"Brians-MBP", KindMacBookPro, noonOnly, awayDays, time.Time{}},
		{"Brian's iPad", KindIPad, evenings, nil, time.Time{}},
		{"Brian's phone", KindGenericPhone, full, awayDays, time.Time{}},
		{"Brians-Galaxy-Note9", KindGalaxyNote, evenings, nil,
			cyberMonday.Add(14 * time.Hour)}, // appears Cyber Monday afternoon
	}
	for i, d := range devices {
		id := hash64(hashString(n.Name()), hashString(d.host), uint64(i), 0xB1)
		sched := &ScriptedScheduler{
			Weekly:      d.weekly,
			AbsentDates: d.away,
		}
		if !d.start.IsZero() {
			sched.Activate = midnight(d.start)
			// On its first day, the device appears only in the
			// afternoon.
			sched.Overrides = map[time.Time][]Session{
				midnight(d.start): {{14 * time.Hour, 23 * time.Hour}},
			}
		}
		dev := &Device{
			ID: id, Owner: "brian", Kind: d.kind, HostName: d.host,
			MAC: macForID(id), SendRelease: i%2 == 0,
			Schedule: sched,
		}
		if err := n.AddDevice(dev, housing, Resident); err != nil {
			return err
		}
	}
	return nil
}

// plantRoamingBrian installs the Section 8 geotracking subject: one
// physical phone (one MAC, one hostname) that associates with a different
// building's subnet through the day — library in the morning, the
// engineering hall around noon, the science center in the afternoon, and a
// dorm in the evening. Because each building's DHCP pool is a different
// /24, an outside observer with subnet-to-building knowledge can follow
// the phone across campus via PTR queries alone.
func plantRoamingBrian(n *Network, loc *time.Location) error {
	mac := macForID(hashString(n.Name()) ^ 0xA0A)
	host := "Brians-Galaxy-S10"
	weekdaysAt := func(from, to time.Duration) map[time.Weekday][]Session {
		m := make(map[time.Weekday][]Session)
		for _, wd := range []time.Weekday{time.Monday, time.Tuesday, time.Wednesday, time.Thursday, time.Friday} {
			m[wd] = []Session{{from, to}}
		}
		return m
	}
	stops := []struct {
		building string
		weekly   map[time.Weekday][]Session
	}{
		{"library", weekdaysAt(9*time.Hour, 11*time.Hour)},
		{"engineering-hall", weekdaysAt(11*time.Hour+30*time.Minute, 13*time.Hour)},
		{"science-center", weekdaysAt(14*time.Hour, 16*time.Hour)},
		{"dorm-west", weekdaysAt(17*time.Hour, 23*time.Hour)},
	}
	for i, stop := range stops {
		blockIdx := -1
		for bi, b := range n.cfg.Blocks {
			if b.Building == stop.building {
				blockIdx = bi
				break
			}
		}
		if blockIdx < 0 {
			return fmt.Errorf("netsim: no block for building %s", stop.building)
		}
		id := hash64(hashString(n.Name()), hashString(host), uint64(i), 0xEA)
		dev := &Device{
			ID: id, Owner: "brian", Kind: KindGalaxyPhone, HostName: host,
			MAC: mac, SendRelease: true,
			Schedule: &ScriptedScheduler{Weekly: stop.weekly},
		}
		if err := n.AddDevice(dev, blockIdx, Student); err != nil {
			return err
		}
	}
	return nil
}

// BuildValidationCampus constructs the ground-truth campus of Section 4.1:
// a /16 whose numbering plan contains 40 dynamic-rDNS prefixes, 83
// DHCP-but-static-rDNS prefixes, 123 purely static prefixes, and 10 empty
// ones. It returns the network and the ground-truth /24 sets.
func BuildValidationCampus(seed uint64, loc *time.Location) (*Network, map[string][]dnswire.Prefix, error) {
	if loc == nil {
		loc = time.UTC
	}
	announced := dnswire.MustPrefix("172.16.0.0/16")
	sub := announced.Slash24s()
	truth := map[string][]dnswire.Prefix{}
	var blocks []Block
	idx := 0
	add := func(n int, mk func(p dnswire.Prefix) Block, class string) {
		for i := 0; i < n; i++ {
			p := sub[idx]
			idx++
			blocks = append(blocks, mk(p))
			truth[class] = append(truth[class], p)
		}
	}
	add(40, func(p dnswire.Prefix) Block {
		return Block{Kind: BlockDynamic, Prefix: p, Policy: ipam.PolicyCarryOver, SubLabel: "dyn"}
	}, "dynamic")
	add(83, func(p dnswire.Prefix) Block {
		return Block{Kind: BlockDynamic, Prefix: p, Policy: ipam.PolicyStaticForm, SubLabel: "dhcp"}
	}, "dhcp-static")
	add(103, func(p dnswire.Prefix) Block {
		return Block{Kind: BlockStaticInfra, Prefix: p, SubLabel: "net", Density: 0.5}
	}, "static")
	add(20, func(p dnswire.Prefix) Block {
		return Block{Kind: BlockServers, Prefix: p, SubLabel: "srv"}
	}, "static")
	add(10, func(p dnswire.Prefix) Block {
		return Block{Kind: BlockEmpty, Prefix: p}
	}, "empty")

	n, err := NewNetwork(Config{
		Name: "Validation-Campus", Type: Academic,
		Suffix:    dnswire.MustName("institute.edu"),
		Announced: announced,
		Blocks:    blocks,
		LeaseTime: time.Hour,
		Calendar:  USAcademicCalendar(loc),
		Location:  loc,
		Seed:      seed,
	})
	if err != nil {
		return nil, nil, err
	}
	for bi, b := range blocks {
		if b.Kind == BlockDynamic && b.Policy == ipam.PolicyCarryOver {
			if err := n.Populate(PopulateSpec{
				Block: bi, People: 45, Archetype: Staff,
				NamedFraction: 0.6, DevicesPerPerson: 2, ReleaseFraction: 0.75,
			}); err != nil {
				return nil, nil, err
			}
		}
	}
	return n, truth, nil
}
