package netsim

import (
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

func TestStringers(t *testing.T) {
	if KindIPhone.String() != "iphone" || KindGalaxyNote.String() != "galaxy-note" {
		t.Fatal("DeviceKind.String broken")
	}
	if DeviceKind(99).String() != "unknown" {
		t.Fatal("unknown DeviceKind.String broken")
	}
	for a, want := range map[Archetype]string{
		Staff: "staff", Student: "student", Resident: "resident",
		Employee: "employee", HomeUser: "home-user", Infra: "infra",
		Archetype(42): "unknown",
	} {
		if a.String() != want {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
	if NetworkType(42).String() != "unknown" {
		t.Fatal("unknown NetworkType.String broken")
	}
}

func TestHomeUserDiurnalPattern(t *testing.T) {
	// Home users peak in the evening, with a weekend daytime presence.
	monday := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	saturday := monday.AddDate(0, 0, 5)
	evening, weekdayNoon, weekendNoon := 0, 0, 0
	for id := uint64(0); id < 300; id++ {
		d := &Device{ID: id, Schedule: NewArchetypeScheduler(HomeUser, id, 9)}
		if d.PresentAt(monday.Add(20*time.Hour), 1) {
			evening++
		}
		if d.PresentAt(monday.Add(12*time.Hour), 1) {
			weekdayNoon++
		}
		if d.PresentAt(saturday.Add(12*time.Hour), 1) {
			weekendNoon++
		}
	}
	if evening < 150 {
		t.Fatalf("evening presence = %d/300", evening)
	}
	if weekdayNoon >= evening {
		t.Fatalf("weekday noon (%d) not below evening (%d)", weekdayNoon, evening)
	}
	if weekendNoon <= weekdayNoon {
		t.Fatalf("weekend noon (%d) not above weekday noon (%d)", weekendNoon, weekdayNoon)
	}
}

func TestMergeSessions(t *testing.T) {
	in := []Session{
		{10 * time.Hour, 12 * time.Hour},
		{11 * time.Hour, 13 * time.Hour}, // overlaps the first
		{15 * time.Hour, 16 * time.Hour},
	}
	out := mergeSessions(in)
	if len(out) != 2 {
		t.Fatalf("merged = %v", out)
	}
	if out[0].Start != 10*time.Hour || out[0].End != 13*time.Hour {
		t.Fatalf("merged[0] = %v", out[0])
	}
	if got := mergeSessions(nil); len(got) != 0 {
		t.Fatalf("merge nil = %v", got)
	}
}

func TestTimelineAndCalendarLabels(t *testing.T) {
	loc := time.UTC
	tl := USCampusCOVIDTimeline(loc)
	if tl.PhaseLabel(date(loc, 2018, time.June, 1)) != "" {
		t.Fatal("label before first phase")
	}
	if tl.PhaseLabel(date(loc, 2020, time.April, 1)) != "campus-closure" {
		t.Fatal("lockdown label wrong")
	}
	cal := USAcademicCalendar(loc)
	labels := cal.LabelsOn(date(loc, 2021, time.November, 26))
	found := false
	for _, l := range labels {
		if l == "thanksgiving" {
			found = true
		}
	}
	if !found {
		t.Fatalf("labels = %v, want thanksgiving", labels)
	}
	if got := cal.LabelsOn(date(loc, 2021, time.June, 15)); got != nil {
		t.Fatalf("labels on a plain day = %v", got)
	}
	var nilCal *Calendar
	if nilCal.FactorOn(date(loc, 2021, time.June, 15), Staff) != 1 {
		t.Fatal("nil calendar factor != 1")
	}
	if nilCal.LabelsOn(date(loc, 2021, time.June, 15)) != nil {
		t.Fatal("nil calendar labels != nil")
	}
	var nilTL *Timeline
	if nilTL.At(date(loc, 2021, time.June, 15)) != nil {
		t.Fatal("nil timeline occupancy != nil")
	}
	if nilTL.PhaseLabel(date(loc, 2021, time.June, 15)) != "" {
		t.Fatal("nil timeline label != empty")
	}
}

func TestOccupancyForAndOnlineAt(t *testing.T) {
	cfg := testNetworkConfig()
	cfg.Timeline = USCampusCOVIDTimeline(time.UTC)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Lockdown-era staff occupancy is well below 1.
	at := time.Date(2020, 4, 15, 0, 0, 0, 0, time.UTC)
	if f := n.OccupancyFor(at, Staff); f >= 0.5 {
		t.Fatalf("lockdown staff occupancy = %v", f)
	}
	// OnlineAt in snapshot mode: static record addresses are always up;
	// absent addresses are not.
	var staticIP dnswire.IPv4
	n.RecordsAt(at, func(r Record) {
		if strings.Contains(string(r.HostName), ".srv.") {
			staticIP = r.IP
		}
	})
	if staticIP == (dnswire.IPv4{}) {
		t.Fatal("no server record found")
	}
	if !n.OnlineAt(staticIP, at) {
		t.Fatal("static host not online")
	}
	if n.OnlineAt(dnswire.MustIPv4("10.50.9.77"), at) {
		t.Fatal("empty address online")
	}
}

func TestLiveModeAcrossMidnight(t *testing.T) {
	// The midnight tick must schedule the new day: a device with a
	// Tuesday-only session joins after the simulation crosses midnight.
	cfg := testNetworkConfig()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev := &Device{
		ID: 1, Owner: "emma", Kind: KindIPad, HostName: "Emma's iPad",
		MAC: macForID(1), SendRelease: true,
		Schedule: &ScriptedScheduler{Weekly: map[time.Weekday][]Session{
			time.Tuesday: {{9 * time.Hour, 10 * time.Hour}},
		}},
	}
	n.AddDevice(dev, 0, Student)
	// Start Monday 22:00; advance into Tuesday 09:30.
	start := time.Date(2021, 11, 1, 22, 0, 0, 0, time.UTC)
	clock := simclock.NewSimulated(start)
	fab := fabric.New(clock, fabric.Config{})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	clock.AdvanceTo(time.Date(2021, 11, 2, 9, 30, 0, 0, time.UTC))
	if n.LiveRecordCount() == 0 {
		t.Fatal("no live records at all")
	}
	devIP, _ := n.DeviceIP(dev)
	if !n.OnlineAt(devIP, clock.Now()) {
		t.Fatal("Tuesday device not online after midnight tick")
	}
	if n.JoinFailures() != 0 {
		t.Fatalf("join failures = %d", n.JoinFailures())
	}
}

func TestLiveModeDNSFailureInjection(t *testing.T) {
	cfg := testNetworkConfig()
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.SetDNSFailure(dnsserver.FailureMode{ServFailRate: 1.0, Seed: 1})
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 8, 0, 0, 0, time.UTC))
	fab := fabric.New(clock, fabric.Config{Latency: time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	// Every query must now fail server-side.
	var rcode dnswire.RCode
	got := false
	ep, err := fab.Bind(fabric.Addr{IP: dnswire.MustIPv4("198.51.100.9"), Port: 4000},
		func(dg fabric.Datagram) {
			if m, err := dnswire.Unmarshal(dg.Payload); err == nil {
				rcode = m.Header.RCode
				got = true
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	q, _ := dnswire.NewQuery(1, dnswire.ReverseName(dnswire.MustIPv4("10.50.1.7")), dnswire.TypePTR).Marshal()
	ep.Send(n.DNSAddr(), q)
	clock.Advance(time.Second)
	if !got {
		t.Fatal("no response")
	}
	if rcode != dnswire.RCodeServFail {
		t.Fatalf("rcode = %v, want SERVFAIL", rcode)
	}
}

func TestDoubleStartRejected(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig())
	if err != nil {
		t.Fatal(err)
	}
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fabric.Config{})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	if err := n.Start(fab); err == nil {
		t.Fatal("double Start accepted")
	}
}
