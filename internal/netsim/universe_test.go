package netsim

import (
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// smallUniverse builds a reduced universe for tests.
func smallUniverse(t *testing.T) *Universe {
	t.Helper()
	u, err := BuildStudyUniverse(UniverseConfig{
		Seed:                  42,
		FillerSlash24s:        600,
		LeakyNetworks:         24,
		NonLeakyDynamic:       6,
		PeoplePerDynamicBlock: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestUniverseContainsNineSupplementalNetworks(t *testing.T) {
	u := smallUniverse(t)
	for _, name := range SupplementalNames() {
		n, ok := u.NetworkByName(name)
		if !ok {
			t.Fatalf("missing supplemental network %s", name)
		}
		if n.Name() != name {
			t.Fatalf("network name mismatch: %s", n.Name())
		}
	}
}

func TestSupplementalICMPProperties(t *testing.T) {
	u := smallUniverse(t)
	blocked := map[string]bool{
		"Academic-B": true, "Enterprise-B": true, "Enterprise-C": true,
	}
	for _, name := range SupplementalNames() {
		n, _ := u.NetworkByName(name)
		if got := n.Config().BlockICMP; got != blocked[name] {
			t.Errorf("%s BlockICMP = %v, want %v", name, got, blocked[name])
		}
	}
}

func TestUniverseNoAddressOverlap(t *testing.T) {
	u := smallUniverse(t)
	var prefixes []dnswire.Prefix
	for _, n := range u.Networks {
		prefixes = append(prefixes, n.Config().Announced)
	}
	for _, f := range u.Filler {
		prefixes = append(prefixes, f.Prefix)
	}
	for i := 0; i < len(prefixes); i++ {
		for j := i + 1; j < len(prefixes); j++ {
			if prefixes[i].Overlaps(prefixes[j]) {
				t.Fatalf("prefixes %v and %v overlap", prefixes[i], prefixes[j])
			}
		}
	}
}

func TestUniverseTypeMix(t *testing.T) {
	u, err := BuildStudyUniverse(UniverseConfig{
		Seed:                  1,
		FillerSlash24s:        1,
		LeakyNetworks:         100,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[NetworkType]int{}
	leaky := 0
	for _, n := range u.Networks {
		if strings.HasPrefix(n.Name(), "hashed-") {
			continue
		}
		counts[n.Config().Type]++
		leaky++
	}
	if leaky < 95 || leaky > 105 {
		t.Fatalf("leaky networks = %d, want ~100", leaky)
	}
	// Expect roughly the Figure 4 mix.
	if counts[Academic] < 55 || counts[Academic] > 70 {
		t.Fatalf("academic = %d, want ~62", counts[Academic])
	}
	if counts[ISP] < 10 || counts[ISP] > 20 {
		t.Fatalf("isp = %d, want ~15", counts[ISP])
	}
	if counts[Government] < 2 || counts[Government] > 5 {
		t.Fatalf("government = %d, want ~3", counts[Government])
	}
}

func TestFillerRecordsDeterministicAndCounted(t *testing.T) {
	u := smallUniverse(t)
	if len(u.Filler) == 0 {
		t.Fatal("no filler blocks")
	}
	f := u.Filler[0]
	var a, b []Record
	f.Records(func(r Record) { a = append(a, r) })
	f.Records(func(r Record) { b = append(b, r) })
	if len(a) != len(b) || len(a) != f.Count() {
		t.Fatalf("filler generation unstable: %d vs %d vs Count %d", len(a), len(b), f.Count())
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	for _, r := range a {
		if !f.Prefix.Contains(r.IP) {
			t.Fatalf("record %v outside filler prefix %v", r.IP, f.Prefix)
		}
	}
}

func TestFillerVanityContainsGivenNames(t *testing.T) {
	u := smallUniverse(t)
	sawName := false
	for _, f := range u.Filler {
		if f.Kind != FillerVanity {
			continue
		}
		f.Records(func(r Record) {
			if strings.Contains(string(r.HostName), ".home.") {
				sawName = true
			}
		})
		if sawName {
			break
		}
	}
	if !sawName {
		t.Fatal("no vanity given-name records in filler")
	}
}

func TestPlantedBrians(t *testing.T) {
	u := smallUniverse(t)
	n, _ := u.NetworkByName("Academic-A")
	loc := time.UTC

	// A regular Tuesday evening in November 2021: several Brian devices.
	at := time.Date(2021, 11, 9, 20, 0, 0, 0, loc)
	brianHosts := func(at time.Time) map[string]bool {
		hosts := map[string]bool{}
		n.RecordsAt(at, func(r Record) {
			h := string(r.HostName)
			if strings.HasPrefix(h, "brians-") || strings.HasPrefix(h, "brian-") {
				hosts[strings.SplitN(h, ".", 2)[0]] = true
			}
		})
		return hosts
	}
	evening := brianHosts(at)
	for _, want := range []string{"brians-air", "brians-ipad", "brians-phone"} {
		if !evening[want] {
			t.Errorf("missing %s on a regular evening (have %v)", want, evening)
		}
	}
	if evening["brians-galaxy-note9"] {
		t.Error("galaxy-note9 present before Cyber Monday")
	}

	// Thanksgiving Friday evening: air and phone are away, iPad remains.
	tg := time.Date(2021, 11, 26, 20, 0, 0, 0, loc)
	tgHosts := brianHosts(tg)
	if tgHosts["brians-air"] || tgHosts["brians-phone"] {
		t.Errorf("travelling devices present on Thanksgiving weekend: %v", tgHosts)
	}
	if !tgHosts["brians-ipad"] {
		t.Error("iPad (left behind) missing on Thanksgiving weekend")
	}

	// Cyber Monday evening: the Galaxy Note 9 appears.
	cm := time.Date(2021, 11, 29, 20, 0, 0, 0, loc)
	cmHosts := brianHosts(cm)
	if !cmHosts["brians-galaxy-note9"] {
		t.Errorf("galaxy-note9 missing on Cyber Monday evening: %v", cmHosts)
	}
}

func TestEducationHousingSplit(t *testing.T) {
	u := smallUniverse(t)
	n, _ := u.NetworkByName("Academic-C")
	edu, housing := EducationHousingSplit(n)
	if len(edu) == 0 || len(housing) == 0 {
		t.Fatalf("split: edu=%d housing=%d", len(edu), len(housing))
	}
	for _, e := range edu {
		for _, h := range housing {
			if e.Overlaps(h) {
				t.Fatalf("edu %v overlaps housing %v", e, h)
			}
		}
	}
}

func TestValidationCampusGroundTruth(t *testing.T) {
	n, truth, err := BuildValidationCampus(7, time.UTC)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth["dynamic"]) != 40 {
		t.Fatalf("dynamic prefixes = %d, want 40", len(truth["dynamic"]))
	}
	if len(truth["dhcp-static"]) != 83 {
		t.Fatalf("dhcp-static prefixes = %d, want 83", len(truth["dhcp-static"]))
	}
	if len(truth["static"]) != 123 {
		t.Fatalf("static prefixes = %d, want 123", len(truth["static"]))
	}
	if len(truth["empty"]) != 10 {
		t.Fatalf("empty prefixes = %d, want 10", len(truth["empty"]))
	}
	// The dhcp-static prefixes must be fully populated with fixed names.
	counts := n.CountRecordsAt(time.Date(2021, 1, 15, 13, 0, 0, 0, time.UTC))
	for _, p := range truth["dhcp-static"] {
		if counts[p] < 250 {
			t.Fatalf("dhcp-static %v has %d records, want full pool", p, counts[p])
		}
	}
	for _, p := range truth["empty"] {
		if counts[p] != 0 {
			t.Fatalf("empty prefix %v has %d records", p, counts[p])
		}
	}
}

func TestUniverseCountsVaryDayToDayOnlyInDynamicBlocks(t *testing.T) {
	u := smallUniverse(t)
	n, _ := u.NetworkByName("Academic-A")
	day1 := time.Date(2021, 2, 1, 13, 0, 0, 0, time.UTC) // Monday
	day2 := time.Date(2021, 2, 6, 13, 0, 0, 0, time.UTC) // Saturday
	c1 := n.CountRecordsAt(day1)
	c2 := n.CountRecordsAt(day2)
	edu, _ := EducationHousingSplit(n)
	changed := false
	for _, p := range edu {
		if c1[p] != c2[p] {
			changed = true
		}
		if c1[p] <= c2[p] {
			continue
		}
	}
	if !changed {
		t.Fatal("education blocks identical between Monday and Saturday")
	}
	// Weekday education use exceeds weekend use in aggregate.
	sum1, sum2 := 0, 0
	for _, p := range edu {
		sum1 += c1[p]
		sum2 += c2[p]
	}
	if sum1 <= sum2 {
		t.Fatalf("education weekday count %d <= weekend %d", sum1, sum2)
	}
}
