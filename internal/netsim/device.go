package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"rdnsprivacy/internal/dhcpwire"
)

// DeviceKind is a make/model category with a characteristic DHCP Host Name
// shape. The shapes mirror what the paper observed co-appearing with given
// names in the wild (Figure 3): "Brians-iPhone", "emmas-macbook-air",
// "DESKTOP-4F2K9Q", and so on.
type DeviceKind int

// Device kinds.
const (
	KindIPhone DeviceKind = iota
	KindIPad
	KindMacBookAir
	KindMacBookPro
	KindAndroidPhone
	KindGalaxyPhone
	KindGalaxyNote
	KindDellLaptop
	KindLenovoLaptop
	KindWindowsDesktop
	KindChromebook
	KindRoku
	KindGenericPhone
	numDeviceKinds
)

// String returns a mnemonic.
func (k DeviceKind) String() string {
	switch k {
	case KindIPhone:
		return "iphone"
	case KindIPad:
		return "ipad"
	case KindMacBookAir:
		return "macbook-air"
	case KindMacBookPro:
		return "macbook-pro"
	case KindAndroidPhone:
		return "android-phone"
	case KindGalaxyPhone:
		return "galaxy-phone"
	case KindGalaxyNote:
		return "galaxy-note"
	case KindDellLaptop:
		return "dell-laptop"
	case KindLenovoLaptop:
		return "lenovo-laptop"
	case KindWindowsDesktop:
		return "windows-desktop"
	case KindChromebook:
		return "chromebook"
	case KindRoku:
		return "roku"
	case KindGenericPhone:
		return "phone"
	default:
		return "unknown"
	}
}

// HostNameFor builds the DHCP Host Name a device of kind k announces when
// its owner is named owner ("" for unnamed devices). rng drives the
// owner-name inclusion and serial-suffix choices made once at device
// creation. The resulting strings deliberately look like real client
// device names, apostrophes and all; internal/ipam sanitizes them on
// publication.
func HostNameFor(k DeviceKind, owner string, rng *rand.Rand) string {
	serial := func(n int) string {
		const chars = "abcdefghijklmnopqrstuvwxyz0123456789"
		b := make([]byte, n)
		for i := range b {
			b[i] = chars[rng.Intn(len(chars))]
		}
		return string(b)
	}
	titled := titleCase(owner)
	switch k {
	case KindIPhone:
		if owner != "" {
			return titled + "'s iPhone"
		}
		return "iPhone"
	case KindIPad:
		if owner != "" {
			return titled + "'s iPad"
		}
		return "iPad"
	case KindMacBookAir:
		if owner != "" {
			if rng.Intn(2) == 0 {
				return titled + "s-Air"
			}
			return titled + "s-MacBook-Air"
		}
		return "MacBook-Air"
	case KindMacBookPro:
		if owner != "" {
			if rng.Intn(2) == 0 {
				return titled + "s-MBP"
			}
			return titled + "s-MacBook-Pro"
		}
		return "MacBook-Pro"
	case KindAndroidPhone:
		if owner != "" && rng.Intn(3) == 0 {
			return titled + "s-android"
		}
		return "android-" + serial(8)
	case KindGalaxyPhone:
		if owner != "" {
			return titled + "s-Galaxy-S" + fmt.Sprint(8+rng.Intn(4))
		}
		return "Galaxy-S" + fmt.Sprint(8+rng.Intn(4))
	case KindGalaxyNote:
		if owner != "" {
			return titled + "s-Galaxy-Note" + fmt.Sprint(8+rng.Intn(2))
		}
		return "Galaxy-Note" + fmt.Sprint(8+rng.Intn(2))
	case KindDellLaptop:
		if owner != "" && rng.Intn(2) == 0 {
			return titled + "-dell-laptop"
		}
		return "DELL-" + serial(6)
	case KindLenovoLaptop:
		if owner != "" && rng.Intn(2) == 0 {
			return titled + "s-lenovo"
		}
		return "LENOVO-" + serial(6)
	case KindWindowsDesktop:
		if owner != "" && rng.Intn(4) == 0 {
			return titled + "-desktop"
		}
		return "DESKTOP-" + serial(6)
	case KindChromebook:
		if owner != "" && rng.Intn(2) == 0 {
			return titled + "s-chromebook"
		}
		return "chrome-" + serial(8)
	case KindRoku:
		return "roku-" + serial(8)
	case KindGenericPhone:
		if owner != "" {
			return titled + "s-phone"
		}
		return "phone-" + serial(6)
	}
	return "device-" + serial(6)
}

// titleCase uppercases the first letter of an ASCII name.
func titleCase(s string) string {
	if s == "" {
		return ""
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}

// Device is a simulated client device.
type Device struct {
	// ID is unique within the universe.
	ID uint64
	// Owner is the owner's given name, "" for unowned devices.
	Owner string
	// Kind is the device category.
	Kind DeviceKind
	// HostName is the DHCP Host Name the device announces.
	HostName string
	// MAC is the hardware address.
	MAC dhcpwire.HardwareAddr
	// SendRelease controls clean leaves (DHCPRELEASE on departure).
	SendRelease bool
	// Schedule drives presence.
	Schedule Scheduler
}

// PresentAt reports whether the device is on the network at t (local time),
// given the occupancy factor for that day. Sessions may cross midnight, so
// the previous day's schedule is consulted for spill-over (a student online
// until 02:30 is present on the new day under the old day's session).
func (d *Device) PresentAt(t time.Time, occupancy float64) bool {
	date := midnight(t)
	off := t.Sub(date)
	for _, s := range d.Schedule.SessionsOn(date, occupancy) {
		if off >= s.Start && off < s.End {
			return true
		}
	}
	prev := date.AddDate(0, 0, -1)
	offPrev := off + 24*time.Hour
	for _, s := range d.Schedule.SessionsOn(prev, occupancy) {
		if offPrev >= s.Start && offPrev < s.End {
			return true
		}
	}
	return false
}

// SessionsOn exposes the device's sessions for a date.
func (d *Device) SessionsOn(date time.Time, occupancy float64) []Session {
	return d.Schedule.SessionsOn(date, occupancy)
}

// midnight truncates t to local midnight in t's own location.
func midnight(t time.Time) time.Time {
	y, m, d := t.Date()
	return time.Date(y, m, d, 0, 0, 0, 0, t.Location())
}

// macForID derives a stable MAC address from a device ID.
func macForID(id uint64) dhcpwire.HardwareAddr {
	h := hash64(id, 0xAC)
	return dhcpwire.HardwareAddr{
		0x02, // locally administered
		byte(h >> 32), byte(h >> 24), byte(h >> 16), byte(h >> 8), byte(h),
	}
}
