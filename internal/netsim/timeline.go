package netsim

import (
	"sort"
	"time"
)

// Occupancy scales the probability that devices of each archetype show up
// on a given day. 1 is normal; 0 empties the building; values above 1 are
// meaningful for Resident (more time spent in housing during lockdowns).
type Occupancy map[Archetype]float64

// Factor returns the factor for an archetype, defaulting to 1.
func (o Occupancy) Factor(a Archetype) float64 {
	if o == nil {
		return 1
	}
	if f, ok := o[a]; ok {
		return f
	}
	return 1
}

// Phase is one period of a Timeline with a fixed occupancy regime.
type Phase struct {
	// Start is the first day (local midnight) the phase applies.
	Start time.Time
	// Label describes the phase ("lockdown", "reopening").
	Label string
	// Occupancy scales presence per archetype during the phase.
	Occupancy Occupancy
}

// Timeline maps dates to occupancy regimes. It models the COVID-19 phases
// the paper reads out of rDNS entry counts (Section 7.2): lockdowns empty
// education and office buildings, students study from campus housing, and
// reopenings bring sharp recoveries.
type Timeline struct {
	phases []Phase
}

// NewTimeline builds a timeline; phases are sorted by start date.
func NewTimeline(phases ...Phase) *Timeline {
	t := &Timeline{phases: append([]Phase(nil), phases...)}
	sort.SliceStable(t.phases, func(i, j int) bool {
		return t.phases[i].Start.Before(t.phases[j].Start)
	})
	return t
}

// At returns the occupancy regime for a date. Dates before the first phase
// get the zero regime (all factors 1).
func (t *Timeline) At(date time.Time) Occupancy {
	if t == nil {
		return nil
	}
	var cur Occupancy
	for _, p := range t.phases {
		if p.Start.After(date) {
			break
		}
		cur = p.Occupancy
	}
	return cur
}

// PhaseLabel returns the label of the phase active at date, "" if none.
func (t *Timeline) PhaseLabel(date time.Time) string {
	if t == nil {
		return ""
	}
	label := ""
	for _, p := range t.phases {
		if p.Start.After(date) {
			break
		}
		label = p.Label
	}
	return label
}

// Calendar marks days on which an archetype's presence is scaled (holiday
// breaks, long weekends). Factors multiply with the timeline's.
type Calendar struct {
	// Ranges lists date ranges with occupancy overrides.
	ranges []calendarRange
}

type calendarRange struct {
	from, to time.Time // inclusive from, exclusive to
	occ      Occupancy
	label    string
}

// AddRange marks [from, to) with an occupancy regime.
func (c *Calendar) AddRange(from, to time.Time, label string, occ Occupancy) {
	c.ranges = append(c.ranges, calendarRange{from: from, to: to, occ: occ, label: label})
}

// FactorOn returns the combined calendar factor for an archetype on date.
func (c *Calendar) FactorOn(date time.Time, a Archetype) float64 {
	if c == nil {
		return 1
	}
	f := 1.0
	for _, r := range c.ranges {
		if !date.Before(r.from) && date.Before(r.to) {
			f *= r.occ.Factor(a)
		}
	}
	return f
}

// LabelsOn returns the labels of calendar ranges covering date.
func (c *Calendar) LabelsOn(date time.Time) []string {
	if c == nil {
		return nil
	}
	var out []string
	for _, r := range c.ranges {
		if !date.Before(r.from) && date.Before(r.to) {
			out = append(out, r.label)
		}
	}
	return out
}

// date is shorthand for a local-midnight time.
func date(loc *time.Location, y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, loc)
}

// USAcademicCalendar builds the US campus calendar for the study period:
// Thanksgiving breaks (students travel home Thursday through Sunday),
// winter breaks, and fall breaks. The paper's Figure 8 hinges on the 2021
// Thanksgiving weekend (Nov 25-28) and Cyber Monday (Nov 29).
func USAcademicCalendar(loc *time.Location) *Calendar {
	c := &Calendar{}
	away := Occupancy{Student: 0.15, Resident: 0.2, Staff: 0.15, Employee: 0.3}
	// Thanksgiving: fourth Thursday of November through Sunday.
	for _, y := range []int{2019, 2020, 2021} {
		th := nthWeekday(loc, y, time.November, time.Thursday, 4)
		c.AddRange(th, th.AddDate(0, 0, 4), "thanksgiving", away)
	}
	// Winter break: Dec 20 - Jan 5.
	for _, y := range []int{2019, 2020, 2021} {
		c.AddRange(date(loc, y, time.December, 20), date(loc, y+1, time.January, 5), "winter-break", away)
	}
	// Fall break: a long weekend mid-October.
	for _, y := range []int{2019, 2020, 2021} {
		c.AddRange(date(loc, y, time.October, 14), date(loc, y, time.October, 17), "fall-break", away)
	}
	return c
}

// EUAcademicCalendar builds the European campus calendar: winter break, a
// fall holiday week at the end of October, and Carnaval in February (the
// local Catholic holiday the paper sees in Rapid7 data for Academic-C).
func EUAcademicCalendar(loc *time.Location) *Calendar {
	c := &Calendar{}
	away := Occupancy{Student: 0.2, Resident: 0.25, Staff: 0.2, Employee: 0.35}
	for _, y := range []int{2019, 2020, 2021} {
		c.AddRange(date(loc, y, time.December, 21), date(loc, y+1, time.January, 4), "christmas-break", away)
		c.AddRange(date(loc, y, time.October, 26), date(loc, y, time.November, 2), "fall-holiday-week", away)
	}
	// Carnaval: the week before Lent; pin to late February for the
	// study years (2020-02-23, 2021-02-14 are the relevant Sundays).
	c.AddRange(date(loc, 2020, time.February, 22), date(loc, 2020, time.February, 27), "carnaval", away)
	c.AddRange(date(loc, 2021, time.February, 13), date(loc, 2021, time.February, 18), "carnaval", away)
	return c
}

// nthWeekday returns the n-th weekday of a month (n starting at 1).
func nthWeekday(loc *time.Location, year int, month time.Month, wd time.Weekday, n int) time.Time {
	t := date(loc, year, month, 1)
	count := 0
	for {
		if t.Weekday() == wd {
			count++
			if count == n {
				return t
			}
		}
		t = t.AddDate(0, 0, 1)
	}
}

// USCampusCOVIDTimeline models a US campus's pandemic response with
// risk-level announcements that produce the sharp steps of Figure 9:
// on-site presence collapses in March 2020, student housing fills (students
// study from their rooms), and reopenings step presence back up.
func USCampusCOVIDTimeline(loc *time.Location) *Timeline {
	return NewTimeline(
		Phase{Start: date(loc, 2019, time.January, 1), Label: "normal", Occupancy: nil},
		Phase{Start: date(loc, 2020, time.March, 16), Label: "campus-closure", Occupancy: Occupancy{
			Staff: 0.18, Student: 0.15, Employee: 0.2, Resident: 1.15,
		}},
		Phase{Start: date(loc, 2020, time.August, 24), Label: "hybrid-fall", Occupancy: Occupancy{
			Staff: 0.55, Student: 0.5, Employee: 0.5, Resident: 1.05,
		}},
		Phase{Start: date(loc, 2020, time.November, 20), Label: "high-risk-advisory", Occupancy: Occupancy{
			Staff: 0.3, Student: 0.25, Employee: 0.3, Resident: 1.1,
		}},
		Phase{Start: date(loc, 2021, time.February, 1), Label: "moderate-risk", Occupancy: Occupancy{
			Staff: 0.5, Student: 0.45, Employee: 0.5, Resident: 1.05,
		}},
		Phase{Start: date(loc, 2021, time.May, 15), Label: "low-risk", Occupancy: Occupancy{
			Staff: 0.75, Student: 0.7, Employee: 0.75, Resident: 1.0,
		}},
		Phase{Start: date(loc, 2021, time.August, 23), Label: "reopened", Occupancy: Occupancy{
			Staff: 0.95, Student: 0.95, Employee: 0.95, Resident: 1.0,
		}},
	)
}

// EUCampusCOVIDTimeline models the home institution (Academic-C): a hard
// March 2020 lockdown producing the education/housing crossover of
// Figure 10, partial recovery, and near-normal levels by September 2021.
func EUCampusCOVIDTimeline(loc *time.Location) *Timeline {
	return NewTimeline(
		Phase{Start: date(loc, 2019, time.January, 1), Label: "normal", Occupancy: nil},
		Phase{Start: date(loc, 2020, time.March, 13), Label: "lockdown", Occupancy: Occupancy{
			Staff: 0.12, Student: 0.1, Employee: 0.15, Resident: 1.15,
		}},
		Phase{Start: date(loc, 2020, time.September, 1), Label: "partial-reopening", Occupancy: Occupancy{
			Staff: 0.45, Student: 0.4, Employee: 0.4, Resident: 1.05,
		}},
		Phase{Start: date(loc, 2020, time.December, 15), Label: "second-lockdown", Occupancy: Occupancy{
			Staff: 0.15, Student: 0.12, Employee: 0.18, Resident: 1.1,
		}},
		Phase{Start: date(loc, 2021, time.April, 28), Label: "easing", Occupancy: Occupancy{
			Staff: 0.5, Student: 0.45, Employee: 0.5, Resident: 1.05,
		}},
		Phase{Start: date(loc, 2021, time.September, 6), Label: "near-normal", Occupancy: Occupancy{
			Staff: 0.92, Student: 0.95, Employee: 0.9, Resident: 1.0,
		}},
	)
}

// EnterpriseCOVIDTimeline models an enterprise whose work-from-home mandate
// lands in March/April 2021 (the paper's Enterprise-B and -C show their
// sharp drops then), with partial return around May 2021.
func EnterpriseCOVIDTimeline(loc *time.Location, partialRecovery bool) *Timeline {
	phases := []Phase{
		{Start: date(loc, 2019, time.January, 1), Label: "normal", Occupancy: nil},
		{Start: date(loc, 2020, time.March, 20), Label: "first-wfh", Occupancy: Occupancy{
			Employee: 0.55, Staff: 0.55,
		}},
		{Start: date(loc, 2020, time.September, 10), Label: "partial-return", Occupancy: Occupancy{
			Employee: 0.8, Staff: 0.8,
		}},
		{Start: date(loc, 2021, time.March, 15), Label: "wfh-mandate", Occupancy: Occupancy{
			Employee: 0.25, Staff: 0.25,
		}},
	}
	if partialRecovery {
		phases = append(phases, Phase{
			Start: date(loc, 2021, time.May, 10), Label: "loosened", Occupancy: Occupancy{
				Employee: 0.6, Staff: 0.6,
			},
		})
	}
	return NewTimeline(phases...)
}
