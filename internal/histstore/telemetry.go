package histstore

import "rdnsprivacy/internal/telemetry"

// Metric names the store registers when a telemetry sink is attached (see
// docs/storage.md and docs/telemetry.md).
const (
	// MetricAppends counts appended snapshots.
	MetricAppends = "hist_appends_total"
	// MetricAppendBytes counts bytes written to the log.
	MetricAppendBytes = "hist_append_bytes_total"
	// MetricBaseFrames counts base block frames written — every one past
	// a block's first is a delta-chain compaction.
	MetricBaseFrames = "hist_base_frames_total"
	// MetricDeltaFrames counts delta block frames written.
	MetricDeltaFrames = "hist_delta_frames_total"
	// MetricReconstructions counts block-state reconstructions that had
	// to read and decode frames (cache misses do; hits do not).
	MetricReconstructions = "hist_reconstructions_total"
	// MetricCacheHits counts reconstruction-cache hits.
	MetricCacheHits = "hist_cache_hits_total"
	// MetricCacheMisses counts reconstruction-cache misses.
	MetricCacheMisses = "hist_cache_misses_total"
	// MetricSnapshots gauges the number of snapshots in the store.
	MetricSnapshots = "hist_snapshots"
	// MetricBlocks gauges the number of indexed /24 blocks.
	MetricBlocks = "hist_blocks"
	// MetricBytes gauges the log file size.
	MetricBytes = "hist_bytes"
	// MetricCacheEntries gauges the reconstruction cache's occupancy.
	MetricCacheEntries = "hist_cache_entries"
	// MetricTierLoads counts cold segment indexes loaded into the hot
	// tier (a segment's first query after open, or after an eviction).
	MetricTierLoads = "hist_tier_loads_total"
	// MetricTierEvictions counts hot segments evicted by the tier's LRU.
	MetricTierEvictions = "hist_tier_evictions_total"
	// MetricTierHot gauges the number of segments currently hot.
	MetricTierHot = "hist_tier_hot_segments"
	// MetricSegments gauges the total sealed segments across writers.
	MetricSegments = "hist_tier_segments"
	// MetricSealedBytes gauges the bytes held in sealed segments.
	MetricSealedBytes = "hist_sealed_bytes"
	// MetricCompactions counts completed compaction runs.
	MetricCompactions = "hist_compactions_total"
	// MetricCompactSealed counts snapshots sealed into segments.
	MetricCompactSealed = "hist_compact_sealed_snapshots_total"
	// MetricCompactReclaimed counts bytes reclaimed by compaction (tail
	// bytes rewritten minus the segment bytes that replaced them).
	MetricCompactReclaimed = "hist_compact_reclaimed_bytes_total"
)

// storeMetrics holds the pre-resolved instrument handles. With no sink
// configured the handles stay nil and every call site no-ops through the
// telemetry package's nil-receiver contract.
type storeMetrics struct {
	appends         *telemetry.Counter
	appendBytes     *telemetry.Counter
	baseFrames      *telemetry.Counter
	deltaFrames     *telemetry.Counter
	reconstructions *telemetry.Counter
	cacheHits       *telemetry.Counter
	cacheMisses     *telemetry.Counter
	tierLoads       *telemetry.Counter
	tierEvictions   *telemetry.Counter
	compactions     *telemetry.Counter
	compactSealed   *telemetry.Counter
	compactReclaim  *telemetry.Counter
	snapshots       *telemetry.Gauge
	blocks          *telemetry.Gauge
	bytes           *telemetry.Gauge
	cacheEntries    *telemetry.Gauge
	tierHot         *telemetry.Gauge
	segments        *telemetry.Gauge
	sealedBytes     *telemetry.Gauge
}

// newStoreMetrics resolves the instruments from sink (nil sink yields
// nil handles, so instrumentation costs nothing).
func newStoreMetrics(sink telemetry.Sink) *storeMetrics {
	if sink == nil {
		return &storeMetrics{}
	}
	return &storeMetrics{
		appends:         sink.Counter(MetricAppends),
		appendBytes:     sink.Counter(MetricAppendBytes),
		baseFrames:      sink.Counter(MetricBaseFrames),
		deltaFrames:     sink.Counter(MetricDeltaFrames),
		reconstructions: sink.Counter(MetricReconstructions),
		cacheHits:       sink.Counter(MetricCacheHits),
		cacheMisses:     sink.Counter(MetricCacheMisses),
		tierLoads:       sink.Counter(MetricTierLoads),
		tierEvictions:   sink.Counter(MetricTierEvictions),
		compactions:     sink.Counter(MetricCompactions),
		compactSealed:   sink.Counter(MetricCompactSealed),
		compactReclaim:  sink.Counter(MetricCompactReclaimed),
		snapshots:       sink.Gauge(MetricSnapshots),
		blocks:          sink.Gauge(MetricBlocks),
		bytes:           sink.Gauge(MetricBytes),
		cacheEntries:    sink.Gauge(MetricCacheEntries),
		tierHot:         sink.Gauge(MetricTierHot),
		segments:        sink.Gauge(MetricSegments),
		sealedBytes:     sink.Gauge(MetricSealedBytes),
	}
}
