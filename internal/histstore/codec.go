package histstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// On-disk layout. The file opens with the 8-byte magic "RDNSHST1"
// followed by a uvarint base interval, then a sequence of CRC-framed
// frames:
//
//	kind    1 byte  ('S' snapshot header, 'B' base block, 'L' delta block)
//	length  uvarint (body length in bytes)
//	body    length bytes
//	crc     4 bytes (IEEE CRC32 over kind + body, little-endian)
//
// Snapshot header body:
//
//	snap    uvarint (snapshot index, consecutive from 0)
//	unix    varint  (snapshot instant, Unix seconds UTC)
//
// Base block body (the full record set of one /24 at one snapshot):
//
//	snap    uvarint
//	prefix  3 bytes (the /24's first three octets)
//	count   uvarint (number of entries, <= 256)
//	entries count times, sorted by last octet ascending:
//	  octet  uvarint (first entry: the octet; later: gap from previous, >= 1)
//	  name   prefix-compressed against the previously written name:
//	    shared uvarint (bytes shared with the previous name)
//	    more   uvarint (suffix length)
//	    suffix more bytes
//
// Delta block body (the changes of one /24 between two snapshots):
//
//	snap    uvarint
//	prefix  3 bytes
//	count   uvarint (<= 256; at most one change per address per snapshot)
//	entries count times, sorted by last octet ascending:
//	  kind   1 byte (0 added, 1 removed, 2 changed)
//	  octet  gap scheme as above
//	  names  removed: old; added: new; changed: old then new — each
//	         prefix-compressed against the previously written name
//
// Every multi-byte integer is an unsigned varint except the snapshot
// instant (signed varint). Decoding is strict: trailing bytes, counts
// past 256, octet overflow, name overflow past 255 bytes, and CRC
// mismatches are all errors, never panics — see FuzzDecodeBlock.

// Frame kinds.
const (
	frameSnap  = byte('S')
	frameBase  = byte('B')
	frameDelta = byte('L')
)

// fileMagic opens every history file, followed by the format version.
var fileMagic = [8]byte{'R', 'D', 'N', 'S', 'H', 'S', 'T', '1'}

// maxBlockEntries bounds the entry count of any block frame: a /24 holds
// 256 addresses and a snapshot carries at most one change per address.
const maxBlockEntries = 256

// maxNameBytes bounds a stored presentation-form name (RFC 1035 allows
// 255 octets on the wire; the presentation form stays within that here).
const maxNameBytes = 255

// baseEntry is one record of a base block, in last-octet order.
type baseEntry struct {
	octet byte
	name  dnswire.Name
}

// deltaEntry is one change of a delta block, in last-octet order.
type deltaEntry struct {
	kind  scanengine.ChangeKind
	octet byte
	old   dnswire.Name // RecordRemoved, RecordChanged
	new   dnswire.Name // RecordAdded, RecordChanged
}

// frame is one decoded frame.
type frame struct {
	kind byte
	body []byte
}

// corruptError reports a malformed or damaged frame. It wraps no cause:
// the codec is the bottom of the stack.
type corruptError string

func (e corruptError) Error() string { return "histstore: " + string(e) }

func corruptf(format string, args ...any) error {
	return corruptError(fmt.Sprintf(format, args...))
}

// appendFrame frames a body and appends the encoded frame to dst.
func appendFrame(dst []byte, kind byte, body []byte) []byte {
	dst = append(dst, kind)
	dst = binary.AppendUvarint(dst, uint64(len(body)))
	dst = append(dst, body...)
	crc := crc32.ChecksumIEEE(append([]byte{kind}, body...))
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// decodeFrame decodes one frame from the front of data and returns it
// with the remaining bytes. io.ErrUnexpectedEOF-like truncation is
// reported as errTruncated so Open can distinguish a torn tail append
// from mid-file corruption.
var errTruncated = corruptError("truncated frame")

func decodeFrame(data []byte) (frame, []byte, error) {
	if len(data) == 0 {
		return frame{}, nil, errTruncated
	}
	kind := data[0]
	if kind != frameSnap && kind != frameBase && kind != frameDelta {
		return frame{}, nil, corruptf("unknown frame kind 0x%02x", kind)
	}
	rest := data[1:]
	n, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return frame{}, nil, errTruncated
	}
	rest = rest[sz:]
	if n > uint64(len(rest)) {
		return frame{}, nil, errTruncated
	}
	body, rest := rest[:n], rest[n:]
	if len(rest) < 4 {
		return frame{}, nil, errTruncated
	}
	want := binary.LittleEndian.Uint32(rest[:4])
	got := crc32.ChecksumIEEE(append([]byte{kind}, body...))
	if got != want {
		return frame{}, nil, corruptf("frame CRC mismatch: stored %08x, computed %08x", want, got)
	}
	return frame{kind: kind, body: body}, rest[4:], nil
}

// byteReader walks a frame body with bounds checking.
type byteReader struct {
	b []byte
}

func (r *byteReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, corruptError("bad uvarint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *byteReader) varint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, corruptError("bad varint")
	}
	r.b = r.b[n:]
	return v, nil
}

func (r *byteReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, corruptError("truncated body")
	}
	b := r.b[0]
	r.b = r.b[1:]
	return b, nil
}

func (r *byteReader) bytes(n int) ([]byte, error) {
	if n < 0 || n > len(r.b) {
		return nil, corruptError("truncated body")
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *byteReader) done() error {
	if len(r.b) != 0 {
		return corruptf("%d trailing bytes in frame body", len(r.b))
	}
	return nil
}

// appendName appends a prefix-compressed name and returns the new prev.
func appendName(dst []byte, prev, name dnswire.Name) ([]byte, dnswire.Name) {
	shared := 0
	for shared < len(prev) && shared < len(name) && prev[shared] == name[shared] {
		shared++
	}
	dst = binary.AppendUvarint(dst, uint64(shared))
	dst = binary.AppendUvarint(dst, uint64(len(name)-shared))
	dst = append(dst, name[shared:]...)
	return dst, name
}

// readName reads a prefix-compressed name and returns it (also the new
// prev for the next entry).
func readName(r *byteReader, prev dnswire.Name) (dnswire.Name, error) {
	shared, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if shared > uint64(len(prev)) {
		return "", corruptf("name shares %d bytes, previous has %d", shared, len(prev))
	}
	more, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if shared+more > maxNameBytes {
		return "", corruptf("name of %d bytes exceeds %d", shared+more, maxNameBytes)
	}
	suffix, err := r.bytes(int(more))
	if err != nil {
		return "", err
	}
	return prev[:shared] + dnswire.Name(suffix), nil
}

// readOctet reads a gap-encoded last octet. first indicates the first
// entry of the block (absolute octet); otherwise the value is the gap
// from prev and must be >= 1.
func readOctet(r *byteReader, first bool, prev byte) (byte, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if first {
		if v > 255 {
			return 0, corruptf("octet %d out of range", v)
		}
		return byte(v), nil
	}
	if v == 0 {
		return 0, corruptError("zero octet gap")
	}
	next := uint64(prev) + v
	if next > 255 {
		return 0, corruptf("octet %d out of range", next)
	}
	return byte(next), nil
}

// encodeSnapBody encodes a snapshot header body.
func encodeSnapBody(snap int, unixSec int64) []byte {
	body := binary.AppendUvarint(nil, uint64(snap))
	return binary.AppendVarint(body, unixSec)
}

// decodeSnapBody decodes a snapshot header body.
func decodeSnapBody(body []byte) (snap int, unixSec int64, err error) {
	r := &byteReader{b: body}
	s, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	u, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	if err := r.done(); err != nil {
		return 0, 0, err
	}
	return int(s), u, nil
}

// encodeBaseBody encodes a base block body. Entries must be sorted by
// octet ascending with no duplicates.
func encodeBaseBody(snap int, p dnswire.Prefix, entries []baseEntry) []byte {
	body := binary.AppendUvarint(nil, uint64(snap))
	body = append(body, p.Addr[0], p.Addr[1], p.Addr[2])
	body = binary.AppendUvarint(body, uint64(len(entries)))
	var prevName dnswire.Name
	for i, e := range entries {
		if i == 0 {
			body = binary.AppendUvarint(body, uint64(e.octet))
		} else {
			body = binary.AppendUvarint(body, uint64(e.octet)-uint64(entries[i-1].octet))
		}
		body, prevName = appendName(body, prevName, e.name)
	}
	return body
}

// decodeBaseBody decodes a base block body.
func decodeBaseBody(body []byte) (snap int, p dnswire.Prefix, entries []baseEntry, err error) {
	r := &byteReader{b: body}
	s, err := r.uvarint()
	if err != nil {
		return 0, p, nil, err
	}
	hi, err := r.bytes(3)
	if err != nil {
		return 0, p, nil, err
	}
	p = dnswire.Prefix{Addr: dnswire.IPv4{hi[0], hi[1], hi[2], 0}, Bits: 24}
	count, err := r.uvarint()
	if err != nil {
		return 0, p, nil, err
	}
	if count > maxBlockEntries {
		return 0, p, nil, corruptf("base block claims %d entries", count)
	}
	entries = make([]baseEntry, 0, count)
	var prevOctet byte
	var prevName dnswire.Name
	for i := uint64(0); i < count; i++ {
		octet, err := readOctet(r, i == 0, prevOctet)
		if err != nil {
			return 0, p, nil, err
		}
		name, err := readName(r, prevName)
		if err != nil {
			return 0, p, nil, err
		}
		entries = append(entries, baseEntry{octet: octet, name: name})
		prevOctet, prevName = octet, name
	}
	if err := r.done(); err != nil {
		return 0, p, nil, err
	}
	return int(s), p, entries, nil
}

// encodeDeltaBody encodes a delta block body. Entries must be sorted by
// octet ascending with no duplicates.
func encodeDeltaBody(snap int, p dnswire.Prefix, entries []deltaEntry) []byte {
	body := binary.AppendUvarint(nil, uint64(snap))
	body = append(body, p.Addr[0], p.Addr[1], p.Addr[2])
	body = binary.AppendUvarint(body, uint64(len(entries)))
	var prevName dnswire.Name
	for i, e := range entries {
		body = append(body, byte(e.kind))
		if i == 0 {
			body = binary.AppendUvarint(body, uint64(e.octet))
		} else {
			body = binary.AppendUvarint(body, uint64(e.octet)-uint64(entries[i-1].octet))
		}
		if e.kind == scanengine.RecordRemoved || e.kind == scanengine.RecordChanged {
			body, prevName = appendName(body, prevName, e.old)
		}
		if e.kind == scanengine.RecordAdded || e.kind == scanengine.RecordChanged {
			body, prevName = appendName(body, prevName, e.new)
		}
	}
	return body
}

// decodeDeltaBody decodes a delta block body.
func decodeDeltaBody(body []byte) (snap int, p dnswire.Prefix, entries []deltaEntry, err error) {
	r := &byteReader{b: body}
	s, err := r.uvarint()
	if err != nil {
		return 0, p, nil, err
	}
	hi, err := r.bytes(3)
	if err != nil {
		return 0, p, nil, err
	}
	p = dnswire.Prefix{Addr: dnswire.IPv4{hi[0], hi[1], hi[2], 0}, Bits: 24}
	count, err := r.uvarint()
	if err != nil {
		return 0, p, nil, err
	}
	if count > maxBlockEntries {
		return 0, p, nil, corruptf("delta block claims %d entries", count)
	}
	entries = make([]deltaEntry, 0, count)
	var prevOctet byte
	var prevName dnswire.Name
	for i := uint64(0); i < count; i++ {
		kindByte, err := r.byte()
		if err != nil {
			return 0, p, nil, err
		}
		kind := scanengine.ChangeKind(kindByte)
		if kind != scanengine.RecordAdded && kind != scanengine.RecordRemoved && kind != scanengine.RecordChanged {
			return 0, p, nil, corruptf("unknown change kind %d", kindByte)
		}
		octet, err := readOctet(r, i == 0, prevOctet)
		if err != nil {
			return 0, p, nil, err
		}
		e := deltaEntry{kind: kind, octet: octet}
		if kind == scanengine.RecordRemoved || kind == scanengine.RecordChanged {
			e.old, err = readName(r, prevName)
			if err != nil {
				return 0, p, nil, err
			}
			prevName = e.old
		}
		if kind == scanengine.RecordAdded || kind == scanengine.RecordChanged {
			e.new, err = readName(r, prevName)
			if err != nil {
				return 0, p, nil, err
			}
			prevName = e.new
		}
		entries = append(entries, e)
		prevOctet = octet
	}
	if err := r.done(); err != nil {
		return 0, p, nil, err
	}
	return int(s), p, entries, nil
}
