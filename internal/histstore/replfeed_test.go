package histstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// feedFixture builds a store with one sealed segment and a live tail:
// the file-set shape the replication feed must describe and serve.
func feedFixture(t *testing.T) (*Store, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "hist")
	st, err := Open(dir, WithCache(64), WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c := genCampaign(11, 9)
	c.append(t, st)
	if _, err := st.Compact(context.Background(), CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	c2 := genCampaign(12, 12)
	for i := 9; i < 12; i++ {
		if err := st.Append(c2.times[i], c2.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	return st, dir
}

func TestFeedManifestShape(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	if fm.BaseInterval != 4 || fm.Snapshots != 12 {
		t.Fatalf("manifest shape: %+v", fm)
	}
	if !fm.LastSnap.Equal(st.Times()[11]) {
		t.Fatalf("last snap %v, want %v", fm.LastSnap, st.Times()[11])
	}
	if len(fm.Writers) != 1 {
		t.Fatalf("writers: %+v", fm.Writers)
	}
	w := fm.Writers[0]
	if w.ID != st.WriterID() || len(w.Segments) != 1 {
		t.Fatalf("writer: %+v", w)
	}
	g := w.Segments[0]
	if g.First != 0 || g.Count != 9 || g.CRC == 0 {
		t.Fatalf("segment: %+v", g)
	}
	// Sizes must match the on-disk files, and TotalBytes their sum.
	segFi, err := os.Stat(filepath.Join(dir, g.File))
	if err != nil {
		t.Fatal(err)
	}
	tailFi, err := os.Stat(filepath.Join(dir, w.TailFile))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size != segFi.Size() || w.TailSize != tailFi.Size() {
		t.Fatalf("sizes diverge from disk: seg %d/%d tail %d/%d", g.Size, segFi.Size(), w.TailSize, tailFi.Size())
	}
	if fm.TotalBytes != g.Size+w.TailSize {
		t.Fatalf("total %d, want %d", fm.TotalBytes, g.Size+w.TailSize)
	}
}

func TestFeedReadSegment(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	g := fm.Writers[0].Segments[0]
	want, err := os.ReadFile(filepath.Join(dir, g.File))
	if err != nil {
		t.Fatal(err)
	}

	// A chunked walk reassembles the exact file bytes.
	var got []byte
	for off := int64(0); off < g.Size; {
		chunk, total, err := st.FeedReadSegment(g.File, off, 777)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if total != g.Size {
			t.Fatalf("total %d, want %d", total, g.Size)
		}
		got = append(got, chunk...)
		off += int64(len(chunk))
	}
	if string(got) != string(want) {
		t.Fatal("chunked segment read diverges from the file")
	}

	// max<=0 means "the rest".
	all, _, err := st.FeedReadSegment(g.File, 0, 0)
	if err != nil || len(all) != int(g.Size) {
		t.Fatalf("full read: %d bytes, err %v", len(all), err)
	}

	if _, _, err := st.FeedReadSegment("no-such-file", 0, 10); !errors.Is(err, ErrFeedUnknownFile) {
		t.Fatalf("unknown file: %v", err)
	}
	// Names are matched against the manifest, never joined into paths.
	if _, _, err := st.FeedReadSegment("../"+g.File, 0, 10); !errors.Is(err, ErrFeedUnknownFile) {
		t.Fatalf("traversal name: %v", err)
	}
	if _, _, err := st.FeedReadSegment(g.File, -1, 10); !errors.Is(err, ErrFeedBadRange) {
		t.Fatalf("negative offset: %v", err)
	}
	if _, _, err := st.FeedReadSegment(g.File, g.Size+1, 10); !errors.Is(err, ErrFeedBadRange) {
		t.Fatalf("offset past end: %v", err)
	}
}

func TestFeedReadTail(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	w := fm.Writers[0]
	want, err := os.ReadFile(filepath.Join(dir, w.TailFile))
	if err != nil {
		t.Fatal(err)
	}

	var got []byte
	for off := int64(0); off < w.TailSize; {
		chunk, info, err := st.FeedReadTail(w.ID, w.TailFile, off, 500)
		if err != nil {
			t.Fatalf("read at %d: %v", off, err)
		}
		if info.File != w.TailFile || info.Size != w.TailSize || info.First != w.TailFirst {
			t.Fatalf("tail info %+v, want %+v", info, w)
		}
		got = append(got, chunk...)
		off += int64(len(chunk))
	}
	if string(got) != string(want) {
		t.Fatal("chunked tail read diverges from the file")
	}

	// A caught-up read at the committed size is empty, not an error.
	empty, _, err := st.FeedReadTail(w.ID, w.TailFile, w.TailSize, 100)
	if err != nil || len(empty) != 0 {
		t.Fatalf("caught-up read: %d bytes, err %v", len(empty), err)
	}

	if _, _, err := st.FeedReadTail("nobody", "", 0, 10); !errors.Is(err, ErrFeedUnknownFile) {
		t.Fatalf("unknown writer: %v", err)
	}
	if _, _, err := st.FeedReadTail(w.ID, w.TailFile, w.TailSize+1, 10); !errors.Is(err, ErrFeedBadRange) {
		t.Fatalf("offset past committed: %v", err)
	}

	// Compaction swaps the tail: a read pinned to the old file must fail
	// with ErrFeedTailChanged and carry the successor's identity.
	// MinSeal 1 forces the seal despite the short (3-snapshot) tail.
	if _, err := st.Compact(context.Background(), CompactOptions{MinSeal: 1}); err != nil {
		t.Fatal(err)
	}
	_, info, err := st.FeedReadTail(w.ID, w.TailFile, 0, 10)
	if !errors.Is(err, ErrFeedTailChanged) {
		t.Fatalf("swapped tail: %v", err)
	}
	if info.File == w.TailFile || info.File == "" {
		t.Fatalf("409 info names no successor: %+v", info)
	}
}

func TestFeedClosedStore(t *testing.T) {
	st, _ := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	w := fm.Writers[0]
	st.Close()
	if _, err := st.FeedManifest(); !errors.Is(err, ErrClosed) {
		t.Fatalf("manifest on closed store: %v", err)
	}
	if _, _, err := st.FeedReadSegment(w.Segments[0].File, 0, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("segment on closed store: %v", err)
	}
	if _, _, err := st.FeedReadTail(w.ID, w.TailFile, 0, 10); !errors.Is(err, ErrClosed) {
		t.Fatalf("tail on closed store: %v", err)
	}
}

func TestVerifySegmentFile(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	g := fm.Writers[0].Segments[0]
	id := fm.Writers[0].ID
	path := filepath.Join(dir, g.File)

	size, crc, err := VerifySegmentFile(path, id, g.First, g.Count)
	if err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	if size != g.Size || crc != g.CRC {
		t.Fatalf("verify reports (%d,%08x), manifest says (%d,%08x)", size, crc, g.Size, g.CRC)
	}

	// Identity mismatches are corruption, not lenient fallbacks.
	if _, _, err := VerifySegmentFile(path, "other-writer", g.First, g.Count); err == nil {
		t.Fatal("wrong writer id accepted")
	}
	if _, _, err := VerifySegmentFile(path, id, g.First+1, g.Count); err == nil {
		t.Fatal("wrong first snapshot accepted")
	}

	// A flipped byte anywhere — header, frame region, footer, trailer —
	// must fail the scan.
	for _, off := range []int64{10, g.Size / 3, g.Size / 2, g.Size - 30, g.Size - 5} {
		cp := filepath.Join(t.TempDir(), "seg")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0x10
		if err := os.WriteFile(cp, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := VerifySegmentFile(cp, id, g.First, g.Count); err == nil {
			t.Fatalf("flip at offset %d went undetected", off)
		}
	}

	// Truncation too.
	cp := filepath.Join(t.TempDir(), "seg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cp, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := VerifySegmentFile(cp, id, g.First, g.Count); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestVerifyTailFile(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	w := fm.Writers[0]
	path := filepath.Join(dir, w.TailFile)

	snaps, err := VerifyTailFile(path, w.TailFirst, w.TailSize)
	if err != nil {
		t.Fatalf("valid tail rejected: %v", err)
	}
	if snaps != 3 {
		t.Fatalf("verified %d snapshots, want 3", snaps)
	}

	if _, err := VerifyTailFile(path, w.TailFirst+1, w.TailSize); err == nil {
		t.Fatal("wrong first snapshot accepted")
	}
	if _, err := VerifyTailFile(path, w.TailFirst, w.TailSize-3); err == nil {
		t.Fatal("size ending inside a frame accepted")
	}
	if _, err := VerifyTailFile(path, w.TailFirst, 4); err == nil {
		t.Fatal("size inside the header accepted")
	}
	if _, err := VerifyTailFile(path, w.TailFirst, w.TailSize+10); err == nil {
		t.Fatal("size past the file accepted")
	}

	for _, off := range []int64{2, w.TailSize / 2, w.TailSize - 2} {
		cp := filepath.Join(t.TempDir(), "tail")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0x08
		if err := os.WriteFile(cp, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := VerifyTailFile(cp, w.TailFirst, w.TailSize); err == nil {
			t.Fatalf("flip at offset %d went undetected", off)
		}
	}
}

func TestWriteFeedManifest(t *testing.T) {
	st, dir := feedFixture(t)
	fm, err := st.FeedManifest()
	if err != nil {
		t.Fatal(err)
	}
	times := st.Times()
	st.Close()

	// Re-commit the same file set into a directory holding the same
	// files: byte-identical, so no advance.
	advanced, err := WriteFeedManifest(dir, fm)
	if err != nil {
		t.Fatal(err)
	}
	if advanced {
		t.Fatal("re-committing the identical manifest reported an advance")
	}

	// Commit into a fresh directory holding copies of the files: the
	// replica-side commit path. The result must open and serve.
	rep := filepath.Join(t.TempDir(), "rep")
	if err := os.MkdirAll(rep, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, w := range fm.Writers {
		copyFeedFile(t, dir, rep, w.TailFile)
		for _, g := range w.Segments {
			copyFeedFile(t, dir, rep, g.File)
		}
	}
	advanced, err = WriteFeedManifest(rep, fm)
	if err != nil {
		t.Fatal(err)
	}
	if !advanced {
		t.Fatal("first commit reported no advance")
	}
	ro, err := Open(rep, WithReadOnly(), WithCache(64))
	if err != nil {
		t.Fatalf("committed directory does not open: %v", err)
	}
	defer ro.Close()
	if got := ro.Times(); len(got) != len(times) || !got[len(got)-1].Equal(times[len(times)-1]) {
		t.Fatalf("reopened store has %d snapshots, want %d", len(got), len(times))
	}

	// Invalid manifests fail before anything is committed.
	if _, err := WriteFeedManifest(t.TempDir(), FeedManifest{}); err == nil {
		t.Fatal("zero base interval accepted")
	}
	bad := fm
	bad.Writers = append([]FeedWriter(nil), fm.Writers...)
	bad.Writers[0].Segments = append([]FeedSegment(nil), fm.Writers[0].Segments...)
	bad.Writers[0].Segments[0].First = 3 // no longer tiles [0, tailFirst)
	dst := t.TempDir()
	if _, err := WriteFeedManifest(dst, bad); err == nil {
		t.Fatal("non-tiling segment set accepted")
	}
	if _, err := os.Stat(filepath.Join(dst, "MANIFEST")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("a rejected manifest left a MANIFEST behind")
	}
}

func copyFeedFile(t *testing.T, from, to, name string) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(from, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(to, name), data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestFeedManifestConsistentUnderAppend hammers FeedManifest while an
// appender runs: every snapshot must be internally consistent (sizes
// monotonic, LastSnap matching the snapshot count).
func TestFeedManifestConsistentUnderAppend(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "hist")
	st, err := Open(dir, WithCache(64), WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := genCampaign(5, 40)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := range c.snaps {
			if err := st.Append(c.times[i], c.snaps[i]); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	prevBytes := int64(0)
	prevSnaps := 0
	for {
		select {
		case <-done:
			fm, err := st.FeedManifest()
			if err != nil {
				t.Fatal(err)
			}
			if fm.Snapshots != len(c.snaps) {
				t.Fatalf("final manifest has %d snapshots, want %d", fm.Snapshots, len(c.snaps))
			}
			return
		default:
		}
		fm, err := st.FeedManifest()
		if err != nil {
			t.Fatal(err)
		}
		if fm.TotalBytes < prevBytes || fm.Snapshots < prevSnaps {
			t.Fatalf("manifest went backwards: %d/%d bytes, %d/%d snaps",
				fm.TotalBytes, prevBytes, fm.Snapshots, prevSnaps)
		}
		if fm.Snapshots > 0 && fm.LastSnap.IsZero() {
			t.Fatal("snapshots without a LastSnap")
		}
		prevBytes, prevSnaps = fm.TotalBytes, fm.Snapshots
	}
}
