package histstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// A tail is one writer's active append log: a small header naming the
// writer-local index of its first snapshot, then snapshot + block frames
// (codec.go). Compaction seals a tail's snapshots into a segment and
// starts a fresh tail whose header picks up where the segment ends.
//
//	magic  8 bytes "RDNSTAL1"
//	first  uvarint (writer-local index of the first snapshot)
//	frames ...
//
// A torn final append (crash mid-write) is truncated away by the owning
// writer at open; any earlier damage is loud corruption.

// tailMagic opens every tail file.
var tailMagic = [8]byte{'R', 'D', 'N', 'S', 'T', 'A', 'L', '1'}

// encodeTailHeader builds a fresh tail's header bytes.
func encodeTailHeader(firstSnap int) []byte {
	hdr := append([]byte(nil), tailMagic[:]...)
	return appendUvarintByte(hdr, uint64(firstSnap))
}

// readTailHeader parses a tail file's header, returning the first
// snapshot index, the header length, and the file size.
func readTailHeader(f *os.File) (firstSnap int, headerLen, size int64, err error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, 0, fmt.Errorf("histstore: %w", err)
	}
	buf := make([]byte, 18) // magic + max uvarint
	n, err := f.ReadAt(buf, 0)
	if err != nil && err != io.EOF {
		return 0, 0, 0, fmt.Errorf("histstore: reading tail header: %w", err)
	}
	buf = buf[:n]
	if len(buf) < len(tailMagic)+1 || [8]byte(buf[:8]) != tailMagic {
		return 0, 0, 0, corruptError("not a histstore tail (bad magic)")
	}
	v, vn := binary.Uvarint(buf[8:])
	if vn <= 0 || v > maxManifestSnap {
		return 0, 0, 0, corruptError("tail header first-snapshot varint invalid")
	}
	return int(v), int64(8 + vn), fi.Size(), nil
}

// frameScanner walks frames off a buffered reader, tracking offsets.
type frameScanner struct {
	r   *bufio.Reader
	off int64
}

// next reads one frame. It returns io.EOF cleanly at a frame boundary and
// errTruncated when the region ends inside a frame.
func (fs *frameScanner) next() (frame, int64, int, error) {
	start := fs.off
	kind, err := fs.r.ReadByte()
	if err == io.EOF {
		return frame{}, start, 0, io.EOF
	}
	if err != nil {
		return frame{}, start, 0, err
	}
	if kind != frameSnap && kind != frameBase && kind != frameDelta {
		return frame{}, start, 0, corruptf("unknown frame kind 0x%02x", kind)
	}
	n, sz, err := readUvarint(fs.r)
	if err != nil {
		return frame{}, start, 0, errTruncated
	}
	if n > 1<<24 {
		return frame{}, start, 0, corruptf("frame body of %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fs.r, body); err != nil {
		return frame{}, start, 0, errTruncated
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(fs.r, crcBuf[:]); err != nil {
		return frame{}, start, 0, errTruncated
	}
	full := make([]byte, 0, 1+sz+len(body)+4)
	full = append(full, kind)
	full = appendUvarintByte(full, n)
	full = append(full, body...)
	full = append(full, crcBuf[:]...)
	fr, _, err := decodeFrame(full)
	if err != nil {
		return frame{}, start, 0, err
	}
	fs.off = start + int64(len(full))
	return fr, start, len(full), nil
}

// replayFrameRec is one block frame of a snapshot group with its file
// location.
type replayFrameRec struct {
	fr  frame
	ref blockRef
}

// snapGroup is one snapshot's frames from one source file: the snapshot
// header plus the block frames under it.
type snapGroup struct {
	local  int
	when   time.Time
	off    int64 // snapshot frame offset (a compaction cut point in tails)
	frames []replayFrameRec
	seg    *segment // source segment; nil when the group came from the tail
}

// Cursor control-flow sentinels.
var (
	errSourceEnd  = errors.New("histstore: source end")
	errCursorDone = errors.New("histstore: cursor done")
)

// pendedFrame is the cursor's one-frame lookahead (a snapshot header
// that terminated the previous group).
type pendedFrame struct {
	fr     frame
	start  int64
	length int
	seg    *segment
}

// writerCursor streams one writer's snapshot groups across its sources —
// sealed segments in manifest order, then the tail — so the store-level
// merge can interleave writers without materializing anyone's history.
type writerCursor struct {
	s    *Store
	w    *writerState
	src  int
	sc   *frameScanner
	seg  *segment // segment being scanned; nil while on the tail
	pend *pendedFrame
	// group is the next group to apply (nil once exhausted).
	group *snapGroup
	// footer holds each segment's decoded footer index; segScan
	// accumulates the refs actually observed in its frames. The two must
	// agree (finishReplay), making a footer that lies about its frames —
	// or vice versa — loud corruption rather than silent wrong answers.
	footer  map[*segment]map[dnswire.Prefix][]blockRef
	segScan map[*segment]map[dnswire.Prefix][]blockRef
}

func newWriterCursor(s *Store, w *writerState) *writerCursor {
	return &writerCursor{
		s:       s,
		w:       w,
		src:     -1,
		footer:  make(map[*segment]map[dnswire.Prefix][]blockRef),
		segScan: make(map[*segment]map[dnswire.Prefix][]blockRef),
	}
}

// openNextSource advances to the writer's next file, returning false
// when every source is consumed.
func (c *writerCursor) openNextSource() (bool, error) {
	c.src++
	w := c.w
	if c.src < len(w.segs) {
		g := w.segs[c.src]
		f, err := os.Open(g.path)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return false, &retryableOpenError{fmt.Errorf("histstore: %w", err)}
			}
			return false, fmt.Errorf("histstore: %w", err)
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return false, fmt.Errorf("histstore: %w", err)
		}
		refs, frameStart, footerOff, err := readSegmentIndex(f, fi.Size(), g.writerID, g.firstSnap, g.count)
		if err != nil {
			f.Close()
			return false, fmt.Errorf("histstore: segment %s: %w", g.path, err)
		}
		if len(w.times) != g.firstSnap {
			f.Close()
			return false, fmt.Errorf("histstore: segment %s: %w", g.path,
				corruptf("starts at snapshot %d, predecessors delivered %d", g.firstSnap, len(w.times)))
		}
		g.f, g.size = f, fi.Size()
		c.footer[g] = refs
		c.segScan[g] = make(map[dnswire.Prefix][]blockRef)
		c.seg = g
		c.sc = &frameScanner{
			r:   bufio.NewReaderSize(io.NewSectionReader(f, frameStart, footerOff-frameStart), 1<<16),
			off: frameStart,
		}
		return true, nil
	}
	if c.src == len(w.segs) {
		first, hdrLen, size, err := readTailHeader(w.tailF)
		if err != nil {
			return false, fmt.Errorf("histstore: tail %s: %w", w.tailFile, err)
		}
		if first != w.tailFirst {
			return false, fmt.Errorf("histstore: tail %s: %w", w.tailFile,
				corruptf("header says first snapshot %d, manifest says %d", first, w.tailFirst))
		}
		if len(w.times) != w.tailFirst {
			return false, fmt.Errorf("histstore: tail %s: %w", w.tailFile,
				corruptf("starts at snapshot %d, segments delivered %d", w.tailFirst, len(w.times)))
		}
		w.tailHeaderLen = hdrLen
		w.tailSize = size
		c.seg = nil
		c.sc = &frameScanner{
			r:   bufio.NewReaderSize(io.NewSectionReader(w.tailF, hdrLen, size-hdrLen), 1<<16),
			off: hdrLen,
		}
		return true, nil
	}
	return false, nil
}

// nextFrame yields the writer's next frame, errSourceEnd at each source
// boundary, and errCursorDone after the last. A torn tail quietly ends
// the stream (recorded for truncation); a torn segment is corruption.
func (c *writerCursor) nextFrame() (frame, int64, int, *segment, error) {
	if p := c.pend; p != nil {
		c.pend = nil
		return p.fr, p.start, p.length, p.seg, nil
	}
	if c.sc == nil {
		ok, err := c.openNextSource()
		if err != nil {
			return frame{}, 0, 0, nil, err
		}
		if !ok {
			return frame{}, 0, 0, nil, errCursorDone
		}
	}
	fr, start, length, err := c.sc.next()
	if err == io.EOF {
		c.sc = nil
		return frame{}, 0, 0, nil, errSourceEnd
	}
	if errors.Is(err, errTruncated) {
		if c.seg != nil {
			return frame{}, 0, 0, nil, fmt.Errorf("histstore: segment %s: %w", c.seg.path,
				corruptError("truncated inside a frame"))
		}
		c.w.tornAt = start
		c.src = len(c.w.segs) + 1 // tail consumed; no further sources
		c.sc = nil
		return frame{}, 0, 0, nil, errSourceEnd
	}
	if err != nil {
		name := c.w.tailFile
		if c.seg != nil {
			name = c.seg.path
		}
		return frame{}, 0, 0, nil, fmt.Errorf("histstore: replaying %s at offset %d: %w", name, start, err)
	}
	return fr, start, length, c.seg, nil
}

// next assembles the writer's next snapshot group into c.group (nil when
// the writer is exhausted).
func (c *writerCursor) next() error {
	c.group = nil
	var g *snapGroup
	for {
		fr, start, length, seg, err := c.nextFrame()
		if err == errCursorDone {
			c.group = g
			return nil
		}
		if err == errSourceEnd {
			if g != nil {
				c.group = g
				return nil
			}
			continue
		}
		if err != nil {
			return err
		}
		if fr.kind == frameSnap {
			if g != nil {
				c.pend = &pendedFrame{fr: fr, start: start, length: length, seg: seg}
				c.group = g
				return nil
			}
			snap, unixSec, err := decodeSnapBody(fr.body)
			if err != nil {
				return fmt.Errorf("histstore: writer %q at offset %d: %w", c.w.id, start, err)
			}
			g = &snapGroup{local: snap, when: time.Unix(unixSec, 0).UTC(), off: start, seg: seg}
			continue
		}
		if g == nil {
			return fmt.Errorf("histstore: writer %q: %w", c.w.id,
				corruptf("block frame at offset %d before any snapshot header", start))
		}
		g.frames = append(g.frames, replayFrameRec{fr: fr, ref: blockRef{kind: fr.kind, off: start, length: length}})
	}
}

// replayAll rebuilds the merged in-memory state from every writer's
// files: a k-way merge of the writers' snapshot streams ordered by
// (time, writer id), running the same transition function Append uses.
func (s *Store) replayAll() error {
	curs := make([]*writerCursor, len(s.writers))
	for i, w := range s.writers {
		curs[i] = newWriterCursor(s, w)
		if err := curs[i].next(); err != nil {
			return err
		}
	}
	for {
		pick := -1
		for i, c := range curs {
			if c.group == nil {
				continue
			}
			if pick < 0 || c.group.when.Before(curs[pick].group.when) {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		c := curs[pick]
		if err := s.applyGroup(c, c.group); err != nil {
			return err
		}
		if err := c.next(); err != nil {
			return err
		}
	}
	return s.finishReplay(curs)
}

// applyGroup folds one snapshot group into the writer's and the merged
// state, mirroring Append's commit exactly.
func (s *Store) applyGroup(c *writerCursor, g *snapGroup) error {
	w := c.w
	local := len(w.times)
	if g.local != local {
		return fmt.Errorf("histstore: writer %q: %w", w.id,
			corruptf("snapshot header %d, expected %d", g.local, local))
	}
	if local > 0 && !g.when.After(w.times[local-1]) {
		return fmt.Errorf("histstore: writer %q: %w", w.id,
			corruptf("snapshot %d not after its predecessor", local))
	}
	gi := len(s.times)
	s.times = append(s.times, g.when)
	s.snapWriter = append(s.snapWriter, w.idx)
	s.snapLocal = append(s.snapLocal, local)
	w.times = append(w.times, g.when)
	w.globalIdx = append(w.globalIdx, gi)
	if g.seg == nil {
		w.tailSnapOffsets = append(w.tailSnapOffsets, g.off)
	}
	for _, rf := range g.frames {
		var p dnswire.Prefix
		var wChanges []deltaEntry
		switch rf.fr.kind {
		case frameBase:
			snap, bp, entries, err := decodeBaseBody(rf.fr.body)
			if err != nil {
				return fmt.Errorf("histstore: writer %q: %w", w.id, err)
			}
			if snap != local {
				return fmt.Errorf("histstore: writer %q: %w", w.id,
					corruptf("block frame for snapshot %d under header %d", snap, local))
			}
			p = bp
			newState := make(blockState, len(entries))
			for _, e := range entries {
				newState[e.octet] = e.name
			}
			wChanges = diffBlock(w.cur[p], newState)
			w.lastBase[p] = local
			w.deltasSince[p] = 0
			s.baseFrames++
		case frameDelta:
			snap, dp, entries, err := decodeDeltaBody(rf.fr.body)
			if err != nil {
				return fmt.Errorf("histstore: writer %q: %w", w.id, err)
			}
			if snap != local {
				return fmt.Errorf("histstore: writer %q: %w", w.id,
					corruptf("block frame for snapshot %d under header %d", snap, local))
			}
			p = dp
			if !w.known[p] {
				return fmt.Errorf("histstore: writer %q: %w", w.id,
					corruptf("delta for unknown block %s", p))
			}
			wChanges = entries
			w.deltasSince[p]++
			s.deltaFrames++
		}
		ref := rf.ref
		ref.snap = local
		if g.seg != nil {
			c.segScan[g.seg][p] = append(c.segScan[g.seg][p], ref)
		} else {
			w.tailBlocks[p] = append(w.tailBlocks[p], ref)
		}
		w.known[p] = true
		s.blockSet[p] = true
		s.applyFrameChanges(w, gi, p, wChanges)
	}
	return nil
}

// finishReplay runs the post-merge invariants: every segment's footer
// must match its frames, torn tails are truncated (owned writers only),
// segments enter the hot tier newest-last, and the byte totals are
// recomputed from file sizes.
func (s *Store) finishReplay(curs []*writerCursor) error {
	for _, c := range curs {
		w := c.w
		for _, g := range w.segs {
			if err := compareSegRefs(g, c.segScan[g], c.footer[g]); err != nil {
				return err
			}
			g.mu.Lock()
			g.refs = c.footer[g]
			g.mu.Unlock()
		}
		if w.tornAt >= 0 {
			if w.owned {
				if err := w.tailF.Truncate(w.tornAt); err != nil {
					return fmt.Errorf("histstore: truncating torn tail %s: %w", w.tailFile, err)
				}
			}
			w.tailSize = w.tornAt
		}
	}
	s.bytes = 0
	for _, w := range s.writers {
		s.bytes += w.tailSize
		for _, g := range w.segs {
			s.bytes += g.size
			s.noteSegmentLoaded(g)
		}
	}
	return nil
}

// compareSegRefs verifies a segment's footer index against the refs its
// frames actually produced.
func compareSegRefs(g *segment, scanned, footer map[dnswire.Prefix][]blockRef) error {
	mismatch := func() error {
		return fmt.Errorf("histstore: segment %s: %w", g.path,
			corruptError("footer index does not match frame contents"))
	}
	if len(scanned) != len(footer) {
		return mismatch()
	}
	for p, sr := range scanned {
		fr, ok := footer[p]
		if !ok || len(fr) != len(sr) {
			return mismatch()
		}
		for i := range sr {
			if sr[i] != fr[i] {
				return mismatch()
			}
		}
	}
	return nil
}
