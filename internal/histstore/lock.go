package histstore

import (
	"errors"
	"fmt"
	"os"
)

// Advisory file locks guard the store's two mutable resources: each
// writer's tail (held for the whole session by the owning Store, so a
// second process appending to the same campaign fails loudly instead of
// interleaving frames) and the manifest (held only across a
// read-modify-write, serializing writer registration and compaction
// commits between processes).

// ErrWriterActive reports that another live process holds the advisory
// lock on a writer's tail.
var ErrWriterActive = errors.New("histstore: writer already active")

// errLockHeld is the platform layer's "lock is taken" signal.
var errLockHeld = errors.New("histstore: lock held")

// acquireFileLock opens (creating if needed) the lock file at path and
// takes an exclusive, non-blocking advisory lock on it. A held lock —
// even by another goroutine of this process through a different Store —
// yields ErrWriterActive.
func acquireFileLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("histstore: lock %s: %w", path, err)
	}
	if err := flockExclusive(f); err != nil {
		f.Close()
		if errors.Is(err, errLockHeld) {
			return nil, fmt.Errorf("%w (lock %s)", ErrWriterActive, path)
		}
		return nil, fmt.Errorf("histstore: lock %s: %w", path, err)
	}
	return f, nil
}

// acquireFileLockBlocking is acquireFileLock but waits for a held lock
// instead of failing. Used for STORE.lock, where contention is a brief
// manifest read-modify-write, never a session.
func acquireFileLockBlocking(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("histstore: lock %s: %w", path, err)
	}
	if err := flockExclusiveBlocking(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("histstore: lock %s: %w", path, err)
	}
	return f, nil
}

// releaseFileLock drops the lock and closes the file. Safe on nil.
func releaseFileLock(f *os.File) {
	if f == nil {
		return
	}
	flockRelease(f)
	f.Close()
}
