package histstore

import (
	"strings"
	"testing"
)

// TestWriterIDValidation pins the writer-id charset: file names are
// derived from the id, so anything outside [a-z0-9_-] — and in
// particular path separators — must be refused both by the validator
// and at Open.
func TestWriterIDValidation(t *testing.T) {
	valid := []string{"main", "w0", "site-a", "a_b-c9", strings.Repeat("x", 64)}
	for _, id := range valid {
		if !validWriterID(id) {
			t.Errorf("validWriterID(%q) = false", id)
		}
	}
	invalid := []string{"", "UPPER", "has space", "dot.dot", "a/b", "a\\b",
		"tail\x00", strings.Repeat("x", 65), "café"}
	for _, id := range invalid {
		if validWriterID(id) {
			t.Errorf("validWriterID(%q) = true", id)
		}
	}

	if _, err := Open(t.TempDir()+"/hist", WithWriter("../evil")); err == nil ||
		!strings.Contains(err.Error(), "invalid writer id") {
		t.Fatalf("Open accepted a traversal writer id: %v", err)
	}
}

// TestStoreFileNameValidation pins the manifest's file-name gate: a
// manifest names every store file, so a corrupted or hostile manifest
// must not be able to point the store outside its own directory or at
// its own control files.
func TestStoreFileNameValidation(t *testing.T) {
	valid := []string{"tail-main-0.log", "seg-main-3.seg", "anything.weird"}
	for _, name := range valid {
		if !validStoreFileName(name) {
			t.Errorf("validStoreFileName(%q) = false", name)
		}
	}
	invalid := []string{"", ".", "..", "../../etc/passwd", "a/b", "a\\b",
		"nul\x00byte", manifestName, storeLockName, strings.Repeat("x", 300)}
	for _, name := range invalid {
		if validStoreFileName(name) {
			t.Errorf("validStoreFileName(%q) = true", name)
		}
	}
}

// TestManifestSetWriter covers the insert-vs-replace paths keeping the
// writer list sorted (merge priority is id order, so the order is a
// correctness property, not cosmetics).
func TestManifestSetWriter(t *testing.T) {
	m := &storeManifest{baseEvery: 7}
	m.setWriter(manifestWriter{id: "mid", fileSeq: 1, tailFile: tailFileName("mid", 0)})
	m.setWriter(manifestWriter{id: "aaa", fileSeq: 1, tailFile: tailFileName("aaa", 0)})
	m.setWriter(manifestWriter{id: "zzz", fileSeq: 1, tailFile: tailFileName("zzz", 0)})
	if len(m.writers) != 3 || m.writers[0].id != "aaa" || m.writers[1].id != "mid" || m.writers[2].id != "zzz" {
		t.Fatalf("writer order: %+v", m.writers)
	}
	m.setWriter(manifestWriter{id: "mid", fileSeq: 5, tailFile: tailFileName("mid", 4)})
	if len(m.writers) != 3 || m.writers[1].fileSeq != 5 {
		t.Fatalf("replace grew or missed: %+v", m.writers)
	}
	if i := m.findWriter("nope"); i != -1 {
		t.Fatalf("findWriter(nope) = %d", i)
	}
}

// TestManifestRoundTrip pins the codec on a representative compacted
// two-writer manifest: decode(encode(m)) must reproduce m exactly.
func TestManifestRoundTrip(t *testing.T) {
	m := &storeManifest{baseEvery: 4}
	m.setWriter(manifestWriter{
		id: "alpha", fileSeq: 3, tailFile: tailFileName("alpha", 2), tailFirst: 40,
		segs: []manifestSegment{
			{file: segFileName("alpha", 0), first: 0, count: 25},
			{file: segFileName("alpha", 1), first: 25, count: 15},
		},
	})
	m.setWriter(manifestWriter{id: "beta", fileSeq: 1, tailFile: tailFileName("beta", 0)})
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.baseEvery != 4 || len(got.writers) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	a := got.writers[0]
	if a.id != "alpha" || a.fileSeq != 3 || a.tailFirst != 40 || len(a.segs) != 2 ||
		a.segs[1].first != 25 || a.segs[1].count != 15 {
		t.Fatalf("alpha round trip: %+v", a)
	}
}
