package histstore

import (
	"context"
	"errors"
	"io"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// TestStoreTelemetry pins the hist_* instruments against Stats() across
// the store's whole lifecycle — append, query, compact — on a durable
// (WithSync) writer. Every counter a dashboard would alert on must agree
// with the stats surface the daemon serves.
func TestStoreTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	dir := t.TempDir() + "/hist"
	st, err := Open(dir, WithTelemetry(reg), WithSync(), WithBaseInterval(3), WithCache(16))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.WriterID(); got != DefaultWriter {
		t.Fatalf("WriterID() = %q, want %q", got, DefaultWriter)
	}

	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	var times []time.Time
	for day := 0; day < 12; day++ {
		d := start.AddDate(0, 0, day)
		times = append(times, d)
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName("host-" + d.Format("2") + ".dyn.example.net"),
		}
		if err := st.Append(d, recs); err != nil {
			t.Fatal(err)
		}
	}
	for _, d := range times {
		if _, _, err := st.At(dnswire.MustIPv4("10.0.1.7"), d); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil {
		t.Fatal(err)
	}

	s := st.Stats()
	counters := map[string]uint64{
		MetricAppends:       12,
		MetricCompactions:   1,
		MetricCompactSealed: 12,
		MetricCacheHits:     s.CacheHits,
		MetricCacheMisses:   s.CacheMisses,
		MetricTierLoads:     s.TierLoads,
		MetricTierEvictions: s.TierEvictions,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	gauges := map[string]int64{
		MetricSnapshots:   int64(s.Snapshots),
		MetricBlocks:      int64(s.Blocks),
		MetricBytes:       s.Bytes,
		MetricSegments:    int64(s.Segments),
		MetricTierHot:     int64(s.HotSegments),
		MetricSealedBytes: s.SealedBytes,
	}
	for name, want := range gauges {
		if got := reg.Gauge(name).Value(); got != want {
			t.Errorf("%s = %d, stats say %d", name, got, want)
		}
	}
	if s.Snapshots != 12 || s.Segments != 1 || s.Compaction.Runs != 1 || s.Compaction.SealedSnapshots != 12 {
		t.Fatalf("lifecycle stats: %+v", s)
	}
	if reg.Counter(MetricAppendBytes).Value() == 0 || reg.Counter(MetricBaseFrames).Value() == 0 ||
		reg.Counter(MetricDeltaFrames).Value() == 0 || reg.Counter(MetricReconstructions).Value() == 0 {
		t.Fatal("write-path counters never moved")
	}
}

// TestRetryableOpenError pins the unwrap contract Open's retry loop
// depends on: the wrapper preserves the cause for errors.Is and renders
// its message.
func TestRetryableOpenError(t *testing.T) {
	e := &retryableOpenError{err: io.ErrUnexpectedEOF}
	if !errors.Is(e, io.ErrUnexpectedEOF) {
		t.Fatal("retryableOpenError hides its cause from errors.Is")
	}
	if e.Error() != io.ErrUnexpectedEOF.Error() {
		t.Fatalf("Error() = %q", e.Error())
	}
}
