package histstore

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// At answers the time-travel point query: the PTR name held by ip at the
// newest snapshot at or before t, merged across writers. ok is false
// when the address had no record then; ErrBeforeHistory when t precedes
// the first snapshot.
func (s *Store) At(ip dnswire.IPv4, t time.Time) (dnswire.Name, bool, error) {
	name, _, ok, err := s.atLocked(ip, t)
	return name, ok, err
}

// AtWriter is At with provenance: which writer's record answered. A
// conflicted address reports the winning (smallest-id) writer.
func (s *Store) AtWriter(ip dnswire.IPv4, t time.Time) (dnswire.Name, string, bool, error) {
	return s.atLocked(ip, t)
}

func (s *Store) atLocked(ip dnswire.IPv4, t time.Time) (dnswire.Name, string, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return "", "", false, ErrClosed
	}
	snap, ok := s.snapAtOrBefore(t)
	if !ok {
		return "", "", false, ErrBeforeHistory
	}
	p := ip.Slash24()
	// Merge priority: writers ascending by id, first holder of the octet
	// wins — the same rule mergeLive applies to whole blocks.
	for wi, w := range s.writers {
		ls := localAtOrBefore(w, snap)
		st, err := s.writerStateAt(wi, p, ls)
		if err != nil {
			return "", "", false, err
		}
		if name, ok := st[ip[3]]; ok {
			return name, w.id, true, nil
		}
	}
	return "", "", false, nil
}

// localAtOrBefore maps a global snapshot index to the writer's newest
// local snapshot at or before it (-1 when the writer has none yet).
// Callers hold the lock.
func localAtOrBefore(w *writerState, g int) int {
	return sort.Search(len(w.globalIdx), func(i int) bool { return w.globalIdx[i] > g }) - 1
}

// stateAtGlobal reconstructs the merged record set of one /24 at a
// global snapshot index. In solo mode it is the writer's (shared,
// cached) state; with several writers it is a fresh priority merge.
// Callers hold at least the read lock; solo results are shared and must
// not be mutated.
func (s *Store) stateAtGlobal(p dnswire.Prefix, g int) (blockState, error) {
	if s.solo {
		return s.writerStateAt(0, p, g)
	}
	var merged blockState
	for wi, w := range s.writers {
		ls := localAtOrBefore(w, g)
		st, err := s.writerStateAt(wi, p, ls)
		if err != nil {
			return nil, err
		}
		if len(st) == 0 {
			continue
		}
		if merged == nil {
			merged = make(blockState, len(st))
		}
		for o, name := range st {
			if _, taken := merged[o]; !taken {
				merged[o] = name
			}
		}
	}
	return merged, nil
}

// writerStateAt reconstructs one writer's view of a block at its local
// snapshot ls: from the tail when ls is in the tail's range (chaining
// into the last segment when the tail run opens with deltas), otherwise
// from the owning segment.
func (s *Store) writerStateAt(wi int, p dnswire.Prefix, ls int) (blockState, error) {
	if ls < 0 {
		return nil, nil
	}
	w := s.writers[wi]
	if ls >= w.tailFirst {
		refs := w.tailBlocks[p]
		i := sort.Search(len(refs), func(k int) bool { return refs[k].snap > ls }) - 1
		if i >= 0 {
			return s.reconstruct(wi, p, refs, i, w.tailF, func() (blockState, error) {
				return s.segStateAt(wi, p, w.tailFirst-1)
			})
		}
		ls = w.tailFirst - 1
	}
	return s.segStateAt(wi, p, ls)
}

// segStateAt reconstructs a block from the sealed segment owning local
// snapshot ls. Every block live at a segment's start opens with a base
// inside it, so a block absent from the owning segment's index was dead
// through ls.
func (s *Store) segStateAt(wi int, p dnswire.Prefix, ls int) (blockState, error) {
	if ls < 0 {
		return nil, nil
	}
	w := s.writers[wi]
	gi := sort.Search(len(w.segs), func(k int) bool { return w.segs[k].firstSnap > ls }) - 1
	if gi < 0 {
		return nil, nil
	}
	g := w.segs[gi]
	refs, f, release, err := g.pin(s)
	if err != nil {
		return nil, err
	}
	defer release()
	rs := refs[p]
	i := sort.Search(len(rs), func(k int) bool { return rs[k].snap > ls }) - 1
	if i < 0 {
		return nil, nil
	}
	return s.reconstruct(wi, p, rs, i, f, nil)
}

// reconstruct rebuilds a block state from refs[..i] read out of f:
// nearest base at or before i, plus the deltas in between. When the run
// has no base (a tail run continuing a segment), prior supplies the
// carried-over state. Results are cached under (writer, block, version
// snapshot) — the block's newest frame at or before the query — so every
// query between two writes of a block shares one entry, and entries
// survive compaction because a snapshot's reconstructed state is
// bit-identical across it.
func (s *Store) reconstruct(wi int, p dnswire.Prefix, refs []blockRef, i int, f *os.File, prior func() (blockState, error)) (blockState, error) {
	key := cacheKey{w: wi, p: p, snap: refs[i].snap}
	if st, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return st, nil
	}
	if s.cache != nil {
		s.met.cacheMisses.Inc()
	}
	b := i
	for b >= 0 && refs[b].kind != frameBase {
		b--
	}
	var st blockState
	start := b
	if b < 0 {
		if prior == nil {
			return nil, corruptf("block %s has no base frame", p)
		}
		carried, err := prior()
		if err != nil {
			return nil, err
		}
		st = make(blockState, len(carried))
		for o, name := range carried {
			st[o] = name
		}
		start = 0
	} else {
		st = make(blockState)
	}
	s.reconstructions.Add(1)
	s.met.reconstructions.Inc()
	for j := start; j <= i; j++ {
		fr, err := readFrameAt(f, refs[j])
		if err != nil {
			return nil, err
		}
		switch fr.kind {
		case frameBase:
			fsnap, fp, entries, err := decodeBaseBody(fr.body)
			if err != nil {
				return nil, err
			}
			if fsnap != refs[j].snap || fp != p {
				return nil, corruptf("frame at %d is for %s@%d, expected %s@%d",
					refs[j].off, fp, fsnap, p, refs[j].snap)
			}
			st = make(blockState, len(entries))
			for _, e := range entries {
				st[e.octet] = e.name
			}
		case frameDelta:
			fsnap, fp, entries, err := decodeDeltaBody(fr.body)
			if err != nil {
				return nil, err
			}
			if fsnap != refs[j].snap || fp != p {
				return nil, corruptf("frame at %d is for %s@%d, expected %s@%d",
					refs[j].off, fp, fsnap, p, refs[j].snap)
			}
			for _, e := range entries {
				switch e.kind {
				case scanengine.RecordAdded, scanengine.RecordChanged:
					st[e.octet] = e.new
				case scanengine.RecordRemoved:
					delete(st, e.octet)
				}
			}
		}
	}
	s.cache.put(key, st)
	if s.cache != nil {
		s.met.cacheEntries.Set(int64(s.cache.len()))
	}
	return st, nil
}

// readFrameAt reads and CRC-verifies one frame from f.
func readFrameAt(f *os.File, ref blockRef) (frame, error) {
	buf := make([]byte, ref.length)
	if _, err := f.ReadAt(buf, ref.off); err != nil {
		return frame{}, fmt.Errorf("histstore: reading frame at %d: %w", ref.off, err)
	}
	fr, rest, err := decodeFrame(buf)
	if err != nil {
		return frame{}, err
	}
	if len(rest) != 0 {
		return frame{}, corruptf("frame at %d shorter than indexed", ref.off)
	}
	return fr, nil
}

// Range returns every observation (snapshot, address, name) within prefix
// and [from, to], ordered by date then address — the store-backed
// replacement for re-reading a campaign CSV.
func (s *Store) Range(p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error) {
	return s.RangeContext(context.Background(), p, from, to)
}

// RangeContext is Range with cancellation: a query serving a disconnected
// client stops reconstructing blocks as soon as ctx is done and returns
// ctx.Err().
func (s *Store) RangeContext(ctx context.Context, p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, nil
	}
	blocks := s.overlappingBlocks(p)
	var rows []dataset.Row
	for i := lo; i <= hi; i++ {
		for _, q := range blocks {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			st, err := s.stateAtGlobal(q, i)
			if err != nil {
				return rows, err
			}
			for octet := 0; octet < 256; octet++ {
				name, ok := st[byte(octet)]
				if !ok {
					continue
				}
				ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], byte(octet)}
				if p.Bits > 24 && !p.Contains(ip) {
					continue
				}
				rows = append(rows, dataset.Row{Date: s.times[i], IP: ip, PTR: name})
			}
		}
	}
	return rows, nil
}

// RangeCursor is the resume position of a paginated Range scan: the next
// candidate (snapshot index, /24 address, last octet) to visit. Cursors
// are stable across appends — snapshot indices are append-only, and a /24
// first materialized after a page's window yields no rows inside it — so
// concatenating pages always reproduces the unpaginated answer. The zero
// cursor starts from the beginning.
type RangeCursor struct {
	Snap  int
	Block uint32
	Octet int
}

// RangePage is the paginated RangeContext: it emits up to limit rows
// starting at cur's position (in the same date-then-address order Range
// uses) and returns the cursor to resume from. more is false once the
// scan is complete; a page that fills limit exactly reports more=true
// and the next page may legitimately be empty. limit must be positive.
func (s *Store) RangePage(ctx context.Context, p dnswire.Prefix, from, to time.Time, cur RangeCursor, limit int) (rows []dataset.Row, next RangeCursor, more bool, err error) {
	if limit <= 0 {
		return nil, cur, false, fmt.Errorf("histstore: non-positive page limit %d", limit)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, cur, false, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, cur, false, nil
	}
	if cur.Snap > lo {
		lo = cur.Snap
	}
	if lo > hi {
		return nil, cur, false, nil
	}
	blocks := s.overlappingBlocks(p)
	for i := lo; i <= hi; i++ {
		for _, q := range blocks {
			addr := q.Addr.Uint32()
			startOctet := 0
			if i == cur.Snap {
				if addr < cur.Block {
					continue // consumed by an earlier page
				}
				if addr == cur.Block {
					startOctet = cur.Octet
					if startOctet > 255 {
						continue // block fully consumed at this snapshot
					}
				}
			}
			if err := ctx.Err(); err != nil {
				return rows, next, false, err
			}
			st, err := s.stateAtGlobal(q, i)
			if err != nil {
				return rows, next, false, err
			}
			for octet := startOctet; octet < 256; octet++ {
				name, ok := st[byte(octet)]
				if !ok {
					continue
				}
				ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], byte(octet)}
				if p.Bits > 24 && !p.Contains(ip) {
					continue
				}
				if len(rows) == limit {
					return rows, RangeCursor{Snap: i, Block: addr, Octet: octet}, true, nil
				}
				rows = append(rows, dataset.Row{Date: s.times[i], IP: ip, PTR: name})
			}
		}
	}
	return rows, RangeCursor{}, false, nil
}

// ChurnDay is one snapshot's record-set delta counts within a prefix.
type ChurnDay struct {
	Date    time.Time `json:"date"`
	Added   int       `json:"added"`
	Removed int       `json:"removed"`
	Changed int       `json:"changed"`
}

// Churn returns the per-snapshot join/leave/reallocation counts within
// prefix over [from, to]: exactly the deltas a consumer diffing
// successive raw snapshots would compute. The store's first snapshot has
// no baseline and yields no entry.
func (s *Store) Churn(p dnswire.Prefix, from, to time.Time) ([]ChurnDay, error) {
	return s.ChurnContext(context.Background(), p, from, to)
}

// ChurnContext is Churn with cancellation, mirroring RangeContext.
func (s *Store) ChurnContext(ctx context.Context, p dnswire.Prefix, from, to time.Time) ([]ChurnDay, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, nil
	}
	if lo == 0 {
		lo = 1
	}
	blocks := s.overlappingBlocks(p)
	var out []ChurnDay
	for i := lo; i <= hi; i++ {
		day := ChurnDay{Date: s.times[i]}
		for _, q := range blocks {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			prev, err := s.stateAtGlobal(q, i-1)
			if err != nil {
				return out, err
			}
			cur, err := s.stateAtGlobal(q, i)
			if err != nil {
				return out, err
			}
			for _, ch := range diffBlock(prev, cur) {
				if p.Bits > 24 {
					ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], ch.octet}
					if !p.Contains(ip) {
						continue
					}
				}
				switch ch.kind {
				case scanengine.RecordAdded:
					day.Added++
				case scanengine.RecordRemoved:
					day.Removed++
				case scanengine.RecordChanged:
					day.Changed++
				}
			}
		}
		out = append(out, day)
	}
	return out, nil
}

// FindName answers the inverted-index query: every (/24, interval) where
// a hostname token was present, without scanning the log. Tokens are the
// '-'-separated pieces of hostnames' first labels; possessive forms
// match their stem, so FindName("brian") reaches "brians-iphone".
func (s *Store) FindName(token string) []Posting {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.times) == 0 {
		return nil
	}
	return s.names.find(token, len(s.times)-1, s.times)
}

// snapRange clips [from, to] to snapshot indices. Callers hold the lock.
func (s *Store) snapRange(from, to time.Time) (lo, hi int, ok bool) {
	if len(s.times) == 0 || to.Before(from) {
		return 0, 0, false
	}
	lo = sort.Search(len(s.times), func(i int) bool { return !s.times[i].Before(from) })
	hi = sort.Search(len(s.times), func(i int) bool { return s.times[i].After(to) }) - 1
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// overlappingBlocks lists the indexed /24s overlapping p, sorted by
// address. Callers hold the lock.
func (s *Store) overlappingBlocks(p dnswire.Prefix) []dnswire.Prefix {
	var out []dnswire.Prefix
	for q := range s.blockSet {
		if p.Overlaps(q) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// WriterStats summarizes one writer within Stats.
type WriterStats struct {
	// ID is the writer identity.
	ID string `json:"id"`
	// Snapshots is the writer's total snapshot count; TailSnapshots is
	// how many still live in the active tail (the rest are sealed).
	Snapshots     int `json:"snapshots"`
	TailSnapshots int `json:"tail_snapshots"`
	// Segments is the writer's sealed segment count.
	Segments int `json:"segments"`
	// Owned reports whether this Store appends as the writer.
	Owned bool `json:"owned"`
}

// CompactionStats summarizes compaction activity within Stats.
type CompactionStats struct {
	// Runs counts completed compactions; SealedSnapshots the snapshots
	// they moved into segments; ReclaimedBytes the tail bytes the
	// segment rewrite saved (negative if segments grew the store).
	Runs            uint64 `json:"runs"`
	SealedSnapshots uint64 `json:"sealed_snapshots"`
	ReclaimedBytes  int64  `json:"reclaimed_bytes"`
	// Running reports a compaction in flight right now.
	Running bool `json:"running"`
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Snapshots is the number of snapshots in the merged timeline.
	Snapshots int `json:"snapshots"`
	// Blocks is the number of indexed /24 blocks.
	Blocks int `json:"blocks"`
	// BaseFrames and DeltaFrames count the block frames across every
	// tail and segment.
	BaseFrames  int `json:"base_frames"`
	DeltaFrames int `json:"delta_frames"`
	// Bytes is the total store size (tails plus segments); TailBytes and
	// SealedBytes split it.
	Bytes       int64 `json:"bytes"`
	TailBytes   int64 `json:"tail_bytes"`
	SealedBytes int64 `json:"sealed_bytes"`
	// Reconstructions counts block states rebuilt from frames.
	Reconstructions uint64 `json:"reconstructions"`
	// CacheHits/CacheMisses/CacheEntries describe the reconstruction
	// cache (zero when disabled).
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
	// Writers describes each writer in merge-priority order.
	Writers []WriterStats `json:"writers,omitempty"`
	// Segments counts sealed segments; HotSegments how many are resident
	// in the tier; TierLoads/TierEvictions its lifetime churn.
	Segments      int    `json:"segments"`
	HotSegments   int    `json:"hot_segments"`
	TierLoads     uint64 `json:"tier_loads"`
	TierEvictions uint64 `json:"tier_evictions"`
	// Compaction summarizes compaction activity.
	Compaction CompactionStats `json:"compaction"`
}

// Stats returns the store's current summary.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hits, misses := s.cache.counters()
	st := Stats{
		Snapshots:       len(s.times),
		Blocks:          len(s.blockSet),
		BaseFrames:      s.baseFrames,
		DeltaFrames:     s.deltaFrames,
		Bytes:           s.bytes,
		Reconstructions: s.reconstructions.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEntries:    s.cache.len(),
		HotSegments:     s.tier.len(),
		TierLoads:       s.tierLoads.Load(),
		TierEvictions:   s.tierEvictions.Load(),
		Compaction: CompactionStats{
			Runs:            s.compactions.Load(),
			SealedSnapshots: s.compactSealed.Load(),
			ReclaimedBytes:  s.compactReclaim.Load(),
			Running:         s.compactRunning.Load(),
		},
	}
	for _, w := range s.writers {
		ws := WriterStats{
			ID:            w.id,
			Snapshots:     len(w.times),
			TailSnapshots: len(w.times) - w.tailFirst,
			Segments:      len(w.segs),
			Owned:         w.owned,
		}
		st.Writers = append(st.Writers, ws)
		st.Segments += len(w.segs)
		st.TailBytes += w.tailSize
		for _, g := range w.segs {
			st.SealedBytes += g.size
		}
	}
	return st
}
