//go:build !unix

package histstore

import "os"

// Non-unix platforms get no advisory locking: single-process use keeps
// working, the cross-process exclusion guarantee does not apply.

func flockExclusive(f *os.File) error { return nil }

func flockExclusiveBlocking(f *os.File) error { return nil }

func flockRelease(f *os.File) {}
