package histstore

import (
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// FuzzDecodeBlock fuzzes the block codec: an on-disk history log may be
// truncated, bit-rotted, or not a history log at all, and the decoder
// must reject every such input with an error — never a panic, never an
// out-of-range octet, never an oversized name. The corpus seeds the
// shapes the strict checks exist for: truncated frames, corrupt CRCs,
// varint overflows, octet-gap overflow, and prefix-compression overrun.
// Go runs the seeds on every plain `go test`; `make fuzz` explores
// further.
func FuzzDecodeBlock(f *testing.F) {
	p := dnswire.MustPrefix("192.0.2.0/24")
	base := encodeBaseBody(3, p, []baseEntry{
		{octet: 1, name: dnswire.MustName("brians-iphone.lan.example.net")},
		{octet: 2, name: dnswire.MustName("brians-ipad.lan.example.net")},
		{octet: 250, name: dnswire.MustName("printer.example.net")},
	})
	delta := encodeDeltaBody(4, p, []deltaEntry{
		{kind: scanengine.RecordChanged, octet: 1,
			old: dnswire.MustName("brians-iphone.lan.example.net"),
			new: dnswire.MustName("brians-iphone-2.lan.example.net")},
		{kind: scanengine.RecordRemoved, octet: 250, old: dnswire.MustName("printer.example.net")},
	})

	// Well-formed frames of every kind.
	f.Add(appendFrame(nil, frameSnap, encodeSnapBody(0, 1583038800)))
	f.Add(appendFrame(nil, frameBase, base))
	f.Add(appendFrame(nil, frameDelta, delta))
	// Shapes compaction writes that the append path never does: an empty
	// base (a block dying in-snapshot inside a sealed segment) and a
	// single-entry rebase from the sparse in-segment cadence.
	f.Add(appendFrame(nil, frameBase, encodeBaseBody(9, p, nil)))
	f.Add(appendFrame(nil, frameBase, encodeBaseBody(28, p, []baseEntry{
		{octet: 250, name: dnswire.MustName("printer.example.net")},
	})))
	// Truncations at interesting depths.
	fr := appendFrame(nil, frameBase, base)
	f.Add(fr[:1])
	f.Add(fr[:len(fr)/2])
	f.Add(fr[:len(fr)-1])
	// Corrupt CRC.
	bad := append([]byte(nil), fr...)
	bad[len(bad)-1] ^= 0x01
	f.Add(bad)
	// Unknown frame kind.
	f.Add([]byte{0x00, 0x01, 0xaa, 0, 0, 0, 0})
	// Length uvarint that never terminates (all continuation bits).
	f.Add([]byte{frameBase, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Base body with an absurd entry count.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 0xff, 0xff, 0x03}))
	// Delta body with an unknown change kind.
	mut := append([]byte(nil), delta...)
	mut[5] = 7
	f.Add(appendFrame(nil, frameDelta, mut))
	// Octet gap running past 255.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 2, 200, 0, 1, 'a', 100, 0, 1, 'b'}))
	// Name sharing more bytes than its predecessor has.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 1, 1, 50, 1, 'x'}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := decodeFrame(data)
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		switch fr.kind {
		case frameSnap:
			if snap, _, err := decodeSnapBody(fr.body); err == nil && snap < 0 {
				t.Fatalf("negative snapshot index %d accepted", snap)
			}
		case frameBase:
			if _, _, entries, err := decodeBaseBody(fr.body); err == nil {
				checkOctetOrder(t, len(entries), func(i int) byte { return entries[i].octet })
				for _, e := range entries {
					if len(e.name) > maxNameBytes {
						t.Fatalf("decoded %d-byte name", len(e.name))
					}
				}
			}
		case frameDelta:
			if _, _, entries, err := decodeDeltaBody(fr.body); err == nil {
				checkOctetOrder(t, len(entries), func(i int) byte { return entries[i].octet })
				for _, e := range entries {
					if len(e.old) > maxNameBytes || len(e.new) > maxNameBytes {
						t.Fatal("decoded oversized name")
					}
				}
			}
		}
		// Whatever follows a valid frame is decoded independently; it must
		// also never panic.
		_, _, _ = decodeFrame(rest)
	})
}

// checkOctetOrder asserts the strictly-ascending octet invariant every
// accepted block must satisfy (the gap encoding makes violations
// unrepresentable; this guards the decoder against regressions).
func checkOctetOrder(t *testing.T, n int, octet func(int) byte) {
	t.Helper()
	for i := 1; i < n; i++ {
		if octet(i) <= octet(i-1) {
			t.Fatalf("octets out of order: entry %d is %d after %d", i, octet(i), octet(i-1))
		}
	}
}

// FuzzSegmentManifest fuzzes the store manifest codec: the manifest is
// the store's single commit point, so a damaged one must be rejected
// with an error — never a panic, never a half-trusted layout. Accepted
// manifests must satisfy every structural invariant (sorted unique
// writers, tiling segments, valid file names) and re-encode to the
// exact bytes that were accepted.
func FuzzSegmentManifest(f *testing.F) {
	// A store as compaction leaves it: two writers, sealed segments, a
	// restarted tail.
	m := &storeManifest{
		baseEvery: 7,
		writers: []manifestWriter{
			{id: "alpha", fileSeq: 4, tailFile: "tail-alpha-3.log", tailFirst: 30, segs: []manifestSegment{
				{file: "seg-alpha-1.seg", first: 0, count: 15},
				{file: "seg-alpha-2.seg", first: 15, count: 15},
			}},
			{id: "beta", fileSeq: 1, tailFile: "tail-beta-0.log", tailFirst: 0},
		},
	}
	good := encodeManifest(m)
	f.Add(good)
	// A fresh single-writer store.
	f.Add(encodeManifest(&storeManifest{baseEvery: 7, writers: []manifestWriter{
		{id: "main", fileSeq: 1, tailFile: "tail-main-0.log"},
	}}))
	// Truncations and bit flips at interesting depths.
	f.Add(good[:8])
	f.Add(good[:len(good)/2])
	f.Add(good[:len(good)-1])
	for _, off := range []int{0, 9, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		f.Add(bad)
	}
	// Unsorted writers and a non-tiling segment chain (CRC-valid).
	f.Add(encodeManifest(&storeManifest{baseEvery: 7, writers: []manifestWriter{
		{id: "zeta", fileSeq: 1, tailFile: "tail-zeta-0.log"},
		{id: "alpha", fileSeq: 1, tailFile: "tail-alpha-0.log"},
	}}))
	f.Add(encodeManifest(&storeManifest{baseEvery: 7, writers: []manifestWriter{
		{id: "a", fileSeq: 3, tailFile: "tail-a-2.log", tailFirst: 99, segs: []manifestSegment{
			{file: "seg-a-1.seg", first: 5, count: 10},
		}},
	}}))
	// A path-traversal file name (CRC-valid).
	f.Add(encodeManifest(&storeManifest{baseEvery: 7, writers: []manifestWriter{
		{id: "a", fileSeq: 1, tailFile: "../../etc/passwd"},
	}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		if m.baseEvery <= 0 {
			t.Fatalf("accepted manifest with base interval %d", m.baseEvery)
		}
		for i, w := range m.writers {
			if !validWriterID(w.id) {
				t.Fatalf("accepted invalid writer id %q", w.id)
			}
			if i > 0 && m.writers[i-1].id >= w.id {
				t.Fatalf("accepted unsorted writers %q >= %q", m.writers[i-1].id, w.id)
			}
			if !validStoreFileName(w.tailFile) {
				t.Fatalf("accepted tail file name %q", w.tailFile)
			}
			next := 0
			for _, g := range w.segs {
				if !validStoreFileName(g.file) {
					t.Fatalf("accepted segment file name %q", g.file)
				}
				if g.first != next || g.count <= 0 {
					t.Fatalf("accepted non-tiling segment chain: %+v", w.segs)
				}
				next = g.first + g.count
			}
			if w.tailFirst != next {
				t.Fatalf("accepted tail first %d after segments end at %d", w.tailFirst, next)
			}
		}
		// Round trip: an accepted manifest re-encodes byte-identically,
		// so rewriting a manifest can never drift the layout.
		if got := encodeManifest(m); string(got) != string(data) {
			t.Fatalf("manifest round trip drifted:\n in  %x\n out %x", data, got)
		}
	})
}

// FuzzSegmentFooter fuzzes the sealed-segment footer index decoder with
// arbitrary bytes against a fixed geometry: rejected or accepted, never
// a panic, and accepted indexes must stay inside the frame region with
// every block opening on a base frame.
func FuzzSegmentFooter(f *testing.F) {
	const (
		firstSnap  = 10
		count      = 15
		frameStart = 40
		footerOff  = 4000
	)
	refs := map[dnswire.Prefix][]blockRef{
		dnswire.MustPrefix("192.0.2.0/24"): {
			{snap: 10, kind: frameBase, off: 40, length: 120},
			{snap: 12, kind: frameDelta, off: 200, length: 30},
			{snap: 14, kind: frameBase, off: 500, length: 90},
		},
		dnswire.MustPrefix("198.51.100.0/24"): {
			{snap: 11, kind: frameBase, off: 160, length: 40},
		},
	}
	good := encodeSegmentFooter(refs, firstSnap)
	f.Add(good)
	f.Add(good[:len(good)/2])
	for _, off := range []int{0, 4, len(good) - 1} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		f.Add(bad)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := decodeSegmentFooter(data, firstSnap, count, frameStart, footerOff)
		if err != nil {
			return
		}
		for p, rs := range decoded {
			if len(rs) == 0 || rs[0].kind != frameBase {
				t.Fatalf("accepted block %s without an opening base", p)
			}
			for i, r := range rs {
				if r.snap < firstSnap || r.snap >= firstSnap+count {
					t.Fatalf("accepted out-of-range snap %d", r.snap)
				}
				if r.off < frameStart || r.off+int64(r.length) > footerOff {
					t.Fatalf("accepted out-of-bounds ref %+v", r)
				}
				if i > 0 && (rs[i].snap <= rs[i-1].snap || rs[i].off <= rs[i-1].off) {
					t.Fatalf("accepted non-monotonic refs %+v", rs)
				}
			}
		}
	})
}
