package histstore

import (
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// FuzzDecodeBlock fuzzes the block codec: an on-disk history log may be
// truncated, bit-rotted, or not a history log at all, and the decoder
// must reject every such input with an error — never a panic, never an
// out-of-range octet, never an oversized name. The corpus seeds the
// shapes the strict checks exist for: truncated frames, corrupt CRCs,
// varint overflows, octet-gap overflow, and prefix-compression overrun.
// Go runs the seeds on every plain `go test`; `make fuzz` explores
// further.
func FuzzDecodeBlock(f *testing.F) {
	p := dnswire.MustPrefix("192.0.2.0/24")
	base := encodeBaseBody(3, p, []baseEntry{
		{octet: 1, name: dnswire.MustName("brians-iphone.lan.example.net")},
		{octet: 2, name: dnswire.MustName("brians-ipad.lan.example.net")},
		{octet: 250, name: dnswire.MustName("printer.example.net")},
	})
	delta := encodeDeltaBody(4, p, []deltaEntry{
		{kind: scanengine.RecordChanged, octet: 1,
			old: dnswire.MustName("brians-iphone.lan.example.net"),
			new: dnswire.MustName("brians-iphone-2.lan.example.net")},
		{kind: scanengine.RecordRemoved, octet: 250, old: dnswire.MustName("printer.example.net")},
	})

	// Well-formed frames of every kind.
	f.Add(appendFrame(nil, frameSnap, encodeSnapBody(0, 1583038800)))
	f.Add(appendFrame(nil, frameBase, base))
	f.Add(appendFrame(nil, frameDelta, delta))
	// Truncations at interesting depths.
	fr := appendFrame(nil, frameBase, base)
	f.Add(fr[:1])
	f.Add(fr[:len(fr)/2])
	f.Add(fr[:len(fr)-1])
	// Corrupt CRC.
	bad := append([]byte(nil), fr...)
	bad[len(bad)-1] ^= 0x01
	f.Add(bad)
	// Unknown frame kind.
	f.Add([]byte{0x00, 0x01, 0xaa, 0, 0, 0, 0})
	// Length uvarint that never terminates (all continuation bits).
	f.Add([]byte{frameBase, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	// Base body with an absurd entry count.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 0xff, 0xff, 0x03}))
	// Delta body with an unknown change kind.
	mut := append([]byte(nil), delta...)
	mut[5] = 7
	f.Add(appendFrame(nil, frameDelta, mut))
	// Octet gap running past 255.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 2, 200, 0, 1, 'a', 100, 0, 1, 'b'}))
	// Name sharing more bytes than its predecessor has.
	f.Add(appendFrame(nil, frameBase, []byte{3, 192, 0, 2, 1, 1, 50, 1, 'x'}))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, rest, err := decodeFrame(data)
		if err != nil {
			return // rejected: fine, as long as nothing panicked
		}
		switch fr.kind {
		case frameSnap:
			if snap, _, err := decodeSnapBody(fr.body); err == nil && snap < 0 {
				t.Fatalf("negative snapshot index %d accepted", snap)
			}
		case frameBase:
			if _, _, entries, err := decodeBaseBody(fr.body); err == nil {
				checkOctetOrder(t, len(entries), func(i int) byte { return entries[i].octet })
				for _, e := range entries {
					if len(e.name) > maxNameBytes {
						t.Fatalf("decoded %d-byte name", len(e.name))
					}
				}
			}
		case frameDelta:
			if _, _, entries, err := decodeDeltaBody(fr.body); err == nil {
				checkOctetOrder(t, len(entries), func(i int) byte { return entries[i].octet })
				for _, e := range entries {
					if len(e.old) > maxNameBytes || len(e.new) > maxNameBytes {
						t.Fatal("decoded oversized name")
					}
				}
			}
		}
		// Whatever follows a valid frame is decoded independently; it must
		// also never panic.
		_, _, _ = decodeFrame(rest)
	})
}

// checkOctetOrder asserts the strictly-ascending octet invariant every
// accepted block must satisfy (the gap encoding makes violations
// unrepresentable; this guards the decoder against regressions).
func checkOctetOrder(t *testing.T, n int, octet func(int) byte) {
	t.Helper()
	for i := 1; i < n; i++ {
		if octet(i) <= octet(i-1) {
			t.Fatalf("octets out of order: entry %d is %d after %d", i, octet(i), octet(i-1))
		}
	}
}
