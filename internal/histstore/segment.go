package histstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rdnsprivacy/internal/dnswire"
)

// A segment is an immutable, sealed run of one writer's snapshots,
// produced by compaction. Its frame region reuses the tail's frame
// format, but the compactor re-lays the content: every block live at the
// segment's first snapshot opens with a fresh base, mid-segment deltas
// are re-based on a sparser cadence, and the redundant delta-chain bases
// the tail accumulated are dropped — that is where compaction reclaims
// space while keeping reconstruction O(deltas to the nearest base).
//
// Layout:
//
//	magic    8 bytes "RDNSSEG1"
//	hdrlen   uvarint (header body length)
//	header   hdrlen bytes: writer id string, first uvarint, count uvarint
//	hdrcrc   4 bytes (IEEE CRC32 over the header body, little-endian)
//	frames   snapshot + block frames exactly as in a tail (codec.go)
//	footer   the per-block frame index (below)
//	trailer  footeroff 8 bytes LE, footercrc 4 bytes LE, magic 8 bytes "RDNSSEGX"
//
// Footer:
//
//	nblocks  uvarint
//	per block, sorted by /24 address ascending:
//	  prefix  3 bytes (the /24's first three octets)
//	  nrefs   uvarint
//	  per ref, snapshot order:
//	    snap  uvarint (first ref: gap from the segment's first snapshot; later: gap from previous, >= 1)
//	    kind  1 byte ('B' or 'L')
//	    off   uvarint (first ref: absolute file offset; later: gap from previous, >= 1)
//	    len   uvarint
//
// The footer lets a cold segment's index reload without replaying its
// frames; the trailer CRC makes any truncation or bit flip of the index
// loud. Segments are written to a temp file, fsynced, and renamed, and
// the manifest references them only after the rename — so a referenced
// segment is always complete, and any damage to one is store corruption,
// never a quietly truncatable tail.

var (
	segMagic        = [8]byte{'R', 'D', 'N', 'S', 'S', 'E', 'G', '1'}
	segTrailerMagic = [8]byte{'R', 'D', 'N', 'S', 'S', 'E', 'G', 'X'}
)

// segTrailerLen is the fixed trailer size: offset + CRC + magic.
const segTrailerLen = 8 + 4 + 8

// maxSegFooterBytes bounds a loaded footer allocation.
const maxSegFooterBytes = 1 << 30

// segment is one sealed segment of a writer. firstSnap/count/size are
// immutable after construction; f and refs are the tier-managed hot
// state, guarded by mu (readers hold mu across their ReadAt calls, so
// eviction never closes a file mid-read).
type segment struct {
	path      string
	writerID  string
	firstSnap int
	count     int
	size      int64

	mu   sync.Mutex
	f    *os.File
	refs map[dnswire.Prefix][]blockRef
	hot  bool // tracked in the tier's LRU list
	// crc caches the trailer's footer CRC — the replication feed's
	// content address — after the first read (replfeed.go).
	crc      uint32
	crcKnown bool
}

func (g *segment) lastSnap() int { return g.firstSnap + g.count - 1 }

// pin returns the segment's index and file, loading them if cold, and a
// release func the caller must invoke when done reading. The segment
// mutex is held until release, serializing reads per segment; the tier
// is notified so occupancy and LRU order stay current.
func (g *segment) pin(s *Store) (map[dnswire.Prefix][]blockRef, *os.File, func(), error) {
	g.mu.Lock()
	if g.refs == nil {
		if err := g.load(); err != nil {
			g.mu.Unlock()
			return nil, nil, nil, err
		}
		s.tierLoads.Add(1)
		s.met.tierLoads.Inc()
		s.noteSegmentLoaded(g)
	} else {
		s.tier.touch(g)
	}
	return g.refs, g.f, g.mu.Unlock, nil
}

// load opens the segment file and rebuilds its index from the footer.
// Callers hold g.mu.
func (g *segment) load() error {
	f, err := os.Open(g.path)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("histstore: %w", err)
	}
	refs, _, _, err := readSegmentIndex(f, fi.Size(), g.writerID, g.firstSnap, g.count)
	if err != nil {
		f.Close()
		return fmt.Errorf("histstore: segment %s: %w", g.path, err)
	}
	g.f, g.refs, g.size = f, refs, fi.Size()
	return nil
}

// unload drops the hot state. Callers hold g.mu.
func (g *segment) unload() {
	if g.f != nil {
		g.f.Close()
		g.f = nil
	}
	g.refs = nil
}

// readSegmentHeader parses the fixed header, returning the writer id,
// first snapshot, count, and the offset where frames begin.
func readSegmentHeader(f *os.File, size int64) (id string, first, count int, frameStart int64, err error) {
	// Headers are tiny; 4KiB covers the magic, length, body, and CRC.
	buf := make([]byte, 4096)
	if size < int64(len(buf)) {
		buf = buf[:size]
	}
	if _, err := f.ReadAt(buf, 0); err != nil {
		return "", 0, 0, 0, corruptf("segment header unreadable: %v", err)
	}
	if len(buf) < len(segMagic)+1 || [8]byte(buf[:8]) != segMagic {
		return "", 0, 0, 0, corruptError("not a histstore segment (bad magic)")
	}
	rest := buf[8:]
	hdrLen, n := binary.Uvarint(rest)
	if n <= 0 || hdrLen > 1024 || int(hdrLen)+4 > len(rest)-n {
		return "", 0, 0, 0, corruptError("segment header truncated")
	}
	body := rest[n : n+int(hdrLen)]
	crcAt := rest[n+int(hdrLen):]
	if want := binary.LittleEndian.Uint32(crcAt[:4]); crc32.ChecksumIEEE(body) != want {
		return "", 0, 0, 0, corruptError("segment header CRC mismatch")
	}
	r := &byteReader{b: body}
	id, err = r.manifestString("writer id", maxWriterIDBytes)
	if err != nil {
		return "", 0, 0, 0, err
	}
	first, err = r.manifestInt("first snapshot", maxManifestSnap)
	if err != nil {
		return "", 0, 0, 0, err
	}
	count, err = r.manifestInt("snapshot count", maxManifestSnap)
	if err != nil {
		return "", 0, 0, 0, err
	}
	if err := r.done(); err != nil {
		return "", 0, 0, 0, err
	}
	return id, first, count, int64(8 + n + int(hdrLen) + 4), nil
}

// encodeSegmentHeader builds the header block for a new segment.
func encodeSegmentHeader(id string, first, count int) []byte {
	body := appendString(nil, id)
	body = binary.AppendUvarint(body, uint64(first))
	body = binary.AppendUvarint(body, uint64(count))
	out := append([]byte(nil), segMagic[:]...)
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(body))
}

// readSegmentIndex validates the trailer and decodes the footer into a
// refs map, cross-checking the header identity against the manifest's
// view of the segment. It returns the frame region bounds [frameStart,
// footerOff) alongside the refs.
func readSegmentIndex(f *os.File, size int64, wantID string, wantFirst, wantCount int) (map[dnswire.Prefix][]blockRef, int64, int64, error) {
	id, first, count, frameStart, err := readSegmentHeader(f, size)
	if err != nil {
		return nil, 0, 0, err
	}
	if id != wantID || first != wantFirst || count != wantCount {
		return nil, 0, 0, corruptf("segment header says %s@%d+%d, manifest says %s@%d+%d",
			id, first, count, wantID, wantFirst, wantCount)
	}
	if size < frameStart+segTrailerLen {
		return nil, 0, 0, corruptError("segment shorter than its trailer")
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-segTrailerLen); err != nil {
		return nil, 0, 0, corruptf("segment trailer unreadable: %v", err)
	}
	if [8]byte(trailer[12:]) != segTrailerMagic {
		return nil, 0, 0, corruptError("segment trailer magic missing (truncated?)")
	}
	footerOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	footerCRC := binary.LittleEndian.Uint32(trailer[8:12])
	footerLen := size - segTrailerLen - footerOff
	if footerOff < frameStart || footerLen < 0 || footerLen > maxSegFooterBytes {
		return nil, 0, 0, corruptf("segment footer offset %d out of range", footerOff)
	}
	footer := make([]byte, footerLen)
	if _, err := f.ReadAt(footer, footerOff); err != nil {
		return nil, 0, 0, corruptf("segment footer unreadable: %v", err)
	}
	if got := crc32.ChecksumIEEE(footer); got != footerCRC {
		return nil, 0, 0, corruptf("segment footer CRC mismatch: stored %08x, computed %08x", footerCRC, got)
	}
	refs, err := decodeSegmentFooter(footer, first, count, frameStart, footerOff)
	if err != nil {
		return nil, 0, 0, err
	}
	return refs, frameStart, footerOff, nil
}

// encodeSegmentFooter serializes the per-block refs index. Blocks are
// emitted in address order; refs must already be in snapshot order.
func encodeSegmentFooter(refs map[dnswire.Prefix][]blockRef, firstSnap int) []byte {
	blocks := make([]dnswire.Prefix, 0, len(refs))
	for p := range refs {
		blocks = append(blocks, p)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Addr.Uint32() < blocks[j].Addr.Uint32() })
	out := binary.AppendUvarint(nil, uint64(len(blocks)))
	for _, p := range blocks {
		out = append(out, p.Addr[0], p.Addr[1], p.Addr[2])
		rs := refs[p]
		out = binary.AppendUvarint(out, uint64(len(rs)))
		prevSnap, prevOff := firstSnap, int64(0)
		for i, r := range rs {
			out = binary.AppendUvarint(out, uint64(r.snap-prevSnap))
			out = append(out, r.kind)
			if i == 0 {
				out = binary.AppendUvarint(out, uint64(r.off))
			} else {
				out = binary.AppendUvarint(out, uint64(r.off-prevOff))
			}
			out = binary.AppendUvarint(out, uint64(r.length))
			prevSnap, prevOff = r.snap, r.off
		}
	}
	return out
}

// decodeSegmentFooter parses the footer bytes into a refs map, strictly
// validating monotonicity and bounds against the frame region.
func decodeSegmentFooter(footer []byte, firstSnap, count int, frameStart, footerOff int64) (map[dnswire.Prefix][]blockRef, error) {
	r := &byteReader{b: footer}
	nBlocks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nBlocks > 1<<24 {
		return nil, corruptf("segment footer claims %d blocks", nBlocks)
	}
	refs := make(map[dnswire.Prefix][]blockRef, nBlocks)
	var prevAddr uint32
	for bi := uint64(0); bi < nBlocks; bi++ {
		hi, err := r.bytes(3)
		if err != nil {
			return nil, err
		}
		p := dnswire.Prefix{Addr: dnswire.IPv4{hi[0], hi[1], hi[2], 0}, Bits: 24}
		if addr := p.Addr.Uint32(); bi > 0 && addr <= prevAddr {
			return nil, corruptf("segment footer blocks out of order at %s", p)
		} else {
			prevAddr = addr
		}
		nRefs, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if nRefs == 0 || nRefs > uint64(count) {
			return nil, corruptf("segment footer block %s claims %d refs over %d snapshots", p, nRefs, count)
		}
		rs := make([]blockRef, 0, nRefs)
		snap, off := firstSnap, int64(0)
		for ri := uint64(0); ri < nRefs; ri++ {
			gap, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if ri > 0 && gap == 0 {
				return nil, corruptf("segment footer block %s has a zero snapshot gap", p)
			}
			snap += int(gap)
			if snap < firstSnap || snap > firstSnap+count-1 {
				return nil, corruptf("segment footer block %s ref at snapshot %d outside [%d,%d]", p, snap, firstSnap, firstSnap+count-1)
			}
			kind, err := r.byte()
			if err != nil {
				return nil, err
			}
			if kind != frameBase && kind != frameDelta {
				return nil, corruptf("segment footer block %s has frame kind 0x%02x", p, kind)
			}
			offGap, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if ri == 0 {
				off = int64(offGap)
			} else {
				if offGap == 0 {
					return nil, corruptf("segment footer block %s has a zero offset gap", p)
				}
				off += int64(offGap)
			}
			length, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if off < frameStart || length == 0 || length > 1<<24 || off+int64(length) > footerOff {
				return nil, corruptf("segment footer block %s ref [%d,+%d) outside frame region", p, off, length)
			}
			rs = append(rs, blockRef{snap: snap, kind: kind, off: off, length: int(length)})
		}
		if rs[0].kind != frameBase {
			return nil, corruptf("segment block %s does not open with a base frame", p)
		}
		refs[p] = rs
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return refs, nil
}

// tier is the hot-segment LRU: at most cap segments keep their index and
// file descriptor in memory; the rest reload lazily from their footers.
// A capacity of zero means unbounded (every segment stays hot).
type tier struct {
	mu  sync.Mutex
	cap int
	// lru holds hot segments, most recently used last.
	lru []*segment
}

func newTier(capacity int) *tier { return &tier{cap: capacity} }

// touch moves g to the MRU position (re-linking it if an eviction
// attempt found it busy and dropped it from the list). Callers hold
// g.mu.
func (t *tier) touch(g *segment) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if g.hot {
		for i, h := range t.lru {
			if h == g {
				copy(t.lru[i:], t.lru[i+1:])
				t.lru[len(t.lru)-1] = g
				break
			}
		}
		return
	}
	g.hot = true
	t.lru = append(t.lru, g)
}

// admit registers a just-loaded segment and returns any LRU victims that
// must be unloaded to respect the capacity. Callers hold g.mu; victims
// are returned rather than unloaded here so the caller can TryLock them
// (never blocking on, or deadlocking with, a concurrent reader).
func (t *tier) admit(g *segment) []*segment {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !g.hot {
		g.hot = true
		t.lru = append(t.lru, g)
	}
	if t.cap <= 0 || len(t.lru) <= t.cap {
		return nil
	}
	n := len(t.lru) - t.cap
	victims := make([]*segment, 0, n)
	for _, v := range t.lru[:n] {
		if v != g {
			v.hot = false
			victims = append(victims, v)
		}
	}
	kept := t.lru[n:]
	if len(victims) < n { // g was in the victim window; keep it
		kept = append([]*segment{g}, kept...)
	}
	t.lru = append([]*segment(nil), kept...)
	return victims
}

// len reports the hot-segment count.
func (t *tier) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lru)
}

// drop removes g from the LRU without unloading (caller does that).
func (t *tier) drop(g *segment) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !g.hot {
		return
	}
	g.hot = false
	for i, h := range t.lru {
		if h == g {
			t.lru = append(t.lru[:i], t.lru[i+1:]...)
			return
		}
	}
}

// noteSegmentLoaded admits g to the tier and evicts any victims whose
// locks are free; busy victims stay hot and re-enter the LRU on their
// next touch.
func (s *Store) noteSegmentLoaded(g *segment) {
	for _, v := range s.tier.admit(g) {
		if v.mu.TryLock() {
			v.unload()
			v.mu.Unlock()
			s.tierEvictions.Add(1)
			s.met.tierEvictions.Inc()
		} else {
			s.tier.touch(v) // in use by a reader: keep it hot
		}
	}
	s.met.tierHot.Set(int64(s.tier.len()))
}

// segmentPath joins the store directory and a manifest file name.
func (s *Store) filePath(name string) string { return filepath.Join(s.dir, name) }
