package histstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/testutil"
)

// mergeCampaigns builds the ground-truth merged view of several writers'
// campaigns: the global timeline is every writer's instants sorted, and
// the state at each instant is the per-IP first-setter-wins merge, in
// writer-id order, of each writer's latest snapshot at or before it.
// Callers pass the campaigns sorted by writer id and must use distinct
// instants across writers (equal instants are legal in the store but
// make the intermediate global snapshot ambiguous for Range).
func mergeCampaigns(blocks []dnswire.Prefix, byID ...*campaign) *campaign {
	type ev struct {
		t time.Time
		w int
	}
	var evs []ev
	for wi, c := range byID {
		for _, tm := range c.times {
			evs = append(evs, ev{tm, wi})
		}
	}
	sort.Slice(evs, func(i, j int) bool {
		if !evs[i].t.Equal(evs[j].t) {
			return evs[i].t.Before(evs[j].t)
		}
		return evs[i].w < evs[j].w
	})
	m := &campaign{blocks: blocks}
	for _, e := range evs {
		snap := scanengine.RecordSet{}
		for _, c := range byID {
			i, ok := c.snapAtOrBefore(e.t)
			if !ok {
				continue
			}
			for ip, name := range c.snaps[i] {
				if _, taken := snap[ip]; !taken {
					snap[ip] = name
				}
			}
		}
		m.times = append(m.times, e.t)
		m.snaps = append(m.snaps, snap)
	}
	return m
}

// assertCleanDir checks that every file in the store directory is either
// store metadata or referenced by the manifest — no leaked temp files or
// orphaned tails/segments survive a recovery.
func assertCleanDir(t *testing.T, dir string) {
	t.Helper()
	m, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil {
		t.Fatal("store has no manifest")
	}
	referenced := map[string]bool{manifestName: true, storeLockName: true}
	for _, w := range m.writers {
		referenced[w.tailFile] = true
		referenced["tail-"+w.id+".lock"] = true
		for _, g := range w.segs {
			referenced[g.file] = true
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if !referenced[e.Name()] {
			t.Errorf("unreferenced file %s left in store", e.Name())
		}
	}
}

// TestCompactionQueryEquivalence is the tentpole property: a 50-day
// campaign answers all four query APIs bit-identically to the raw
// snapshots before compaction, after compaction, after appending past a
// compacted prefix, after a second compaction, and after a close/reopen
// of the compacted layout — and the reopened stats match the stayed-open
// ones exactly.
func TestCompactionQueryEquivalence(t *testing.T) {
	ctx := context.Background()
	c := genCampaign(31, 50)
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path, WithBaseInterval(5), WithCache(128))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	pre := *c
	pre.times, pre.snaps = c.times[:30], c.snaps[:30]
	verifyStore(t, st, &pre, splitmix(1))

	res, err := st.CompactWriter(ctx, DefaultWriter, CompactOptions{})
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	if res.Skipped != "" || res.Sealed != 30 {
		t.Fatalf("compact result: %+v", res)
	}
	verifyStore(t, st, &pre, splitmix(2))
	stats := st.Stats()
	if stats.Segments != 1 || stats.Compaction.Runs != 1 || stats.Compaction.SealedSnapshots != 30 {
		t.Fatalf("post-compaction stats: %+v", stats)
	}

	// The tail restarts after the cut; appends continue seamlessly.
	for i := 30; i < 50; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	verifyStore(t, st, c, splitmix(3))

	// A second compaction seals the regrown tail into a second segment.
	if res, err = st.CompactWriter(ctx, DefaultWriter, CompactOptions{}); err != nil || res.Sealed != 20 {
		t.Fatalf("second compact: %+v, %v", res, err)
	}
	verifyStore(t, st, c, splitmix(4))
	stats = st.Stats()
	if stats.Segments != 2 {
		t.Fatalf("segments = %d, want 2", stats.Segments)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay through both segments plus the empty tail must
	// reproduce the stayed-open store exactly, stats included.
	st2, err := Open(path, WithCache(128))
	if err != nil {
		t.Fatalf("reopen compacted store: %v", err)
	}
	defer st2.Close()
	verifyStore(t, st2, c, splitmix(5))
	s2 := st2.Stats()
	if s2.Snapshots != stats.Snapshots || s2.Blocks != stats.Blocks ||
		s2.BaseFrames != stats.BaseFrames || s2.DeltaFrames != stats.DeltaFrames ||
		s2.Bytes != stats.Bytes || s2.Segments != stats.Segments ||
		s2.TailBytes != stats.TailBytes || s2.SealedBytes != stats.SealedBytes {
		t.Fatalf("reopen stats drifted:\n got  %+v\n want %+v", s2, stats)
	}
	assertCleanDir(t, path)
}

// TestCompactionReclaimsRebases: a long delta-heavy history compacted
// under a sparser in-segment cadence sheds the tail's periodic rebases —
// the headline space win.
func TestCompactionReclaims(t *testing.T) {
	c := genCampaign(7, 60)
	path := filepath.Join(t.TempDir(), "hist")
	// K=2 forces a rebase every other snapshot: maximal redundancy.
	st, err := Open(path, WithBaseInterval(2))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)
	before := st.Stats()
	res, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{BaseInterval: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentBytes >= res.TailBytes {
		t.Fatalf("no reclaim: sealed %d tail bytes into %d segment bytes", res.TailBytes, res.SegmentBytes)
	}
	after := st.Stats()
	if after.Bytes >= before.Bytes {
		t.Fatalf("store grew across compaction: %d -> %d", before.Bytes, after.Bytes)
	}
	if after.Compaction.ReclaimedBytes <= 0 {
		t.Fatalf("reclaimed = %d, want > 0", after.Compaction.ReclaimedBytes)
	}
	verifyStore(t, st, c, splitmix(6))
}

// TestCompactionMidQueryEquivalence parks the compactor at its sealed
// pause point — segment staged, manifest not yet swapped — and proves
// the store answers every query bit-identically while frozen there.
func TestCompactionMidQueryEquivalence(t *testing.T) {
	c := genCampaign(13, 30)
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path, WithBaseInterval(4), WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)

	parked := make(chan struct{})
	resume := make(chan struct{})
	testutil.SetFaultHook(func(point string) error {
		if point == "histstore.compact.sealed" {
			close(parked)
			<-resume
		}
		return nil
	})
	defer testutil.SetFaultHook(nil)

	done := make(chan error, 1)
	go func() {
		_, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{})
		done <- err
	}()
	<-parked
	verifyStore(t, st, c, splitmix(7)) // mid-compaction
	close(resume)
	if err := <-done; err != nil {
		t.Fatalf("compact: %v", err)
	}
	verifyStore(t, st, c, splitmix(8)) // post-compaction
}

// TestCompactionCrashPoints kills the compactor at every fault point in
// the protocol and proves Open recovers to either the pre- or the
// post-compaction manifest — never a torn middle state — with all four
// query APIs still bit-identical to brute-force replay and no stray
// files surviving the orphan sweep.
func TestCompactionCrashPoints(t *testing.T) {
	points := []struct {
		point     string
		committed bool // the manifest swap happened before the crash
	}{
		{"histstore.compact.segment.write", false},
		{"histstore.compact.segment.rename", false},
		{"histstore.compact.sealed", false},
		{"histstore.compact.tail.write", false},
		{"histstore.compact.tail.rename", false},
		{"histstore.compact.manifest.write", false},
		{"histstore.compact.manifest.rename", false},
		{"histstore.compact.cleanup", true},
	}
	errCrash := errors.New("injected crash")
	for _, tc := range points {
		t.Run(strings.TrimPrefix(tc.point, "histstore.compact."), func(t *testing.T) {
			c := genCampaign(17, 25)
			path := filepath.Join(t.TempDir(), "hist")
			st, err := Open(path, WithBaseInterval(3))
			if err != nil {
				t.Fatal(err)
			}
			c.append(t, st)

			testutil.SetFaultHook(func(point string) error {
				if point == tc.point {
					return errCrash
				}
				return nil
			})
			_, err = st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{})
			testutil.SetFaultHook(nil)
			if !errors.Is(err, errCrash) {
				t.Fatalf("compact survived the %s crash: %v", tc.point, err)
			}
			// Simulate the process dying: no graceful close bookkeeping is
			// assumed beyond dropping the handles.
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			st, err = Open(path, WithCache(32))
			if err != nil {
				t.Fatalf("reopen after crash at %s: %v", tc.point, err)
			}
			defer st.Close()
			stats := st.Stats()
			wantSegs := 0
			if tc.committed {
				wantSegs = 1
			}
			if stats.Segments != wantSegs {
				t.Fatalf("recovered to %d segments after crash at %s, want %d", stats.Segments, tc.point, wantSegs)
			}
			if stats.Snapshots != 25 {
				t.Fatalf("recovered %d snapshots, want 25", stats.Snapshots)
			}
			verifyStore(t, st, c, splitmix(9))
			assertCleanDir(t, path)

			// And the recovered store still appends and compacts.
			if err := st.Append(c.times[24].AddDate(0, 0, 1), c.snaps[24]); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if _, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil {
				t.Fatalf("compact after recovery: %v", err)
			}
		})
	}
}

// TestMultiWriterMerge: two vantage-point writers interleave appends into
// one store; the merged timeline, priority-merged states, provenance,
// and all four query APIs match the brute-force merged oracle — before
// and after compacting both writers, and across a reopen.
func TestMultiWriterMerge(t *testing.T) {
	// Seeds 21 and 221 generate identical block sets (same seed mod 100
	// and mod 200), so the writers genuinely fight over addresses.
	ca := genCampaign(21, 40)
	cb := genCampaign(221, 40)
	// Distinct instants: alpha scans at 06:00, beta at 06:30.
	for i := range cb.times {
		cb.times[i] = cb.times[i].Add(30 * time.Minute)
	}
	merged := mergeCampaigns(ca.blocks, ca, cb)

	path := filepath.Join(t.TempDir(), "hist")
	alpha, err := Open(path, WithWriter("alpha"), WithBaseInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	beta, err := Open(path, WithWriter("beta"), WithBaseInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := alpha.Append(ca.times[i], ca.snaps[i]); err != nil {
			t.Fatalf("alpha day %d: %v", i, err)
		}
		if err := beta.Append(cb.times[i], cb.snaps[i]); err != nil {
			t.Fatalf("beta day %d: %v", i, err)
		}
	}

	// Compacting a writer whose owner is alive fails loudly with the
	// lock error; compacting one's own tail works in place.
	if _, err := beta.CompactWriter(context.Background(), "alpha", CompactOptions{}); !errors.Is(err, ErrWriterActive) {
		t.Fatalf("compacting a live foreign writer: %v, want ErrWriterActive", err)
	}
	if res, err := beta.CompactWriter(context.Background(), "beta", CompactOptions{}); err != nil || res.Sealed != 40 {
		t.Fatalf("beta self-compact: %+v, %v", res, err)
	}
	if err := alpha.Close(); err != nil {
		t.Fatal(err)
	}
	if err := beta.Close(); err != nil {
		t.Fatal(err)
	}

	// A read-only observer sees the merged truth.
	ro, err := Open(path, WithReadOnly(), WithCache(128))
	if err != nil {
		t.Fatal(err)
	}
	if ro.Len() != 80 {
		t.Fatalf("merged Len = %d, want 80", ro.Len())
	}
	if ws := ro.Writers(); len(ws) != 2 || ws[0] != "alpha" || ws[1] != "beta" {
		t.Fatalf("writers: %+v", ws)
	}
	for _, w := range ro.Stats().Writers {
		if w.Owned {
			t.Fatalf("read-only store owns writer %q", w.ID)
		}
	}
	verifyStore(t, ro, merged, splitmix(10))

	// Provenance: AtWriter names the writer whose record won the merge.
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		rng := splitmix(uint64(i) + 77)
		b := merged.blocks[rng()%3]
		ip := dnswire.IPv4{b.Addr[0], b.Addr[1], b.Addr[2], byte(rng() % 40)}
		when := merged.times[rng()%uint64(len(merged.times))]
		name, writer, ok, err := ro.AtWriter(ip, when)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		seen[writer] = true
		wantName, wantOK, _ := merged.bruteAt(ip, when)
		if !wantOK || name != wantName {
			t.Fatalf("AtWriter(%s, %s) = (%q, %s), oracle (%q, %v)", ip, when, name, writer, wantName, wantOK)
		}
		// The claimed writer really holds that record at that instant.
		wc := ca
		if writer == "beta" {
			wc = cb
		}
		if n, ok, _ := wc.bruteAt(ip, when); !ok || n != name {
			t.Fatalf("AtWriter attributed %s to %s, which holds (%q, %v)", ip, writer, n, ok)
		}
	}
	if !seen["alpha"] || !seen["beta"] {
		t.Fatalf("provenance sampling never saw both writers: %v", seen)
	}
	if err := ro.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-own alpha, compact the remaining uncompacted tail, reopen, and
	// the merged answers still hold.
	alpha, err = Open(path, WithWriter("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := alpha.CompactWriter(context.Background(), "alpha", CompactOptions{}); err != nil || res.Sealed != 40 {
		t.Fatalf("alpha compact: %+v, %v", res, err)
	}
	verifyStore(t, alpha, merged, splitmix(11))
	if err := alpha.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err = Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	verifyStore(t, ro, merged, splitmix(12))
	assertCleanDir(t, path)
}

// TestWriterLock: the advisory tail lock makes the old latent
// single-writer assumption loud — a second Open of the same writer id
// fails with ErrWriterActive instead of silently corrupting the tail,
// while distinct writers and read-only opens coexist freely.
func TestWriterLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(time.Date(2020, 3, 1, 6, 0, 0, 0, time.UTC), nil); err != nil {
		t.Fatal(err)
	}

	if _, err := Open(path); !errors.Is(err, ErrWriterActive) {
		t.Fatalf("second open of writer %q: %v, want ErrWriterActive", DefaultWriter, err)
	}
	other, err := Open(path, WithWriter("other"))
	if err != nil {
		t.Fatalf("distinct writer blocked: %v", err)
	}
	other.Close()
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatalf("read-only open blocked: %v", err)
	}
	ro.Close()

	// Releasing the writer frees the id for the next owner.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after release: %v", err)
	}
	st2.Close()
}

// TestReadOnlyOpen: a read-only handle requires an existing store,
// refuses Append, and registers no writer.
func TestReadOnlyOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist")
	if _, err := Open(path, WithReadOnly()); !errors.Is(err, ErrNoStore) {
		t.Fatalf("read-only open of nothing: %v, want ErrNoStore", err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Append(time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC), nil); err != nil {
		t.Fatal(err)
	}
	st.Close()
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Append(time.Date(2020, 3, 2, 0, 0, 0, 0, time.UTC), nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only append: %v, want ErrReadOnly", err)
	}
	if id := ro.WriterID(); id != "" {
		t.Fatalf("read-only WriterID = %q, want empty", id)
	}
}

// TestSegmentTiering: with a one-segment hot budget, queries across
// three sealed segments force cold loads and LRU evictions, the
// occupancy gauge never exceeds the budget, and every answer stays
// bit-identical through the churn.
func TestSegmentTiering(t *testing.T) {
	c := genCampaign(23, 45)
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path, WithBaseInterval(4), WithHotSegments(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 45; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
		if (i+1)%15 == 0 {
			if res, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil || res.Sealed != 15 {
				t.Fatalf("compact at day %d: %+v, %v", i, res, err)
			}
		}
	}
	stats := st.Stats()
	if stats.Segments != 3 {
		t.Fatalf("segments = %d, want 3", stats.Segments)
	}
	if stats.HotSegments > 1 {
		t.Fatalf("hot segments = %d over a budget of 1", stats.HotSegments)
	}
	verifyStore(t, st, c, splitmix(13))
	stats = st.Stats()
	if stats.TierLoads == 0 || stats.TierEvictions == 0 {
		t.Fatalf("tier never churned: %+v", stats)
	}
	if stats.HotSegments > 1 {
		t.Fatalf("hot segments = %d over a budget of 1 after churn", stats.HotSegments)
	}
	// The LRU arithmetic holds: every eviction was preceded by an
	// admission, and admissions are cold loads plus the segments born
	// hot (at compaction or replay) without a load count.
	if stats.TierEvictions > stats.TierLoads+uint64(stats.Segments) {
		t.Fatalf("evictions %d exceed loads %d + segments %d", stats.TierEvictions, stats.TierLoads, stats.Segments)
	}
}

// TestSegmentCorruption: any damage to a sealed segment — header, frame
// bytes, footer, trailer, or truncation — fails the next Open loudly.
// Segments are never quietly truncated the way an owned tail is.
func TestSegmentCorruption(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		c := genCampaign(29, 15)
		path := filepath.Join(t.TempDir(), "hist")
		st, err := Open(path, WithBaseInterval(3))
		if err != nil {
			t.Fatal(err)
		}
		c.append(t, st)
		if _, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		segs, err := filepath.Glob(filepath.Join(path, "seg-*.seg"))
		if err != nil || len(segs) != 1 {
			t.Fatalf("segments: %v (err %v)", segs, err)
		}
		return path, segs[0]
	}
	damage := []struct {
		name string
		hurt func(t *testing.T, seg string, size int64)
	}{
		{"flip-header", func(t *testing.T, seg string, size int64) { flipByte(t, seg, 4) }},
		{"flip-frame", func(t *testing.T, seg string, size int64) { flipByte(t, seg, size/2) }},
		{"flip-trailer", func(t *testing.T, seg string, size int64) { flipByte(t, seg, size-4) }},
		{"flip-footer-crc", func(t *testing.T, seg string, size int64) { flipByte(t, seg, size-10) }},
		{"truncate-frames", func(t *testing.T, seg string, size int64) {
			if err := os.Truncate(seg, size/2); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncate-trailer", func(t *testing.T, seg string, size int64) {
			if err := os.Truncate(seg, size-1); err != nil {
				t.Fatal(err)
			}
		}},
		{"empty", func(t *testing.T, seg string, size int64) {
			if err := os.Truncate(seg, 0); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, d := range damage {
		t.Run(d.name, func(t *testing.T) {
			path, seg := build(t)
			fi, err := os.Stat(seg)
			if err != nil {
				t.Fatal(err)
			}
			d.hurt(t, seg, fi.Size())
			st, err := Open(path)
			if err == nil {
				st.Close()
				t.Fatal("opened a store with a damaged segment")
			}
		})
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestCompactSkipsAndGuards: the skip conditions and re-entrancy guard.
func TestCompactSkipsAndGuards(t *testing.T) {
	ctx := context.Background()
	c := genCampaign(37, 5)
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path, WithBaseInterval(7))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)

	// Too small a tail: skipped with the reason, not an error.
	res, err := st.CompactWriter(ctx, DefaultWriter, CompactOptions{})
	if err != nil || res.Skipped == "" || res.Sealed != 0 {
		t.Fatalf("small-tail compact: %+v, %v", res, err)
	}
	// Unknown writer: loud.
	if _, err := st.CompactWriter(ctx, "ghost", CompactOptions{}); err == nil {
		t.Fatal("compacted an unknown writer")
	}
	// Re-entrancy: a second run while one is parked reports busy.
	parked := make(chan struct{})
	resume := make(chan struct{})
	testutil.SetFaultHook(func(point string) error {
		if point == "histstore.compact.sealed" {
			close(parked)
			<-resume
		}
		return nil
	})
	defer testutil.SetFaultHook(nil)
	done := make(chan error, 1)
	go func() {
		_, err := st.CompactWriter(ctx, DefaultWriter, CompactOptions{MinSeal: 1})
		done <- err
	}()
	<-parked
	if _, err := st.CompactWriter(ctx, DefaultWriter, CompactOptions{MinSeal: 1}); !errors.Is(err, ErrCompactBusy) {
		t.Fatalf("concurrent compact: %v, want ErrCompactBusy", err)
	}
	close(resume)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Compact on a closed store: ErrClosed, and the Compact sweep
	// surfaces it rather than skipping.
	st2, err := Open(filepath.Join(t.TempDir(), "other"))
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if _, err := st2.CompactWriter(ctx, DefaultWriter, CompactOptions{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v, want ErrClosed", err)
	}
}

// TestLegacySingleFileRejected: the pre-segmentation format gets a
// pointed migration error, not a confusing parse failure.
func TestLegacySingleFileRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.log")
	legacy := append([]byte{}, fileMagic[:]...)
	legacy = append(legacy, "junk"...)
	if err := os.WriteFile(path, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(path)
	if err == nil || !strings.Contains(err.Error(), "single-file") {
		t.Fatalf("legacy log open: %v, want a single-file-format migration error", err)
	}
}

// TestCompactAllWriters: the sweep variant compacts every idle writer
// and records per-writer skip reasons for the rest.
func TestCompactAllWriters(t *testing.T) {
	ca := genCampaign(41, 12)
	cb := genCampaign(241, 12)
	for i := range cb.times {
		cb.times[i] = cb.times[i].Add(30 * time.Minute)
	}
	path := filepath.Join(t.TempDir(), "hist")
	alpha, err := Open(path, WithWriter("alpha"), WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	beta, err := Open(path, WithWriter("beta"), WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := alpha.Append(ca.times[i], ca.snaps[i]); err != nil {
			t.Fatal(err)
		}
		if err := beta.Append(cb.times[i], cb.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	alpha.Close()

	// beta sweeps: its own tail seals; alpha, opened before beta and
	// already released, is visible only as of beta's open (empty) and is
	// skipped as too small.
	results, err := beta.Compact(context.Background(), CompactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results: %+v", results)
	}
	byWriter := map[string]CompactResult{}
	for _, r := range results {
		byWriter[r.Writer] = r
	}
	if r := byWriter["beta"]; r.Sealed != 12 || r.Skipped != "" {
		t.Fatalf("beta result: %+v", r)
	}
	if r := byWriter["alpha"]; r.Skipped == "" {
		t.Fatalf("alpha result: %+v, want skipped", r)
	}
	beta.Close()

	merged := mergeCampaigns(ca.blocks, ca, cb)
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	verifyStore(t, ro, merged, splitmix(14))
}

// TestColdSegmentCorruptionAtLoad pins the lazy-load failure mode: a
// segment whose trailer is damaged while it sits cold on disk must fail
// the query that reloads it — loudly, naming the segment file — while
// queries inside the resident segment keep answering.
func TestColdSegmentCorruptionAtLoad(t *testing.T) {
	dir := t.TempDir() + "/hist"
	st, err := Open(dir, WithBaseInterval(3), WithHotSegments(1))
	if err != nil {
		t.Fatal(err)
	}
	c := genCampaign(7, 30)
	for i := 0; i < 15; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	for i := 15; i < 30; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := st.CompactWriter(context.Background(), DefaultWriter, CompactOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st, err = Open(dir, WithHotSegments(1))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ip := dnswire.IPv4{c.blocks[0].Addr[0], c.blocks[0].Addr[1], c.blocks[0].Addr[2], 7}
	// The hot tier holds one segment; touching the second segment leaves
	// the first one cold (Open verified both, then evicted the older).
	if _, _, err := st.At(ip, c.times[29]); err != nil {
		t.Fatalf("query in resident segment: %v", err)
	}

	// NOW damage the cold segment's trailer on disk, after Open's eager
	// verification pass — this is the bit-rot-while-cold scenario.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.seg"))
	if err != nil || len(segs) != 2 {
		t.Fatalf("segments on disk: %v (%v)", segs, err)
	}
	sort.Strings(segs)
	fi, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, segs[0], fi.Size()-10)

	// Queries inside the resident segment keep answering...
	if _, _, err := st.At(ip, c.times[29]); err != nil {
		t.Fatalf("query in resident segment after corruption: %v", err)
	}
	// ...but the query that must reload the damaged segment fails loudly.
	if _, _, err := st.At(ip, c.times[2]); err == nil ||
		!strings.Contains(err.Error(), filepath.Base(segs[0])) {
		t.Fatalf("cold corrupted segment: err = %v, want loud failure naming the segment", err)
	}
}

// TestCompactCanceledContext: the sweep checks its context between
// writers and returns promptly once canceled, leaving the store intact.
func TestCompactCanceledContext(t *testing.T) {
	dir := t.TempDir() + "/hist"
	st, err := Open(dir, WithBaseInterval(3))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c := genCampaign(11, 8)
	c.append(t, st)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.Compact(ctx, CompactOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled sweep: %v", err)
	}
	// The store is unharmed: a live context seals as usual.
	res, err := st.Compact(context.Background(), CompactOptions{})
	if err != nil || len(res) != 1 || res[0].Sealed != 8 {
		t.Fatalf("post-cancel sweep: %+v err=%v", res, err)
	}
}
