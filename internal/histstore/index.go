package histstore

import (
	"sort"
	"strings"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// The inverted given-name index: hostname tokens map to (/24, snapshot
// interval) postings, so "find every Brians-iPhone ever seen" walks a map
// instead of replaying the log. Tokens come from the hostname's first
// label (the device-name label the Section 5 analysis matches against),
// split on '-'; a token with a trailing possessive "s" is additionally
// indexed under its stem, so FindName("brian") reaches "brians-iphone".
//
// Postings are maintained incrementally from the same add/remove/change
// transitions that feed the log: a token's interval opens the first
// snapshot a record carrying it appears in a /24 and closes the snapshot
// before the last such record vanishes. Reopening a store replays the
// log through the identical transition code, so the rebuilt index is
// bit-identical to the one the writer held.

// Posting is one FindName result: the token was present in Prefix on
// every snapshot from First through Last inclusive.
type Posting struct {
	Prefix dnswire.Prefix
	First  time.Time
	Last   time.Time
}

// interval is a closed snapshot-index range.
type interval struct {
	first, last int
}

// tokenPostings tracks one (token, /24) pair.
type tokenPostings struct {
	closed []interval
	open   int // first snapshot of the open interval, -1 when none
	active int // records in the /24 currently carrying the token
}

// nameIndex is the full inverted index. Not safe for concurrent use; the
// Store's lock covers it.
type nameIndex struct {
	tokens map[string]map[dnswire.Prefix]*tokenPostings
}

func newNameIndex() *nameIndex {
	return &nameIndex{tokens: make(map[string]map[dnswire.Prefix]*tokenPostings)}
}

// tokensOf extracts the index tokens of a hostname: the first label's
// '-'-separated tokens, plus the stem of any token with a possessive
// trailing "s". Names are already lowercase (dnswire.ParseName
// normalizes).
func tokensOf(name dnswire.Name) []string {
	labels := name.Labels()
	if len(labels) == 0 {
		return nil
	}
	parts := strings.Split(labels[0], "-")
	out := make([]string, 0, len(parts)+1)
	for _, t := range parts {
		if t == "" {
			continue
		}
		out = append(out, t)
		if len(t) > 2 && strings.HasSuffix(t, "s") {
			out = append(out, t[:len(t)-1])
		}
	}
	return out
}

func (ix *nameIndex) get(token string, p dnswire.Prefix) *tokenPostings {
	byPrefix, ok := ix.tokens[token]
	if !ok {
		byPrefix = make(map[dnswire.Prefix]*tokenPostings)
		ix.tokens[token] = byPrefix
	}
	tp, ok := byPrefix[p]
	if !ok {
		tp = &tokenPostings{open: -1}
		byPrefix[p] = tp
	}
	return tp
}

// add records that a hostname carrying the tokens appeared in p at snap.
func (ix *nameIndex) add(name dnswire.Name, p dnswire.Prefix, snap int) {
	for _, token := range tokensOf(name) {
		tp := ix.get(token, p)
		tp.active++
		if tp.active == 1 && tp.open < 0 {
			// Seamless re-appearance: a record removed at snap (present
			// through snap-1) and re-added at snap keeps one interval.
			if n := len(tp.closed); n > 0 && tp.closed[n-1].last == snap-1 {
				tp.open = tp.closed[n-1].first
				tp.closed = tp.closed[:n-1]
			} else {
				tp.open = snap
			}
		}
	}
}

// remove records that a hostname carrying the tokens vanished from p at
// snap (it was last present on snap-1).
func (ix *nameIndex) remove(name dnswire.Name, p dnswire.Prefix, snap int) {
	for _, token := range tokensOf(name) {
		tp := ix.get(token, p)
		tp.active--
		if tp.active == 0 && tp.open >= 0 {
			tp.closed = append(tp.closed, interval{first: tp.open, last: snap - 1})
			tp.open = -1
		}
	}
}

// find returns the postings of a token, sorted by prefix address then
// interval start. lastSnap closes any open interval at the store's
// newest snapshot; times translates snapshot indices to instants.
func (ix *nameIndex) find(token string, lastSnap int, times []time.Time) []Posting {
	byPrefix, ok := ix.tokens[strings.ToLower(token)]
	if !ok {
		return nil
	}
	prefixes := make([]dnswire.Prefix, 0, len(byPrefix))
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool {
		return prefixes[i].Addr.Uint32() < prefixes[j].Addr.Uint32()
	})
	var out []Posting
	for _, p := range prefixes {
		tp := byPrefix[p]
		for _, iv := range tp.closed {
			out = append(out, Posting{Prefix: p, First: times[iv.first], Last: times[iv.last]})
		}
		if tp.open >= 0 {
			out = append(out, Posting{Prefix: p, First: times[tp.open], Last: times[lastSnap]})
		}
	}
	return out
}
