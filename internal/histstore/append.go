package histstore

import (
	"fmt"
	"sort"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// Append adds one snapshot to this store's writer tail: the record set
// the campaign's sweep produced at date. Dates must be strictly
// increasing across the merged timeline. Blocks are written as deltas
// against the writer's previous snapshot, or as fresh bases on first
// appearance and whenever a delta chain has spanned the base interval
// (the within-tail compaction mechanism; segment compaction later
// rewrites these runs sparser).
func (s *Store) Append(date time.Time, recs scanengine.RecordSet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly || s.self == nil {
		return ErrReadOnly
	}
	w := s.self
	date = date.UTC().Truncate(time.Second)
	if len(s.times) > 0 && !date.After(s.times[len(s.times)-1]) {
		return fmt.Errorf("%w: %s is not after %s", ErrOutOfOrder,
			date.Format(time.RFC3339), s.times[len(s.times)-1].Format(time.RFC3339))
	}
	local := len(w.times)
	gi := len(s.times)

	// Group the snapshot by /24.
	newStates := make(map[dnswire.Prefix]blockState)
	for ip, name := range recs {
		p := ip.Slash24()
		st := newStates[p]
		if st == nil {
			st = make(blockState)
			newStates[p] = st
		}
		st[ip[3]] = name
	}

	// The union of the writer's currently-live and newly-seen blocks,
	// sorted so the log layout (and thus the file bytes) is deterministic.
	prefixes := make(map[dnswire.Prefix]bool, len(newStates)+len(w.cur))
	for p := range newStates {
		prefixes[p] = true
	}
	for p := range w.cur {
		prefixes[p] = true
	}
	order := make([]dnswire.Prefix, 0, len(prefixes))
	for p := range prefixes {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Addr.Uint32() < order[j].Addr.Uint32() })

	type pending struct {
		p       dnswire.Prefix
		kind    byte
		changes []deltaEntry
		off     int64 // relative to the buffer start
		length  int
	}
	buf := appendFrame(nil, frameSnap, encodeSnapBody(local, date.Unix()))
	var plan []pending
	for _, p := range order {
		newState := newStates[p]
		changes := diffBlock(w.cur[p], newState)
		known := w.known[p]
		var kind byte
		switch {
		case !known && len(newState) > 0:
			kind = frameBase
		case !known:
			continue // never materialized and still empty
		case local-w.lastBase[p] >= s.baseEvery && w.deltasSince[p] > 0:
			kind = frameBase // compact the delta chain
		case len(changes) > 0:
			kind = frameDelta
		default:
			continue // unchanged
		}
		start := int64(len(buf))
		if kind == frameBase {
			entries := make([]baseEntry, 0, len(newState))
			for octet := 0; octet < 256; octet++ {
				if name, ok := newState[byte(octet)]; ok {
					entries = append(entries, baseEntry{octet: byte(octet), name: name})
				}
			}
			buf = appendFrame(buf, frameBase, encodeBaseBody(local, p, entries))
		} else {
			buf = appendFrame(buf, frameDelta, encodeDeltaBody(local, p, changes))
		}
		plan = append(plan, pending{p: p, kind: kind, changes: changes, off: start, length: int(int64(len(buf)) - start)})
	}

	if _, err := w.tailF.WriteAt(buf, w.tailSize); err != nil {
		w.tailF.Truncate(w.tailSize) // keep the tail at the last good boundary
		return fmt.Errorf("histstore: append: %w", err)
	}
	if s.syncEach {
		if err := w.tailF.Sync(); err != nil {
			return fmt.Errorf("histstore: append: %w", err)
		}
	}

	// Commit: indexes, state, stats. Mirrors applyGroup exactly.
	base := w.tailSize
	w.tailSnapOffsets = append(w.tailSnapOffsets, base)
	w.tailSize += int64(len(buf))
	s.bytes += int64(len(buf))
	s.times = append(s.times, date)
	s.snapWriter = append(s.snapWriter, w.idx)
	s.snapLocal = append(s.snapLocal, local)
	w.times = append(w.times, date)
	w.globalIdx = append(w.globalIdx, gi)
	for _, pd := range plan {
		w.tailBlocks[pd.p] = append(w.tailBlocks[pd.p], blockRef{
			snap: local, kind: pd.kind, off: base + pd.off, length: pd.length,
		})
		w.known[pd.p] = true
		s.blockSet[pd.p] = true
		s.applyFrameChanges(w, gi, pd.p, pd.changes)
		if pd.kind == frameBase {
			w.lastBase[pd.p] = local
			w.deltasSince[pd.p] = 0
			s.baseFrames++
			s.met.baseFrames.Inc()
		} else {
			w.deltasSince[pd.p]++
			s.deltaFrames++
			s.met.deltaFrames.Inc()
		}
	}
	m := s.met
	m.appends.Inc()
	m.appendBytes.Add(uint64(len(buf)))
	s.publishGauges()
	return nil
}
