package histstore

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// TestWriterViewMatchesOwnCampaign pins the single-writer lens against
// the raw campaign oracle: with two writers interleaved in one store,
// each writer's view answers exactly its own campaign — point queries,
// ranges, churn, and instants — never the merged truth.
func TestWriterViewMatchesOwnCampaign(t *testing.T) {
	ca := genCampaign(21, 30)
	cb := genCampaign(221, 30)
	for i := range cb.times {
		cb.times[i] = cb.times[i].Add(30 * time.Minute)
	}

	path := filepath.Join(t.TempDir(), "hist")
	alpha, err := Open(path, WithWriter("alpha"), WithBaseInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	beta, err := Open(path, WithWriter("beta"), WithBaseInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := alpha.Append(ca.times[i], ca.snaps[i]); err != nil {
			t.Fatal(err)
		}
		if err := beta.Append(cb.times[i], cb.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	// Seal part of alpha so views cross the tail/segment boundary.
	if _, err := alpha.CompactWriter(t.Context(), "alpha", CompactOptions{MinSeal: 5}); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Close(); err != nil {
		t.Fatal(err)
	}
	if err := beta.Close(); err != nil {
		t.Fatal(err)
	}

	ro, err := Open(path, WithReadOnly(), WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()

	if _, err := ro.WriterView("nobody"); err == nil {
		t.Fatal("WriterView(nobody) succeeded")
	}

	for _, tc := range []struct {
		id string
		c  *campaign
	}{{"alpha", ca}, {"beta", cb}} {
		v, err := ro.WriterView(tc.id)
		if err != nil {
			t.Fatal(err)
		}
		if v.ID() != tc.id {
			t.Fatalf("ID() = %q", v.ID())
		}
		times := v.Times()
		if len(times) != len(tc.c.times) {
			t.Fatalf("%s: %d instants, want %d", tc.id, len(times), len(tc.c.times))
		}
		for i := range times {
			if !times[i].Equal(tc.c.times[i]) {
				t.Fatalf("%s: times[%d] = %s, want %s", tc.id, i, times[i], tc.c.times[i])
			}
		}

		// Before the writer's history.
		if _, _, err := v.At(dnswire.IPv4{10, 1, 1, 1}, tc.c.times[0].Add(-time.Hour)); !errors.Is(err, ErrBeforeHistory) {
			t.Fatalf("%s: pre-history At err = %v", tc.id, err)
		}

		rng := splitmix(uint64(len(tc.id)) + 5)
		for i := 0; i < 300; i++ {
			b := tc.c.blocks[rng()%uint64(len(tc.c.blocks))]
			ip := dnswire.IPv4{b.Addr[0], b.Addr[1], b.Addr[2], byte(rng() % 40)}
			when := tc.c.times[rng()%uint64(len(tc.c.times))].Add(time.Duration(rng()%7) * time.Minute)
			name, ok, err := v.At(ip, when)
			if err != nil {
				t.Fatal(err)
			}
			wantName, wantOK, _ := tc.c.bruteAt(ip, when)
			if ok != wantOK || name != wantName {
				t.Fatalf("%s: At(%s, %s) = (%q, %v), oracle (%q, %v)", tc.id, ip, when, name, ok, wantName, wantOK)
			}
		}

		for _, b := range tc.c.blocks {
			rows, err := v.Range(b, times[0], times[len(times)-1])
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, r := range rows {
				got = append(got, fmt.Sprintf("%s %s %s", r.Date.Format(time.RFC3339), r.IP, r.PTR))
			}
			want := tc.c.bruteRange(b, times[0], times[len(times)-1])
			if len(got) != len(want) {
				t.Fatalf("%s: Range(%s) %d rows, oracle %d", tc.id, b, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: Range row %d = %q, want %q", tc.id, i, got[i], want[i])
				}
			}

			// Churn against the writer's own baseline: replay the raw
			// snapshots and diff.
			days, err := v.Churn(b, times[0], times[len(times)-1])
			if err != nil {
				t.Fatal(err)
			}
			if len(days) != len(times)-1 {
				t.Fatalf("%s: churn %d days, want %d", tc.id, len(days), len(times)-1)
			}
			for i, d := range days {
				var add, rem, chg int
				prev, cur := tc.c.snaps[i], tc.c.snaps[i+1]
				for ip, name := range cur {
					if !b.Contains(ip) {
						continue
					}
					if old, ok := prev[ip]; !ok {
						add++
					} else if old != name {
						chg++
					}
				}
				for ip := range prev {
					if !b.Contains(ip) {
						continue
					}
					if _, ok := cur[ip]; !ok {
						rem++
					}
				}
				if d.Added != add || d.Removed != rem || d.Changed != chg {
					t.Fatalf("%s: churn day %d = %+v, want +%d -%d ~%d", tc.id, i, d, add, rem, chg)
				}
			}
		}
	}
}

// TestWriterViewCopies pins that BlockAt hands out copies: mutating a
// returned map must not corrupt the store's cached or live state — the
// solo fast path aliases live maps internally.
func TestWriterViewCopies(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	day := time.Date(2021, 5, 1, 13, 0, 0, 0, time.UTC)
	ip := dnswire.IPv4{10, 2, 3, 4}
	if err := st.Append(day, scanengine.RecordSet{ip: dnswire.MustName("a.example.net")}); err != nil {
		t.Fatal(err)
	}
	v, err := st.WriterView(DefaultWriter)
	if err != nil {
		t.Fatal(err)
	}
	blocks := v.Blocks()
	if len(blocks) != 1 || blocks[0] != ip.Slash24() {
		t.Fatalf("Blocks() = %v", blocks)
	}
	m, err := v.BlockAt(ip.Slash24(), day)
	if err != nil {
		t.Fatal(err)
	}
	if m[ip[3]] != dnswire.MustName("a.example.net") {
		t.Fatalf("BlockAt = %v", m)
	}
	m[ip[3]] = "tampered.example.net"
	delete(m, ip[3])
	if name, ok, err := v.At(ip, day); err != nil || !ok || name != dnswire.MustName("a.example.net") {
		t.Fatalf("after mutating copy: At = (%q, %v, %v)", name, ok, err)
	}
	if name, ok, err := st.At(ip, day); err != nil || !ok || name != dnswire.MustName("a.example.net") {
		t.Fatalf("after mutating copy: store At = (%q, %v, %v)", name, ok, err)
	}
	// Absent block yields nil, no error.
	if m, err := v.BlockAt(dnswire.MustPrefix("192.0.2.0/24"), day); err != nil || m != nil {
		t.Fatalf("absent BlockAt = (%v, %v)", m, err)
	}
}

// TestDivergence pins the live disagreement summary on a hand-built
// two-writer conflict, and full agreement on a solo store.
func TestDivergence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist")
	alpha, err := Open(path, WithWriter("alpha"))
	if err != nil {
		t.Fatal(err)
	}
	beta, err := Open(path, WithWriter("beta"))
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2021, 5, 1, 13, 0, 0, 0, time.UTC)
	b := dnswire.MustPrefix("10.1.1.0/24")
	mk := func(o byte) dnswire.IPv4 { return dnswire.IPv4{b.Addr[0], b.Addr[1], b.Addr[2], o} }
	if err := alpha.Append(day, scanengine.RecordSet{
		mk(1): "shared.example.net", mk(2): "alpha-wins.example.net", mk(3): "only-alpha.example.net",
	}); err != nil {
		t.Fatal(err)
	}
	if err := beta.Append(day, scanengine.RecordSet{
		mk(1): "shared.example.net", mk(2): "beta-loses.example.net", mk(4): "only-beta.example.net",
	}); err != nil {
		t.Fatal(err)
	}
	if err := alpha.Close(); err != nil {
		t.Fatal(err)
	}
	if err := beta.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()

	d := ro.Divergence()
	if d.Addresses != 4 {
		t.Fatalf("Addresses = %d, want 4", d.Addresses)
	}
	want := []WriterDivergence{
		{ID: "alpha", Records: 3, Agreements: 3, Conflicts: 0, Missing: 1, Exclusive: 1},
		{ID: "beta", Records: 3, Agreements: 2, Conflicts: 1, Missing: 1, Exclusive: 1},
	}
	if len(d.Writers) != len(want) {
		t.Fatalf("writers: %+v", d.Writers)
	}
	for i := range want {
		if d.Writers[i] != want[i] {
			t.Fatalf("writer %d = %+v, want %+v", i, d.Writers[i], want[i])
		}
	}

	solo, err := Open(filepath.Join(t.TempDir(), "solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer solo.Close()
	if err := solo.Append(day, scanengine.RecordSet{mk(1): "a.example.net"}); err != nil {
		t.Fatal(err)
	}
	sd := solo.Divergence()
	if sd.Addresses != 1 || len(sd.Writers) != 1 || sd.Writers[0].Conflicts != 0 || sd.Writers[0].Missing != 0 || sd.Writers[0].Agreements != 1 {
		t.Fatalf("solo divergence: %+v", sd)
	}
}

// TestBlocksAndEmptyWindows: Blocks lists the block universe sorted by
// address across writers, and view queries over windows outside a
// writer's history come back empty rather than erroring.
func TestBlocksAndEmptyWindows(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist")
	wa, err := Open(path, WithWriter("wa"))
	if err != nil {
		t.Fatal(err)
	}
	wb, err := Open(path, WithWriter("wb"))
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2021, 7, 1, 13, 0, 0, 0, time.UTC)
	if err := wa.Append(at, scanengine.RecordSet{
		dnswire.IPv4{10, 9, 1, 7}: dnswire.MustName("a.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := wb.Append(at, scanengine.RecordSet{
		dnswire.IPv4{10, 2, 1, 7}: dnswire.MustName("b.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}
	ro, err := Open(path, WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()

	blocks := ro.Blocks()
	if len(blocks) != 2 ||
		blocks[0] != (dnswire.Prefix{Addr: dnswire.IPv4{10, 2, 1, 0}, Bits: 24}) ||
		blocks[1] != (dnswire.Prefix{Addr: dnswire.IPv4{10, 9, 1, 0}, Bits: 24}) {
		t.Fatalf("blocks = %v", blocks)
	}

	v, err := ro.WriterView("wa")
	if err != nil {
		t.Fatal(err)
	}
	// Windows that miss the writer's single instant: inverted, before,
	// and after.
	for _, w := range [][2]time.Time{
		{at.AddDate(0, 0, 1), at},
		{at.AddDate(0, 0, -2), at.AddDate(0, 0, -1)},
		{at.AddDate(0, 0, 1), at.AddDate(0, 0, 2)},
	} {
		rows, err := v.Range(blocks[1], w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 0 {
			t.Fatalf("window %v rows = %v, want none", w, rows)
		}
		days, err := v.Churn(blocks[1], w[0], w[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(days) != 0 {
			t.Fatalf("window %v churn = %v, want none", w, days)
		}
	}
	// A block the writer never touched yields nothing; one instant means
	// no churn days at all.
	if rows, err := v.Range(blocks[0], at, at); err != nil || len(rows) != 0 {
		t.Fatalf("foreign block rows = %v err = %v", rows, err)
	}
	if st, err := v.BlockAt(blocks[0], at); err != nil || len(st) != 0 {
		t.Fatalf("foreign BlockAt = %v err = %v", st, err)
	}
}
