package histstore

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/testutil"
)

// Compaction seals a writer's accumulated tail snapshots into an
// immutable segment and restarts the tail, reclaiming the redundant
// delta-chain rebases the append path wrote and re-basing old delta runs
// on a sparser cadence. The protocol is crash-atomic:
//
//	phase A (shared lock)   stream the tail's sealed range into a segment
//	                        image: every block live at the cut gets an
//	                        opening base, deltas are re-based every
//	                        BaseInterval snapshots, no-op rebases vanish
//	stage                   write segment to *.tmp, fsync, rename
//	phase C (write lock)    write the replacement tail (header + the
//	                        bytes past the cut), rename it, then swap the
//	                        manifest under STORE.lock — the one commit
//	                        point — and splice the new segment and tail
//	                        into the live store
//	cleanup                 delete the old tail (best effort; a leftover
//	                        is swept at the next open)
//
// A crash anywhere before the manifest rename leaves the store exactly
// as it was (staged files are swept as orphans); a crash after it leaves
// the compacted layout. Queries run throughout — phase A holds only the
// read lock — and answers are bit-identical before, during, and after
// (see TestCompactionQueryEquivalence and TestCompactionCrashPoints).
//
// The testutil.Fault points, in protocol order:
//
//	histstore.compact.segment.write
//	histstore.compact.segment.rename
//	histstore.compact.sealed
//	histstore.compact.tail.write
//	histstore.compact.tail.rename
//	histstore.compact.manifest.write
//	histstore.compact.manifest.rename
//	histstore.compact.cleanup

// ErrCompactBusy reports a Compact call while another is in flight on
// this Store.
var ErrCompactBusy = errors.New("histstore: compaction already running")

// errStoreChanged reports that another process mutated the writer
// between this store's open and its compaction commit.
var errStoreChanged = errors.New("histstore: store changed concurrently; reopen and retry")

// CompactOptions tunes a compaction run. Zero values take defaults.
type CompactOptions struct {
	// MinSeal is the minimum tail snapshots worth sealing (default: the
	// store's base interval K) — tinier tails stay put.
	MinSeal int
	// BaseInterval is the in-segment base cadence (default 4K): sparser
	// than the tail's because sealed history is read-optimized through
	// the segment footer index, not crash-truncated.
	BaseInterval int
}

// CompactResult reports one writer's compaction outcome.
type CompactResult struct {
	// Writer is the writer id the result describes.
	Writer string `json:"writer"`
	// Sealed is how many snapshots moved into the new segment; Segment
	// its file name.
	Sealed  int    `json:"sealed"`
	Segment string `json:"segment,omitempty"`
	// TailBytes is the sealed tail span; SegmentBytes what replaced it.
	// Their difference is the reclaimed space (negative when opening
	// bases outweigh the dropped rebases).
	TailBytes    int64 `json:"tail_bytes"`
	SegmentBytes int64 `json:"segment_bytes"`
	// Skipped carries the reason nothing was sealed ("" on success).
	Skipped string `json:"skipped,omitempty"`
}

// Compact runs CompactWriter over every writer in the store, skipping —
// with the reason recorded — writers whose tails are too small or whose
// owning process holds the tail lock.
func (s *Store) Compact(ctx context.Context, opts CompactOptions) ([]CompactResult, error) {
	s.mu.RLock()
	ids := make([]string, len(s.writers))
	for i, w := range s.writers {
		ids[i] = w.id
	}
	s.mu.RUnlock()
	var out []CompactResult
	for _, id := range ids {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := s.CompactWriter(ctx, id, opts)
		if errors.Is(err, ErrWriterActive) {
			res = CompactResult{Writer: id, Skipped: "writer active in another process"}
			err = nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

// CompactWriter compacts one writer's tail. The writer's tail lock must
// be free or owned by this store — an active foreign appender yields
// ErrWriterActive. Queries keep running throughout; Append (for an owned
// writer) interleaves between the seal and the commit.
func (s *Store) CompactWriter(ctx context.Context, id string, opts CompactOptions) (CompactResult, error) {
	res := CompactResult{Writer: id}
	if !s.compactRunning.CompareAndSwap(false, true) {
		return res, ErrCompactBusy
	}
	defer s.compactRunning.Store(false)

	minSeal := opts.MinSeal
	if minSeal <= 0 {
		minSeal = s.baseEvery
	}
	segK := opts.BaseInterval
	if segK <= 0 {
		segK = 4 * s.baseEvery
	}

	// Locate the writer and, if we do not own it for the session, hold
	// its tail lock for the duration of the run.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return res, ErrClosed
	}
	var w *writerState
	for _, cand := range s.writers {
		if cand.id == id {
			w = cand
			break
		}
	}
	if w == nil {
		s.mu.RUnlock()
		return res, fmt.Errorf("histstore: unknown writer %q", id)
	}
	owned := w.owned
	s.mu.RUnlock()
	var transientLock *os.File
	if !owned {
		var err error
		transientLock, err = acquireFileLock(filepath.Join(s.dir, "tail-"+id+".lock"))
		if err != nil {
			return res, err
		}
		defer releaseFileLock(transientLock)
	}

	// Phase A: build the segment image from the sealed tail span, under
	// the read lock so queries and the obs scrapers keep flowing.
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return res, ErrClosed
	}
	first := w.tailFirst
	sealCount := len(w.times) - first
	if sealCount < minSeal {
		s.mu.RUnlock()
		res.Skipped = fmt.Sprintf("tail holds %d snapshots, need %d", sealCount, minSeal)
		return res, nil
	}
	cut := first + sealCount - 1
	cutOff := w.tailSize
	segName := segFileName(id, w.fileSeq)
	newTailName := tailFileName(id, w.fileSeq+1)
	oldTailName := w.tailFile
	oldTailHeaderLen := w.tailHeaderLen
	build, err := s.buildSegment(w, first, cut, cutOff, segK)
	s.mu.RUnlock()
	if err != nil {
		return res, err
	}
	res.Sealed = sealCount
	res.Segment = segName
	res.TailBytes = cutOff - oldTailHeaderLen
	res.SegmentBytes = int64(len(build.data))

	// Stage the segment: tmp + fsync + rename. Nothing references it yet.
	if err := testutil.Fault("histstore.compact.segment.write"); err != nil {
		return res, err
	}
	segPath := s.filePath(segName)
	if err := writeFileSync(segPath+".tmp", build.data); err != nil {
		return res, err
	}
	if err := testutil.Fault("histstore.compact.segment.rename"); err != nil {
		return res, err
	}
	if err := os.Rename(segPath+".tmp", segPath); err != nil {
		return res, fmt.Errorf("histstore: staging segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return res, err
	}

	// The sealed pause point: tests park here to prove queries answer
	// bit-identically mid-compaction, and crash tests kill here to prove
	// a staged-but-unreferenced segment is swept harmlessly.
	if err := testutil.Fault("histstore.compact.sealed"); err != nil {
		return res, err
	}
	if err := ctx.Err(); err != nil {
		return res, err
	}

	// Phase C: replacement tail, manifest commit, in-memory splice.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return res, ErrClosed
	}
	fi, err := w.tailF.Stat()
	if err != nil {
		return res, fmt.Errorf("histstore: %w", err)
	}
	diskSize := fi.Size()
	if diskSize < cutOff {
		return res, fmt.Errorf("%w (tail shrank)", errStoreChanged)
	}
	newHdr := encodeTailHeader(cut + 1)
	newTailBuf := make([]byte, int64(len(newHdr))+diskSize-cutOff)
	copy(newTailBuf, newHdr)
	if diskSize > cutOff {
		if _, err := w.tailF.ReadAt(newTailBuf[len(newHdr):], cutOff); err != nil {
			return res, fmt.Errorf("histstore: copying tail remainder: %w", err)
		}
	}
	if err := testutil.Fault("histstore.compact.tail.write"); err != nil {
		return res, err
	}
	newTailPath := s.filePath(newTailName)
	if err := writeFileSync(newTailPath+".tmp", newTailBuf); err != nil {
		return res, err
	}
	if err := testutil.Fault("histstore.compact.tail.rename"); err != nil {
		return res, err
	}
	if err := os.Rename(newTailPath+".tmp", newTailPath); err != nil {
		return res, fmt.Errorf("histstore: staging tail: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		return res, err
	}

	// Open the replacement handles before committing, so a commit is
	// never followed by a failure to serve.
	tailFlags := os.O_RDONLY
	if w.owned {
		tailFlags = os.O_RDWR
	}
	newF, err := os.OpenFile(newTailPath, tailFlags, 0)
	if err != nil {
		return res, fmt.Errorf("histstore: %w", err)
	}
	segF, err := os.Open(segPath)
	if err != nil {
		newF.Close()
		return res, fmt.Errorf("histstore: %w", err)
	}

	// Manifest read-modify-write under STORE.lock: the commit point.
	err = func() error {
		storeLock, err := acquireFileLockBlocking(filepath.Join(s.dir, storeLockName))
		if err != nil {
			return err
		}
		defer releaseFileLock(storeLock)
		m, err := readManifest(s.dir)
		if err != nil {
			return err
		}
		i := -1
		if m != nil {
			i = m.findWriter(id)
		}
		if i < 0 || m.writers[i].tailFile != oldTailName {
			return errStoreChanged
		}
		mw := m.writers[i]
		mw.segs = append(mw.segs, manifestSegment{file: segName, first: first, count: sealCount})
		mw.tailFile = newTailName
		mw.tailFirst = cut + 1
		mw.fileSeq = w.fileSeq + 2
		m.writers[i] = mw
		return writeManifest(s.dir, m, testutil.Fault)
	}()
	if err != nil {
		newF.Close()
		segF.Close()
		return res, err
	}

	// Committed on disk; splice the new layout into the live store.
	newSeg := &segment{
		path:      segPath,
		writerID:  id,
		firstSnap: first,
		count:     sealCount,
		size:      int64(len(build.data)),
		f:         segF,
		refs:      build.refs,
	}
	w.segs = append(w.segs, newSeg)
	s.noteSegmentLoaded(newSeg)
	oldKnownTail := w.tailSize
	oldF := w.tailF
	w.tailF = newF
	w.tailFile = newTailName
	w.fileSeq += 2
	w.tailFirst = cut + 1
	shift := int64(len(newHdr)) - cutOff
	w.tailHeaderLen = int64(len(newHdr))
	w.tailSize = int64(len(newTailBuf))
	surviving := make(map[dnswire.Prefix][]blockRef)
	for p, rs := range w.tailBlocks {
		for _, r := range rs {
			if r.snap > cut {
				r.off += shift
				surviving[p] = append(surviving[p], r)
			}
		}
	}
	w.tailBlocks = surviving
	offs := make([]int64, 0, len(w.tailSnapOffsets)-sealCount)
	for _, off := range w.tailSnapOffsets[sealCount:] {
		offs = append(offs, off+shift)
	}
	w.tailSnapOffsets = offs
	s.recomputeCadence(w, newSeg)
	s.baseFrames += build.baseFrames - build.sealedBases
	s.deltaFrames += build.deltaFrames - build.sealedDeltas
	s.bytes += newSeg.size + w.tailSize - oldKnownTail
	oldF.Close()

	s.compactions.Add(1)
	s.met.compactions.Inc()
	s.compactSealed.Add(uint64(sealCount))
	s.met.compactSealed.Add(uint64(sealCount))
	if reclaimed := res.TailBytes - res.SegmentBytes; reclaimed > 0 {
		s.compactReclaim.Add(reclaimed)
		s.met.compactReclaim.Add(uint64(reclaimed))
	} else {
		s.compactReclaim.Add(reclaimed)
	}
	s.publishGauges()

	// Cleanup is outside the commit: a leftover old tail is unreferenced
	// and swept at the next open.
	if err := testutil.Fault("histstore.compact.cleanup"); err != nil {
		return res, err
	}
	os.Remove(s.filePath(oldTailName))
	return res, nil
}

// recomputeCadence rebuilds lastBase/deltasSince for every block the
// compaction re-laid, so the in-memory append schedule matches what a
// reopen would replay — keeping the stayed-open and reopened stores
// byte-identical for all future appends.
func (s *Store) recomputeCadence(w *writerState, newSeg *segment) {
	affected := make(map[dnswire.Prefix]bool, len(newSeg.refs))
	for p := range newSeg.refs {
		affected[p] = true
	}
	for p := range w.tailBlocks {
		affected[p] = true
	}
	for p := range affected {
		lastBase, deltas := -1, 0
		walk := func(rs []blockRef) {
			for _, r := range rs {
				if r.kind == frameBase {
					lastBase, deltas = r.snap, 0
				} else {
					deltas++
				}
			}
		}
		walk(newSeg.refs[p])
		walk(w.tailBlocks[p])
		if lastBase >= 0 {
			w.lastBase[p] = lastBase
		}
		w.deltasSince[p] = deltas
	}
}

// segBuild is the in-memory image of a segment under construction.
type segBuild struct {
	data []byte
	refs map[dnswire.Prefix][]blockRef
	// Frames emitted into the segment vs the original frames sealed out
	// of the tail — the difference adjusts the store's frame counters.
	baseFrames, deltaFrames   int
	sealedBases, sealedDeltas int
}

// buildSegment streams the tail span [first, cut] into a segment image:
// carried-over block states get opening bases, original frames re-encode
// under the sparser segK cadence, and rebases that change nothing are
// dropped. Callers hold at least the read lock.
func (s *Store) buildSegment(w *writerState, first, cut int, cutOff int64, segK int) (*segBuild, error) {
	// Carried-over states: every block live just before the cut span.
	running := make(map[dnswire.Prefix]blockState)
	for p := range w.known {
		st, err := s.writerStateAt(w.idx, p, first-1)
		if err != nil {
			return nil, err
		}
		if len(st) == 0 {
			continue
		}
		cp := make(blockState, len(st))
		for o, name := range st {
			cp[o] = name
		}
		running[p] = cp
	}

	count := cut - first + 1
	b := &segBuild{
		data: encodeSegmentHeader(w.id, first, count),
		refs: make(map[dnswire.Prefix][]blockRef),
	}
	lastBaseSeg := make(map[dnswire.Prefix]int)
	deltasSeg := make(map[dnswire.Prefix]int)

	emitBase := func(snap int, p dnswire.Prefix, st blockState) {
		entries := make([]baseEntry, 0, len(st))
		for octet := 0; octet < 256; octet++ {
			if name, ok := st[byte(octet)]; ok {
				entries = append(entries, baseEntry{octet: byte(octet), name: name})
			}
		}
		start := int64(len(b.data))
		b.data = appendFrame(b.data, frameBase, encodeBaseBody(snap, p, entries))
		b.refs[p] = append(b.refs[p], blockRef{snap: snap, kind: frameBase, off: start, length: int(int64(len(b.data)) - start)})
		lastBaseSeg[p] = snap
		deltasSeg[p] = 0
		b.baseFrames++
	}
	emitDelta := func(snap int, p dnswire.Prefix, changes []deltaEntry) {
		start := int64(len(b.data))
		b.data = appendFrame(b.data, frameDelta, encodeDeltaBody(snap, p, changes))
		b.refs[p] = append(b.refs[p], blockRef{snap: snap, kind: frameDelta, off: start, length: int(int64(len(b.data)) - start)})
		deltasSeg[p]++
		b.deltaFrames++
	}

	// One original frame's effect: the changes at this snapshot and the
	// block's resulting state.
	type frameEffect struct {
		p       dnswire.Prefix
		changes []deltaEntry
	}
	applyOriginal := func(fr frame) (frameEffect, error) {
		switch fr.kind {
		case frameBase:
			_, p, entries, err := decodeBaseBody(fr.body)
			if err != nil {
				return frameEffect{}, err
			}
			newState := make(blockState, len(entries))
			for _, e := range entries {
				newState[e.octet] = e.name
			}
			changes := diffBlock(running[p], newState)
			if len(newState) == 0 {
				delete(running, p)
			} else {
				running[p] = newState
			}
			b.sealedBases++
			return frameEffect{p: p, changes: changes}, nil
		case frameDelta:
			_, p, entries, err := decodeDeltaBody(fr.body)
			if err != nil {
				return frameEffect{}, err
			}
			st := running[p]
			if st == nil {
				st = make(blockState)
				running[p] = st
			}
			for _, e := range entries {
				if e.kind == scanengine.RecordRemoved {
					delete(st, e.octet)
				} else {
					st[e.octet] = e.new
				}
			}
			if len(st) == 0 {
				delete(running, p)
			}
			b.sealedDeltas++
			return frameEffect{p: p, changes: entries}, nil
		}
		return frameEffect{}, corruptf("unknown frame kind 0x%02x", fr.kind)
	}

	sc := &frameScanner{
		r:   bufio.NewReaderSize(io.NewSectionReader(w.tailF, w.tailHeaderLen, cutOff-w.tailHeaderLen), 1<<16),
		off: w.tailHeaderLen,
	}
	snap := first - 1
	var firstGroup []frameEffect
	flushFirst := func() {
		if snap != first {
			return
		}
		// The opening snapshot: every live block gets a fresh base, in
		// address order, whether or not the tail touched it here.
		touched := make(map[dnswire.Prefix]bool, len(firstGroup))
		for _, fe := range firstGroup {
			touched[fe.p] = true
		}
		order := make([]dnswire.Prefix, 0, len(running)+len(firstGroup))
		for p := range running {
			order = append(order, p)
		}
		for p := range touched {
			if _, live := running[p]; !live {
				order = append(order, p)
			}
		}
		sort.Slice(order, func(i, j int) bool { return order[i].Addr.Uint32() < order[j].Addr.Uint32() })
		for _, p := range order {
			emitBase(first, p, running[p])
		}
		firstGroup = nil
	}
	for {
		fr, start, _, err := sc.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("histstore: sealing %s at offset %d: %w", w.tailFile, start, err)
		}
		if fr.kind == frameSnap {
			flushFirst()
			ls, unixSec, err := decodeSnapBody(fr.body)
			if err != nil {
				return nil, err
			}
			if ls != snap+1 {
				return nil, corruptf("sealing %s: snapshot header %d, expected %d", w.tailFile, ls, snap+1)
			}
			snap = ls
			b.data = appendFrame(b.data, frameSnap, encodeSnapBody(ls, unixSec))
			continue
		}
		fe, err := applyOriginal(fr)
		if err != nil {
			return nil, err
		}
		if snap == first {
			firstGroup = append(firstGroup, fe)
			continue
		}
		p := fe.p
		seen := len(b.refs[p]) > 0
		switch {
		case !seen:
			// A block's first in-segment frame must be a base — the
			// invariant segStateAt's absence-means-dead shortcut needs.
			emitBase(snap, p, running[p])
		case snap-lastBaseSeg[p] >= segK && deltasSeg[p] > 0:
			emitBase(snap, p, running[p])
		case len(fe.changes) > 0:
			emitDelta(snap, p, fe.changes)
		default:
			// A rebase that changed nothing: reclaimed.
		}
	}
	flushFirst()
	if snap != cut {
		return nil, corruptf("sealing %s: span ends at snapshot %d, expected %d", w.tailFile, snap, cut)
	}

	footerOff := int64(len(b.data))
	footer := encodeSegmentFooter(b.refs, first)
	b.data = append(b.data, footer...)
	b.data = binary.LittleEndian.AppendUint64(b.data, uint64(footerOff))
	b.data = binary.LittleEndian.AppendUint32(b.data, crc32.ChecksumIEEE(footer))
	b.data = append(b.data, segTrailerMagic[:]...)
	return b, nil
}
