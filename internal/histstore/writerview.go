package histstore

import (
	"fmt"
	"sort"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// WriterView is a read-only single-writer lens over a shared store: the
// same queries the merged surface answers, restricted to what one writer
// (one vantage point, one campaign) actually observed — no merge, no
// other writer's records shadowing or filling in. It is the read side of
// per-writer tails: internal/vantage's disagreement analyzer and the
// writer-filtered case studies reconstruct each vantage's view through
// it. Views are cheap handles; they share the store's files, cache, and
// locks and stay valid across appends and compactions.
type WriterView struct {
	s  *Store
	wi int
	id string
}

// WriterView returns the lens for writer id, which must be one of
// Writers(). The view answers from the writer's segments and tail only.
func (s *Store) WriterView(id string) (*WriterView, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	for wi, w := range s.writers {
		if w.id == id {
			return &WriterView{s: s, wi: wi, id: id}, nil
		}
	}
	return nil, fmt.Errorf("histstore: unknown writer %q", id)
}

// ID returns the writer identity the view answers for.
func (v *WriterView) ID() string { return v.id }

// Times returns the writer's own snapshot instants in append order — a
// subset of the store's merged timeline.
func (v *WriterView) Times() []time.Time {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	w := v.s.writers[v.wi]
	return append([]time.Time(nil), w.times...)
}

// Blocks lists the /24s the writer has ever recorded, sorted by address.
func (v *WriterView) Blocks() []dnswire.Prefix {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	w := v.s.writers[v.wi]
	out := make([]dnswire.Prefix, 0, len(w.known))
	for p := range w.known {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// localAtOrBefore maps an instant to the writer's newest local snapshot
// at or before it (-1 when t precedes the writer's history). Callers
// hold the lock.
func (v *WriterView) localAtOrBefore(t time.Time) int {
	w := v.s.writers[v.wi]
	return sort.Search(len(w.times), func(i int) bool { return w.times[i].After(t) }) - 1
}

// At answers the point query from this writer's view alone: the name the
// writer held for ip at its newest snapshot at or before t. ok is false
// when the writer saw no record then; ErrBeforeHistory when t precedes
// the writer's first snapshot.
func (v *WriterView) At(ip dnswire.IPv4, t time.Time) (dnswire.Name, bool, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	if v.s.closed {
		return "", false, ErrClosed
	}
	ls := v.localAtOrBefore(t)
	if ls < 0 {
		return "", false, ErrBeforeHistory
	}
	st, err := v.s.writerStateAt(v.wi, ip.Slash24(), ls)
	if err != nil {
		return "", false, err
	}
	name, ok := st[ip[3]]
	return name, ok, nil
}

// BlockAt returns the writer's full /24 state at its newest snapshot at
// or before t — a copy, safe to hold and mutate. A nil map means the
// writer held no records in the block (including before its history).
func (v *WriterView) BlockAt(p dnswire.Prefix, t time.Time) (map[byte]dnswire.Name, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	if v.s.closed {
		return nil, ErrClosed
	}
	ls := v.localAtOrBefore(t)
	if ls < 0 {
		return nil, nil
	}
	st, err := v.s.writerStateAt(v.wi, p, ls)
	if err != nil || len(st) == 0 {
		return nil, err
	}
	// writerStateAt shares cached state (and in solo mode the live map):
	// copy before handing out.
	out := make(map[byte]dnswire.Name, len(st))
	for o, name := range st {
		out[o] = name
	}
	return out, nil
}

// Range returns the writer's observations within prefix and [from, to],
// ordered by date then address — Store.Range restricted to one writer's
// snapshots and records.
func (v *WriterView) Range(p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	if v.s.closed {
		return nil, ErrClosed
	}
	w := v.s.writers[v.wi]
	lo, hi, ok := clipRange(w.times, from, to)
	if !ok {
		return nil, nil
	}
	blocks := v.overlappingBlocksLocked(p)
	var rows []dataset.Row
	for ls := lo; ls <= hi; ls++ {
		for _, q := range blocks {
			st, err := v.s.writerStateAt(v.wi, q, ls)
			if err != nil {
				return rows, err
			}
			for octet := 0; octet < 256; octet++ {
				name, ok := st[byte(octet)]
				if !ok {
					continue
				}
				ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], byte(octet)}
				if p.Bits > 24 && !p.Contains(ip) {
					continue
				}
				rows = append(rows, dataset.Row{Date: w.times[ls], IP: ip, PTR: name})
			}
		}
	}
	return rows, nil
}

// Churn returns the writer's per-snapshot delta counts within prefix over
// [from, to] — Store.Churn against this writer's own baseline, so a
// record another vantage flickered does not show up as churn here.
func (v *WriterView) Churn(p dnswire.Prefix, from, to time.Time) ([]ChurnDay, error) {
	v.s.mu.RLock()
	defer v.s.mu.RUnlock()
	if v.s.closed {
		return nil, ErrClosed
	}
	w := v.s.writers[v.wi]
	lo, hi, ok := clipRange(w.times, from, to)
	if !ok {
		return nil, nil
	}
	if lo == 0 {
		lo = 1
	}
	blocks := v.overlappingBlocksLocked(p)
	var out []ChurnDay
	for ls := lo; ls <= hi; ls++ {
		day := ChurnDay{Date: w.times[ls]}
		for _, q := range blocks {
			prev, err := v.s.writerStateAt(v.wi, q, ls-1)
			if err != nil {
				return out, err
			}
			cur, err := v.s.writerStateAt(v.wi, q, ls)
			if err != nil {
				return out, err
			}
			for _, ch := range diffBlock(prev, cur) {
				if p.Bits > 24 {
					ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], ch.octet}
					if !p.Contains(ip) {
						continue
					}
				}
				switch ch.kind {
				case scanengine.RecordAdded:
					day.Added++
				case scanengine.RecordRemoved:
					day.Removed++
				case scanengine.RecordChanged:
					day.Changed++
				}
			}
		}
		out = append(out, day)
	}
	return out, nil
}

// overlappingBlocksLocked lists the writer's known /24s overlapping p,
// sorted by address. Callers hold the lock.
func (v *WriterView) overlappingBlocksLocked(p dnswire.Prefix) []dnswire.Prefix {
	w := v.s.writers[v.wi]
	var out []dnswire.Prefix
	for q := range w.known {
		if p.Overlaps(q) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// clipRange clips [from, to] to indices of a sorted instant slice.
func clipRange(times []time.Time, from, to time.Time) (lo, hi int, ok bool) {
	if len(times) == 0 || to.Before(from) {
		return 0, 0, false
	}
	lo = sort.Search(len(times), func(i int) bool { return !times[i].Before(from) })
	hi = sort.Search(len(times), func(i int) bool { return times[i].After(to) }) - 1
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// Blocks lists every /24 the store indexes across writers, sorted by
// address — the block universe per-writer views diverge within.
func (s *Store) Blocks() []dnswire.Prefix {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]dnswire.Prefix, 0, len(s.blockSet))
	for p := range s.blockSet {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// WriterDivergence summarizes how one writer's live state relates to the
// merged live view, octet by octet: Agreements hold the merged winner's
// name, Conflicts hold a different one (the writer is shadowed by a
// lower-id winner), Missing are merged records the writer lacks, and
// Exclusive are records only this writer holds. Records is the writer's
// live total (Agreements + Conflicts).
type WriterDivergence struct {
	ID         string `json:"id"`
	Records    int    `json:"records"`
	Agreements int    `json:"agreements"`
	Conflicts  int    `json:"conflicts"`
	Missing    int    `json:"missing"`
	Exclusive  int    `json:"exclusive"`
}

// DivergenceStats is the store's live cross-writer disagreement summary:
// the per-writer breakdown against the merged view. Addresses is the
// merged live record count. A solo store reports full agreement.
type DivergenceStats struct {
	Addresses int                `json:"addresses"`
	Writers   []WriterDivergence `json:"writers"`
}

// Divergence computes the live per-writer disagreement summary — the
// /v1/stats?divergence=1 block. It walks every indexed /24 once; cost is
// proportional to live records times writers.
func (s *Store) Divergence() DivergenceStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := DivergenceStats{Writers: make([]WriterDivergence, len(s.writers))}
	for i, w := range s.writers {
		out.Writers[i].ID = w.id
	}
	for p := range s.blockSet {
		merged := s.cur[p]
		out.Addresses += len(merged)
		for o, mname := range merged {
			holders := 0
			holder := -1
			for wi, w := range s.writers {
				if _, ok := w.cur[p][o]; ok {
					holders++
					holder = wi
				}
			}
			for wi, w := range s.writers {
				d := &out.Writers[wi]
				name, ok := w.cur[p][o]
				switch {
				case !ok:
					d.Missing++
				case name == mname:
					d.Records++
					d.Agreements++
				default:
					d.Records++
					d.Conflicts++
				}
			}
			if holders == 1 && len(s.writers) > 1 {
				out.Writers[holder].Exclusive++
			}
		}
	}
	return out
}
