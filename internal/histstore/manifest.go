package histstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The manifest is the store directory's single commit point: a small
// binary file naming every writer, its active tail, and its sealed
// segments. Multi-step protocols (writer registration, compaction) stage
// their files first — a tail or segment is always created before the
// manifest references it — and then swap the manifest atomically
// (tmp + fsync + rename + directory fsync), so a reader either sees the
// old layout or the new one, never a half-committed mix. Cross-process
// read-modify-writes are serialized by the STORE.lock advisory lock.
//
// Layout (all integers uvarint unless noted, strings uvarint-length
// prefixed):
//
//	magic     8 bytes "RDNSMAN1"
//	interval  base-block cadence K (a property of the store, fixed at creation)
//	nwriters
//	per writer, sorted by id ascending:
//	  id        string (writer identity, [a-z0-9_-], 1..64 bytes)
//	  fileseq   monotonic per-writer file-name counter
//	  tail      string (tail file name within the directory)
//	  tailfirst writer-local snapshot index of the tail's first snapshot
//	  nsegs
//	  per segment, oldest first:
//	    file    string (segment file name within the directory)
//	    first   writer-local snapshot index of the segment's first snapshot
//	    count   snapshots in the segment
//	crc       4 bytes (IEEE CRC32 over everything before, little-endian)
//
// Decoding is strict — bad magic, CRC mismatch, unsorted or duplicate
// writers, path separators in file names, or segment tables that do not
// tile [0, tailfirst) contiguously are all loud errors, never panics
// (see FuzzSegmentManifest).

// manifestName and storeLockName are the fixed file names inside a store
// directory.
const (
	manifestName  = "MANIFEST"
	storeLockName = "STORE.lock"
)

// manifestMagic opens every manifest file.
var manifestMagic = [8]byte{'R', 'D', 'N', 'S', 'M', 'A', 'N', '1'}

// Manifest decode limits; generous for any real store, tight enough to
// bound fuzzed allocations.
const (
	maxManifestWriters  = 1024
	maxManifestSegments = 1 << 20
	maxWriterIDBytes    = 64
	maxManifestFileName = 256
	maxManifestSnap     = 1 << 40
)

type manifestSegment struct {
	file  string
	first int
	count int
}

type manifestWriter struct {
	id        string
	fileSeq   int
	tailFile  string
	tailFirst int
	segs      []manifestSegment
}

type storeManifest struct {
	baseEvery int
	writers   []manifestWriter // sorted by id
}

// findWriter returns the index of id in m.writers, or -1.
func (m *storeManifest) findWriter(id string) int {
	for i := range m.writers {
		if m.writers[i].id == id {
			return i
		}
	}
	return -1
}

// setWriter replaces (or inserts, keeping id order) one writer's entry.
func (m *storeManifest) setWriter(w manifestWriter) {
	if i := m.findWriter(w.id); i >= 0 {
		m.writers[i] = w
		return
	}
	m.writers = append(m.writers, w)
	sort.Slice(m.writers, func(i, j int) bool { return m.writers[i].id < m.writers[j].id })
}

// validWriterID reports whether id is a legal writer identity: 1..64
// bytes of [a-z0-9_-]. File names are derived from it, so the charset is
// deliberately narrow.
func validWriterID(id string) bool {
	if len(id) == 0 || len(id) > maxWriterIDBytes {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '-' && c != '_' {
			return false
		}
	}
	return true
}

// validStoreFileName reports whether name is a safe basename for a file
// inside the store directory.
func validStoreFileName(name string) bool {
	if len(name) == 0 || len(name) > maxManifestFileName {
		return false
	}
	if name == "." || name == ".." || name == manifestName || name == storeLockName {
		return false
	}
	return !strings.ContainsAny(name, "/\\\x00")
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeManifest serializes m, CRC included.
func encodeManifest(m *storeManifest) []byte {
	buf := append([]byte(nil), manifestMagic[:]...)
	buf = binary.AppendUvarint(buf, uint64(m.baseEvery))
	buf = binary.AppendUvarint(buf, uint64(len(m.writers)))
	for _, w := range m.writers {
		buf = appendString(buf, w.id)
		buf = binary.AppendUvarint(buf, uint64(w.fileSeq))
		buf = appendString(buf, w.tailFile)
		buf = binary.AppendUvarint(buf, uint64(w.tailFirst))
		buf = binary.AppendUvarint(buf, uint64(len(w.segs)))
		for _, g := range w.segs {
			buf = appendString(buf, g.file)
			buf = binary.AppendUvarint(buf, uint64(g.first))
			buf = binary.AppendUvarint(buf, uint64(g.count))
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

func (r *byteReader) manifestString(what string, max int) (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(max) {
		return "", corruptf("manifest %s of %d bytes exceeds %d", what, n, max)
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func (r *byteReader) manifestInt(what string, max uint64) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, corruptf("manifest %s %d exceeds %d", what, v, max)
	}
	return int(v), nil
}

// decodeManifest parses and validates a manifest file's bytes.
func decodeManifest(data []byte) (*storeManifest, error) {
	if len(data) < len(manifestMagic)+4 {
		return nil, corruptf("manifest of %d bytes is too short", len(data))
	}
	if [8]byte(data[:8]) != manifestMagic {
		return nil, corruptError("not a histstore manifest (bad magic)")
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	want := binary.LittleEndian.Uint32(crcBytes)
	if got := crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf("manifest CRC mismatch: stored %08x, computed %08x", want, got)
	}
	r := &byteReader{b: body[8:]}
	m := &storeManifest{}
	var err error
	if m.baseEvery, err = r.manifestInt("base interval", maxManifestSnap); err != nil {
		return nil, err
	}
	if m.baseEvery == 0 {
		return nil, corruptError("manifest base interval is zero")
	}
	nw, err := r.manifestInt("writer count", maxManifestWriters)
	if err != nil {
		return nil, err
	}
	for wi := 0; wi < nw; wi++ {
		var w manifestWriter
		if w.id, err = r.manifestString("writer id", maxWriterIDBytes); err != nil {
			return nil, err
		}
		if !validWriterID(w.id) {
			return nil, corruptf("manifest writer id %q is invalid", w.id)
		}
		if wi > 0 && m.writers[wi-1].id >= w.id {
			return nil, corruptf("manifest writers out of order at %q", w.id)
		}
		if w.fileSeq, err = r.manifestInt("file seq", maxManifestSnap); err != nil {
			return nil, err
		}
		if w.tailFile, err = r.manifestString("tail name", maxManifestFileName); err != nil {
			return nil, err
		}
		if !validStoreFileName(w.tailFile) {
			return nil, corruptf("manifest tail name %q is invalid", w.tailFile)
		}
		if w.tailFirst, err = r.manifestInt("tail first snapshot", maxManifestSnap); err != nil {
			return nil, err
		}
		ns, err := r.manifestInt("segment count", maxManifestSegments)
		if err != nil {
			return nil, err
		}
		next := 0
		for si := 0; si < ns; si++ {
			var g manifestSegment
			if g.file, err = r.manifestString("segment name", maxManifestFileName); err != nil {
				return nil, err
			}
			if !validStoreFileName(g.file) {
				return nil, corruptf("manifest segment name %q is invalid", g.file)
			}
			if g.first, err = r.manifestInt("segment first snapshot", maxManifestSnap); err != nil {
				return nil, err
			}
			if g.count, err = r.manifestInt("segment snapshot count", maxManifestSnap); err != nil {
				return nil, err
			}
			if g.first != next {
				return nil, corruptf("writer %q segment %d starts at %d, expected %d", w.id, si, g.first, next)
			}
			if g.count == 0 {
				return nil, corruptf("writer %q segment %d is empty", w.id, si)
			}
			next = g.first + g.count
			w.segs = append(w.segs, g)
		}
		if w.tailFirst != next {
			return nil, corruptf("writer %q tail starts at %d, segments end at %d", w.id, w.tailFirst, next)
		}
		m.writers = append(m.writers, w)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return m, nil
}

// readManifest loads the manifest from dir. A missing manifest returns
// (nil, nil): the directory holds no store yet.
func readManifest(dir string) (*storeManifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	m, err := decodeManifest(data)
	if err != nil {
		return nil, fmt.Errorf("histstore: %s: %w", filepath.Join(dir, manifestName), err)
	}
	return m, nil
}

// writeManifest atomically replaces dir's manifest with m: staged to a
// temp file, fsynced, renamed over MANIFEST, directory fsynced. The
// rename is the commit point of every store mutation protocol. fault,
// when non-nil, is invoked before the stage and before the rename so
// crash tests can kill the protocol at either step; registration passes
// nil (only compaction is crash-injected).
func writeManifest(dir string, m *storeManifest, fault func(string) error) error {
	if fault != nil {
		if err := fault("histstore.compact.manifest.write"); err != nil {
			return err
		}
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := writeFileSync(tmp, encodeManifest(m)); err != nil {
		return err
	}
	if fault != nil {
		if err := fault("histstore.compact.manifest.rename"); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("histstore: committing manifest: %w", err)
	}
	return syncDir(dir)
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("histstore: writing %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("histstore: syncing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("histstore: closing %s: %w", path, err)
	}
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("histstore: syncing %s: %w", dir, err)
	}
	return nil
}
