// Package histstore is the longitudinal PTR history store: an append-only,
// base+delta encoded snapshot log with time-travel queries.
//
// The paper's headline results are longitudinal — tracking Brians across
// daily OpenINTEL/Rapid7 snapshots, the COVID work-from-home shift, the
// "when to stage a heist" case study all query years of reverse-DNS
// history (Sections 5-7), and the danger lives in the archive, not the
// single lookup. This package is that archive as a serving system rather
// than a pile of CSV files: campaigns append each snapshot as it
// completes, and consumers ask for any instant of the past without
// re-reading (or ever having materialized) the whole history.
//
// A store is a directory of append-only files tied together by a small
// manifest (manifest.go):
//
//   - Each writer — a campaign or vantage point, identified by a short id
//     — appends snapshots to its own tail log. A session-held advisory
//     lock makes a second appender on the same writer fail loudly with
//     ErrWriterActive instead of interleaving frames.
//   - Compaction (compact.go) seals a tail's accumulated snapshots into
//     an immutable segment: old delta runs are rewritten against fresh
//     bases on a sparser cadence, redundant rebases are dropped, and the
//     swap is crash-atomic (staged files, then one manifest rename).
//     Query answers are bit-identical before, during, and after.
//   - A tiering policy keeps only recently-used segments' indexes hot;
//     older segments reload lazily from their footers and are LRU-evicted
//     (segment.go, the hist_tier_* metrics).
//
// Within a file the log stores a full per-/24 base block every K
// snapshots and compact change deltas in between, varint+prefix-
// compressed with CRC framing (see codec.go for the wire layout). Two
// in-memory indexes ride on top: a per-/24 block index (prefix -> frame
// refs per snapshot) and an inverted hostname-token index (token ->
// (/24, interval) postings). Any snapshot of any block reconstructs in
// O(deltas since the nearest base), optionally through a sharded LRU
// reconstruction cache.
//
//	st, _ := histstore.Open(dir, histstore.WithCache(4096))
//	defer st.Close()
//	st.Append(day1, snapshot1.Records)
//	name, ok, _ := st.At(ip, day1)                  // time travel
//	rows, _ := st.Range(prefix, day1, day30)        // every observation
//	churn, _ := st.Churn(prefix, day1, day30)       // join/leave counts
//	postings := st.FindName("brian")                // the inverted index
//
// When several writers share a store their histories merge at read time:
// the global timeline is the (time, writer id)-ordered merge of every
// writer's snapshots, and conflicting claims on an address resolve to
// the writer with the smallest id. AtWriter exposes the provenance.
//
// Reopening a store replays the files through the same transition code
// the writer used, so the rebuilt indexes — and therefore every query
// answer — are bit-identical across a close/reopen cycle. Concurrent
// readers and one appender within a process are safe (cmd/rdnsd serves
// queries mid-append and mid-compaction).
package histstore

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// Errors returned by the store.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("histstore: store is closed")
	// ErrOutOfOrder reports an append whose instant does not follow the
	// store's newest snapshot.
	ErrOutOfOrder = errors.New("histstore: append out of order")
	// ErrBeforeHistory reports a point query earlier than the first
	// snapshot.
	ErrBeforeHistory = errors.New("histstore: instant precedes history")
	// ErrReadOnly reports an append through a store opened WithReadOnly.
	ErrReadOnly = errors.New("histstore: store is read-only")
	// ErrNoStore reports a read-only open of a directory holding no
	// manifest.
	ErrNoStore = errors.New("histstore: no store at path")
)

// DefaultBaseInterval is the default base-block cadence K: a block's
// delta chain is compacted into a fresh base once it spans K snapshots.
const DefaultBaseInterval = 7

// DefaultWriter is the writer identity used when none is configured.
const DefaultWriter = "main"

// DefaultHotSegments is the default hot-tier capacity: how many sealed
// segments keep their index and file descriptor resident.
const DefaultHotSegments = 8

// openRetries bounds the reopen attempts when a concurrent compaction
// deletes a file between our manifest read and opening it.
const openRetries = 3

// blockState is the record set of one /24 keyed by last octet.
type blockState map[byte]dnswire.Name

// blockRef locates one block frame in a tail or segment file. snap is
// writer-local.
type blockRef struct {
	snap   int
	kind   byte
	off    int64
	length int
}

// writerState is one writer's replayed view: its sealed segments, its
// active tail, and its private current state. Writer-local snapshot
// indexes run 0..len(times)-1 across segments then tail; globalIdx maps
// each to its slot in the store's merged timeline.
type writerState struct {
	id      string
	idx     int // index in Store.writers (ascending id = merge priority)
	fileSeq int
	owned   bool
	lock    *os.File // session tail lock (owned writers only)

	segs []*segment

	tailFile      string
	tailF         *os.File
	tailFirst     int // local snapshot index of the tail's first snapshot
	tailHeaderLen int64
	tailSize      int64
	tailBlocks    map[dnswire.Prefix][]blockRef
	// tailSnapOffsets[i] is the file offset of local snapshot
	// (tailFirst+i)'s snapshot frame — compaction's cut points.
	tailSnapOffsets []int64
	tornAt          int64 // torn-tail boundary found at replay, -1 if none

	known map[dnswire.Prefix]bool
	times []time.Time
	// globalIdx maps local snapshot index -> global snapshot index.
	globalIdx []int
	cur       map[dnswire.Prefix]blockState
	// lastBase and deltasSince drive the per-block compaction schedule
	// (writer-local snapshot indexes).
	lastBase    map[dnswire.Prefix]int
	deltasSince map[dnswire.Prefix]int
}

// Store is the history store. Open creates or loads one; methods are safe
// for concurrent use (many readers, one appender, a compactor).
type Store struct {
	dir       string
	baseEvery int
	syncEach  bool
	readOnly  bool
	writerID  string
	hotCap    int
	cache     *blockCache
	met       *storeMetrics
	tier      *tier

	mu     sync.RWMutex
	closed bool
	// sessionLock carries the owned writer's tail lock between
	// registration and writer-state construction (then moves to
	// self.lock).
	sessionLock *os.File
	// writers is sorted by id ascending; solo is the single-writer fast
	// path where writers[0].cur aliases cur and local indexes equal
	// global ones.
	writers []*writerState
	self    *writerState // the owned writer; nil when read-only
	solo    bool

	// The merged global view.
	times      []time.Time
	snapWriter []int // global snapshot -> writer index
	snapLocal  []int // global snapshot -> writer-local snapshot index
	blockSet   map[dnswire.Prefix]bool
	cur        map[dnswire.Prefix]blockState
	names      *nameIndex

	baseFrames  int
	deltaFrames int
	bytes       int64

	compactRunning  atomic.Bool
	compactions     atomic.Uint64
	compactSealed   atomic.Uint64
	compactReclaim  atomic.Int64
	reconstructions atomic.Uint64
	tierLoads       atomic.Uint64
	tierEvictions   atomic.Uint64
}

// Option tunes a Store at Open.
type Option func(*Store)

// WithBaseInterval sets the base-block cadence K (default
// DefaultBaseInterval). When the store already exists its manifest wins:
// the interval is a property of the store, not of the opener.
func WithBaseInterval(k int) Option {
	return func(s *Store) {
		if k > 0 {
			s.baseEvery = k
		}
	}
}

// WithCache enables the sharded LRU reconstruction cache, bounded to
// roughly n block states. Zero (the default) disables it; every query
// then reconstructs from the log.
func WithCache(n int) Option {
	return func(s *Store) { s.cache = newBlockCache(n) }
}

// WithTelemetry attaches a metrics sink (the hist_* instruments; see
// docs/storage.md). Nil keeps the store on its zero-overhead path.
func WithTelemetry(sink telemetry.Sink) Option {
	return func(s *Store) { s.met = newStoreMetrics(sink) }
}

// WithSync fsyncs the tail after every append. Off by default; Close
// always syncs.
func WithSync() Option {
	return func(s *Store) { s.syncEach = true }
}

// WithWriter sets the writer identity this Store appends as (default
// DefaultWriter). Ids are 1..64 bytes of [a-z0-9_-]; each campaign or
// vantage point appending to a shared store picks its own.
func WithWriter(id string) Option {
	return func(s *Store) { s.writerID = id }
}

// WithReadOnly opens the store for queries only: no writer is registered
// or locked, no files are created or truncated, and Append returns
// ErrReadOnly. This is how rdnsd serves a store a campaign is appending
// to from another process.
func WithReadOnly() Option {
	return func(s *Store) { s.readOnly = true }
}

// WithHotSegments bounds the hot tier to n resident segment indexes
// (default DefaultHotSegments); colder segments reload lazily and are
// LRU-evicted. Zero or negative means unbounded.
func WithHotSegments(n int) Option {
	return func(s *Store) { s.hotCap = n }
}

// Open creates or loads the history store rooted at the directory path.
// Existing files are replayed to rebuild the indexes; a torn final
// append (crash mid-write) on an owned tail is truncated away, while
// mid-file corruption — anywhere in a sealed segment, or before the
// final append of a tail — is a loud error.
func Open(path string, opts ...Option) (*Store, error) {
	var lastErr error
	for attempt := 0; attempt < openRetries; attempt++ {
		s, err := openStore(path, opts)
		if err == nil {
			return s, nil
		}
		lastErr = err
		// A concurrent compaction can delete a tail between our manifest
		// read and opening it; the fresh manifest resolves the race.
		var r *retryableOpenError
		if !errors.As(err, &r) {
			return nil, err
		}
	}
	return nil, lastErr
}

// retryableOpenError marks an open failure caused by racing a concurrent
// store mutation; Open retries with a fresh manifest read.
type retryableOpenError struct{ err error }

func (e *retryableOpenError) Error() string { return e.err.Error() }
func (e *retryableOpenError) Unwrap() error { return e.err }

// openStore is one open attempt.
func openStore(path string, opts []Option) (s *Store, err error) {
	s = &Store{
		dir:       path,
		baseEvery: DefaultBaseInterval,
		writerID:  DefaultWriter,
		hotCap:    DefaultHotSegments,
		blockSet:  make(map[dnswire.Prefix]bool),
		cur:       make(map[dnswire.Prefix]blockState),
		names:     newNameIndex(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.met == nil {
		s.met = newStoreMetrics(nil)
	}
	s.tier = newTier(s.hotCap)
	if !s.readOnly && !validWriterID(s.writerID) {
		return nil, fmt.Errorf("histstore: invalid writer id %q", s.writerID)
	}
	if err := checkStoreDir(path); err != nil {
		return nil, err
	}
	st := s // the named return is nil on error paths; close via the local
	defer func() {
		if err != nil {
			st.closeFiles()
		}
	}()

	var m *storeManifest
	if s.readOnly {
		if m, err = readManifest(path); err != nil {
			return nil, err
		}
		if m == nil {
			return nil, fmt.Errorf("%w: %s has no manifest", ErrNoStore, path)
		}
	} else {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return nil, fmt.Errorf("histstore: %w", err)
		}
		if m, err = s.registerWriter(); err != nil {
			return nil, err
		}
	}
	s.baseEvery = m.baseEvery

	if err := s.loadWriters(m); err != nil {
		return nil, err
	}
	if err := s.replayAll(); err != nil {
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// checkStoreDir rejects paths that exist but are not directories —
// including the pre-segmentation single-file log format, which gets a
// pointed message.
func checkStoreDir(path string) error {
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("histstore: %w", err)
	}
	if fi.IsDir() {
		return nil
	}
	var magic [8]byte
	if f, err := os.Open(path); err == nil {
		io.ReadFull(f, magic[:])
		f.Close()
	}
	if magic == fileMagic {
		return fmt.Errorf("histstore: %s is a legacy single-file history log; the store format is now a directory (re-append the campaign to migrate)", path)
	}
	return fmt.Errorf("histstore: %s is not a store directory", path)
}

// registerWriter takes the session lock on this store's writer, ensures
// the writer exists in the manifest (creating the store on first open),
// and sweeps any files a crashed protocol left behind for this writer.
// It returns the manifest to load from.
func (s *Store) registerWriter() (*storeManifest, error) {
	lockPath := filepath.Join(s.dir, "tail-"+s.writerID+".lock")
	lock, err := acquireFileLock(lockPath)
	if err != nil {
		return nil, err
	}
	storeLock, err := acquireFileLockBlocking(filepath.Join(s.dir, storeLockName))
	if err != nil {
		releaseFileLock(lock)
		return nil, err
	}
	defer releaseFileLock(storeLock)

	m, err := readManifest(s.dir)
	if err != nil {
		releaseFileLock(lock)
		return nil, err
	}
	if m == nil {
		m = &storeManifest{baseEvery: s.baseEvery}
	}
	if m.findWriter(s.writerID) < 0 {
		// Create the tail before the manifest references it, so a reader
		// never sees a dangling entry; the manifest write is the commit.
		w := manifestWriter{id: s.writerID, fileSeq: 1, tailFile: tailFileName(s.writerID, 0)}
		if err := writeFileSync(filepath.Join(s.dir, w.tailFile), encodeTailHeader(0)); err != nil {
			releaseFileLock(lock)
			return nil, err
		}
		m.setWriter(w)
		if err := writeManifest(s.dir, m, nil); err != nil {
			releaseFileLock(lock)
			return nil, err
		}
	}
	s.sweepOrphans(m)
	s.sessionLock = lock
	return m, nil
}

// sweepOrphans removes files a crashed compaction or registration left
// staged for this store's writer: unreferenced tails or segments and
// manifest temp files. Callers hold STORE.lock. Errors are ignored —
// a sweep that loses a race with another opener is harmless.
func (s *Store) sweepOrphans(m *storeManifest) {
	referenced := make(map[string]bool)
	if i := m.findWriter(s.writerID); i >= 0 {
		w := m.writers[i]
		referenced[w.tailFile] = true
		for _, g := range w.segs {
			referenced[g.file] = true
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	tailPrefix := "tail-" + s.writerID + "-"
	segPrefix := "seg-" + s.writerID + "-"
	for _, e := range entries {
		name := e.Name()
		if name == manifestName+".tmp" {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if !strings.HasPrefix(name, tailPrefix) && !strings.HasPrefix(name, segPrefix) {
			continue
		}
		if referenced[name] {
			continue
		}
		os.Remove(filepath.Join(s.dir, name))
	}
}

// tailFileName and segFileName derive a writer's file names from its
// monotonic fileSeq counter.
func tailFileName(id string, seq int) string { return fmt.Sprintf("tail-%s-%d.log", id, seq) }
func segFileName(id string, seq int) string  { return fmt.Sprintf("seg-%s-%d.seg", id, seq) }

// loadWriters opens every writer's files per the manifest and builds the
// (not yet replayed) writer states.
func (s *Store) loadWriters(m *storeManifest) error {
	for wi := range m.writers {
		mw := m.writers[wi]
		w := &writerState{
			id:          mw.id,
			idx:         wi,
			fileSeq:     mw.fileSeq,
			tailFile:    mw.tailFile,
			tailFirst:   mw.tailFirst,
			tornAt:      -1,
			tailBlocks:  make(map[dnswire.Prefix][]blockRef),
			known:       make(map[dnswire.Prefix]bool),
			cur:         make(map[dnswire.Prefix]blockState),
			lastBase:    make(map[dnswire.Prefix]int),
			deltasSince: make(map[dnswire.Prefix]int),
		}
		for _, g := range mw.segs {
			w.segs = append(w.segs, &segment{
				path:      s.filePath(g.file),
				writerID:  mw.id,
				firstSnap: g.first,
				count:     g.count,
			})
		}
		flags := os.O_RDONLY
		if !s.readOnly && mw.id == s.writerID {
			w.owned = true
			w.lock = s.sessionLock
			s.sessionLock = nil
			s.self = w
			flags = os.O_RDWR
		}
		f, err := os.OpenFile(s.filePath(mw.tailFile), flags, 0)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return &retryableOpenError{fmt.Errorf("histstore: %w", err)}
			}
			return fmt.Errorf("histstore: %w", err)
		}
		w.tailF = f
		s.writers = append(s.writers, w)
	}
	s.solo = len(s.writers) == 1
	if s.solo {
		// Single writer: the merged view IS the writer's view. Aliasing
		// the maps keeps the original single-writer hot path (one state
		// transition per frame, shared cache entries).
		s.writers[0].cur = s.cur
	}
	return nil
}

// closeFiles releases every file handle and lock (cleanup for failed
// opens and for Close).
func (s *Store) closeFiles() {
	for _, w := range s.writers {
		if w.tailF != nil {
			w.tailF.Close()
			w.tailF = nil
		}
		for _, g := range w.segs {
			g.mu.Lock()
			g.unload()
			g.mu.Unlock()
		}
		releaseFileLock(w.lock)
		w.lock = nil
	}
	releaseFileLock(s.sessionLock)
	s.sessionLock = nil
}

// Close syncs and closes every file. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	var err error
	if s.self != nil && s.self.tailF != nil {
		err = s.self.tailF.Sync()
	}
	s.closeFiles()
	s.closed = true
	return err
}

// appendUvarintByte is binary.AppendUvarint without the import clash in
// this file's hot path helpers.
func appendUvarintByte(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// readUvarint reads a uvarint and how many bytes it took.
func readUvarint(r io.ByteReader) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, 0, err
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, corruptError("uvarint overflow")
}

// diffBlock computes the octet-sorted changes turning old into new.
func diffBlock(old, new blockState) []deltaEntry {
	var out []deltaEntry
	for octet := 0; octet < 256; octet++ {
		o := byte(octet)
		oldName, hadOld := old[o]
		newName, hasNew := new[o]
		switch {
		case hadOld && hasNew && oldName != newName:
			out = append(out, deltaEntry{kind: scanengine.RecordChanged, octet: o, old: oldName, new: newName})
		case hadOld && !hasNew:
			out = append(out, deltaEntry{kind: scanengine.RecordRemoved, octet: o, old: oldName})
		case !hadOld && hasNew:
			out = append(out, deltaEntry{kind: scanengine.RecordAdded, octet: o, new: newName})
		}
	}
	return out
}

// applyChanges advances the merged current state and the name index
// through one global snapshot's changes to one block. It is the single
// transition function Append, replay, and the merge layer all run, which
// is what makes reopen bit-identical.
func (s *Store) applyChanges(snap int, p dnswire.Prefix, changes []deltaEntry) {
	st := s.cur[p]
	if st == nil {
		st = make(blockState)
		s.cur[p] = st
	}
	for _, ch := range changes {
		switch ch.kind {
		case scanengine.RecordAdded:
			st[ch.octet] = ch.new
			s.names.add(ch.new, p, snap)
		case scanengine.RecordRemoved:
			delete(st, ch.octet)
			s.names.remove(ch.old, p, snap)
		case scanengine.RecordChanged:
			st[ch.octet] = ch.new
			s.names.remove(ch.old, p, snap)
			s.names.add(ch.new, p, snap)
		}
	}
	if len(st) == 0 {
		delete(s.cur, p)
	}
}

// applyWriterChanges advances one writer's private state (no name-index
// side effects — those belong to the merged view).
func applyWriterChanges(w *writerState, p dnswire.Prefix, changes []deltaEntry) {
	st := w.cur[p]
	if st == nil {
		st = make(blockState)
		w.cur[p] = st
	}
	for _, ch := range changes {
		switch ch.kind {
		case scanengine.RecordAdded, scanengine.RecordChanged:
			st[ch.octet] = ch.new
		case scanengine.RecordRemoved:
			delete(st, ch.octet)
		}
	}
	if len(st) == 0 {
		delete(w.cur, p)
	}
}

// mergeLive computes the merged live state of one block across writers:
// iterating in ascending id order, the first writer claiming an octet
// wins. Callers hold the lock.
func (s *Store) mergeLive(p dnswire.Prefix) blockState {
	merged := make(blockState)
	for _, w := range s.writers {
		for o, name := range w.cur[p] {
			if _, taken := merged[o]; !taken {
				merged[o] = name
			}
		}
	}
	return merged
}

// applyFrameChanges folds one writer's frame changes for block p at
// global snapshot gi into both the writer's state and the merged view.
func (s *Store) applyFrameChanges(w *writerState, gi int, p dnswire.Prefix, wChanges []deltaEntry) {
	if s.solo {
		// writers[0].cur aliases s.cur: one transition covers both.
		s.applyChanges(gi, p, wChanges)
		return
	}
	applyWriterChanges(w, p, wChanges)
	merged := s.mergeLive(p)
	mc := diffBlock(s.cur[p], merged)
	s.applyChanges(gi, p, mc)
}

// Times returns the merged snapshot instants in timeline order.
func (s *Store) Times() []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]time.Time(nil), s.times...)
}

// Len returns the number of snapshots in the merged timeline.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.times)
}

// BaseInterval returns the store's base-block cadence K.
func (s *Store) BaseInterval() int { return s.baseEvery }

// WriterID returns the writer identity this store appends as ("" for a
// read-only store).
func (s *Store) WriterID() string {
	if s.readOnly {
		return ""
	}
	return s.writerID
}

// Writers lists the store's writer identities in merge-priority order.
func (s *Store) Writers() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, len(s.writers))
	for i, w := range s.writers {
		out[i] = w.id
	}
	return out
}

// Resolve maps an instant to the newest snapshot at or before it — the
// snapshot a point query answers from. ok is false before history.
func (s *Store) Resolve(t time.Time) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.snapAtOrBefore(t)
	if !ok {
		return time.Time{}, false
	}
	return s.times[i], true
}

// snapAtOrBefore finds the newest snapshot index at or before t. Callers
// hold the lock.
func (s *Store) snapAtOrBefore(t time.Time) (int, bool) {
	n := sort.Search(len(s.times), func(i int) bool { return s.times[i].After(t) })
	if n == 0 {
		return 0, false
	}
	return n - 1, true
}

// publishGauges refreshes the gauge instruments; callers hold at least a
// read view of the fields they publish.
func (s *Store) publishGauges() {
	m := s.met
	m.snapshots.Set(int64(len(s.times)))
	m.blocks.Set(int64(len(s.blockSet)))
	m.bytes.Set(s.bytes)
	m.cacheEntries.Set(int64(s.cache.len()))
	segs, sealed := 0, int64(0)
	for _, w := range s.writers {
		segs += len(w.segs)
		for _, g := range w.segs {
			sealed += g.size
		}
	}
	m.segments.Set(int64(segs))
	m.sealedBytes.Set(sealed)
	m.tierHot.Set(int64(s.tier.len()))
}
