// Package histstore is the longitudinal PTR history store: an append-only,
// base+delta encoded snapshot log with time-travel queries.
//
// The paper's headline results are longitudinal — tracking Brians across
// daily OpenINTEL/Rapid7 snapshots, the COVID work-from-home shift, the
// "when to stage a heist" case study all query years of reverse-DNS
// history (Sections 5-7), and the danger lives in the archive, not the
// single lookup. This package is that archive as a serving system rather
// than a pile of CSV files: campaigns append each snapshot as it
// completes, and consumers ask for any instant of the past without
// re-reading (or ever having materialized) the whole history.
//
// The log stores a full per-/24 base block every K snapshots and compact
// change deltas in between, varint+prefix-compressed with CRC framing
// (see codec.go for the wire layout). Two in-memory indexes ride on top:
// a per-/24 block index (prefix -> frame offsets per snapshot) and an
// inverted hostname-token index (token -> (/24, interval) postings). Any
// snapshot of any block reconstructs in O(deltas since the nearest base),
// optionally through a sharded LRU reconstruction cache.
//
//	st, _ := histstore.Open(path, histstore.WithCache(4096))
//	defer st.Close()
//	st.Append(day1, snapshot1.Records)
//	name, ok, _ := st.At(ip, day1)                  // time travel
//	rows, _ := st.Range(prefix, day1, day30)        // every observation
//	churn, _ := st.Churn(prefix, day1, day30)       // join/leave counts
//	postings := st.FindName("brian")                // the inverted index
//
// Reopening a store replays the log through the same transition code the
// writer used, so the rebuilt indexes — and therefore every query answer
// — are bit-identical across a close/reopen cycle. One process owns a
// store file at a time; concurrent readers and one appender within that
// process are safe (cmd/rdnsd serves queries mid-append).
package histstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// Errors returned by the store.
var (
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("histstore: store is closed")
	// ErrOutOfOrder reports an append whose instant does not follow the
	// store's newest snapshot.
	ErrOutOfOrder = errors.New("histstore: append out of order")
	// ErrBeforeHistory reports a point query earlier than the first
	// snapshot.
	ErrBeforeHistory = errors.New("histstore: instant precedes history")
)

// DefaultBaseInterval is the default base-block cadence K: a block's
// delta chain is compacted into a fresh base once it spans K snapshots.
const DefaultBaseInterval = 7

// blockState is the record set of one /24 keyed by last octet.
type blockState map[byte]dnswire.Name

// blockRef locates one block frame in the log.
type blockRef struct {
	snap   int
	kind   byte
	off    int64
	length int
}

// Store is the history store. Open creates or loads one; methods are safe
// for concurrent use (many readers, one appender).
type Store struct {
	path      string
	baseEvery int
	syncEach  bool
	cache     *blockCache
	met       *storeMetrics

	mu     sync.RWMutex
	f      *os.File
	size   int64
	times  []time.Time
	blocks map[dnswire.Prefix][]blockRef
	cur    map[dnswire.Prefix]blockState
	// lastBase and deltasSince drive the per-block compaction schedule.
	lastBase    map[dnswire.Prefix]int
	deltasSince map[dnswire.Prefix]int
	names       *nameIndex

	baseFrames  int
	deltaFrames int

	reconstructions atomic.Uint64
}

// Option tunes a Store at Open.
type Option func(*Store)

// WithBaseInterval sets the base-block cadence K (default
// DefaultBaseInterval). When the file already exists its header wins:
// the interval is a property of the log, not of the opener.
func WithBaseInterval(k int) Option {
	return func(s *Store) {
		if k > 0 {
			s.baseEvery = k
		}
	}
}

// WithCache enables the sharded LRU reconstruction cache, bounded to
// roughly n block states. Zero (the default) disables it; every query
// then reconstructs from the log.
func WithCache(n int) Option {
	return func(s *Store) { s.cache = newBlockCache(n) }
}

// WithTelemetry attaches a metrics sink (the hist_* instruments; see
// docs/storage.md). Nil keeps the store on its zero-overhead path.
func WithTelemetry(sink telemetry.Sink) Option {
	return func(s *Store) { s.met = newStoreMetrics(sink) }
}

// WithSync fsyncs the log after every append. Off by default; Close
// always syncs.
func WithSync() Option {
	return func(s *Store) { s.syncEach = true }
}

// Open creates or loads the history store at path. An existing log is
// replayed to rebuild the indexes; a torn final append (crash mid-write)
// is truncated away, while mid-file corruption is an error.
func Open(path string, opts ...Option) (*Store, error) {
	s := &Store{
		path:        path,
		baseEvery:   DefaultBaseInterval,
		blocks:      make(map[dnswire.Prefix][]blockRef),
		cur:         make(map[dnswire.Prefix]blockState),
		lastBase:    make(map[dnswire.Prefix]int),
		deltasSince: make(map[dnswire.Prefix]int),
		names:       newNameIndex(),
	}
	for _, o := range opts {
		o(s)
	}
	if s.met == nil {
		s.met = newStoreMetrics(nil)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	s.f = f
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("histstore: %w", err)
	}
	if fi.Size() == 0 {
		if err := s.writeHeader(); err != nil {
			f.Close()
			return nil, err
		}
	} else if err := s.replay(); err != nil {
		f.Close()
		return nil, err
	}
	s.publishGauges()
	return s, nil
}

// writeHeader initializes an empty log file.
func (s *Store) writeHeader() error {
	hdr := append([]byte(nil), fileMagic[:]...)
	hdr = appendUvarintByte(hdr, uint64(s.baseEvery))
	n, err := s.f.WriteAt(hdr, 0)
	if err != nil {
		return fmt.Errorf("histstore: writing header: %w", err)
	}
	s.size = int64(n)
	return nil
}

// appendUvarintByte is binary.AppendUvarint without the import clash in
// this file's hot path helpers.
func appendUvarintByte(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// replay rebuilds the in-memory state from an existing log.
func (s *Store) replay() error {
	if _, err := s.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	br := bufio.NewReaderSize(s.f, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("histstore: reading header: %w", err)
	}
	if magic != fileMagic {
		return fmt.Errorf("histstore: %s is not a history log (bad magic)", s.path)
	}
	off := int64(len(magic))
	k, n, err := readUvarint(br)
	if err != nil || k == 0 {
		return fmt.Errorf("histstore: bad base interval in header")
	}
	s.baseEvery = int(k)
	off += int64(n)

	sc := &frameScanner{r: br, off: off}
	for {
		fr, start, length, err := sc.next()
		if err == io.EOF {
			s.size = start
			return nil
		}
		if errors.Is(err, errTruncated) {
			// A torn tail append: drop the partial frame, keep the rest.
			s.size = start
			return s.f.Truncate(start)
		}
		if err != nil {
			return fmt.Errorf("histstore: replaying %s at offset %d: %w", s.path, start, err)
		}
		if err := s.replayFrame(fr, blockRef{off: start, length: length}); err != nil {
			return fmt.Errorf("histstore: replaying %s at offset %d: %w", s.path, start, err)
		}
	}
}

// replayFrame applies one decoded frame during replay.
func (s *Store) replayFrame(fr frame, ref blockRef) error {
	switch fr.kind {
	case frameSnap:
		snap, unixSec, err := decodeSnapBody(fr.body)
		if err != nil {
			return err
		}
		if snap != len(s.times) {
			return corruptf("snapshot header %d, expected %d", snap, len(s.times))
		}
		t := time.Unix(unixSec, 0).UTC()
		if len(s.times) > 0 && !t.After(s.times[len(s.times)-1]) {
			return corruptf("snapshot %d not after its predecessor", snap)
		}
		s.times = append(s.times, t)
		return nil
	case frameBase:
		snap, p, entries, err := decodeBaseBody(fr.body)
		if err != nil {
			return err
		}
		if err := s.checkFrameSnap(snap); err != nil {
			return err
		}
		newState := make(blockState, len(entries))
		for _, e := range entries {
			newState[e.octet] = e.name
		}
		changes := diffBlock(s.cur[p], newState)
		ref.snap, ref.kind = snap, frameBase
		s.blocks[p] = append(s.blocks[p], ref)
		s.applyChanges(snap, p, changes)
		s.lastBase[p] = snap
		s.deltasSince[p] = 0
		s.baseFrames++
		return nil
	case frameDelta:
		snap, p, entries, err := decodeDeltaBody(fr.body)
		if err != nil {
			return err
		}
		if err := s.checkFrameSnap(snap); err != nil {
			return err
		}
		if _, known := s.blocks[p]; !known {
			return corruptf("delta for unknown block %s", p)
		}
		ref.snap, ref.kind = snap, frameDelta
		s.blocks[p] = append(s.blocks[p], ref)
		s.applyChanges(snap, p, entries)
		s.deltasSince[p]++
		s.deltaFrames++
		return nil
	}
	return corruptf("unknown frame kind 0x%02x", fr.kind)
}

func (s *Store) checkFrameSnap(snap int) error {
	if snap != len(s.times)-1 {
		return corruptf("block frame for snapshot %d under header %d", snap, len(s.times)-1)
	}
	return nil
}

// frameScanner walks frames off a buffered reader, tracking offsets.
type frameScanner struct {
	r   *bufio.Reader
	off int64
}

// next reads one frame. It returns io.EOF cleanly at a frame boundary and
// errTruncated when the file ends inside a frame.
func (fs *frameScanner) next() (frame, int64, int, error) {
	start := fs.off
	kind, err := fs.r.ReadByte()
	if err == io.EOF {
		return frame{}, start, 0, io.EOF
	}
	if err != nil {
		return frame{}, start, 0, err
	}
	if kind != frameSnap && kind != frameBase && kind != frameDelta {
		return frame{}, start, 0, corruptf("unknown frame kind 0x%02x", kind)
	}
	n, sz, err := readUvarint(fs.r)
	if err != nil {
		return frame{}, start, 0, errTruncated
	}
	if n > 1<<24 {
		return frame{}, start, 0, corruptf("frame body of %d bytes", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(fs.r, body); err != nil {
		return frame{}, start, 0, errTruncated
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(fs.r, crcBuf[:]); err != nil {
		return frame{}, start, 0, errTruncated
	}
	full := make([]byte, 0, 1+sz+len(body)+4)
	full = append(full, kind)
	full = appendUvarintByte(full, n)
	full = append(full, body...)
	full = append(full, crcBuf[:]...)
	fr, _, err := decodeFrame(full)
	if err != nil {
		return frame{}, start, 0, err
	}
	fs.off = start + int64(len(full))
	return fr, start, len(full), nil
}

// readUvarint reads a uvarint and how many bytes it took.
func readUvarint(r io.ByteReader) (uint64, int, error) {
	var v uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, 0, err
		}
		if b < 0x80 {
			return v | uint64(b)<<shift, i + 1, nil
		}
		v |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0, corruptError("uvarint overflow")
}

// diffBlock computes the octet-sorted changes turning old into new.
func diffBlock(old, new blockState) []deltaEntry {
	var out []deltaEntry
	for octet := 0; octet < 256; octet++ {
		o := byte(octet)
		oldName, hadOld := old[o]
		newName, hasNew := new[o]
		switch {
		case hadOld && hasNew && oldName != newName:
			out = append(out, deltaEntry{kind: scanengine.RecordChanged, octet: o, old: oldName, new: newName})
		case hadOld && !hasNew:
			out = append(out, deltaEntry{kind: scanengine.RecordRemoved, octet: o, old: oldName})
		case !hadOld && hasNew:
			out = append(out, deltaEntry{kind: scanengine.RecordAdded, octet: o, new: newName})
		}
	}
	return out
}

// applyChanges advances one block's current state and the name index
// through a snapshot's changes. It is the single transition function both
// Append and replay run, which is what makes reopen bit-identical.
func (s *Store) applyChanges(snap int, p dnswire.Prefix, changes []deltaEntry) {
	st := s.cur[p]
	if st == nil {
		st = make(blockState)
		s.cur[p] = st
	}
	for _, ch := range changes {
		switch ch.kind {
		case scanengine.RecordAdded:
			st[ch.octet] = ch.new
			s.names.add(ch.new, p, snap)
		case scanengine.RecordRemoved:
			delete(st, ch.octet)
			s.names.remove(ch.old, p, snap)
		case scanengine.RecordChanged:
			st[ch.octet] = ch.new
			s.names.remove(ch.old, p, snap)
			s.names.add(ch.new, p, snap)
		}
	}
	if len(st) == 0 {
		delete(s.cur, p)
	}
}

// Append adds one snapshot to the log: the record set the campaign's
// sweep produced at date. Dates must be strictly increasing. Blocks are
// written as deltas against the previous snapshot, or as fresh bases on
// first appearance and whenever a delta chain has spanned the base
// interval (the log's compaction mechanism).
func (s *Store) Append(date time.Time, recs scanengine.RecordSet) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ErrClosed
	}
	date = date.UTC().Truncate(time.Second)
	if len(s.times) > 0 && !date.After(s.times[len(s.times)-1]) {
		return fmt.Errorf("%w: %s is not after %s", ErrOutOfOrder,
			date.Format(time.RFC3339), s.times[len(s.times)-1].Format(time.RFC3339))
	}
	snap := len(s.times)

	// Group the snapshot by /24.
	newStates := make(map[dnswire.Prefix]blockState)
	for ip, name := range recs {
		p := ip.Slash24()
		st := newStates[p]
		if st == nil {
			st = make(blockState)
			newStates[p] = st
		}
		st[ip[3]] = name
	}

	// The union of currently-live and newly-seen blocks, sorted so the
	// log layout (and thus the file bytes) is deterministic.
	prefixes := make(map[dnswire.Prefix]bool, len(newStates)+len(s.cur))
	for p := range newStates {
		prefixes[p] = true
	}
	for p := range s.cur {
		prefixes[p] = true
	}
	order := make([]dnswire.Prefix, 0, len(prefixes))
	for p := range prefixes {
		order = append(order, p)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Addr.Uint32() < order[j].Addr.Uint32() })

	type pending struct {
		p       dnswire.Prefix
		kind    byte
		changes []deltaEntry
		off     int64 // relative to the buffer start
		length  int
	}
	buf := appendFrame(nil, frameSnap, encodeSnapBody(snap, date.Unix()))
	var plan []pending
	for _, p := range order {
		newState := newStates[p]
		changes := diffBlock(s.cur[p], newState)
		_, known := s.blocks[p]
		var kind byte
		switch {
		case !known && len(newState) > 0:
			kind = frameBase
		case !known:
			continue // never materialized and still empty
		case snap-s.lastBase[p] >= s.baseEvery && s.deltasSince[p] > 0:
			kind = frameBase // compact the delta chain
		case len(changes) > 0:
			kind = frameDelta
		default:
			continue // unchanged
		}
		start := int64(len(buf))
		if kind == frameBase {
			entries := make([]baseEntry, 0, len(newState))
			for octet := 0; octet < 256; octet++ {
				if name, ok := newState[byte(octet)]; ok {
					entries = append(entries, baseEntry{octet: byte(octet), name: name})
				}
			}
			buf = appendFrame(buf, frameBase, encodeBaseBody(snap, p, entries))
		} else {
			buf = appendFrame(buf, frameDelta, encodeDeltaBody(snap, p, changes))
		}
		plan = append(plan, pending{p: p, kind: kind, changes: changes, off: start, length: int(int64(len(buf)) - start)})
	}

	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		s.f.Truncate(s.size) // keep the log at the last good boundary
		return fmt.Errorf("histstore: append: %w", err)
	}
	if s.syncEach {
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("histstore: append: %w", err)
		}
	}

	// Commit: indexes, state, stats. Mirrors replayFrame exactly.
	base := s.size
	s.size += int64(len(buf))
	s.times = append(s.times, date)
	for _, pd := range plan {
		s.blocks[pd.p] = append(s.blocks[pd.p], blockRef{
			snap: snap, kind: pd.kind, off: base + pd.off, length: pd.length,
		})
		s.applyChanges(snap, pd.p, pd.changes)
		if pd.kind == frameBase {
			s.lastBase[pd.p] = snap
			s.deltasSince[pd.p] = 0
			s.baseFrames++
			s.met.baseFrames.Inc()
		} else {
			s.deltasSince[pd.p]++
			s.deltaFrames++
			s.met.deltaFrames.Inc()
		}
	}
	m := s.met
	m.appends.Inc()
	m.appendBytes.Add(uint64(len(buf)))
	s.publishGauges()
	return nil
}

// publishGauges refreshes the gauge instruments; callers hold at least a
// read view of the fields they publish.
func (s *Store) publishGauges() {
	m := s.met
	m.snapshots.Set(int64(len(s.times)))
	m.blocks.Set(int64(len(s.blocks)))
	m.bytes.Set(s.size)
	m.cacheEntries.Set(int64(s.cache.len()))
}

// Close syncs and closes the log. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Times returns the snapshot instants in append order.
func (s *Store) Times() []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]time.Time(nil), s.times...)
}

// Len returns the number of snapshots.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.times)
}

// BaseInterval returns the log's base-block cadence K.
func (s *Store) BaseInterval() int { return s.baseEvery }

// Resolve maps an instant to the newest snapshot at or before it — the
// snapshot a point query answers from. ok is false before history.
func (s *Store) Resolve(t time.Time) (time.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.snapAtOrBefore(t)
	if !ok {
		return time.Time{}, false
	}
	return s.times[i], true
}

// snapAtOrBefore finds the newest snapshot index at or before t. Callers
// hold the lock.
func (s *Store) snapAtOrBefore(t time.Time) (int, bool) {
	n := sort.Search(len(s.times), func(i int) bool { return s.times[i].After(t) })
	if n == 0 {
		return 0, false
	}
	return n - 1, true
}

// At answers the time-travel point query: the PTR name held by ip at the
// newest snapshot at or before t. ok is false when the address had no
// record then; ErrBeforeHistory when t precedes the first snapshot.
func (s *Store) At(ip dnswire.IPv4, t time.Time) (dnswire.Name, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return "", false, ErrClosed
	}
	snap, ok := s.snapAtOrBefore(t)
	if !ok {
		return "", false, ErrBeforeHistory
	}
	st, err := s.stateAt(ip.Slash24(), snap)
	if err != nil {
		return "", false, err
	}
	name, ok := st[ip[3]]
	return name, ok, nil
}

// Range returns every observation (snapshot, address, name) within prefix
// and [from, to], ordered by date then address — the store-backed
// replacement for re-reading a campaign CSV.
func (s *Store) Range(p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error) {
	return s.RangeContext(context.Background(), p, from, to)
}

// RangeContext is Range with cancellation: a query serving a disconnected
// client stops reconstructing blocks as soon as ctx is done and returns
// ctx.Err().
func (s *Store) RangeContext(ctx context.Context, p dnswire.Prefix, from, to time.Time) ([]dataset.Row, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return nil, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, nil
	}
	blocks := s.overlappingBlocks(p)
	var rows []dataset.Row
	for i := lo; i <= hi; i++ {
		for _, q := range blocks {
			if err := ctx.Err(); err != nil {
				return rows, err
			}
			st, err := s.stateAt(q, i)
			if err != nil {
				return rows, err
			}
			for octet := 0; octet < 256; octet++ {
				name, ok := st[byte(octet)]
				if !ok {
					continue
				}
				ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], byte(octet)}
				if p.Bits > 24 && !p.Contains(ip) {
					continue
				}
				rows = append(rows, dataset.Row{Date: s.times[i], IP: ip, PTR: name})
			}
		}
	}
	return rows, nil
}

// RangeCursor is the resume position of a paginated Range scan: the next
// candidate (snapshot index, /24 address, last octet) to visit. Cursors
// are stable across appends — snapshot indices are append-only, and a /24
// first materialized after a page's window yields no rows inside it — so
// concatenating pages always reproduces the unpaginated answer. The zero
// cursor starts from the beginning.
type RangeCursor struct {
	Snap  int
	Block uint32
	Octet int
}

// RangePage is the paginated RangeContext: it emits up to limit rows
// starting at cur's position (in the same date-then-address order Range
// uses) and returns the cursor to resume from. more is false once the
// scan is complete; a page that fills limit exactly reports more=true
// and the next page may legitimately be empty. limit must be positive.
func (s *Store) RangePage(ctx context.Context, p dnswire.Prefix, from, to time.Time, cur RangeCursor, limit int) (rows []dataset.Row, next RangeCursor, more bool, err error) {
	if limit <= 0 {
		return nil, cur, false, fmt.Errorf("histstore: non-positive page limit %d", limit)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return nil, cur, false, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, cur, false, nil
	}
	if cur.Snap > lo {
		lo = cur.Snap
	}
	if lo > hi {
		return nil, cur, false, nil
	}
	blocks := s.overlappingBlocks(p)
	for i := lo; i <= hi; i++ {
		for _, q := range blocks {
			addr := q.Addr.Uint32()
			startOctet := 0
			if i == cur.Snap {
				if addr < cur.Block {
					continue // consumed by an earlier page
				}
				if addr == cur.Block {
					startOctet = cur.Octet
					if startOctet > 255 {
						continue // block fully consumed at this snapshot
					}
				}
			}
			if err := ctx.Err(); err != nil {
				return rows, next, false, err
			}
			st, err := s.stateAt(q, i)
			if err != nil {
				return rows, next, false, err
			}
			for octet := startOctet; octet < 256; octet++ {
				name, ok := st[byte(octet)]
				if !ok {
					continue
				}
				ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], byte(octet)}
				if p.Bits > 24 && !p.Contains(ip) {
					continue
				}
				if len(rows) == limit {
					return rows, RangeCursor{Snap: i, Block: addr, Octet: octet}, true, nil
				}
				rows = append(rows, dataset.Row{Date: s.times[i], IP: ip, PTR: name})
			}
		}
	}
	return rows, RangeCursor{}, false, nil
}

// ChurnDay is one snapshot's record-set delta counts within a prefix.
type ChurnDay struct {
	Date    time.Time `json:"date"`
	Added   int       `json:"added"`
	Removed int       `json:"removed"`
	Changed int       `json:"changed"`
}

// Churn returns the per-snapshot join/leave/reallocation counts within
// prefix over [from, to]: exactly the deltas a consumer diffing
// successive raw snapshots would compute. The store's first snapshot has
// no baseline and yields no entry.
func (s *Store) Churn(p dnswire.Prefix, from, to time.Time) ([]ChurnDay, error) {
	return s.ChurnContext(context.Background(), p, from, to)
}

// ChurnContext is Churn with cancellation, mirroring RangeContext.
func (s *Store) ChurnContext(ctx context.Context, p dnswire.Prefix, from, to time.Time) ([]ChurnDay, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.f == nil {
		return nil, ErrClosed
	}
	lo, hi, ok := s.snapRange(from, to)
	if !ok {
		return nil, nil
	}
	if lo == 0 {
		lo = 1
	}
	blocks := s.overlappingBlocks(p)
	var out []ChurnDay
	for i := lo; i <= hi; i++ {
		day := ChurnDay{Date: s.times[i]}
		for _, q := range blocks {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			prev, err := s.stateAt(q, i-1)
			if err != nil {
				return out, err
			}
			cur, err := s.stateAt(q, i)
			if err != nil {
				return out, err
			}
			for _, ch := range diffBlock(prev, cur) {
				if p.Bits > 24 {
					ip := dnswire.IPv4{q.Addr[0], q.Addr[1], q.Addr[2], ch.octet}
					if !p.Contains(ip) {
						continue
					}
				}
				switch ch.kind {
				case scanengine.RecordAdded:
					day.Added++
				case scanengine.RecordRemoved:
					day.Removed++
				case scanengine.RecordChanged:
					day.Changed++
				}
			}
		}
		out = append(out, day)
	}
	return out, nil
}

// FindName answers the inverted-index query: every (/24, interval) where
// a hostname token was present, without scanning the log. Tokens are the
// '-'-separated pieces of hostnames' first labels; possessive forms
// match their stem, so FindName("brian") reaches "brians-iphone".
func (s *Store) FindName(token string) []Posting {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.times) == 0 {
		return nil
	}
	return s.names.find(token, len(s.times)-1, s.times)
}

// snapRange clips [from, to] to snapshot indices. Callers hold the lock.
func (s *Store) snapRange(from, to time.Time) (lo, hi int, ok bool) {
	if len(s.times) == 0 || to.Before(from) {
		return 0, 0, false
	}
	lo = sort.Search(len(s.times), func(i int) bool { return !s.times[i].Before(from) })
	hi = sort.Search(len(s.times), func(i int) bool { return s.times[i].After(to) }) - 1
	if lo > hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// overlappingBlocks lists the indexed /24s overlapping p, sorted by
// address. Callers hold the lock.
func (s *Store) overlappingBlocks(p dnswire.Prefix) []dnswire.Prefix {
	var out []dnswire.Prefix
	for q := range s.blocks {
		if p.Overlaps(q) {
			out = append(out, q)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// stateAt reconstructs the record set of one /24 at a snapshot index:
// nearest base at or before it, plus the deltas in between. Results are
// cached under the block's version snapshot (its newest frame at or
// before the queried one), so every query between two writes of a block
// shares one entry. Callers hold at least the read lock; returned states
// are shared and must not be mutated.
func (s *Store) stateAt(p dnswire.Prefix, snap int) (blockState, error) {
	refs := s.blocks[p]
	i := sort.Search(len(refs), func(k int) bool { return refs[k].snap > snap }) - 1
	if i < 0 {
		return nil, nil // block not materialized yet
	}
	key := cacheKey{p: p, snap: refs[i].snap}
	if st, ok := s.cache.get(key); ok {
		s.met.cacheHits.Inc()
		return st, nil
	}
	if s.cache != nil {
		s.met.cacheMisses.Inc()
	}
	b := i
	for b >= 0 && refs[b].kind != frameBase {
		b--
	}
	if b < 0 {
		return nil, corruptf("block %s has no base frame", p)
	}
	s.reconstructions.Add(1)
	s.met.reconstructions.Inc()
	st := make(blockState)
	for j := b; j <= i; j++ {
		fr, err := s.readFrame(refs[j])
		if err != nil {
			return nil, err
		}
		switch fr.kind {
		case frameBase:
			fsnap, fp, entries, err := decodeBaseBody(fr.body)
			if err != nil {
				return nil, err
			}
			if fsnap != refs[j].snap || fp != p {
				return nil, corruptf("frame at %d is for %s@%d, expected %s@%d",
					refs[j].off, fp, fsnap, p, refs[j].snap)
			}
			st = make(blockState, len(entries))
			for _, e := range entries {
				st[e.octet] = e.name
			}
		case frameDelta:
			fsnap, fp, entries, err := decodeDeltaBody(fr.body)
			if err != nil {
				return nil, err
			}
			if fsnap != refs[j].snap || fp != p {
				return nil, corruptf("frame at %d is for %s@%d, expected %s@%d",
					refs[j].off, fp, fsnap, p, refs[j].snap)
			}
			for _, e := range entries {
				switch e.kind {
				case scanengine.RecordAdded, scanengine.RecordChanged:
					st[e.octet] = e.new
				case scanengine.RecordRemoved:
					delete(st, e.octet)
				}
			}
		}
	}
	s.cache.put(key, st)
	if s.cache != nil {
		s.met.cacheEntries.Set(int64(s.cache.len()))
	}
	return st, nil
}

// readFrame reads and CRC-verifies one frame from the log.
func (s *Store) readFrame(ref blockRef) (frame, error) {
	buf := make([]byte, ref.length)
	if _, err := s.f.ReadAt(buf, ref.off); err != nil {
		return frame{}, fmt.Errorf("histstore: reading frame at %d: %w", ref.off, err)
	}
	fr, rest, err := decodeFrame(buf)
	if err != nil {
		return frame{}, err
	}
	if len(rest) != 0 {
		return frame{}, corruptf("frame at %d shorter than indexed", ref.off)
	}
	return fr, nil
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	// Snapshots is the number of appended snapshots.
	Snapshots int `json:"snapshots"`
	// Blocks is the number of indexed /24 blocks.
	Blocks int `json:"blocks"`
	// BaseFrames and DeltaFrames count the log's block frames; every base
	// past a block's first is a delta-chain compaction.
	BaseFrames  int `json:"base_frames"`
	DeltaFrames int `json:"delta_frames"`
	// Bytes is the log file size.
	Bytes int64 `json:"bytes"`
	// Reconstructions counts block states rebuilt from frames.
	Reconstructions uint64 `json:"reconstructions"`
	// CacheHits/CacheMisses/CacheEntries describe the reconstruction
	// cache (zero when disabled).
	CacheHits    uint64 `json:"cache_hits"`
	CacheMisses  uint64 `json:"cache_misses"`
	CacheEntries int    `json:"cache_entries"`
}

// Stats returns the store's current summary.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	hits, misses := s.cache.counters()
	return Stats{
		Snapshots:       len(s.times),
		Blocks:          len(s.blocks),
		BaseFrames:      s.baseFrames,
		DeltaFrames:     s.deltaFrames,
		Bytes:           s.size,
		Reconstructions: s.reconstructions.Load(),
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEntries:    s.cache.len(),
	}
}
