//go:build unix

package histstore

import (
	"errors"
	"os"
	"syscall"
)

// flockExclusive takes a non-blocking exclusive flock on f. flock locks
// belong to the open file description, so two Stores in one process
// conflict exactly like two processes do.
func flockExclusive(f *os.File) error {
	err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
	if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
		return errLockHeld
	}
	return err
}

// flockExclusiveBlocking waits for an exclusive flock on f.
func flockExclusiveBlocking(f *os.File) error {
	return syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
}

// flockRelease drops the lock (closing the fd would too; being explicit
// keeps the unlock visible at the call site).
func flockRelease(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}
