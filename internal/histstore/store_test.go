package histstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// splitmix is the repo's standard deterministic test RNG.
func splitmix(seed uint64) func() uint64 {
	state := seed
	return func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
}

// campaign is a seeded synthetic history: raw per-day record sets plus
// their instants, the ground truth every store answer is compared to.
type campaign struct {
	times  []time.Time
	snaps  []scanengine.RecordSet
	blocks []dnswire.Prefix
}

// genCampaign builds days snapshots over a handful of /24s with seeded
// random churn: adds, removes, and renames, including tracked-device
// names ("brians-iphone") that move between blocks.
func genCampaign(seed uint64, days int) *campaign {
	rng := splitmix(seed)
	blocks := []dnswire.Prefix{
		dnswire.MustPrefix(fmt.Sprintf("10.%d.1.0/24", seed%100)),
		dnswire.MustPrefix(fmt.Sprintf("10.%d.2.0/24", seed%100)),
		dnswire.MustPrefix(fmt.Sprintf("172.16.%d.0/24", seed%200)),
	}
	devices := []string{"brians-iphone", "brians-ipad", "alices-laptop", "printer"}
	cur := scanengine.RecordSet{}
	start := time.Date(2020, 3, 1, 6, 0, 0, 0, time.UTC)
	c := &campaign{blocks: blocks}
	for day := 0; day < days; day++ {
		// Mutate 0-7 addresses.
		for i := uint64(0); i < rng()%8; i++ {
			b := blocks[rng()%uint64(len(blocks))]
			ip := dnswire.IPv4{b.Addr[0], b.Addr[1], b.Addr[2], byte(rng() % 40)}
			switch rng() % 3 {
			case 0: // add or rename to a dynamic-pool name
				cur[ip] = dnswire.MustName(fmt.Sprintf("host-%d-%d.dyn.example.net", ip.Uint32(), rng()%5))
			case 1: // a tracked device (re)appears here
				cur[ip] = dnswire.MustName(devices[rng()%uint64(len(devices))] + ".lan.example.net")
			case 2:
				delete(cur, ip)
			}
		}
		snap := make(scanengine.RecordSet, len(cur))
		for ip, name := range cur {
			snap[ip] = name
		}
		c.times = append(c.times, start.AddDate(0, 0, day))
		c.snaps = append(c.snaps, snap)
	}
	return c
}

// append loads the whole campaign into st.
func (c *campaign) append(t *testing.T, st *Store) {
	t.Helper()
	for i := range c.snaps {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatalf("Append day %d: %v", i, err)
		}
	}
}

// Brute-force oracles over the raw snapshots.

func (c *campaign) snapAtOrBefore(t time.Time) (int, bool) {
	n := sort.Search(len(c.times), func(i int) bool { return c.times[i].After(t) })
	if n == 0 {
		return 0, false
	}
	return n - 1, true
}

func (c *campaign) bruteAt(ip dnswire.IPv4, t time.Time) (dnswire.Name, bool, bool) {
	i, ok := c.snapAtOrBefore(t)
	if !ok {
		return "", false, false
	}
	name, ok := c.snaps[i][ip]
	return name, ok, true
}

func (c *campaign) bruteRange(p dnswire.Prefix, from, to time.Time) []string {
	var out []string
	for i := range c.snaps {
		if c.times[i].Before(from) || c.times[i].After(to) {
			continue
		}
		var ips []dnswire.IPv4
		for ip := range c.snaps[i] {
			if p.Contains(ip) {
				ips = append(ips, ip)
			}
		}
		sort.Slice(ips, func(a, b int) bool { return ips[a].Uint32() < ips[b].Uint32() })
		for _, ip := range ips {
			out = append(out, fmt.Sprintf("%s %s %s", c.times[i].Format(time.RFC3339), ip, c.snaps[i][ip]))
		}
	}
	return out
}

func (c *campaign) bruteChurn(p dnswire.Prefix, from, to time.Time) []ChurnDay {
	var out []ChurnDay
	for i := 1; i < len(c.snaps); i++ {
		if c.times[i].Before(from) || c.times[i].After(to) {
			continue
		}
		day := ChurnDay{Date: c.times[i]}
		for ip, old := range c.snaps[i-1] {
			if !p.Contains(ip) {
				continue
			}
			if now, ok := c.snaps[i][ip]; !ok {
				day.Removed++
			} else if now != old {
				day.Changed++
			}
		}
		for ip := range c.snaps[i] {
			if !p.Contains(ip) {
				continue
			}
			if _, ok := c.snaps[i-1][ip]; !ok {
				day.Added++
			}
		}
		out = append(out, day)
	}
	return out
}

// bruteFind reimplements FindName over the raw snapshots: per /24, the
// maximal runs of consecutive snapshots where any record carries the
// token.
func (c *campaign) bruteFind(token string) []Posting {
	present := map[dnswire.Prefix][]bool{}
	for i, snap := range c.snaps {
		for ip, name := range snap {
			for _, tok := range tokensOf(name) {
				if tok != token {
					continue
				}
				p := ip.Slash24()
				if present[p] == nil {
					present[p] = make([]bool, len(c.snaps))
				}
				present[p][i] = true
			}
		}
	}
	prefixes := make([]dnswire.Prefix, 0, len(present))
	for p := range present {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr.Uint32() < prefixes[j].Addr.Uint32() })
	var out []Posting
	for _, p := range prefixes {
		days := present[p]
		for i := 0; i < len(days); i++ {
			if !days[i] {
				continue
			}
			j := i
			for j+1 < len(days) && days[j+1] {
				j++
			}
			out = append(out, Posting{Prefix: p, First: c.times[i], Last: c.times[j]})
			i = j
		}
	}
	return out
}

// verifyStore checks every store answer against the brute-force oracles.
func verifyStore(t *testing.T, st *Store, c *campaign, rng func() uint64) {
	t.Helper()
	queryPrefixes := []dnswire.Prefix{
		dnswire.MustPrefix("0.0.0.0/0"),
		dnswire.MustPrefix("10.0.0.0/8"),
		c.blockOf(0), c.blockOf(2),
		// Narrower than a /24: exercises the filter path.
		{Addr: c.blockOf(1).Addr, Bits: 27},
	}

	// At: sampled (ip, instant) pairs, including off-grid instants that
	// must resolve to the preceding snapshot, plus pre-history.
	if _, _, err := st.At(c.blockOf(0).Addr, c.times[0].Add(-time.Hour)); !errors.Is(err, ErrBeforeHistory) {
		t.Fatalf("At before history: err=%v, want ErrBeforeHistory", err)
	}
	for i := 0; i < 300; i++ {
		b := c.blockOf(int(rng() % 3))
		ip := dnswire.IPv4{b.Addr[0], b.Addr[1], b.Addr[2], byte(rng() % 48)}
		when := c.times[rng()%uint64(len(c.times))].Add(time.Duration(rng()%20) * time.Hour)
		wantName, wantOK, inHistory := c.bruteAt(ip, when)
		gotName, gotOK, err := st.At(ip, when)
		if !inHistory {
			if !errors.Is(err, ErrBeforeHistory) {
				t.Fatalf("At(%s, %s): err=%v, want ErrBeforeHistory", ip, when, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("At(%s, %s): %v", ip, when, err)
		}
		if gotOK != wantOK || gotName != wantName {
			t.Fatalf("At(%s, %s) = (%q, %v), oracle (%q, %v)", ip, when, gotName, gotOK, wantName, wantOK)
		}
	}

	// Range over several windows and prefixes.
	windows := [][2]time.Time{
		{c.times[0], c.times[len(c.times)-1]},
		{c.times[len(c.times)/3], c.times[2*len(c.times)/3]},
		{c.times[5].Add(time.Minute), c.times[9]},
	}
	for _, p := range queryPrefixes {
		for _, w := range windows {
			rows, err := st.Range(p, w[0], w[1])
			if err != nil {
				t.Fatalf("Range(%s): %v", p, err)
			}
			got := make([]string, len(rows))
			for i, r := range rows {
				got[i] = fmt.Sprintf("%s %s %s", r.Date.Format(time.RFC3339), r.IP, r.PTR)
			}
			want := c.bruteRange(p, w[0], w[1])
			if len(got) != len(want) {
				t.Fatalf("Range(%s, %s..%s): %d rows, oracle %d", p, w[0].Format("2006-01-02"), w[1].Format("2006-01-02"), len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("Range(%s) row %d:\n got  %s\n want %s", p, i, got[i], want[i])
				}
			}
		}
	}

	// Churn over the same windows.
	for _, p := range queryPrefixes {
		for _, w := range windows {
			got, err := st.Churn(p, w[0], w[1])
			if err != nil {
				t.Fatalf("Churn(%s): %v", p, err)
			}
			want := c.bruteChurn(p, w[0], w[1])
			if len(got) != len(want) {
				t.Fatalf("Churn(%s): %d days, oracle %d", p, len(got), len(want))
			}
			for i := range got {
				if !got[i].Date.Equal(want[i].Date) || got[i].Added != want[i].Added ||
					got[i].Removed != want[i].Removed || got[i].Changed != want[i].Changed {
					t.Fatalf("Churn(%s) day %d: %+v, oracle %+v", p, i, got[i], want[i])
				}
			}
		}
	}

	// FindName for every token the campaign can produce, plus the stem.
	for _, token := range []string{"brians", "brian", "alices", "alice", "printer", "host", "nosuchtoken"} {
		got := st.FindName(token)
		want := c.bruteFind(token)
		if len(got) != len(want) {
			t.Fatalf("FindName(%q): %d postings, oracle %d\n got  %+v\n want %+v", token, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i].Prefix != want[i].Prefix || !got[i].First.Equal(want[i].First) || !got[i].Last.Equal(want[i].Last) {
				t.Fatalf("FindName(%q) posting %d: %+v, oracle %+v", token, i, got[i], want[i])
			}
		}
	}
}

// blockOf returns the campaign's i-th /24.
func (c *campaign) blockOf(i int) dnswire.Prefix { return c.blocks[i] }

// TestStoreProperty is the acceptance test of the subsystem: a seeded
// 50-day campaign appended to the store answers At, Range, Churn, and
// FindName bit-identically to brute-force replay of the raw snapshots —
// before AND after a close/reopen cycle, with and without the cache, and
// across base intervals that force both delta-heavy and base-heavy logs.
func TestStoreProperty(t *testing.T) {
	for _, tc := range []struct {
		seed      uint64
		baseEvery int
		cache     int
	}{
		{seed: 1, baseEvery: 7, cache: 256},
		{seed: 2, baseEvery: 1, cache: 0},   // every block write is a base
		{seed: 3, baseEvery: 100, cache: 8}, // one base, long delta chains, tiny cache
		{seed: 4, baseEvery: 3, cache: 256},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed=%d/K=%d/cache=%d", tc.seed, tc.baseEvery, tc.cache), func(t *testing.T) {
			c := genCampaign(tc.seed, 50)
			path := filepath.Join(t.TempDir(), "hist.log")
			st, err := Open(path, WithBaseInterval(tc.baseEvery), WithCache(tc.cache))
			if err != nil {
				t.Fatal(err)
			}
			c.append(t, st)
			verifyStore(t, st, c, splitmix(tc.seed*7919))
			stats := st.Stats()
			if stats.Snapshots != 50 {
				t.Fatalf("Stats.Snapshots = %d, want 50", stats.Snapshots)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen: the replayed store must answer identically.
			st2, err := Open(path, WithCache(tc.cache))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer st2.Close()
			if st2.BaseInterval() != tc.baseEvery {
				t.Fatalf("reopen lost base interval: %d, want %d", st2.BaseInterval(), tc.baseEvery)
			}
			verifyStore(t, st2, c, splitmix(tc.seed*104729))
			s2 := st2.Stats()
			if s2.Snapshots != stats.Snapshots || s2.Blocks != stats.Blocks ||
				s2.BaseFrames != stats.BaseFrames || s2.DeltaFrames != stats.DeltaFrames ||
				s2.Bytes != stats.Bytes {
				t.Fatalf("reopen stats drifted: %+v vs %+v", s2, stats)
			}
		})
	}
}

// TestStoreAppendAfterReopen verifies the writer can continue a replayed
// log: append 30 days, reopen, append 20 more, and the full 50-day
// history still matches the oracle.
func TestStoreAppendAfterReopen(t *testing.T) {
	c := genCampaign(11, 50)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path, WithBaseInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = Open(path, WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 30; i < 50; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	verifyStore(t, st, c, splitmix(4242))
}

// TestStoreTornTail simulates a crash mid-append: garbage or a partial
// frame at the end of the log is truncated away on open, and everything
// before it still answers correctly.
func TestStoreTornTail(t *testing.T) {
	c := genCampaign(5, 20)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c.append(t, st)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	tail := tailPath(t, path)
	fi, _ := os.Stat(tail)
	goodSize := fi.Size()

	// A torn frame: a valid kind byte, a length promising more than is
	// there, and a few body bytes.
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{frameBase, 0x80, 0x02, 'x', 'y', 'z'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err = Open(path)
	if err != nil {
		t.Fatalf("open with torn tail: %v", err)
	}
	defer st.Close()
	if st.Len() != 20 {
		t.Fatalf("Len = %d after torn-tail recovery, want 20", st.Len())
	}
	fi, _ = os.Stat(tail)
	if fi.Size() != goodSize {
		t.Fatalf("tail is %d bytes after recovery, want %d", fi.Size(), goodSize)
	}
	verifyStore(t, st, c, splitmix(99))

	// And the recovered store accepts new appends.
	extra := scanengine.RecordSet{c.blocks[0].Addr: dnswire.MustName("post-crash.example.net")}
	if err := st.Append(c.times[19].Add(24*time.Hour), extra); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestStoreMidFileCorruption: damage inside the log (not a torn tail) is
// not silently dropped — Open fails loudly.
func TestStoreMidFileCorruption(t *testing.T) {
	c := genCampaign(6, 10)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c.append(t, st)
	st.Close()

	tail := tailPath(t, path)
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened a mid-file-corrupted log without error")
	}
}

// tailPath finds a store's single tail file for tests that poke bytes.
func tailPath(t *testing.T, dir string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "tail-*.log"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one tail file in %s, got %v (err %v)", dir, matches, err)
	}
	return matches[0]
}

func TestStoreBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("date,ip,ptr\n2020-01-01,1.2.3.4,x.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened a CSV as a history log")
	}
}

func TestStoreOrderingAndClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	day := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	if err := st.Append(day, nil); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(day, nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("same-instant append: %v, want ErrOutOfOrder", err)
	}
	if err := st.Append(day.Add(-time.Hour), nil); !errors.Is(err, ErrOutOfOrder) {
		t.Fatalf("backdated append: %v, want ErrOutOfOrder", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(day.Add(time.Hour), nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	if _, _, err := st.At(dnswire.MustIPv4("1.2.3.4"), day); !errors.Is(err, ErrClosed) {
		t.Fatalf("At after close: %v, want ErrClosed", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStoreCacheCounters(t *testing.T) {
	c := genCampaign(8, 15)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path, WithCache(128))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)

	ip := dnswire.IPv4{c.blocks[0].Addr[0], c.blocks[0].Addr[1], c.blocks[0].Addr[2], 7}
	if _, _, err := st.At(ip, c.times[10]); err != nil {
		t.Fatal(err)
	}
	cold := st.Stats()
	for i := 0; i < 5; i++ {
		if _, _, err := st.At(ip, c.times[10]); err != nil {
			t.Fatal(err)
		}
	}
	warm := st.Stats()
	if warm.CacheHits != cold.CacheHits+5 {
		t.Fatalf("CacheHits %d -> %d, want +5", cold.CacheHits, warm.CacheHits)
	}
	if warm.Reconstructions != cold.Reconstructions {
		t.Fatalf("cached queries reconstructed: %d -> %d", cold.Reconstructions, warm.Reconstructions)
	}
	if warm.CacheEntries == 0 {
		t.Fatal("CacheEntries = 0 with a warm cache")
	}
}

func TestStoreResolveAndTimes(t *testing.T) {
	c := genCampaign(9, 5)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)

	times := st.Times()
	if len(times) != 5 {
		t.Fatalf("Times: %d, want 5", len(times))
	}
	for i, ti := range times {
		if !ti.Equal(c.times[i]) {
			t.Fatalf("Times[%d] = %s, want %s", i, ti, c.times[i])
		}
	}
	if _, ok := st.Resolve(c.times[0].Add(-time.Second)); ok {
		t.Fatal("Resolve before history succeeded")
	}
	got, ok := st.Resolve(c.times[2].Add(7 * time.Hour))
	if !ok || !got.Equal(c.times[2]) {
		t.Fatalf("Resolve mid-gap = (%s, %v), want %s", got, ok, c.times[2])
	}
}

// TestRangePageConcatenation: for seeded campaigns and a spread of page
// sizes, concatenating RangePage pages must reproduce the unpaginated
// Range answer exactly — the pagination contract cmd/rdnsd's /v1/range
// serves. Page sizes that divide the row count evenly exercise the
// "full page then empty final page" shape.
func TestRangePageConcatenation(t *testing.T) {
	for _, seed := range []uint64{3, 17, 51} {
		c := genCampaign(seed, 25)
		path := filepath.Join(t.TempDir(), "hist.log")
		st, err := Open(path, WithCache(128))
		if err != nil {
			t.Fatal(err)
		}
		c.append(t, st)
		prefixes := []dnswire.Prefix{
			dnswire.MustPrefix("0.0.0.0/0"),
			c.blockOf(0),
			{Addr: c.blockOf(1).Addr, Bits: 27},
		}
		windows := [][2]time.Time{
			{c.times[0], c.times[len(c.times)-1]},
			{c.times[4], c.times[11]},
		}
		ctx := context.Background()
		for _, p := range prefixes {
			for _, w := range windows {
				want, err := st.Range(p, w[0], w[1])
				if err != nil {
					t.Fatal(err)
				}
				for _, limit := range []int{1, 3, 7, 100000} {
					var got []dataset.Row
					var cur RangeCursor
					pages := 0
					for {
						rows, next, more, err := st.RangePage(ctx, p, w[0], w[1], cur, limit)
						if err != nil {
							t.Fatalf("seed %d RangePage(%s, limit %d): %v", seed, p, limit, err)
						}
						got = append(got, rows...)
						pages++
						if !more {
							break
						}
						cur = next
						if pages > len(want)+2 {
							t.Fatalf("seed %d: pagination did not terminate (%d pages for %d rows)", seed, pages, len(want))
						}
					}
					if len(got) != len(want) {
						t.Fatalf("seed %d %s limit %d: %d paginated rows, %d unpaginated", seed, p, limit, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("seed %d %s limit %d row %d: %+v != %+v", seed, p, limit, i, got[i], want[i])
						}
					}
				}
			}
		}
		st.Close()
	}
}

// TestRangePageStableAcrossAppends: a cursor taken mid-pagination keeps
// producing the fixed window's rows even while the store appends more
// days — the live-campaign serving scenario.
func TestRangePageStableAcrossAppends(t *testing.T) {
	c := genCampaign(7, 30)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Load only the first 20 days; the window covers days 0-14.
	for i := 0; i < 20; i++ {
		if err := st.Append(c.times[i], c.snaps[i]); err != nil {
			t.Fatal(err)
		}
	}
	p := dnswire.MustPrefix("0.0.0.0/0")
	from, to := c.times[0], c.times[14]
	want, err := st.Range(p, from, to)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var got []dataset.Row
	var cur RangeCursor
	appended := 20
	for {
		rows, next, more, err := st.RangePage(ctx, p, from, to, cur, 5)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rows...)
		if !more {
			break
		}
		cur = next
		// Interleave appends between pages.
		if appended < len(c.snaps) {
			if err := st.Append(c.times[appended], c.snaps[appended]); err != nil {
				t.Fatal(err)
			}
			appended++
		}
	}
	if len(got) != len(want) {
		t.Fatalf("%d rows across appends, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d diverged: %+v != %+v", i, got[i], want[i])
		}
	}
}

// TestQueryCancellation: RangeContext, ChurnContext, and RangePage stop
// at a canceled context instead of completing the scan.
func TestQueryCancellation(t *testing.T) {
	c := genCampaign(13, 20)
	path := filepath.Join(t.TempDir(), "hist.log")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	c.append(t, st)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := dnswire.MustPrefix("0.0.0.0/0")
	if _, err := st.RangeContext(ctx, p, c.times[0], c.times[19]); !errors.Is(err, context.Canceled) {
		t.Fatalf("RangeContext on canceled ctx: %v", err)
	}
	if _, err := st.ChurnContext(ctx, p, c.times[0], c.times[19]); !errors.Is(err, context.Canceled) {
		t.Fatalf("ChurnContext on canceled ctx: %v", err)
	}
	if _, _, _, err := st.RangePage(ctx, p, c.times[0], c.times[19], RangeCursor{}, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("RangePage on canceled ctx: %v", err)
	}
	// A bad page limit is rejected loudly.
	if _, _, _, err := st.RangePage(context.Background(), p, c.times[0], c.times[19], RangeCursor{}, 0); err == nil {
		t.Fatal("RangePage accepted limit 0")
	}
}
