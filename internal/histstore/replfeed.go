package histstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Replication feed: the primary-side export hooks internal/replica and
// rdnsserve's /v1/repl/* endpoints are built on, plus the replica-side
// verification and commit helpers. The feed is derived entirely from the
// store's crash-atomic layout:
//
//   - FeedManifest snapshots the current file set — per writer, the
//     sealed segments (content-addressed by their trailer CRCs) and the
//     committed byte count of the active tail.
//   - FeedReadSegment serves immutable segment bytes; segments are never
//     rewritten or deleted once sealed, so a fetch can resume at any
//     offset across primary restarts and compactions.
//   - FeedReadTail serves the committed prefix of a writer's tail.
//     Append commits bytes under the store's write lock and tail files
//     are never reused (compaction starts a fresh file name), so the
//     region [0, committed) is immutable and a replica can resume a
//     delta pull from its local file size.
//
// A replica downloads segments once, appends tail deltas, verifies every
// file (VerifySegmentFile / VerifyTailFile — bit flips and truncation
// are loud errors, never silently wrong answers), and commits the new
// generation with WriteFeedManifest, the same tmp+fsync+rename protocol
// every other store mutation uses.

// ErrFeedUnknownFile reports a feed read for a file the store's current
// manifest does not reference.
var ErrFeedUnknownFile = errors.New("histstore: feed file not in manifest")

// ErrFeedTailChanged reports a tail delta request naming a tail file the
// writer no longer appends to (a compaction started a fresh tail). The
// replica must refetch the manifest and pull the new tail from scratch.
var ErrFeedTailChanged = errors.New("histstore: writer tail changed")

// ErrFeedBadRange reports a feed read offset outside the file's (or the
// tail's committed) byte range — a malformed request, not corruption.
var ErrFeedBadRange = errors.New("histstore: feed offset out of range")

// FeedSegment describes one sealed, immutable segment in a feed
// manifest. CRC is the segment's footer CRC from its fixed trailer — the
// content address a replica checks its download against.
type FeedSegment struct {
	File  string `json:"file"`
	First int    `json:"first"`
	Count int    `json:"count"`
	Size  int64  `json:"size"`
	CRC   uint32 `json:"crc"`
}

// FeedWriter is one writer's share of a feed manifest. TailSize is the
// committed byte count of the active tail (header included); bytes past
// it are either absent or a torn append and are never served.
type FeedWriter struct {
	ID        string        `json:"id"`
	FileSeq   int           `json:"file_seq"`
	TailFile  string        `json:"tail_file"`
	TailFirst int           `json:"tail_first"`
	TailSize  int64         `json:"tail_size"`
	Segments  []FeedSegment `json:"segments,omitempty"`
}

// FeedManifest is a point-in-time description of the store's replicable
// file set, consistent under the store lock: the segment tables and tail
// sizes all belong to one committed state.
type FeedManifest struct {
	BaseInterval int          `json:"base_interval"`
	Snapshots    int          `json:"snapshots"`
	LastSnap     time.Time    `json:"last_snap,omitzero"`
	TotalBytes   int64        `json:"total_bytes"`
	Writers      []FeedWriter `json:"writers"`
}

// segmentCRC returns the segment's footer CRC from its trailer, cached
// after the first read (segments are immutable). Uses the segment's open
// handle when the tier holds one, else opens the path briefly.
func (g *segment) segmentCRC() (uint32, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.crcKnown {
		return g.crc, nil
	}
	f := g.f
	if f == nil {
		var err error
		if f, err = os.Open(g.path); err != nil {
			return 0, fmt.Errorf("histstore: %w", err)
		}
		defer f.Close()
	}
	if g.size < segTrailerLen {
		return 0, fmt.Errorf("histstore: segment %s: %w", g.path, corruptError("shorter than its trailer"))
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], g.size-segTrailerLen); err != nil {
		return 0, fmt.Errorf("histstore: segment %s trailer: %w", g.path, err)
	}
	if [8]byte(trailer[12:]) != segTrailerMagic {
		return 0, fmt.Errorf("histstore: segment %s: %w", g.path, corruptError("bad trailer magic"))
	}
	g.crc = binary.LittleEndian.Uint32(trailer[8:12])
	g.crcKnown = true
	return g.crc, nil
}

// FeedManifest snapshots the store's replicable file set. The returned
// manifest is self-consistent: it describes one committed store state,
// taken under the store's read lock.
func (s *Store) FeedManifest() (FeedManifest, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return FeedManifest{}, ErrClosed
	}
	fm := FeedManifest{BaseInterval: s.baseEvery, Snapshots: len(s.times)}
	if n := len(s.times); n > 0 {
		fm.LastSnap = s.times[n-1]
	}
	for _, w := range s.writers {
		fw := FeedWriter{
			ID:        w.id,
			FileSeq:   w.fileSeq,
			TailFile:  w.tailFile,
			TailFirst: w.tailFirst,
			TailSize:  w.tailSize,
		}
		for _, g := range w.segs {
			crc, err := g.segmentCRC()
			if err != nil {
				return FeedManifest{}, err
			}
			fw.Segments = append(fw.Segments, FeedSegment{
				File:  filepath.Base(g.path),
				First: g.firstSnap,
				Count: g.count,
				Size:  g.size,
				CRC:   crc,
			})
			fm.TotalBytes += g.size
		}
		fm.TotalBytes += w.tailSize
		fm.Writers = append(fm.Writers, fw)
	}
	return fm, nil
}

// FeedReadSegment serves up to max bytes of the named sealed segment
// starting at off, returning the chunk and the segment's total size.
// Only files the current manifest references are served (no path
// traversal: names are matched against the in-memory segment set, never
// joined from request input). Segments are immutable, so any (off, max)
// window is stable across calls.
func (s *Store) FeedReadSegment(name string, off int64, max int) ([]byte, int64, error) {
	s.mu.RLock()
	var path string
	var size int64
	if s.closed {
		s.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	for _, w := range s.writers {
		for _, g := range w.segs {
			if filepath.Base(g.path) == name {
				path, size = g.path, g.size
			}
		}
	}
	s.mu.RUnlock()
	if path == "" {
		return nil, 0, fmt.Errorf("%w: segment %q", ErrFeedUnknownFile, name)
	}
	if off < 0 || off > size {
		return nil, 0, fmt.Errorf("%w: segment %q offset %d not in [0, %d]", ErrFeedBadRange, name, off, size)
	}
	if max <= 0 || int64(max) > size-off {
		max = int(size - off)
	}
	// Read through a fresh handle: the tier may open/close the shared one
	// concurrently, and the file is immutable anyway.
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("histstore: %w", err)
	}
	defer f.Close()
	buf := make([]byte, max)
	if _, err := io.ReadFull(io.NewSectionReader(f, off, int64(max)), buf); err != nil {
		return nil, 0, fmt.Errorf("histstore: reading feed segment %q: %w", name, err)
	}
	return buf, size, nil
}

// FeedTailInfo identifies a writer's active tail at read time.
type FeedTailInfo struct {
	File  string // tail file name
	First int    // writer-local index of the tail's first snapshot
	Size  int64  // committed bytes (header included)
}

// FeedReadTail serves up to max bytes of writer's committed tail region
// starting at off, plus the tail's identity. When wantFile is non-empty
// and no longer the writer's active tail (compaction swapped it), the
// read fails with ErrFeedTailChanged and the current identity, telling
// the replica to restart its tail pull from the new file. off may equal
// the committed size (an empty caught-up read).
func (s *Store) FeedReadTail(writer, wantFile string, off int64, max int) ([]byte, FeedTailInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, FeedTailInfo{}, ErrClosed
	}
	var w *writerState
	for _, cand := range s.writers {
		if cand.id == writer {
			w = cand
			break
		}
	}
	if w == nil {
		return nil, FeedTailInfo{}, fmt.Errorf("%w: writer %q", ErrFeedUnknownFile, writer)
	}
	info := FeedTailInfo{File: w.tailFile, First: w.tailFirst, Size: w.tailSize}
	if wantFile != "" && wantFile != w.tailFile {
		return nil, info, fmt.Errorf("%w: %q is now %q", ErrFeedTailChanged, wantFile, w.tailFile)
	}
	if off < 0 || off > w.tailSize {
		return nil, info, fmt.Errorf("%w: tail %q offset %d not in [0, %d]", ErrFeedBadRange, w.tailFile, off, w.tailSize)
	}
	if max <= 0 || int64(max) > w.tailSize-off {
		max = int(w.tailSize - off)
	}
	buf := make([]byte, max)
	if max > 0 {
		// Committed tail bytes are immutable and Append serializes against
		// this read lock, so a ReadAt within [0, tailSize) is stable.
		if _, err := w.tailF.ReadAt(buf, off); err != nil {
			return nil, info, fmt.Errorf("histstore: reading feed tail %q: %w", w.tailFile, err)
		}
	}
	return buf, info, nil
}

// VerifySegmentFile fully validates a downloaded segment file against
// its manifest identity: header, trailer, footer CRC, footer index
// decode, and a CRC scan of every frame in the data region — together
// the checks cover every byte of the file. It returns the file size and
// the trailer's footer CRC so callers can match the feed's content
// address. Any truncation or bit flip is a loud error.
func VerifySegmentFile(path, writerID string, first, count int) (int64, uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("histstore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("histstore: %w", err)
	}
	size := fi.Size()
	_, frameStart, footerOff, err := readSegmentIndex(f, size, writerID, first, count)
	if err != nil {
		return 0, 0, fmt.Errorf("histstore: segment %s: %w", path, err)
	}
	sc := &frameScanner{
		r:   bufio.NewReaderSize(io.NewSectionReader(f, frameStart, footerOff-frameStart), 1<<16),
		off: frameStart,
	}
	for {
		_, off, _, err := sc.next()
		if err == io.EOF {
			break
		}
		if errors.Is(err, errTruncated) {
			return 0, 0, fmt.Errorf("histstore: segment %s: %w", path,
				corruptf("frame region ends inside a frame at offset %d", off))
		}
		if err != nil {
			return 0, 0, fmt.Errorf("histstore: segment %s at offset %d: %w", path, off, err)
		}
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-segTrailerLen); err != nil {
		return 0, 0, fmt.Errorf("histstore: segment %s trailer: %w", path, err)
	}
	return size, binary.LittleEndian.Uint32(trailer[8:12]), nil
}

// VerifyTailFile validates the first size bytes of a downloaded tail
// file: magic, header first-snapshot == first, and a full frame scan of
// [header, size) with every frame CRC checked and snapshot headers
// counting up contiguously from first. It returns the number of
// snapshots in the verified region. A scan that ends inside a frame is
// an error — a replica never commits a tail prefix it cannot prove
// frame-aligned, so a truncated or bit-flipped delta pull fails loudly
// instead of quietly serving fewer (or wrong) snapshots.
func VerifyTailFile(path string, first int, size int64) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("histstore: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("histstore: %w", err)
	}
	if fi.Size() < size {
		return 0, fmt.Errorf("histstore: tail %s: %w", path,
			corruptf("file is %d bytes, verifying %d", fi.Size(), size))
	}
	gotFirst, hdrLen, _, err := readTailHeader(f)
	if err != nil {
		return 0, fmt.Errorf("histstore: tail %s: %w", path, err)
	}
	if gotFirst != first {
		return 0, fmt.Errorf("histstore: tail %s: %w", path,
			corruptf("header says first snapshot %d, manifest says %d", gotFirst, first))
	}
	if size < hdrLen {
		return 0, fmt.Errorf("histstore: tail %s: %w", path,
			corruptf("verified size %d is inside the %d-byte header", size, hdrLen))
	}
	sc := &frameScanner{
		r:   bufio.NewReaderSize(io.NewSectionReader(f, hdrLen, size-hdrLen), 1<<16),
		off: hdrLen,
	}
	snaps, expect := 0, first
	sawSnap := false
	for {
		fr, off, _, err := sc.next()
		if err == io.EOF {
			return snaps, nil
		}
		if errors.Is(err, errTruncated) {
			return 0, fmt.Errorf("histstore: tail %s: %w", path,
				corruptf("truncated inside a frame at offset %d", off))
		}
		if err != nil {
			return 0, fmt.Errorf("histstore: tail %s at offset %d: %w", path, off, err)
		}
		switch fr.kind {
		case frameSnap:
			snap, _, err := decodeSnapBody(fr.body)
			if err != nil {
				return 0, fmt.Errorf("histstore: tail %s at offset %d: %w", path, off, err)
			}
			if snap != expect {
				return 0, fmt.Errorf("histstore: tail %s: %w", path,
					corruptf("snapshot header %d at offset %d, expected %d", snap, off, expect))
			}
			expect++
			snaps++
			sawSnap = true
		default:
			if !sawSnap {
				return 0, fmt.Errorf("histstore: tail %s: %w", path,
					corruptf("block frame at offset %d before any snapshot header", off))
			}
		}
	}
}

// ValidStoreFileName reports whether name is safe as a basename inside a
// store directory: non-empty, bounded, free of path separators and NULs,
// and not "."/".." or a reserved store name. Replication clients must
// check every feed-supplied file name against it before joining it into
// a local path — WriteFeedManifest re-validates at commit time, but by
// then a hostile name would already have been touched on disk.
func ValidStoreFileName(name string) bool { return validStoreFileName(name) }

// ValidWriterID reports whether id is a legal writer identity: 1..64
// bytes of [a-z0-9_-].
func ValidWriterID(id string) bool { return validWriterID(id) }

// WriteFeedManifest commits a replica's synced file set as the store
// directory's manifest, using the same atomic tmp+fsync+rename protocol
// every primary-side mutation uses. The manifest is validated by an
// encode/decode round trip first — the same strict checks Open applies —
// so an inconsistent feed (segments not tiling [0, tailFirst), bad
// names) fails before anything is committed. It reports whether the
// directory's manifest actually advanced: a byte-identical re-commit is
// skipped, so a caught-up replica's sync is a no-op.
func WriteFeedManifest(dir string, fm FeedManifest) (bool, error) {
	if fm.BaseInterval <= 0 {
		return false, fmt.Errorf("histstore: feed manifest base interval %d", fm.BaseInterval)
	}
	m := &storeManifest{baseEvery: fm.BaseInterval}
	for _, fw := range fm.Writers {
		mw := manifestWriter{
			id:        fw.ID,
			fileSeq:   fw.FileSeq,
			tailFile:  fw.TailFile,
			tailFirst: fw.TailFirst,
		}
		for _, g := range fw.Segments {
			mw.segs = append(mw.segs, manifestSegment{file: g.File, first: g.First, count: g.Count})
		}
		m.setWriter(mw)
	}
	enc := encodeManifest(m)
	if _, err := decodeManifest(enc); err != nil {
		return false, fmt.Errorf("histstore: feed manifest invalid: %w", err)
	}
	if cur, err := readManifest(dir); err == nil && cur != nil && bytes.Equal(encodeManifest(cur), enc) {
		return false, nil
	}
	if err := writeManifest(dir, m, nil); err != nil {
		return false, err
	}
	return true, nil
}
