package histstore

import (
	"sync"
	"sync/atomic"

	"rdnsprivacy/internal/dnswire"
)

// blockCache is the sharded LRU over reconstructed block states. Keys are
// (/24, version snapshot): every query whose resolved snapshot falls
// between two writes of a block shares the entry for the earlier write,
// so a quiet block occupies one slot no matter how many days are queried.
//
// The cache is sharded 16 ways by prefix so concurrent rdnsd queries do
// not serialize on one mutex, and size-bounded per shard. Cached states
// are shared read-only — reconstruction never mutates a returned state.
type blockCache struct {
	shards [cacheShards]cacheShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

const cacheShards = 16

type cacheKey struct {
	w    int // writer index: states are writer-local before merging
	p    dnswire.Prefix
	snap int // writer-local version snapshot (the block's newest frame)
}

type cacheEntry struct {
	key        cacheKey
	state      blockState
	prev, next *cacheEntry // LRU list, most-recent at head
}

type cacheShard struct {
	mu         sync.Mutex
	cap        int
	m          map[cacheKey]*cacheEntry
	head, tail *cacheEntry
}

// newBlockCache creates a cache bounded to roughly capacity entries in
// total (at least one per shard). Nil when capacity <= 0.
func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		return nil
	}
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &blockCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].m = make(map[cacheKey]*cacheEntry)
	}
	return c
}

func (c *blockCache) shard(key cacheKey) *cacheShard {
	// The low prefix octets distribute consecutive /24s across shards.
	h := uint32(key.p.Addr[2])*31 + uint32(key.p.Addr[1])*7 + uint32(key.p.Addr[0])
	return &c.shards[h%cacheShards]
}

// get returns the cached state for key, counting the hit or miss. Safe on
// a nil cache (always a miss, uncounted).
func (c *blockCache) get(key cacheKey) (blockState, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	s.moveToFront(e)
	c.hits.Add(1)
	return e.state, true
}

// put inserts a state, evicting the least-recently-used entry of the
// shard when full. Safe on a nil cache.
func (c *blockCache) put(key cacheKey, state blockState) {
	if c == nil {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[key]; ok {
		e.state = state
		s.moveToFront(e)
		return
	}
	e := &cacheEntry{key: key, state: state}
	s.m[key] = e
	s.pushFront(e)
	if len(s.m) > s.cap {
		oldest := s.tail
		s.unlink(oldest)
		delete(s.m, oldest.key)
	}
}

// len returns the total number of cached entries. Safe on nil.
func (c *blockCache) len() int {
	if c == nil {
		return 0
	}
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += len(s.m)
		s.mu.Unlock()
	}
	return total
}

// counters returns the lifetime hit and miss counts. Safe on nil.
func (c *blockCache) counters() (hits, misses uint64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Shard list plumbing; callers hold the shard mutex.

func (s *cacheShard) pushFront(e *cacheEntry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *cacheShard) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (s *cacheShard) moveToFront(e *cacheEntry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}
