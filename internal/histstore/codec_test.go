package histstore

import (
	"strings"
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

func TestFrameRoundTrip(t *testing.T) {
	bodies := [][]byte{nil, {}, {0x01}, []byte("hello"), make([]byte, 4096)}
	for _, kind := range []byte{frameSnap, frameBase, frameDelta} {
		for _, body := range bodies {
			enc := appendFrame(nil, kind, body)
			fr, rest, err := decodeFrame(enc)
			if err != nil {
				t.Fatalf("decodeFrame(kind=%c, %d bytes): %v", kind, len(body), err)
			}
			if fr.kind != kind || len(fr.body) != len(body) {
				t.Fatalf("round trip: got kind=%c len=%d, want kind=%c len=%d",
					fr.kind, len(fr.body), kind, len(body))
			}
			if len(rest) != 0 {
				t.Fatalf("decodeFrame left %d bytes", len(rest))
			}
		}
	}
}

func TestFrameChaining(t *testing.T) {
	enc := appendFrame(nil, frameSnap, []byte("a"))
	enc = appendFrame(enc, frameBase, []byte("bb"))
	enc = appendFrame(enc, frameDelta, []byte("ccc"))
	var kinds []byte
	for len(enc) > 0 {
		fr, rest, err := decodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, fr.kind)
		enc = rest
	}
	if string(kinds) != "SBL" {
		t.Fatalf("frame sequence %q, want SBL", kinds)
	}
}

func TestFrameCorruption(t *testing.T) {
	enc := appendFrame(nil, frameBase, []byte("some block body bytes"))

	// Every single-byte flip must be rejected (bad kind, bad length, CRC
	// mismatch) — never accepted, never a panic.
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		if _, _, err := decodeFrame(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}

	// Every truncation must be errTruncated so Open treats a torn tail as
	// recoverable.
	for n := 0; n < len(enc); n++ {
		_, _, err := decodeFrame(enc[:n])
		if err != errTruncated {
			t.Fatalf("truncation to %d bytes: got %v, want errTruncated", n, err)
		}
	}
}

func TestSnapBodyRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		snap int
		unix int64
	}{{0, 0}, {1, 1577836800}, {365, -62135596800}, {100000, 1<<40 + 7}} {
		snap, unix, err := decodeSnapBody(encodeSnapBody(tc.snap, tc.unix))
		if err != nil {
			t.Fatal(err)
		}
		if snap != tc.snap || unix != tc.unix {
			t.Fatalf("got (%d, %d), want (%d, %d)", snap, unix, tc.snap, tc.unix)
		}
	}
}

func TestBaseBodyRoundTrip(t *testing.T) {
	p := dnswire.MustPrefix("192.0.2.0/24")
	entries := []baseEntry{
		{octet: 0, name: dnswire.MustName("brians-iphone.lan.example.net")},
		{octet: 1, name: dnswire.MustName("brians-ipad.lan.example.net")},
		{octet: 17, name: dnswire.MustName("printer.example.net")},
		{octet: 255, name: dnswire.MustName("broadcast.example.net")},
	}
	body := encodeBaseBody(42, p, entries)
	snap, gp, got, err := decodeBaseBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if snap != 42 || gp != p {
		t.Fatalf("header (%d, %s), want (42, %s)", snap, gp, p)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestDeltaBodyRoundTrip(t *testing.T) {
	p := dnswire.MustPrefix("198.51.100.0/24")
	entries := []deltaEntry{
		{kind: scanengine.RecordAdded, octet: 3, new: dnswire.MustName("brians-iphone.lan.example.net")},
		{kind: scanengine.RecordChanged, octet: 9,
			old: dnswire.MustName("host-9.dyn.example.net"),
			new: dnswire.MustName("host-9b.dyn.example.net")},
		{kind: scanengine.RecordRemoved, octet: 200, old: dnswire.MustName("gone.example.net")},
	}
	body := encodeDeltaBody(7, p, entries)
	snap, gp, got, err := decodeDeltaBody(body)
	if err != nil {
		t.Fatal(err)
	}
	if snap != 7 || gp != p {
		t.Fatalf("header (%d, %s), want (7, %s)", snap, gp, p)
	}
	if len(got) != len(entries) {
		t.Fatalf("%d entries, want %d", len(got), len(entries))
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d: %+v, want %+v", i, got[i], entries[i])
		}
	}
}

func TestDecodeBaseBodyRejects(t *testing.T) {
	p := dnswire.MustPrefix("192.0.2.0/24")
	good := encodeBaseBody(1, p, []baseEntry{
		{octet: 5, name: dnswire.MustName("a.example.net")},
		{octet: 6, name: dnswire.MustName("b.example.net")},
	})
	if _, _, _, err := decodeBaseBody(good); err != nil {
		t.Fatalf("control: %v", err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"trailing bytes": append(append([]byte(nil), good...), 0x00),
		"truncated":      good[:len(good)-3],
	}
	// An absurd count with no entries behind it.
	huge := encodeBaseBody(1, p, nil)
	huge[len(huge)-1] = 0xff // count uvarint -> would continue; malformed
	cases["bad count varint"] = huge
	for name, body := range cases {
		if _, _, _, err := decodeBaseBody(body); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDecodeDeltaBodyRejectsKind(t *testing.T) {
	p := dnswire.MustPrefix("192.0.2.0/24")
	body := encodeDeltaBody(1, p, []deltaEntry{
		{kind: scanengine.RecordAdded, octet: 5, new: dnswire.MustName("a.example.net")},
	})
	// The kind byte is right after snap(1)+prefix(3)+count(1).
	body[5] = 9
	if _, _, _, err := decodeDeltaBody(body); err == nil {
		t.Fatal("unknown change kind accepted")
	}
}

func TestNamePrefixCompression(t *testing.T) {
	// A block of 200 near-identical names must encode far below the naive
	// size: that is the point of the prefix compression.
	p := dnswire.MustPrefix("203.0.113.0/24")
	var entries []baseEntry
	naive := 0
	for i := 0; i < 200; i++ {
		name := dnswire.MustName(
			"host-" + strings.Repeat("x", 40) + "-" + string(rune('a'+i%26)) + ".dsl.example.net")
		entries = append(entries, baseEntry{octet: byte(i), name: name})
		naive += len(name)
	}
	body := encodeBaseBody(0, p, entries)
	if len(body) > naive/2 {
		t.Fatalf("compressed body %d bytes vs %d naive — compression ineffective", len(body), naive)
	}
	_, _, got, err := decodeBaseBody(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range entries {
		if got[i] != entries[i] {
			t.Fatalf("entry %d corrupted by compression: %+v != %+v", i, got[i], entries[i])
		}
	}
}

func TestTokensOf(t *testing.T) {
	cases := []struct {
		name string
		want []string
	}{
		{"brians-iphone.lan.example.net", []string{"brians", "brian", "iphone"}},
		{"brian.example.net", []string{"brian"}},
		{"bs.example.net", []string{"bs"}}, // too short to stem
		{"a--b.example.net", []string{"a", "b"}},
		{"printer.example.net", []string{"printer"}},
	}
	for _, tc := range cases {
		got := tokensOf(dnswire.MustName(tc.name))
		if len(got) != len(tc.want) {
			t.Errorf("tokensOf(%s) = %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("tokensOf(%s) = %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}
