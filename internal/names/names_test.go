package names

import (
	"reflect"
	"testing"
)

func TestTop50Size(t *testing.T) {
	if len(Top50) != 50 {
		t.Fatalf("Top50 has %d names, want 50", len(Top50))
	}
	seen := map[string]bool{}
	for _, n := range Top50 {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
}

func TestBrianIsNotInTop50ButInExtra(t *testing.T) {
	for _, n := range Top50 {
		if n == "brian" {
			t.Fatal("brian unexpectedly in Top50 (Figure 2 does not list it)")
		}
	}
	found := false
	for _, n := range Extra {
		if n == "brian" {
			found = true
		}
	}
	if !found {
		t.Fatal("brian missing from Extra; the case studies need Brians")
	}
}

func TestWords(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"brians-iphone.dyn.campus-a.example.edu.", []string{"brians", "iphone", "dyn", "campus", "a", "example", "edu"}},
		{"host-2-10", []string{"host"}},
		{"192-0-2-10", nil},
		{"", nil},
		{"UPPER.Case", []string{"upper", "case"}},
	}
	for _, tc := range tests {
		got := Words(tc.in)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Words(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestMatcherPossessive(t *testing.T) {
	m := NewMatcher(Top50)
	got := m.Match("jacobs-iphone.dyn.example.edu.")
	if !reflect.DeepEqual(got, []string{"jacob"}) {
		t.Fatalf("Match = %v, want [jacob]", got)
	}
}

func TestMatcherExact(t *testing.T) {
	m := NewMatcher(Top50)
	got := m.Match("emma-laptop.students.example.ac.uk.")
	if !reflect.DeepEqual(got, []string{"emma"}) {
		t.Fatalf("Match = %v, want [emma]", got)
	}
}

func TestMatcherNoSubstringFalsePositives(t *testing.T) {
	m := NewMatcher(Top50)
	// "jacobson" must not match jacob: word-level matching only allows
	// the exact name or possessive form.
	if got := m.Match("jacobson-router.example.net."); got != nil {
		t.Fatalf("Match(jacobson) = %v, want nil", got)
	}
	// "liams" matches liam (possessive); "williamsburg" must not match.
	if got := m.Match("williamsburg.example.net."); got != nil {
		t.Fatalf("Match(williamsburg) = %v, want nil", got)
	}
}

func TestMatcherMultipleAndDeduped(t *testing.T) {
	m := NewMatcher(Top50)
	got := m.Match("emma-and-noah-and-emma.example.org.")
	if !reflect.DeepEqual(got, []string{"emma", "noah"}) {
		t.Fatalf("Match = %v, want [emma noah]", got)
	}
}

func TestMatcherCityCollision(t *testing.T) {
	// jackson the city matches jackson the name: this IS the ambiguity
	// the paper handles with per-suffix unique-name thresholds, so the
	// matcher itself must report the match.
	m := NewMatcher(Top50)
	got := m.Match("core1.jackson.ms.example.net.")
	if !reflect.DeepEqual(got, []string{"jackson"}) {
		t.Fatalf("Match = %v, want [jackson]", got)
	}
}

func TestNilMatcher(t *testing.T) {
	var m *Matcher
	if got := m.Match("emma.example.org."); got != nil {
		t.Fatalf("nil matcher matched %v", got)
	}
}

func TestHasGenericTerm(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"core1.north.example.net.", true},
		{"gw-3.example.net.", true},
		{"brians-iphone.dyn.example.edu.", false},
		{"vlan120.sw4.example.com.", true},
		{"emma-laptop.example.edu.", false},
	}
	for _, tc := range tests {
		if got := HasGenericTerm(tc.in); got != tc.want {
			t.Errorf("HasGenericTerm(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestDeviceTermsIn(t *testing.T) {
	got := DeviceTermsIn("brians-galaxy-note9.dyn.example.edu.")
	if !reflect.DeepEqual(got, []string{"galaxy"}) {
		t.Fatalf("DeviceTermsIn = %v, want [galaxy]", got)
	}
	got = DeviceTermsIn("emmas-macbook-air.example.edu.")
	if !reflect.DeepEqual(got, []string{"air", "macbook"}) {
		t.Fatalf("DeviceTermsIn = %v, want [air macbook]", got)
	}
	if got := DeviceTermsIn("core1.example.net."); got != nil {
		t.Fatalf("DeviceTermsIn(router) = %v, want nil", got)
	}
}

func TestFigure3TermsPresent(t *testing.T) {
	want := []string{"ipad", "air", "laptop", "phone", "dell", "desktop",
		"iphone", "mbp", "android", "macbook", "galaxy", "lenovo", "chrome", "roku"}
	if !reflect.DeepEqual(DeviceTerms, want) {
		t.Fatalf("DeviceTerms = %v, want the Figure 3 list", DeviceTerms)
	}
}
