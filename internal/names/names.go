// Package names holds the vocabulary tables the study is built on: the
// top-50 US given names the paper matches against (Section 5.1, sourced
// from the SSA newborn-name statistics for 2000-2020), the device terms
// that co-appear with given names in hostnames (Figure 3), the generic
// router-level terms used to exclude infrastructure records, and the city
// names that collide with given names (the Jackson/Jacksonville problem).
package names

import (
	"sort"
	"strings"
)

// Top50 is the list of given names used for matching, in the order of the
// paper's Figure 2 (US popularity 2000-2020 per the SSA newborn data).
var Top50 = []string{
	"jacob", "michael", "emma", "william", "ethan", "olivia", "matthew",
	"emily", "daniel", "noah", "joshua", "isabella", "alexander", "joseph",
	"james", "andrew", "sophia", "christopher", "anthony", "david",
	"madison", "logan", "benjamin", "ryan", "abigail", "john", "elijah",
	"mason", "samuel", "dylan", "nicholas", "jayden", "liam", "elizabeth",
	"christian", "gabriel", "tyler", "jonathan", "nathan", "jordan",
	"hannah", "aiden", "jackson", "alexis", "caleb", "lucas", "angel",
	"brandon", "ava", "mia",
}

// Extra holds common given names outside the matching top-50 that the
// population model also assigns to device owners. Brian is here: the paper
// deliberately tracks a common name that its headline matching list does
// not even need to contain — anyone can match any name.
var Extra = []string{
	"brian", "kevin", "laura", "sarah", "eric", "amanda", "jason",
	"melissa", "justin", "megan", "aaron", "rachel", "adam", "nicole",
	"kyle", "steven", "brittany", "sean", "kathryn", "patrick",
}

// DeviceTerms are the device-revealing terms of Figure 3, in figure order.
// They expose makes and models: iphone, ipad, galaxy (Samsung), mbp/air/
// macbook (Apple laptops), dell/lenovo (PC vendors), chrome(book), roku.
var DeviceTerms = []string{
	"ipad", "air", "laptop", "phone", "dell", "desktop", "iphone", "mbp",
	"android", "macbook", "galaxy", "lenovo", "chrome", "roku",
}

// GenericTerms convey location or router-level information and are used to
// exclude infrastructure PTR records from the client analysis (Section 5.1,
// citing the router-hostname literature).
var GenericTerms = []string{
	"north", "south", "east", "west", "core", "border", "edge", "router",
	"rtr", "switch", "gw", "gateway", "vlan", "eth", "ge", "xe", "te",
	"pos", "ae", "lo", "uplink", "downlink", "peer", "transit", "mgmt",
	"static", "pool", "nat", "fw", "firewall", "lb", "vpn", "dsl", "cable",
	"fiber", "ftth", "pppoe",
}

// CityNames are US city names that routers encode as location hints and
// that overlap or nearly overlap with given names — the source of the
// false-match problem the paper solves with per-suffix unique-name counts.
var CityNames = []string{
	"jackson", "jacksonville", "madison", "logan", "jordan", "aurora",
	"austin", "charlotte", "dayton", "houston", "lincoln", "orlando",
	"phoenix", "salem", "savannah",
}

// Matcher matches given names in hostname labels. Create one with
// NewMatcher; the zero value matches nothing.
type Matcher struct {
	names map[string]bool
}

// NewMatcher builds a matcher over the provided names (lowercase).
func NewMatcher(names []string) *Matcher {
	m := &Matcher{names: make(map[string]bool, len(names))}
	for _, n := range names {
		m.names[strings.ToLower(n)] = true
	}
	return m
}

// Words splits a hostname into its alphabetic words: maximal runs of
// letters, lowercased. This is the term-extraction regex of Section 5.1
// ("words consisting of alphabetical characters"), implemented without
// regexp for speed — snapshot-scale matching runs over millions of records.
func Words(hostname string) []string {
	var words []string
	s := strings.ToLower(hostname)
	start := -1
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'a' && c <= 'z' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, s[start:])
	}
	return words
}

// Match returns the distinct given names found in hostname, sorted. A word
// matches a name if it equals the name or the name plus a possessive "s"
// ("brians" matches brian), the form device names take after
// apostrophe-stripping sanitization.
func (m *Matcher) Match(hostname string) []string {
	if m == nil || len(m.names) == 0 {
		return nil
	}
	var found map[string]bool
	for _, w := range Words(hostname) {
		name := ""
		switch {
		case m.names[w]:
			name = w
		case len(w) > 1 && strings.HasSuffix(w, "s") && m.names[w[:len(w)-1]]:
			name = w[:len(w)-1]
		}
		if name != "" {
			if found == nil {
				found = make(map[string]bool)
			}
			found[name] = true
		}
	}
	if len(found) == 0 {
		return nil
	}
	out := make([]string, 0, len(found))
	for n := range found {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// HasGenericTerm reports whether any word of hostname is one of the generic
// router-level terms, marking the record as infrastructure rather than a
// client device.
func HasGenericTerm(hostname string) bool {
	for _, w := range Words(hostname) {
		if genericSet[w] {
			return true
		}
	}
	return false
}

// DeviceTermsIn returns the distinct device terms present in hostname,
// sorted.
func DeviceTermsIn(hostname string) []string {
	var found map[string]bool
	for _, w := range Words(hostname) {
		if deviceSet[w] {
			if found == nil {
				found = make(map[string]bool)
			}
			found[w] = true
		}
	}
	if len(found) == 0 {
		return nil
	}
	out := make([]string, 0, len(found))
	for t := range found {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

var (
	genericSet = makeSet(GenericTerms)
	deviceSet  = makeSet(DeviceTerms)
)

func makeSet(items []string) map[string]bool {
	s := make(map[string]bool, len(items))
	for _, it := range items {
		s[it] = true
	}
	return s
}
