// Package ipam implements the IP Address Management policy layer that links
// DHCP lease events to DNS updates.
//
// This is the piece of operator infrastructure the paper identifies as the
// root cause of the privacy exposure (Sections 2.1 and 8): commercial IPAM
// systems (Bluecat, Efficient IP, Infoblox, Men & Mice, Solarwinds are named)
// make it easy to automatically publish DHCP client identifiers in the
// global reverse DNS. The Updater in this package subscribes to lease events
// from a DHCP server and maintains PTR records in a dnsserver.Zone according
// to a configurable policy:
//
//   - PolicyCarryOver publishes the client-provided Host Name verbatim
//     (sanitized into a DNS label). This is the leaking configuration the
//     paper studies: brians-iphone.dyn.example.edu.
//   - PolicyHashed publishes an opaque per-client hash, the mitigation the
//     paper suggests ("using some sort of hash seems prudent", Section 8).
//   - PolicyStaticForm pre-populates fixed-form names for the whole pool
//     (host1234.dynamic.institute.edu) and ignores lease events. The
//     paper's campus validation found 83 such prefixes: dynamic DHCP but
//     static rDNS, correctly NOT flagged by the dynamicity heuristic.
//   - PolicyNone publishes nothing.
package ipam

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnswire"
)

// Policy selects how lease events translate into DNS updates.
type Policy int

// Policies.
const (
	// PolicyCarryOver publishes client identifiers in PTR records.
	PolicyCarryOver Policy = iota
	// PolicyHashed publishes an opaque hash per client.
	PolicyHashed
	// PolicyStaticForm publishes fixed-form names for every address and
	// never changes them.
	PolicyStaticForm
	// PolicyNone publishes nothing.
	PolicyNone
)

// String returns a mnemonic.
func (p Policy) String() string {
	switch p {
	case PolicyCarryOver:
		return "carry-over"
	case PolicyHashed:
		return "hashed"
	case PolicyStaticForm:
		return "static-form"
	case PolicyNone:
		return "none"
	default:
		return fmt.Sprintf("policy%d", int(p))
	}
}

// Config configures an Updater.
type Config struct {
	// Policy selects the DNS update behaviour.
	Policy Policy
	// Suffix is the hostname suffix under which client names are
	// published, e.g. dyn.campus-a.example.edu.
	Suffix dnswire.Name
	// HonorClientNoUpdate, when set, suppresses publication for clients
	// whose Client FQDN option carries the N ("no update") bit, as
	// RFC 4702 intends and RFC 7844 recommends privacy-conscious
	// clients set.
	HonorClientNoUpdate bool
	// StaticPools lists the pools to pre-populate under
	// PolicyStaticForm.
	StaticPools []dnswire.Prefix
}

// ZoneWriter is the interface the updater writes through. A
// dnsserver.Zone satisfies it directly (the co-located IPAM+DNS
// deployment); RFC2136Writer satisfies it by sending DNS UPDATE messages
// to a remote authoritative server (the split deployment real IPAM
// products use).
type ZoneWriter interface {
	// Origin returns the zone apex the writer covers.
	Origin() dnswire.Name
	// SetPTR installs or replaces the PTR record at name.
	SetPTR(name, target dnswire.Name) error
	// RemovePTR deletes the PTR record at name, reporting whether the
	// deletion was issued.
	RemovePTR(name dnswire.Name) bool
}

// Updater maintains PTR records in zones in response to lease events. It
// implements dhcp.EventSink. Create one with NewUpdater, then attach the
// reverse zones covering the pools with AttachZone.
type Updater struct {
	cfg Config

	mu    sync.Mutex
	zones []ZoneWriter
	stats Stats
}

// Stats counts updater activity.
type Stats struct {
	Published  uint64
	Removed    uint64
	Refreshed  uint64
	Suppressed uint64
	NoZone     uint64
}

// NewUpdater creates an updater with the given policy.
func NewUpdater(cfg Config) *Updater {
	return &Updater{cfg: cfg}
}

// Stats returns a snapshot of updater counters.
func (u *Updater) Stats() Stats {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.stats
}

// AttachZone registers a reverse zone the updater may write to. Under
// PolicyStaticForm the zone is immediately pre-populated for every attached
// static pool it covers.
func (u *Updater) AttachZone(z ZoneWriter) error {
	u.mu.Lock()
	u.zones = append(u.zones, z)
	u.mu.Unlock()
	if u.cfg.Policy != PolicyStaticForm {
		return nil
	}
	for _, pool := range u.cfg.StaticPools {
		n := pool.NumAddresses()
		for i := 0; i < n; i++ {
			ip := pool.Nth(i)
			rname := dnswire.ReverseName(ip)
			if !rname.HasSuffix(z.Origin()) {
				continue
			}
			target, err := u.staticName(ip)
			if err != nil {
				return err
			}
			if err := z.SetPTR(rname, target); err != nil {
				return err
			}
		}
	}
	return nil
}

// zoneFor finds the attached zone containing the reverse name of ip.
func (u *Updater) zoneFor(ip dnswire.IPv4) ZoneWriter {
	rname := dnswire.ReverseName(ip)
	u.mu.Lock()
	defer u.mu.Unlock()
	for _, z := range u.zones {
		if rname.HasSuffix(z.Origin()) {
			return z
		}
	}
	return nil
}

// LeaseEvent implements dhcp.EventSink.
func (u *Updater) LeaseEvent(ev dhcp.Event) {
	switch u.cfg.Policy {
	case PolicyNone, PolicyStaticForm:
		return
	}
	if u.cfg.HonorClientNoUpdate && ev.ClientFQDN != nil &&
		ev.ClientFQDN.Flags&dhcpwire.FQDNNoUpdate != 0 {
		u.count(func(s *Stats) { s.Suppressed++ })
		return
	}
	z := u.zoneFor(ev.IP)
	if z == nil {
		u.count(func(s *Stats) { s.NoZone++ })
		return
	}
	rname := dnswire.ReverseName(ev.IP)
	switch ev.Kind {
	case dhcp.LeaseGranted:
		target, err := u.targetFor(ev)
		if err != nil {
			return
		}
		if z.SetPTR(rname, target) == nil {
			u.count(func(s *Stats) { s.Published++ })
		}
	case dhcp.LeaseRenewed:
		target, err := u.targetFor(ev)
		if err != nil {
			return
		}
		if z.SetPTR(rname, target) == nil {
			u.count(func(s *Stats) { s.Refreshed++ })
		}
	case dhcp.LeaseReleased, dhcp.LeaseExpired:
		if z.RemovePTR(rname) {
			u.count(func(s *Stats) { s.Removed++ })
		}
	}
}

func (u *Updater) count(f func(*Stats)) {
	u.mu.Lock()
	f(&u.stats)
	u.mu.Unlock()
}

// targetFor computes the PTR target for a lease under the active policy.
func (u *Updater) targetFor(ev dhcp.Event) (dnswire.Name, error) {
	return Target(u.cfg.Policy, u.cfg.Suffix, ev)
}

// Target computes the PTR target a lease event publishes under a policy and
// suffix. It is exported so that snapshot-mode simulation (internal/netsim)
// produces byte-identical names to the event-driven DHCP path.
func Target(policy Policy, suffix dnswire.Name, ev dhcp.Event) (dnswire.Name, error) {
	switch policy {
	case PolicyCarryOver:
		return suffix.Prepend(clientLabel(ev))
	case PolicyHashed:
		return suffix.Prepend(hashedLabel(ev))
	}
	return "", fmt.Errorf("ipam: no target under policy %v", policy)
}

// StaticTarget computes the fixed-form name PolicyStaticForm publishes for
// an address under a suffix.
func StaticTarget(suffix dnswire.Name, ip dnswire.IPv4) (dnswire.Name, error) {
	base, err := suffix.Prepend("dynamic")
	if err != nil {
		return "", err
	}
	return base.Prepend(fmt.Sprintf("host-%d-%d", ip[2], ip[3]))
}

// clientLabel derives the published label from the client's identifiers:
// the Client FQDN's first label when present, else the sanitized Host Name,
// else an address-derived fallback.
func clientLabel(ev dhcp.Event) string {
	if ev.ClientFQDN != nil && ev.ClientFQDN.Name != "" {
		first := ev.ClientFQDN.Name
		if i := strings.IndexByte(first, '.'); i > 0 {
			first = first[:i]
		}
		if label := SanitizeLabel(first); label != "" {
			return label
		}
	}
	if label := SanitizeLabel(ev.HostName); label != "" {
		return label
	}
	return fmt.Sprintf("client-%d-%d", ev.IP[2], ev.IP[3])
}

// hashedLabel derives an opaque, stable, per-client label.
func hashedLabel(ev dhcp.Event) string {
	h := sha256.Sum256([]byte(ev.CHAddr.String() + "|" + ev.HostName))
	return "h-" + hex.EncodeToString(h[:4])
}

// staticName builds the fixed-form name for an address, e.g.
// host-10-34.dynamic.<suffix> — the shape the paper's campus uses for its
// 83 DHCP-but-static prefixes.
func (u *Updater) staticName(ip dnswire.IPv4) (dnswire.Name, error) {
	return StaticTarget(u.cfg.Suffix, ip)
}

// SanitizeLabel converts a free-form device name into a DNS label the way
// real DHCP/IPAM pipelines do: lowercase; apostrophes dropped; spaces,
// underscores and dots become hyphens; any other character outside
// [a-z0-9-] is dropped; leading/trailing hyphens are trimmed; the result is
// clipped to 63 octets. "Brian's iPhone" becomes "brians-iphone".
func SanitizeLabel(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ', r == '_', r == '.', r == '-':
			b.WriteByte('-')
		case r == '\'', r == '’':
			// Possessive apostrophes vanish: Brian's -> brians.
		default:
			// Anything else (unicode, punctuation) is dropped.
		}
	}
	out := strings.Trim(b.String(), "-")
	for strings.Contains(out, "--") {
		out = strings.ReplaceAll(out, "--", "-")
	}
	if len(out) > dnswire.MaxLabelLen {
		out = strings.Trim(out[:dnswire.MaxLabelLen], "-")
	}
	return out
}
