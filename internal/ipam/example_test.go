package ipam_test

import (
	"fmt"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/simclock"
)

// The complete leak in miniature: a DHCP client announces its device name,
// the IPAM carry-over policy publishes it in the global reverse DNS, and
// anyone can read it back.
func Example() {
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC))
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	origin, _ := dnswire.ReverseZoneFor24(prefix)
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    origin,
		PrimaryNS: dnswire.MustName("ns1.campus-a.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-a.edu"),
	})
	updater := ipam.NewUpdater(ipam.Config{
		Policy: ipam.PolicyCarryOver,
		Suffix: dnswire.MustName("dyn.campus-a.edu"),
	})
	if err := updater.AttachZone(zone); err != nil {
		panic(err)
	}
	server := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  prefix.Nth(1),
		Pools:     []dnswire.Prefix{prefix},
		LeaseTime: time.Hour,
		Sink:      updater,
	})

	client := dhcp.NewClient(clock, server, dhcp.ClientConfig{
		CHAddr:      dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 1},
		HostName:    "Brian's iPhone",
		SendRelease: true,
	})
	ip, err := client.Join()
	if err != nil {
		panic(err)
	}
	target, _ := zone.LookupPTR(dnswire.ReverseName(ip))
	fmt.Println("while present:", target)

	client.Leave()
	_, present := zone.LookupPTR(dnswire.ReverseName(ip))
	fmt.Println("after release:", present)
	// Output:
	// while present: brians-iphone.dyn.campus-a.edu.
	// after release: false
}

// SanitizeLabel shows how device names become DNS labels.
func ExampleSanitizeLabel() {
	fmt.Println(ipam.SanitizeLabel("Brian's iPhone"))
	fmt.Println(ipam.SanitizeLabel("DESKTOP-4F2K9Q"))
	// Output:
	// brians-iphone
	// desktop-4f2k9q
}
