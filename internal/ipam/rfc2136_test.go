package ipam

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

func TestRFC2136WriterSetAndRemove(t *testing.T) {
	// The writer transmits wire UPDATEs; apply them directly to a
	// server and observe the zone.
	srv := dnsserver.NewServer()
	z := newZone(t)
	srv.AddZone(z)
	w := NewRFC2136Writer(z.Origin(), func(wire []byte) {
		if resp := srv.HandleQuery(wire); resp == nil {
			t.Fatal("server dropped the UPDATE")
		}
	})
	ip := dnswire.MustIPv4("192.0.2.10")
	name := dnswire.ReverseName(ip)
	if err := w.SetPTR(name, dnswire.MustName("brians-iphone.dyn.example.edu")); err != nil {
		t.Fatal(err)
	}
	got, ok := z.LookupPTR(name)
	if !ok || got != dnswire.MustName("brians-iphone.dyn.example.edu") {
		t.Fatalf("PTR = %q, %v", got, ok)
	}
	// Replace.
	if err := w.SetPTR(name, dnswire.MustName("brians-mbp.dyn.example.edu")); err != nil {
		t.Fatal(err)
	}
	if got, _ := z.LookupPTR(name); got != dnswire.MustName("brians-mbp.dyn.example.edu") {
		t.Fatalf("after replace: %q", got)
	}
	if !w.RemovePTR(name) {
		t.Fatal("RemovePTR reported failure")
	}
	if _, ok := z.LookupPTR(name); ok {
		t.Fatal("PTR survived removal")
	}
	if w.Sent() != 3 {
		t.Fatalf("sent = %d, want 3", w.Sent())
	}
}

func TestUpdaterOverRFC2136EndToEnd(t *testing.T) {
	// The full split deployment over the fabric: DHCP server + updater
	// on one host, authoritative DNS on another, linked only by wire
	// UPDATE messages. A lease grant must materialize as a PTR on the
	// remote server; expiry must remove it.
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC))
	fab := fabric.New(clock, fabric.Config{Latency: 5 * time.Millisecond})

	srv := dnsserver.NewServer()
	z := newZone(t)
	srv.AddZone(z)
	dnsAddr := fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}
	if _, err := srv.AttachFabric(fab, dnsAddr); err != nil {
		t.Fatal(err)
	}

	// The IPAM box's update socket.
	ipamEP, err := fab.Bind(fabric.Addr{IP: dnswire.MustIPv4("192.0.2.7"), Port: 40053},
		func(fabric.Datagram) {})
	if err != nil {
		t.Fatal(err)
	}
	writer := NewRFC2136Writer(z.Origin(), func(wire []byte) {
		ipamEP.Send(dnsAddr, wire)
	})
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	if err := u.AttachZone(writer); err != nil {
		t.Fatal(err)
	}
	dhcpSrv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  dnswire.MustIPv4("192.0.2.1"),
		Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
		LeaseTime: time.Hour,
		Sink:      u,
	})
	cl := dhcp.NewClient(clock, dhcpSrv, dhcp.ClientConfig{
		CHAddr: dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 9}, HostName: "Brians-iPad",
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second) // let the UPDATE travel
	got, ok := z.LookupPTR(dnswire.ReverseName(ip))
	if !ok || got != dnswire.MustName("brians-ipad.dyn.example.edu") {
		t.Fatalf("remote PTR = %q, %v", got, ok)
	}

	cl.Leave() // silent; record removed on lease expiry
	clock.Advance(2 * time.Hour)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("remote PTR survived lease expiry")
	}
}

func TestRFC2136AgainstRefusingServer(t *testing.T) {
	// A server with updates disabled silently keeps its zone; the
	// fire-and-forget writer does not block the DHCP side.
	srv := dnsserver.NewServer()
	z := newZone(t)
	srv.AddZone(z)
	srv.SetUpdatePolicy(dnsserver.UpdatesRefused)
	w := NewRFC2136Writer(z.Origin(), func(wire []byte) { srv.HandleQuery(wire) })
	name := dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10"))
	if err := w.SetPTR(name, dnswire.MustName("x.example.edu")); err != nil {
		t.Fatal(err)
	}
	if _, ok := z.LookupPTR(name); ok {
		t.Fatal("refusing server applied an update")
	}
}
