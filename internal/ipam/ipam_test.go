package ipam

import (
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

var epoch = time.Date(2021, 11, 1, 8, 0, 0, 0, time.UTC)

func newZone(t *testing.T) *dnsserver.Zone {
	t.Helper()
	return dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.campus-a.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.campus-a.example.edu"),
	})
}

func grantedEvent(hostname string) dhcp.Event {
	return dhcp.Event{
		Kind:     dhcp.LeaseGranted,
		IP:       dnswire.MustIPv4("192.0.2.10"),
		HostName: hostname,
		CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 1},
		At:       epoch,
	}
}

func TestCarryOverPublishesClientName(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{
		Policy: PolicyCarryOver,
		Suffix: dnswire.MustName("dyn.campus-a.example.edu"),
	})
	if err := u.AttachZone(z); err != nil {
		t.Fatal(err)
	}
	u.LeaseEvent(grantedEvent("Brian's iPhone"))
	target, ok := z.LookupPTR(dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10")))
	if !ok {
		t.Fatal("PTR not published")
	}
	if target != dnswire.MustName("brians-iphone.dyn.campus-a.example.edu") {
		t.Fatalf("target = %q", target)
	}
}

func TestCarryOverRemovesOnRelease(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	ev := grantedEvent("brians-mbp")
	u.LeaseEvent(ev)
	ev.Kind = dhcp.LeaseReleased
	u.LeaseEvent(ev)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ev.IP)); ok {
		t.Fatal("PTR survived release")
	}
	st := u.Stats()
	if st.Published != 1 || st.Removed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCarryOverRemovesOnExpiry(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	ev := grantedEvent("brians-ipad")
	u.LeaseEvent(ev)
	ev.Kind = dhcp.LeaseExpired
	u.LeaseEvent(ev)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ev.IP)); ok {
		t.Fatal("PTR survived expiry")
	}
}

func TestCarryOverPrefersClientFQDN(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	ev := grantedEvent("Other-Name")
	ev.ClientFQDN = &dhcpwire.ClientFQDN{
		Flags: dhcpwire.FQDNServerUpdates,
		Name:  "brians-galaxy-note9.whatever.example.com",
	}
	u.LeaseEvent(ev)
	target, _ := z.LookupPTR(dnswire.ReverseName(ev.IP))
	if target != dnswire.MustName("brians-galaxy-note9.dyn.example.edu") {
		t.Fatalf("target = %q", target)
	}
}

func TestHonorClientNoUpdate(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{
		Policy:              PolicyCarryOver,
		Suffix:              dnswire.MustName("dyn.example.edu"),
		HonorClientNoUpdate: true,
	})
	u.AttachZone(z)
	ev := grantedEvent("private-host")
	ev.ClientFQDN = &dhcpwire.ClientFQDN{Flags: dhcpwire.FQDNNoUpdate, Name: "private-host"}
	u.LeaseEvent(ev)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ev.IP)); ok {
		t.Fatal("PTR published despite N bit")
	}
	if u.Stats().Suppressed != 1 {
		t.Fatalf("stats = %+v", u.Stats())
	}
	// Without the honor flag the same event leaks.
	u2 := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	u2.AttachZone(z)
	u2.LeaseEvent(ev)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ev.IP)); !ok {
		t.Fatal("PTR not published when N bit is ignored")
	}
}

func TestHashedPolicyHidesName(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyHashed, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	ev := grantedEvent("Brians-iPhone")
	u.LeaseEvent(ev)
	target, ok := z.LookupPTR(dnswire.ReverseName(ev.IP))
	if !ok {
		t.Fatal("PTR not published")
	}
	if strings.Contains(string(target), "brian") || strings.Contains(string(target), "iphone") {
		t.Fatalf("hashed target %q leaks the client name", target)
	}
	if !strings.HasPrefix(string(target), "h-") {
		t.Fatalf("target = %q, want h-<hex> prefix", target)
	}
	// Stable per client: the same event hashes identically.
	z2 := newZone(t)
	u2 := NewUpdater(Config{Policy: PolicyHashed, Suffix: dnswire.MustName("dyn.example.edu")})
	u2.AttachZone(z2)
	u2.LeaseEvent(ev)
	target2, _ := z2.LookupPTR(dnswire.ReverseName(ev.IP))
	if target != target2 {
		t.Fatalf("hash not stable: %q vs %q", target, target2)
	}
}

func TestHashedStillRevealsPresence(t *testing.T) {
	// The paper notes hashing hides the identifier but record *presence*
	// still exposes dynamics. Verify the record appears and disappears.
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyHashed, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	ev := grantedEvent("x")
	u.LeaseEvent(ev)
	if z.Len() != 1 {
		t.Fatal("no record after grant")
	}
	ev.Kind = dhcp.LeaseExpired
	u.LeaseEvent(ev)
	if z.Len() != 0 {
		t.Fatal("record survived expiry")
	}
}

func TestStaticFormPrepopulatesAndIgnoresEvents(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{
		Policy:      PolicyStaticForm,
		Suffix:      dnswire.MustName("campus-a.example.edu"),
		StaticPools: []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
	})
	if err := u.AttachZone(z); err != nil {
		t.Fatal(err)
	}
	if z.Len() != 256 {
		t.Fatalf("zone has %d names, want 256", z.Len())
	}
	target, ok := z.LookupPTR(dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10")))
	if !ok {
		t.Fatal("static PTR missing")
	}
	if target != dnswire.MustName("host-2-10.dynamic.campus-a.example.edu") {
		t.Fatalf("target = %q", target)
	}
	// Lease events change nothing.
	serial := z.Serial()
	u.LeaseEvent(grantedEvent("Brians-iPhone"))
	ev := grantedEvent("Brians-iPhone")
	ev.Kind = dhcp.LeaseExpired
	u.LeaseEvent(ev)
	if z.Serial() != serial {
		t.Fatal("static-form zone changed on lease events")
	}
}

func TestPolicyNonePublishesNothing(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyNone, Suffix: dnswire.MustName("x.example")})
	u.AttachZone(z)
	u.LeaseEvent(grantedEvent("Brians-iPhone"))
	if z.Len() != 0 {
		t.Fatal("PolicyNone published a record")
	}
}

func TestEventOutsideAttachedZones(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("x.example")})
	u.AttachZone(z)
	ev := grantedEvent("h")
	ev.IP = dnswire.MustIPv4("203.0.113.9")
	u.LeaseEvent(ev)
	if u.Stats().NoZone != 1 {
		t.Fatalf("stats = %+v", u.Stats())
	}
}

func TestEmptyHostNameFallsBack(t *testing.T) {
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	u.AttachZone(z)
	u.LeaseEvent(grantedEvent(""))
	target, ok := z.LookupPTR(dnswire.ReverseName(dnswire.MustIPv4("192.0.2.10")))
	if !ok {
		t.Fatal("no PTR for anonymous client")
	}
	if target != dnswire.MustName("client-2-10.dyn.example.edu") {
		t.Fatalf("target = %q", target)
	}
}

func TestEndToEndWithDHCPServer(t *testing.T) {
	// Full pipeline: DHCP client joins -> server event -> IPAM -> zone.
	clock := simclock.NewSimulated(epoch)
	z := newZone(t)
	u := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.campus-a.example.edu")})
	u.AttachZone(z)
	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  dnswire.MustIPv4("192.0.2.1"),
		Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
		LeaseTime: time.Hour,
		Sink:      u,
	})
	cl := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
		CHAddr:   dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 9},
		HostName: "Brians-iPhone",
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	target, ok := z.LookupPTR(dnswire.ReverseName(ip))
	if !ok {
		t.Fatal("join did not publish a PTR")
	}
	if target != dnswire.MustName("brians-iphone.dyn.campus-a.example.edu") {
		t.Fatalf("target = %q", target)
	}
	// Silent leave: the record lingers until expiry, then vanishes.
	cl.Leave()
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); !ok {
		t.Fatal("PTR vanished before lease expiry")
	}
	clock.Advance(61 * time.Minute)
	if _, ok := z.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("PTR survived lease expiry")
	}
}

func TestSanitizeLabel(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Brian's iPhone", "brians-iphone"},
		{"Brians-MBP", "brians-mbp"},
		{"Brian’s iPad", "brians-ipad"},
		{"DESKTOP-ABC123", "desktop-abc123"},
		{"jane_doe laptop", "jane-doe-laptop"},
		{"host.local", "host-local"},
		{"--weird--", "weird"},
		{"a  b", "a-b"},
		{"日本語のiPhone", "iphone"},
		{"", ""},
		{"!!!", ""},
		{strings.Repeat("x", 100), strings.Repeat("x", 63)},
	}
	for _, tc := range tests {
		if got := SanitizeLabel(tc.in); got != tc.want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestPolicyStrings(t *testing.T) {
	cases := map[Policy]string{
		PolicyCarryOver:  "carry-over",
		PolicyHashed:     "hashed",
		PolicyStaticForm: "static-form",
		PolicyNone:       "none",
		Policy(9):        "policy9",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), want)
		}
	}
}
