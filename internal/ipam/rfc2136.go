package ipam

import (
	"sync"

	"rdnsprivacy/internal/dnswire"
)

// RFC2136Writer is a ZoneWriter that emits RFC 2136 DNS UPDATE messages
// instead of mutating a zone in process — the deployment shape of real
// IPAM products, where the DHCP/IPAM box and the authoritative name server
// are separate systems. The transport is a caller-provided send function
// (a fabric endpoint, a UDP socket, a test capture); updates are
// fire-and-forget, like the unacknowledged update streams commercial
// systems emit.
type RFC2136Writer struct {
	origin dnswire.Name
	send   func(wire []byte)

	mu     sync.Mutex
	nextID uint16
	sent   uint64
	errors uint64
}

// NewRFC2136Writer creates a writer for the zone rooted at origin that
// transmits marshalled UPDATE messages through send.
func NewRFC2136Writer(origin dnswire.Name, send func(wire []byte)) *RFC2136Writer {
	return &RFC2136Writer{origin: origin, send: send}
}

// Origin implements ZoneWriter.
func (w *RFC2136Writer) Origin() dnswire.Name { return w.origin }

// Sent returns how many UPDATE messages have been transmitted.
func (w *RFC2136Writer) Sent() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sent
}

// SetPTR implements ZoneWriter: it sends an UPDATE that deletes the PTR
// RRset at name and adds the new record, the add-or-replace idiom of
// RFC 2136 clients.
func (w *RFC2136Writer) SetPTR(name, target dnswire.Name) error {
	upd := dnswire.NewUpdate(w.id(), w.origin)
	upd.DeleteRRset(name, dnswire.TypePTR)
	upd.AddRR(dnswire.Record{
		Name:  name,
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
		TTL:   300,
		Data:  dnswire.PTRData{Target: target},
	})
	return w.transmit(upd)
}

// RemovePTR implements ZoneWriter: it sends an UPDATE deleting the PTR
// RRset at name. Being fire-and-forget it always reports the deletion as
// issued.
func (w *RFC2136Writer) RemovePTR(name dnswire.Name) bool {
	upd := dnswire.NewUpdate(w.id(), w.origin)
	upd.DeleteRRset(name, dnswire.TypePTR)
	return w.transmit(upd) == nil
}

func (w *RFC2136Writer) id() uint16 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.nextID++
	return w.nextID
}

func (w *RFC2136Writer) transmit(upd *dnswire.Message) error {
	wire, err := upd.Marshal()
	if err != nil {
		w.mu.Lock()
		w.errors++
		w.mu.Unlock()
		return err
	}
	w.send(wire)
	w.mu.Lock()
	w.sent++
	w.mu.Unlock()
	return nil
}
