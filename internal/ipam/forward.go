package ipam

import (
	"sync"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
)

// ForwardUpdater publishes forward (A) records for DHCP clients in a
// forward zone: brians-iphone.dyn.example.edu -> 10.0.1.7. The paper
// leaves forward-DNS carry-over as future work ("forward DNS data, which
// can also be dynamically updated by DHCP servers"); this updater makes
// the leak concrete — a forward zone enumerable by dictionary (the given
// names and device terms of internal/names are exactly such a dictionary)
// exposes the same identifiers without even needing address scanning.
//
// It implements dhcp.EventSink; chain it with an Updater via
// dhcp.EventSinkFunc or MultiSink to publish both directions.
type ForwardUpdater struct {
	cfg  Config
	zone *dnsserver.Zone

	mu    sync.Mutex
	names map[dnswire.IPv4]dnswire.Name // active name per address
	stats Stats
}

// NewForwardUpdater creates a forward updater writing into zone, which
// must be rooted at or above cfg.Suffix.
func NewForwardUpdater(cfg Config, zone *dnsserver.Zone) *ForwardUpdater {
	return &ForwardUpdater{
		cfg:   cfg,
		zone:  zone,
		names: make(map[dnswire.IPv4]dnswire.Name),
	}
}

// Stats returns a snapshot of updater counters.
func (f *ForwardUpdater) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// LeaseEvent implements dhcp.EventSink.
func (f *ForwardUpdater) LeaseEvent(ev dhcp.Event) {
	switch f.cfg.Policy {
	case PolicyNone, PolicyStaticForm:
		return
	}
	switch ev.Kind {
	case dhcp.LeaseGranted, dhcp.LeaseRenewed:
		name, err := Target(f.cfg.Policy, f.cfg.Suffix, ev)
		if err != nil {
			return
		}
		if f.zone.SetA(name, ev.IP) != nil {
			return
		}
		f.mu.Lock()
		if ev.Kind == dhcp.LeaseGranted {
			f.stats.Published++
		} else {
			f.stats.Refreshed++
		}
		f.names[ev.IP] = name
		f.mu.Unlock()
	case dhcp.LeaseReleased, dhcp.LeaseExpired:
		f.mu.Lock()
		name, ok := f.names[ev.IP]
		delete(f.names, ev.IP)
		f.mu.Unlock()
		if ok && f.zone.RemoveA(name) {
			f.mu.Lock()
			f.stats.Removed++
			f.mu.Unlock()
		}
	}
}

// MultiSink fans a lease event out to several sinks (e.g. a reverse
// Updater plus a ForwardUpdater).
func MultiSink(sinks ...dhcp.EventSink) dhcp.EventSink {
	return dhcp.EventSinkFunc(func(ev dhcp.Event) {
		for _, s := range sinks {
			s.LeaseEvent(ev)
		}
	})
}
