package ipam

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dhcp"
	"rdnsprivacy/internal/dhcpwire"
	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

func forwardZone(t *testing.T) *dnsserver.Zone {
	t.Helper()
	return dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("dyn.example.edu"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
}

func TestForwardUpdaterPublishesARecord(t *testing.T) {
	z := forwardZone(t)
	f := NewForwardUpdater(Config{
		Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu"),
	}, z)
	ev := grantedEvent("Brian's iPhone")
	f.LeaseEvent(ev)
	addr, ok := z.LookupA(dnswire.MustName("brians-iphone.dyn.example.edu"))
	if !ok || addr != ev.IP {
		t.Fatalf("A = %v, %v", addr, ok)
	}
	ev.Kind = dhcp.LeaseExpired
	f.LeaseEvent(ev)
	if _, ok := z.LookupA(dnswire.MustName("brians-iphone.dyn.example.edu")); ok {
		t.Fatal("A record survived expiry")
	}
	st := f.Stats()
	if st.Published != 1 || st.Removed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestForwardAndReverseTogether(t *testing.T) {
	// Both directions from the same lease stream, via MultiSink: the
	// forward zone becomes dictionary-enumerable and the reverse zone
	// scannable — the paper's leak plus its future-work extension.
	clock := simclock.NewSimulated(time.Date(2021, 11, 1, 9, 0, 0, 0, time.UTC))
	rz := newZone(t)
	fz := forwardZone(t)
	rev := NewUpdater(Config{Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu")})
	rev.AttachZone(rz)
	fwd := NewForwardUpdater(Config{
		Policy: PolicyCarryOver, Suffix: dnswire.MustName("dyn.example.edu"),
	}, fz)

	srv := dhcp.NewServer(clock, dhcp.ServerConfig{
		ServerIP:  dnswire.MustIPv4("192.0.2.1"),
		Pools:     []dnswire.Prefix{dnswire.MustPrefix("192.0.2.0/24")},
		LeaseTime: time.Hour,
		Sink:      MultiSink(rev, fwd),
	})
	cl := dhcp.NewClient(clock, srv, dhcp.ClientConfig{
		CHAddr: dhcpwire.HardwareAddr{2, 0, 0, 0, 0, 1}, HostName: "Emma's iPad",
		SendRelease: true,
	})
	ip, err := cl.Join()
	if err != nil {
		t.Fatal(err)
	}
	name := dnswire.MustName("emmas-ipad.dyn.example.edu")
	if got, ok := rz.LookupPTR(dnswire.ReverseName(ip)); !ok || got != name {
		t.Fatalf("reverse: %q, %v", got, ok)
	}
	if got, ok := fz.LookupA(name); !ok || got != ip {
		t.Fatalf("forward: %v, %v", got, ok)
	}
	// A dictionary guess against the forward zone succeeds without any
	// address scanning at all.
	if _, ok := fz.LookupA(dnswire.MustName("emmas-ipad.dyn.example.edu")); !ok {
		t.Fatal("dictionary enumeration failed")
	}
	cl.Leave()
	if _, ok := fz.LookupA(name); ok {
		t.Fatal("forward record survived release")
	}
	if _, ok := rz.LookupPTR(dnswire.ReverseName(ip)); ok {
		t.Fatal("reverse record survived release")
	}
}

func TestForwardUpdaterHonoursPolicyNone(t *testing.T) {
	z := forwardZone(t)
	f := NewForwardUpdater(Config{Policy: PolicyNone, Suffix: dnswire.MustName("dyn.example.edu")}, z)
	f.LeaseEvent(grantedEvent("Brians-MBP"))
	if z.Len() != 0 {
		t.Fatal("PolicyNone published a forward record")
	}
}
