package testutil

import "sync/atomic"

// Fault points are named crash-injection sites compiled into production
// write paths (histstore's segment/tail/manifest writes and renames).
// With no hook armed a call is one atomic load returning nil, so the
// production cost is negligible; a test arms a hook with SetFaultHook to
// simulate a crash at an exact point in a multi-step on-disk protocol
// and then asserts the recovery invariants.
//
// Unlike the rest of this package, Fault is deliberately importable from
// non-test code: the whole point is that the hook sits inside the real
// write path, not a test double.

// faultHook holds the armed hook; nil means every fault point passes.
var faultHook atomic.Pointer[func(point string) error]

// SetFaultHook arms fn as the process-wide fault hook (nil disarms it).
// fn is called with the fault-point name and may return an error to make
// that point fail as if the process had died there. Tests that arm a
// hook must disarm it before finishing:
//
//	testutil.SetFaultHook(fn)
//	defer testutil.SetFaultHook(nil)
func SetFaultHook(fn func(point string) error) {
	if fn == nil {
		faultHook.Store(nil)
		return
	}
	faultHook.Store(&fn)
}

// Fault invokes the armed fault hook for the named point, returning its
// error. With no hook armed it returns nil.
func Fault(point string) error {
	fn := faultHook.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(point)
}
