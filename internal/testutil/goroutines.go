// Package testutil holds shared test helpers. It must only be imported
// from _test.go files.
package testutil

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// TB is the subset of testing.TB the helpers need, so the package does not
// force a testing import chain onto callers' non-test builds.
type TB interface {
	Helper()
	Cleanup(func())
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// VerifyNoLeaks snapshots the live goroutine set and registers a cleanup
// that fails the test if goroutines started during the test are still
// running when it ends. Completion callbacks, breaker probes, and hedged
// lookups all spawn short-lived goroutines; a grace window lets them
// drain before the check fires.
//
// Call it first in the test body:
//
//	func TestX(t *testing.T) {
//		testutil.VerifyNoLeaks(t)
//		...
//	}
func VerifyNoLeaks(tb TB) {
	tb.Helper()
	before := goroutineStacks()
	tb.Cleanup(func() {
		deadline := time.Now().Add(3 * time.Second)
		var leaked []string
		for {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		tb.Errorf("testutil: %d goroutine(s) leaked:\n%s",
			len(leaked), strings.Join(leaked, "\n---\n"))
	})
}

// goroutineStacks returns the set of live goroutine stack headers keyed by
// goroutine id line.
func goroutineStacks() map[string]bool {
	set := make(map[string]bool)
	for _, g := range splitStacks() {
		set[stackKey(g)] = true
	}
	return set
}

// leakedSince returns stacks of interesting goroutines not present in the
// baseline set.
func leakedSince(before map[string]bool) []string {
	var out []string
	for _, g := range splitStacks() {
		if before[stackKey(g)] {
			continue
		}
		if boringStack(g) {
			continue
		}
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// splitStacks dumps all goroutine stacks and splits them into one string
// per goroutine.
func splitStacks() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	parts := strings.Split(string(buf), "\n\n")
	out := parts[:0]
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			out = append(out, p)
		}
	}
	return out
}

// stackKey identifies a goroutine by its header line ("goroutine 12
// [running]:") plus its top frame, stable enough across snapshots of a
// parked goroutine.
func stackKey(stack string) string {
	lines := strings.SplitN(stack, "\n", 3)
	if len(lines) < 2 {
		return stack
	}
	// The goroutine id is in the header; keep it so two distinct parked
	// goroutines with identical frames are distinct keys.
	id := lines[0]
	if i := strings.Index(id, " ["); i > 0 {
		id = id[:i]
	}
	return fmt.Sprintf("%s@%s", id, lines[1])
}

// boringStack reports runtime-owned goroutines that come and go on their
// own and must not count as leaks.
func boringStack(stack string) bool {
	for _, frag := range []string{
		"testing.RunTests",
		"testing.(*T).Run",
		"testing.tRunner",
		"runtime.goexit",
		"created by runtime",
		"runtime/trace",
		"signal.signal_recv",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"testing.(*M).startAlarm",
		"time.goFunc", // stray real-clock AfterFunc callbacks mid-flight
	} {
		if strings.Contains(stack, frag) {
			return true
		}
	}
	// The goroutine running the check itself.
	return strings.Contains(stack, "testutil.leakedSince") ||
		strings.Contains(stack, "testutil.goroutineStacks")
}
