package testutil

import (
	"errors"
	"testing"
)

// TestFaultHook covers the crash-injection registry: disarmed points
// pass for free, an armed hook sees the point name and its error is
// returned verbatim, and disarming restores the pass-through.
func TestFaultHook(t *testing.T) {
	if err := Fault("histstore.compact.sealed"); err != nil {
		t.Fatalf("disarmed fault point failed: %v", err)
	}

	boom := errors.New("injected crash")
	var seen []string
	SetFaultHook(func(point string) error {
		seen = append(seen, point)
		if point == "histstore.compact.manifest.rename" {
			return boom
		}
		return nil
	})
	defer SetFaultHook(nil)

	if err := Fault("histstore.compact.segment.write"); err != nil {
		t.Fatalf("hook failed a point it passes: %v", err)
	}
	if err := Fault("histstore.compact.manifest.rename"); !errors.Is(err, boom) {
		t.Fatalf("armed point returned %v, want the injected error", err)
	}
	if len(seen) != 2 || seen[0] != "histstore.compact.segment.write" ||
		seen[1] != "histstore.compact.manifest.rename" {
		t.Fatalf("hook saw %q", seen)
	}

	SetFaultHook(nil)
	if err := Fault("histstore.compact.manifest.rename"); err != nil {
		t.Fatalf("disarmed fault point failed: %v", err)
	}
}
