package testutil

import (
	"testing"
	"time"
)

// recordingTB captures Errorf calls instead of failing the real test.
type recordingTB struct {
	*testing.T
	cleanups []func()
	failed   bool
}

func (r *recordingTB) Cleanup(f func())      { r.cleanups = append(r.cleanups, f) }
func (r *recordingTB) Errorf(string, ...any) { r.failed = true }

func (r *recordingTB) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestVerifyNoLeaksPassesOnCleanExit(t *testing.T) {
	rec := &recordingTB{T: t}
	VerifyNoLeaks(rec)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	rec.runCleanups()
	if rec.failed {
		t.Fatal("clean test reported a leak")
	}
}

func TestVerifyNoLeaksCatchesParkedGoroutine(t *testing.T) {
	rec := &recordingTB{T: t}
	VerifyNoLeaks(rec)
	release := make(chan struct{})
	parked := make(chan struct{})
	go func() {
		close(parked)
		<-release
	}()
	<-parked
	// Shrink the grace window's effect by releasing after the check
	// starts failing: run cleanups in a goroutine and free the leak
	// afterwards so the test itself does not leak.
	doneCh := make(chan struct{})
	go func() {
		rec.runCleanups()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("cleanup never returned")
	}
	if !rec.failed {
		t.Fatal("parked goroutine not reported")
	}
	close(release)
}
