// Package dataset holds the measurement data model of the study: daily
// reverse-DNS snapshots in the shape that OpenINTEL and Rapid7 publish
// (date, IP address, PTR hostname), per-/24 daily aggregates, and the
// summary statistics reported in the paper's Table 1 and Table 3. It also
// provides the CSV encoding the command-line tools exchange (the paper's
// own tooling "write[s] the results as CSV files to disk", Section 6.1).
package dataset

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// DateFormat is the on-disk date format.
const DateFormat = "2006-01-02"

// Row is one observation: on a date, this address held this PTR record.
type Row struct {
	Date time.Time
	IP   dnswire.IPv4
	PTR  dnswire.Name
}

// WriteRows encodes rows as CSV (date,ip,ptr).
func WriteRows(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"date", "ip", "ptr"}); err != nil {
		return err
	}
	for _, r := range rows {
		if err := cw.Write([]string{
			r.Date.Format(DateFormat), r.IP.String(), string(r.PTR),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ScanRows streams CSV written by WriteRows, calling fn for each row in
// file order. Unlike ReadRows it never materializes the file: the reader
// reuses one record buffer per line (csv.Reader.ReuseRecord) and enforces
// exactly three fields per record, so campaign-scale dumps stream in
// constant memory. fn returning an error stops the scan and returns that
// error.
func ScanRows(r io.Reader, fn func(Row) error) error {
	cr := csv.NewReader(bufio.NewReader(r))
	cr.FieldsPerRecord = 3
	cr.ReuseRecord = true
	for i := 0; ; i++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataset: row %d: %w", i, err)
		}
		if i == 0 && rec[0] == "date" {
			continue // header
		}
		d, err := time.Parse(DateFormat, rec[0])
		if err != nil {
			return fmt.Errorf("dataset: row %d: %w", i, err)
		}
		ip, err := dnswire.ParseIPv4(rec[1])
		if err != nil {
			return fmt.Errorf("dataset: row %d: %w", i, err)
		}
		name, err := dnswire.ParseName(rec[2])
		if err != nil {
			return fmt.Errorf("dataset: row %d: %w", i, err)
		}
		if err := fn(Row{Date: d, IP: ip, PTR: name}); err != nil {
			return err
		}
	}
}

// ReadRows decodes CSV written by WriteRows into memory. Prefer ScanRows
// for consumers that only iterate.
func ReadRows(r io.Reader) ([]Row, error) {
	var rows []Row
	if err := ScanRows(r, func(row Row) error {
		rows = append(rows, row)
		return nil
	}); err != nil {
		return nil, err
	}
	return rows, nil
}

// CountSeries is the per-/24 daily unique-address counts a longitudinal
// measurement yields — the input of the Section 4 dynamicity analysis.
type CountSeries struct {
	// Dates lists the measurement days in order.
	Dates []time.Time
	// Counts maps each /24 to its per-day unique-address count, aligned
	// with Dates. Prefixes absent from the map were never seen.
	Counts map[dnswire.Prefix][]int
}

// NewCountSeries creates an empty series over the given dates.
func NewCountSeries(dates []time.Time) *CountSeries {
	return &CountSeries{
		Dates:  append([]time.Time(nil), dates...),
		Counts: make(map[dnswire.Prefix][]int),
	}
}

// Set records the count for a prefix on day index i.
func (s *CountSeries) Set(p dnswire.Prefix, i, count int) {
	row, ok := s.Counts[p]
	if !ok {
		row = make([]int, len(s.Dates))
		s.Counts[p] = row
	}
	row[i] = count
}

// Add increments the count for a prefix on day index i.
func (s *CountSeries) Add(p dnswire.Prefix, i, delta int) {
	row, ok := s.Counts[p]
	if !ok {
		row = make([]int, len(s.Dates))
		s.Counts[p] = row
	}
	row[i] += delta
}

// SetConstant records the same count for a prefix on every day.
func (s *CountSeries) SetConstant(p dnswire.Prefix, count int) {
	row := make([]int, len(s.Dates))
	for i := range row {
		row[i] = count
	}
	s.Counts[p] = row
}

// Prefixes returns all /24s in the series, sorted by address.
func (s *CountSeries) Prefixes() []dnswire.Prefix {
	out := make([]dnswire.Prefix, 0, len(s.Counts))
	for p := range s.Counts {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Uint32() < out[j].Addr.Uint32() })
	return out
}

// TotalOn returns the total record count over all prefixes on day index i.
func (s *CountSeries) TotalOn(i int) int {
	total := 0
	for _, row := range s.Counts {
		total += row[i]
	}
	return total
}

// Stats summarizes a measurement campaign the way Table 1 and Table 3 do.
type Stats struct {
	// Name labels the data set ("OpenINTEL-like daily", ...).
	Name string
	// Start and End delimit the campaign.
	Start, End time.Time
	// TotalResponses counts every successful observation.
	TotalResponses uint64
	// UniqueIPs counts distinct addresses observed.
	UniqueIPs uint64
	// UniquePTRs counts distinct PTR hostnames observed.
	UniquePTRs uint64
}

// String formats the stats as a table row.
func (st Stats) String() string {
	return fmt.Sprintf("%-24s %s  %s  %14d %12d %12d",
		st.Name, st.Start.Format(DateFormat), st.End.Format(DateFormat),
		st.TotalResponses, st.UniqueIPs, st.UniquePTRs)
}

// StatsCollector accumulates Stats incrementally without storing rows. It
// tracks uniqueness with 64-bit hash sets, which is exact for all practical
// purposes at this scale.
type StatsCollector struct {
	stats     Stats
	seenIPs   map[uint32]struct{}
	seenPTRs  map[uint64]struct{}
	startSeen bool
}

// NewStatsCollector creates a collector with a data set name.
func NewStatsCollector(name string) *StatsCollector {
	return &StatsCollector{
		stats:    Stats{Name: name},
		seenIPs:  make(map[uint32]struct{}),
		seenPTRs: make(map[uint64]struct{}),
	}
}

// Observe records one (date, ip, ptr) observation.
func (c *StatsCollector) Observe(date time.Time, ip dnswire.IPv4, ptr dnswire.Name) {
	if !c.startSeen || date.Before(c.stats.Start) {
		c.stats.Start = date
		c.startSeen = true
	}
	if date.After(c.stats.End) {
		c.stats.End = date
	}
	c.stats.TotalResponses++
	c.seenIPs[ip.Uint32()] = struct{}{}
	c.seenPTRs[hashName(ptr)] = struct{}{}
}

// ObserveRepeat records the same observation on n further dates without
// re-hashing (used for constant filler blocks across a campaign).
func (c *StatsCollector) ObserveRepeat(n uint64) {
	c.stats.TotalResponses += n
}

// Stats returns the accumulated summary.
func (c *StatsCollector) Stats() Stats {
	st := c.stats
	st.UniqueIPs = uint64(len(c.seenIPs))
	st.UniquePTRs = uint64(len(c.seenPTRs))
	return st
}

// hashName hashes a name with FNV-1a.
func hashName(n dnswire.Name) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(n); i++ {
		h ^= uint64(n[i])
		h *= prime
	}
	return h
}

// DateRange enumerates the days in [start, end] at a step of interval days.
func DateRange(start, end time.Time, intervalDays int) []time.Time {
	if intervalDays <= 0 {
		intervalDays = 1
	}
	var out []time.Time
	for d := start; !d.After(end); d = d.AddDate(0, 0, intervalDays) {
		out = append(out, d)
	}
	return out
}
