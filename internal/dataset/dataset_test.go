package dataset

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
)

var day = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func TestRowsCSVRoundTrip(t *testing.T) {
	rows := []Row{
		{Date: day, IP: dnswire.MustIPv4("192.0.2.10"), PTR: dnswire.MustName("brians-iphone.dyn.example.edu")},
		{Date: day.AddDate(0, 0, 1), IP: dnswire.MustIPv4("192.0.2.11"), PTR: dnswire.MustName("emma-laptop.dyn.example.edu")},
	}
	var buf bytes.Buffer
	if err := WriteRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRows(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rows) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", got, rows)
	}
}

func TestReadRowsRejectsGarbage(t *testing.T) {
	if _, err := ReadRows(bytes.NewBufferString("date,ip,ptr\nnot-a-date,192.0.2.1,x.example.\n")); err == nil {
		t.Fatal("bad date accepted")
	}
	if _, err := ReadRows(bytes.NewBufferString("2021-01-01,999.0.2.1,x.example.\n")); err == nil {
		t.Fatal("bad IP accepted")
	}
}

func TestReadRowsEmpty(t *testing.T) {
	rows, err := ReadRows(bytes.NewBufferString(""))
	if err != nil || rows != nil {
		t.Fatalf("rows=%v err=%v", rows, err)
	}
}

func TestCountSeries(t *testing.T) {
	dates := DateRange(day, day.AddDate(0, 0, 2), 1)
	s := NewCountSeries(dates)
	p := dnswire.MustPrefix("192.0.2.0/24")
	s.Set(p, 0, 5)
	s.Add(p, 1, 3)
	s.Add(p, 1, 2)
	if got := s.Counts[p]; got[0] != 5 || got[1] != 5 || got[2] != 0 {
		t.Fatalf("counts = %v", got)
	}
	q := dnswire.MustPrefix("198.51.100.0/24")
	s.SetConstant(q, 7)
	if s.TotalOn(2) != 7 {
		t.Fatalf("TotalOn(2) = %d", s.TotalOn(2))
	}
	prefixes := s.Prefixes()
	if len(prefixes) != 2 || prefixes[0] != p || prefixes[1] != q {
		t.Fatalf("Prefixes = %v", prefixes)
	}
}

func TestStatsCollector(t *testing.T) {
	c := NewStatsCollector("test")
	name := dnswire.MustName("h.example.edu")
	c.Observe(day.AddDate(0, 0, 2), dnswire.MustIPv4("192.0.2.1"), name)
	c.Observe(day, dnswire.MustIPv4("192.0.2.1"), name)
	c.Observe(day, dnswire.MustIPv4("192.0.2.2"), dnswire.MustName("g.example.edu"))
	st := c.Stats()
	if st.TotalResponses != 3 {
		t.Fatalf("responses = %d", st.TotalResponses)
	}
	if st.UniqueIPs != 2 || st.UniquePTRs != 2 {
		t.Fatalf("unique = %d/%d", st.UniqueIPs, st.UniquePTRs)
	}
	if !st.Start.Equal(day) || !st.End.Equal(day.AddDate(0, 0, 2)) {
		t.Fatalf("range = %v..%v", st.Start, st.End)
	}
	c.ObserveRepeat(10)
	if c.Stats().TotalResponses != 13 {
		t.Fatalf("after repeat = %d", c.Stats().TotalResponses)
	}
}

func TestStatsString(t *testing.T) {
	st := Stats{Name: "x", Start: day, End: day, TotalResponses: 1, UniqueIPs: 2, UniquePTRs: 3}
	if st.String() == "" {
		t.Fatal("empty String()")
	}
}
