package telemetry

import (
	"bytes"
	"io"
	"sync"
	"testing"
	"time"
)

// fixedClock returns a deterministic monotonic clock for tests.
func fixedClock() func() time.Time {
	var mu sync.Mutex
	t0 := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestSpanIDsDeterministic(t *testing.T) {
	a := NewTracer(42, 16)
	b := NewTracer(42, 16)
	sa := a.StartSpan("shard", "10.0.0.0/16", 7)
	sb := b.StartSpan("shard", "10.0.0.0/16", 7)
	if sa.ID != sb.ID {
		t.Fatalf("same (seed,name,keys) must give same ID: %x vs %x", sa.ID, sb.ID)
	}
	c := NewTracer(43, 16)
	if sc := c.StartSpan("shard", "10.0.0.0/16", 7); sc.ID == sa.ID {
		t.Fatal("different seeds must give different IDs")
	}
	if sd := a.StartSpan("shard", "10.0.0.0/16", 8); sd.ID == sa.ID {
		t.Fatal("different keys must give different IDs")
	}
}

func TestTracerDigestIgnoresTimeAndOrder(t *testing.T) {
	run := func(clock func() time.Time, reverse bool) uint64 {
		tr := NewTracer(99, 64, WithNow(clock))
		spans := []*Span{
			tr.StartSpan("shard", "a", 1),
			tr.StartSpan("shard", "b", 2),
			tr.StartSpan("shard", "c", 3),
		}
		for i, s := range spans {
			s.Event("probe", uint64(i))
			s.Event("probe", uint64(i+10))
		}
		if reverse {
			for i := len(spans) - 1; i >= 0; i-- {
				spans[i].End()
			}
		} else {
			for _, s := range spans {
				s.End()
			}
		}
		return tr.Digest()
	}
	d1 := run(fixedClock(), false)
	d2 := run(time.Now, true) // different clock AND completion order
	if d1 != d2 {
		t.Fatalf("digest must be invariant to time and completion order: %x vs %x", d1, d2)
	}
	// But sensitive to event content.
	tr := NewTracer(99, 64)
	s := tr.StartSpan("shard", "a", 1)
	s.Event("probe", 999)
	s.End()
	if tr.Digest() == d1 {
		t.Fatal("digest must depend on event content")
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(1, 3)
	for i := 0; i < 5; i++ {
		tr.StartSpan("s", "", uint64(i)).End()
	}
	if got := tr.Len(); got != 3 {
		t.Fatalf("ring len = %d, want 3", got)
	}
	if got := tr.DroppedSpans(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
}

// TestTracerRingWrapOrder pins the circular buffer's linearization:
// after (multiple) wraps, Snapshot returns the retained spans oldest
// first, exactly the last cap completions.
func TestTracerRingWrapOrder(t *testing.T) {
	tr := NewTracer(1, 4)
	for i := 0; i < 11; i++ {
		sp := tr.StartSpan("s", "", uint64(i))
		sp.Event("i", uint64(i))
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("snapshot len = %d, want 4", len(spans))
	}
	for j, sp := range spans {
		if want := uint64(7 + j); sp.Events[0].Code != want {
			t.Fatalf("snapshot[%d] = span %d, want %d (oldest-first)", j, sp.Events[0].Code, want)
		}
	}
	if got := tr.DroppedSpans(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}
}

// TestTracerNilAndDefaults pins the nil-receiver safety contract (a nil
// tracer is a valid "tracing off" value everywhere) and the default ring
// capacity.
func TestTracerNilAndDefaults(t *testing.T) {
	var tr *Tracer
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
	if got := tr.DroppedSpans(); got != 0 {
		t.Fatalf("nil tracer DroppedSpans = %d, want 0", got)
	}
	if got := tr.Digest(); got != 0 {
		t.Fatalf("nil tracer Digest = %d, want 0", got)
	}
	if err := tr.WriteJSONL(io.Discard); err != nil {
		t.Fatalf("nil tracer WriteJSONL: %v", err)
	}
	d := NewTracer(9, 0, WithNow(nil))
	if d.cap != 4096 {
		t.Fatalf("default capacity = %d, want 4096", d.cap)
	}
	if d.now == nil {
		t.Fatal("WithNow(nil) must keep the default clock")
	}
}

func TestSpanEventCap(t *testing.T) {
	tr := NewTracer(1, 4)
	s := tr.StartSpan("big", "")
	for i := 0; i < maxEventsPerSpan+50; i++ {
		s.Event("e", uint64(i))
	}
	s.End()
	if len(s.Events) != maxEventsPerSpan {
		t.Fatalf("events = %d, want cap %d", len(s.Events), maxEventsPerSpan)
	}
	if s.Dropped != 50 {
		t.Fatalf("dropped = %d, want 50", s.Dropped)
	}
}

func TestWriteAndReadJSONL(t *testing.T) {
	tr := NewTracer(7, 16, WithNow(fixedClock()))
	s1 := tr.StartSpan("shard", "10.0.0.0/16", 1)
	s1.Event("probe", 0)
	s1.Event("probe", 3)
	s1.End()
	s2 := tr.StartSpan("shard", "10.1.0.0/16", 2)
	s2.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "shard" || recs[0].Attr != "10.0.0.0/16" {
		t.Errorf("record 0 = %+v", recs[0])
	}
	if len(recs[0].Events) != 2 || recs[0].Events[1].Code != 3 {
		t.Errorf("record 0 events = %+v", recs[0].Events)
	}
	if recs[1].Events != nil && len(recs[1].Events) != 0 {
		t.Errorf("record 1 must have no events, got %+v", recs[1].Events)
	}
	if !recs[0].End.After(recs[0].Start) {
		t.Errorf("record 0 end %v not after start %v", recs[0].End, recs[0].Start)
	}
}

func TestReadSpansRejectsGarbage(t *testing.T) {
	if _, err := ReadSpans(bytes.NewReader([]byte("not json\n"))); err == nil {
		t.Fatal("want error on malformed JSONL")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	tr := NewTracer(5, 128)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k uint64) {
			defer wg.Done()
			for j := 0; j < 16; j++ {
				s := tr.StartSpan("shard", "", k, uint64(j))
				s.Event("probe", uint64(j))
				s.End()
			}
		}(uint64(i))
	}
	wg.Wait()
	if got := tr.Len(); got != 128 {
		t.Fatalf("len = %d, want 128", got)
	}
	// Digest must be stable across re-computation.
	if tr.Digest() != tr.Digest() {
		t.Fatal("digest not stable")
	}
}
