package telemetry_test

import (
	"bytes"
	"strings"
	"testing"

	"rdnsprivacy/internal/telemetry"
)

func TestCorrIDDeterministicAndNonZero(t *testing.T) {
	seen := make(map[uint64][3]any)
	for seed := int64(0); seed < 20; seed++ {
		for attempt := 1; attempt <= 4; attempt++ {
			for _, name := range []string{
				"1.0.0.10.in-addr.arpa.",
				"2.0.0.10.in-addr.arpa.",
				"brian-laptop.example.net.",
			} {
				id := telemetry.CorrID(seed, name, attempt)
				if id == 0 {
					t.Fatalf("CorrID(%d,%q,%d) = 0; zero is reserved", seed, name, attempt)
				}
				if id != telemetry.CorrID(seed, name, attempt) {
					t.Fatalf("CorrID(%d,%q,%d) not stable", seed, name, attempt)
				}
				if prev, dup := seen[id]; dup {
					t.Fatalf("CorrID collision: (%d,%q,%d) and %v both map to %016x",
						seed, name, attempt, prev, id)
				}
				seen[id] = [3]any{seed, name, attempt}
			}
		}
	}
	if telemetry.CorrID(1, "a.example.", 1) == telemetry.CorrID(1, "a.example.", 2) {
		t.Fatal("different attempts must get different correlation IDs")
	}
}

func TestStartSpanCorrIDStability(t *testing.T) {
	tr := telemetry.NewTracer(42, 16)

	// Corr == 0 must derive exactly the same span ID as plain StartSpan, so
	// adding correlation support cannot perturb pre-existing trace digests.
	plain := tr.StartSpan("shard", "10.0.0.0/16", 7)
	zero := tr.StartSpanCorr("shard", "10.0.0.0/16", 0, 7)
	if plain.ID != zero.ID {
		t.Fatalf("StartSpanCorr with corr=0 changed the span ID: %016x vs %016x", plain.ID, zero.ID)
	}

	corr := telemetry.CorrID(42, "1.0.0.10.in-addr.arpa.", 1)
	a := tr.StartSpanCorr("attempt", "", corr)
	b := tr.StartSpanCorr("attempt", "", corr)
	if a.ID != b.ID || a.Corr != corr {
		t.Fatalf("correlated span not deterministic: %016x/%016x corr=%016x", a.ID, b.ID, a.Corr)
	}
	if a.ID == plain.ID {
		t.Fatal("correlated span must not collide with uncorrelated span ID")
	}
}

func TestSpanCorrJSONLRoundTrip(t *testing.T) {
	tr := telemetry.NewTracer(9, 16)
	corr := telemetry.CorrID(9, "3.0.0.10.in-addr.arpa.", 2)

	sp := tr.StartSpanCorr("attempt", "3.0.0.10.in-addr.arpa.", corr)
	sp.Event("tx", 1)
	sp.End()
	un := tr.StartSpan("shard", "10.0.0.0/16", 3)
	un.End()

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadSpans(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if got := recs[0].CorrID(); got != corr {
		t.Errorf("correlated record round-trip: got %016x, want %016x", got, corr)
	}
	if recs[1].Corr != "" || recs[1].CorrID() != 0 {
		t.Errorf("uncorrelated record must omit corr, got %q", recs[1].Corr)
	}
}
