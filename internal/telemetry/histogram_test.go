package telemetry

import (
	"math"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	// Upper bounds are inclusive (le semantics, matching Prometheus).
	cases := []struct {
		name    string
		buckets []float64
		obs     []float64
		want    []uint64 // per-bucket counts
		over    uint64
	}{
		{
			name:    "exact bound lands in its bucket",
			buckets: []float64{1, 2, 4},
			obs:     []float64{1, 2, 4},
			want:    []uint64{1, 1, 1},
		},
		{
			name:    "just above bound spills to next",
			buckets: []float64{1, 2, 4},
			obs:     []float64{1.0001, 2.0001, 4.0001},
			want:    []uint64{0, 1, 1},
			over:    1,
		},
		{
			name:    "zero and negative land in first bucket",
			buckets: []float64{1, 2},
			obs:     []float64{0, -3},
			want:    []uint64{2, 0},
		},
		{
			name:    "unsorted bounds are sorted at construction",
			buckets: []float64{4, 1, 2},
			obs:     []float64{0.5, 1.5, 3},
			want:    []uint64{1, 1, 1},
		},
		{
			name:    "all overflow",
			buckets: []float64{1},
			obs:     []float64{2, 3, 4},
			want:    []uint64{0},
			over:    3,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.buckets)
			for _, v := range tc.obs {
				h.Observe(v)
			}
			s := h.Snapshot()
			for i, want := range tc.want {
				if s.Counts[i] != want {
					t.Errorf("bucket %d (le=%g): got %d, want %d", i, s.Buckets[i], s.Counts[i], want)
				}
			}
			if s.Overflow != tc.over {
				t.Errorf("overflow: got %d, want %d", s.Overflow, tc.over)
			}
			if want := uint64(len(tc.obs)); s.Count != want {
				t.Errorf("count: got %d, want %d", s.Count, want)
			}
		})
	}
}

func TestHistogramSum(t *testing.T) {
	h := newHistogram([]float64{1, 10})
	for _, v := range []float64{0.25, 0.5, 3, 42} {
		h.Observe(v)
	}
	if got, want := h.Sum(), 45.75; math.Abs(got-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
}

// TestQuantileErrorBound feeds a known distribution through the default
// latency buckets and checks every estimated quantile lands within the
// width of the bucket owning the true quantile — the documented bound.
func TestQuantileErrorBound(t *testing.T) {
	buckets := DefaultLatencyBuckets()
	h := newHistogram(buckets)
	// 10k deterministic samples spread over [0.0001, 1): v = (i mod 1000 + 1) / 1000.
	var samples []float64
	for i := 0; i < 10000; i++ {
		samples = append(samples, float64(i%1000+1)/1000)
	}
	for _, v := range samples {
		h.Observe(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		truth := float64(int(q*1000)) / 1000 // samples are uniform over {0.001..1.000}
		got := h.Quantile(q)
		// Bound: width of the bucket containing the true quantile.
		width := bucketWidthFor(buckets, truth)
		if math.Abs(got-truth) > width {
			t.Errorf("q=%g: estimate %g vs truth %g exceeds bucket width %g", q, got, truth, width)
		}
	}
}

func bucketWidthFor(bounds []float64, v float64) float64 {
	lo := 0.0
	for _, ub := range bounds {
		if v <= ub {
			return ub - lo
		}
		lo = ub
	}
	return math.Inf(1)
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty *Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("nil histogram quantile must be 0")
	}
	h := newHistogram([]float64{1, 2, 4})
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(10) // only overflow
	if got, want := h.Quantile(0.99), 4.0; got != want {
		t.Errorf("overflow-only quantile must clamp to last bound: got %g, want %g", got, want)
	}
	// q outside [0,1] is clamped, not an error.
	h.Observe(0.5)
	if got := h.Quantile(-1); got < 0 {
		t.Errorf("q=-1 must clamp, got %g", got)
	}
	if got := h.Quantile(2); got > 4 {
		t.Errorf("q=2 must clamp to the max estimate, got %g", got)
	}
}

func TestDepthBuckets(t *testing.T) {
	b := DepthBuckets(4)
	want := []float64{1, 2, 3, 4}
	if len(b) != len(want) {
		t.Fatalf("len = %d, want %d", len(b), len(want))
	}
	for i := range want {
		if b[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, b[i], want[i])
		}
	}
}
