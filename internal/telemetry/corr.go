package telemetry

import "hash/fnv"

// Correlation IDs thread one probe's identity across layers: the client
// derives the ID from (seed, query name, attempt), stamps it on the
// datagram it transmits, the fabric copies it onto every hop event, and
// the authoritative server receives it alongside the wire query. Each
// layer opens its own span carrying the ID (see Span.Corr), so a trace
// dump can be stitched back into a causal chain
//
//	client attempt → fabric hops → server answer
//
// for any probe — without any layer knowing about the others.
//
// The derivation is the same pure-function keying faultsim uses for its
// fault decisions (seed + name + attempt through splitmix64), so a traced
// replay of a seeded scenario produces identical correlation IDs, and a
// fault decision and the spans it produced can be cross-referenced by
// construction rather than by timestamp proximity.

// CorrID derives the deterministic correlation ID of one transmission
// attempt: splitmix64 over (seed, FNV-1a(name), attempt). Attempts are
// 1-based; the same (seed, name, attempt) always yields the same ID, and
// the zero return is reserved (never produced) so 0 can mean "no
// correlation" on the wire.
func CorrID(seed int64, name string, attempt int) uint64 {
	f := fnv.New64a()
	f.Write([]byte(name))
	id := mix64(uint64(seed), f.Sum64(), uint64(attempt))
	if id == 0 {
		// mix64 output is effectively uniform; reserve 0 as the "no
		// correlation" sentinel without biasing anything measurable.
		return 1
	}
	return id
}
