package telemetry

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// propRun replays one seeded scenario: a tracer with a small ring forced
// to wrap, and a histogram fed a deterministic mix of correlated and
// uncorrelated observations. It checks the structural properties inline
// and returns the deterministic digests so the caller can assert
// bit-identical replays.
type propOutcome struct {
	traceDigest uint64
	exemplars   string // rendered exemplar slots, bucket order
	counts      string // rendered bucket counts
}

func propRun(t *testing.T, seed int64) propOutcome {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	// --- trace-ring wrap ---
	capacity := 4 + rng.Intn(60)
	n := capacity + 1 + rng.Intn(2*capacity) // always overflows the ring
	tr := NewTracer(seed, capacity)
	var ids []uint64
	for i := 0; i < n; i++ {
		sp := tr.StartSpanCorr("prop.span", fmt.Sprintf("s%d", i), CorrID(seed, "prop", i+1))
		for e := rng.Intn(3); e > 0; e-- {
			sp.Event("step", uint64(e))
		}
		sp.End()
		ids = append(ids, sp.ID)
	}
	if got := tr.Len(); got != capacity {
		t.Fatalf("seed %d: ring len %d, want capacity %d", seed, got, capacity)
	}
	if got := tr.DroppedSpans(); got != uint64(n-capacity) {
		t.Fatalf("seed %d: dropped %d, want %d", seed, got, n-capacity)
	}
	// The ring must retain exactly the LAST capacity spans, oldest first.
	snap := tr.Snapshot()
	for i, sp := range snap {
		if want := ids[n-capacity+i]; sp.ID != want {
			t.Fatalf("seed %d: ring slot %d holds span %016x, want %016x", seed, i, sp.ID, want)
		}
	}

	// --- exemplar retention ---
	reg := NewRegistry()
	bounds := DefaultLatencyBuckets()
	h := reg.Histogram("hist_prop_seconds", bounds)
	spread := bounds[len(bounds)-1] * 1.25 // some observations overflow
	nBuckets := len(bounds) + 1            // + overflow slot

	wantCounts := make([]uint64, nBuckets)
	// Per bucket: every corr offered to it with its value, and the worst
	// correlated value — the exemplar the CAS loop must have kept.
	offered := make([]map[uint64]float64, nBuckets)
	worst := make([]float64, nBuckets)
	for i := range offered {
		offered[i] = map[uint64]float64{}
	}
	m := 200 + rng.Intn(300)
	for i := 0; i < m; i++ {
		v := rng.Float64() * spread
		idx := sort.SearchFloat64s(bounds, v)
		wantCounts[idx]++
		corr := uint64(0)
		if rng.Intn(4) > 0 { // a quarter of observations are uncorrelated
			corr = CorrID(seed, "obs", i+1)
		}
		h.ObserveExemplar(v, corr)
		if corr != 0 {
			offered[idx][corr] = v
			if v > worst[idx] {
				worst[idx] = v
			}
		}
	}

	hs := h.Snapshot()
	for i := 0; i < nBuckets; i++ {
		var got uint64
		if i < len(bounds) {
			got = hs.Counts[i]
		} else {
			got = hs.Overflow
		}
		if got != wantCounts[i] {
			t.Fatalf("seed %d: bucket %d count %d, want %d", seed, i, got, wantCounts[i])
		}
		ex, ok := hs.BucketExemplar(i)
		if len(offered[i]) == 0 {
			if ok {
				t.Fatalf("seed %d: bucket %d has exemplar %+v but no correlated observation", seed, i, ex)
			}
			continue
		}
		if !ok {
			t.Fatalf("seed %d: bucket %d saw %d correlated observations but has no exemplar", seed, i, len(offered[i]))
		}
		v, recorded := offered[i][ex.Corr]
		if !recorded {
			t.Fatalf("seed %d: bucket %d exemplar corr %016x was never observed in that bucket", seed, i, ex.Corr)
		}
		if v != ex.Value {
			t.Fatalf("seed %d: bucket %d exemplar value %g, but corr %016x was observed at %g", seed, i, ex.Value, ex.Corr, v)
		}
		if ex.Value != worst[i] {
			t.Fatalf("seed %d: bucket %d exemplar value %g, want the bucket's worst %g", seed, i, ex.Value, worst[i])
		}
	}
	// The quantile exemplar must come from some bucket's retained slot.
	if ex, ok := hs.QuantileExemplar(0.99); ok {
		found := false
		for i := 0; i < nBuckets && !found; i++ {
			_, found = offered[i][ex.Corr]
		}
		if !found {
			t.Fatalf("seed %d: p99 exemplar corr %016x not among offered observations", seed, ex.Corr)
		}
	}

	var exs, cnts string
	for i := 0; i < nBuckets; i++ {
		if ex, ok := hs.BucketExemplar(i); ok {
			exs += fmt.Sprintf("%d:%016x@%g ", i, ex.Corr, ex.Value)
		}
		cnts += fmt.Sprintf("%d ", wantCounts[i])
	}
	return propOutcome{traceDigest: tr.Digest(), exemplars: exs, counts: cnts}
}

// TestTraceRingExemplarProperties is the seeded property battery: across
// 50 seeds the span ring must retain exactly the newest spans after
// wrapping, every bucket exemplar must be the worst observation actually
// recorded in that bucket by a correlated call, and replaying a seed must
// reproduce the trace digest and exemplar slots bit-identically.
func TestTraceRingExemplarProperties(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			a := propRun(t, seed)
			b := propRun(t, seed)
			if a.traceDigest != b.traceDigest {
				t.Fatalf("trace digest not replay-stable: %016x vs %016x", a.traceDigest, b.traceDigest)
			}
			if a.exemplars != b.exemplars {
				t.Fatalf("exemplar slots not replay-stable:\n%s\nvs\n%s", a.exemplars, b.exemplars)
			}
			if a.counts != b.counts {
				t.Fatalf("bucket counts not replay-stable:\n%s\nvs\n%s", a.counts, b.counts)
			}
		})
	}
}
