package telemetry_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestExporterEndpoints(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)

	reg := telemetry.NewRegistry()
	reg.Counter("scan_queries_total").Add(123)
	reg.Gauge("scan_workers").Set(8)
	reg.Histogram("probe_seconds", []float64{0.01, 0.1}).Observe(0.05)

	tr := telemetry.NewTracer(11, 16)
	s := tr.StartSpan("shard", "10.0.0.0/16", 0)
	s.Event("probe", 1)
	s.End()

	type health struct {
		Queries int `json:"queries"`
	}
	exp := telemetry.NewExporter(reg,
		telemetry.WithExporterTracer(tr),
		telemetry.WithExporterHealth(func() any { return health{Queries: 123} }),
	)
	addr, err := exp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	base := fmt.Sprintf("http://%s", addr)

	if code, body := get(t, base+"/metrics"); code != 200 ||
		!strings.Contains(body, "scan_queries_total 123") ||
		!strings.Contains(body, `probe_seconds_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics: code=%d body=\n%s", code, body)
	}
	if code, body := get(t, base+"/debug/vars"); code != 200 ||
		!strings.Contains(body, `"scan_queries_total": 123`) ||
		!strings.Contains(body, `"scan_workers": 8`) {
		t.Errorf("/debug/vars: code=%d body=\n%s", code, body)
	}
	if code, body := get(t, base+"/health"); code != 200 ||
		!strings.Contains(body, `"queries": 123`) {
		t.Errorf("/health: code=%d body=\n%s", code, body)
	}
	if code, body := get(t, base+"/trace"); code != 200 ||
		!strings.Contains(body, `"name":"shard"`) {
		t.Errorf("/trace: code=%d body=\n%s", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 ||
		!strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code=%d body=\n%s", code, body)
	}
}

func TestExporterWithoutOptional(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	exp := telemetry.NewExporter(telemetry.NewRegistry())
	addr, err := exp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	base := "http://" + addr
	if code, _ := get(t, base+"/health"); code != http.StatusNotFound {
		t.Errorf("/health without source: code=%d, want 404", code)
	}
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Errorf("/trace without tracer: code=%d, want 404", code)
	}
}

func TestExporterNotReady(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)

	type report struct{ OK bool }
	var last *report // typed nil until the first sweep completes
	tr := telemetry.NewTracer(7, 8)
	exp := telemetry.NewExporter(telemetry.NewRegistry(),
		telemetry.WithExporterTracer(tr),
		telemetry.WithExporterHealth(func() any { return last }),
	)
	addr, err := exp.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer exp.Close()
	base := "http://" + addr

	// A typed-nil report inside a non-nil any is still "no report yet".
	if code, _ := get(t, base+"/health"); code != http.StatusServiceUnavailable {
		t.Errorf("/health before first report: code=%d, want 503", code)
	}
	if code, body := get(t, base+"/trace"); code != http.StatusNoContent || body != "" {
		t.Errorf("/trace with empty ring: code=%d body=%q, want 204 with no body", code, body)
	}

	last = &report{OK: true}
	sp := tr.StartSpan("shard", "10.0.0.0/16", 0)
	sp.End()

	if code, body := get(t, base+"/health"); code != 200 || !strings.Contains(body, `"OK": true`) {
		t.Errorf("/health after report: code=%d body=%q", code, body)
	}
	if code, body := get(t, base+"/trace"); code != 200 || !strings.Contains(body, `"name":"shard"`) {
		t.Errorf("/trace after span: code=%d body=%q", code, body)
	}
}

func TestExporterDoubleStartAndClose(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	exp := telemetry.NewExporter(telemetry.NewRegistry())
	if _, err := exp.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start must fail")
	}
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	if err := exp.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// Close without Start is a no-op.
	if err := telemetry.NewExporter(nil).Close(); err != nil {
		t.Fatal(err)
	}
}
