package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"sync"
	"time"
)

// Exporter serves a registry (and optionally a tracer and a health
// snapshot) over HTTP for scraping during a sweep:
//
//	/metrics      Prometheus text exposition format
//	/debug/vars   expvar-style JSON of every instrument
//	/debug/pprof/ the standard net/http/pprof handlers
//	/health       JSON of the health snapshot func, when configured
//	/trace        the span ring as JSONL, when a tracer is configured
//
// Start binds and serves on a background goroutine; Close shuts the
// listener down and waits for that goroutine, so tests can assert no
// leaks with testutil.VerifyNoLeaks.
type Exporter struct {
	reg    *Registry
	tracer *Tracer
	health func() any
	dumps  []exporterDump

	mu   sync.Mutex
	srv  *http.Server
	addr string
	done chan struct{}
}

// exporterDump is one extra dump endpoint (path, content type, writer).
type exporterDump struct {
	path        string
	contentType string
	write       func(w io.Writer) error
	empty       func() bool
}

// ExporterOption configures an Exporter.
type ExporterOption func(*Exporter)

// WithExporterTracer serves tr's span ring at /trace as JSONL.
func WithExporterTracer(tr *Tracer) ExporterOption {
	return func(e *Exporter) { e.tracer = tr }
}

// WithExporterHealth serves health() at /health as JSON. The func is
// called per request; it should return a snapshot (e.g. the engine's
// latest HealthReport), not a live pointer into mutable state.
func WithExporterHealth(health func() any) ExporterOption {
	return func(e *Exporter) { e.health = health }
}

// WithExporterDump serves write's output at path with the given content
// type — the hook rdnsd uses to expose its query log at /querylog
// without the telemetry layer knowing the log's type. write is called
// per request and must be safe concurrently with the producer (ring
// snapshots, not live buffers). A non-nil empty func that reports true
// answers 204, mirroring /trace's "not ready yet" convention.
func WithExporterDump(path, contentType string, write func(w io.Writer) error, empty func() bool) ExporterOption {
	return func(e *Exporter) {
		e.dumps = append(e.dumps, exporterDump{path: path, contentType: contentType, write: write, empty: empty})
	}
}

// NewExporter builds an exporter over reg. Call Start to serve.
func NewExporter(reg *Registry, opts ...ExporterOption) *Exporter {
	e := &Exporter{reg: reg}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Handler returns the exporter's HTTP mux, for embedding in an existing
// server.
func (e *Exporter) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		e.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		e.reg.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		if e.health == nil {
			http.Error(w, "no health source configured", http.StatusNotFound)
			return
		}
		// "Not ready" must be distinguishable from "healthy but empty":
		// before the first sweep completes there is no report, and a
		// poller that treated a 200-with-nothing as healthy would blind
		// itself to the warm-up window. 503 says retry later.
		v := e.health()
		if isNilReport(v) {
			http.Error(w, "no health report yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		if e.tracer == nil {
			http.Error(w, "no tracer configured", http.StatusNotFound)
			return
		}
		if e.tracer.Len() == 0 {
			// An empty ring before the first span completes is "not ready",
			// not "an empty trace": 204 carries no body by definition.
			w.WriteHeader(http.StatusNoContent)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		e.tracer.WriteJSONL(w)
	})
	for _, d := range e.dumps {
		d := d
		mux.HandleFunc(d.path, func(w http.ResponseWriter, _ *http.Request) {
			if d.empty != nil && d.empty() {
				w.WriteHeader(http.StatusNoContent)
				return
			}
			w.Header().Set("Content-Type", d.contentType)
			d.write(w)
		})
	}
	return mux
}

// isNilReport reports whether a health snapshot is absent: a nil any, or a
// typed nil pointer/interface/map/slice smuggled inside one (the usual
// shape of atomic.Pointer[Report].Load() before the first store).
func isNilReport(v any) bool {
	if v == nil {
		return true
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Pointer, reflect.Interface, reflect.Map, reflect.Slice, reflect.Chan, reflect.Func:
		return rv.IsNil()
	}
	return false
}

// Start binds addr (e.g. "127.0.0.1:9090"; a ":0" port picks a free one)
// and serves in the background. It returns the bound address, so callers
// that asked for port 0 can print the real scrape URL.
func (e *Exporter) Start(addr string) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.srv != nil {
		return "", fmt.Errorf("telemetry: exporter already started on %s", e.addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	e.addr = ln.Addr().String()
	e.srv = &http.Server{Handler: e.Handler(), ReadHeaderTimeout: 5 * time.Second}
	e.done = make(chan struct{})
	go func(srv *http.Server, done chan struct{}) {
		defer close(done)
		srv.Serve(ln)
	}(e.srv, e.done)
	return e.addr, nil
}

// Addr returns the bound address ("" before Start).
func (e *Exporter) Addr() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.addr
}

// Close shuts the server down and waits for the serve goroutine to exit.
// Safe to call without Start, and safe to call twice.
func (e *Exporter) Close() error {
	e.mu.Lock()
	srv, done := e.srv, e.done
	e.srv, e.done = nil, nil
	e.mu.Unlock()
	if srv == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := srv.Shutdown(ctx)
	<-done
	return err
}
