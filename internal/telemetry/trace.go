package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer records sweep spans into a bounded ring: one span per unit of
// work (the engine opens one per shard), each carrying a sequence of
// compact events (one per probe). Span identifiers derive from the
// tracer's seed and the span's name and keys — never from time or
// allocation order — so two runs of the same seeded scenario produce the
// same span IDs and the same Digest, which is what makes traces
// replay-comparable under faultsim.
//
// Completed spans land in the ring; once more than the capacity have
// finished, the oldest are dropped (and counted). All methods are safe
// for concurrent use and safe on a nil receiver, so instrumented code
// calls unconditionally.
type Tracer struct {
	seed uint64
	cap  int
	now  func() time.Time

	mu      sync.Mutex
	spans   []*Span // circular buffer; head indexes the oldest entry once full
	head    int     // next write position after the buffer reaches capacity
	dropped uint64  // completed spans evicted from the ring
}

// TracerOption tunes a Tracer.
type TracerOption func(*Tracer)

// WithNow sets the clock used for span and event timestamps (default
// time.Now). The engine passes its simclock so simulated sweeps stamp
// simulated times. Timestamps never participate in span IDs or digests.
func WithNow(now func() time.Time) TracerOption {
	return func(t *Tracer) {
		if now != nil {
			t.now = now
		}
	}
}

// NewTracer creates a tracer whose span IDs derive from seed. capacity
// bounds the completed-span ring (<= 0 means 4096).
func NewTracer(seed int64, capacity int, opts ...TracerOption) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	t := &Tracer{seed: uint64(seed), cap: capacity, now: time.Now}
	for _, o := range opts {
		o(t)
	}
	return t
}

// maxEventsPerSpan bounds a span's event log; a /16 shard probed
// per-address would otherwise pin 65k events in memory per span. The cap
// cuts by sequence number, so it is deterministic.
const maxEventsPerSpan = 8192

// Span is one traced unit of work. Events must be appended from a single
// goroutine (the engine's shard loop is sequential); End publishes the
// span to the tracer's ring and must be called exactly once.
type Span struct {
	ID      uint64
	Name    string
	Attr    string // human-facing label, e.g. the shard prefix
	StartAt time.Time
	EndAt   time.Time
	Events  []SpanEvent
	// Dropped counts events discarded past the per-span cap.
	Dropped int
	// Corr is the cross-layer correlation ID (see CorrID), zero when the
	// span is not part of a causal chain. Spans from different layers
	// carrying the same Corr describe the same probe.
	Corr uint64

	tracer *Tracer
}

// SpanEvent is one compact event inside a span. Seq is the event's index
// in append order; Kind and Code carry the instrumented package's
// taxonomy (the engine emits kind "probe" with an outcome code per
// address). At is informational and excluded from digests.
type SpanEvent struct {
	Seq  int       `json:"i"`
	Kind string    `json:"kind"`
	Code uint64    `json:"code"`
	At   time.Time `json:"t"`
}

// StartSpan opens a span. The ID mixes the tracer seed, the name, and the
// keys with splitmix64, so the same (seed, name, keys) always yields the
// same ID. Safe on a nil tracer (returns nil; nil spans no-op).
func (t *Tracer) StartSpan(name, attr string, keys ...uint64) *Span {
	return t.StartSpanCorr(name, attr, 0, keys...)
}

// StartSpanCorr opens a span that belongs to the causal chain identified
// by corr (see CorrID). The correlation ID participates in the span ID
// derivation, so spans for the same probe from different layers get
// distinct-but-deterministic IDs while sharing Corr. Safe on a nil tracer.
func (t *Tracer) StartSpanCorr(name, attr string, corr uint64, keys ...uint64) *Span {
	if t == nil {
		return nil
	}
	f := fnv.New64a()
	io.WriteString(f, name)
	words := []uint64{t.seed, f.Sum64()}
	if corr != 0 {
		words = append(words, corr)
	}
	words = append(words, keys...)
	return &Span{
		ID:      mix64(words...),
		Name:    name,
		Attr:    attr,
		Corr:    corr,
		StartAt: t.now(),
		tracer:  t,
	}
}

// Event appends one event. Safe on a nil span.
func (s *Span) Event(kind string, code uint64) {
	if s == nil {
		return
	}
	if len(s.Events) >= maxEventsPerSpan {
		s.Dropped++
		return
	}
	s.Events = append(s.Events, SpanEvent{
		Seq:  len(s.Events),
		Kind: kind,
		Code: code,
		At:   s.tracer.now(),
	})
}

// End closes the span and publishes it to the tracer ring. Safe on a nil
// span.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	s.EndAt = t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	// O(1) eviction: once the buffer reaches capacity, overwrite in place
	// instead of shifting — sustained overflow (per-probe correlation
	// spans) would otherwise turn every End into a full-ring copy.
	if len(t.spans) < t.cap {
		t.spans = append(t.spans, s)
		return
	}
	t.spans[t.head] = s
	t.head = (t.head + 1) % t.cap
	t.dropped++
}

// Len returns the number of completed spans currently in the ring.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// DroppedSpans returns how many completed spans the ring has evicted.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies the completed-span ring in completion order, oldest
// first. The spans themselves are not copied; callers must treat them as
// read-only (they are immutable after End).
func (t *Tracer) Snapshot() []*Span {
	if t == nil {
		return nil
	}
	return t.snapshot()
}

// snapshot copies the ring under the lock, linearized oldest-first.
func (t *Tracer) snapshot() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, len(t.spans))
	out = append(out, t.spans[t.head:]...)
	return append(out, t.spans[:t.head]...)
}

// Digest hashes the deterministic portion of every completed span — ID,
// name, attr, dropped-event count and the (Seq, Kind, Code) of each event
// — with spans sorted by ID so worker scheduling cannot perturb the
// result. Timestamps are excluded. Two runs of the same seeded scenario
// must produce equal digests; see the faultsim telemetry scenario test.
func (t *Tracer) Digest() uint64 {
	if t == nil {
		return 0
	}
	spans := t.snapshot()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].ID != spans[j].ID {
			return spans[i].ID < spans[j].ID
		}
		return spans[i].Name < spans[j].Name
	})
	f := fnv.New64a()
	for _, s := range spans {
		fmt.Fprintf(f, "%016x %016x %s %s %d\n", s.ID, s.Corr, s.Name, s.Attr, s.Dropped)
		for _, ev := range s.Events {
			fmt.Fprintf(f, "  %d %s %d\n", ev.Seq, ev.Kind, ev.Code)
		}
	}
	return f.Sum64()
}

// SpanRecord is the JSONL form of a completed span, one object per line.
type SpanRecord struct {
	ID      string      `json:"id"`
	Name    string      `json:"name"`
	Attr    string      `json:"attr,omitempty"`
	Corr    string      `json:"corr,omitempty"` // cross-layer correlation ID, hex
	Start   time.Time   `json:"start"`
	End     time.Time   `json:"end"`
	Dropped int         `json:"dropped,omitempty"`
	Events  []SpanEvent `json:"events"`
}

// CorrID parses the record's correlation ID (zero when absent).
func (r SpanRecord) CorrID() uint64 {
	if r.Corr == "" {
		return 0
	}
	var v uint64
	fmt.Sscanf(r.Corr, "%x", &v)
	return v
}

// WriteJSONL dumps the completed spans in completion order, one JSON
// object per line — the -trace-out format cmd/experiments consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range t.snapshot() {
		rec := SpanRecord{
			ID:      fmt.Sprintf("%016x", s.ID),
			Name:    s.Name,
			Attr:    s.Attr,
			Start:   s.StartAt,
			End:     s.EndAt,
			Dropped: s.Dropped,
			Events:  s.Events,
		}
		if s.Corr != 0 {
			rec.Corr = fmt.Sprintf("%016x", s.Corr)
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSONL span dump produced by WriteJSONL.
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	dec := json.NewDecoder(r)
	for {
		var rec SpanRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, fmt.Errorf("telemetry: span record %d: %w", len(out)+1, err)
		}
		out = append(out, rec)
	}
}

// mix64 mixes words with the splitmix64 finalizer — the same construction
// scanengine and faultsim use for their deterministic schedules.
func mix64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}
