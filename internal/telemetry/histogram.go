package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds. Observation and snapshotting are lock-free: each bucket is
// an atomic counter and the total is derived from the buckets at read
// time, so a snapshot taken mid-write is internally consistent (Count ==
// sum of bucket counts) even though it may lag in-flight observations.
//
// Quantiles are estimated by linear interpolation inside the bucket that
// holds the target rank, so the estimation error is bounded by the width
// of that bucket (observations above the last bound estimate to the last
// bound). All methods are safe on a nil receiver.
//
// ObserveExemplar additionally retains, per bucket, the correlation ID of
// the worst (largest) observation that landed there — so a scraped
// histogram can answer not just "what is the p99" but "which query was
// the p99" (see Exemplar and HistogramSnapshot.QuantileExemplar). Plain
// Observe never touches the exemplar slots, so uninstrumented hot paths
// pay nothing.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	over    atomic.Uint64 // observations above the last bound
	sumBits atomic.Uint64 // float64 bits of the running sum
	// exes[i] retains the worst exemplar for bucket i; the extra last slot
	// is the overflow bucket's. Slots start nil and only ObserveExemplar
	// writes them.
	exes []atomic.Pointer[Exemplar]
}

// Exemplar ties one recorded observation to the correlation ID of the
// request that produced it (telemetry.CorrID keying; 0 never occurs — a
// nil slot means "no exemplar yet").
type Exemplar struct {
	// Corr is the cross-layer correlation ID of the exemplar observation.
	Corr uint64 `json:"corr"`
	// Value is the observed value (seconds for latency histograms).
	Value float64 `json:"value"`
}

// DefaultLatencyBuckets spans 50µs to ~30s in roughly doubling steps —
// wide enough for both in-process sources (tens of microseconds) and
// real-socket lookups with retries (seconds). Values are seconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// DepthBuckets is a small linear bucket set for discrete depth-like values
// (zone-walk label depth, attempt counts).
func DepthBuckets(max int) []float64 {
	out := make([]float64, 0, max)
	for i := 1; i <= max; i++ {
		out = append(out, float64(i))
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{
		bounds: b,
		counts: make([]atomic.Uint64, len(b)),
		exes:   make([]atomic.Pointer[Exemplar], len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.bucketFor(v).Add(1)
	h.addSum(v)
}

// ObserveExemplar records one value and, when corr is non-zero, offers it
// as the bucket's exemplar: the slot keeps whichever observation in that
// bucket was worst (largest). Safe on a nil receiver and safe for
// concurrent use; a racing pair of updates keeps one of the two, and the
// kept exemplar is always an observation that was actually recorded in
// that bucket.
func (h *Histogram) ObserveExemplar(v float64, corr uint64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.addSum(v)
	if corr == 0 {
		return
	}
	slot := &h.exes[i]
	ex := &Exemplar{Corr: corr, Value: v}
	for {
		cur := slot.Load()
		if cur != nil && cur.Value >= v {
			return
		}
		if slot.CompareAndSwap(cur, ex) {
			return
		}
	}
}

// bucketFor returns the counter for the bucket admitting v.
func (h *Histogram) bucketFor(v float64) *atomic.Uint64 {
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		return &h.counts[i]
	}
	return &h.over
}

func (h *Histogram) addSum(v float64) {
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations, derived from the buckets.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	n := uint64(0)
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.over.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts; see HistogramSnapshot.Quantile for the estimation rule.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram state. Count equals the sum of Counts plus
// Overflow by construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.bounds...),
		Counts:  make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Overflow = h.over.Load()
	s.Count += s.Overflow
	s.Sum = h.Sum()
	for i := range h.exes {
		if ex := h.exes[i].Load(); ex != nil {
			if s.Exemplars == nil {
				s.Exemplars = make([]Exemplar, len(h.exes))
			}
			s.Exemplars[i] = *ex
		}
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Buckets are the ascending upper bounds; Counts[i] observations fell
	// in (Buckets[i-1], Buckets[i]].
	Buckets []float64
	Counts  []uint64
	// Overflow counts observations above the last bound.
	Overflow uint64
	// Count is the total number of observations (sum of Counts plus
	// Overflow).
	Count uint64
	// Sum is the running sum of observed values.
	Sum float64
	// Exemplars, when non-nil, holds one slot per bucket plus a final
	// overflow slot: the worst ObserveExemplar observation each bucket has
	// seen (zero Corr = none). Nil when no exemplar was ever offered.
	Exemplars []Exemplar
}

// BucketExemplar returns bucket i's exemplar (i == len(Buckets) is the
// overflow bucket); ok is false when none was recorded.
func (s HistogramSnapshot) BucketExemplar(i int) (Exemplar, bool) {
	if s.Exemplars == nil || i < 0 || i >= len(s.Exemplars) || s.Exemplars[i].Corr == 0 {
		return Exemplar{}, false
	}
	return s.Exemplars[i], true
}

// QuantileExemplar returns the exemplar of the bucket that holds the
// q-th quantile's rank — the concrete request to look at when the
// quantile is out of budget. When that bucket never recorded an exemplar
// (plain Observe calls, or a racing snapshot), it falls back to the
// nearest lower bucket that did; ok is false when no bucket has one.
func (s HistogramSnapshot) QuantileExemplar(q float64) (Exemplar, bool) {
	if s.Count == 0 || s.Exemplars == nil {
		return Exemplar{}, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	at := len(s.Buckets) // default: overflow bucket
	for i, c := range s.Counts {
		cum += c
		if c > 0 && float64(cum) >= rank {
			at = i
			break
		}
	}
	for i := at; i >= 0; i-- {
		if ex, ok := s.BucketExemplar(i); ok {
			return ex, true
		}
	}
	return Exemplar{}, false
}

// Quantile estimates the q-th quantile by walking the cumulative bucket
// counts to the target rank and interpolating linearly inside the bucket
// that holds it (the first bucket interpolates from zero). Ranks that land
// in the overflow bucket return the last finite bound — the estimate is
// clamped, not extrapolated.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Buckets[i-1]
			}
			hi := s.Buckets[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Buckets[len(s.Buckets)-1]
}
