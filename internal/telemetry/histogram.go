package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
)

// Histogram counts observations into fixed buckets defined by ascending
// upper bounds. Observation and snapshotting are lock-free: each bucket is
// an atomic counter and the total is derived from the buckets at read
// time, so a snapshot taken mid-write is internally consistent (Count ==
// sum of bucket counts) even though it may lag in-flight observations.
//
// Quantiles are estimated by linear interpolation inside the bucket that
// holds the target rank, so the estimation error is bounded by the width
// of that bucket (observations above the last bound estimate to the last
// bound). All methods are safe on a nil receiver.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Uint64
	over    atomic.Uint64 // observations above the last bound
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefaultLatencyBuckets spans 50µs to ~30s in roughly doubling steps —
// wide enough for both in-process sources (tens of microseconds) and
// real-socket lookups with retries (seconds). Values are seconds.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
	}
}

// DepthBuckets is a small linear bucket set for discrete depth-like values
// (zone-walk label depth, attempt counts).
func DepthBuckets(max int) []float64 {
	out := make([]float64, 0, max)
	for i := 1; i <= max; i++ {
		out = append(out, float64(i))
	}
	return out
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets()
	}
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound admits v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations, derived from the buckets.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	n := uint64(0)
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.over.Load()
}

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the bucket
// counts; see HistogramSnapshot.Quantile for the estimation rule.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	return h.Snapshot().Quantile(q)
}

// Snapshot copies the histogram state. Count equals the sum of Counts plus
// Overflow by construction.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Buckets: append([]float64(nil), h.bounds...),
		Counts:  make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	s.Overflow = h.over.Load()
	s.Count += s.Overflow
	s.Sum = h.Sum()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Buckets are the ascending upper bounds; Counts[i] observations fell
	// in (Buckets[i-1], Buckets[i]].
	Buckets []float64
	Counts  []uint64
	// Overflow counts observations above the last bound.
	Overflow uint64
	// Count is the total number of observations (sum of Counts plus
	// Overflow).
	Count uint64
	// Sum is the running sum of observed values.
	Sum float64
}

// Quantile estimates the q-th quantile by walking the cumulative bucket
// counts to the target rank and interpolating linearly inside the bucket
// that holds it (the first bucket interpolates from zero). Ranks that land
// in the overflow bucket return the last finite bound — the estimate is
// clamped, not extrapolated.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = s.Buckets[i-1]
			}
			hi := s.Buckets[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return s.Buckets[len(s.Buckets)-1]
}
