package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrentIncrements(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total")
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got, want := c.Value(), uint64(goroutines*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("y")
	h := reg.Histogram("z", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(1.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram quantile must be zero")
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
	var tr *Tracer
	sp := tr.StartSpan("s", "a")
	sp.Event("e", 1)
	sp.End()
	if tr.Digest() != 0 || tr.Len() != 0 {
		t.Fatal("nil tracer must no-op")
	}
}

func TestRegistryGetOrCreateReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("Counter must return the same handle per name")
	}
	if reg.Gauge("b") != reg.Gauge("b") {
		t.Fatal("Gauge must return the same handle per name")
	}
	h1 := reg.Histogram("c", []float64{1, 2})
	h2 := reg.Histogram("c", []float64{99}) // buckets ignored on re-get
	if h1 != h2 {
		t.Fatal("Histogram must return the same handle per name")
	}
	if got := len(h2.Snapshot().Buckets); got != 2 {
		t.Fatalf("second registration must keep original buckets, got %d", got)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	reg.Gauge("dual")
}

func TestSnapshotWhileWritingConsistency(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", []float64{0.001, 0.01, 0.1, 1})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed float64) {
			defer wg.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(v)
				v *= 1.7
				if v > 2 {
					v = seed
				}
			}
		}(0.0003 * float64(i+1))
	}
	// The invariant under test: Count is derived from the buckets, so a
	// snapshot taken mid-write is always internally consistent.
	for i := 0; i < 200; i++ {
		s := h.Snapshot()
		sum := s.Overflow
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.Count {
			t.Fatalf("snapshot %d inconsistent: bucket sum %d != count %d", i, sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDeterministicDigest(t *testing.T) {
	build := func() *Registry {
		reg := NewRegistry()
		reg.Counter("q_total").Add(42)
		reg.Gauge("g").Set(-7)
		h := reg.Histogram("lat", []float64{1, 2})
		h.Observe(0.5)
		h.Observe(1.5)
		return reg
	}
	a, b := build(), build()
	if a.DeterministicDigest() != b.DeterministicDigest() {
		t.Fatal("identical registries must digest equal")
	}
	// Histogram bucket placement must not matter, only the count.
	c := NewRegistry()
	c.Counter("q_total").Add(42)
	c.Gauge("g").Set(-7)
	hc := c.Histogram("lat", []float64{1, 2})
	hc.Observe(1.9) // different bucket than b's 0.5
	hc.Observe(0.1)
	if a.DeterministicDigest() != c.DeterministicDigest() {
		t.Fatal("digest must depend on histogram count, not bucket placement")
	}
	c.Counter("q_total").Inc()
	if a.DeterministicDigest() == c.DeterministicDigest() {
		t.Fatal("digest must change when a counter changes")
	}
	// Exclusion removes a name from the hash on both sides.
	d := build()
	d.Counter("noisy_total").Add(999)
	if a.DeterministicDigest("noisy_total") != d.DeterministicDigest("noisy_total") {
		t.Fatal("excluded counters must not affect the digest")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("scan_queries_total").Add(10)
	reg.Counter(`scan_changes_total{kind="added"}`).Add(3)
	reg.Counter(`scan_changes_total{kind="removed"}`).Add(1)
	reg.Gauge("scan_inflight").Set(2)
	h := reg.Histogram("probe_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5) // overflow

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE scan_queries_total counter\n",
		"scan_queries_total 10\n",
		`scan_changes_total{kind="added"} 3` + "\n",
		`scan_changes_total{kind="removed"} 1` + "\n",
		"# TYPE scan_inflight gauge\n",
		"scan_inflight 2\n",
		"# TYPE probe_seconds histogram\n",
		`probe_seconds_bucket{le="0.1"} 1` + "\n",
		`probe_seconds_bucket{le="1"} 2` + "\n",
		`probe_seconds_bucket{le="+Inf"} 3` + "\n",
		"probe_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n---\n%s", want, out)
		}
	}
	// The labelled family must get exactly one TYPE line.
	if n := strings.Count(out, "# TYPE scan_changes_total"); n != 1 {
		t.Errorf("want 1 TYPE line for scan_changes_total, got %d", n)
	}
}

func TestWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(7)
	reg.Gauge("b").Set(-2)
	h := reg.Histogram("c_seconds", []float64{1, 2})
	h.Observe(0.5)
	var sb strings.Builder
	if err := reg.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`"a_total": 7`, `"b": -2`, `"count": 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("json output missing %q\n---\n%s", want, out)
		}
	}
}
