// Package telemetry is the scan pipeline's observability layer: a
// dependency-free, allocation-conscious metrics registry (atomic counters,
// gauges, fixed-bucket latency histograms with quantile estimation) plus a
// lightweight sweep tracer whose span identifiers derive deterministically
// from the scan seed, so traces taken from two runs of the same seeded
// scenario are directly comparable.
//
// The paper's longitudinal analyses (dynamic-/24 detection, leak
// lifetimes, removal timing) depend on knowing exactly what each sweep
// did: how many queries, retries, hedges, breaker trips, and cache hits
// produced a snapshot. Instrumented packages accept a telemetry.Sink and
// hold pre-resolved instrument handles; a nil Sink yields nil handles,
// and every instrument method is nil-receiver safe, so the uninstrumented
// hot path costs a single pointer test per site.
//
// Typical wiring:
//
//	reg := telemetry.NewRegistry()
//	tr := telemetry.NewTracer(seed, 4096)
//	sc := scanengine.New(src, scanengine.WithTelemetry(reg), scanengine.WithTracer(tr))
//	exp := telemetry.NewExporter(reg, telemetry.WithExporterTracer(tr))
//	addr, _ := exp.Start("127.0.0.1:9090") // /metrics, /debug/vars, /debug/pprof/, /health, /trace
//	defer exp.Close()
//
// See docs/telemetry.md for the metric names each package exports and for
// the JSONL trace schema.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sink hands out named instruments. *Registry implements it; instrumented
// packages take a Sink so tests can substitute their own. A nil Sink (or a
// nil *Registry) disables instrumentation at zero cost: the helper
// constructors below return nil handles whose methods are no-ops.
type Sink interface {
	// Counter returns the named monotonic counter, creating it on first
	// use.
	Counter(name string) *Counter
	// Gauge returns the named gauge, creating it on first use.
	Gauge(name string) *Gauge
	// Histogram returns the named histogram, creating it on first use
	// with the given bucket upper bounds (ignored if it already exists).
	Histogram(name string, buckets []float64) *Histogram
}

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and safe on a nil receiver (no-ops), so instrumented code
// never branches on whether telemetry is enabled.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous int64 value. Nil-receiver safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a process-local metric namespace. The zero value is not
// usable; create one with NewRegistry. A nil *Registry is a valid no-op
// Sink: its getters return nil instruments.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order, for stable human-facing output
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Counter implements Sink. Safe on a nil receiver (returns nil).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counts[name]; ok {
		return c
	}
	r.mustBeFresh(name, "counter")
	c := &Counter{}
	r.counts[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge implements Sink. Safe on a nil receiver (returns nil).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.mustBeFresh(name, "gauge")
	g := &Gauge{}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Histogram implements Sink. Safe on a nil receiver (returns nil). The
// bucket bounds apply only on first registration.
func (r *Registry) Histogram(name string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.mustBeFresh(name, "histogram")
	h := newHistogram(buckets)
	r.hists[name] = h
	r.order = append(r.order, name)
	return h
}

// mustBeFresh panics when a name is re-registered as a different
// instrument kind — a programming error worth failing loudly on. Caller
// holds r.mu.
func (r *Registry) mustBeFresh(name, kind string) {
	if _, ok := r.counts[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram, requested as %s", name, kind))
	}
}

// Snapshot is a point-in-time copy of every instrument. Each instrument is
// read atomically; histogram counts are derived from the bucket counters
// at read time, so Count always equals the sum of Buckets even while
// writers race the snapshot.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the registry. Safe on nil (returns empty maps).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// DeterministicDigest hashes the deterministic portion of the registry:
// counter and gauge values plus histogram observation counts, in sorted
// name order. Bucket contents, sums and quantiles are excluded — they
// depend on wall-clock latencies even when the measured workload is
// seed-deterministic. Names listed in exclude are skipped entirely
// (e.g. scheduling-dependent counters like merge backpressure stalls).
func (r *Registry) DeterministicDigest(exclude ...string) uint64 {
	skip := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		skip[n] = true
	}
	snap := r.Snapshot()
	f := fnv.New64a()
	line := func(kind, name string, v uint64) {
		fmt.Fprintf(f, "%s %s %d\n", kind, name, v)
	}
	for _, name := range sortedKeys(snap.Counters) {
		if !skip[name] {
			line("c", name, snap.Counters[name])
		}
	}
	for _, name := range sortedKeys(snap.Gauges) {
		if !skip[name] {
			line("g", name, uint64(snap.Gauges[name]))
		}
	}
	for _, name := range sortedKeys(snap.Histograms) {
		if !skip[name] {
			line("h", name, snap.Histograms[name].Count)
		}
	}
	return f.Sum64()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format, instruments sorted by name. Metric names may carry an inline
// label set ("scan_changes_total{kind=\"added\"}"); the base name (before
// '{') groups the TYPE comment.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var lastBase string
	typeLine := func(name, kind string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base != lastBase {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, kind)
			lastBase = base
		}
	}
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	names = append(names, sortedKeys(snap.Counters)...)
	names = append(names, sortedKeys(snap.Gauges)...)
	names = append(names, sortedKeys(snap.Histograms)...)
	sort.Strings(names)
	for _, name := range names {
		if v, ok := snap.Counters[name]; ok {
			typeLine(name, "counter")
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
				return err
			}
			continue
		}
		if v, ok := snap.Gauges[name]; ok {
			typeLine(name, "gauge")
			if _, err := fmt.Fprintf(w, "%s %d\n", name, v); err != nil {
				return err
			}
			continue
		}
		h := snap.Histograms[name]
		typeLine(name, "histogram")
		// Buckets carry OpenMetrics-style exemplars when recorded: the
		// worst correlated observation each bucket has seen, so a scrape
		// can name the exact query behind a tail bucket.
		exemplar := func(i int) string {
			if ex, ok := h.BucketExemplar(i); ok {
				return fmt.Sprintf(" # {corr=\"%016x\"} %g", ex.Corr, ex.Value)
			}
			return ""
		}
		cum := uint64(0)
		for i, ub := range h.Buckets {
			cum += h.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d%s\n", name, ub, cum, exemplar(i))
		}
		cum += h.Overflow
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d%s\n", name, cum, exemplar(len(h.Buckets)))
		fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum)
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry as a single expvar-style JSON object:
// counters and gauges as numbers, histograms as objects carrying count,
// sum and the estimated p50/p95/p99. Keys are sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms))
	names = append(names, sortedKeys(snap.Counters)...)
	names = append(names, sortedKeys(snap.Gauges)...)
	names = append(names, sortedKeys(snap.Histograms)...)
	sort.Strings(names)
	if _, err := io.WriteString(w, "{"); err != nil {
		return err
	}
	for i, name := range names {
		if i > 0 {
			io.WriteString(w, ",")
		}
		fmt.Fprintf(w, "\n  %q: ", name)
		switch {
		case hasKey(snap.Counters, name):
			fmt.Fprintf(w, "%d", snap.Counters[name])
		case hasKey(snap.Gauges, name):
			fmt.Fprintf(w, "%d", snap.Gauges[name])
		default:
			h := snap.Histograms[name]
			fmt.Fprintf(w, `{"count": %d, "sum": %g, "p50": %g, "p95": %g, "p99": %g}`,
				h.Count, h.Sum, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
		}
	}
	_, err := io.WriteString(w, "\n}\n")
	return err
}

func hasKey[V any](m map[string]V, k string) bool {
	_, ok := m[k]
	return ok
}
