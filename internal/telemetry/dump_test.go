package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestExporterDumpEndpoint covers WithExporterDump's lifecycle: 204 via
// the empty func before any entry exists, then 200 with the configured
// content type and the writer's output once the producer has data.
func TestExporterDumpEndpoint(t *testing.T) {
	var lines []string
	h := NewExporter(NewRegistry(),
		WithExporterDump("/querylog", "application/x-ndjson",
			func(w io.Writer) error {
				for _, l := range lines {
					fmt.Fprintln(w, l)
				}
				return nil
			},
			func() bool { return len(lines) == 0 }),
	).Handler()

	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/querylog", nil))
		return rec
	}
	if rec := get(); rec.Code != http.StatusNoContent {
		t.Fatalf("empty dump: status %d, want 204", rec.Code)
	}
	lines = []string{`{"corr":"00000000000000aa"}`, `{"corr":"00000000000000ab"}`}
	rec := get()
	if rec.Code != http.StatusOK {
		t.Fatalf("dump: status %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if got := rec.Body.String(); got != lines[0]+"\n"+lines[1]+"\n" {
		t.Fatalf("dump body %q", got)
	}
}

func TestExporterAddr(t *testing.T) {
	e := NewExporter(NewRegistry())
	if e.Addr() != "" {
		t.Fatalf("addr before start: %q", e.Addr())
	}
	bound, err := e.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Addr() != bound || !strings.HasPrefix(bound, "127.0.0.1:") {
		t.Fatalf("addr %q, start returned %q", e.Addr(), bound)
	}
}

// TestQuantileExemplarFallback covers the lookup's edge paths: the
// quantile bucket itself has an exemplar, the quantile bucket is empty
// of exemplars so the nearest lower one answers, and no bucket has any.
func TestQuantileExemplarFallback(t *testing.T) {
	bounds := []float64{0.1, 1, 10}
	reg := NewRegistry()

	h := reg.Histogram("hist_fallback_seconds", bounds)
	// Bulk of mass (with an exemplar) in bucket 0; the p99 rank lands in
	// bucket 2, which only saw plain Observes — the fallback must walk
	// down to bucket 0's exemplar.
	for i := 0; i < 99; i++ {
		h.ObserveExemplar(0.05, 7)
	}
	h.Observe(5)
	h.Observe(5)
	ex, ok := h.Snapshot().QuantileExemplar(0.99)
	if !ok || ex.Corr != 7 {
		t.Fatalf("fallback exemplar = %+v, %v; want corr 7", ex, ok)
	}

	// Direct hit: the p99 bucket has its own exemplar.
	h2 := reg.Histogram("hist_direct_seconds", bounds)
	for i := 0; i < 99; i++ {
		h2.ObserveExemplar(0.05, 7)
	}
	h2.ObserveExemplar(5, 9)
	h2.ObserveExemplar(5, 9)
	if ex, ok := h2.Snapshot().QuantileExemplar(0.99); !ok || ex.Corr != 9 {
		t.Fatalf("direct exemplar = %+v, %v; want corr 9", ex, ok)
	}

	// No exemplars anywhere (plain Observe, and corr 0 never claims one).
	h3 := reg.Histogram("hist_none_seconds", bounds)
	h3.Observe(0.05)
	h3.ObserveExemplar(0.2, 0)
	if _, ok := h3.Snapshot().QuantileExemplar(0.99); ok {
		t.Fatal("exemplar reported with none recorded")
	}
	if _, ok := (HistogramSnapshot{}).QuantileExemplar(0.5); ok {
		t.Fatal("exemplar reported for empty snapshot")
	}

	// Overflow observations exemplar into the +Inf slot.
	h4 := reg.Histogram("hist_over_seconds", bounds)
	h4.ObserveExemplar(100, 13)
	s := h4.Snapshot()
	if ex, ok := s.BucketExemplar(len(bounds)); !ok || ex.Corr != 13 {
		t.Fatalf("overflow exemplar = %+v, %v; want corr 13", ex, ok)
	}
	if ex, ok := s.QuantileExemplar(0.99); !ok || ex.Corr != 13 {
		t.Fatalf("overflow quantile exemplar = %+v, %v; want corr 13", ex, ok)
	}
	if h4.Count() != 1 || h4.Sum() != 100 {
		t.Fatalf("count %d sum %g, want 1 and 100", h4.Count(), h4.Sum())
	}
}
