package dnsclient

import (
	"net"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
)

// tcpTestServer starts a server on loopback UDP+TCP with one populated
// zone and returns the client plus the zone.
func tcpTestServer(t *testing.T, records int, allowTransfer bool) (*UDPClient, *dnsserver.Zone, *dnsserver.Server) {
	t.Helper()
	srv := dnsserver.NewServer()
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
	srv.AddZone(zone)
	srv.SetTransferPolicy(allowTransfer)
	for i := 0; i < records; i++ {
		ip := dnswire.MustPrefix("192.0.2.0/24").Nth(i + 1)
		name, err := dnswire.MustName("dyn.campus.edu").Prepend(
			strings.Repeat("x", 10) + ip.String()[len("192.0.2."):])
		if err != nil {
			t.Fatal(err)
		}
		zone.SetPTR(dnswire.ReverseName(ip), name)
	}

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	t.Cleanup(func() { udpConn.Close() })
	go srv.Serve(udpConn)

	// TCP on the same port number is not guaranteed free; bind TCP first
	// on its own port and point the client at it for stream operations.
	// The client uses one Server address, so bind TCP to the UDP port.
	addr := udpConn.LocalAddr().(*net.UDPAddr)
	tcpLn, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Skipf("no loopback TCP on %v: %v", addr, err)
	}
	t.Cleanup(func() { tcpLn.Close() })
	go srv.ServeTCP(tcpLn)

	client := &UDPClient{Server: addr.String(), Timeout: 3 * time.Second, Retries: 1}
	return client, zone, srv
}

func TestLookupTCP(t *testing.T) {
	client, zone, _ := tcpTestServer(t, 1, false)
	ip := dnswire.MustPrefix("192.0.2.0/24").Nth(1)
	resp, err := client.LookupTCP(dnswire.Question{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR, Class: dnswire.ClassIN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %v", resp.Outcome)
	}
	if _, ok := zone.LookupPTR(dnswire.ReverseName(ip)); !ok {
		t.Fatal("test setup broken")
	}
}

func TestTruncationAndTCPFallback(t *testing.T) {
	// An ANY query over a name with... simpler: craft a zone whose apex
	// NS answer fits but whose PTR name is long; single PTR answers fit
	// in 512 bytes easily, so exercise truncation through AXFR-sized
	// synthetic data instead: query type ANY at a name holding a PTR
	// whose message stays small — instead verify TC behaviour directly
	// with a large TXT record.
	client, zone, _ := tcpTestServer(t, 1, false)
	_ = zone
	// Direct check of HandleQueryUDP truncation is in the dnsserver
	// tests; here check LookupAuto end-to-end on a normal answer (no
	// truncation -> no TCP retry).
	ip := dnswire.MustPrefix("192.0.2.0/24").Nth(1)
	resp, viaTCP, err := client.LookupAuto(dnswire.Question{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR, Class: dnswire.ClassIN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaTCP {
		t.Fatal("small answer took the TCP path")
	}
	if resp.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %v", resp.Outcome)
	}
}

func TestZoneTransferEnumeratesZone(t *testing.T) {
	client, _, srv := tcpTestServer(t, 120, true)
	records, err := client.TransferZone(dnswire.MustName("2.0.192.in-addr.arpa"))
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 120 {
		t.Fatalf("transferred %d records, want 120", len(records))
	}
	for _, rr := range records {
		if rr.Type != dnswire.TypePTR {
			t.Fatalf("unexpected record type %v in transfer", rr.Type)
		}
	}
	if srv.Stats().Transfers != 1 {
		t.Fatalf("stats = %+v", srv.Stats())
	}
}

func TestZoneTransferRefusedByDefault(t *testing.T) {
	client, _, _ := tcpTestServer(t, 5, false)
	if _, err := client.TransferZone(dnswire.MustName("2.0.192.in-addr.arpa")); err == nil {
		t.Fatal("transfer succeeded despite policy")
	}
}

func TestZoneTransferUnknownZone(t *testing.T) {
	client, _, _ := tcpTestServer(t, 5, true)
	if _, err := client.TransferZone(dnswire.MustName("9.9.9.in-addr.arpa")); err == nil {
		t.Fatal("transfer of unknown zone succeeded")
	}
}

func TestAXFROverUDPRefused(t *testing.T) {
	client, _, _ := tcpTestServer(t, 5, true)
	resp, err := client.Lookup(dnswire.Question{
		Name: dnswire.MustName("2.0.192.in-addr.arpa"), Type: dnswire.TypeAXFR,
		Class: dnswire.ClassIN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeRefused {
		t.Fatalf("outcome = %v, want REFUSED for AXFR over UDP", resp.Outcome)
	}
}
