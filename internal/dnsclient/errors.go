package dnsclient

import (
	"context"
	"fmt"

	"rdnsprivacy/internal/dnswire"
)

// ErrorKind classifies a typed resolution error.
type ErrorKind int

// Error kinds, mirroring the outcome taxonomy.
const (
	// KindTimeout: every attempt went unanswered.
	KindTimeout ErrorKind = iota
	// KindServFail: the server reported a failure.
	KindServFail
	// KindNXDomain: authoritative denial — the name does not exist.
	KindNXDomain
	// KindNoData: the name exists but carries no record of the type asked.
	KindNoData
	// KindRefused: the server does not serve the zone.
	KindRefused
	// KindMalformed: the response could not be parsed or did not match
	// the question.
	KindMalformed
	// KindCanceled: the lookup's context was cancelled.
	KindCanceled
)

// String returns a mnemonic.
func (k ErrorKind) String() string {
	switch k {
	case KindTimeout:
		return "timeout"
	case KindServFail:
		return "servfail"
	case KindNXDomain:
		return "nxdomain"
	case KindNoData:
		return "nodata"
	case KindRefused:
		return "refused"
	case KindMalformed:
		return "malformed"
	case KindCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("kind%d", int(k))
	}
}

// Sentinel errors for errors.Is matching. Each carries only a kind;
// errors.Is(err, ErrTimeout) holds for any *Error of that kind.
var (
	ErrTimeout   = &Error{Kind: KindTimeout}
	ErrServFail  = &Error{Kind: KindServFail}
	ErrNXDomain  = &Error{Kind: KindNXDomain}
	ErrNoData    = &Error{Kind: KindNoData}
	ErrRefused   = &Error{Kind: KindRefused}
	ErrMalformed = &Error{Kind: KindMalformed}
	ErrCanceled  = &Error{Kind: KindCanceled}
)

// Error is a typed resolution error. It replaces positional status-field
// checks: callers match kinds with errors.Is (against the sentinels above)
// or unpack details with errors.As.
type Error struct {
	// Kind classifies the failure.
	Kind ErrorKind
	// Question is what was asked, when known.
	Question dnswire.Question
	// Attempts is how many transmissions were made, when known.
	Attempts int
	// wrapped is an underlying cause (e.g. context.Canceled).
	wrapped error
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Question.Name != "" {
		return fmt.Sprintf("dnsclient: %s: %s", e.Question.Name, e.Kind)
	}
	return "dnsclient: " + e.Kind.String()
}

// Is matches any *Error of the same kind, so
// errors.Is(err, dnsclient.ErrTimeout) works regardless of the error's
// question and attempt details.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Kind == e.Kind
}

// Unwrap exposes the underlying cause; a KindCanceled error wraps the
// context's error so errors.Is(err, context.Canceled) (or
// context.DeadlineExceeded) also holds.
func (e *Error) Unwrap() error { return e.wrapped }

// RetryableFault reports whether the failure is transient and worth
// retrying: timeouts and server-side failures. Authoritative denials,
// refusals, malformed responses, and cancellations are not. The scan
// engine's resilience layer keys its retry policy off this method
// (scanengine cannot import dnsclient without a cycle, so the contract is
// structural).
func (e *Error) RetryableFault() bool {
	return e.Kind == KindTimeout || e.Kind == KindServFail
}

// ThrottleFault reports whether the failure looks like rate limiting:
// REFUSED is the in-band signal name servers use to shed scanner load.
// The resilience layer's adaptive rate control slows down when it sees
// these.
func (e *Error) ThrottleFault() bool {
	return e.Kind == KindRefused
}

// Err converts the response outcome to a typed error. Successful lookups
// return nil. Note that for reverse-tree measurement NXDOMAIN and NODATA
// are the record-absent signal, not failures — scan-layer consumers should
// branch on the outcome (or scanengine.Result.Absent) rather than treating
// every non-nil Err as a retryable fault.
func (r Response) Err() error {
	var kind ErrorKind
	switch r.Outcome {
	case OutcomeSuccess:
		return nil
	case OutcomeNXDomain:
		kind = KindNXDomain
	case OutcomeNoData:
		kind = KindNoData
	case OutcomeServFail:
		kind = KindServFail
	case OutcomeRefused:
		kind = KindRefused
	case OutcomeTimeout:
		kind = KindTimeout
	case OutcomeCanceled:
		cause := r.Cause
		if cause == nil {
			cause = context.Canceled
		}
		return &Error{Kind: KindCanceled, Question: r.Question, Attempts: r.Attempts, wrapped: cause}
	default:
		kind = KindMalformed
	}
	return &Error{Kind: kind, Question: r.Question, Attempts: r.Attempts}
}
