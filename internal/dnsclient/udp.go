package dnsclient

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"time"

	"rdnsprivacy/internal/dnswire"
)

// UDPClient is a small synchronous DNS client over real UDP sockets, used by
// the command-line tools to query servers started with cmd/simnet (or any
// other DNS server).
type UDPClient struct {
	// Server is the "host:port" of the name server.
	Server string
	// Timeout is the per-attempt read deadline. Default 2s.
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout.
	Retries int
}

// LookupPTR performs a synchronous PTR lookup for ip.
func (c *UDPClient) LookupPTR(ip dnswire.IPv4) (Response, error) {
	return c.Lookup(dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	})
}

// LookupPTRContext is LookupPTR honoring ctx between attempts.
func (c *UDPClient) LookupPTRContext(ctx context.Context, ip dnswire.IPv4) (Response, error) {
	return c.LookupContext(ctx, dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	})
}

// Lookup performs a synchronous lookup of q against c.Server.
func (c *UDPClient) Lookup(q dnswire.Question) (Response, error) {
	return c.LookupContext(context.Background(), q)
}

// LookupContext performs a synchronous lookup of q against c.Server. A
// cancelled ctx ends the retry loop immediately — cancellation is never
// counted as one more retryable timeout — and the returned error wraps
// ctx.Err().
func (c *UDPClient) LookupContext(ctx context.Context, q dnswire.Question) (Response, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	if err := ctx.Err(); err != nil {
		return Response{Question: q, Outcome: OutcomeCanceled, When: time.Now(), Cause: err},
			&Error{Kind: KindCanceled, Question: q, wrapped: err}
	}
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return Response{}, fmt.Errorf("dnsclient: dial: %w", err)
	}
	defer conn.Close()
	// A cancellation mid-read unblocks the socket by moving its deadline.
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() {
			conn.SetReadDeadline(time.Unix(0, 0))
		})
		defer stop()
	}

	id := uint16(rand.Intn(1 << 16))
	wire, err := dnswire.NewQuery(id, q.Name, q.Type).Marshal()
	if err != nil {
		return Response{}, fmt.Errorf("dnsclient: marshal: %w", err)
	}
	started := time.Now()
	attempts := 0
	buf := make([]byte, 4096)
	for attempts <= c.Retries {
		attempts++
		if _, err := conn.Write(wire); err != nil {
			return Response{}, fmt.Errorf("dnsclient: write: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(timeout))
		n, err := conn.Read(buf)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				return Response{
						Question: q, Outcome: OutcomeCanceled, Attempts: attempts,
						RTT: time.Since(started), When: time.Now(), Cause: cerr,
					},
					&Error{Kind: KindCanceled, Question: q, Attempts: attempts, wrapped: cerr}
			}
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return Response{}, fmt.Errorf("dnsclient: read: %w", err)
		}
		msg, err := dnswire.Unmarshal(buf[:n])
		if err != nil || !msg.Header.Response || msg.Header.ID != id {
			return Response{
				Question: q, Outcome: OutcomeMalformed,
				Attempts: attempts, RTT: time.Since(started), When: time.Now(),
			}, nil
		}
		now := time.Now()
		return classify(q, msg, attempts, now.Sub(started), now), nil
	}
	return Response{
		Question: q, Outcome: OutcomeTimeout,
		Attempts: attempts, RTT: time.Since(started), When: time.Now(),
	}, nil
}
