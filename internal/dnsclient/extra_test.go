package dnsclient

import (
	"context"
	"net"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
)

func TestResolverClose(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	if err := env.res.Close(); err != nil {
		t.Fatal(err)
	}
	// The bind address is reusable after close.
	if _, err := New(env.fab, Config{Bind: clientAddr, Server: serverAddr}); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestLookupAutoFallsBackToTCPOnTruncation(t *testing.T) {
	old := dnsserver.MaxUDPResponse
	dnsserver.MaxUDPResponse = 60
	defer func() { dnsserver.MaxUDPResponse = old }()

	srv := dnsserver.NewServer()
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
	srv.AddZone(zone)
	ip := dnswire.MustIPv4("192.0.2.10")
	zone.SetPTR(dnswire.ReverseName(ip),
		dnswire.MustName("quite-a-long-device-hostname-label.dyn.campus-a.edu"))

	udpConn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer udpConn.Close()
	go srv.Serve(udpConn)
	addr := udpConn.LocalAddr().(*net.UDPAddr)
	tcpLn, err := net.Listen("tcp", addr.String())
	if err != nil {
		t.Skipf("no loopback TCP: %v", err)
	}
	defer tcpLn.Close()
	go srv.ServeTCP(tcpLn)

	client := &UDPClient{Server: addr.String(), Timeout: 2 * time.Second, Retries: 1}
	resp, viaTCP, err := client.LookupAuto(dnswire.Question{
		Name: dnswire.ReverseName(ip), Type: dnswire.TypePTR, Class: dnswire.ClassIN,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !viaTCP {
		t.Fatal("truncated answer did not trigger TCP fallback")
	}
	if resp.Outcome != OutcomeSuccess ||
		resp.PTR != dnswire.MustName("quite-a-long-device-hostname-label.dyn.campus-a.edu") {
		t.Fatalf("resp = %v %q", resp.Outcome, resp.PTR)
	}
}

func TestScanPTRAfterDisplacement(t *testing.T) {
	// Saturate the 16-bit ID space so wraps occur; every lookup must
	// still complete exactly once (the displaced ones as timeouts).
	env := newEnv(t, Config{Timeout: time.Hour}, fabric.Config{LossRate: 1.0, Seed: 3})
	const n = 70000
	done := 0
	for i := 0; i < n; i++ {
		env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(Response) { done++ })
	}
	// All queries are in flight (loss eats them); the oldest ~4.5k were
	// displaced by ID wrap and already completed.
	if done != n-65536 {
		t.Fatalf("done = %d, want %d displaced completions", done, n-65536)
	}
}
