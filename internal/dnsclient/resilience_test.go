package dnsclient

import (
	"context"
	"errors"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
)

// waitResponse waits (in real time) for the async done callback, advancing
// nothing: used where completion comes from the context watch goroutine
// rather than from a clock event.
func waitResponse(t *testing.T, ch <-chan Response) Response {
	t.Helper()
	select {
	case r := <-ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("lookup never completed")
		return Response{}
	}
}

// TestCancellationDuringRetryReturnsImmediately is the regression test for
// the retry loop counting context cancellation as one more retryable
// timeout. A lookup against a black-holing server is cancelled mid-retry:
// it must complete with OutcomeCanceled wrapping ctx.Err() right away, not
// burn through the remaining retry budget and report OutcomeTimeout.
func TestCancellationDuringRetryReturnsImmediately(t *testing.T) {
	env := newEnv(t, Config{Timeout: 100 * time.Millisecond, Retries: 8}, fabric.Config{})
	env.server.SetFailureMode(dnsserver.FailureMode{DropRate: 1.0, Seed: 1})

	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan Response, 1)
	env.res.LookupPTR(ctx, dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch <- r })

	// Let two attempts time out so the query is genuinely mid-retry.
	env.clock.Advance(250 * time.Millisecond)
	select {
	case r := <-ch:
		t.Fatalf("completed before cancel: %+v", r)
	default:
	}
	cancel()
	got := waitResponse(t, ch)
	if got.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v, want CANCELED", got.Outcome)
	}
	if !errors.Is(got.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want errors.Is(..., context.Canceled)", got.Err())
	}
	if !errors.Is(got.Err(), ErrCanceled) {
		t.Fatalf("Err() = %v, want errors.Is(..., ErrCanceled)", got.Err())
	}
	if got.Attempts >= 8 {
		t.Fatalf("attempts = %d: cancellation burned through the retry budget", got.Attempts)
	}

	// No further retransmissions after cancellation.
	before := env.res.Stats()
	env.clock.Advance(5 * time.Second)
	after := env.res.Stats()
	if after.Retransmit != before.Retransmit {
		t.Fatalf("retransmitted after cancel: %d -> %d", before.Retransmit, after.Retransmit)
	}
	if after.Timeout != 0 {
		t.Fatalf("cancellation counted as timeout: %d", after.Timeout)
	}
	if after.Canceled != 1 {
		t.Fatalf("Canceled = %d, want 1", after.Canceled)
	}
}

// TestCancellationBeforeStartReturnsWrappedErr covers the already-cancelled
// path: done must fire with the wrapped context error without any
// transmission.
func TestCancellationBeforeStartReturnsWrappedErr(t *testing.T) {
	env := newEnv(t, Config{Timeout: 100 * time.Millisecond}, fabric.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch := make(chan Response, 1)
	env.res.LookupPTR(ctx, dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch <- r })
	got := waitResponse(t, ch)
	if got.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v", got.Outcome)
	}
	if !errors.Is(got.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want wrapped context.Canceled", got.Err())
	}
	if got.Attempts != 0 {
		t.Fatalf("attempts = %d, want 0", got.Attempts)
	}
}

// TestBackoffSpacesRetransmissions checks the full-jitter schedule: with
// backoff enabled a timed-out attempt is NOT retransmitted at the timeout
// instant; it happens within the backoff window, and the lookup still
// exhausts its full attempt budget.
func TestBackoffSpacesRetransmissions(t *testing.T) {
	env := newEnv(t, Config{
		Timeout:     50 * time.Millisecond,
		Retries:     2,
		BackoffBase: 80 * time.Millisecond,
		Seed:        7,
	}, fabric.Config{})
	env.server.SetFailureMode(dnsserver.FailureMode{DropRate: 1.0, Seed: 1})

	ch := make(chan Response, 1)
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch <- r })

	// Immediately after the first timeout no retransmission may have
	// happened yet — with immediate-retry semantics Retransmit would
	// already be 1 here.
	env.clock.Advance(50 * time.Millisecond)
	if got := env.res.Stats().Retransmit; got != 0 {
		t.Fatalf("retransmitted at the timeout instant despite backoff (Retransmit=%d)", got)
	}
	// Window for attempt 1 is [0, 160ms): after advancing past it the
	// retry must have gone out.
	env.clock.Advance(160 * time.Millisecond)
	if got := env.res.Stats().Retransmit; got != 1 {
		t.Fatalf("Retransmit = %d after first backoff window, want 1", got)
	}
	// Let the rest of the schedule play out.
	env.clock.Advance(5 * time.Second)
	got := waitResponse(t, ch)
	if got.Outcome != OutcomeTimeout {
		t.Fatalf("outcome = %v, want TIMEOUT", got.Outcome)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", got.Attempts)
	}
}

// TestBackoffScheduleDeterministicAcrossSeeds: identical seeds give
// identical completion times; the schedule replays bit-identically.
func TestBackoffScheduleDeterministicAcrossSeeds(t *testing.T) {
	run := func() time.Duration {
		env := newEnv(t, Config{
			Timeout:     50 * time.Millisecond,
			Retries:     3,
			BackoffBase: 40 * time.Millisecond,
			Seed:        99,
		}, fabric.Config{})
		env.server.SetFailureMode(dnsserver.FailureMode{DropRate: 1.0, Seed: 1})
		ch := make(chan Response, 1)
		env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch <- r })
		env.clock.Advance(30 * time.Second)
		got := waitResponse(t, ch)
		return got.RTT
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
}

// TestServFailRetryExhaustsBudget: with the policy on, SERVFAIL responses
// consume the retry budget like timeouts and the final outcome is still
// SERVFAIL when the server never recovers.
func TestServFailRetryExhaustsBudget(t *testing.T) {
	env := newEnv(t, Config{
		Timeout:       100 * time.Millisecond,
		Retries:       2,
		RetryServFail: true,
	}, fabric.Config{})
	env.server.SetFailureMode(dnsserver.FailureMode{ServFailRate: 1.0, Seed: 3})
	ch := make(chan Response, 1)
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch <- r })
	env.clock.Advance(5 * time.Second)
	got := waitResponse(t, ch)
	if got.Outcome != OutcomeServFail {
		t.Fatalf("outcome = %v, want SERVFAIL", got.Outcome)
	}
	if got.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (retries consumed)", got.Attempts)
	}
	// Policy off: a SERVFAIL completes on the first attempt.
	env2 := newEnv(t, Config{Timeout: 100 * time.Millisecond, Retries: 2}, fabric.Config{})
	env2.server.SetFailureMode(dnsserver.FailureMode{ServFailRate: 1.0, Seed: 3})
	ch2 := make(chan Response, 1)
	env2.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { ch2 <- r })
	env2.clock.Advance(time.Second)
	got2 := waitResponse(t, ch2)
	if got2.Outcome != OutcomeServFail || got2.Attempts != 1 {
		t.Fatalf("without policy: outcome=%v attempts=%d, want SERVFAIL/1", got2.Outcome, got2.Attempts)
	}
}

// TestServFailRetryRecovers: against a partial SERVFAIL rate a retried
// query can succeed where a single-shot one fails — the point of treating
// SERVFAIL as a transient, retryable fault. The seed loop keeps the test
// black-box with respect to the server's decision hash.
func TestServFailRetryRecovers(t *testing.T) {
	ip := dnswire.MustIPv4("192.0.2.10")
	for seed := int64(0); seed < 64; seed++ {
		env := newEnv(t, Config{
			Timeout:       100 * time.Millisecond,
			Retries:       3,
			RetryServFail: true,
		}, fabric.Config{})
		env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))
		env.server.SetFailureMode(dnsserver.FailureMode{ServFailRate: 0.5, Seed: seed})
		ch := make(chan Response, 1)
		env.res.LookupPTR(context.Background(), ip, func(r Response) { ch <- r })
		env.clock.Advance(5 * time.Second)
		got := waitResponse(t, ch)
		if got.Outcome == OutcomeSuccess && got.Attempts > 1 {
			return // recovered via retry
		}
	}
	t.Fatal("no seed in [0,64) produced a SERVFAIL followed by a successful retry")
}

// TestRetryableFaultClassification pins the structural contract the scan
// engine's resilience layer depends on: timeouts and SERVFAILs retry,
// REFUSED throttles, authoritative answers and cancellations do neither.
func TestRetryableFaultClassification(t *testing.T) {
	cases := []struct {
		kind      ErrorKind
		retryable bool
		throttle  bool
	}{
		{KindTimeout, true, false},
		{KindServFail, true, false},
		{KindRefused, false, true},
		{KindNXDomain, false, false},
		{KindNoData, false, false},
		{KindMalformed, false, false},
		{KindCanceled, false, false},
	}
	for _, tc := range cases {
		e := &Error{Kind: tc.kind}
		if e.RetryableFault() != tc.retryable {
			t.Errorf("%v: RetryableFault() = %v, want %v", tc.kind, e.RetryableFault(), tc.retryable)
		}
		if e.ThrottleFault() != tc.throttle {
			t.Errorf("%v: ThrottleFault() = %v, want %v", tc.kind, e.ThrottleFault(), tc.throttle)
		}
	}
}

// TestUDPLookupContextCancellation: the synchronous client's retry loop
// must also exit immediately on cancellation with a wrapped ctx error.
func TestUDPLookupContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &UDPClient{Server: "127.0.0.1:1", Timeout: 50 * time.Millisecond, Retries: 5}
	resp, err := c.LookupPTRContext(ctx, dnswire.MustIPv4("192.0.2.10"))
	if resp.Outcome != OutcomeCanceled {
		t.Fatalf("outcome = %v, want CANCELED", resp.Outcome)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}
