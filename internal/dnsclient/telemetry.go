package dnsclient

import (
	"rdnsprivacy/internal/telemetry"
)

// Metric names the resolver registers when telemetry is configured. The
// per-outcome counters carry the outcome mnemonic as an inline label, so
// the Prometheus exposition groups them as one family.
const (
	// MetricQueries counts lookups started (rate-limit delay included).
	MetricQueries = "dnsclient_queries_total"
	// MetricRetransmits counts retransmissions (attempts after the first).
	MetricRetransmits = "dnsclient_retransmits_total"
	// MetricBackoffSleeps counts retries that waited a backoff delay
	// instead of retransmitting immediately.
	MetricBackoffSleeps = "dnsclient_backoff_sleeps_total"
	// MetricAttemptSeconds is the completed-lookup latency histogram
	// (first transmission to completion, i.e. Response.RTT).
	MetricAttemptSeconds = "dnsclient_attempt_seconds"
	// metricOutcomePrefix prefixes the per-outcome counters:
	// dnsclient_outcomes_total{outcome="NXDOMAIN"} etc.
	metricOutcomePrefix = `dnsclient_outcomes_total{outcome="`
)

// MetricOutcome returns the counter name for one outcome class.
func MetricOutcome(o Outcome) string {
	return metricOutcomePrefix + o.String() + `"}`
}

// clientMetrics holds the resolver's pre-resolved instrument handles;
// the pointer is nil when telemetry is off.
type clientMetrics struct {
	queries, retransmits, backoffSleeps *telemetry.Counter
	outcomes                            [OutcomeCanceled + 1]*telemetry.Counter
	attemptSeconds                      *telemetry.Histogram
}

func newClientMetrics(sink telemetry.Sink) *clientMetrics {
	m := &clientMetrics{
		queries:        sink.Counter(MetricQueries),
		retransmits:    sink.Counter(MetricRetransmits),
		backoffSleeps:  sink.Counter(MetricBackoffSleeps),
		attemptSeconds: sink.Histogram(MetricAttemptSeconds, telemetry.DefaultLatencyBuckets()),
	}
	for o := OutcomeSuccess; o <= OutcomeCanceled; o++ {
		m.outcomes[o] = sink.Counter(MetricOutcome(o))
	}
	return m
}

// countOutcome ticks the per-outcome counter and the latency histogram
// for one completed lookup. Safe on a nil receiver.
func (m *clientMetrics) countOutcome(resp Response) {
	if m == nil {
		return
	}
	if o := resp.Outcome; o >= 0 && int(o) < len(m.outcomes) {
		m.outcomes[o].Inc()
	}
	m.attemptSeconds.Observe(resp.RTT.Seconds())
}

// WithTelemetry registers the resolver's instruments in sink: query and
// retransmission counts, per-outcome fault-class counters matching the
// paper's taxonomy, backoff sleeps, and completed-lookup latency. Without
// it the resolver records nothing at zero cost.
func WithTelemetry(sink telemetry.Sink) Option {
	return func(c *Config) { c.Telemetry = sink }
}

// WithTracer makes the resolver emit one "attempt" span per transmission,
// carrying the cross-layer correlation ID telemetry.CorrID(seed, name,
// attempt); the same ID rides each datagram, so a traced fabric and
// server extend the chain (see docs/observability.md). Pair with WithSeed
// for replayable IDs. Without it correlation costs nothing.
func WithTracer(tr *telemetry.Tracer) Option {
	return func(c *Config) { c.Tracer = tr }
}
