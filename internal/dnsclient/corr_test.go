package dnsclient

import (
	"context"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/telemetry"
)

// chainFor buckets a tracer's spans by name for one correlation ID.
func chainFor(tr *telemetry.Tracer, corr uint64) map[string]int {
	counts := make(map[string]int)
	for _, sp := range tr.Snapshot() {
		if sp.Corr == corr {
			counts[sp.Name]++
		}
	}
	return counts
}

func TestResolverTracerEmitsCausalChain(t *testing.T) {
	const seed = int64(77)
	env := newEnv(t, Config{Seed: seed}, fabric.Config{Latency: 5 * time.Millisecond})
	tr := telemetry.NewTracer(seed, 256)
	env.res.cfg.Tracer = tr
	env.fab.SetTracer(tr)
	env.server.SetTracer(tr)

	ip := dnswire.MustIPv4("192.0.2.10")
	env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("brians-iphone.dyn.example.edu"))

	var got *Response
	env.res.LookupPTR(context.Background(), ip, func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil || got.Outcome != OutcomeSuccess {
		t.Fatalf("lookup = %+v, want success", got)
	}

	corr := telemetry.CorrID(seed, string(dnswire.ReverseName(ip)), 1)
	chain := chainFor(tr, corr)
	if chain["attempt"] != 1 || chain["hop"] != 2 || chain["server"] != 1 {
		t.Fatalf("causal chain = %v, want attempt:1 hop:2 server:1", chain)
	}

	// The attempt span must end with the lookup outcome.
	for _, sp := range tr.Snapshot() {
		if sp.Corr == corr && sp.Name == "attempt" {
			last := sp.Events[len(sp.Events)-1]
			if last.Kind != "client" || last.Code != uint64(OutcomeSuccess) {
				t.Fatalf("attempt terminal event = %+v, want client/NOERROR", last)
			}
		}
	}
}

func TestResolverTracerPerAttemptCorr(t *testing.T) {
	const seed = int64(3)
	// Server drops everything: each attempt times out and retries draw
	// fresh correlation IDs.
	env := newEnv(t, Config{Seed: seed, Timeout: 100 * time.Millisecond, Retries: 2},
		fabric.Config{})
	env.server.SetFailureMode(dnsserver.FailureMode{DropRate: 1.0, Seed: 1})
	tr := telemetry.NewTracer(seed, 256)
	env.res.cfg.Tracer = tr

	ip := dnswire.MustIPv4("192.0.2.20")
	var got *Response
	env.res.LookupPTR(context.Background(), ip, func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil || got.Outcome != OutcomeTimeout || got.Attempts != 3 {
		t.Fatalf("lookup = %+v, want timeout after 3 attempts", got)
	}

	name := string(dnswire.ReverseName(ip))
	seen := make(map[uint64]bool)
	for attempt := 1; attempt <= 3; attempt++ {
		corr := telemetry.CorrID(seed, name, attempt)
		chain := chainFor(tr, corr)
		if chain["attempt"] != 1 {
			t.Fatalf("attempt %d: chain = %v, want one attempt span", attempt, chain)
		}
		if seen[corr] {
			t.Fatalf("attempt %d reused correlation ID %016x", attempt, corr)
		}
		seen[corr] = true
	}
	// All three attempt spans must have timed out.
	for _, sp := range tr.Snapshot() {
		if sp.Name != "attempt" {
			continue
		}
		last := sp.Events[len(sp.Events)-1]
		if last.Kind != "client" || last.Code != uint64(OutcomeTimeout) {
			t.Fatalf("attempt span terminal event = %+v, want client/TIMEOUT", last)
		}
	}
}

func TestServerSourceCorrelation(t *testing.T) {
	const seed = int64(9)
	srv := dnsserver.NewServer()
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
	srv.AddZone(zone)
	ip := dnswire.MustIPv4("192.0.2.10")
	zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("host.example.edu"))

	tr := telemetry.NewTracer(seed, 64)
	srv.SetTracer(tr)
	src := &ServerSource{Server: srv, Tracer: tr, Seed: seed}

	res := src.LookupPTR(context.Background(), ip)
	if !res.Found {
		t.Fatalf("result = %+v, want found", res)
	}
	wantCorr := telemetry.CorrID(seed, string(dnswire.ReverseName(ip)), 1)
	if res.Corr != wantCorr {
		t.Fatalf("result corr = %016x, want %016x", res.Corr, wantCorr)
	}
	chain := chainFor(tr, wantCorr)
	if chain["attempt"] != 1 || chain["server"] != 1 {
		t.Fatalf("in-process chain = %v, want attempt:1 server:1", chain)
	}

	// Without a tracer the source must not correlate.
	plain := &ServerSource{Server: srv}
	if res := plain.LookupPTR(context.Background(), ip); res.Corr != 0 {
		t.Fatalf("untraced source set corr %016x", res.Corr)
	}
}
