package dnsclient

import (
	"context"
	"net"
	"testing"
	"time"

	"rdnsprivacy/internal/dnsserver"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

var (
	epoch      = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)
	serverAddr = fabric.Addr{IP: dnswire.MustIPv4("192.0.2.53"), Port: 53}
	clientAddr = fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40001}
)

type testEnv struct {
	clock  *simclock.Simulated
	fab    *fabric.Fabric
	server *dnsserver.Server
	zone   *dnsserver.Zone
	res    *Resolver
}

func newEnv(t *testing.T, cfg Config, fcfg fabric.Config) *testEnv {
	t.Helper()
	clock := simclock.NewSimulated(epoch)
	fab := fabric.New(clock, fcfg)
	srv := dnsserver.NewServer()
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
	srv.AddZone(zone)
	if _, err := srv.AttachFabric(fab, serverAddr); err != nil {
		t.Fatal(err)
	}
	cfg.Bind = clientAddr
	cfg.Server = serverAddr
	res, err := New(fab, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{clock: clock, fab: fab, server: srv, zone: zone, res: res}
}

func TestLookupPTRSuccess(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{Latency: 5 * time.Millisecond})
	ip := dnswire.MustIPv4("192.0.2.10")
	env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("brians-iphone.dyn.example.edu"))

	var got *Response
	env.res.LookupPTR(context.Background(), ip, func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil {
		t.Fatal("lookup never completed")
	}
	if got.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %v", got.Outcome)
	}
	if got.PTR != dnswire.MustName("brians-iphone.dyn.example.edu") {
		t.Fatalf("PTR = %q", got.PTR)
	}
	if got.RTT != 10*time.Millisecond {
		t.Fatalf("RTT = %v, want 10ms", got.RTT)
	}
	if got.Attempts != 1 {
		t.Fatalf("attempts = %d", got.Attempts)
	}
}

func TestLookupPTRNXDomain(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	var got *Response
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.77"), func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil || got.Outcome != OutcomeNXDomain {
		t.Fatalf("got %+v, want NXDOMAIN", got)
	}
	if got.Outcome.IsError() {
		t.Fatal("NXDOMAIN must not classify as an error (it is the record-absent signal)")
	}
}

func TestLookupTimeoutAfterRetries(t *testing.T) {
	env := newEnv(t, Config{Timeout: time.Second, Retries: 2}, fabric.Config{LossRate: 1.0, Seed: 9})
	var got *Response
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { got = &r })
	env.clock.Advance(2 * time.Second)
	if got != nil {
		t.Fatalf("completed after %v despite retries pending", got.RTT)
	}
	env.clock.Advance(2 * time.Second)
	if got == nil {
		t.Fatal("lookup never timed out")
	}
	if got.Outcome != OutcomeTimeout || got.Attempts != 3 {
		t.Fatalf("got %+v, want timeout after 3 attempts", got)
	}
	if !got.Outcome.IsError() {
		t.Fatal("timeout must classify as an error")
	}
}

func TestRetryRecoversFromLoss(t *testing.T) {
	// 50% loss: with 4 retries the query should almost surely complete.
	env := newEnv(t, Config{Timeout: 500 * time.Millisecond, Retries: 4},
		fabric.Config{LossRate: 0.5, Seed: 7})
	ip := dnswire.MustIPv4("192.0.2.10")
	env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	var got *Response
	env.res.LookupPTR(context.Background(), ip, func(r Response) { got = &r })
	env.clock.Advance(time.Minute)
	if got == nil {
		t.Fatal("lookup never completed")
	}
	if got.Outcome != OutcomeSuccess {
		t.Fatalf("outcome = %v", got.Outcome)
	}
}

func TestLookupServFail(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	env.server.SetFailureMode(dnsserver.FailureMode{ServFailRate: 1.0})
	var got *Response
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.10"), func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil || got.Outcome != OutcomeServFail {
		t.Fatalf("got %+v, want SERVFAIL", got)
	}
}

func TestLookupRefusedOutOfZone(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	var got *Response
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("203.0.113.5"), func(r Response) { got = &r })
	env.clock.Advance(time.Second)
	if got == nil || got.Outcome != OutcomeRefused {
		t.Fatalf("got %+v, want REFUSED", got)
	}
}

func TestScanPTRCompleteAndClassified(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{Latency: time.Millisecond})
	prefix := dnswire.MustPrefix("192.0.2.0/24")
	// Populate every tenth address.
	for i := 0; i < 256; i += 10 {
		ip := prefix.Nth(i)
		env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	}
	var results []ScanResult
	doneCalled := false
	env.res.ScanPrefixPTR(context.Background(), prefix, func(sr ScanResult) { results = append(results, sr) },
		func() { doneCalled = true })
	env.clock.Advance(time.Minute)
	if !doneCalled {
		t.Fatal("scan never completed")
	}
	if len(results) != 256 {
		t.Fatalf("results = %d, want 256", len(results))
	}
	success, nx := 0, 0
	for _, sr := range results {
		switch sr.Response.Outcome {
		case OutcomeSuccess:
			success++
		case OutcomeNXDomain:
			nx++
		default:
			t.Fatalf("unexpected outcome %v for %v", sr.Response.Outcome, sr.IP)
		}
	}
	if success != 26 || nx != 230 {
		t.Fatalf("success=%d nx=%d, want 26/230", success, nx)
	}
}

func TestScanEmptySetCallsDone(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	done := false
	env.res.ScanPTR(context.Background(), nil, nil, func() { done = true })
	if !done {
		t.Fatal("done not called for empty scan")
	}
}

func TestRateLimiting(t *testing.T) {
	env := newEnv(t, Config{QueriesPerSecond: 10, Timeout: 100 * time.Millisecond}, fabric.Config{})
	ip := dnswire.MustIPv4("192.0.2.10")
	env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	done := 0
	for i := 0; i < 20; i++ {
		env.res.LookupPTR(context.Background(), ip, func(Response) { done++ })
	}
	env.clock.Advance(time.Second)
	if done >= 20 {
		t.Fatalf("all %d lookups done after 1s at 10 qps", done)
	}
	env.clock.Advance(2 * time.Second)
	if done != 20 {
		t.Fatalf("done = %d, want 20", done)
	}
}

func TestStatsAccounting(t *testing.T) {
	env := newEnv(t, Config{}, fabric.Config{})
	ip := dnswire.MustIPv4("192.0.2.10")
	env.zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("h.example.edu"))
	env.res.LookupPTR(context.Background(), ip, func(Response) {})
	env.res.LookupPTR(context.Background(), dnswire.MustIPv4("192.0.2.11"), func(Response) {})
	env.clock.Advance(time.Second)
	st := env.res.Stats()
	if st.Queries != 2 || st.Success != 1 || st.NXDomain != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOutcomeStrings(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeSuccess:   "NOERROR",
		OutcomeNXDomain:  "NXDOMAIN",
		OutcomeNoData:    "NODATA",
		OutcomeServFail:  "SERVFAIL",
		OutcomeRefused:   "REFUSED",
		OutcomeTimeout:   "TIMEOUT",
		OutcomeMalformed: "MALFORMED",
		Outcome(42):      "OUTCOME42",
	}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
}

func TestUDPClientAgainstRealServer(t *testing.T) {
	srv := dnsserver.NewServer()
	zone := dnsserver.NewZone(dnsserver.ZoneConfig{
		Origin:    dnswire.MustName("2.0.192.in-addr.arpa"),
		PrimaryNS: dnswire.MustName("ns1.example.edu"),
		Mbox:      dnswire.MustName("hostmaster.example.edu"),
	})
	srv.AddZone(zone)
	ip := dnswire.MustIPv4("192.0.2.10")
	zone.SetPTR(dnswire.ReverseName(ip), dnswire.MustName("brians-ipad.dyn.example.edu"))

	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback UDP: %v", err)
	}
	defer conn.Close()
	go srv.Serve(conn)

	client := &UDPClient{Server: conn.LocalAddr().String(), Timeout: 2 * time.Second, Retries: 1}
	resp, err := client.LookupPTR(ip)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeSuccess || resp.PTR != dnswire.MustName("brians-ipad.dyn.example.edu") {
		t.Fatalf("resp = %+v", resp)
	}
	// An absent record yields NXDOMAIN.
	resp, err = client.LookupPTR(dnswire.MustIPv4("192.0.2.11"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Outcome != OutcomeNXDomain {
		t.Fatalf("outcome = %v, want NXDOMAIN", resp.Outcome)
	}
}
