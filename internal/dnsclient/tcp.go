package dnsclient

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

// This file gives the synchronous client its stream capabilities: TCP
// retry after a truncated UDP answer, and AXFR zone transfers. An open
// transfer hands an observer the entire reverse zone — device names and
// all — in a single query; TransferZone is the attacker's (and auditor's)
// tool for checking that.

// LookupTCP performs one query over TCP (length-framed).
func (c *UDPClient) LookupTCP(q dnswire.Question) (Response, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Server, timeout)
	if err != nil {
		return Response{}, fmt.Errorf("dnsclient: dial tcp: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	id := uint16(rand.Intn(1 << 16))
	wire, err := dnswire.NewQuery(id, q.Name, q.Type).Marshal()
	if err != nil {
		return Response{}, err
	}
	started := time.Now()
	if err := writeFramed(conn, wire); err != nil {
		return Response{}, fmt.Errorf("dnsclient: write: %w", err)
	}
	respWire, err := readFramed(conn)
	if err != nil {
		return Response{}, fmt.Errorf("dnsclient: read: %w", err)
	}
	msg, err := dnswire.Unmarshal(respWire)
	if err != nil || !msg.Header.Response || msg.Header.ID != id {
		return Response{
			Question: q, Outcome: OutcomeMalformed,
			Attempts: 1, RTT: time.Since(started), When: time.Now(),
		}, nil
	}
	p := &pendingQuery{question: q, started: started, attempts: 1}
	fake := &Resolver{clock: simclock.Real{}}
	return fake.classify(p, msg), nil
}

// LookupAuto performs a UDP lookup and transparently retries over TCP when
// the server sets the TC (truncated) bit — standard resolver behaviour.
func (c *UDPClient) LookupAuto(q dnswire.Question) (Response, bool, error) {
	resp, err := c.lookupRaw(q)
	if err != nil {
		return Response{}, false, err
	}
	if !resp.truncated {
		return resp.Response, false, nil
	}
	full, err := c.LookupTCP(q)
	return full, true, err
}

// TransferZone performs an AXFR of the zone and returns every record
// between the opening and closing SOA. Servers with transfers disabled
// answer REFUSED, reported as an error.
func (c *UDPClient) TransferZone(zone dnswire.Name) ([]dnswire.Record, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", c.Server, timeout)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: dial tcp: %w", err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))

	id := uint16(rand.Intn(1 << 16))
	wire, err := dnswire.NewQuery(id, zone, dnswire.TypeAXFR).Marshal()
	if err != nil {
		return nil, err
	}
	if err := writeFramed(conn, wire); err != nil {
		return nil, fmt.Errorf("dnsclient: write: %w", err)
	}

	var records []dnswire.Record
	soaSeen := 0
	for soaSeen < 2 {
		respWire, err := readFramed(conn)
		if err != nil {
			return nil, fmt.Errorf("dnsclient: read: %w", err)
		}
		msg, err := dnswire.Unmarshal(respWire)
		if err != nil {
			return nil, fmt.Errorf("dnsclient: parse: %w", err)
		}
		if msg.Header.ID != id || !msg.Header.Response {
			return nil, fmt.Errorf("dnsclient: transfer response mismatch")
		}
		if msg.Header.RCode != dnswire.RCodeNoError {
			return nil, fmt.Errorf("dnsclient: transfer refused: %v", msg.Header.RCode)
		}
		for _, rr := range msg.Answers {
			if rr.Type == dnswire.TypeSOA {
				soaSeen++
				continue
			}
			records = append(records, rr)
		}
		if len(msg.Answers) == 0 {
			return nil, fmt.Errorf("dnsclient: empty transfer envelope")
		}
	}
	return records, nil
}

// lookupRaw is Lookup plus truncation visibility.
type rawResponse struct {
	Response
	truncated bool
}

func (c *UDPClient) lookupRaw(q dnswire.Question) (rawResponse, error) {
	timeout := c.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", c.Server)
	if err != nil {
		return rawResponse{}, fmt.Errorf("dnsclient: dial: %w", err)
	}
	defer conn.Close()

	id := uint16(rand.Intn(1 << 16))
	wire, err := dnswire.NewQuery(id, q.Name, q.Type).Marshal()
	if err != nil {
		return rawResponse{}, err
	}
	started := time.Now()
	attempts := 0
	buf := make([]byte, 4096)
	for attempts <= c.Retries {
		attempts++
		if _, err := conn.Write(wire); err != nil {
			return rawResponse{}, fmt.Errorf("dnsclient: write: %w", err)
		}
		conn.SetReadDeadline(time.Now().Add(timeout))
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return rawResponse{}, fmt.Errorf("dnsclient: read: %w", err)
		}
		msg, err := dnswire.Unmarshal(buf[:n])
		if err != nil || !msg.Header.Response || msg.Header.ID != id {
			return rawResponse{Response: Response{
				Question: q, Outcome: OutcomeMalformed,
				Attempts: attempts, RTT: time.Since(started), When: time.Now(),
			}}, nil
		}
		p := &pendingQuery{question: q, started: started, attempts: attempts}
		fake := &Resolver{clock: simclock.Real{}}
		return rawResponse{
			Response:  fake.classify(p, msg),
			truncated: msg.Header.Truncated,
		}, nil
	}
	return rawResponse{Response: Response{
		Question: q, Outcome: OutcomeTimeout,
		Attempts: attempts, RTT: time.Since(started), When: time.Now(),
	}}, nil
}

// readFramed and writeFramed implement RFC 1035 §4.2.2 stream framing.
func readFramed(r io.Reader) ([]byte, error) {
	var lenBuf [2]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint16(lenBuf[:])
	if n == 0 {
		return nil, fmt.Errorf("dnsclient: zero-length frame")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func writeFramed(w io.Writer, msg []byte) error {
	if len(msg) > 0xFFFF {
		return fmt.Errorf("dnsclient: message exceeds frame limit")
	}
	var lenBuf [2]byte
	binary.BigEndian.PutUint16(lenBuf[:], uint16(len(msg)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(msg)
	return err
}
