package dnsclient

import (
	"sync"

	"rdnsprivacy/internal/dnswire"
)

// ScanResult pairs a scanned address with its lookup response.
type ScanResult struct {
	IP       dnswire.IPv4
	Response Response
}

// ScanPTR looks up the PTR record for every address, massdns-style. each is
// invoked per completed lookup (in completion order) and done once at the
// end. Rate limiting and retries follow the resolver configuration.
func (r *Resolver) ScanPTR(ips []dnswire.IPv4, each func(ScanResult), done func()) {
	if len(ips) == 0 {
		if done != nil {
			done()
		}
		return
	}
	var mu sync.Mutex
	remaining := len(ips)
	for _, ip := range ips {
		ip := ip
		r.LookupPTR(ip, func(resp Response) {
			if each != nil {
				each(ScanResult{IP: ip, Response: resp})
			}
			mu.Lock()
			remaining--
			last := remaining == 0
			mu.Unlock()
			if last && done != nil {
				done()
			}
		})
	}
}

// ScanPrefixPTR scans every address in a prefix.
func (r *Resolver) ScanPrefixPTR(p dnswire.Prefix, each func(ScanResult), done func()) {
	n := p.NumAddresses()
	ips := make([]dnswire.IPv4, n)
	for i := 0; i < n; i++ {
		ips[i] = p.Nth(i)
	}
	r.ScanPTR(ips, each, done)
}
