package dnsclient

import (
	"context"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// defaultScanWindow bounds in-flight probes of the deprecated callback
// scanners when the resolver's Concurrency is unset.
const defaultScanWindow = 512

// ScanResult pairs a scanned address with its lookup response.
type ScanResult struct {
	IP       dnswire.IPv4
	Response Response
}

// ScanPTR looks up the PTR record for every address, massdns-style. each is
// invoked per completed lookup (in completion order) and done once at the
// end. Rate limiting and retries follow the resolver configuration; the
// in-flight window follows WithConcurrency.
//
// Deprecated: use scanengine.New with Resolver.AsyncSource (or a
// synchronous Source) and the context-aware Scanner API. This wrapper
// drives the engine's bounded-window sweep under the old callback shape.
func (r *Resolver) ScanPTR(ctx context.Context, ips []dnswire.IPv4, each func(ScanResult), done func()) {
	window := r.cfg.Concurrency
	if window <= 0 {
		window = defaultScanWindow
	}
	scanengine.SweepAsync(r.AsyncSource(ctx), ips, window, func(res scanengine.Result) {
		if each != nil {
			resp, _ := res.Meta.(Response)
			each(ScanResult{IP: res.IP, Response: resp})
		}
	}, done)
}

// ScanPrefixPTR scans every address in a prefix.
//
// Deprecated: use scanengine.New with the context-aware Scanner API.
func (r *Resolver) ScanPrefixPTR(ctx context.Context, p dnswire.Prefix, each func(ScanResult), done func()) {
	n := p.NumAddresses()
	ips := make([]dnswire.IPv4, n)
	for i := 0; i < n; i++ {
		ips[i] = p.Nth(i)
	}
	r.ScanPTR(ctx, ips, each, done)
}
