// Package dnsclient implements a zdns/massdns-style DNS scanning client.
//
// The paper's supplemental measurement queries the authoritative name server
// for each address directly, "to make sure we get a fresh answer (i.e., not
// from a cache)" (Section 6.1), and rate-limits those queries. This package
// reproduces that client: single lookups with retry and timeout handling,
// classification of outcomes (NOERROR, NXDOMAIN, server failure, timeout) —
// the error classes of Figure 6 — and a high-throughput concurrent scan
// engine used to take full-universe snapshots at OpenINTEL/Rapid7 cadence.
//
// The asynchronous engine runs against the simulation fabric; a small
// synchronous client over real UDP sockets (see UDPClient) serves the
// command-line tools.
package dnsclient

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
)

// Outcome classifies a completed lookup.
type Outcome int

// Outcome values. The paper's supplemental data distinguishes correct PTR
// responses from NXDOMAIN, name-server failure, and timeout (Section 6.1).
const (
	// OutcomeSuccess is a NOERROR answer containing the requested data.
	OutcomeSuccess Outcome = iota
	// OutcomeNXDomain is an authoritative denial: the name does not
	// exist. For reverse names this is the "record removed" signal.
	OutcomeNXDomain
	// OutcomeNoData is NOERROR without answers (name exists, no PTR).
	OutcomeNoData
	// OutcomeServFail is a server-side failure response.
	OutcomeServFail
	// OutcomeRefused means the server does not serve the zone.
	OutcomeRefused
	// OutcomeTimeout means every attempt went unanswered.
	OutcomeTimeout
	// OutcomeMalformed means the response could not be parsed or did not
	// match the question.
	OutcomeMalformed
	// OutcomeCanceled means the lookup's context was cancelled before a
	// usable response arrived.
	OutcomeCanceled
)

// String returns a mnemonic matching the paper's error taxonomy.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "NOERROR"
	case OutcomeNXDomain:
		return "NXDOMAIN"
	case OutcomeNoData:
		return "NODATA"
	case OutcomeServFail:
		return "SERVFAIL"
	case OutcomeRefused:
		return "REFUSED"
	case OutcomeTimeout:
		return "TIMEOUT"
	case OutcomeMalformed:
		return "MALFORMED"
	case OutcomeCanceled:
		return "CANCELED"
	default:
		return fmt.Sprintf("OUTCOME%d", int(o))
	}
}

// IsError reports whether the outcome is a resolution error in the paper's
// sense (Figure 6): server failure, timeout, or malformed. NXDOMAIN is NOT
// an error for reverse measurement — it is the record-absent signal.
func (o Outcome) IsError() bool {
	switch o {
	case OutcomeServFail, OutcomeTimeout, OutcomeMalformed, OutcomeRefused, OutcomeCanceled:
		return true
	}
	return false
}

// Response is the result of one lookup.
type Response struct {
	// Question is what was asked.
	Question dnswire.Question
	// Outcome classifies the result.
	Outcome Outcome
	// PTR is the PTR target for successful PTR lookups.
	PTR dnswire.Name
	// RCode is the response code, when a response arrived.
	RCode dnswire.RCode
	// RTT is the time from first transmission to completion.
	RTT time.Duration
	// Attempts is how many transmissions were made.
	Attempts int
	// When is the time the lookup completed.
	When time.Time
}

// Config tunes a Resolver.
//
// Deprecated: construct resolvers with NewResolver and functional options
// (WithBind, WithServer, WithTimeout, WithRetries, WithRate,
// WithConcurrency). Config survives as a shim for older call sites.
type Config struct {
	// Bind is the local fabric address for queries.
	Bind fabric.Addr
	// Server is the name server queried.
	Server fabric.Addr
	// Timeout is the per-attempt wait. Default 2s.
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout.
	// Default 2.
	Retries int
	// QueriesPerSecond caps transmission rate (token bucket); zero means
	// unlimited. The paper rate-limits "to reduce the impact of our
	// measurement on the DNS name servers" (Section 6.1).
	QueriesPerSecond int
	// Concurrency bounds the in-flight window of the deprecated ScanPTR
	// wrappers. Zero means the default (512).
	Concurrency int
}

// Resolver sends queries over a fabric and matches responses, handling
// retries and rate limiting. Create one with New.
type Resolver struct {
	fab   *fabric.Fabric
	clock simclock.Clock
	cfg   Config
	ep    *fabric.Endpoint

	mu       sync.Mutex
	nextID   uint16
	inflight map[uint16]*pendingQuery
	nextSlot time.Time
	stats    Stats
}

// Stats counts resolver activity by outcome.
type Stats struct {
	Queries    uint64
	Retransmit uint64
	Success    uint64
	NXDomain   uint64
	NoData     uint64
	ServFail   uint64
	Refused    uint64
	Timeout    uint64
	Malformed  uint64
	Canceled   uint64
}

type pendingQuery struct {
	question dnswire.Question
	wire     []byte
	started  time.Time
	attempts int
	timer    simclock.Timer
	ctxStop  func() bool // releases the context cancellation watch
	done     func(Response)
}

// New creates a resolver bound to cfg.Bind on fab.
//
// Deprecated: use NewResolver with functional options.
func New(fab *fabric.Fabric, cfg Config) (*Resolver, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	r := &Resolver{
		fab:      fab,
		clock:    fab.Clock(),
		cfg:      cfg,
		inflight: make(map[uint16]*pendingQuery),
	}
	ep, err := fab.Bind(cfg.Bind, r.handleResponse)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: %w", err)
	}
	r.ep = ep
	return r, nil
}

// Close releases the resolver's fabric endpoint.
func (r *Resolver) Close() error { return r.ep.Close() }

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// LookupPTR resolves the PTR record for ip, calling done exactly once.
// Cancelling ctx completes the lookup promptly with OutcomeCanceled.
func (r *Resolver) LookupPTR(ctx context.Context, ip dnswire.IPv4, done func(Response)) {
	r.Lookup(ctx, dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	}, done)
}

// Lookup resolves an arbitrary question, calling done exactly once.
// Cancelling ctx completes the lookup promptly with OutcomeCanceled.
func (r *Resolver) Lookup(ctx context.Context, q dnswire.Question, done func(Response)) {
	if ctx == nil {
		ctx = context.Background()
	}
	delay := r.reserveSlot()
	if delay <= 0 {
		r.start(ctx, q, done)
		return
	}
	r.clock.AfterFunc(delay, func() { r.start(ctx, q, done) })
}

func (r *Resolver) reserveSlot() time.Duration {
	if r.cfg.QueriesPerSecond <= 0 {
		return 0
	}
	interval := time.Second / time.Duration(r.cfg.QueriesPerSecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	if r.nextSlot.Before(now) {
		r.nextSlot = now
	}
	wait := r.nextSlot.Sub(now)
	r.nextSlot = r.nextSlot.Add(interval)
	return wait
}

func (r *Resolver) start(ctx context.Context, q dnswire.Question, done func(Response)) {
	if ctx.Err() != nil {
		r.mu.Lock()
		r.stats.Canceled++
		r.mu.Unlock()
		done(Response{Question: q, Outcome: OutcomeCanceled, When: r.clock.Now()})
		return
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	msg := dnswire.NewQuery(id, q.Name, q.Type)
	wire, err := msg.Marshal()
	if err != nil {
		r.mu.Unlock()
		done(Response{Question: q, Outcome: OutcomeMalformed, When: r.clock.Now()})
		return
	}
	pending := &pendingQuery{
		question: q,
		wire:     wire,
		started:  r.clock.Now(),
		done:     done,
	}
	// The 16-bit ID space can wrap under extreme concurrency; fail the
	// displaced query as timed out rather than leaking its callback.
	displaced := r.inflight[id]
	r.inflight[id] = pending
	r.stats.Queries++
	r.mu.Unlock()
	if displaced != nil {
		if displaced.timer != nil {
			displaced.timer.Stop()
		}
		r.finish(displaced, Response{
			Question: displaced.question, Outcome: OutcomeTimeout,
			Attempts: displaced.attempts, When: r.clock.Now(),
		})
	}
	if ctx.Done() != nil {
		pending.ctxStop = context.AfterFunc(ctx, func() { r.cancel(id, pending) })
	}
	r.transmit(id, pending)
}

// cancel completes a pending query with OutcomeCanceled when its context
// is cancelled before a usable response arrives.
func (r *Resolver) cancel(id uint16, p *pendingQuery) {
	r.mu.Lock()
	cur, ok := r.inflight[id]
	if !ok || cur != p {
		r.mu.Unlock()
		return
	}
	delete(r.inflight, id)
	r.stats.Canceled++
	r.mu.Unlock()
	if p.timer != nil {
		p.timer.Stop()
	}
	r.finish(p, Response{
		Question: p.question,
		Outcome:  OutcomeCanceled,
		Attempts: p.attempts,
		RTT:      r.clock.Now().Sub(p.started),
		When:     r.clock.Now(),
	})
}

func (r *Resolver) transmit(id uint16, p *pendingQuery) {
	p.attempts++
	if p.attempts > 1 {
		r.mu.Lock()
		r.stats.Retransmit++
		r.mu.Unlock()
	}
	r.ep.Send(r.cfg.Server, p.wire)
	p.timer = r.clock.AfterFunc(r.cfg.Timeout, func() {
		r.mu.Lock()
		cur, ok := r.inflight[id]
		if !ok || cur != p {
			r.mu.Unlock()
			return
		}
		if p.attempts <= r.cfg.Retries {
			r.mu.Unlock()
			r.transmit(id, p)
			return
		}
		delete(r.inflight, id)
		r.stats.Timeout++
		r.mu.Unlock()
		r.finish(p, Response{
			Question: p.question,
			Outcome:  OutcomeTimeout,
			Attempts: p.attempts,
			RTT:      r.clock.Now().Sub(p.started),
			When:     r.clock.Now(),
		})
	})
}

func (r *Resolver) handleResponse(dg fabric.Datagram) {
	msg, err := dnswire.Unmarshal(dg.Payload)
	if err != nil || !msg.Header.Response {
		return
	}
	r.mu.Lock()
	p, ok := r.inflight[msg.Header.ID]
	if ok {
		delete(r.inflight, msg.Header.ID)
	}
	r.mu.Unlock()
	if !ok {
		return
	}
	if p.timer != nil {
		p.timer.Stop()
	}
	resp := r.classify(p, msg)
	r.mu.Lock()
	switch resp.Outcome {
	case OutcomeSuccess:
		r.stats.Success++
	case OutcomeNXDomain:
		r.stats.NXDomain++
	case OutcomeNoData:
		r.stats.NoData++
	case OutcomeServFail:
		r.stats.ServFail++
	case OutcomeRefused:
		r.stats.Refused++
	case OutcomeMalformed:
		r.stats.Malformed++
	}
	r.mu.Unlock()
	r.finish(p, resp)
}

func (r *Resolver) classify(p *pendingQuery, msg *dnswire.Message) Response {
	now := r.clock.Now()
	return classify(p.question, msg, p.attempts, now.Sub(p.started), now)
}

// classify maps a parsed response message onto the paper's outcome
// taxonomy. It is shared by the fabric resolver, the synchronous UDP
// client, and the in-process ServerSource.
func classify(q dnswire.Question, msg *dnswire.Message, attempts int, rtt time.Duration, when time.Time) Response {
	resp := Response{
		Question: q,
		RCode:    msg.Header.RCode,
		Attempts: attempts,
		RTT:      rtt,
		When:     when,
	}
	// The response must echo our question.
	if len(msg.Questions) != 1 || msg.Questions[0].Name != q.Name ||
		msg.Questions[0].Type != q.Type {
		resp.Outcome = OutcomeMalformed
		return resp
	}
	switch msg.Header.RCode {
	case dnswire.RCodeNoError:
		for _, rr := range msg.Answers {
			if rr.Type == q.Type && rr.Name == q.Name {
				resp.Outcome = OutcomeSuccess
				if ptr, ok := rr.Data.(dnswire.PTRData); ok {
					resp.PTR = ptr.Target
				}
				return resp
			}
		}
		resp.Outcome = OutcomeNoData
	case dnswire.RCodeNXDomain:
		resp.Outcome = OutcomeNXDomain
	case dnswire.RCodeServFail:
		resp.Outcome = OutcomeServFail
	case dnswire.RCodeRefused:
		resp.Outcome = OutcomeRefused
	default:
		resp.Outcome = OutcomeMalformed
	}
	return resp
}

func (r *Resolver) finish(p *pendingQuery, resp Response) {
	if p.ctxStop != nil {
		p.ctxStop()
	}
	done := p.done
	p.done = nil
	if done != nil {
		done(resp)
	}
}
