// Package dnsclient implements a zdns/massdns-style DNS scanning client.
//
// The paper's supplemental measurement queries the authoritative name server
// for each address directly, "to make sure we get a fresh answer (i.e., not
// from a cache)" (Section 6.1), and rate-limits those queries. This package
// reproduces that client: single lookups with retry and timeout handling,
// classification of outcomes (NOERROR, NXDOMAIN, server failure, timeout) —
// the error classes of Figure 6 — and a high-throughput concurrent scan
// engine used to take full-universe snapshots at OpenINTEL/Rapid7 cadence.
//
// The asynchronous engine runs against the simulation fabric; a small
// synchronous client over real UDP sockets (see UDPClient) serves the
// command-line tools.
package dnsclient

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// Outcome classifies a completed lookup.
type Outcome int

// Outcome values. The paper's supplemental data distinguishes correct PTR
// responses from NXDOMAIN, name-server failure, and timeout (Section 6.1).
const (
	// OutcomeSuccess is a NOERROR answer containing the requested data.
	OutcomeSuccess Outcome = iota
	// OutcomeNXDomain is an authoritative denial: the name does not
	// exist. For reverse names this is the "record removed" signal.
	OutcomeNXDomain
	// OutcomeNoData is NOERROR without answers (name exists, no PTR).
	OutcomeNoData
	// OutcomeServFail is a server-side failure response.
	OutcomeServFail
	// OutcomeRefused means the server does not serve the zone.
	OutcomeRefused
	// OutcomeTimeout means every attempt went unanswered.
	OutcomeTimeout
	// OutcomeMalformed means the response could not be parsed or did not
	// match the question.
	OutcomeMalformed
	// OutcomeCanceled means the lookup's context was cancelled before a
	// usable response arrived.
	OutcomeCanceled
)

// String returns a mnemonic matching the paper's error taxonomy.
func (o Outcome) String() string {
	switch o {
	case OutcomeSuccess:
		return "NOERROR"
	case OutcomeNXDomain:
		return "NXDOMAIN"
	case OutcomeNoData:
		return "NODATA"
	case OutcomeServFail:
		return "SERVFAIL"
	case OutcomeRefused:
		return "REFUSED"
	case OutcomeTimeout:
		return "TIMEOUT"
	case OutcomeMalformed:
		return "MALFORMED"
	case OutcomeCanceled:
		return "CANCELED"
	default:
		return fmt.Sprintf("OUTCOME%d", int(o))
	}
}

// IsError reports whether the outcome is a resolution error in the paper's
// sense (Figure 6): server failure, timeout, or malformed. NXDOMAIN is NOT
// an error for reverse measurement — it is the record-absent signal.
func (o Outcome) IsError() bool {
	switch o {
	case OutcomeServFail, OutcomeTimeout, OutcomeMalformed, OutcomeRefused, OutcomeCanceled:
		return true
	}
	return false
}

// Response is the result of one lookup.
type Response struct {
	// Question is what was asked.
	Question dnswire.Question
	// Outcome classifies the result.
	Outcome Outcome
	// PTR is the PTR target for successful PTR lookups.
	PTR dnswire.Name
	// RCode is the response code, when a response arrived.
	RCode dnswire.RCode
	// RTT is the time from first transmission to completion.
	RTT time.Duration
	// Attempts is how many transmissions were made.
	Attempts int
	// When is the time the lookup completed.
	When time.Time
	// Cause is the underlying cause for OutcomeCanceled responses: the
	// context's error (context.Canceled or context.DeadlineExceeded).
	Cause error
}

// Config tunes a Resolver.
//
// Deprecated: construct resolvers with NewResolver and functional options
// (WithBind, WithServer, WithTimeout, WithRetries, WithRate,
// WithConcurrency). Config survives as a shim for older call sites.
type Config struct {
	// Bind is the local fabric address for queries.
	Bind fabric.Addr
	// Server is the name server queried.
	Server fabric.Addr
	// Timeout is the per-attempt wait. Default 2s.
	Timeout time.Duration
	// Retries is how many additional attempts follow a timeout.
	// Default 2.
	Retries int
	// QueriesPerSecond caps transmission rate (token bucket); zero means
	// unlimited. The paper rate-limits "to reduce the impact of our
	// measurement on the DNS name servers" (Section 6.1).
	QueriesPerSecond int
	// Concurrency bounds the in-flight window of the deprecated ScanPTR
	// wrappers. Zero means the default (512).
	Concurrency int
	// BackoffBase, when positive, spaces retransmissions by exponential
	// backoff with full jitter: attempt k waits a uniformly random delay
	// in [0, min(BackoffMax, BackoffBase<<k)) after its timeout, instead
	// of retransmitting immediately. Zero keeps immediate retransmission.
	BackoffBase time.Duration
	// BackoffMax caps the backoff window. Zero means 16x BackoffBase.
	BackoffMax time.Duration
	// RetryServFail extends the retry policy to SERVFAIL responses: a
	// server-side failure is retried (with backoff) like a timeout, up to
	// the same Retries budget. NXDOMAIN/NODATA/REFUSED are never retried —
	// they are authoritative answers, not transient faults.
	RetryServFail bool
	// Seed seeds the backoff jitter PRNG, for reproducible schedules.
	Seed int64
	// Telemetry, when non-nil, receives the resolver's metrics (see
	// telemetry.go for the names). Usually set via WithTelemetry.
	Telemetry telemetry.Sink
	// Tracer, when non-nil, emits one "attempt" span per transmission,
	// correlated across layers via telemetry.CorrID(Seed, name, attempt);
	// the same ID rides the datagram so fabric hops and the server join
	// the chain. Usually set via WithTracer.
	Tracer *telemetry.Tracer
}

// Client-span event kinds and codes: each "attempt" span carries a "tx"
// event whose code is the 1-based attempt number, then one terminal
// "client" event whose code is the attempt's Outcome (OutcomeTimeout for
// attempts that timed out into a retry, OutcomeServFail for retried
// server failures, and the lookup's final Outcome otherwise).

// Resolver sends queries over a fabric and matches responses, handling
// retries and rate limiting. Create one with New.
type Resolver struct {
	fab   *fabric.Fabric
	clock simclock.Clock
	cfg   Config
	ep    *fabric.Endpoint
	met   *clientMetrics // nil when telemetry is off

	mu       sync.Mutex
	nextID   uint16
	inflight map[uint16]*pendingQuery
	nextSlot time.Time
	rng      *rand.Rand // backoff jitter; guarded by mu
	stats    Stats
}

// Stats counts resolver activity by outcome.
type Stats struct {
	Queries    uint64
	Retransmit uint64
	Success    uint64
	NXDomain   uint64
	NoData     uint64
	ServFail   uint64
	Refused    uint64
	Timeout    uint64
	Malformed  uint64
	Canceled   uint64
}

type pendingQuery struct {
	ctx      context.Context
	question dnswire.Question
	wire     []byte
	started  time.Time
	attempts int
	timer    simclock.Timer
	span     *telemetry.Span // current attempt's span; nil when untraced
	corr     uint64          // current attempt's correlation ID
	ctxStop  func() bool     // releases the context cancellation watch
	done     func(Response)
}

// takeSpanLocked detaches the current attempt's span for ending outside
// the lock. Callers hold r.mu.
func (p *pendingQuery) takeSpanLocked() *telemetry.Span {
	sp := p.span
	p.span = nil
	return sp
}

// endAttempt closes one attempt span with its terminal outcome. Safe on a
// nil span; must be called without r.mu held.
func endAttempt(sp *telemetry.Span, o Outcome) {
	if sp == nil {
		return
	}
	sp.Event("client", uint64(o))
	sp.End()
}

// New creates a resolver bound to cfg.Bind on fab.
//
// Deprecated: use NewResolver with functional options.
func New(fab *fabric.Fabric, cfg Config) (*Resolver, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.BackoffBase > 0 && cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 16 * cfg.BackoffBase
	}
	r := &Resolver{
		fab:      fab,
		clock:    fab.Clock(),
		cfg:      cfg,
		inflight: make(map[uint16]*pendingQuery),
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Telemetry != nil {
		r.met = newClientMetrics(cfg.Telemetry)
	}
	ep, err := fab.Bind(cfg.Bind, r.handleResponse)
	if err != nil {
		return nil, fmt.Errorf("dnsclient: %w", err)
	}
	r.ep = ep
	return r, nil
}

// Close releases the resolver's fabric endpoint.
func (r *Resolver) Close() error { return r.ep.Close() }

// Stats returns a snapshot of resolver counters.
func (r *Resolver) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// LookupPTR resolves the PTR record for ip, calling done exactly once.
// Cancelling ctx completes the lookup promptly with OutcomeCanceled.
func (r *Resolver) LookupPTR(ctx context.Context, ip dnswire.IPv4, done func(Response)) {
	r.Lookup(ctx, dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	}, done)
}

// Lookup resolves an arbitrary question, calling done exactly once.
// Cancelling ctx completes the lookup promptly with OutcomeCanceled.
func (r *Resolver) Lookup(ctx context.Context, q dnswire.Question, done func(Response)) {
	if ctx == nil {
		ctx = context.Background()
	}
	delay := r.reserveSlot()
	if delay <= 0 {
		r.start(ctx, q, done)
		return
	}
	r.clock.AfterFunc(delay, func() { r.start(ctx, q, done) })
}

func (r *Resolver) reserveSlot() time.Duration {
	if r.cfg.QueriesPerSecond <= 0 {
		return 0
	}
	interval := time.Second / time.Duration(r.cfg.QueriesPerSecond)
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.clock.Now()
	if r.nextSlot.Before(now) {
		r.nextSlot = now
	}
	wait := r.nextSlot.Sub(now)
	r.nextSlot = r.nextSlot.Add(interval)
	return wait
}

func (r *Resolver) start(ctx context.Context, q dnswire.Question, done func(Response)) {
	if err := ctx.Err(); err != nil {
		r.mu.Lock()
		r.stats.Canceled++
		r.mu.Unlock()
		resp := Response{Question: q, Outcome: OutcomeCanceled, When: r.clock.Now(), Cause: err}
		r.met.countOutcome(resp)
		done(resp)
		return
	}
	r.mu.Lock()
	r.nextID++
	id := r.nextID
	msg := dnswire.NewQuery(id, q.Name, q.Type)
	wire, err := msg.Marshal()
	if err != nil {
		r.mu.Unlock()
		resp := Response{Question: q, Outcome: OutcomeMalformed, When: r.clock.Now()}
		r.met.countOutcome(resp)
		done(resp)
		return
	}
	pending := &pendingQuery{
		ctx:      ctx,
		question: q,
		wire:     wire,
		started:  r.clock.Now(),
		done:     done,
	}
	// The 16-bit ID space can wrap under extreme concurrency; fail the
	// displaced query as timed out rather than leaking its callback.
	displaced := r.inflight[id]
	r.inflight[id] = pending
	r.stats.Queries++
	if m := r.met; m != nil {
		m.queries.Inc()
	}
	var displacedTimer simclock.Timer
	var displacedAttempts int
	var displacedSpan *telemetry.Span
	if displaced != nil {
		displacedTimer = displaced.timer
		displaced.timer = nil
		displacedAttempts = displaced.attempts
		displacedSpan = displaced.takeSpanLocked()
	}
	r.mu.Unlock()
	if displaced != nil {
		if displacedTimer != nil {
			displacedTimer.Stop()
		}
		endAttempt(displacedSpan, OutcomeTimeout)
		r.finish(displaced, Response{
			Question: displaced.question, Outcome: OutcomeTimeout,
			Attempts: displacedAttempts, When: r.clock.Now(),
		})
	}
	if ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { r.cancel(id, pending) })
		// Publish the stop func under mu: the watch may already have fired
		// and finished the query, in which case it is released here instead.
		r.mu.Lock()
		if cur, ok := r.inflight[id]; ok && cur == pending {
			pending.ctxStop = stop
			r.mu.Unlock()
		} else {
			r.mu.Unlock()
			stop()
		}
	}
	r.transmit(id, pending)
}

// cancel completes a pending query with OutcomeCanceled when its context
// is cancelled before a usable response arrives.
func (r *Resolver) cancel(id uint16, p *pendingQuery) {
	r.mu.Lock()
	cur, ok := r.inflight[id]
	if !ok || cur != p {
		r.mu.Unlock()
		return
	}
	delete(r.inflight, id)
	r.stats.Canceled++
	timer := p.timer
	p.timer = nil
	attempts := p.attempts
	span := p.takeSpanLocked()
	r.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	endAttempt(span, OutcomeCanceled)
	r.finish(p, Response{
		Question: p.question,
		Outcome:  OutcomeCanceled,
		Attempts: attempts,
		RTT:      r.clock.Now().Sub(p.started),
		When:     r.clock.Now(),
		Cause:    p.ctx.Err(),
	})
}

// cancelLocked completes p as cancelled from inside the retry path. The
// caller holds r.mu with p still in the inflight table.
func (r *Resolver) cancelLocked(id uint16, p *pendingQuery) {
	delete(r.inflight, id)
	r.stats.Canceled++
	timer := p.timer
	p.timer = nil
	attempts := p.attempts
	span := p.takeSpanLocked()
	r.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	endAttempt(span, OutcomeCanceled)
	r.finish(p, Response{
		Question: p.question,
		Outcome:  OutcomeCanceled,
		Attempts: attempts,
		RTT:      r.clock.Now().Sub(p.started),
		When:     r.clock.Now(),
		Cause:    p.ctx.Err(),
	})
}

// backoffDelay returns the full-jitter backoff before retransmission
// number attempt (1-based over completed attempts): a uniform draw from
// [0, min(BackoffMax, BackoffBase<<attempt)). Zero when backoff is off.
func (r *Resolver) backoffDelay(attempt int) time.Duration {
	if r.cfg.BackoffBase <= 0 {
		return 0
	}
	window := r.cfg.BackoffBase << uint(attempt)
	if window <= 0 || window > r.cfg.BackoffMax {
		window = r.cfg.BackoffMax
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(window)))
}

// retry schedules the next transmission of p after the backoff delay for
// its current attempt count. With backoff disabled it retransmits
// immediately.
func (r *Resolver) retry(id uint16, p *pendingQuery) {
	delay := r.backoffDelay(p.attempts)
	if delay <= 0 {
		r.transmit(id, p)
		return
	}
	if m := r.met; m != nil {
		m.backoffSleeps.Inc()
	}
	r.clock.AfterFunc(delay, func() {
		r.mu.Lock()
		cur, ok := r.inflight[id]
		if !ok || cur != p {
			// Completed (answer or cancellation) while backing off.
			r.mu.Unlock()
			return
		}
		r.mu.Unlock()
		r.transmit(id, p)
	})
}

func (r *Resolver) transmit(id uint16, p *pendingQuery) {
	r.mu.Lock()
	if cur, ok := r.inflight[id]; !ok || cur != p {
		r.mu.Unlock()
		return
	}
	// Cancellation must never be treated as one more timeout to retry
	// through: check before spending an attempt.
	if p.ctx.Err() != nil {
		r.cancelLocked(id, p) // unlocks
		return
	}
	p.attempts++
	epoch := p.attempts
	if epoch > 1 {
		r.stats.Retransmit++
		if m := r.met; m != nil {
			m.retransmits.Inc()
		}
	}
	corr := uint64(0)
	if r.cfg.Tracer != nil {
		// Each transmission is its own causal chain: the correlation ID
		// folds in the attempt number, matching how faultsim draws a fresh
		// fault decision per retransmission.
		corr = telemetry.CorrID(r.cfg.Seed, string(p.question.Name), epoch)
		p.corr = corr
		p.span = r.cfg.Tracer.StartSpanCorr("attempt", string(p.question.Name), corr)
		p.span.Event("tx", uint64(epoch))
	}
	r.mu.Unlock()
	// Send outside the lock: a simulated fabric may deliver the response
	// synchronously, re-entering handleResponse.
	r.ep.SendCorr(r.cfg.Server, p.wire, corr)
	timer := r.clock.AfterFunc(r.cfg.Timeout, func() {
		r.mu.Lock()
		cur, ok := r.inflight[id]
		// The epoch check retires stale timers: a timer that fired while a
		// SERVFAIL-triggered retry was already retransmitting must not spend
		// a second attempt.
		if !ok || cur != p || p.attempts != epoch {
			r.mu.Unlock()
			return
		}
		// A cancelled context ends the lookup here and now, with the
		// wrapped ctx error — it must not be counted as a retryable
		// timeout even when retry budget remains.
		if p.ctx.Err() != nil {
			r.cancelLocked(id, p) // unlocks
			return
		}
		if p.attempts <= r.cfg.Retries {
			span := p.takeSpanLocked()
			r.mu.Unlock()
			endAttempt(span, OutcomeTimeout)
			r.retry(id, p)
			return
		}
		delete(r.inflight, id)
		r.stats.Timeout++
		span := p.takeSpanLocked()
		r.mu.Unlock()
		endAttempt(span, OutcomeTimeout)
		r.finish(p, Response{
			Question: p.question,
			Outcome:  OutcomeTimeout,
			Attempts: p.attempts,
			RTT:      r.clock.Now().Sub(p.started),
			When:     r.clock.Now(),
		})
	})
	r.mu.Lock()
	if cur, ok := r.inflight[id]; ok && cur == p && p.attempts == epoch {
		p.timer = timer
		r.mu.Unlock()
		return
	}
	// Completed (or moved on) between Send and timer registration.
	r.mu.Unlock()
	timer.Stop()
}

func (r *Resolver) handleResponse(dg fabric.Datagram) {
	msg, err := dnswire.Unmarshal(dg.Payload)
	if err != nil || !msg.Header.Response {
		return
	}
	r.mu.Lock()
	p, ok := r.inflight[msg.Header.ID]
	if !ok {
		r.mu.Unlock()
		return
	}
	resp := r.classify(p, msg)
	// Typed-error-aware retry: a SERVFAIL is a transient server fault and
	// — when the policy says so — is retried like a timeout, with the same
	// attempt budget and backoff. Authoritative answers (NXDOMAIN, NODATA,
	// REFUSED) are never retried.
	if resp.Outcome == OutcomeServFail && r.cfg.RetryServFail &&
		p.attempts <= r.cfg.Retries && p.ctx.Err() == nil {
		timer := p.timer
		p.timer = nil
		span := p.takeSpanLocked()
		r.mu.Unlock()
		if timer != nil {
			timer.Stop()
		}
		endAttempt(span, OutcomeServFail)
		r.retry(msg.Header.ID, p)
		return
	}
	delete(r.inflight, msg.Header.ID)
	timer := p.timer
	p.timer = nil
	span := p.takeSpanLocked()
	switch resp.Outcome {
	case OutcomeSuccess:
		r.stats.Success++
	case OutcomeNXDomain:
		r.stats.NXDomain++
	case OutcomeNoData:
		r.stats.NoData++
	case OutcomeServFail:
		r.stats.ServFail++
	case OutcomeRefused:
		r.stats.Refused++
	case OutcomeMalformed:
		r.stats.Malformed++
	}
	r.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	endAttempt(span, resp.Outcome)
	r.finish(p, resp)
}

func (r *Resolver) classify(p *pendingQuery, msg *dnswire.Message) Response {
	now := r.clock.Now()
	return classify(p.question, msg, p.attempts, now.Sub(p.started), now)
}

// classify maps a parsed response message onto the paper's outcome
// taxonomy. It is shared by the fabric resolver, the synchronous UDP
// client, and the in-process ServerSource.
func classify(q dnswire.Question, msg *dnswire.Message, attempts int, rtt time.Duration, when time.Time) Response {
	resp := Response{
		Question: q,
		RCode:    msg.Header.RCode,
		Attempts: attempts,
		RTT:      rtt,
		When:     when,
	}
	// The response must echo our question.
	if len(msg.Questions) != 1 || msg.Questions[0].Name != q.Name ||
		msg.Questions[0].Type != q.Type {
		resp.Outcome = OutcomeMalformed
		return resp
	}
	switch msg.Header.RCode {
	case dnswire.RCodeNoError:
		for _, rr := range msg.Answers {
			if rr.Type == q.Type && rr.Name == q.Name {
				resp.Outcome = OutcomeSuccess
				if ptr, ok := rr.Data.(dnswire.PTRData); ok {
					resp.PTR = ptr.Target
				}
				return resp
			}
		}
		resp.Outcome = OutcomeNoData
	case dnswire.RCodeNXDomain:
		resp.Outcome = OutcomeNXDomain
	case dnswire.RCodeServFail:
		resp.Outcome = OutcomeServFail
	case dnswire.RCodeRefused:
		resp.Outcome = OutcomeRefused
	default:
		resp.Outcome = OutcomeMalformed
	}
	return resp
}

func (r *Resolver) finish(p *pendingQuery, resp Response) {
	// Every completion funnels through here, so this is the one place the
	// per-outcome counters and the latency histogram tick.
	r.met.countOutcome(resp)
	if p.ctxStop != nil {
		p.ctxStop()
	}
	done := p.done
	p.done = nil
	if done != nil {
		done(resp)
	}
}
