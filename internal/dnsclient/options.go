package dnsclient

import (
	"time"

	"rdnsprivacy/internal/fabric"
)

// Option tunes a Resolver at construction.
type Option func(*Config)

// WithBind sets the local fabric address queries are sent from.
func WithBind(addr fabric.Addr) Option {
	return func(c *Config) { c.Bind = addr }
}

// WithServer sets the name server queried.
func WithServer(addr fabric.Addr) Option {
	return func(c *Config) { c.Server = addr }
}

// WithTimeout sets the per-attempt wait. Default 2s.
func WithTimeout(d time.Duration) Option {
	return func(c *Config) {
		if d > 0 {
			c.Timeout = d
		}
	}
}

// WithRetries sets how many additional attempts follow a timeout.
// Default 2 under the deprecated Config shim; NewResolver defaults to 2 as
// well.
func WithRetries(n int) Option {
	return func(c *Config) {
		if n >= 0 {
			c.Retries = n
		}
	}
}

// WithRate caps transmission rate in queries per second (token bucket);
// zero means unlimited. The paper rate-limits "to reduce the impact of our
// measurement on the DNS name servers" (Section 6.1).
func WithRate(qps int) Option {
	return func(c *Config) {
		if qps >= 0 {
			c.QueriesPerSecond = qps
		}
	}
}

// WithConcurrency bounds the in-flight window of the deprecated ScanPTR
// wrappers. Default 512.
func WithConcurrency(n int) Option {
	return func(c *Config) {
		if n > 0 {
			c.Concurrency = n
		}
	}
}

// WithBackoff enables exponential backoff with full jitter between retry
// attempts: the nth retry waits uniform[0, min(max, base<<n)). Zero max
// defaults to 16x base. Without this option retries retransmit
// immediately after each timeout, which against an overloaded server
// synchronizes the retry storm with the failure.
func WithBackoff(base, max time.Duration) Option {
	return func(c *Config) {
		if base > 0 {
			c.BackoffBase = base
			c.BackoffMax = max
		}
	}
}

// WithServFailRetry makes SERVFAIL responses retryable like timeouts,
// consuming the same retry budget. SERVFAIL is usually transient (the
// paper's supplemental measurement observes name-server failures clearing
// between sweeps), so sweeps aiming for completeness want this on.
func WithServFailRetry() Option {
	return func(c *Config) { c.RetryServFail = true }
}

// WithSeed fixes the backoff-jitter PRNG seed so delay schedules replay
// deterministically under the simulated clock.
func WithSeed(seed int64) Option {
	return func(c *Config) { c.Seed = seed }
}

// NewResolver creates a resolver on fab configured by opts. At minimum
// WithBind and WithServer must be supplied.
func NewResolver(fab *fabric.Fabric, opts ...Option) (*Resolver, error) {
	cfg := Config{Timeout: 2 * time.Second, Retries: 2}
	for _, o := range opts {
		o(&cfg)
	}
	return New(fab, cfg)
}
