package dnsclient

import (
	"context"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
)

// resultFromResponse maps a lookup response onto the engine's probe
// taxonomy: success is a found record, NXDOMAIN and NODATA are
// authoritative absences, everything else is an error. The full Response
// rides along in Meta.
func resultFromResponse(ip dnswire.IPv4, resp Response) scanengine.Result {
	res := scanengine.Result{IP: ip, Meta: resp}
	switch resp.Outcome {
	case OutcomeSuccess:
		res.Found = true
		res.Name = resp.PTR
	case OutcomeNXDomain, OutcomeNoData:
		// Absent: Found=false, Err=nil.
	default:
		res.Err = resp.Err()
	}
	return res
}

// asyncSource adapts a fabric Resolver to scanengine.AsyncSource, pinning
// a context for the sweep.
type asyncSource struct {
	r   *Resolver
	ctx context.Context
}

// StartPTR implements scanengine.AsyncSource.
func (s asyncSource) StartPTR(ip dnswire.IPv4, done func(scanengine.Result)) {
	s.r.LookupPTR(s.ctx, ip, func(resp Response) {
		done(resultFromResponse(ip, resp))
	})
}

// AsyncSource adapts the resolver to the engine's callback shape for use
// with scanengine.SweepAsync. ctx cancels probes started under it.
func (r *Resolver) AsyncSource(ctx context.Context) scanengine.AsyncSource {
	if ctx == nil {
		ctx = context.Background()
	}
	return asyncSource{r: r, ctx: ctx}
}

// UDPSource adapts the synchronous UDP client to scanengine.Source, for
// sharded parallel sweeps against real name servers. UDPClient carries no
// per-call state, so one source serves all engine workers.
type UDPSource struct {
	Client *UDPClient
}

// LookupPTR implements scanengine.Source.
func (s UDPSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	resp, err := s.Client.LookupPTRContext(ctx, ip)
	if err != nil {
		return scanengine.Result{IP: ip, Err: err}
	}
	return resultFromResponse(ip, resp)
}

// QueryHandler is the message-level server interface ServerSource drives —
// dnsserver.Server implements it.
type QueryHandler interface {
	HandleQuery(query []byte) []byte
}

// ServerSource probes an in-process authoritative server directly at the
// DNS message level: each lookup marshals a query, hands the wire form to
// the server, and classifies the wire response. It performs the same
// per-query encode/decode work as a network client without socket or
// fabric scheduling, which makes it the natural source for parallel
// full-sweep snapshots of a simulated deployment. Safe for concurrent use.
type ServerSource struct {
	Server QueryHandler

	nextID atomic.Uint32
}

// LookupPTR implements scanengine.Source.
func (s *ServerSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	q := dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	}
	if err := ctx.Err(); err != nil {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindCanceled, Question: q, wrapped: err}}
	}
	id := uint16(s.nextID.Add(1))
	wire, err := dnswire.NewQuery(id, q.Name, q.Type).Marshal()
	if err != nil {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindMalformed, Question: q, wrapped: err}}
	}
	started := time.Now()
	reply := s.Server.HandleQuery(wire)
	if reply == nil {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindTimeout, Question: q, Attempts: 1}}
	}
	msg, err := dnswire.Unmarshal(reply)
	if err != nil || !msg.Header.Response || msg.Header.ID != id {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindMalformed, Question: q, Attempts: 1, wrapped: err}}
	}
	now := time.Now()
	return resultFromResponse(ip, classify(q, msg, 1, now.Sub(started), now))
}
