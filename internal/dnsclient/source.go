package dnsclient

import (
	"context"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// resultFromResponse maps a lookup response onto the engine's probe
// taxonomy: success is a found record, NXDOMAIN and NODATA are
// authoritative absences, everything else is an error. The full Response
// rides along in Meta.
func resultFromResponse(ip dnswire.IPv4, resp Response) scanengine.Result {
	res := scanengine.Result{IP: ip, Meta: resp}
	switch resp.Outcome {
	case OutcomeSuccess:
		res.Found = true
		res.Name = resp.PTR
	case OutcomeNXDomain, OutcomeNoData:
		// Absent: Found=false, Err=nil.
	default:
		res.Err = resp.Err()
	}
	return res
}

// asyncSource adapts a fabric Resolver to scanengine.AsyncSource, pinning
// a context for the sweep.
type asyncSource struct {
	r   *Resolver
	ctx context.Context
}

// StartPTR implements scanengine.AsyncSource.
func (s asyncSource) StartPTR(ip dnswire.IPv4, done func(scanengine.Result)) {
	s.r.LookupPTR(s.ctx, ip, func(resp Response) {
		done(resultFromResponse(ip, resp))
	})
}

// AsyncSource adapts the resolver to the engine's callback shape for use
// with scanengine.SweepAsync. ctx cancels probes started under it.
func (r *Resolver) AsyncSource(ctx context.Context) scanengine.AsyncSource {
	if ctx == nil {
		ctx = context.Background()
	}
	return asyncSource{r: r, ctx: ctx}
}

// UDPSource adapts the synchronous UDP client to scanengine.Source, for
// sharded parallel sweeps against real name servers. UDPClient carries no
// per-call state, so one source serves all engine workers.
type UDPSource struct {
	Client *UDPClient
}

// LookupPTR implements scanengine.Source.
func (s UDPSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	resp, err := s.Client.LookupPTRContext(ctx, ip)
	if err != nil {
		return scanengine.Result{IP: ip, Err: err}
	}
	return resultFromResponse(ip, resp)
}

// QueryHandler is the message-level server interface ServerSource drives —
// dnsserver.Server implements it.
type QueryHandler interface {
	HandleQuery(query []byte) []byte
}

// CorrQueryHandler is the correlated variant: the handler receives the
// probe's correlation ID alongside the wire query, so a traced server can
// join its span to the client's. dnsserver.Server implements it.
type CorrQueryHandler interface {
	HandleQueryCorr(query []byte, corr uint64) []byte
}

// ServerSource probes an in-process authoritative server directly at the
// DNS message level: each lookup marshals a query, hands the wire form to
// the server, and classifies the wire response. It performs the same
// per-query encode/decode work as a network client without socket or
// fabric scheduling, which makes it the natural source for parallel
// full-sweep snapshots of a simulated deployment. Safe for concurrent use.
type ServerSource struct {
	Server QueryHandler

	// Tracer, when non-nil, correlates every probe: the source derives
	// telemetry.CorrID(Seed, name, 1), emits an "attempt" span, and — when
	// Server also implements CorrQueryHandler — hands the ID to the server
	// so its span joins the chain. Nil keeps the uncorrelated hot path.
	Tracer *telemetry.Tracer
	// Seed keys the correlation IDs (pair with the scan seed).
	Seed int64

	nextID atomic.Uint32
}

// LookupPTR implements scanengine.Source.
func (s *ServerSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	q := dnswire.Question{
		Name:  dnswire.ReverseName(ip),
		Type:  dnswire.TypePTR,
		Class: dnswire.ClassIN,
	}
	if err := ctx.Err(); err != nil {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindCanceled, Question: q, wrapped: err}}
	}
	id := uint16(s.nextID.Add(1))
	wire, err := dnswire.NewQuery(id, q.Name, q.Type).Marshal()
	if err != nil {
		return scanengine.Result{IP: ip, Err: &Error{Kind: KindMalformed, Question: q, wrapped: err}}
	}
	var corr uint64
	var sp *telemetry.Span
	if s.Tracer != nil {
		corr = telemetry.CorrID(s.Seed, string(q.Name), 1)
		sp = s.Tracer.StartSpanCorr("attempt", string(q.Name), corr)
		sp.Event("tx", 1)
	}
	started := time.Now()
	var reply []byte
	if ch, ok := s.Server.(CorrQueryHandler); ok && corr != 0 {
		reply = ch.HandleQueryCorr(wire, corr)
	} else {
		reply = s.Server.HandleQuery(wire)
	}
	if reply == nil {
		endAttempt(sp, OutcomeTimeout)
		res := scanengine.Result{IP: ip, Err: &Error{Kind: KindTimeout, Question: q, Attempts: 1}}
		res.Corr = corr
		return res
	}
	msg, err := dnswire.Unmarshal(reply)
	if err != nil || !msg.Header.Response || msg.Header.ID != id {
		endAttempt(sp, OutcomeMalformed)
		res := scanengine.Result{IP: ip, Err: &Error{Kind: KindMalformed, Question: q, Attempts: 1, wrapped: err}}
		res.Corr = corr
		return res
	}
	now := time.Now()
	resp := classify(q, msg, 1, now.Sub(started), now)
	endAttempt(sp, resp.Outcome)
	res := resultFromResponse(ip, resp)
	res.Corr = corr
	return res
}
