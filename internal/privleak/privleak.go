// Package privleak implements the Section 5 pipeline that identifies
// networks leaking privacy-sensitive client identifiers through reverse
// DNS:
//
//  1. Start from the set of /24s showing dynamic behaviour (Section 4).
//  2. Exclude rDNS entries with generic router-level terms.
//  3. Match the remaining PTR records against a list of given names.
//  4. Extract hostname suffixes and compute, per suffix: the number of
//     records, the number of uniquely matched given names, and their ratio.
//  5. Select suffixes with at least MinUniqueNames unique matches and a
//     ratio of at least MinRatio — the unique-name threshold is what
//     disambiguates city-named routers (one repeated "jackson") from
//     genuine client populations (dozens of distinct names).
//
// It also computes the Figure 2 (given-name occurrences before and after
// filtering), Figure 3 (device-term co-occurrence) and Figure 4 (network
// type breakdown) data.
package privleak

import (
	"sort"
	"strings"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/names"
	"rdnsprivacy/internal/netsim"
)

// Config holds the Section 5 thresholds.
type Config struct {
	// MinUniqueNames is the minimum number of distinct given names a
	// suffix must match (paper: 50 at full Internet scale).
	MinUniqueNames int
	// MinRatio is the minimum unique-names-to-records ratio (paper:
	// 0.1).
	MinRatio float64
	// GivenNames is the matching list (paper: top-50 US newborn names
	// 2000-2020).
	GivenNames []string
}

// PaperConfig returns the thresholds of the paper, for full-scale data.
func PaperConfig() Config {
	return Config{MinUniqueNames: 50, MinRatio: 0.1, GivenNames: names.Top50}
}

// ScaledConfig returns thresholds adjusted for the 1/100-scale universe:
// populations are 100x smaller, so the unique-name floor shrinks
// proportionally in spirit (not strictly linearly — name collisions do not
// scale linearly; 18 distinct top-50 names in a small network is already
// far beyond what router-level city names produce).
func ScaledConfig() Config {
	return Config{MinUniqueNames: 18, MinRatio: 0.03, GivenNames: names.Top50}
}

// RecordObservation is one input record: a PTR hostname and whether it
// belongs to a dynamic /24.
type RecordObservation struct {
	IP       dnswire.IPv4
	HostName dnswire.Name
	Dynamic  bool
}

// SuffixReport is the per-suffix aggregation of step 4.
type SuffixReport struct {
	// Suffix is the hostname suffix (TLD+1).
	Suffix string
	// Records is the number of (dynamic, non-generic) records under the
	// suffix.
	Records int
	// UniqueNames is the number of distinct given names matched.
	UniqueNames int
	// NameCounts counts records per matched given name.
	NameCounts map[string]int
	// DeviceTermCounts counts records per co-appearing device term.
	DeviceTermCounts map[string]int
	// Identified reports whether the suffix met the thresholds.
	Identified bool
	// Type is the inferred network type.
	Type netsim.NetworkType
}

// Ratio returns unique names over records.
func (s *SuffixReport) Ratio() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.UniqueNames) / float64(s.Records)
}

// Result is the pipeline output.
type Result struct {
	Config Config
	// AllNameMatches counts, per given name, every matching record
	// (Figure 2, "All matches").
	AllNameMatches map[string]int
	// FilteredNameMatches counts matches within identified networks
	// only (Figure 2, "Filtered matches").
	FilteredNameMatches map[string]int
	// AllDeviceTerms and FilteredDeviceTerms are the Figure 3
	// equivalents for device terms.
	AllDeviceTerms      map[string]int
	FilteredDeviceTerms map[string]int
	// Suffixes holds every suffix seen in dynamic space with at least
	// one name match.
	Suffixes map[string]*SuffixReport
	// Identified lists the suffixes that met the thresholds, sorted by
	// descending unique names.
	Identified []*SuffixReport
}

// TypeBreakdown counts identified networks per type (Figure 4).
func (r *Result) TypeBreakdown() map[netsim.NetworkType]int {
	out := make(map[netsim.NetworkType]int)
	for _, s := range r.Identified {
		out[s.Type]++
	}
	return out
}

// Analyzer runs the pipeline incrementally so record sets never need to be
// materialized in memory.
type Analyzer struct {
	cfg     Config
	matcher *names.Matcher
	res     *Result
}

// NewAnalyzer creates an analyzer with the given thresholds.
func NewAnalyzer(cfg Config) *Analyzer {
	if len(cfg.GivenNames) == 0 {
		cfg.GivenNames = names.Top50
	}
	return &Analyzer{
		cfg:     cfg,
		matcher: names.NewMatcher(cfg.GivenNames),
		res: &Result{
			Config:              cfg,
			AllNameMatches:      make(map[string]int),
			FilteredNameMatches: make(map[string]int),
			AllDeviceTerms:      make(map[string]int),
			FilteredDeviceTerms: make(map[string]int),
			Suffixes:            make(map[string]*SuffixReport),
		},
	}
}

// Observe feeds one record into the pipeline.
func (a *Analyzer) Observe(obs RecordObservation) {
	host := string(obs.HostName)
	matched := a.matcher.Match(host)
	terms := names.DeviceTermsIn(host)

	// Figure 2/3 "All matches": any matching PTR record, dynamic or not.
	for _, n := range matched {
		a.res.AllNameMatches[n]++
	}
	if len(matched) > 0 {
		for _, t := range terms {
			a.res.AllDeviceTerms[t]++
		}
	}

	// The identification pipeline proper considers only dynamic /24s
	// (step 1) and excludes router-level records (step 2).
	if !obs.Dynamic || names.HasGenericTerm(host) {
		return
	}
	if len(matched) == 0 {
		return
	}
	suffix := ExtractSuffix(obs.HostName)
	rep, ok := a.res.Suffixes[suffix]
	if !ok {
		rep = &SuffixReport{
			Suffix:           suffix,
			NameCounts:       make(map[string]int),
			DeviceTermCounts: make(map[string]int),
		}
		a.res.Suffixes[suffix] = rep
	}
	rep.Records++
	for _, n := range matched {
		rep.NameCounts[n]++
	}
	for _, t := range terms {
		rep.DeviceTermCounts[t]++
	}
}

// Finish applies the thresholds and computes the filtered views. It must be
// called exactly once, after all records are observed.
func (a *Analyzer) Finish() *Result {
	for _, rep := range a.res.Suffixes {
		rep.UniqueNames = len(rep.NameCounts)
		rep.Type = ClassifySuffix(rep.Suffix)
		if rep.UniqueNames >= a.cfg.MinUniqueNames && rep.Ratio() >= a.cfg.MinRatio {
			rep.Identified = true
			a.res.Identified = append(a.res.Identified, rep)
			for n, c := range rep.NameCounts {
				a.res.FilteredNameMatches[n] += c
			}
			for t, c := range rep.DeviceTermCounts {
				a.res.FilteredDeviceTerms[t] += c
			}
		}
	}
	sort.Slice(a.res.Identified, func(i, j int) bool {
		si, sj := a.res.Identified[i], a.res.Identified[j]
		if si.UniqueNames != sj.UniqueNames {
			return si.UniqueNames > sj.UniqueNames
		}
		return si.Suffix < sj.Suffix
	})
	return a.res
}

// publicSuffixes lists multi-label public suffixes under which one more
// label is needed to form a registrable domain; everything else uses the
// last label as TLD.
var publicSuffixes = map[string]bool{
	"ac.nl": true, "ac.uk": true, "ac.jp": true, "ac.kr": true,
	"edu.au": true, "edu.cn": true, "co.uk": true, "co.jp": true,
	"com.au": true, "com.br": true, "gov.uk": true,
}

// ExtractSuffix returns the TLD+1 of a hostname (one extra label under a
// known multi-label public suffix), the index key of Section 5.2.
func ExtractSuffix(n dnswire.Name) string {
	labels := n.Labels()
	if len(labels) < 2 {
		return strings.TrimSuffix(string(n), ".")
	}
	last2 := labels[len(labels)-2] + "." + labels[len(labels)-1]
	if publicSuffixes[last2] && len(labels) >= 3 {
		return labels[len(labels)-3] + "." + last2
	}
	return last2
}

// ClassifySuffix infers the network type from a hostname suffix, as
// Section 5.2 does: .edu and .ac.* indicate academic use, .gov government;
// ISP and enterprise need inspection, modelled here by keyword heuristics;
// the remainder is other.
func ClassifySuffix(suffix string) netsim.NetworkType {
	s := strings.ToLower(suffix)
	switch {
	case strings.HasSuffix(s, ".edu"), strings.Contains(s, ".ac."),
		strings.HasSuffix(s, ".ac.nl"), strings.HasSuffix(s, ".ac.uk"):
		return netsim.Academic
	case strings.HasSuffix(s, ".gov"):
		return netsim.Government
	}
	ispWords := []string{"isp", "telecom", "broadband", "dsl", "cable", "fiber", "net"}
	for _, w := range ispWords {
		if strings.Contains(s, w) {
			return netsim.ISP
		}
	}
	if strings.HasSuffix(s, ".com") {
		return netsim.Enterprise
	}
	return netsim.Other
}
