package privleak_test

import (
	"fmt"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/privleak"
)

// The Section 5 pipeline over a handful of records: a leaking campus
// qualifies; a city-named router farm does not, despite many records.
func ExampleAnalyzer() {
	a := privleak.NewAnalyzer(privleak.Config{MinUniqueNames: 3, MinRatio: 0.05})
	campus := []string{
		"jacobs-iphone.dyn.campus-a.edu.",
		"emmas-macbook-air.dyn.campus-a.edu.",
		"olivias-galaxy-s10.dyn.campus-a.edu.",
		"noahs-ipad.dyn.campus-a.edu.",
	}
	for i, host := range campus {
		a.Observe(privleak.RecordObservation{
			IP:       dnswire.MustPrefix("10.0.1.0/24").Nth(i + 1),
			HostName: dnswire.MustName(host),
			Dynamic:  true,
		})
	}
	// A transit network whose routers encode the city Jackson: one name,
	// many records — the ambiguity the thresholds resolve.
	for i := 0; i < 40; i++ {
		a.Observe(privleak.RecordObservation{
			IP:       dnswire.MustPrefix("10.9.1.0/24").Nth(i + 1),
			HostName: dnswire.MustName(fmt.Sprintf("pop%d.jackson.bigtransit.net.", i)),
			Dynamic:  true,
		})
	}
	res := a.Finish()
	for _, rep := range res.Identified {
		fmt.Printf("%s: %d unique names in %d records (%s)\n",
			rep.Suffix, rep.UniqueNames, rep.Records, rep.Type)
	}
	// Output:
	// campus-a.edu: 4 unique names in 4 records (academic)
}
