package privleak

import (
	"fmt"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/dynamicity"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/scan"
)

func obs(host string, dynamic bool) RecordObservation {
	return RecordObservation{
		IP:       dnswire.MustIPv4("10.0.0.1"),
		HostName: dnswire.MustName(host),
		Dynamic:  dynamic,
	}
}

func TestExtractSuffix(t *testing.T) {
	tests := []struct{ in, want string }{
		{"brians-iphone.dyn.campus-a.edu.", "campus-a.edu"},
		{"host.students.campus-c.ac.nl.", "campus-c.ac.nl"},
		{"client1.someisp.com.", "someisp.com"},
		{"x.y.z.co.uk.", "z.co.uk"},
		{"example.com.", "example.com"},
		{"com.", "com"},
	}
	for _, tc := range tests {
		if got := ExtractSuffix(dnswire.MustName(tc.in)); got != tc.want {
			t.Errorf("ExtractSuffix(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestClassifySuffix(t *testing.T) {
	tests := []struct {
		in   string
		want netsim.NetworkType
	}{
		{"campus-a.edu", netsim.Academic},
		{"campus-c.ac.nl", netsim.Academic},
		{"agency-1.gov", netsim.Government},
		{"telecom-5.net", netsim.ISP},
		{"corp-a.com", netsim.Enterprise},
		{"org-9.org", netsim.Other},
	}
	for _, tc := range tests {
		if got := ClassifySuffix(tc.in); got != tc.want {
			t.Errorf("ClassifySuffix(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestPipelineIdentifiesLeakySuffix(t *testing.T) {
	cfg := Config{MinUniqueNames: 3, MinRatio: 0.05}
	a := NewAnalyzer(cfg)
	// A leaking network: distinct given names on a dynamic prefix.
	for i, name := range []string{"jacob", "emma", "olivia", "noah"} {
		a.Observe(obs(fmt.Sprintf("%ss-iphone.dyn.leaky.edu.", name), true))
		a.Observe(obs(fmt.Sprintf("%s-laptop.dyn.leaky.edu.", name), true))
		_ = i
	}
	// Router records with a city name: one repeated name, many records.
	for i := 0; i < 50; i++ {
		a.Observe(obs(fmt.Sprintf("ge-0-%d.core1.jackson.transit.net.", i), true))
	}
	res := a.Finish()
	if len(res.Identified) != 1 {
		t.Fatalf("identified = %d suffixes", len(res.Identified))
	}
	if res.Identified[0].Suffix != "leaky.edu" {
		t.Fatalf("identified %q", res.Identified[0].Suffix)
	}
	if res.Identified[0].UniqueNames != 4 {
		t.Fatalf("unique names = %d", res.Identified[0].UniqueNames)
	}
}

func TestGenericTermsExcluded(t *testing.T) {
	a := NewAnalyzer(Config{MinUniqueNames: 1, MinRatio: 0})
	// "jackson" appears in a router-level record: counted in the
	// unfiltered view, but excluded from suffix aggregation by the
	// generic term "core".
	a.Observe(obs("core1.jackson.someisp.net.", true))
	res := a.Finish()
	if res.AllNameMatches["jackson"] != 1 {
		t.Fatalf("all matches = %v", res.AllNameMatches)
	}
	if len(res.Suffixes) != 0 {
		t.Fatalf("suffixes = %v; router record must be excluded", res.Suffixes)
	}
}

func TestNonDynamicExcludedFromPipelineButCountedInAll(t *testing.T) {
	a := NewAnalyzer(Config{MinUniqueNames: 1, MinRatio: 0})
	a.Observe(obs("brian.home.hosting-1.com.", false))
	res := a.Finish()
	if res.AllNameMatches["brian"] != 0 {
		// brian is not in the default Top50 matcher.
		t.Fatalf("brian matched by top-50 matcher: %v", res.AllNameMatches)
	}
	a2 := NewAnalyzer(Config{MinUniqueNames: 1, MinRatio: 0, GivenNames: []string{"brian"}})
	a2.Observe(obs("brian.home.hosting-1.com.", false))
	res2 := a2.Finish()
	if res2.AllNameMatches["brian"] != 1 {
		t.Fatalf("all matches = %v", res2.AllNameMatches)
	}
	if len(res2.Suffixes) != 0 {
		t.Fatal("non-dynamic record entered the pipeline")
	}
}

func TestRatioThresholdRejectsCityRouters(t *testing.T) {
	// Many records, few unique names, no generic terms: rejected by the
	// unique-name and ratio thresholds (the Jacksonville disambiguation).
	cfg := Config{MinUniqueNames: 5, MinRatio: 0.1}
	a := NewAnalyzer(cfg)
	for i := 0; i < 200; i++ {
		a.Observe(obs(fmt.Sprintf("pop%d.jackson.bigtransit.net.", i), true))
	}
	res := a.Finish()
	if len(res.Identified) != 0 {
		t.Fatalf("city-router suffix identified: %+v", res.Identified[0])
	}
	// The suffix is still tracked, just not identified.
	rep := res.Suffixes["bigtransit.net"]
	if rep == nil || rep.UniqueNames != 1 {
		t.Fatalf("suffix report = %+v", rep)
	}
}

func TestDeviceTermCoAppearance(t *testing.T) {
	a := NewAnalyzer(Config{MinUniqueNames: 2, MinRatio: 0})
	a.Observe(obs("jacobs-iphone.dyn.leaky.edu.", true))
	a.Observe(obs("emmas-galaxy-note9.dyn.leaky.edu.", true))
	a.Observe(obs("emmas-macbook-air.dyn.leaky.edu.", true))
	res := a.Finish()
	if res.AllDeviceTerms["iphone"] != 1 || res.AllDeviceTerms["galaxy"] != 1 {
		t.Fatalf("all terms = %v", res.AllDeviceTerms)
	}
	if res.FilteredDeviceTerms["macbook"] != 1 || res.FilteredDeviceTerms["air"] != 1 {
		t.Fatalf("filtered terms = %v", res.FilteredDeviceTerms)
	}
}

func TestEndToEndOnUniverse(t *testing.T) {
	// Full Section 4 + Section 5 pipeline on a reduced universe: the
	// CarryOver networks must be identified; hashed and filler must not.
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  21,
		FillerSlash24s:        700,
		LeakyNetworks:         16,
		NonLeakyDynamic:       5,
		PeoplePerDynamicBlock: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	end := start.AddDate(0, 0, 41) // six weeks
	counts := scan.Run(scan.Campaign{Universe: u, Start: start, End: end, Cadence: scan.Daily})
	dyn := dynamicity.Analyze(counts.Series, dynamicity.PaperConfig())
	if len(dyn.DynamicPrefixes) == 0 {
		t.Fatal("no dynamic prefixes found")
	}
	dynSet := make(map[dnswire.Prefix]bool)
	for _, p := range dyn.DynamicPrefixes {
		dynSet[p] = true
	}

	a := NewAnalyzer(ScaledConfig())
	// Union of one week of snapshots.
	seen := make(map[string]bool)
	for d := 0; d < 7; d++ {
		scan.SnapshotRecords(scan.Campaign{Universe: u}, start.AddDate(0, 0, d).Add(13*time.Hour),
			func(r netsim.Record) {
				key := r.IP.String() + "|" + string(r.HostName)
				if seen[key] {
					return
				}
				seen[key] = true
				a.Observe(RecordObservation{
					IP: r.IP, HostName: r.HostName, Dynamic: dynSet[r.IP.Slash24()],
				})
			})
	}
	res := a.Finish()
	if len(res.Identified) == 0 {
		t.Fatal("no networks identified")
	}
	identifiedSet := make(map[string]bool)
	for _, s := range res.Identified {
		identifiedSet[s.Suffix] = true
	}
	// The big campuses must be identified.
	for _, want := range []string{"campus-a.edu", "campus-c.ac.nl"} {
		if !identifiedSet[want] {
			t.Errorf("%s not identified (have %v)", want, identifiedSet)
		}
	}
	// Hashed networks and filler must not.
	for s := range identifiedSet {
		if len(s) >= 4 && s[:4] == "cdn-" {
			t.Errorf("hashed network %s identified", s)
		}
		if len(s) >= 8 && s[:8] == "hosting-" {
			t.Errorf("static filler %s identified", s)
		}
	}
	// Figure 2 property: unfiltered matches exceed filtered matches.
	allTotal, filtTotal := 0, 0
	for _, c := range res.AllNameMatches {
		allTotal += c
	}
	for _, c := range res.FilteredNameMatches {
		filtTotal += c
	}
	if allTotal <= filtTotal {
		t.Fatalf("all=%d filtered=%d; filtering must reduce matches", allTotal, filtTotal)
	}
	// Figure 4 property: types present, academic leads.
	breakdown := res.TypeBreakdown()
	if breakdown[netsim.Academic] == 0 {
		t.Fatalf("no academic networks in breakdown: %v", breakdown)
	}
}
