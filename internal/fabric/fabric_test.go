package fabric

import (
	"errors"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
)

var epoch = time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC)

func newTestFabric(cfg Config) (*Fabric, *simclock.Simulated) {
	clock := simclock.NewSimulated(epoch)
	return New(clock, cfg), clock
}

func TestDatagramDelivery(t *testing.T) {
	f, clock := newTestFabric(Config{Latency: 10 * time.Millisecond})
	serverAddr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	clientAddr := Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000}

	var got []Datagram
	if _, err := f.Bind(serverAddr, func(dg Datagram) { got = append(got, dg) }); err != nil {
		t.Fatal(err)
	}
	client, err := f.Bind(clientAddr, func(Datagram) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Send(serverAddr, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	clock.Advance(10 * time.Millisecond)
	if len(got) != 1 {
		t.Fatalf("got %d datagrams, want 1", len(got))
	}
	if string(got[0].Payload) != "hello" || got[0].Src != clientAddr || got[0].Dst != serverAddr {
		t.Fatalf("datagram = %+v", got[0])
	}
}

func TestPayloadIsolation(t *testing.T) {
	f, clock := newTestFabric(Config{})
	dst := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	var got []byte
	if _, err := f.Bind(dst, func(dg Datagram) { got = dg.Payload }); err != nil {
		t.Fatal(err)
	}
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	buf := []byte("abc")
	if err := src.Send(dst, buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 'X' // mutate after send; receiver must see the original
	clock.Advance(time.Millisecond)
	if string(got) != "abc" {
		t.Fatalf("payload = %q, want abc (sender mutation leaked)", got)
	}
}

func TestBindCollision(t *testing.T) {
	f, _ := newTestFabric(Config{})
	a := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	if _, err := f.Bind(a, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Bind(a, nil); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("err = %v, want ErrAddrInUse", err)
	}
}

func TestSendToUnboundVanishes(t *testing.T) {
	f, clock := newTestFabric(Config{})
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	if err := src.Send(Addr{IP: dnswire.MustIPv4("203.0.113.9"), Port: 53}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second) // must not panic
	st := f.Stats()
	if st.DatagramsSent != 1 || st.DatagramsDelivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClosedEndpoint(t *testing.T) {
	f, clock := newTestFabric(Config{})
	addr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	delivered := 0
	ep, err := f.Bind(addr, func(Datagram) { delivered++ })
	if err != nil {
		t.Fatal(err)
	}
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	src.Send(addr, []byte("x"))
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Second)
	if delivered != 0 {
		t.Fatal("datagram delivered to closed endpoint")
	}
	if err := ep.Send(addr, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed = %v, want ErrClosed", err)
	}
	if err := ep.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	// Address is reusable after close.
	if _, err := f.Bind(addr, nil); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestPacketLoss(t *testing.T) {
	f, clock := newTestFabric(Config{LossRate: 1.0, Seed: 1})
	addr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	delivered := 0
	f.Bind(addr, func(Datagram) { delivered++ })
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	for i := 0; i < 20; i++ {
		src.Send(addr, []byte("x"))
	}
	clock.Advance(time.Second)
	if delivered != 0 {
		t.Fatalf("delivered %d packets with LossRate=1", delivered)
	}
	if st := f.Stats(); st.DatagramsDropped != 20 {
		t.Fatalf("dropped = %d, want 20", st.DatagramsDropped)
	}
}

func TestPartialLossIsDeterministic(t *testing.T) {
	run := func() uint64 {
		f, clock := newTestFabric(Config{LossRate: 0.5, Seed: 42})
		addr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
		f.Bind(addr, func(Datagram) {})
		src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
		for i := 0; i < 100; i++ {
			src.Send(addr, []byte("x"))
		}
		clock.Advance(time.Second)
		return f.Stats().DatagramsDelivered
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical runs delivered %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("delivered %d of 100 at 50%% loss; loss model broken", a)
	}
}

func TestICMPExactBinding(t *testing.T) {
	f, clock := newTestFabric(Config{Latency: time.Millisecond})
	vantage := dnswire.MustIPv4("198.51.100.1")
	target := dnswire.MustIPv4("192.0.2.55")
	var gotSrc dnswire.IPv4
	var gotPayload []byte
	if err := f.BindICMP(vantage, func(src, dst dnswire.IPv4, p []byte) {
		gotSrc = src
		gotPayload = p
	}); err != nil {
		t.Fatal(err)
	}
	f.SendICMP(target, vantage, []byte{8, 0})
	clock.Advance(time.Millisecond)
	if gotSrc != target || string(gotPayload) != string([]byte{8, 0}) {
		t.Fatalf("got src=%v payload=%v", gotSrc, gotPayload)
	}
	if err := f.BindICMP(vantage, nil); !errors.Is(err, ErrAddrInUse) {
		t.Fatalf("double BindICMP = %v, want ErrAddrInUse", err)
	}
	f.UnbindICMP(vantage)
	if err := f.BindICMP(vantage, nil); err != nil {
		t.Fatalf("rebind after unbind: %v", err)
	}
}

func TestICMPPrefixRoutingLongestMatch(t *testing.T) {
	f, clock := newTestFabric(Config{})
	wide := 0
	narrow := 0
	f.RegisterICMPPrefix(dnswire.MustPrefix("10.0.0.0/8"), func(_, _ dnswire.IPv4, _ []byte) { wide++ })
	f.RegisterICMPPrefix(dnswire.MustPrefix("10.5.0.0/16"), func(_, _ dnswire.IPv4, _ []byte) { narrow++ })
	src := dnswire.MustIPv4("198.51.100.1")
	f.SendICMP(src, dnswire.MustIPv4("10.5.1.1"), nil)
	f.SendICMP(src, dnswire.MustIPv4("10.6.1.1"), nil)
	clock.Advance(time.Second)
	if narrow != 1 || wide != 1 {
		t.Fatalf("narrow=%d wide=%d, want 1 and 1", narrow, wide)
	}
}

func TestICMPExactBeatsPrefix(t *testing.T) {
	f, clock := newTestFabric(Config{})
	exact, pfx := 0, 0
	ip := dnswire.MustIPv4("10.5.1.1")
	f.RegisterICMPPrefix(dnswire.MustPrefix("10.0.0.0/8"), func(_, _ dnswire.IPv4, _ []byte) { pfx++ })
	f.BindICMP(ip, func(_, _ dnswire.IPv4, _ []byte) { exact++ })
	f.SendICMP(dnswire.MustIPv4("198.51.100.1"), ip, nil)
	clock.Advance(time.Second)
	if exact != 1 || pfx != 0 {
		t.Fatalf("exact=%d pfx=%d, want 1 and 0", exact, pfx)
	}
}

func TestJitterBoundsDelay(t *testing.T) {
	f, clock := newTestFabric(Config{Latency: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, Seed: 3})
	addr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	var deliveredAt []time.Time
	f.Bind(addr, func(Datagram) { deliveredAt = append(deliveredAt, clock.Now()) })
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	for i := 0; i < 50; i++ {
		src.Send(addr, []byte("x"))
	}
	clock.Advance(time.Second)
	if len(deliveredAt) != 50 {
		t.Fatalf("delivered %d, want 50", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		d := at.Sub(epoch)
		if d < 10*time.Millisecond || d >= 15*time.Millisecond {
			t.Fatalf("delivery delay %v outside [10ms, 15ms)", d)
		}
	}
}

func TestRoundTripRequestResponse(t *testing.T) {
	f, clock := newTestFabric(Config{Latency: 5 * time.Millisecond})
	server := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	client := Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000}

	var echo *Endpoint
	echo, err := f.Bind(server, func(dg Datagram) {
		echo.Send(dg.Src, append([]byte("re:"), dg.Payload...))
	})
	if err != nil {
		t.Fatal(err)
	}

	var got string
	cl, err := f.Bind(client, func(dg Datagram) { got = string(dg.Payload) })
	if err != nil {
		t.Fatal(err)
	}
	cl.Send(server, []byte("ping"))
	clock.Advance(20 * time.Millisecond)
	if got != "re:ping" {
		t.Fatalf("got %q, want re:ping", got)
	}
}
