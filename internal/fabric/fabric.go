// Package fabric provides the virtual Internet over which every measurement
// in this repository travels.
//
// The fabric is an in-process packet network with IPv4 addressing. It
// carries two kinds of traffic: UDP-like datagrams (used for DNS and DHCP)
// and ICMP echo (used by the zmap-style prober). Delivery is scheduled on a
// simclock.Clock, so entire multi-month measurement campaigns can run
// deterministically on a simulated clock, while the same servers also work
// in real time.
//
// The fabric replaces the real Internet between the paper's measurement
// vantage and the networks it studied. Crucially, everything that crosses it
// is a real encoded wire message (see internal/dnswire, internal/dhcpwire,
// internal/icmp); the fabric itself only moves opaque payloads, exactly like
// the IP layer underneath the authors' scanners.
package fabric

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/simclock"
	"rdnsprivacy/internal/telemetry"
)

// Addr is a UDP-like endpoint address on the fabric.
type Addr struct {
	IP   dnswire.IPv4
	Port uint16
}

// String returns ip:port notation.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.IP, a.Port) }

// Datagram is a UDP-like packet in flight.
type Datagram struct {
	Src     Addr
	Dst     Addr
	Payload []byte
	// Corr is the cross-layer correlation ID of the probe this packet
	// belongs to (telemetry.CorrID), zero for uncorrelated traffic. It is
	// fabric metadata, not wire bytes: the in-process network can carry it
	// out of band the way a real capture pipeline keys on 5-tuple + time.
	Corr uint64
}

// Handler receives datagrams delivered to an endpoint. Handlers run on the
// clock's callback goroutine; they must not block on future clock time.
type Handler func(dg Datagram)

// ICMPHandler receives ICMP payloads delivered to an address or prefix.
type ICMPHandler func(src, dst dnswire.IPv4, payload []byte)

// Config tunes fabric behaviour.
type Config struct {
	// Latency is the one-way delivery delay. Zero means deliver on the
	// next clock advance (still asynchronously).
	Latency time.Duration
	// Jitter adds up to this much random extra delay per packet.
	Jitter time.Duration
	// LossRate drops this fraction of packets (0..1), using the seeded
	// PRNG, to exercise timeout paths.
	LossRate float64
	// Seed seeds the fabric's PRNG (loss and jitter).
	Seed int64
}

// Fabric is the packet network. Create one with New.
type Fabric struct {
	clock simclock.Clock
	cfg   Config

	mu        sync.Mutex
	rng       *rand.Rand
	endpoints map[Addr]*Endpoint
	icmpExact map[dnswire.IPv4]ICMPHandler
	icmpPfx   []prefixHandler // sorted longest-prefix-first
	stats     Stats
	tracer    *telemetry.Tracer
}

// Hop-span event codes (kind "hop"): what the fabric did with one
// correlated datagram. A span covers one packet's flight; its events are
// "send" at transmission plus the terminal outcome.
const (
	HopSend    = 1 // entered the fabric
	HopDeliver = 2 // handed to the destination endpoint
	HopDrop    = 3 // lost to the seeded loss model at send time
	HopVanish  = 4 // destination unbound at delivery time
)

type prefixHandler struct {
	prefix  dnswire.Prefix
	handler ICMPHandler
}

// Stats counts fabric traffic, for experiment accounting.
type Stats struct {
	DatagramsSent      uint64
	DatagramsDelivered uint64
	DatagramsDropped   uint64
	ICMPSent           uint64
	ICMPDelivered      uint64
	ICMPDropped        uint64
}

// New creates a fabric scheduled on clock.
func New(clock simclock.Clock, cfg Config) *Fabric {
	return &Fabric{
		clock:     clock,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		endpoints: make(map[Addr]*Endpoint),
		icmpExact: make(map[dnswire.IPv4]ICMPHandler),
	}
}

// Clock returns the clock the fabric schedules on.
func (f *Fabric) Clock() simclock.Clock { return f.clock }

// SetTracer makes the fabric emit one "hop" span per correlated datagram
// (Datagram.Corr != 0): a "send" event when the packet enters the fabric
// and a terminal "deliver"/"drop"/"vanish" event when its fate is known.
// Uncorrelated traffic is never traced. nil detaches.
func (f *Fabric) SetTracer(tr *telemetry.Tracer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.tracer = tr
}

// Stats returns a snapshot of traffic counters.
func (f *Fabric) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ErrAddrInUse reports a Bind collision.
var ErrAddrInUse = errors.New("fabric: address already bound")

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("fabric: endpoint closed")

// Bind attaches a handler to addr and returns the endpoint.
func (f *Fabric) Bind(addr Addr, h Handler) (*Endpoint, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.endpoints[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddrInUse, addr)
	}
	ep := &Endpoint{fabric: f, addr: addr, handler: h}
	f.endpoints[addr] = ep
	return ep, nil
}

// BindICMP attaches an ICMP handler to a single address (e.g. the prober's
// vantage address, which receives echo replies).
func (f *Fabric) BindICMP(ip dnswire.IPv4, h ICMPHandler) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.icmpExact[ip]; ok {
		return fmt.Errorf("%w: icmp %s", ErrAddrInUse, ip)
	}
	f.icmpExact[ip] = h
	return nil
}

// UnbindICMP removes an exact ICMP binding.
func (f *Fabric) UnbindICMP(ip dnswire.IPv4) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.icmpExact, ip)
}

// RegisterICMPPrefix routes ICMP for every address in prefix to h (e.g. a
// simulated network deciding which of its hosts answer pings). The
// longest matching prefix wins; exact BindICMP bindings take precedence.
func (f *Fabric) RegisterICMPPrefix(prefix dnswire.Prefix, h ICMPHandler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.icmpPfx = append(f.icmpPfx, prefixHandler{prefix, h})
	sort.SliceStable(f.icmpPfx, func(i, j int) bool {
		return f.icmpPfx[i].prefix.Bits > f.icmpPfx[j].prefix.Bits
	})
}

// SendICMP injects an ICMP payload from src toward dst. Delivery is subject
// to the fabric's latency and loss model. Undeliverable packets (no handler
// for dst) vanish, as on the real Internet.
func (f *Fabric) SendICMP(src, dst dnswire.IPv4, payload []byte) {
	f.mu.Lock()
	f.stats.ICMPSent++
	if f.dropLocked() {
		f.stats.ICMPDropped++
		f.mu.Unlock()
		return
	}
	delay := f.delayLocked()
	f.mu.Unlock()

	p := append([]byte(nil), payload...)
	f.clock.AfterFunc(delay, func() {
		h := f.lookupICMP(dst)
		if h == nil {
			return
		}
		f.mu.Lock()
		f.stats.ICMPDelivered++
		f.mu.Unlock()
		h(src, dst, p)
	})
}

func (f *Fabric) lookupICMP(dst dnswire.IPv4) ICMPHandler {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok := f.icmpExact[dst]; ok {
		return h
	}
	for _, ph := range f.icmpPfx {
		if ph.prefix.Contains(dst) {
			return ph.handler
		}
	}
	return nil
}

// dropLocked and delayLocked must be called with f.mu held.
func (f *Fabric) dropLocked() bool {
	return f.cfg.LossRate > 0 && f.rng.Float64() < f.cfg.LossRate
}

func (f *Fabric) delayLocked() time.Duration {
	d := f.cfg.Latency
	if f.cfg.Jitter > 0 {
		d += time.Duration(f.rng.Int63n(int64(f.cfg.Jitter)))
	}
	return d
}

// addrKey folds an address into one span-ID key word.
func addrKey(a Addr) uint64 {
	return uint64(a.IP[0])<<40 | uint64(a.IP[1])<<32 | uint64(a.IP[2])<<24 |
		uint64(a.IP[3])<<16 | uint64(a.Port)
}

// send routes a datagram. Packets to unbound addresses vanish.
func (f *Fabric) send(dg Datagram) {
	f.mu.Lock()
	f.stats.DatagramsSent++
	tr := f.tracer
	dropped := f.dropLocked()
	if dropped {
		f.stats.DatagramsDropped++
	}
	var delay time.Duration
	if !dropped {
		delay = f.delayLocked()
	}
	f.mu.Unlock()

	// One hop span per correlated packet: ID keyed by (corr, src, dst) so
	// the query leg and the reply leg of the same probe get distinct but
	// deterministic spans sharing Corr. Nil span when untraced — all calls
	// below no-op.
	var sp *telemetry.Span
	if tr != nil && dg.Corr != 0 {
		sp = tr.StartSpanCorr("hop", dg.Src.String()+">"+dg.Dst.String(),
			dg.Corr, addrKey(dg.Src), addrKey(dg.Dst))
		sp.Event("hop", HopSend)
	}
	if dropped {
		sp.Event("hop", HopDrop)
		sp.End()
		return
	}

	payload := append([]byte(nil), dg.Payload...)
	f.clock.AfterFunc(delay, func() {
		f.mu.Lock()
		ep, ok := f.endpoints[dg.Dst]
		if ok {
			f.stats.DatagramsDelivered++
		}
		f.mu.Unlock()
		if !ok {
			sp.Event("hop", HopVanish)
			sp.End()
			return
		}
		sp.Event("hop", HopDeliver)
		sp.End()
		ep.deliver(Datagram{Src: dg.Src, Dst: dg.Dst, Payload: payload, Corr: dg.Corr})
	})
}

// Endpoint is a bound UDP-like socket on the fabric.
type Endpoint struct {
	fabric  *Fabric
	addr    Addr
	handler Handler

	mu     sync.Mutex
	closed bool
}

// Addr returns the bound address.
func (ep *Endpoint) Addr() Addr { return ep.addr }

// Send transmits payload to dst with ep's address as the source.
func (ep *Endpoint) Send(dst Addr, payload []byte) error {
	return ep.SendCorr(dst, payload, 0)
}

// SendCorr transmits payload carrying the correlation ID of the probe it
// belongs to, so the fabric's hop spans and the receiver can join this
// packet to its client attempt. corr zero sends uncorrelated.
func (ep *Endpoint) SendCorr(dst Addr, payload []byte, corr uint64) error {
	ep.mu.Lock()
	closed := ep.closed
	ep.mu.Unlock()
	if closed {
		return ErrClosed
	}
	ep.fabric.send(Datagram{Src: ep.addr, Dst: dst, Payload: payload, Corr: corr})
	return nil
}

// Close unbinds the endpoint. In-flight packets to it are dropped on
// delivery.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.fabric.mu.Lock()
	delete(ep.fabric.endpoints, ep.addr)
	ep.fabric.mu.Unlock()
	return nil
}

func (ep *Endpoint) deliver(dg Datagram) {
	ep.mu.Lock()
	closed := ep.closed
	h := ep.handler
	ep.mu.Unlock()
	if closed || h == nil {
		return
	}
	h(dg)
}
