package fabric

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/telemetry"
)

// collectSpans drains a tracer via JSONL into records, asserting no error.
func tracerSpans(t *testing.T, tr *telemetry.Tracer) []*telemetry.Span {
	t.Helper()
	return tr.Snapshot()
}

func TestHopSpansDeliverAndCorrPropagation(t *testing.T) {
	f, clock := newTestFabric(Config{Latency: 5 * time.Millisecond})
	tr := telemetry.NewTracer(1, 64)
	f.SetTracer(tr)

	serverAddr := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	clientAddr := Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000}

	corr := telemetry.CorrID(7, "1.2.0.192.in-addr.arpa.", 1)
	var gotCorr uint64
	var srv *Endpoint
	srv, err := f.Bind(serverAddr, func(dg Datagram) {
		gotCorr = dg.Corr
		// Echo back on the same correlation, like the DNS server does.
		srv.SendCorr(dg.Src, dg.Payload, dg.Corr)
	})
	if err != nil {
		t.Fatal(err)
	}
	var replyCorr uint64
	client, err := f.Bind(clientAddr, func(dg Datagram) { replyCorr = dg.Corr })
	if err != nil {
		t.Fatal(err)
	}
	if err := client.SendCorr(serverAddr, []byte("q"), corr); err != nil {
		t.Fatal(err)
	}
	clock.Advance(20 * time.Millisecond)

	if gotCorr != corr || replyCorr != corr {
		t.Fatalf("corr did not propagate: server saw %016x, client saw %016x, want %016x",
			gotCorr, replyCorr, corr)
	}
	spans := tracerSpans(t, tr)
	if len(spans) != 2 {
		t.Fatalf("got %d hop spans, want 2 (query leg + reply leg)", len(spans))
	}
	for _, sp := range spans {
		if sp.Name != "hop" || sp.Corr != corr {
			t.Fatalf("span %q corr=%016x, want hop/%016x", sp.Name, sp.Corr, corr)
		}
		if len(sp.Events) != 2 || sp.Events[0].Code != HopSend || sp.Events[1].Code != HopDeliver {
			t.Fatalf("span events = %+v, want [send deliver]", sp.Events)
		}
	}
	if spans[0].ID == spans[1].ID {
		t.Fatal("query-leg and reply-leg hop spans must have distinct IDs")
	}
}

func TestHopSpanDropAndVanish(t *testing.T) {
	// LossRate 1: the packet dies at send time with a "drop" event.
	f, clock := newTestFabric(Config{LossRate: 1, Seed: 3})
	tr := telemetry.NewTracer(1, 64)
	f.SetTracer(tr)
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	if err := src.SendCorr(Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}, []byte("x"), 42); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	spans := tracerSpans(t, tr)
	if len(spans) != 1 || len(spans[0].Events) != 2 || spans[0].Events[1].Code != HopDrop {
		t.Fatalf("spans = %+v, want one span ending in drop", spans)
	}

	// Unbound destination: the packet vanishes at delivery time.
	f2, clock2 := newTestFabric(Config{})
	tr2 := telemetry.NewTracer(1, 64)
	f2.SetTracer(tr2)
	src2, _ := f2.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	if err := src2.SendCorr(Addr{IP: dnswire.MustIPv4("203.0.113.9"), Port: 53}, []byte("x"), 42); err != nil {
		t.Fatal(err)
	}
	clock2.Advance(time.Millisecond)
	spans2 := tracerSpans(t, tr2)
	if len(spans2) != 1 || len(spans2[0].Events) != 2 || spans2[0].Events[1].Code != HopVanish {
		t.Fatalf("spans = %+v, want one span ending in vanish", spans2)
	}
}

func TestUncorrelatedTrafficNotTraced(t *testing.T) {
	f, clock := newTestFabric(Config{})
	tr := telemetry.NewTracer(1, 64)
	f.SetTracer(tr)
	dst := Addr{IP: dnswire.MustIPv4("192.0.2.1"), Port: 53}
	if _, err := f.Bind(dst, func(Datagram) {}); err != nil {
		t.Fatal(err)
	}
	src, _ := f.Bind(Addr{IP: dnswire.MustIPv4("192.0.2.2"), Port: 1}, nil)
	if err := src.Send(dst, []byte("x")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Millisecond)
	if n := tr.Len(); n != 0 {
		t.Fatalf("uncorrelated send produced %d spans, want 0", n)
	}
}
