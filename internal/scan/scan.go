// Package scan implements the longitudinal snapshot engine that stands in
// for the OpenINTEL and Rapid7 measurement platforms (Section 3): it sweeps
// the simulated universe's reverse DNS on a daily (OpenINTEL-like) or
// weekly (Rapid7-like) cadence and produces the per-/24 count series and
// summary statistics the paper's analyses consume.
//
// Two scan paths exist:
//
//   - The wire path drives a real resolver (internal/dnsclient) against
//     live networks over the fabric, one PTR query per address — exactly
//     what the measurement platforms do. It is used for the supplemental
//     windows and for validating the fast path.
//   - The fast path evaluates network record state directly via
//     netsim.Network.RecordsAt. It produces byte-identical hostnames (both
//     paths share internal/ipam's name derivation) and is what makes
//     two-year daily campaigns over tens of thousands of /24s tractable.
//     TestWireAndFastPathsAgree pins the equivalence.
package scan

import (
	"context"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// Cadence is a snapshot frequency.
type Cadence int

// Cadences of the two platforms.
const (
	// Daily matches OpenINTEL.
	Daily Cadence = iota
	// Weekly matches Rapid7 Sonar.
	Weekly
)

// IntervalDays returns the day step of the cadence.
func (c Cadence) IntervalDays() int {
	if c == Weekly {
		return 7
	}
	return 1
}

// String names the platform the cadence models.
func (c Cadence) String() string {
	if c == Weekly {
		return "rapid7-weekly"
	}
	return "openintel-daily"
}

// Campaign describes a longitudinal scan.
type Campaign struct {
	// Universe is the address space under measurement.
	Universe *netsim.Universe
	// Start and End delimit the campaign (inclusive).
	Start, End time.Time
	// Cadence selects daily or weekly snapshots.
	Cadence Cadence
	// TimeOfDay is when each snapshot is taken (offset from local
	// midnight). OpenINTEL measures once a day; 13:00 is used here.
	TimeOfDay time.Duration
	// Networks restricts the campaign to the named networks (nil scans
	// the whole universe including filler).
	Networks []string
	// SkipFiller omits filler blocks even in whole-universe scans
	// (useful when only dynamic behaviour matters).
	SkipFiller bool
	// Workers bounds the snapshot engine's worker pool. Zero means the
	// engine default (GOMAXPROCS).
	Workers int
	// Telemetry, when set, receives the snapshot engine's metrics
	// (the scan_* instruments; see docs/telemetry.md). Nil keeps the
	// engine on its zero-overhead path.
	Telemetry telemetry.Sink
	// Observer, when set, captures one obs.Frame per snapshot date —
	// the longitudinal health series docs/observability.md describes.
	// Nil skips capture entirely.
	Observer *obs.Recorder
	// Store, when set, receives every snapshot's record set as an append
	// to the longitudinal history store, making the campaign queryable by
	// cmd/rdnsd and the store-backed analyses. With an Observer attached
	// too, each frame carries the store's append/compaction state. Nil
	// skips persistence.
	Store *histstore.Store
	// CompactEvery, when > 0 with a Store attached, seals the store's
	// tail into a segment after every N appended snapshots, bounding the
	// tail a crash can tear and keeping reconstruction chains short over
	// long campaigns. Compaction failures surface in Result.StoreErr.
	CompactEvery int
}

// Targets returns the campaign's sweep coverage, for scanengine.Request.
func (c *Campaign) Targets() []dnswire.Prefix {
	return NewSource(*c).Targets()
}

// engineOptions assembles the campaign's scanner options.
func (c *Campaign) engineOptions() []scanengine.Option {
	var opts []scanengine.Option
	if c.Workers > 0 {
		opts = append(opts, scanengine.WithWorkers(c.Workers))
	}
	if c.Telemetry != nil {
		opts = append(opts, scanengine.WithTelemetry(c.Telemetry))
	}
	return opts
}

func (c *Campaign) timeOfDay() time.Duration {
	if c.TimeOfDay == 0 {
		return 13 * time.Hour
	}
	return c.TimeOfDay
}

// networks resolves the campaign's network set.
func (c *Campaign) networks() []*netsim.Network {
	if len(c.Networks) == 0 {
		return c.Universe.Networks
	}
	var out []*netsim.Network
	for _, name := range c.Networks {
		if n, ok := c.Universe.NetworkByName(name); ok {
			out = append(out, n)
		}
	}
	return out
}

// Result is the product of a campaign.
type Result struct {
	// Series is the per-/24 daily count series.
	Series *dataset.CountSeries
	// Stats summarizes the campaign.
	Stats dataset.Stats
	// StoreErr is the first history-store append failure, nil when every
	// snapshot persisted (or no store was attached). The sweep itself
	// continues past a store failure; persistence stops.
	StoreErr error
}

// Run executes the campaign through the sharded snapshot engine and
// returns its result.
func Run(c Campaign) *Result {
	dates := dataset.DateRange(c.Start, c.End, c.Cadence.IntervalDays())
	series := dataset.NewCountSeries(dates)
	collector := dataset.NewStatsCollector(c.Cadence.String())

	// Filler blocks never change: record their counts once and replicate
	// instead of re-sweeping them every snapshot date.
	if len(c.Networks) == 0 && !c.SkipFiller {
		for _, f := range c.Universe.Filler {
			f.Records(func(r netsim.Record) {
				collector.Observe(dates[0], r.IP, r.HostName)
			})
			series.SetConstant(f.Prefix, f.Count())
			if len(dates) > 1 {
				collector.ObserveRepeat(uint64((len(dates) - 1) * f.Count()))
			}
		}
	}

	// The dynamic networks are re-swept at every date through the engine.
	netsOnly := c
	netsOnly.SkipFiller = true
	src := NewSource(netsOnly)
	targets := src.Targets()
	sc := scanengine.New(src, c.engineOptions()...)
	if c.Store != nil {
		c.Observer.SetStoreStats(func() obs.StoreStats { return storeStats(c.Store) })
	}
	var storeErr error
	ctx := context.Background()
	for i, d := range dates {
		at := d.Add(c.timeOfDay())
		snap, err := sc.Scan(ctx, scanengine.Request{Targets: targets, At: at})
		if err != nil {
			break // background context: unreachable, but do not loop on a dead sweep
		}
		if c.Store != nil && storeErr == nil {
			storeErr = c.Store.Append(at, snap.Records)
			if storeErr == nil && c.CompactEvery > 0 && (i+1)%c.CompactEvery == 0 {
				_, storeErr = c.Store.CompactWriter(ctx, c.Store.WriterID(), histstore.CompactOptions{MinSeal: c.CompactEvery})
			}
		}
		c.Observer.CaptureFrame(i, d, snap)
		for ip, name := range snap.Records {
			collector.Observe(d, ip, name)
			series.Add(ip.Slash24(), i, 1)
		}
	}
	r := &Result{Series: series, Stats: collector.Stats(), StoreErr: storeErr}
	r.Stats.Start = c.Start
	r.Stats.End = c.End
	return r
}

// storeStats converts the store's summary to the obs-local mirror (obs
// does not import the storage layer).
func storeStats(st *histstore.Store) obs.StoreStats {
	s := st.Stats()
	return obs.StoreStats{
		Snapshots:       s.Snapshots,
		Blocks:          s.Blocks,
		BaseFrames:      s.BaseFrames,
		DeltaFrames:     s.DeltaFrames,
		Bytes:           s.Bytes,
		Segments:        s.Segments,
		SealedBytes:     s.SealedBytes,
		HotSegments:     s.HotSegments,
		Writers:         len(s.Writers),
		Compactions:     s.Compaction.Runs,
		SealedSnapshots: s.Compaction.SealedSnapshots,
		ReclaimedBytes:  s.Compaction.ReclaimedBytes,
	}
}

// Snapshot sweeps the campaign's coverage at one instant through the
// engine and returns the snapshot — the input of the Section 5
// privacy-leak analysis, which works on a single day's data.
func Snapshot(ctx context.Context, c Campaign, at time.Time) (*scanengine.Snapshot, error) {
	src := NewSource(c)
	sc := scanengine.New(src, c.engineOptions()...)
	return sc.Scan(ctx, scanengine.Request{Targets: src.Targets(), At: at})
}

// SnapshotRecords evaluates the full record set of the campaign's networks
// (and filler unless skipped) at one instant.
//
// Deprecated: use Snapshot, which sweeps through the sharded engine and
// supports cancellation.
func SnapshotRecords(c Campaign, at time.Time, emit func(netsim.Record)) {
	if len(c.Networks) == 0 && !c.SkipFiller {
		for _, f := range c.Universe.Filler {
			f.Records(emit)
		}
	}
	for _, n := range c.networks() {
		n.RecordsAt(at, emit)
	}
}

// WireSnapshot takes a snapshot of a set of prefixes by issuing one PTR
// query per address through a resolver — the platform-faithful path. The
// caller drives the simulated clock; done is invoked once every query has
// completed.
//
// Deprecated: use scanengine.New with Resolver.AsyncSource, or a
// synchronous source with the Scanner API.
func WireSnapshot(ctx context.Context, res *dnsclient.Resolver, prefixes []dnswire.Prefix, each func(dnswire.IPv4, dnsclient.Response), done func()) {
	var ips []dnswire.IPv4
	for _, p := range prefixes {
		n := p.NumAddresses()
		for i := 0; i < n; i++ {
			ips = append(ips, p.Nth(i))
		}
	}
	res.ScanPTR(ctx, ips, func(sr dnsclient.ScanResult) {
		if each != nil {
			each(sr.IP, sr.Response)
		}
	}, done)
}
