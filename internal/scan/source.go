package scan

import (
	"context"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/scanengine"
)

// UniverseSource adapts a campaign's universe to the snapshot engine. It
// implements both scanengine.Source (per-address probing) and
// scanengine.ShardSource (bulk enumeration — the fast path): the engine
// detects the latter and enumerates each target's records at the snapshot
// instant instead of probing every address, which is what makes
// multi-year daily campaigns over tens of thousands of /24s tractable.
// Enumeration is pure (netsim record evaluation mutates nothing), so the
// engine's workers can scan shards concurrently.
type UniverseSource struct {
	networks []*netsim.Network
	filler   []*netsim.FillerBlock

	netFor    map[dnswire.Prefix]*netsim.Network
	fillerFor map[dnswire.Prefix]*netsim.FillerBlock
}

// NewSource builds a UniverseSource over the campaign's network selection
// (honoring Networks and SkipFiller).
func NewSource(c Campaign) *UniverseSource {
	s := &UniverseSource{
		networks:  c.networks(),
		netFor:    make(map[dnswire.Prefix]*netsim.Network),
		fillerFor: make(map[dnswire.Prefix]*netsim.FillerBlock),
	}
	if len(c.Networks) == 0 && !c.SkipFiller {
		s.filler = c.Universe.Filler
	}
	for _, n := range s.networks {
		s.netFor[n.Config().Announced] = n
	}
	for _, f := range s.filler {
		s.fillerFor[f.Prefix] = f
	}
	return s
}

// Targets returns the source's sweep coverage: each network's announced
// prefix plus every filler /24. Pass it to scanengine.Request.
func (s *UniverseSource) Targets() []dnswire.Prefix {
	out := make([]dnswire.Prefix, 0, len(s.networks)+len(s.filler))
	for _, n := range s.networks {
		out = append(out, n.Config().Announced)
	}
	for _, f := range s.filler {
		out = append(out, f.Prefix)
	}
	return out
}

// ScanShard implements scanengine.ShardSource by enumerating the shard's
// records at the snapshot instant. Shards handed over by the engine are
// whole targets, so the common case is a single map hit; arbitrary shards
// fall back to an overlap walk.
func (s *UniverseSource) ScanShard(ctx context.Context, shard dnswire.Prefix, at time.Time, emit func(scanengine.Result)) error {
	emitRecord := func(r netsim.Record) {
		if shard.Contains(r.IP) {
			emit(scanengine.Result{IP: r.IP, Name: r.HostName, Found: true})
		}
	}
	if n, ok := s.netFor[shard]; ok {
		n.RecordsAt(at, emitRecord)
		return ctx.Err()
	}
	if f, ok := s.fillerFor[shard]; ok {
		f.Records(emitRecord)
		return ctx.Err()
	}
	for _, n := range s.networks {
		if n.Config().Announced.Overlaps(shard) {
			n.RecordsAt(at, emitRecord)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	for _, f := range s.filler {
		if f.Prefix.Overlaps(shard) {
			f.Records(emitRecord)
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return ctx.Err()
}

// LookupPTR implements scanengine.Source for per-address probing. The
// engine prefers ScanShard; this path serves spot checks, evaluating only
// the producer owning the address. The zero time probes "now" semantics
// are not meaningful for a simulated universe, so callers should set
// Request.At; absent records return an authoritative absence.
func (s *UniverseSource) LookupPTR(ctx context.Context, ip dnswire.IPv4) scanengine.Result {
	return s.LookupPTRAt(ctx, ip, time.Time{})
}

// LookupPTRAt evaluates one address at an instant.
func (s *UniverseSource) LookupPTRAt(ctx context.Context, ip dnswire.IPv4, at time.Time) scanengine.Result {
	if err := ctx.Err(); err != nil {
		return scanengine.Result{IP: ip, Err: err}
	}
	res := scanengine.Result{IP: ip}
	found := func(r netsim.Record) {
		if r.IP == ip {
			res.Found = true
			res.Name = r.HostName
		}
	}
	for _, n := range s.networks {
		if n.Config().Announced.Contains(ip) {
			n.RecordsAt(at, found)
			return res
		}
	}
	if f, ok := s.fillerFor[ip.Slash24()]; ok {
		f.Records(found)
	}
	return res
}
