package scan

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"rdnsprivacy/internal/dataset"
	"rdnsprivacy/internal/dnsclient"
	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/fabric"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/ipam"
	"rdnsprivacy/internal/netsim"
	"rdnsprivacy/internal/obs"
	"rdnsprivacy/internal/simclock"
)

func smallUniverse(t *testing.T) *netsim.Universe {
	t.Helper()
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  42,
		FillerSlash24s:        900,
		LeakyNetworks:         15,
		NonLeakyDynamic:       4,
		PeoplePerDynamicBlock: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func TestCampaignProducesSeries(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC) // Monday
	res := Run(Campaign{
		Universe: u,
		Start:    start,
		End:      start.AddDate(0, 0, 13),
		Cadence:  Daily,
	})
	if len(res.Series.Dates) != 14 {
		t.Fatalf("dates = %d, want 14", len(res.Series.Dates))
	}
	if len(res.Series.Counts) == 0 {
		t.Fatal("empty series")
	}
	if res.Stats.TotalResponses == 0 || res.Stats.UniquePTRs == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	// Every count is within a /24's capacity.
	for p, row := range res.Series.Counts {
		for i, c := range row {
			if c < 0 || c > 256 {
				t.Fatalf("count %d for %v day %d out of range", c, p, i)
			}
		}
	}
}

func TestWeeklyCadence(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	res := Run(Campaign{
		Universe: u,
		Start:    start,
		End:      start.AddDate(0, 0, 27),
		Cadence:  Weekly,
		Networks: []string{"Academic-A"},
	})
	if len(res.Series.Dates) != 4 {
		t.Fatalf("dates = %d, want 4 weekly snapshots over 28 days", len(res.Series.Dates))
	}
}

func TestNetworkRestrictedCampaignSkipsFiller(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	res := Run(Campaign{
		Universe: u, Start: start, End: start, Cadence: Daily,
		Networks: []string{"Academic-A"},
	})
	n, _ := u.NetworkByName("Academic-A")
	for p := range res.Series.Counts {
		if !n.Config().Announced.Contains(p.Addr) {
			t.Fatalf("series contains out-of-network prefix %v", p)
		}
	}
}

func TestFillerConstantAcrossDays(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	res := Run(Campaign{
		Universe: u, Start: start, End: start.AddDate(0, 0, 6), Cadence: Daily,
	})
	f := u.Filler[0]
	row := res.Series.Counts[f.Prefix]
	if row == nil {
		t.Fatal("filler prefix missing from series")
	}
	for i, c := range row {
		if c != f.Count() {
			t.Fatalf("filler count day %d = %d, want %d", i, c, f.Count())
		}
	}
}

func TestDynamicPrefixVaries(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC) // Monday
	res := Run(Campaign{
		Universe: u, Start: start, End: start.AddDate(0, 0, 13),
		Cadence: Daily, Networks: []string{"Enterprise-A"},
	})
	n, _ := u.NetworkByName("Enterprise-A")
	varies := false
	for _, b := range n.Config().Blocks {
		if b.Kind != netsim.BlockDynamic {
			continue
		}
		for _, p := range b.Prefix.Slash24s() {
			row := res.Series.Counts[p]
			if row == nil {
				continue
			}
			for i := 1; i < len(row); i++ {
				if row[i] != row[0] {
					varies = true
				}
			}
		}
	}
	if !varies {
		t.Fatal("no dynamic prefix varied over two weeks")
	}
}

func TestStatsCollectorViaCampaign(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 6, 7, 0, 0, 0, 0, time.UTC)
	one := Run(Campaign{Universe: u, Start: start, End: start, Cadence: Daily})
	two := Run(Campaign{Universe: u, Start: start, End: start.AddDate(0, 0, 1), Cadence: Daily})
	if two.Stats.TotalResponses <= one.Stats.TotalResponses {
		t.Fatalf("responses did not grow: %d then %d",
			one.Stats.TotalResponses, two.Stats.TotalResponses)
	}
	// Unique PTRs grow far slower than responses (names repeat daily).
	growth := float64(two.Stats.UniquePTRs) / float64(one.Stats.UniquePTRs)
	if growth > 1.5 {
		t.Fatalf("unique PTRs grew %.2fx in one day; uniqueness tracking broken", growth)
	}
}

func TestWireAndFastPathsAgree(t *testing.T) {
	// The fast path must produce exactly the records the wire path
	// observes, for a live network, including static and dynamic blocks.
	u, err := netsim.BuildStudyUniverse(netsim.UniverseConfig{
		Seed:                  7,
		FillerSlash24s:        1,
		LeakyNetworks:         10,
		NonLeakyDynamic:       1,
		PeoplePerDynamicBlock: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := u.NetworkByName("Enterprise-A")

	// Tuesday 10:30 local: employees online.
	at := time.Date(2021, 11, 2, 10, 30, 0, 0, time.UTC)
	clock := simclock.NewSimulated(at.Add(-2 * time.Hour))
	fab := fabric.New(clock, fabric.Config{Latency: time.Millisecond})
	if err := n.Start(fab); err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	clock.AdvanceTo(at)

	res, err := dnsclient.New(fab, dnsclient.Config{
		Bind:   fabric.Addr{IP: dnswire.MustIPv4("198.51.100.1"), Port: 40000},
		Server: n.DNSAddr(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wire-scan only the dynamic /24s (plus one static /24) to keep the
	// query count modest.
	var prefixes []dnswire.Prefix
	for _, b := range n.Config().Blocks {
		prefixes = append(prefixes, b.Prefix.Slash24s()...)
	}
	wire := make(map[dnswire.IPv4]dnswire.Name)
	doneAll := false
	WireSnapshot(context.Background(), res, prefixes, func(ip dnswire.IPv4, r dnsclient.Response) {
		if r.Outcome == dnsclient.OutcomeSuccess {
			wire[ip] = r.PTR
		} else if r.Outcome.IsError() {
			t.Errorf("wire scan error for %v: %v", ip, r.Outcome)
		}
	}, func() { doneAll = true })
	clock.Advance(5 * time.Minute)
	if !doneAll {
		t.Fatal("wire scan did not complete")
	}

	fast := make(map[dnswire.IPv4]dnswire.Name)
	n.RecordsAt(clock.Now(), func(r netsim.Record) { fast[r.IP] = r.HostName })

	// Live zones may contain lingering records for devices that left
	// within the lease window; the fast path models the same. Compare
	// the two maps, allowing the live side to lag by renewal timing:
	// every fast record present in wire must match exactly, and the set
	// difference must involve only dynamic-block addresses.
	for ip, name := range fast {
		if wname, ok := wire[ip]; ok && wname != name {
			t.Fatalf("name mismatch at %v: fast %q wire %q", ip, name, wname)
		}
	}
	missing, extra := 0, 0
	for ip := range fast {
		if _, ok := wire[ip]; !ok {
			missing++
			if !isDynamicIP(n, ip) {
				t.Fatalf("static record %v missing from wire scan", ip)
			}
		}
	}
	for ip := range wire {
		if _, ok := fast[ip]; !ok {
			extra++
			if !isDynamicIP(n, ip) {
				t.Fatalf("static record %v extra in wire scan", ip)
			}
		}
	}
	total := len(fast)
	if total == 0 {
		t.Fatal("no records at all")
	}
	if missing+extra > total/10 {
		t.Fatalf("wire/fast divergence too large: %d missing, %d extra of %d",
			missing, extra, total)
	}
}

func isDynamicIP(n *netsim.Network, ip dnswire.IPv4) bool {
	for _, b := range n.Config().Blocks {
		if b.Kind == netsim.BlockDynamic && b.Policy == ipam.PolicyCarryOver && b.Prefix.Contains(ip) {
			return true
		}
	}
	return false
}

func TestDateRange(t *testing.T) {
	start := time.Date(2021, 1, 1, 0, 0, 0, 0, time.UTC)
	days := dataset.DateRange(start, start.AddDate(0, 0, 9), 1)
	if len(days) != 10 {
		t.Fatalf("daily range = %d, want 10", len(days))
	}
	weeks := dataset.DateRange(start, start.AddDate(0, 0, 21), 7)
	if len(weeks) != 4 {
		t.Fatalf("weekly range = %d, want 4", len(weeks))
	}
}

// TestCampaignPersistsToStore pins the Campaign.Store wiring: every
// snapshot lands in the history store as one append, the store's Range
// over a day reproduces that day's record count, and with an Observer
// attached every frame carries the store's cumulative state.
func TestCampaignPersistsToStore(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	st, err := histstore.Open(filepath.Join(t.TempDir(), "campaign.hist"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := obs.NewRecorder(nil)
	res := Run(Campaign{
		Universe:   u,
		Start:      start,
		End:        start.AddDate(0, 0, 6),
		Cadence:    Daily,
		Networks:   []string{u.Networks[0].Name()},
		SkipFiller: true,
		Observer:   rec,
		Store:      st,
	})
	if res.StoreErr != nil {
		t.Fatalf("store error: %v", res.StoreErr)
	}
	if st.Len() != 7 {
		t.Fatalf("store has %d snapshots, want 7", st.Len())
	}
	// The store's full-range row count per day equals the series total.
	times := st.Times()
	for i, d := range times {
		rows, err := st.Range(dnswire.Prefix{}, d, d)
		if err != nil {
			t.Fatal(err)
		}
		var want int
		for _, row := range res.Series.Counts {
			want += row[i]
		}
		if len(rows) != want {
			t.Fatalf("day %d: store %d rows, series %d", i, len(rows), want)
		}
	}
	// Every frame carries the store state; the last frame matches Stats.
	frames := rec.Frames()
	if len(frames) != 7 {
		t.Fatalf("%d frames, want 7", len(frames))
	}
	for i, f := range frames {
		if f.Store == nil {
			t.Fatalf("frame %d missing store stats", i)
		}
		if f.Store.Snapshots != i+1 {
			t.Fatalf("frame %d: %d snapshots, want %d", i, f.Store.Snapshots, i+1)
		}
	}
	s := st.Stats()
	last := frames[6].Store
	if last.Blocks != s.Blocks || last.BaseFrames != s.BaseFrames ||
		last.DeltaFrames != s.DeltaFrames || last.Bytes != s.Bytes {
		t.Fatalf("last frame %+v vs stats %+v", last, s)
	}
}

// TestCampaignStoreAppendFailure pins the degradation contract: a store
// that rejects appends (closed underneath the campaign) surfaces the
// first error in StoreErr while the sweep itself completes.
func TestCampaignStoreAppendFailure(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	st, err := histstore.Open(filepath.Join(t.TempDir(), "campaign.hist"))
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	res := Run(Campaign{
		Universe:   u,
		Start:      start,
		End:        start.AddDate(0, 0, 2),
		Cadence:    Daily,
		Networks:   []string{u.Networks[0].Name()},
		SkipFiller: true,
		Store:      st,
	})
	if res.StoreErr == nil {
		t.Fatal("closed store accepted appends")
	}
	if len(res.Series.Dates) != 3 || res.Stats.TotalResponses == 0 {
		t.Fatalf("sweep did not complete: %+v", res.Stats)
	}
}

// TestCampaignCompactEvery pins the in-campaign compaction wiring: with
// CompactEvery set the campaign seals its own tail every N appends, the
// history survives intact, and the health frames report the compaction
// progress.
func TestCampaignCompactEvery(t *testing.T) {
	u := smallUniverse(t)
	start := time.Date(2021, 1, 4, 0, 0, 0, 0, time.UTC)
	st, err := histstore.Open(filepath.Join(t.TempDir(), "campaign.hist"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rec := obs.NewRecorder(nil)
	res := Run(Campaign{
		Universe:     u,
		Start:        start,
		End:          start.AddDate(0, 0, 6),
		Cadence:      Daily,
		Networks:     []string{u.Networks[0].Name()},
		SkipFiller:   true,
		Observer:     rec,
		Store:        st,
		CompactEvery: 3,
	})
	if res.StoreErr != nil {
		t.Fatalf("store error: %v", res.StoreErr)
	}
	s := st.Stats()
	if st.Len() != 7 || s.Segments != 2 || s.Compaction.Runs != 2 || s.Compaction.SealedSnapshots != 6 {
		t.Fatalf("after compacting campaign: len %d, stats %+v", st.Len(), s)
	}
	rows, err := st.Range(dnswire.Prefix{}, st.Times()[0], st.Times()[6])
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("compacted campaign history is empty")
	}
	last := rec.Frames()[6].Store
	if last.Compactions != 2 || last.SealedSnapshots != 6 || last.Segments != 2 {
		t.Fatalf("last frame store stats: %+v", last)
	}
}
