package scan

import (
	"sort"

	"rdnsprivacy/internal/dnswire"
)

// The paper's core observation is that "if changes to the (public) DNS are
// made as client devices join or leave a network, one may be able to infer
// network dynamics by capturing DNS changes" (Section 2.1). This file is
// the capturing: a diff engine over successive snapshots that turns raw
// record sets into join/leave/rename events — what a tracker actually
// consumes.

// RecordSet maps addresses to their PTR targets at one instant.
type RecordSet map[dnswire.IPv4]dnswire.Name

// ChangeKind classifies a record-set delta.
type ChangeKind int

// Change kinds.
const (
	// RecordAdded: a PTR appeared — a client (likely) joined.
	RecordAdded ChangeKind = iota
	// RecordRemoved: a PTR vanished — a client left and its lease ended.
	RecordRemoved
	// RecordChanged: the name at an address changed — the address was
	// reallocated to a different client.
	RecordChanged
)

// String returns a mnemonic.
func (k ChangeKind) String() string {
	switch k {
	case RecordAdded:
		return "added"
	case RecordRemoved:
		return "removed"
	case RecordChanged:
		return "changed"
	default:
		return "unknown"
	}
}

// Change is one observed delta between snapshots.
type Change struct {
	Kind ChangeKind
	IP   dnswire.IPv4
	// Old is the previous name (Removed/Changed).
	Old dnswire.Name
	// New is the current name (Added/Changed).
	New dnswire.Name
}

// DiffRecords compares two snapshots and returns the deltas, sorted by
// address.
func DiffRecords(prev, cur RecordSet) []Change {
	var out []Change
	for ip, oldName := range prev {
		newName, ok := cur[ip]
		switch {
		case !ok:
			out = append(out, Change{Kind: RecordRemoved, IP: ip, Old: oldName})
		case newName != oldName:
			out = append(out, Change{Kind: RecordChanged, IP: ip, Old: oldName, New: newName})
		}
	}
	for ip, newName := range cur {
		if _, ok := prev[ip]; !ok {
			out = append(out, Change{Kind: RecordAdded, IP: ip, New: newName})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].IP != out[j].IP {
			return out[i].IP.Uint32() < out[j].IP.Uint32()
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
