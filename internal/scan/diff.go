package scan

import (
	"rdnsprivacy/internal/scanengine"
)

// The paper's core observation is that "if changes to the (public) DNS are
// made as client devices join or leave a network, one may be able to infer
// network dynamics by capturing DNS changes" (Section 2.1). The capturing
// lives in internal/scanengine, which diffs successive snapshots
// incrementally while a sweep merges; this package re-exports the types so
// existing consumers keep compiling.

// RecordSet maps addresses to their PTR targets at one instant.
type RecordSet = scanengine.RecordSet

// ChangeKind classifies a record-set delta.
type ChangeKind = scanengine.ChangeKind

// Change kinds.
const (
	// RecordAdded: a PTR appeared — a client (likely) joined.
	RecordAdded = scanengine.RecordAdded
	// RecordRemoved: a PTR vanished — a client left and its lease ended.
	RecordRemoved = scanengine.RecordRemoved
	// RecordChanged: the name at an address changed — the address was
	// reallocated to a different client.
	RecordChanged = scanengine.RecordChanged
)

// Change is one observed delta between snapshots.
type Change = scanengine.Change

// DiffRecords compares two snapshots and returns the deltas, sorted by
// address.
func DiffRecords(prev, cur RecordSet) []Change {
	return scanengine.DiffRecords(prev, cur)
}
