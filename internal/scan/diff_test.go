package scan

import (
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/netsim"
)

func TestDiffRecords(t *testing.T) {
	a := dnswire.MustIPv4("10.0.0.1")
	b := dnswire.MustIPv4("10.0.0.2")
	c := dnswire.MustIPv4("10.0.0.3")
	d := dnswire.MustIPv4("10.0.0.4")
	prev := RecordSet{
		a: dnswire.MustName("brians-iphone.dyn.x.edu"),
		b: dnswire.MustName("emmas-ipad.dyn.x.edu"),
		c: dnswire.MustName("noahs-mbp.dyn.x.edu"),
	}
	cur := RecordSet{
		a: dnswire.MustName("brians-iphone.dyn.x.edu"), // unchanged
		b: dnswire.MustName("jacobs-dell.dyn.x.edu"),   // reallocated
		d: dnswire.MustName("mias-galaxy.dyn.x.edu"),   // joined
		// c removed: left.
	}
	changes := DiffRecords(prev, cur)
	if len(changes) != 3 {
		t.Fatalf("changes = %+v", changes)
	}
	if changes[0].Kind != RecordChanged || changes[0].IP != b ||
		changes[0].Old != dnswire.MustName("emmas-ipad.dyn.x.edu") ||
		changes[0].New != dnswire.MustName("jacobs-dell.dyn.x.edu") {
		t.Fatalf("change 0 = %+v", changes[0])
	}
	if changes[1].Kind != RecordRemoved || changes[1].IP != c {
		t.Fatalf("change 1 = %+v", changes[1])
	}
	if changes[2].Kind != RecordAdded || changes[2].IP != d {
		t.Fatalf("change 2 = %+v", changes[2])
	}
}

func TestDiffRecordsEmptyCases(t *testing.T) {
	if got := DiffRecords(nil, nil); len(got) != 0 {
		t.Fatalf("diff of nothing = %v", got)
	}
	only := RecordSet{dnswire.MustIPv4("10.0.0.1"): dnswire.MustName("x.example")}
	if got := DiffRecords(nil, only); len(got) != 1 || got[0].Kind != RecordAdded {
		t.Fatalf("adds = %v", got)
	}
	if got := DiffRecords(only, nil); len(got) != 1 || got[0].Kind != RecordRemoved {
		t.Fatalf("removes = %v", got)
	}
}

func TestDiffAgainstLiveNetwork(t *testing.T) {
	// Two snapshot instants of a real network: the diff must reflect
	// schedule-driven joins.
	u := smallUniverse(t)
	n, _ := u.NetworkByName("Enterprise-A")
	snapshotAt := func(hour int) RecordSet {
		at := time.Date(2021, 11, 2, hour, 0, 0, 0, time.UTC) // Tuesday
		rs := RecordSet{}
		n.RecordsAt(at, func(r netsim.Record) { rs[r.IP] = r.HostName })
		return rs
	}
	night := snapshotAt(4)
	day := snapshotAt(11)
	changes := DiffRecords(night, day)
	added := 0
	for _, ch := range changes {
		if ch.Kind == RecordAdded {
			added++
		}
	}
	if added == 0 {
		t.Fatal("no joins between 04:00 and 11:00 on a Tuesday")
	}
}

func TestChangeKindStrings(t *testing.T) {
	if RecordAdded.String() != "added" || RecordRemoved.String() != "removed" ||
		RecordChanged.String() != "changed" || ChangeKind(9).String() != "unknown" {
		t.Fatal("ChangeKind.String broken")
	}
}
