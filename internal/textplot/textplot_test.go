package textplot

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"rdnsprivacy/internal/analysis"
)

func TestBars(t *testing.T) {
	var buf bytes.Buffer
	Bars(&buf, "Figure X", []BarItem{
		{Label: "iphone", Value: 1000, Value2: 100},
		{Label: "ipad", Value: 10, Value2: 1},
	}, BarsOptions{Log: true, FirstSeries: "all", SecondSeries: "filtered"})
	out := buf.String()
	if !strings.Contains(out, "Figure X") || !strings.Contains(out, "iphone") {
		t.Fatalf("output: %s", out)
	}
	// The log-scaled 1000 bar must be longer than the 10 bar.
	lines := strings.Split(out, "\n")
	lenOf := func(label string) int {
		for _, l := range lines {
			if strings.Contains(l, label) {
				return strings.Count(l, "#")
			}
		}
		return -1
	}
	if lenOf("iphone") <= lenOf("ipad") {
		t.Fatal("bar lengths not ordered")
	}
}

func TestHistogramPlot(t *testing.T) {
	h := analysis.NewHistogram(0, 180, 36)
	for i := 0; i < 100; i++ {
		h.Observe(5)
		h.Observe(60)
	}
	var buf bytes.Buffer
	HistogramPlot(&buf, "Figure 7a", h, "m", 40)
	if !strings.Contains(buf.String(), "Figure 7a") {
		t.Fatal("missing title")
	}
	if strings.Count(buf.String(), "\n") < 36 {
		t.Fatal("missing bins")
	}
}

func TestCDFPlot(t *testing.T) {
	var buf bytes.Buffer
	CDFPlot(&buf, "Figure 7b", []Curve{
		{Label: "Academic-A", CDF: analysis.NewCDF([]float64{5, 10, 30, 55})},
	}, 120, 12, "min")
	out := buf.String()
	if !strings.Contains(out, "Academic-A") || !strings.Contains(out, "100%") {
		t.Fatalf("output: %s", out)
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
	s := analysis.Series{}
	for i := 0; i < 100; i++ {
		s.Dates = append(s.Dates, start.AddDate(0, 0, i))
		s.Values = append(s.Values, float64(i%30))
	}
	var buf bytes.Buffer
	TimeSeries(&buf, "Figure 9", []LabeledSeries{{Label: "Academic-A", Series: s}}, 26)
	if !strings.Contains(buf.String(), "Academic-A") {
		t.Fatal("missing series label")
	}
	var empty bytes.Buffer
	TimeSeries(&empty, "none", nil, 26)
	if !strings.Contains(empty.String(), "no data") {
		t.Fatal("empty case not handled")
	}
}

func TestRaster(t *testing.T) {
	start := time.Date(2021, 11, 1, 0, 0, 0, 0, time.UTC) // Monday
	tr := RasterTrack{
		Label: "brians-mbp",
		PresentOn: func(from, to time.Time) bool {
			return from.Weekday() == time.Tuesday && from.Hour() >= 9 && from.Hour() < 17
		},
	}
	var buf bytes.Buffer
	Raster(&buf, "Figure 8", []RasterTrack{tr}, start, 2, func(d time.Time) rune {
		if d.Weekday() == time.Saturday || d.Weekday() == time.Sunday {
			return '░'
		}
		return ' '
	})
	out := buf.String()
	if !strings.Contains(out, "brians-mbp") || !strings.Contains(out, "█") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "░") {
		t.Fatal("weekend highlight missing")
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, "Table 4", []string{"Network", "Size"}, [][]string{
		{"Academic-A", "/16"},
		{"ISP-C", "/16"},
	})
	out := buf.String()
	if !strings.Contains(out, "Academic-A") || !strings.Contains(out, "Network") {
		t.Fatalf("output: %s", out)
	}
}

func TestBreakdown(t *testing.T) {
	var buf bytes.Buffer
	Breakdown(&buf, "Figure 4", map[string]int{"academic": 62, "isp": 15})
	out := buf.String()
	if !strings.Contains(out, "academic") {
		t.Fatalf("output: %s", out)
	}
	// Academic should be listed first (larger share).
	if strings.Index(out, "academic") > strings.Index(out, "isp") {
		t.Fatal("breakdown not sorted by share")
	}
	var empty bytes.Buffer
	Breakdown(&empty, "x", nil)
	if !strings.Contains(empty.String(), "empty") {
		t.Fatal("empty case not handled")
	}
}

func TestBreakdownTieOrder(t *testing.T) {
	// Equal counts must render in a deterministic (alphabetical) order,
	// not whatever order the map iterates in.
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		Breakdown(&buf, "t", map[string]int{"other": 7, "isp": 7, "academic": 36})
		out := buf.String()
		if strings.Index(out, "isp") > strings.Index(out, "other") {
			t.Fatalf("tie not broken alphabetically:\n%s", out)
		}
	}
}
