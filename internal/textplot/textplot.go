// Package textplot renders the study's tables and figures as deterministic
// ASCII, so every table and figure of the paper can be regenerated on a
// terminal by cmd/experiments without any plotting dependency.
package textplot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"rdnsprivacy/internal/analysis"
)

// BarItem is one row of a horizontal bar chart, with an optional second
// series (the paper's figures 2 and 3 contrast "all" vs "filtered").
type BarItem struct {
	Label  string
	Value  float64
	Value2 float64
}

// BarsOptions tunes Bars.
type BarsOptions struct {
	// Log renders bar lengths on a log10 scale (the paper's Figures 2
	// and 3 use logarithmic axes).
	Log bool
	// Width is the maximum bar width in characters (default 50).
	Width int
	// SecondSeries labels the second series when present.
	FirstSeries, SecondSeries string
}

// Bars renders a horizontal bar chart.
func Bars(w io.Writer, title string, items []BarItem, opts BarsOptions) {
	if opts.Width <= 0 {
		opts.Width = 50
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if opts.SecondSeries != "" {
		fmt.Fprintf(w, "  #: %s   o: %s\n", opts.FirstSeries, opts.SecondSeries)
	}
	maxVal := 0.0
	maxLabel := 0
	for _, it := range items {
		if it.Value > maxVal {
			maxVal = it.Value
		}
		if it.Value2 > maxVal {
			maxVal = it.Value2
		}
		if len(it.Label) > maxLabel {
			maxLabel = len(it.Label)
		}
	}
	scale := func(v float64) int {
		if v <= 0 || maxVal <= 0 {
			return 0
		}
		if opts.Log {
			if maxVal <= 1 {
				return opts.Width
			}
			return int(math.Log10(v+1) / math.Log10(maxVal+1) * float64(opts.Width))
		}
		return int(v / maxVal * float64(opts.Width))
	}
	for _, it := range items {
		fmt.Fprintf(w, "  %-*s |%-*s %12.0f\n", maxLabel, it.Label,
			opts.Width, strings.Repeat("#", scale(it.Value)), it.Value)
		if opts.SecondSeries != "" {
			fmt.Fprintf(w, "  %-*s |%-*s %12.0f\n", maxLabel, "",
				opts.Width, strings.Repeat("o", scale(it.Value2)), it.Value2)
		}
	}
	fmt.Fprintln(w)
}

// HistogramPlot renders a histogram with one row per bin.
func HistogramPlot(w io.Writer, title string, h *analysis.Histogram, unit string, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		lo := h.Min + float64(i)*h.BinWidth
		fmt.Fprintf(w, "  %6.0f-%-6.0f%s |%-*s %8d\n", lo, lo+h.BinWidth, unit,
			width, strings.Repeat("#", bar), c)
	}
	fmt.Fprintln(w)
}

// Curve is one labelled CDF.
type Curve struct {
	Label string
	CDF   *analysis.CDF
}

// CDFPlot renders CDF curves as rows of percentages sampled along the x
// axis — the terminal rendition of Figure 7b.
func CDFPlot(w io.Writer, title string, curves []Curve, xMax float64, steps int, unit string) {
	if steps <= 0 {
		steps = 12
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	labelW := 8
	for _, c := range curves {
		if len(c.Label) > labelW {
			labelW = len(c.Label)
		}
	}
	fmt.Fprintf(w, "  %-*s", labelW, "")
	for s := 1; s <= steps; s++ {
		fmt.Fprintf(w, " %5.0f", xMax*float64(s)/float64(steps))
	}
	fmt.Fprintf(w, "  (%s)\n", unit)
	for _, c := range curves {
		fmt.Fprintf(w, "  %-*s", labelW, c.Label)
		for s := 1; s <= steps; s++ {
			x := xMax * float64(s) / float64(steps)
			fmt.Fprintf(w, " %4.0f%%", 100*c.CDF.At(x))
		}
		fmt.Fprintf(w, "  (n=%d)\n", c.CDF.Len())
	}
	fmt.Fprintln(w)
}

// LabeledSeries is one labelled time series.
type LabeledSeries struct {
	Label  string
	Series analysis.Series
}

// TimeSeries renders series as a down-sampled sparkline table: one row per
// series, one column per sample.
func TimeSeries(w io.Writer, title string, series []LabeledSeries, columns int) {
	if columns <= 0 {
		columns = 26
	}
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	if len(series) == 0 || len(series[0].Series.Dates) == 0 {
		fmt.Fprintln(w, "  (no data)")
		return
	}
	labelW := 8
	for _, s := range series {
		if len(s.Label) > labelW {
			labelW = len(s.Label)
		}
	}
	glyphs := []rune(" .:-=+*#%@")
	n := len(series[0].Series.Dates)
	step := n / columns
	if step < 1 {
		step = 1
	}
	// Header: year-month markers.
	fmt.Fprintf(w, "  %-*s ", labelW, "")
	for i := 0; i < n; i += step {
		d := series[0].Series.Dates[i]
		if d.Day() <= step || i == 0 {
			fmt.Fprintf(w, "|")
		} else {
			fmt.Fprintf(w, " ")
		}
	}
	fmt.Fprintln(w)
	for _, s := range series {
		maxV := 0.0
		for _, v := range s.Series.Values {
			if v > maxV {
				maxV = v
			}
		}
		fmt.Fprintf(w, "  %-*s ", labelW, s.Label)
		for i := 0; i < len(s.Series.Values); i += step {
			v := s.Series.Values[i]
			g := 0
			if maxV > 0 {
				g = int(v / maxV * float64(len(glyphs)-1))
			}
			fmt.Fprintf(w, "%c", glyphs[g])
		}
		fmt.Fprintf(w, "  (max %.0f)\n", maxV)
	}
	// Footer: date range.
	fmt.Fprintf(w, "  %-*s %s .. %s\n\n", labelW, "",
		series[0].Series.Dates[0].Format("2006-01-02"),
		series[0].Series.Dates[len(series[0].Series.Dates)-1].Format("2006-01-02"))
}

// RasterTrack is one device row of a weekly presence raster (Figure 8).
type RasterTrack struct {
	Label string
	// PresentOn reports presence within a time window.
	PresentOn func(from, to time.Time) bool
}

// Raster renders a Figure 8-style weekly raster: one block of rows per
// week, one row per device, one cell per hour from `start` (a Monday) over
// `weeks` weeks. highlight marks special dates (weekends, holidays).
func Raster(w io.Writer, title string, tracks []RasterTrack, start time.Time, weeks int, highlight func(time.Time) rune) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	labelW := 8
	for _, tr := range tracks {
		if len(tr.Label) > labelW {
			labelW = len(tr.Label)
		}
	}
	fmt.Fprintf(w, "  %-*s  %s\n", labelW, "week",
		"Mon....... Tue....... Wed....... Thu....... Fri....... Sat....... Sun.......")
	for wk := 0; wk < weeks; wk++ {
		weekStart := start.AddDate(0, 0, wk*7)
		for _, tr := range tracks {
			fmt.Fprintf(w, "  %-*s  ", labelW, tr.Label)
			for d := 0; d < 7; d++ {
				day := weekStart.AddDate(0, 0, d)
				mark := ' '
				if highlight != nil {
					mark = highlight(day)
				}
				// 10 cells per day: 2.4h each, 08:00-24:00 focus
				// would hide night joins; use the full day.
				for c := 0; c < 10; c++ {
					from := day.Add(time.Duration(c) * 144 * time.Minute)
					to := from.Add(144 * time.Minute)
					if tr.PresentOn(from, to) {
						fmt.Fprint(w, "█")
					} else if mark != ' ' {
						fmt.Fprintf(w, "%c", mark)
					} else {
						fmt.Fprint(w, "·")
					}
				}
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, " wk%d\n", wk+1)
		}
		fmt.Fprintln(w)
	}
}

// Table renders an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		fmt.Fprint(w, "  ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			}
		}
		fmt.Fprintln(w)
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// Breakdown renders a one-line percentage breakdown (Figure 4's shape).
func Breakdown(w io.Writer, title string, counts map[string]int) {
	fmt.Fprintf(w, "%s\n%s\n", title, strings.Repeat("=", len(title)))
	total := 0
	keys := make([]string, 0, len(counts))
	for k, v := range counts {
		total += v
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	if total == 0 {
		fmt.Fprintln(w, "  (empty)")
		return
	}
	for _, k := range keys {
		pct := 100 * float64(counts[k]) / float64(total)
		fmt.Fprintf(w, "  %-12s %5.1f%% %s (%d)\n", k, pct,
			strings.Repeat("#", int(pct/2)), counts[k])
	}
	fmt.Fprintln(w)
}
