package rdnsserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// TestMultiWriterCompactionUnderLoad is the multi-writer race test: three
// concurrent campaign appenders grow their own writer tails of one store
// while four query workers hammer the daemon's v1 endpoints and a live
// compaction pass seals the finished writer's history — all under -race
// (make race covers this package). Every query must answer 200, the
// compaction must seal the idle writer and skip the live ones, and the
// cache/tier counters in /v1/stats must agree with the hist_* metrics.
func TestMultiWriterCompactionUnderLoad(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir() + "/hist"
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)

	// Writer w0: a finished campaign — 20 days, then released. This is
	// the tail the live compaction pass can seal.
	w0, err := histstore.Open(dir, histstore.WithWriter("w0"), histstore.WithBaseInterval(4))
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 20; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day)),
		}
		if err := w0.Append(start.AddDate(0, 0, day), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w0.Close(); err != nil {
		t.Fatal(err)
	}

	// The daemon serves a read-only handle with its own telemetry; the
	// appenders run as separate (untelemetered) stores so the registry
	// mirrors exactly one store's counters.
	reg := telemetry.NewRegistry()
	serving, err := histstore.Open(dir,
		histstore.WithReadOnly(), histstore.WithCache(256),
		histstore.WithTelemetry(reg), histstore.WithHotSegments(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{Sink: reg})
	defer srv.Close()
	h := srv.Handler()

	// Three live campaign appenders, each owning its writer tail. The
	// stores open sequentially BEFORE any goroutine appends — a store's
	// append-monotonicity floor is the latest instant visible at its
	// open, so opening them all against w0's 20 days lets the appends
	// themselves race freely. Instants interleave (hour = writer) and
	// stay strictly increasing per writer.
	var appenders sync.WaitGroup
	appendErr := make(chan error, 3)
	stores := make([]*histstore.Store, 0, 3)
	for wi := 1; wi <= 3; wi++ {
		st, err := histstore.Open(dir, histstore.WithWriter(fmt.Sprintf("w%d", wi)), histstore.WithBaseInterval(4))
		if err != nil {
			t.Fatalf("open w%d: %v", wi, err)
		}
		defer st.Close()
		stores = append(stores, st)
	}
	for wi := 1; wi <= 3; wi++ {
		wi, st := wi, stores[wi-1]
		appenders.Add(1)
		go func() {
			defer appenders.Done()
			for day := 0; day < 15; day++ {
				at := start.AddDate(0, 0, 20+day).Add(time.Duration(wi) * time.Hour)
				recs := scanengine.RecordSet{
					dnswire.MustIPv4(fmt.Sprintf("10.0.%d.7", wi)): dnswire.MustName(fmt.Sprintf("w%d-stable.lan.example.net", wi)),
					dnswire.MustIPv4(fmt.Sprintf("10.0.%d.9", wi)): dnswire.MustName(fmt.Sprintf("w%d-lease-%d.dyn.example.net", wi, day)),
				}
				if err := st.Append(at, recs); err != nil {
					appendErr <- fmt.Errorf("append w%d day %d: %w", wi, day, err)
					return
				}
			}
		}()
	}

	// Four query workers racing the appends and the compaction.
	urls := []string{
		"/v1/at?ip=10.0.1.7&t=2020-03-08",
		"/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-15&limit=100",
		"/v1/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-19",
		"/v1/name?token=brian",
		"/v1/stats",
	}
	stop := make(chan struct{})
	var workers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(w+i)%len(urls)]
				req := httptest.NewRequest("GET", u, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("worker %d: GET %s: %d %s", w, u, rec.Code, rec.Body)
					return
				}
			}
		}()
	}

	// One live compaction pass through the admin endpoint while the
	// appenders and query workers run. The serving handle pinned the
	// manifest as of its open, when only w0 existed, so the sweep sees
	// exactly that writer and seals it; the live writers (invisible to
	// this handle until a reload) keep appending undisturbed. Writers the
	// sweep *can* see but not lock are covered by TestCompactAllWriters
	// in histstore.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/admin/compact", nil))
	if rec.Code != 200 {
		t.Fatalf("compact: %d %s", rec.Code, rec.Body)
	}
	var cr struct {
		Results []struct {
			Writer  string `json:"writer"`
			Sealed  int    `json:"sealed"`
			Skipped string `json:"skipped"`
		} `json:"results"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 1 || cr.Results[0].Writer != "w0" ||
		cr.Results[0].Sealed != 20 || cr.Results[0].Skipped != "" {
		t.Fatalf("compact results: %+v", cr.Results)
	}

	appenders.Wait()
	close(stop)
	workers.Wait()
	select {
	case err := <-appendErr:
		t.Fatal(err)
	default:
	}

	// The stats surface and the hist_* instruments describe the same
	// store: cache, tier, and compaction counters must agree exactly now
	// that all query traffic has stopped.
	snap := srv.StatsSnapshot().Store
	if snap.Segments != 1 || snap.Compaction.Runs != 1 || snap.Compaction.SealedSnapshots != 20 {
		t.Fatalf("post-compaction stats: %+v", snap)
	}
	if got := reg.Counter(histstore.MetricCacheHits).Value(); got != snap.CacheHits {
		t.Fatalf("hist_cache_hits_total %d != stats %d", got, snap.CacheHits)
	}
	if got := reg.Counter(histstore.MetricCacheMisses).Value(); got != snap.CacheMisses {
		t.Fatalf("hist_cache_misses_total %d != stats %d", got, snap.CacheMisses)
	}
	if got := reg.Counter(histstore.MetricTierLoads).Value(); got != snap.TierLoads {
		t.Fatalf("hist_tier_loads_total %d != stats %d", got, snap.TierLoads)
	}
	if got := reg.Counter(histstore.MetricTierEvictions).Value(); got != snap.TierEvictions {
		t.Fatalf("hist_tier_evictions_total %d != stats %d", got, snap.TierEvictions)
	}
	if got := reg.Counter(histstore.MetricCompactions).Value(); got != snap.Compaction.Runs {
		t.Fatalf("hist_compactions_total %d != stats %d", got, snap.Compaction.Runs)
	}
	if got := reg.Counter(histstore.MetricCompactSealed).Value(); got != snap.Compaction.SealedSnapshots {
		t.Fatalf("hist_compact_sealed_snapshots_total %d != stats %d", got, snap.Compaction.SealedSnapshots)
	}
	if snap.HotSegments > 1 {
		t.Fatalf("hot segments %d over a budget of 1", snap.HotSegments)
	}

	// The serving store still answers correctly after the in-place seal:
	// w0's history is in the segment now, bit-identical.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/at?ip=10.0.1.7&t=2020-03-08", nil))
	if rec.Code != 200 {
		t.Fatalf("post-compaction query: %d %s", rec.Code, rec.Body)
	}
	var at struct {
		Found bool   `json:"found"`
		Name  string `json:"name"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &at); err != nil {
		t.Fatal(err)
	}
	if !at.Found || at.Name != "brians-iphone.lan.example.net." {
		t.Fatalf("post-compaction At: %s", rec.Body)
	}
}

// TestHotReloadDuringCompaction extends the reload race: the serving
// handle swaps generations while a compaction rewrites the store on
// disk underneath. Reopens land on whichever manifest is current —
// possibly mid-rename, which the open retry absorbs — and no query or
// reload may fail.
func TestHotReloadDuringCompaction(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir() + "/hist"
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	writer, err := histstore.Open(dir, histstore.WithBaseInterval(3))
	if err != nil {
		t.Fatal(err)
	}
	for day := 0; day < 30; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.1.9"): dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day)),
		}
		if err := writer.Append(start.AddDate(0, 0, day), recs); err != nil {
			t.Fatal(err)
		}
	}

	serving, err := histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(64))
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{
		Reopen: func() (*histstore.Store, error) {
			return histstore.Open(dir, histstore.WithReadOnly(), histstore.WithCache(64))
		},
	})
	defer srv.Close()
	h := srv.Handler()

	// The compactor: seal the writer's 30 days while reloads churn. The
	// writer owns its tail, so it compacts in place on its own handle.
	compactDone := make(chan error, 1)
	go func() {
		defer writer.Close()
		res, err := writer.CompactWriter(t.Context(), histstore.DefaultWriter, histstore.CompactOptions{})
		if err == nil && res.Sealed != 30 {
			err = fmt.Errorf("sealed %d, want 30", res.Sealed)
		}
		compactDone <- err
	}()

	// Reload churn racing the compaction's commit and cleanup: every
	// swap must succeed and serve all 30 snapshots.
	for i := 0; i < 10; i++ {
		resp, err := srv.Reload()
		if err != nil {
			t.Fatalf("reload %d during compaction: %v", i, err)
		}
		if resp.Snapshots != 30 {
			t.Fatalf("reload %d: %d snapshots, want 30", i, resp.Snapshots)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/at?ip=10.0.1.7&t=2020-03-15", nil))
		if rec.Code != 200 {
			t.Fatalf("query during compaction/reload churn: %d %s", rec.Code, rec.Body)
		}
	}
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}

	// A final reload lands on the compacted layout and serves it.
	resp, err := srv.Reload()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshots != 30 {
		t.Fatalf("final reload: %+v", resp)
	}
	stats := srv.StatsSnapshot().Store
	if stats.Segments != 1 {
		t.Fatalf("final serving store sees %d segments, want 1", stats.Segments)
	}
}

// TestAdminCompactEndpoint covers the admin surface around the happy
// path the load test takes: wrong method, a sweep already in flight
// (409 compact_busy), and the skipped-writer response once there is
// nothing left to seal.
func TestAdminCompactEndpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, writer, _ := fixture(t, 10)
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := histstore.Open(path, histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{})
	defer srv.Close()
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/admin/compact", nil))
	if rec.Code != 405 {
		t.Fatalf("GET compact: %d", rec.Code)
	}

	// Park a sweep at its mid-protocol fault point; a second POST while
	// it hangs must answer 409 without touching the store.
	parked := make(chan struct{})
	resume := make(chan struct{})
	testutil.SetFaultHook(func(point string) error {
		if point == "histstore.compact.sealed" {
			close(parked)
			<-resume
		}
		return nil
	})
	defer testutil.SetFaultHook(nil)
	firstDone := make(chan error, 1)
	go func() {
		_, err := srv.Compact(context.Background())
		firstDone <- err
	}()
	<-parked
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/admin/compact", nil))
	if rec.Code != 409 || !strings.Contains(rec.Body.String(), rdnsclient.CodeCompactBusy) {
		t.Fatalf("busy compact: %d %s", rec.Code, rec.Body)
	}
	close(resume)
	if err := <-firstDone; err != nil {
		t.Fatalf("parked compact: %v", err)
	}
	testutil.SetFaultHook(nil)

	// Everything is sealed now: the sweep reports the writer as skipped
	// rather than churning out empty segments.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/admin/compact", nil))
	if rec.Code != 200 {
		t.Fatalf("idle compact: %d %s", rec.Code, rec.Body)
	}
	var cr rdnsclient.CompactResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Results) != 1 || cr.Results[0].Skipped == "" || cr.Results[0].Sealed != 0 {
		t.Fatalf("idle compact results: %+v", cr.Results)
	}
}

// TestAdminCompactHonorsConfigOptions pins the Config.Compact plumbing:
// the daemon's -compact-min-seal must govern POST /v1/admin/compact, not
// just the background loop. A 2-snapshot tail is below the store's
// default threshold (base interval 4), so sealing proves the configured
// MinSeal reached the sweep.
func TestAdminCompactHonorsConfigOptions(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, writer, _ := fixture(t, 2)
	if err := writer.Close(); err != nil {
		t.Fatal(err)
	}
	serving, err := histstore.Open(path, histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{Compact: histstore.CompactOptions{MinSeal: 1}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/admin/compact", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out rdnsclient.CompactResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 1 || out.Results[0].Sealed != 2 || out.Results[0].Skipped != "" {
		t.Fatalf("compact results = %+v, want 2 snapshots sealed", out.Results)
	}
	// An explicit per-call override still wins over the configured default.
	if res, err := srv.Compact(context.Background(), histstore.CompactOptions{MinSeal: 100}); err != nil ||
		len(res) != 1 || res[0].Skipped == "" {
		t.Fatalf("override sweep = %+v err=%v, want skip under MinSeal 100", res, err)
	}
}

// TestStatsDivergence covers the opt-in /v1/stats?divergence=1 block: a
// two-writer store with a known conflict, miss, and exclusive record
// must render the per-writer summary on the wire, and the plain stats
// body must stay free of it (the walk is opt-in).
func TestStatsDivergence(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	dir := t.TempDir() + "/hist"
	start := time.Date(2021, 6, 1, 13, 0, 0, 0, time.UTC)

	// Open both writers before any append (append-monotonicity floor).
	wa, err := histstore.Open(dir, histstore.WithWriter("wa"))
	if err != nil {
		t.Fatal(err)
	}
	wb, err := histstore.Open(dir, histstore.WithWriter("wb"))
	if err != nil {
		t.Fatal(err)
	}
	// wa: .7 and .8; wb: .7 under a different name, .8 shared, .9 alone.
	if err := wa.Append(start, scanengine.RecordSet{
		dnswire.MustIPv4("10.4.1.7"): dnswire.MustName("a-view.lan.example.net"),
		dnswire.MustIPv4("10.4.1.8"): dnswire.MustName("shared.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := wb.Append(start, scanengine.RecordSet{
		dnswire.MustIPv4("10.4.1.7"): dnswire.MustName("b-view.lan.example.net"),
		dnswire.MustIPv4("10.4.1.8"): dnswire.MustName("shared.lan.example.net"),
		dnswire.MustIPv4("10.4.1.9"): dnswire.MustName("only-b.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := wa.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}

	serving, err := histstore.Open(dir, histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(url string) rdnsclient.StatsResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", url, resp.StatusCode)
		}
		var out rdnsclient.StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if plain := get("/v1/stats"); plain.Divergence != nil {
		t.Fatalf("plain stats carries divergence: %+v", plain.Divergence)
	}
	div := get("/v1/stats?divergence=1").Divergence
	if div == nil {
		t.Fatal("divergence block missing")
	}
	if div.Addresses != 3 || len(div.Writers) != 2 {
		t.Fatalf("divergence = %+v, want 3 addresses across 2 writers", div)
	}
	byID := map[string]rdnsclient.WriterDivergence{}
	for _, w := range div.Writers {
		byID[w.ID] = w
	}
	// wa wins .7 (lowest writer id), shares .8, lacks .9.
	if w := byID["wa"]; w.Records != 2 || w.Agreements != 2 || w.Conflicts != 0 ||
		w.Missing != 1 || w.Exclusive != 0 {
		t.Fatalf("wa divergence = %+v", w)
	}
	// wb is shadowed on .7 and alone on .9.
	if w := byID["wb"]; w.Records != 3 || w.Agreements != 2 || w.Conflicts != 1 ||
		w.Missing != 0 || w.Exclusive != 1 {
		t.Fatalf("wb divergence = %+v", w)
	}

	// Strict param validation still rejects strays on the stats route.
	resp, err := http.Get(ts.URL + "/v1/stats?bogus=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stray param: %d, want 400", resp.StatusCode)
	}
}
