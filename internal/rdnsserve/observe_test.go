package rdnsserve

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// outcomeOf extracts the outcome label from an
// rdnsd_requests_total{endpoint="...",outcome="..."} counter name.
func outcomeOf(name string) string {
	i := strings.Index(name, `outcome="`)
	if i < 0 {
		return ""
	}
	rest := name[i+len(`outcome="`):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return ""
}

// TestOutcomeCountersConsistency drives every verdict class — successes,
// validation errors, a method violation, client cancellations, admission
// rejections, and admin actions — through the full handler stack, then
// proves the per-endpoint outcome family partitions the aggregates:
//
//	sum over all {endpoint,outcome}      == rdnsd_queries_total
//	outcome=error + outcome=rejected     == rdnsd_query_errors_total
//	outcome=canceled                     == rdnsd_query_canceled_total
//
// and that /v1/stats' Endpoints block reports the same numbers as the
// labeled counters (the two views are derived independently).
func TestOutcomeCountersConsistency(t *testing.T) {
	reg := telemetry.NewRegistry()
	path, st, _ := fixture(t, 10)
	// A frozen admission clock: the token bucket never refills, so after
	// burst tokens are spent every further query is deterministically 429.
	const burst = 14
	srv := New(st, Config{
		Sink: reg,
		Seed: 42,
		Admission: AdmissionConfig{
			RatePerSec: 1,
			Burst:      burst,
			Now:        func() time.Time { return time.Date(2020, 3, 20, 0, 0, 0, 0, time.UTC) },
		},
		Reopen: func() (*histstore.Store, error) {
			return histstore.Open(path, histstore.WithCache(256), histstore.WithReadOnly())
		},
		QueryLog: NewQueryLog(QueryLogConfig{Size: 64}),
	})
	defer srv.Close()
	h := srv.Handler()

	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	get := func(url string, ctx context.Context) int {
		req := httptest.NewRequest("GET", url, nil)
		if ctx != nil {
			req = req.WithContext(ctx)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	total := 0
	expect := func(url string, ctx context.Context, want int) {
		t.Helper()
		total++
		if got := get(url, ctx); got != want {
			t.Fatalf("GET %s: status %d, want %d", url, got, want)
		}
	}

	// Token consumers — exactly `burst` of them, so none is rate-limited.
	expect("/v1/at?ip=10.0.1.7&t=2020-03-08", nil, 200)
	expect("/v1/at?ip=10.0.1.7&t=2020-03-08", nil, 200)
	expect("/v1/days", nil, 200)
	expect("/v1/stats", nil, 200)
	expect("/v1/at?ip=bogus&t=2020-03-08", nil, 400)   // validation error
	expect("/v1/at?ip=10.0.1.7&frob=1", nil, 400)      // unknown parameter
	expect("/v1/name?token=brian", nil, 200)
	expect("/v1/at?ip=10.0.1.7&t=2020-03-08", canceledCtx, 499)
	expect("/v1/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09", canceledCtx, 499)
	expect("/at?ip=10.0.1.7&t=2020-03-08", nil, 200)   // legacy alias
	expect("/at?ip=bogus&t=2020-03-08", nil, 400)      // legacy error
	expect("/days", nil, 200)
	expect("/at?ip=10.0.1.7&t=2020-03-08", canceledCtx, 499)
	expect("/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-05", nil, 200)

	// The bucket is empty now: five more queries, all shed as 429.
	const rejected = 5
	for i := 0; i < rejected; i++ {
		expect("/v1/at?ip=10.0.1.7&t=2020-03-08", nil, 429)
	}

	// A method violation fails before admission — still a counted error.
	total++
	req := httptest.NewRequest("POST", "/v1/at?ip=10.0.1.7&t=2020-03-08", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("POST /v1/at: status %d, want 405", rec.Code)
	}

	// Admin routes are bucket-exempt and share the outcome accounting.
	total++
	req = httptest.NewRequest("POST", "/v1/admin/reload", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("POST /v1/admin/reload: status %d %s", rec.Code, rec.Body)
	}

	// --- the consistency proof ---
	snap := reg.Snapshot()
	var sum, errs, canceled, rej uint64
	for name, v := range snap.Counters {
		if !strings.HasPrefix(name, metricRequests+"{") {
			continue
		}
		sum += v
		switch outcomeOf(name) {
		case "error":
			errs += v
		case "canceled":
			canceled += v
		case "rejected":
			rej += v
		case "ok":
		default:
			t.Fatalf("counter %q: unrecognized outcome", name)
		}
	}
	if sum != uint64(total) {
		t.Fatalf("outcome families sum to %d, issued %d requests", sum, total)
	}
	if q := snap.Counters[metricQueries]; sum != q {
		t.Fatalf("outcome families sum to %d, %s = %d", sum, metricQueries, q)
	}
	if q := snap.Counters[metricQueryErrors]; errs+rej != q {
		t.Fatalf("error(%d) + rejected(%d) outcomes = %d, %s = %d", errs, rej, errs+rej, metricQueryErrors, q)
	}
	if q := snap.Counters[metricQueryCanceled]; canceled != q {
		t.Fatalf("canceled outcomes = %d, %s = %d", canceled, metricQueryCanceled, q)
	}
	if rej != rejected {
		t.Fatalf("rejected outcomes = %d, want %d", rej, rejected)
	}
	if canceled != 3 {
		t.Fatalf("canceled outcomes = %d, want 3", canceled)
	}
	if errs == 0 || sum == errs+rej+canceled {
		t.Fatalf("verdict mix degenerate: total %d, errs %d, rej %d, canceled %d", sum, errs, rej, canceled)
	}

	// /v1/stats derives its Endpoints block from the same counters the
	// hard way (label parsing); both views must agree per endpoint.
	stats := srv.StatsSnapshot()
	if len(stats.Endpoints) == 0 {
		t.Fatal("stats snapshot has no endpoint block")
	}
	for ep, es := range stats.Endpoints {
		for outcome, want := range map[string]uint64{
			"ok": es.OK, "error": es.Errors, "canceled": es.Canceled, "rejected": es.Rejected,
		} {
			name := metricRequests + `{endpoint="` + ep + `",outcome="` + outcome + `"}`
			if got := snap.Counters[name]; got != want {
				t.Fatalf("endpoint %s outcome %s: counter %d, stats %d", ep, outcome, got, want)
			}
		}
	}
}

// TestReloadScrapeRace hammers the exporter's /trace and /querylog dumps
// (plus /metrics) and the traced query path while the coordinator runs 10
// consecutive hot reloads. Run under -race (make race covers this
// package): the scrapes serialize the span ring and the query log ring
// while route handlers append to both and Reload swaps the store — any
// unsynchronized access trips the detector. Every query must be 200 and
// every scrape 200 or 204 (empty ring before the first traced request).
func TestReloadScrapeRace(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, writer, times := fixture(t, 10)
	defer writer.Close()

	serving, err := histstore.Open(path, histstore.WithCache(256), histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer(7, 512)
	qlog := NewQueryLog(QueryLogConfig{Size: 128})
	srv := New(serving, Config{
		Sink:     reg,
		Tracer:   tracer,
		Seed:     7,
		QueryLog: qlog,
		Reopen: func() (*histstore.Store, error) {
			return histstore.Open(path, histstore.WithCache(256), histstore.WithReadOnly())
		},
	})
	defer srv.Close()
	qh := srv.Handler()
	eh := telemetry.NewExporter(reg,
		telemetry.WithExporterTracer(tracer),
		telemetry.WithExporterDump("/querylog", "application/x-ndjson",
			qlog.WriteJSONL, func() bool { return qlog.Len() == 0 }),
	).Handler()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Query workers: wire-correlated requests, so the phase child spans
	// (parse/store) churn the ring hardest.
	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := httptest.NewRequest("GET", "/v1/at?ip=10.0.1.7&t=2020-03-08", nil)
				req.Header.Set(rdnsclient.CorrHeader,
					fmt.Sprintf("%016x", telemetry.CorrID(int64(w+1), "race", i+1)))
				rec := httptest.NewRecorder()
				qh.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("query worker %d: status %d %s", w, rec.Code, rec.Body)
					return
				}
			}
		}()
	}
	// Scrape workers: serialize the rings while they are being written.
	for w, url := range []string{"/trace", "/querylog", "/metrics"} {
		w, url := w, url
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := httptest.NewRecorder()
				eh.ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != 200 && rec.Code != 204 {
					t.Errorf("scrape worker %d: GET %s: status %d %s", w, url, rec.Code, rec.Body)
					return
				}
			}
		}()
	}

	day := times[len(times)-1]
	for i := 0; i < 10; i++ {
		day = day.AddDate(0, 0, 1)
		if err := writer.Append(day, scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if _, err := srv.Reload(); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	if srv.Generation() != 10 {
		t.Fatalf("generation %d, want 10", srv.Generation())
	}
	if e := reg.Counter(metricQueryErrors).Value(); e != 0 {
		t.Fatalf("%s = %d after reload churn, want 0", metricQueryErrors, e)
	}
}
