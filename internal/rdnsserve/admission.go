package rdnsserve

import (
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/telemetry"
)

// AdmissionConfig tunes the daemon's front door: per-client token-bucket
// rate limits, source ACLs, and a bound on concurrent in-flight queries.
// The zero value admits everything — the right default for tests and
// benchmarks.
type AdmissionConfig struct {
	// RatePerSec is each client's sustained request budget; 0 (or
	// negative) disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity — how far above the sustained rate a
	// client may spike. Defaults to max(RatePerSec, 1) when unset.
	Burst float64
	// MaxClients bounds the bucket table; stale clients are evicted once
	// it fills. Defaults to 65536.
	MaxClients int
	// MaxInFlight bounds concurrently admitted queries; beyond it the
	// daemon sheds with 503 + Retry-After. 0 means unbounded.
	MaxInFlight int
	// Allow, when non-empty, restricts service to clients whose source
	// address falls inside one of these prefixes.
	Allow []dnswire.Prefix
	// Deny rejects clients inside any of these prefixes; Deny wins over
	// Allow.
	Deny []dnswire.Prefix
	// Now substitutes the bucket clock (tests).
	Now func() time.Time
}

func (c AdmissionConfig) limiting() bool { return c.RatePerSec > 0 }

// bucket is one client's token bucket, guarded by admission.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// admission implements the request front door. Decisions in order:
// method, ACL (403), token bucket (429), in-flight slot (503). Each
// rejection increments its own counter so operators can tell pushback
// from failure.
type admission struct {
	cfg  AdmissionConfig
	now  func() time.Time
	rate float64
	cap  float64

	inFlight atomic.Int64
	peak     atomic.Int64

	mu      sync.Mutex
	buckets map[string]*bucket

	admitted    *telemetry.Counter
	rateLimited *telemetry.Counter
	denied      *telemetry.Counter
	shed        *telemetry.Counter
	inFlightG   *telemetry.Gauge
	peakG       *telemetry.Gauge
	clientsG    *telemetry.Gauge
}

func newAdmission(cfg AdmissionConfig, sink telemetry.Sink) *admission {
	a := &admission{
		cfg:     cfg,
		now:     cfg.Now,
		rate:    cfg.RatePerSec,
		cap:     cfg.Burst,
		buckets: make(map[string]*bucket),

		admitted:    sink.Counter("rdnsd_admission_admitted_total"),
		rateLimited: sink.Counter("rdnsd_admission_rate_limited_total"),
		denied:      sink.Counter("rdnsd_admission_denied_total"),
		shed:        sink.Counter("rdnsd_admission_shed_total"),
		inFlightG:   sink.Gauge("rdnsd_admission_inflight"),
		peakG:       sink.Gauge("rdnsd_admission_peak_inflight"),
		clientsG:    sink.Gauge("rdnsd_admission_clients"),
	}
	if a.now == nil {
		a.now = time.Now
	}
	if a.cap <= 0 {
		a.cap = math.Max(a.rate, 1)
	}
	if a.cfg.MaxClients <= 0 {
		a.cfg.MaxClients = 65536
	}
	return a
}

// clientKey identifies the rate-limit principal: the API key when the
// request carries one, otherwise the source address. The prefixes keep a
// keyless client from draining a keyed client's bucket by collision.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	return "addr:" + host
}

// checkACL returns a forbidden error when the source address is denied,
// or outside a non-empty allow list. Unparseable addresses (unix sockets,
// in-process tests) pass: ACLs guard network edges, not harness plumbing.
func (a *admission) checkACL(r *http.Request) *apiError {
	if len(a.cfg.Allow) == 0 && len(a.cfg.Deny) == 0 {
		return nil
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	ip, err := dnswire.ParseIPv4(host)
	if err != nil {
		return nil
	}
	for _, p := range a.cfg.Deny {
		if p.Contains(ip) {
			return errForbidden("client " + ip.String() + " is denied")
		}
	}
	if len(a.cfg.Allow) > 0 {
		for _, p := range a.cfg.Allow {
			if p.Contains(ip) {
				return nil
			}
		}
		return errForbidden("client " + ip.String() + " is not in the allow list")
	}
	return nil
}

// take spends one token from key's bucket. On refusal it returns the
// whole seconds a client should wait before the bucket holds a token
// (Retry-After, minimum 1). remaining is the post-spend token count for
// the X-RateLimit-Remaining header.
func (a *admission) take(key string) (ok bool, retryAfter int, remaining int) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[key]
	if b == nil {
		if len(a.buckets) >= a.cfg.MaxClients {
			a.evictLocked(now)
		}
		b = &bucket{tokens: a.cap, last: now}
		a.buckets[key] = b
		a.clientsG.Set(int64(len(a.buckets)))
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(a.cap, b.tokens+dt*a.rate)
	}
	b.last = now
	if b.tokens < 1 {
		wait := int(math.Ceil((1 - b.tokens) / a.rate))
		if wait < 1 {
			wait = 1
		}
		return false, wait, 0
	}
	b.tokens--
	return true, 0, int(b.tokens)
}

// evictLocked frees bucket-table space: drop every client idle long
// enough to have refilled completely (it would start fresh anyway), and
// if nothing is that stale, the single least-recently-seen one.
func (a *admission) evictLocked(now time.Time) {
	idle := time.Duration(float64(time.Second) * (a.cap/a.rate + 60))
	var oldestKey string
	var oldest time.Time
	for k, b := range a.buckets {
		if now.Sub(b.last) >= idle {
			delete(a.buckets, k)
			continue
		}
		if oldestKey == "" || b.last.Before(oldest) {
			oldestKey, oldest = k, b.last
		}
	}
	if len(a.buckets) >= a.cfg.MaxClients && oldestKey != "" {
		delete(a.buckets, oldestKey)
	}
}

// enter claims an in-flight slot, returning its release func, or false
// when the daemon is at MaxInFlight and this request must shed.
func (a *admission) enter() (release func(), ok bool) {
	n := a.inFlight.Add(1)
	if a.cfg.MaxInFlight > 0 && n > int64(a.cfg.MaxInFlight) {
		a.inFlight.Add(-1)
		return nil, false
	}
	a.inFlightG.Set(n)
	for {
		p := a.peak.Load()
		if n <= p {
			break
		}
		if a.peak.CompareAndSwap(p, n) {
			a.peakG.Set(n)
			break
		}
	}
	return func() {
		a.inFlightG.Set(a.inFlight.Add(-1))
	}, true
}

// admit runs the full front door for one request. On success it returns
// a non-nil release func the caller must defer; on refusal it returns the
// apiError to write (Retry-After and rate-limit headers already applied
// to w). adminPath requests skip the token bucket and in-flight bound —
// an operator must be able to reload a daemon that is busy shedding —
// but still pass the ACL.
func (a *admission) admit(w http.ResponseWriter, r *http.Request, adminPath bool) (release func(), errA *apiError) {
	if err := a.checkACL(r); err != nil {
		a.denied.Inc()
		return nil, err
	}
	if adminPath {
		a.admitted.Inc()
		return func() {}, nil
	}
	if a.cfg.limiting() {
		ok, retryAfter, remaining := a.take(clientKey(r))
		w.Header().Set("X-RateLimit-Limit", strconv.FormatFloat(a.rate, 'f', -1, 64))
		if !ok {
			w.Header().Set("X-RateLimit-Remaining", "0")
			w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
			a.rateLimited.Inc()
			return nil, errRateLimited()
		}
		w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(remaining))
	}
	rel, ok := a.enter()
	if !ok {
		w.Header().Set("Retry-After", "1")
		a.shed.Inc()
		return nil, errOverloaded()
	}
	a.admitted.Inc()
	return rel, nil
}

// clients reports the bucket-table size.
func (a *admission) clients() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}
