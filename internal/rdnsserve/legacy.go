package rdnsserve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
	"rdnsprivacy/internal/telemetry"
)

// The unversioned endpoints predate /v1 and keep their exact original
// shapes — string error bodies, formatted-string timestamps, total-count
// /range semantics with a truncated flag — so deployed scrapers keep
// working through the deprecation window (see docs/api.md). Every legacy
// response carries Deprecation, Sunset, and a Link to its successor.

// legacySunset is when the unversioned endpoints stop answering.
const legacySunset = "Sun, 28 Feb 2027 00:00:00 GMT"

// legacyRoutes registers the deprecated aliases on mux.
func (s *Server) legacyRoutes(mux *http.ServeMux) {
	mux.HandleFunc("/at", s.legacyRoute("at", s.legacyAt))
	mux.HandleFunc("/range", s.legacyRoute("range", s.legacyRange))
	mux.HandleFunc("/churn", s.legacyRoute("churn", s.legacyChurn))
	mux.HandleFunc("/name", s.legacyRoute("name", s.legacyName))
	mux.HandleFunc("/days", s.legacyRoute("days", s.legacyDays))
	mux.HandleFunc("/stats", s.legacyRoute("stats", s.legacyStats))
}

// legacyRoute is the legacy twin of route: same admission and store
// pinning, old error rendering, no strict parameter validation (the old
// endpoints ignored strays and some deployed callers send them), plus the
// deprecation headers and counter.
func (s *Server) legacyRoute(name string, h handlerFunc) http.HandlerFunc {
	lat := s.sink.Histogram(metricQuerySeconds+`{endpoint="legacy_`+name+`"}`, telemetry.DefaultLatencyBuckets())
	outcomes := s.outcomesFor("legacy_" + name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		qn := int(s.nextQ.Add(1))
		corr := corrFromHeader(r.Header.Get(rdnsclient.CorrHeader))
		fromWire := corr != 0
		if corr == 0 {
			corr = telemetry.CorrID(s.seed, "rdnsd."+name, qn)
		}
		span := s.tracer.StartSpanCorr("rdnsd.query", "legacy."+name, corr)
		s.queries.Inc()
		s.legacyQueries.Inc()
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Sunset", legacySunset)
		w.Header().Set("Link", "</v1/"+name+`>; rel="successor-version"`)
		rec := reqRec{corr: corr, fromWire: fromWire, gen: -1}
		out, aerr := s.legacyServeOne(w, r, h, &rec)
		el := time.Since(start).Seconds()
		s.querySeconds.ObserveExemplar(el, corr)
		lat.ObserveExemplar(el, corr)
		s.countOutcome(outcomes, aerr, &rec)
		w.Header().Set("Content-Type", "application/json")
		status, bytes := http.StatusOK, 0
		cw := &countWriter{w: w}
		if aerr != nil {
			span.Event("error", uint64(aerr.status))
			span.End()
			status = aerr.status
			w.WriteHeader(aerr.status)
			json.NewEncoder(cw).Encode(map[string]string{"error": aerr.msg})
		} else {
			span.End()
			json.NewEncoder(cw).Encode(out)
		}
		bytes = cw.n
		if s.qlog != nil {
			code := ""
			if aerr != nil {
				code = aerr.code
			}
			s.qlog.record(QueryLogEntry{
				Corr:       fmt.Sprintf("%016x", corr),
				Endpoint:   "legacy_" + name,
				Client:     rec.client,
				Params:     paramsFingerprint(r.URL.Query()),
				Status:     status,
				Code:       code,
				Admission:  rec.admission,
				Generation: rec.gen,
				StoreNS:    rec.storeNS,
				TotalNS:    time.Since(start).Nanoseconds(),
				Bytes:      bytes,
			})
		}
	}
}

func (s *Server) legacyServeOne(w http.ResponseWriter, r *http.Request, h handlerFunc, rec *reqRec) (any, *apiError) {
	if s.qlog != nil {
		rec.client = clientKey(r)
	}
	release, aerr := s.adm.admit(w, r, false)
	if aerr != nil {
		rec.admission = admissionOutcome(aerr)
		return nil, aerr
	}
	rec.admission = "admitted"
	defer release()
	hd := s.acquireHandle()
	if hd == nil {
		return nil, errOverloaded()
	}
	defer hd.release()
	rec.gen = hd.gen
	var storeStart time.Time
	if s.qlog != nil {
		storeStart = time.Now()
	}
	var sspan *telemetry.Span
	if rec.fromWire && s.tracer != nil {
		sspan = s.tracer.StartSpanCorr("rdnsd.store", r.URL.Path, rec.corr)
		sspan.Event("gen", uint64(hd.gen))
	}
	out, aerr := h(r.Context(), hd.st, r.URL.Query())
	if aerr != nil {
		sspan.Event("error", uint64(aerr.status))
	}
	sspan.End()
	if s.qlog != nil {
		rec.storeNS = time.Since(storeStart).Nanoseconds()
	}
	return out, aerr
}

// Original response shapes, frozen.
type legacyAtResponse struct {
	IP       string `json:"ip"`
	T        string `json:"t"`
	Resolved string `json:"resolved"`
	Found    bool   `json:"found"`
	Name     string `json:"name,omitempty"`
}

type legacyRangeRow struct {
	Date string `json:"date"`
	IP   string `json:"ip"`
	PTR  string `json:"ptr"`
}

type legacyRangeResponse struct {
	Prefix    string           `json:"prefix"`
	From      string           `json:"from"`
	To        string           `json:"to"`
	Count     int              `json:"count"`
	Truncated bool             `json:"truncated,omitempty"`
	Rows      []legacyRangeRow `json:"rows"`
}

type legacyChurnResponse struct {
	Prefix string               `json:"prefix"`
	From   string               `json:"from"`
	To     string               `json:"to"`
	Days   []histstore.ChurnDay `json:"days"`
}

type legacyNamePosting struct {
	Prefix string `json:"prefix"`
	First  string `json:"first"`
	Last   string `json:"last"`
}

type legacyNameResponse struct {
	Token    string              `json:"token"`
	Postings []legacyNamePosting `json:"postings"`
}

type legacyDaysResponse struct {
	Count int      `json:"count"`
	Days  []string `json:"days"`
}

type legacyStatsResponse struct {
	histstore.Stats
	CacheHitRate float64 `json:"cache_hit_rate"`
}

func (s *Server) legacyAt(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	out, aerr := s.handleAt(ctx, st, q)
	if aerr != nil {
		return nil, aerr
	}
	v1 := out.(rdnsclient.AtResponse)
	return legacyAtResponse{
		IP:       v1.IP,
		T:        v1.T.Format(time.RFC3339),
		Resolved: v1.Resolved.Format(time.RFC3339),
		Found:    v1.Found,
		Name:     v1.Name,
	}, nil
}

func (s *Server) legacyRange(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	p, aerr := prefixParam(q)
	if aerr != nil {
		return nil, aerr
	}
	from, to, aerr := window(st, q)
	if aerr != nil {
		return nil, aerr
	}
	// Legacy limit semantics: default 10000, 0 means unbounded, and the
	// reply reports the total match count with a truncated flag.
	limit := 10000
	if v := q.Get("limit"); v != "" {
		var err error
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			return nil, errBadParam("limit: not a non-negative integer: %q", v)
		}
	}
	rows, err := st.RangeContext(ctx, p, from, to)
	if err != nil {
		return nil, storeErr(ctx, err)
	}
	resp := legacyRangeResponse{
		Prefix: p.String(),
		From:   from.Format(time.RFC3339),
		To:     to.Format(time.RFC3339),
		Count:  len(rows),
		Rows:   make([]legacyRangeRow, 0, len(rows)),
	}
	for _, row := range rows {
		if limit > 0 && len(resp.Rows) == limit {
			resp.Truncated = true
			break
		}
		resp.Rows = append(resp.Rows, legacyRangeRow{
			Date: row.Date.Format(time.RFC3339),
			IP:   row.IP.String(),
			PTR:  row.PTR.String(),
		})
	}
	s.rowsServed.Add(uint64(len(resp.Rows)))
	return resp, nil
}

func (s *Server) legacyChurn(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	p, aerr := prefixParam(q)
	if aerr != nil {
		return nil, aerr
	}
	from, to, aerr := window(st, q)
	if aerr != nil {
		return nil, aerr
	}
	days, err := st.ChurnContext(ctx, p, from, to)
	if err != nil {
		return nil, storeErr(ctx, err)
	}
	if days == nil {
		days = []histstore.ChurnDay{}
	}
	return legacyChurnResponse{
		Prefix: p.String(),
		From:   from.Format(time.RFC3339),
		To:     to.Format(time.RFC3339),
		Days:   days,
	}, nil
}

func (s *Server) legacyName(ctx context.Context, st *histstore.Store, q url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	token := q.Get("token")
	if token == "" {
		return nil, errBadParam("missing token parameter")
	}
	postings := st.FindName(token)
	resp := legacyNameResponse{Token: token, Postings: make([]legacyNamePosting, 0, len(postings))}
	for _, p := range postings {
		resp.Postings = append(resp.Postings, legacyNamePosting{
			Prefix: p.Prefix.String(),
			First:  p.First.Format(time.RFC3339),
			Last:   p.Last.Format(time.RFC3339),
		})
	}
	return resp, nil
}

func (s *Server) legacyDays(ctx context.Context, st *histstore.Store, _ url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	times := st.Times()
	resp := legacyDaysResponse{Count: len(times), Days: make([]string, 0, len(times))}
	for _, t := range times {
		resp.Days = append(resp.Days, t.Format(time.RFC3339))
	}
	return resp, nil
}

func (s *Server) legacyStats(ctx context.Context, st *histstore.Store, _ url.Values) (any, *apiError) {
	if ctx.Err() != nil {
		return nil, errCanceled()
	}
	stats := st.Stats()
	resp := legacyStatsResponse{Stats: stats}
	if total := stats.CacheHits + stats.CacheMisses; total > 0 {
		resp.CacheHitRate = float64(stats.CacheHits) / float64(total)
	}
	return resp, nil
}
