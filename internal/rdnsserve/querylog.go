package rdnsserve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strconv"
	"sync"
	"time"

	"rdnsprivacy/internal/telemetry"
)

// QueryLogEntry is one canonical "wide event": everything the daemon
// knows about one request, in one record, keyed by the same correlation
// ID the trace spans and latency exemplars carry. The schema is part of
// the observability contract (docs/observability.md); fields are
// snake_case on the wire to match the metrics surface.
type QueryLogEntry struct {
	// Corr is the request's correlation ID, 16 hex digits — the
	// X-Rdns-Corr value when the client sent one, else server-derived.
	Corr string `json:"corr"`
	// Endpoint is the route name ("at", "range", "admin_reload", ...).
	Endpoint string `json:"endpoint"`
	// Client is the admission principal ("key:loader-3" or "addr:...").
	Client string `json:"client,omitempty"`
	// Params fingerprints the canonicalized query parameters, 16 hex
	// digits — equal fingerprints mean byte-equal canonical params.
	Params string `json:"params,omitempty"`
	// Status is the HTTP status written (499 = client went away).
	Status int `json:"status"`
	// Code is the envelope error code for non-200 responses.
	Code string `json:"code,omitempty"`
	// Admission is the front door's verdict: "admitted", "ratelimited",
	// "denied", "shed" — or "" when the request failed before admission
	// (wrong method).
	Admission string `json:"admission,omitempty"`
	// Generation is the store generation that served the request, -1
	// when no handle was pinned (rejected before store access).
	Generation int64 `json:"gen"`
	// ParseNS and StoreNS are the phase latencies (validation and
	// store-query phases); TotalNS spans the whole request.
	ParseNS int64 `json:"parse_ns"`
	StoreNS int64 `json:"store_ns"`
	TotalNS int64 `json:"total_ns"`
	// Bytes is the response body size written.
	Bytes int `json:"bytes"`
	// Slow marks entries whose total latency crossed the slow threshold.
	Slow bool `json:"slow,omitempty"`
}

// QueryLogConfig sizes a QueryLog.
type QueryLogConfig struct {
	// Size is the ring capacity (default 1024).
	Size int
	// SlowThreshold enables the slow-query log. The threshold is rounded
	// up to the containing telemetry.DefaultLatencyBuckets bound so
	// slow-log membership agrees with histogram bucketing: a query is
	// slow iff it landed in a histogram bucket strictly above that
	// bound, so the slow count equals the histogram's tail count past
	// it. 0 disables the slow log.
	SlowThreshold time.Duration
	// SlowSize is the slow ring capacity (default 64).
	SlowSize int
}

// QueryLog ring-buffers one QueryLogEntry per request. Recording takes
// one short mutex hold (the log exists only when -query-log is set, so
// the unconfigured hot path pays nothing); snapshots copy out under the
// same mutex, so scrapes are safe concurrently with recording and with
// hot reloads swapping the store underneath.
type QueryLog struct {
	slowSecs float64 // rounded-up threshold, 0 = slow log off

	mu    sync.Mutex
	ring  []QueryLogEntry
	next  int
	full  bool
	total uint64
	slow  []QueryLogEntry
	snext int
	sfull bool
}

// NewQueryLog builds a query log; see QueryLogConfig for defaults.
func NewQueryLog(cfg QueryLogConfig) *QueryLog {
	if cfg.Size <= 0 {
		cfg.Size = 1024
	}
	if cfg.SlowSize <= 0 {
		cfg.SlowSize = 64
	}
	l := &QueryLog{ring: make([]QueryLogEntry, cfg.Size)}
	if cfg.SlowThreshold > 0 {
		l.slowSecs = SlowBound(cfg.SlowThreshold.Seconds())
		l.slow = make([]QueryLogEntry, cfg.SlowSize)
	}
	return l
}

// SlowBound rounds secs up to the containing DefaultLatencyBuckets
// bound, so a slow-log threshold and the latency histogram agree on
// which bucket boundary "slow" starts at. Values above the last bound
// return the value unchanged (the overflow bucket has no upper bound).
func SlowBound(secs float64) float64 {
	for _, b := range telemetry.DefaultLatencyBuckets() {
		if secs <= b {
			return b
		}
	}
	return secs
}

// record appends e, marking and retaining it as slow when its total
// latency reaches the threshold. Safe on a nil receiver.
func (l *QueryLog) record(e QueryLogEntry) {
	if l == nil {
		return
	}
	slow := l.slowSecs > 0 && float64(e.TotalNS) > l.slowSecs*1e9
	e.Slow = slow
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
	if slow {
		l.slow[l.snext] = e
		l.snext++
		if l.snext == len(l.slow) {
			l.snext, l.sfull = 0, true
		}
	}
}

// Snapshot copies the buffered entries, oldest first.
func (l *QueryLog) Snapshot() []QueryLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return snapshotRing(l.ring, l.next, l.full)
}

// SlowSnapshot copies the buffered slow entries, oldest first.
func (l *QueryLog) SlowSnapshot() []QueryLogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return snapshotRing(l.slow, l.snext, l.sfull)
}

func snapshotRing(ring []QueryLogEntry, next int, full bool) []QueryLogEntry {
	if ring == nil {
		return nil
	}
	if !full {
		return append([]QueryLogEntry(nil), ring[:next]...)
	}
	out := make([]QueryLogEntry, 0, len(ring))
	out = append(out, ring[next:]...)
	return append(out, ring[:next]...)
}

// Len reports how many entries are buffered.
func (l *QueryLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.full {
		return len(l.ring)
	}
	return l.next
}

// SlowLen reports how many slow entries are buffered.
func (l *QueryLog) SlowLen() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.sfull {
		return len(l.slow)
	}
	return l.snext
}

// Total reports how many entries were ever recorded (>= Len once the
// ring wraps).
func (l *QueryLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// WriteJSONL dumps the buffered entries, oldest first, one JSON object
// per line — the same shape /querylog serves and ReadQueryLog parses.
func (l *QueryLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// ReadQueryLog parses a WriteJSONL dump.
func ReadQueryLog(r io.Reader) ([]QueryLogEntry, error) {
	dec := json.NewDecoder(r)
	var out []QueryLogEntry
	for {
		var e QueryLogEntry
		if err := dec.Decode(&e); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// Digest folds the buffered entries into one order-independent 64-bit
// value: entries are keyed by their deterministic identity fields
// (corr, endpoint, client, params, status, code, admission, generation)
// — never latencies, byte counts, or arrival order, which depend on
// scheduling — sorted, and FNV-folded. Two seeded runs that served the
// same requests with the same verdicts digest identically even when
// goroutine interleaving reordered the ring.
func (l *QueryLog) Digest() uint64 {
	keys := make([]string, 0, l.Len())
	for _, e := range l.Snapshot() {
		keys = append(keys, e.Corr+"|"+e.Endpoint+"|"+e.Client+"|"+e.Params+"|"+
			strconv.Itoa(e.Status)+"|"+e.Code+"|"+e.Admission+"|"+strconv.FormatInt(e.Generation, 10))
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		h.Write([]byte(k))
		h.Write([]byte{'\n'})
	}
	return h.Sum64()
}

// paramsFingerprint canonicalizes query parameters (sorted keys, sorted
// values within a key) and hashes them to 16 hex digits, so the log can
// group "the same query" without storing raw parameter values.
func paramsFingerprint(q map[string][]string) string {
	if len(q) == 0 {
		return ""
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := fnv.New64a()
	for _, k := range keys {
		vs := append([]string(nil), q[k]...)
		sort.Strings(vs)
		for _, v := range vs {
			h.Write([]byte(k))
			h.Write([]byte{'='})
			h.Write([]byte(v))
			h.Write([]byte{'&'})
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// corrFromHeader parses an X-Rdns-Corr value (16 hex digits); malformed
// or absent headers return 0, which the route replaces with a
// server-derived ID — a bad header degrades to uncorrelated, never to
// an error.
func corrFromHeader(v string) uint64 {
	if len(v) != 16 {
		return 0
	}
	n, err := strconv.ParseUint(v, 16, 64)
	if err != nil {
		return 0
	}
	return n
}
