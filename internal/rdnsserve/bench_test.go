package rdnsserve

import (
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
)

// benchServer builds a 60-day two-/24 history behind a Server with
// admission disabled — the bench measures the serving path (mux dispatch,
// instrumentation, store query against a warm cache, JSON encode), not
// rate-limit arithmetic.
func benchServer(b *testing.B) (*Server, time.Time) {
	b.Helper()
	path := filepath.Join(b.TempDir(), "bench.hist")
	st, err := histstore.Open(path, histstore.WithCache(1024))
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 60; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.2.4"): dnswire.MustName("printer.example.net"),
		}
		recs[dnswire.MustIPv4("10.0.1.9")] =
			dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day))
		if err := st.Append(start.AddDate(0, 0, day), recs); err != nil {
			b.Fatal(err)
		}
	}
	srv := New(st, Config{Sink: telemetry.NewRegistry(), Tracer: telemetry.NewTracer(1, 256), Seed: 1})
	b.Cleanup(func() { srv.Close() })
	return srv, start
}

// BenchmarkRdnsdQuery measures one query end to end through the daemon's
// v1 handler over a 60-day two-/24 history. bench-check gates it within
// ±15%.
func BenchmarkRdnsdQuery(b *testing.B) {
	srv, start := benchServer(b)
	h := srv.Handler()

	b.Run("at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			day := (i * 7) % 60
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/at?ip=10.0.1.9&t=%s", start.AddDate(0, 0, day).Format("2006-01-02")), nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})

	b.Run("churn", func(b *testing.B) {
		req := httptest.NewRequest("GET", "/v1/churn?prefix=10.0.1.0/24", nil)
		for i := 0; i < b.N; i++ {
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// BenchmarkRdnsdQueryObserved is the fully-observed twin of
// BenchmarkRdnsdQuery/at: query log on, latency exemplars retained, and
// every request carrying an X-Rdns-Corr header — quantifying what the
// PR 9 observability layer costs per request over the plain
// instrumented path.
func BenchmarkRdnsdQueryObserved(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.hist")
	st, err := histstore.Open(path, histstore.WithCache(1024))
	if err != nil {
		b.Fatal(err)
	}
	start := time.Date(2020, 3, 1, 0, 0, 0, 0, time.UTC)
	for day := 0; day < 60; day++ {
		recs := scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.2.4"): dnswire.MustName("printer.example.net"),
		}
		recs[dnswire.MustIPv4("10.0.1.9")] =
			dnswire.MustName(fmt.Sprintf("host-9-%d.dyn.example.net", day))
		if err := st.Append(start.AddDate(0, 0, day), recs); err != nil {
			b.Fatal(err)
		}
	}
	srv := New(st, Config{
		Sink:     telemetry.NewRegistry(),
		Tracer:   telemetry.NewTracer(1, 256),
		Seed:     1,
		QueryLog: NewQueryLog(QueryLogConfig{Size: 1024, SlowThreshold: 50 * time.Millisecond}),
	})
	b.Cleanup(func() { srv.Close() })
	h := srv.Handler()

	b.Run("at", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			day := (i * 7) % 60
			req := httptest.NewRequest("GET",
				fmt.Sprintf("/v1/at?ip=10.0.1.9&t=%s", start.AddDate(0, 0, day).Format("2006-01-02")), nil)
			req.Header.Set("X-Rdns-Corr", fmt.Sprintf("%016x", uint64(i)+1))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 200 {
				b.Fatalf("status %d: %s", rec.Code, rec.Body)
			}
		}
	})
}

// BenchmarkRdnsdConcurrentLoad measures the serving path under heavy
// goroutine concurrency with a production-shaped endpoint mix, and
// reports the client-observed p99 as an extra metric (p99-ns/op) that
// bench-check gates alongside ns/op.
func BenchmarkRdnsdConcurrentLoad(b *testing.B) {
	srv, _ := benchServer(b)
	h := srv.Handler()
	urls := []string{
		"/v1/at?ip=10.0.1.9&t=2020-03-15",
		"/v1/at?ip=10.0.1.7&t=2020-04-01",
		"/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-07&limit=1000",
		"/v1/name?token=brian",
		"/v1/days",
	}
	lat := telemetry.NewRegistry().Histogram("bench_latency_seconds", telemetry.DefaultLatencyBuckets())
	var idx atomic.Int64

	b.SetParallelism(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := urls[int(idx.Add(1))%len(urls)]
			t0 := time.Now()
			req := httptest.NewRequest("GET", u, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			lat.Observe(time.Since(t0).Seconds())
			if rec.Code != 200 {
				b.Fatalf("GET %s: %d %s", u, rec.Code, rec.Body)
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(lat.Quantile(0.99)*1e9, "p99-ns/op")
}
