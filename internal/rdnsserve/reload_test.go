package rdnsserve

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"

	"rdnsprivacy/internal/dnswire"
	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/scanengine"
	"rdnsprivacy/internal/telemetry"
	"rdnsprivacy/internal/testutil"
)

// TestHotReloadNoDroppedQueries is the hot-reload race test: 6 query
// workers hammer every v1 endpoint in-process while a coordinator
// alternates appends (on a separate writer handle) with Reload swaps.
// Every single response must be 200 — a swap may never drop, error, or
// 5xx an in-flight query — and the goroutine/error counters must agree.
// Run under -race (make race covers this package).
//
// Appends and reloads are serialized in the coordinator because Open
// truncates torn tails: reopening mid-append would fork history from the
// writer's view. Queries race the swap freely; that is the property
// under test.
func TestHotReloadNoDroppedQueries(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, writer, times := fixture(t, 10)
	defer writer.Close()

	serving, err := histstore.Open(path, histstore.WithCache(256), histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv := New(serving, Config{
		Sink: reg,
		Reopen: func() (*histstore.Store, error) {
			return histstore.Open(path, histstore.WithCache(256), histstore.WithReadOnly())
		},
	})
	defer srv.Close()
	h := srv.Handler()

	const (
		workers = 6
		reloads = 15
	)
	urls := []string{
		"/v1/at?ip=10.0.1.7&t=2020-03-08",
		"/v1/range?prefix=10.0.1.0/24&from=2020-03-01&to=2020-03-05&limit=100",
		"/v1/churn?prefix=10.0.0.0/16&from=2020-03-02&to=2020-03-09",
		"/v1/name?token=brian",
		"/v1/days",
		"/v1/stats",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				u := urls[(w+i)%len(urls)]
				req := httptest.NewRequest("GET", u, nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("worker %d: GET %s during reload churn: %d %s", w, u, rec.Code, rec.Body)
					return
				}
			}
		}()
	}

	// The coordinator: extend history, then swap the serving handle onto
	// the grown log, repeatedly, while the workers race the swaps.
	day := times[len(times)-1]
	for i := 0; i < reloads; i++ {
		day = day.AddDate(0, 0, 1)
		if err := writer.Append(day, scanengine.RecordSet{
			dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
			dnswire.MustIPv4("10.0.4.2"): dnswire.MustName(fmt.Sprintf("host-%d.dyn.example.net", i)),
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		resp, err := srv.Reload()
		if err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
		if resp.Generation != int64(i+1) || resp.Snapshots != 10+i+1 {
			t.Fatalf("reload %d: %+v", i, resp)
		}
	}
	close(stop)
	wg.Wait()

	// Post-swap state: the served history includes every appended day.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/days", nil))
	var dr struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil || dr.Count != 10+reloads {
		t.Fatalf("final days: %s (err %v), want count %d", rec.Body, err, 10+reloads)
	}
	if srv.Generation() != reloads {
		t.Fatalf("generation %d, want %d", srv.Generation(), reloads)
	}

	// Zero errors, zero cancellations: nothing was dropped by the swaps.
	if e := reg.Counter(metricQueryErrors).Value(); e != 0 {
		t.Fatalf("%d query errors during reload churn", e)
	}
	if c := reg.Counter(metricQueryCanceled).Value(); c != 0 {
		t.Fatalf("%d canceled queries during reload churn", c)
	}
	if reg.Counter(metricReloads).Value() != reloads {
		t.Fatalf("reload counter %d, want %d", reg.Counter(metricReloads).Value(), reloads)
	}

	// The drained pre-reload handles really closed their stores: the
	// original serving store must now reject direct queries.
	if _, _, err := serving.At(dnswire.MustIPv4("10.0.1.7"), day); err != histstore.ErrClosed {
		t.Fatalf("old serving store still open after swap: err=%v", err)
	}
}

// TestReloadViaAdminEndpoint: POST /v1/admin/reload swaps generations and
// reports the fresh store's size.
func TestReloadViaAdminEndpoint(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, writer, times := fixture(t, 5)
	defer writer.Close()
	serving, err := histstore.Open(path, histstore.WithReadOnly())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(serving, Config{
		Reopen: func() (*histstore.Store, error) { return histstore.Open(path, histstore.WithReadOnly()) },
	})
	defer srv.Close()
	h := srv.Handler()

	if err := writer.Append(times[len(times)-1].AddDate(0, 0, 1), scanengine.RecordSet{
		dnswire.MustIPv4("10.0.1.7"): dnswire.MustName("brians-iphone.lan.example.net"),
	}); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/v1/admin/reload", nil))
	if rec.Code != 200 {
		t.Fatalf("reload: %d %s", rec.Code, rec.Body)
	}
	var resp struct {
		Reloaded   bool  `json:"reloaded"`
		Generation int64 `json:"generation"`
		Snapshots  int   `json:"snapshots"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Reloaded || resp.Generation != 1 || resp.Snapshots != 6 {
		t.Fatalf("reload response: %+v", resp)
	}
	// The new generation serves the new day.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/days", nil))
	var dr struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dr); err != nil || dr.Count != 6 {
		t.Fatalf("days after reload: %s", rec.Body)
	}
}

// TestServerClose: a closed server answers 503 without panicking, Close
// is idempotent, and Reload after Close fails cleanly.
func TestServerClose(t *testing.T) {
	defer testutil.VerifyNoLeaks(t)
	path, st, _ := fixture(t, 3)
	srv := New(st, Config{
		Reopen: func() (*histstore.Store, error) { return histstore.Open(path) },
	})
	h := srv.Handler()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/days", nil))
	if rec.Code != 503 {
		t.Fatalf("query after close: %d %s", rec.Code, rec.Body)
	}
	if _, err := srv.Reload(); err == nil {
		t.Fatal("reload succeeded on a closed server")
	}
	// StatsSnapshot on a closed server: admission-only, no panic.
	if snap := srv.StatsSnapshot(); snap.Store.Snapshots != 0 {
		t.Fatalf("closed-server stats: %+v", snap)
	}
}
