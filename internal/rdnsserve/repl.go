package rdnsserve

// Replication feed endpoints: /v1/repl/manifest, /v1/repl/segment/{name},
// /v1/repl/tail/{writer}. A replica daemon (cmd/rdnsd -replica-of) pulls
// these to mirror the primary's histstore file set locally, then swaps
// generations through the same refcounted store-handle path hot reload
// uses. Like the admin surface, the feed is exempt from the per-client
// token bucket (a replica must be able to catch up on a primary that is
// busy shedding query traffic) but stays behind the ACL. See
// docs/replication.md for the protocol and failure matrix.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"rdnsprivacy/internal/histstore"
	"rdnsprivacy/internal/rdnsclient"
)

// Replication feed metric names.
const (
	metricReplFetches = "rdnsd_repl_fetches_total"
	metricReplErrors  = "rdnsd_repl_errors_total"
	metricReplBytes   = "rdnsd_repl_bytes_total"
)

// maxReplChunk caps one feed read; larger requests are clamped, and
// replicas resume by offset.
const maxReplChunk = 1 << 20

// SetReplicaStatus attaches a replica daemon's lag report to /v1/stats:
// fn's result (nil while no sync has resolved yet) is embedded as the
// Replica field of every StatsSnapshot. Primaries leave it unset.
func (s *Server) SetReplicaStatus(fn func() *rdnsclient.ReplicaStats) {
	s.replStatus.Store(fn)
}

// replicaStatus returns the attached lag report, or nil.
func (s *Server) replicaStatus() *rdnsclient.ReplicaStats {
	if fn, ok := s.replStatus.Load().(func() *rdnsclient.ReplicaStats); ok && fn != nil {
		return fn()
	}
	return nil
}

// replError maps a feed failure onto the envelope vocabulary.
func replError(err error) *apiError {
	switch {
	case errors.Is(err, histstore.ErrFeedUnknownFile):
		return errNotFound(err.Error())
	case errors.Is(err, histstore.ErrFeedTailChanged):
		return &apiError{status: http.StatusConflict, code: rdnsclient.CodeReplChanged, msg: err.Error()}
	case errors.Is(err, histstore.ErrFeedBadRange):
		return errBadParam("%v", err)
	default:
		return errInternal(err)
	}
}

// replParams parses the off/n feed window parameters.
func replParams(r *http.Request) (off int64, n int, aerr *apiError) {
	q := r.URL.Query()
	if v := q.Get("off"); v != "" {
		var err error
		if off, err = strconv.ParseInt(v, 10, 64); err != nil || off < 0 {
			return 0, 0, errBadParam("off: must be a non-negative integer: %q", v)
		}
	}
	n = maxReplChunk
	if v := q.Get("n"); v != "" {
		var err error
		if n, err = strconv.Atoi(v); err != nil || n < 1 {
			return 0, 0, errBadParam("n: must be a positive integer: %q", v)
		}
		if n > maxReplChunk {
			n = maxReplChunk
		}
	}
	return off, n, nil
}

// replRoute wraps one feed endpoint with the shared pipeline: GET check,
// bucket-exempt admission, store-handle pinning, and error accounting.
func (s *Server) replRoute(h func(w http.ResponseWriter, r *http.Request, hd *storeHandle) *apiError) http.HandlerFunc {
	fetches := s.sink.Counter(metricReplFetches)
	fetchErrors := s.sink.Counter(metricReplErrors)
	return func(w http.ResponseWriter, r *http.Request) {
		fetches.Inc()
		fail := func(aerr *apiError) {
			fetchErrors.Inc()
			writeV1Error(w, aerr)
		}
		if r.Method != http.MethodGet {
			fail(errMethodNotAllowed(r.Method))
			return
		}
		release, aerr := s.adm.admit(w, r, true)
		if aerr != nil {
			fail(aerr)
			return
		}
		defer release()
		hd := s.acquireHandle()
		if hd == nil {
			fail(errOverloaded())
			return
		}
		defer hd.release()
		if aerr := h(w, r, hd); aerr != nil {
			fail(aerr)
		}
	}
}

// replManifest is GET /v1/repl/manifest: the served store's replicable
// file set plus this daemon's generation and snapshot horizon.
func (s *Server) replManifest() http.HandlerFunc {
	return s.replRoute(func(w http.ResponseWriter, r *http.Request, hd *storeHandle) *apiError {
		fm, err := hd.st.FeedManifest()
		if err != nil {
			return replError(err)
		}
		resp := rdnsclient.ReplManifest{
			Generation:   s.gen.Load(),
			BaseInterval: fm.BaseInterval,
			Snapshots:    fm.Snapshots,
			LastSnap:     fm.LastSnap,
			TotalBytes:   fm.TotalBytes,
		}
		for _, fw := range fm.Writers {
			rw := rdnsclient.ReplWriter{
				ID:        fw.ID,
				FileSeq:   fw.FileSeq,
				TailFile:  fw.TailFile,
				TailFirst: fw.TailFirst,
				TailSize:  fw.TailSize,
			}
			for _, g := range fw.Segments {
				rw.Segments = append(rw.Segments, rdnsclient.ReplSegment{
					File: g.File, First: g.First, Count: g.Count, Size: g.Size, CRC: g.CRC,
				})
			}
			resp.Writers = append(resp.Writers, rw)
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
		return nil
	})
}

// replSegment is GET /v1/repl/segment/{name}?off=&n=: one chunk of a
// sealed segment, X-Repl-Size carrying the total.
func (s *Server) replSegment() http.HandlerFunc {
	bytesOut := s.sink.Counter(metricReplBytes)
	return s.replRoute(func(w http.ResponseWriter, r *http.Request, hd *storeHandle) *apiError {
		name := strings.TrimPrefix(r.URL.Path, "/v1/repl/segment/")
		if name == "" || strings.Contains(name, "/") {
			return errBadParam("segment name missing or malformed")
		}
		off, n, aerr := replParams(r)
		if aerr != nil {
			return aerr
		}
		data, size, err := hd.st.FeedReadSegment(name, off, n)
		if err != nil {
			return replError(err)
		}
		bytesOut.Add(uint64(len(data)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Repl-Size", strconv.FormatInt(size, 10))
		w.Write(data)
		return nil
	})
}

// replTail is GET /v1/repl/tail/{writer}?off=&n=&file=: one chunk of the
// writer's committed tail, X-Repl-Tail-* carrying the tail's identity.
// file pins the expected tail; 409 repl_changed when compaction swapped
// it (the identity headers then point at the successor).
func (s *Server) replTail() http.HandlerFunc {
	bytesOut := s.sink.Counter(metricReplBytes)
	return s.replRoute(func(w http.ResponseWriter, r *http.Request, hd *storeHandle) *apiError {
		writer := strings.TrimPrefix(r.URL.Path, "/v1/repl/tail/")
		if writer == "" || strings.Contains(writer, "/") {
			return errBadParam("writer id missing or malformed")
		}
		off, n, aerr := replParams(r)
		if aerr != nil {
			return aerr
		}
		data, info, err := hd.st.FeedReadTail(writer, r.URL.Query().Get("file"), off, n)
		w.Header().Set("X-Repl-Tail-File", info.File)
		w.Header().Set("X-Repl-Tail-First", strconv.Itoa(info.First))
		w.Header().Set("X-Repl-Tail-Size", strconv.FormatInt(info.Size, 10))
		if err != nil {
			return replError(err)
		}
		bytesOut.Add(uint64(len(data)))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
		return nil
	})
}
