package rdnsserve

import (
	"fmt"
	"net/http"

	"rdnsprivacy/internal/rdnsclient"
)

// statusClientClosedRequest is nginx's convention for "client went away
// before we answered"; it never reaches a live client but keeps canceled
// work distinguishable from failures in logs and metrics.
const statusClientClosedRequest = 499

// apiError pairs an envelope code with its HTTP status. Handlers return
// these; the serving layer writes them in the caller's dialect (v1
// envelope or legacy string).
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errBadParam(format string, args ...any) *apiError {
	return &apiError{http.StatusBadRequest, rdnsclient.CodeBadParam, fmt.Sprintf(format, args...)}
}

func errInvalidCursor() *apiError {
	return &apiError{http.StatusBadRequest, rdnsclient.CodeInvalidCursor, "cursor: malformed"}
}

func errCursorMismatch() *apiError {
	return &apiError{http.StatusBadRequest, rdnsclient.CodeInvalidCursor, "cursor: does not belong to this query"}
}

func errBeforeHistory(msg string) *apiError {
	return &apiError{http.StatusBadRequest, rdnsclient.CodeBeforeHistory, msg}
}

func errNotFound(path string) *apiError {
	return &apiError{http.StatusNotFound, rdnsclient.CodeNotFound, "no such endpoint: " + path}
}

func errMethodNotAllowed(method string) *apiError {
	return &apiError{http.StatusMethodNotAllowed, rdnsclient.CodeMethodNotAllowed, "method " + method + " not allowed"}
}

func errForbidden(msg string) *apiError {
	return &apiError{http.StatusForbidden, rdnsclient.CodeForbidden, msg}
}

func errRateLimited() *apiError {
	return &apiError{http.StatusTooManyRequests, rdnsclient.CodeRateLimited, "per-client rate limit exceeded"}
}

func errOverloaded() *apiError {
	return &apiError{http.StatusServiceUnavailable, rdnsclient.CodeOverloaded, "server at concurrency limit, request shed"}
}

func errCanceled() *apiError {
	return &apiError{statusClientClosedRequest, rdnsclient.CodeCanceled, "client canceled the request"}
}

func errInternal(err error) *apiError {
	return &apiError{http.StatusInternalServerError, rdnsclient.CodeInternal, err.Error()}
}
