package rdnsserve

import (
	"sync/atomic"

	"rdnsprivacy/internal/histstore"
)

// storeHandle is one refcounted generation of the served store. The
// hot-reload trick (rbldnsd's signature move, done with refcounts instead
// of fork): every request acquires the current handle before touching the
// store and releases it after writing its response; a reload swaps the
// current-handle pointer and drops the owner reference, so new requests
// land on the fresh store while in-flight queries finish — and close —
// the old one. Nothing blocks, nothing drops.
type storeHandle struct {
	st  *histstore.Store
	gen int64
	// refs counts the owner (1 at birth) plus every in-flight request.
	// 0 means drained: the store is closed and acquire must fail.
	refs atomic.Int64
}

func newStoreHandle(st *histstore.Store, gen int64) *storeHandle {
	h := &storeHandle{st: st, gen: gen}
	h.refs.Store(1)
	return h
}

// acquire takes a reference. It fails only on a drained handle — the
// caller then re-reads the current pointer, which by that point names the
// successor generation.
func (h *storeHandle) acquire() bool {
	for {
		r := h.refs.Load()
		if r <= 0 {
			return false
		}
		if h.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops a reference; the last one out closes the store.
func (h *storeHandle) release() error {
	if h.refs.Add(-1) == 0 {
		return h.st.Close()
	}
	return nil
}
